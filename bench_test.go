// Package repro's root benchmark harness: one benchmark per paper
// table/figure (regenerating the corresponding experiment at reduced scale;
// run `cmd/soclbench` for the full-scale sweeps) plus micro-benchmarks of
// the solver substrates and ablation benches for the design choices called
// out in DESIGN.md §5.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func benchOpts() experiments.Options {
	return experiments.Options{Short: true, Seed: 1, OptTimeLimit: 2 * time.Second}
}

func benchInstance(nodes, users int, seed int64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}

// --- one benchmark per paper figure ---

func BenchmarkFig2OptRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2(benchOpts())
	}
}

func BenchmarkFig3Similarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(benchOpts())
	}
}

func BenchmarkFig4Temporal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(benchOpts())
	}
}

func BenchmarkFig7UserScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(benchOpts())
	}
}

func BenchmarkFig8Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(benchOpts())
	}
}

func BenchmarkFig9Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(benchOpts())
	}
}

func BenchmarkFig10Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(benchOpts())
	}
}

// --- solver substrates ---

func BenchmarkSimplexTransportation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := lp.NewProblem(4)
		for j, c := range []float64{1, 2, 3, 1} {
			p.SetObjective(j, c)
		}
		p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.EQ, 10)
		p.AddConstraint(map[int]float64{2: 1, 3: 1}, lp.EQ, 20)
		p.AddConstraint(map[int]float64{0: 1, 2: 1}, lp.EQ, 15)
		p.AddConstraint(map[int]float64{1: 1, 3: 1}, lp.EQ, 15)
		if _, err := lp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILPSoCLTiny(b *testing.B) {
	in := benchInstance(3, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := ilp.BuildSoCL(in)
		if _, err := ilp.Solve(m, ilp.Options{TimeLimit: 30 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptExactSmall(b *testing.B) {
	in := benchInstance(8, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Solve(in, opt.Options{TimeLimit: 30 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptSolve compares the exact solver across search backends: the
// naive serial reference, the deterministic engine on one worker, and the
// engine at GOMAXPROCS. On a single-core runner the last two coincide; the
// parallel speedup is only observable on a multicore runner.
func BenchmarkOptSolve(b *testing.B) {
	in := benchInstance(8, 10, 1)
	run := func(b *testing.B, o opt.Options) {
		o.TimeLimit = 30 * time.Second
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := opt.Solve(in, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("naive", func(b *testing.B) { run(b, opt.Options{Naive: true}) })
	b.Run("serial", func(b *testing.B) { run(b, opt.Options{Workers: 1}) })
	b.Run("parallel", func(b *testing.B) { run(b, opt.Options{}) })
}

// BenchmarkILPSolve compares the generic bounded MIP solver across search
// backends (same axes as BenchmarkOptSolve). The bounded model also
// exercises the warm-started node LPs.
func BenchmarkILPSolve(b *testing.B) {
	in := benchInstance(4, 4, 1)
	run := func(b *testing.B, o ilp.Options) {
		o.TimeLimit = time.Minute
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, _ := ilp.BuildSoCLBounded(in)
			if _, err := ilp.SolveBounded(m, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("naive", func(b *testing.B) { run(b, ilp.Options{Naive: true}) })
	b.Run("serial", func(b *testing.B) { run(b, ilp.Options{Workers: 1}) })
	b.Run("parallel", func(b *testing.B) { run(b, ilp.Options{}) })
}

// --- SoCL pipeline stages ---

func BenchmarkSoCLSolve10x40(b *testing.B) {
	in := benchInstance(10, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(in, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoCLSolve20x120(b *testing.B) {
	in := benchInstance(20, 120, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(in, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoCLSolve30x200(b *testing.B) {
	in := benchInstance(30, 200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(in, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionBuild(b *testing.B) {
	in := benchInstance(20, 80, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Build(in, partition.DefaultConfig())
	}
}

func BenchmarkPreprovision(b *testing.B) {
	in := benchInstance(20, 80, 1)
	part := partition.Build(in, partition.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preprov.Run(in, part)
	}
}

func BenchmarkCombine(b *testing.B) {
	in := benchInstance(20, 80, 1)
	part := partition.Build(in, partition.DefaultConfig())
	pre := preprov.Run(in, part)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combine.Run(in, part, pre.Placement, combine.DefaultConfig())
	}
}

// BenchmarkCombineSerial isolates the small-scale serial descent — the
// dominant cost in core.Solve at Fig. 7 scale. The generous budget makes the
// parallel phase exit immediately, so every iteration is serial rounds of
// ζ scoring, storage planning and exact deadline checks.
func BenchmarkCombineSerial(b *testing.B) {
	in := benchInstance(25, 250, 1)
	in.Budget = 1e9
	part := partition.Build(in, partition.DefaultConfig())
	pre := preprov.Run(in, part)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combine.Run(in, part, pre.Placement, combine.DefaultConfig())
	}
}

func BenchmarkEvaluateExact(b *testing.B) {
	in := benchInstance(20, 120, 1)
	p := baselines.JDR(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Evaluate(p)
	}
}

func BenchmarkRouteOptimalPerRequest(b *testing.B) {
	in := benchInstance(20, 40, 1)
	p := baselines.JDR(in)
	req := &in.Workload.Requests[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.RouteOptimal(req, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- baselines ---

func BenchmarkBaselineRP(b *testing.B) {
	in := benchInstance(10, 80, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.RP(in, int64(i))
	}
}

func BenchmarkBaselineJDR(b *testing.B) {
	in := benchInstance(10, 80, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.JDR(in)
	}
}

func BenchmarkBaselineGCOG(b *testing.B) {
	in := benchInstance(10, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.GCOG(in)
	}
}

// BenchmarkBaselineGCOGNaive is the reference rescan loop GCOG replaced with
// the delta-evaluation engine; keeping both benchmarked makes the speedup a
// number CI tracks rather than a claim in a commit message.
func BenchmarkBaselineGCOGNaive(b *testing.B) {
	in := benchInstance(10, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.GCOGWithConfig(in, baselines.GCOGConfig{Naive: true})
	}
}

// --- ablations (DESIGN.md §5) ---

// Ablation 1: DP routing vs greedy nearest-instance routing.
func BenchmarkAblationRoutingOptimal(b *testing.B) {
	in := benchInstance(15, 80, 1)
	p := baselines.JDR(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EvaluateRouted(p, model.RouteModeOptimal, 0)
	}
}

func BenchmarkAblationRoutingGreedy(b *testing.B) {
	in := benchInstance(15, 80, 1)
	p := baselines.JDR(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EvaluateRouted(p, model.RouteModeGreedy, 0)
	}
}

// Ablation 2: generic simplex-based MILP vs specialized exact solver on the
// same tiny instance.
func BenchmarkAblationGenericILP(b *testing.B) {
	in := benchInstance(3, 3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := ilp.BuildSoCL(in)
		if _, err := ilp.Solve(m, ilp.Options{TimeLimit: time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpecializedOpt(b *testing.B) {
	in := benchInstance(3, 3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Solve(in, opt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 3: the ω parallel-combination fraction.
func benchmarkOmega(b *testing.B, omega float64) {
	in := benchInstance(15, 80, 3)
	part := partition.Build(in, partition.DefaultConfig())
	pre := preprov.Run(in, part)
	cfg := combine.DefaultConfig()
	cfg.Omega = omega
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combine.Run(in, part, pre.Placement, cfg)
	}
}

func BenchmarkAblationOmega05(b *testing.B) { benchmarkOmega(b, 0.05) }
func BenchmarkAblationOmega25(b *testing.B) { benchmarkOmega(b, 0.25) }
func BenchmarkAblationOmega90(b *testing.B) { benchmarkOmega(b, 0.90) }

// Ablation 4: the ξ partitioning threshold (auto-median vs extremes).
func benchmarkXi(b *testing.B, xi float64) {
	in := benchInstance(15, 80, 4)
	cfg := partition.Config{Xi: xi, XiQuantile: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Build(in, cfg)
	}
}

func BenchmarkAblationXiAuto(b *testing.B) { benchmarkXi(b, 0) }
func BenchmarkAblationXiLow(b *testing.B)  { benchmarkXi(b, 1e-9) }
func BenchmarkAblationXiHigh(b *testing.B) { benchmarkXi(b, 100) }

// --- substrates ---

func BenchmarkTopologyFinalize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topology.RandomGeometric(30, 0.3, topology.DefaultGenConfig(), int64(i))
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.DurationMinutes = 120
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		trace.Generate(cfg)
	}
}

func BenchmarkSimSlot(b *testing.B) {
	g := topology.RandomGeometric(10, 0.35, topology.DefaultGenConfig(), 1)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(g, cat, 20, int64(i))
		cfg.DurationMinutes = 5 // one slot
		if _, err := sim.Run(cfg, sim.JDR{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 5: row-based vs bounded-variable MILP encodings of the same
// SoCL ILP (binary bounds as rows vs as variable bounds).
func BenchmarkAblationILPRowBased(b *testing.B) {
	in := benchInstance(5, 6, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := ilp.BuildSoCL(in)
		if _, err := ilp.Solve(m, ilp.Options{TimeLimit: time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationILPBounded(b *testing.B) {
	in := benchInstance(5, 6, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := ilp.BuildSoCLBounded(in)
		if _, err := ilp.SolveBounded(m, ilp.Options{TimeLimit: time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSlot(b *testing.B) {
	g := topology.RandomGeometric(10, 0.35, topology.DefaultGenConfig(), 1)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig(g, cat, 15, int64(i))
		cfg.Horizon = 600
		if _, err := cluster.Run(cfg, sim.JDR{}); err != nil {
			b.Fatal(err)
		}
	}
}
