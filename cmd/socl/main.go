// Command socl runs the SoCL microservice provisioning framework on a
// single generated scenario and prints the resulting placement, routing
// quality, and per-stage statistics.
//
// Usage:
//
//	socl -nodes 10 -users 40 -budget 8000 -lambda 0.5 -seed 1 -algo socl
//
// Algorithms: socl (default), rp, jdr, gcog, opt.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/opt"
	"repro/internal/topology"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "JSON scenario file (overrides -nodes/-users/-topo/...)")
		writeScn = flag.String("write-scenario", "", "write the default scenario JSON to this path and exit")
		nodes    = flag.Int("nodes", 10, "number of edge servers")
		users    = flag.Int("users", 40, "number of user requests")
		budget   = flag.Float64("budget", 8000, "deployment budget 𝒦^max")
		lambda   = flag.Float64("lambda", 0.5, "objective weight λ (cost vs latency)")
		seed     = flag.Int64("seed", 1, "root random seed")
		algo     = flag.String("algo", "socl", "algorithm: socl | rp | jdr | gcog | opt")
		topo     = flag.String("topo", "geometric", "topology: geometric | stadium | ringhubs | grid")
		dataset  = flag.String("dataset", "eshop", "application dataset: eshop | sock-shop | piggymetrics | hotel-reservation")
		optLimit = flag.Duration("opt-limit", 30*time.Second, "time cap for -algo opt")
		verbose  = flag.Bool("v", false, "print the full placement matrix")
		exportLP = flag.String("export-lp", "", "write the instance's ILP in CPLEX LP format to this file (for external solvers) and exit")
	)
	flag.Parse()

	if *writeScn != "" {
		if err := config.Default().Save(*writeScn); err != nil {
			fmt.Fprintln(os.Stderr, "socl:", err)
			os.Exit(1)
		}
		fmt.Println("wrote default scenario to", *writeScn)
		return
	}
	if *exportLP != "" {
		if err := doExportLP(*scenario, *nodes, *users, *budget, *lambda, *seed, *topo, *dataset, *exportLP); err != nil {
			fmt.Fprintln(os.Stderr, "socl:", err)
			os.Exit(1)
		}
		return
	}
	var err error
	if *scenario != "" {
		err = runScenario(*scenario, *algo, *optLimit, *verbose)
	} else {
		err = run(*nodes, *users, *budget, *lambda, *seed, *algo, *topo, *dataset, *optLimit, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "socl:", err)
		os.Exit(1)
	}
}

// doExportLP builds the instance and writes its Definition-4 ILP in CPLEX
// LP format, so users with Gurobi/CPLEX/SCIP can solve the exact model the
// paper's OPT baseline uses.
func doExportLP(scenario string, nodes, users int, budget, lambda float64, seed int64, topo, dataset, path string) error {
	var in *model.Instance
	if scenario != "" {
		sc, err := config.Load(scenario)
		if err != nil {
			return err
		}
		in, err = sc.Build()
		if err != nil {
			return err
		}
	} else {
		var err error
		in, err = buildInstance(nodes, users, budget, lambda, seed, topo, dataset)
		if err != nil {
			return err
		}
	}
	m, _ := ilp.BuildSoCLBounded(in)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ilp.WriteBoundedLP(f, m); err != nil {
		return err
	}
	fmt.Printf("wrote ILP (%d variables, %d constraints) to %s\n",
		m.Prob.NumVars, len(m.Prob.Constraints), path)
	return nil
}

// runScenario loads a JSON scenario and solves it with the chosen
// algorithm.
func runScenario(path, algo string, optLimit time.Duration, verbose bool) error {
	sc, err := config.Load(path)
	if err != nil {
		return err
	}
	in, err := sc.Build()
	if err != nil {
		return err
	}
	fmt.Printf("scenario=%s (%s topology, %s catalog)\n", sc.Name, sc.Topology.Kind, sc.Catalog.Kind)
	return solveAndReport(in, in.Workload.Catalog, algo, sc.Seed, optLimit, verbose)
}

func run(nodes, users int, budget, lambda float64, seed int64, algo, topo, dataset string, optLimit time.Duration, verbose bool) error {
	in, err := buildInstance(nodes, users, budget, lambda, seed, topo, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("nodes=%d users=%d budget=%.0f λ=%.2f seed=%d dataset=%s\n", nodes, users, budget, lambda, seed, dataset)
	return solveAndReport(in, in.Workload.Catalog, algo, seed, optLimit, verbose)
}

// buildInstance assembles the flag-driven instance shared by run and
// doExportLP.
func buildInstance(nodes, users int, budget, lambda float64, seed int64, topo, dataset string) (*model.Instance, error) {
	gcfg := topology.DefaultGenConfig()
	var g *topology.Graph
	switch topo {
	case "geometric":
		g = topology.RandomGeometric(nodes, 0.35, gcfg, seed)
	case "stadium":
		g = topology.Stadium(nodes, gcfg, seed)
	case "ringhubs":
		g = topology.RingHubs(nodes*3/4, nodes-nodes*3/4, gcfg, seed)
	case "grid":
		side := 1
		for side*side < nodes {
			side++
		}
		g = topology.Grid(side, side, gcfg, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}

	cat, err := msvc.CatalogByName(dataset, msvc.DefaultDatasetConfig(), seed)
	if err != nil {
		return nil, err
	}
	wcfg := msvc.DefaultWorkloadConfig(users)
	w, err := msvc.GenerateWorkload(cat, g, wcfg, seed)
	if err != nil {
		return nil, err
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: lambda, Budget: budget}, nil
}

// solveAndReport runs the chosen algorithm on in and prints the outcome.
func solveAndReport(in *model.Instance, cat *msvc.Catalog, algo string, seed int64, optLimit time.Duration, verbose bool) error {
	var placement model.Placement
	start := time.Now()
	switch algo {
	case "socl":
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			return err
		}
		placement = sol.Placement
		defer func() {
			fmt.Printf("stages: partition=%v preprov=%v combine=%v\n",
				sol.Stats.PartitionTime, sol.Stats.PreprovTime, sol.Stats.CombineTime)
			fmt.Printf("combine: removed=%d rolled-back=%d migrated=%d budget-met=%v\n",
				sol.Stats.Combined, sol.Stats.RolledBack, sol.Stats.Migrated, sol.Stats.BudgetMet)
		}()
	case "rp":
		placement = baselines.RP(in, seed)
	case "jdr":
		placement = baselines.JDR(in)
	case "gcog":
		res := baselines.GCOG(in)
		placement = res.Placement
		fmt.Printf("gcog: rounds=%d exact-evaluations=%d\n", res.Rounds, res.Evals)
	case "opt":
		res, err := opt.Solve(in, opt.Options{TimeLimit: optLimit})
		if err != nil {
			return err
		}
		if res.Status == opt.Infeasible || res.Status == opt.NoSolution {
			return fmt.Errorf("optimizer: %v after %v (%d nodes)", res.Status, res.Elapsed, res.Nodes)
		}
		placement = res.Placement
		fmt.Printf("opt: status=%v bb-nodes=%d star-objective=%.2f\n", res.Status, res.Nodes, res.StarObjective)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	elapsed := time.Since(start)

	ev := in.Evaluate(placement)
	fmt.Printf("algorithm=%s\n", algo)
	fmt.Printf("objective=%.2f cost=%.2f latency-sum=%.2f instances=%d runtime=%v\n",
		ev.Objective, ev.Cost, ev.LatencySum, placement.Instances(), elapsed)
	fmt.Printf("feasible=%v (missing=%d deadline-violations=%d storage-violation-node=%d over-budget=%v)\n",
		ev.Feasible(), ev.MissingInstances, ev.DeadlineViolated, ev.StorageViolatedAt, ev.OverBudget)

	if verbose {
		fmt.Println("placement (service: nodes):")
		for i := 0; i < in.M(); i++ {
			nodesOf := placement.NodesOf(i)
			if len(nodesOf) == 0 {
				continue
			}
			fmt.Printf("  %-20s %v\n", cat.Service(i).Name, nodesOf)
		}
	}
	return nil
}
