package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/chaos"
	"repro/internal/combine"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/repair"
	"repro/internal/topology"
)

// benchResult is one benchmark's measurement in BENCH_<date>.json.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchFile is the BENCH_<date>.json layout: a dated snapshot of the hot
// paths the perf work targets, written by `soclbench -benchjson <dir>` so
// before/after evidence can be committed next to the results CSVs. Workers
// is the effective pool size the *Parallel benchmarks ran with (the -workers
// flag resolved exactly as the solvers resolve it: 0 = GOMAXPROCS), and CPUs
// the machine's logical core count — together they say whether a snapshot's
// parallel numbers can show real speedup or were taken on a serial box.
type benchFile struct {
	Date       string                 `json:"date"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	CPUs       int                    `json:"cpus"`
	Workers    int                    `json:"workers"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchJSONInstance mirrors the root bench harness's benchInstance so the
// JSON numbers are comparable with `go test -bench` output.
func benchJSONInstance(nodes, users int, seed int64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}

// runBenchJSON measures the delta-engine hot paths (incremental GC-OG and
// its naive reference, the combine serial descent, the Fig. 8 sweep) via
// testing.Benchmark and writes dir/BENCH_<date>.json.
func runBenchJSON(dir string, workers int) error {
	// Resolve the worker knob exactly as the solvers do, so the recorded
	// value is what the *Parallel benchmarks actually ran with instead of a
	// literal 0.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gcogIn := benchJSONInstance(10, 40, 1)
	combineIn := benchJSONInstance(25, 250, 1)
	combineIn.Budget = 1e9
	part := partition.Build(combineIn, partition.DefaultConfig())
	pre := preprov.Run(combineIn, part)
	fig8Opts := experiments.Options{Short: true, Seed: 1, Workers: workers}
	optIn := benchJSONInstance(8, 10, 1)
	ilpIn := benchJSONInstance(4, 4, 1)

	// Sharded-combine smoke: one clustered instance solved per region and by
	// the single-shard global reference, at the configured worker count.
	shardedIn, shardedPlan := benchJSONClustered(4, 8, 240, 1)
	shardedCfg := combine.DefaultShardedConfig()
	shardedCfg.Workers = workers
	shardedCfg.Seed = 1

	// Fault-repair smoke: crash two hosting nodes, degrade a link, shrink a
	// node, then measure the incremental repair against its full-re-solve-
	// routing reference (identical decisions; see internal/repair).
	chaosIn := benchJSONInstance(10, 40, 1)
	chaosP := baselines.JDR(chaosIn)
	chaosMask := chaos.NewMask(chaosIn.Graph)
	crashed := 0
	for k := 0; k < chaosIn.V() && crashed < 2; k++ {
		for i := range chaosP.X {
			if chaosP.Has(i, k) {
				mustApplyFault(chaosMask, chaos.Event{Kind: chaos.NodeCrash, Node: k})
				crashed++
				break
			}
		}
	}
	l := chaosMask.Links()[0]
	mustApplyFault(chaosMask, chaos.Event{Kind: chaos.LinkDegrade, A: l.A, B: l.B, Factor: 0.25})
	mustApplyFault(chaosMask, chaos.Event{Kind: chaos.StorageShrink, Node: chaosIn.V() - 1, Factor: 0.5})

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BaselineGCOG", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baselines.GCOG(gcogIn)
			}
		}},
		{"BaselineGCOGNaive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baselines.GCOGWithConfig(gcogIn, baselines.GCOGConfig{Naive: true})
			}
		}},
		{"CombineSerial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				combine.Run(combineIn, part, pre.Placement, combine.DefaultConfig())
			}
		}},
		{"Fig8Short", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.Fig8(fig8Opts)
			}
		}},
		// Sharded vs global combine on the same clustered instance (the
		// ext_scale comparison at smoke scale). The gap between the two is
		// the per-shard table-build and routing saving; on a single-core
		// runner it is purely algorithmic.
		{"ShardedCombine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRunSharded(shardedIn, shardedPlan, shardedCfg)
			}
		}},
		{"ShardedCombineGlobal", func(b *testing.B) {
			cfg := shardedCfg
			cfg.Naive = true
			for i := 0; i < b.N; i++ {
				mustRunSharded(shardedIn, shardedPlan, cfg)
			}
		}},
		// Exact-solver stack (the Fig2/Fig7 OPT columns): naive serial
		// reference vs the deterministic engine at one worker vs the engine
		// at the configured worker count. On a single-core runner the last
		// two coincide — the parallel speedup needs a multicore runner.
		{"OptSolveNaive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveOpt(optIn, opt.Options{TimeLimit: 30 * time.Second, Naive: true})
			}
		}},
		{"OptSolveSerial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveOpt(optIn, opt.Options{TimeLimit: 30 * time.Second, Workers: 1})
			}
		}},
		{"OptSolveParallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveOpt(optIn, opt.Options{TimeLimit: 30 * time.Second, Workers: workers})
			}
		}},
		// Same solve on the retired fixed-frontier scheduler: the difference
		// against OptSolveParallel is the work-stealing win on skewed trees.
		{"OptSolveParallelStatic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveOpt(optIn, opt.Options{TimeLimit: 30 * time.Second, Workers: workers, StaticFrontier: true})
			}
		}},
		{"ChaosRepair", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				repair.Run(chaosIn, chaosMask, chaosP, repair.DefaultConfig())
			}
		}},
		{"ChaosRepairNaive", func(b *testing.B) {
			cfg := repair.DefaultConfig()
			cfg.Naive = true
			for i := 0; i < b.N; i++ {
				repair.Run(chaosIn, chaosMask, chaosP, cfg)
			}
		}},
		{"ILPSolveNaive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveILP(ilpIn, ilp.Options{TimeLimit: time.Minute, Naive: true})
			}
		}},
		{"ILPSolveSerial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveILP(ilpIn, ilp.Options{TimeLimit: time.Minute, Workers: 1})
			}
		}},
		{"ILPSolveParallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveILP(ilpIn, ilp.Options{TimeLimit: time.Minute, Workers: workers})
			}
		}},
		{"ILPSolveParallelStatic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveILP(ilpIn, ilp.Options{TimeLimit: time.Minute, Workers: workers, StaticFrontier: true})
			}
		}},
		// Serial solve on the dense tableau engine: the gap against
		// ILPSolveSerial is the sparse revised-simplex win per node LP.
		{"ILPSolveSerialDense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSolveILP(ilpIn, ilp.Options{TimeLimit: time.Minute, Workers: 1, DenseLP: true})
			}
		}},
	}

	out := benchFile{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Workers:    workers,
		Benchmarks: map[string]benchResult{},
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "[bench %s]\n", bench.name)
		r := testing.Benchmark(bench.fn)
		out.Benchmarks[bench.name] = benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Multicore snapshots get an _mp<N> suffix so they sit next to (never
	// overwrite) the single-core file from the same day: the serial numbers
	// stay comparable across days while the suffixed file carries the honest
	// parallel-speedup evidence.
	name := "BENCH_" + out.Date
	if out.GoMaxProcs > 1 {
		name += fmt.Sprintf("_mp%d", out.GoMaxProcs)
	}
	path := filepath.Join(dir, name+".json")
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
	return nil
}

// benchJSONClustered builds the sharded-combine smoke fixture: a clustered
// substrate (unfinalized, as RunSharded expects) with a uniform no-deadline
// workload and the region shard plan.
func benchJSONClustered(regions, perRegion, users int, seed int64) (*model.Instance, *topology.ShardPlan) {
	g, regionNodes := topology.Clustered(topology.DefaultClusterConfig(regions, perRegion), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	cfg.Hotspot = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	kappa := 0.0
	for i := 0; i < cat.Len(); i++ {
		kappa += cat.Service(i).DeployCost
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.05, Budget: 1.5 * float64(regions) * kappa}
	plan, err := topology.PlanShards(g, regionNodes)
	if err != nil {
		panic(err)
	}
	return in, plan
}

func mustRunSharded(in *model.Instance, plan *topology.ShardPlan, cfg combine.ShardedConfig) {
	if _, err := combine.RunSharded(in, plan, cfg); err != nil {
		panic(err)
	}
}

func mustApplyFault(m *chaos.Mask, ev chaos.Event) {
	if err := m.Apply(ev); err != nil {
		panic(err)
	}
}

func mustSolveOpt(in *model.Instance, o opt.Options) {
	if _, err := opt.Solve(in, o); err != nil {
		panic(err)
	}
}

func mustSolveILP(in *model.Instance, o ilp.Options) {
	m, _ := ilp.BuildSoCLBounded(in)
	if _, err := ilp.SolveBounded(m, o); err != nil {
		panic(err)
	}
}
