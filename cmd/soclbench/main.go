// Command soclbench regenerates the SoCL paper's evaluation tables and
// figures (Figs. 2, 3, 4, 7, 8, 9, 10) using the drivers in
// internal/experiments. Results print as text tables and, with -out, are
// also written as one CSV per table.
//
// Usage:
//
//	soclbench -experiment all -out results/
//	soclbench -experiment fig7 -short
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2 | fig3 | fig4 | fig7 | fig8 | fig9 | fig10 | all | ext_budget | ext_lambda | ext_omega | ext_xi | ext_routing | ext_online | ext_decompose | ext_contention | ext_cloud | ext_cluster | ext_datasets | ext_combinebench | ext_faults | ext_serve | ext_scale | ext_coldstart | ext_overload | ext (all extensions)")
		short      = flag.Bool("short", false, "reduced scales for a quick run")
		seed       = flag.Int64("seed", 1, "root random seed")
		out        = flag.String("out", "", "directory for CSV output (optional)")
		svg        = flag.String("svg", "", "directory for SVG chart output (optional)")
		replot     = flag.String("replot", "", "re-render SVGs from existing CSVs in this directory (skips running experiments)")
		optLimit   = flag.Duration("opt-limit", 0, "per-solve cap for the exact optimizer (default 30s, 3s with -short)")
		workers    = flag.Int("workers", 0, "worker pool size for sweeps and the exact solver's branch-and-bound (0 = GOMAXPROCS, 1 = serial; tables are identical either way)")
		shards     = flag.Int("shards", 0, "override the region count of the ext_scale clustered substrates (0 = per-point default)")
		benchjson  = flag.String("benchjson", "", "run the smoke benchmark suite and write BENCH_<date>.json into this directory (skips experiments)")
	)
	flag.Parse()

	if *benchjson != "" {
		if err := runBenchJSON(*benchjson, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "soclbench:", err)
			os.Exit(1)
		}
		return
	}

	if *replot != "" {
		dst := *svg
		if dst == "" {
			dst = *replot
		}
		n, err := experiments.Replot(*replot, dst)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soclbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[replotted %d charts into %s]\n", n, dst)
		return
	}
	opts := experiments.Options{Short: *short, Seed: *seed, OutDir: *out, OptTimeLimit: *optLimit, Workers: *workers, Shards: *shards}
	if err := run(*experiment, opts, *svg); err != nil {
		fmt.Fprintln(os.Stderr, "soclbench:", err)
		os.Exit(1)
	}
}

func run(which string, opts experiments.Options, svgDir string) error {
	start := time.Now()
	var tables []*experiments.Table
	add := func(ts ...*experiments.Table) { tables = append(tables, ts...) }

	runOne := func(id string) error {
		t0 := time.Now()
		switch id {
		case "fig2":
			add(experiments.Fig2(opts))
		case "fig3":
			a, b := experiments.Fig3(opts)
			add(a, b)
		case "fig4":
			add(experiments.Fig4(opts))
		case "fig7":
			a, b := experiments.Fig7(opts)
			add(a, b)
		case "fig8":
			add(experiments.Fig8(opts))
		case "fig9":
			add(experiments.Fig9(opts))
		case "fig10":
			a, b := experiments.Fig10(opts)
			add(a, b)
		case "ext_budget":
			add(experiments.ExtBudget(opts))
		case "ext_lambda":
			add(experiments.ExtLambda(opts))
		case "ext_omega":
			add(experiments.ExtOmega(opts))
		case "ext_xi":
			add(experiments.ExtXi(opts))
		case "ext_routing":
			add(experiments.ExtRouting(opts))
		case "ext_online":
			add(experiments.ExtOnline(opts))
		case "ext_decompose":
			add(experiments.ExtDecompose(opts))
		case "ext_contention":
			add(experiments.ExtContention(opts))
		case "ext_cloud":
			add(experiments.ExtCloud(opts))
		case "ext_cluster":
			add(experiments.ExtCluster(opts))
		case "ext_datasets":
			add(experiments.ExtDatasets(opts))
		case "ext_combinebench":
			add(experiments.ExtCombineBench(opts))
		case "ext_faults":
			add(experiments.ExtFaults(opts))
		case "ext_serve":
			add(experiments.ExtServe(opts))
		case "ext_scale":
			add(experiments.ExtScale(opts))
		case "ext_coldstart":
			add(experiments.ExtColdstart(opts))
		case "ext_overload":
			add(experiments.ExtOverload(opts))
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	switch which {
	case "all":
		for _, id := range []string{"fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10"} {
			if err := runOne(id); err != nil {
				return err
			}
		}
	case "ext":
		for _, id := range []string{"ext_budget", "ext_lambda", "ext_omega", "ext_xi", "ext_routing", "ext_online", "ext_decompose", "ext_contention", "ext_cloud", "ext_cluster", "ext_datasets", "ext_combinebench", "ext_faults", "ext_serve", "ext_scale", "ext_coldstart", "ext_overload"} {
			if err := runOne(id); err != nil {
				return err
			}
		}
	default:
		if err := runOne(which); err != nil {
			return err
		}
	}

	if err := experiments.Emit(os.Stdout, opts, tables...); err != nil {
		return err
	}
	if svgDir != "" {
		if err := experiments.WriteSVGs(svgDir, tables...); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))
	return nil
}
