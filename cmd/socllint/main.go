// Command socllint is the project's multichecker: it runs the nine
// repo-specific analyzers from internal/analysis over the requested packages
// and, unless -vet=false, chains the standard `go vet` passes behind them.
//
// Usage:
//
//	go run ./cmd/socllint ./...
//	go run ./cmd/socllint -json ./internal/ilp
//	go run ./cmd/socllint -fix ./...
//	go run ./cmd/socllint -update-baseline ./...
//
// Diagnostics print as file:line:col: [analyzer] message, or as a JSON
// object with -json. -fix applies the analyzers' suggested fixes (loop
// variable shadowing, missing defer unlocks), refusing files with
// overlapping edits, and reformats the touched files. Intentional
// violations are suppressed with a reasoned directive on the offending line
// or the line above:
//
//	//socllint:ignore <analyzer>[,<analyzer>] <reason>
//
// Suppressed-diagnostic counts are ratcheted against the committed
// socllint.baseline.json: a run whose per-analyzer suppression count
// exceeds the baseline fails, and -update-baseline rewrites the file (use
// it only to tighten, or alongside a reviewed new ignore). The process
// exits 1 when any diagnostic survives suppression, the ratchet is
// violated, a pattern matches no packages, or go vet fails; 0 otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/format"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/applyrevert"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockbalance"
	"repro/internal/analysis/parclosure"
	"repro/internal/analysis/placementmut"
	"repro/internal/analysis/sentinelerr"
	"repro/internal/analysis/snapshotpair"
	"repro/internal/analysis/splitseed"
)

var analyzers = []*analysis.Analyzer{
	placementmut.Analyzer,
	snapshotpair.Analyzer,
	floateq.Analyzer,
	sentinelerr.Analyzer,
	detrand.Analyzer,
	parclosure.Analyzer,
	splitseed.Analyzer,
	applyrevert.Analyzer,
	lockbalance.Analyzer,
}

const baselineName = "socllint.baseline.json"

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`
}

// baselineFile is the committed suppression ratchet.
type baselineFile struct {
	Comment    string         `json:"comment,omitempty"`
	Suppressed map[string]int `json:"suppressed"`
}

// fixEdit is one text edit resolved to byte offsets in a file.
type fixEdit struct {
	start, end int
	text       string
}

func main() {
	vet := flag.Bool("vet", true, "also run `go vet` over the same patterns")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics and suppression counts as JSON")
	fix := flag.Bool("fix", false, "apply suggested fixes and reformat the touched files")
	baselinePath := flag.String("baseline", "", "suppression baseline file (default <module>/"+baselineName+")")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the suppression baseline from this run")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modDir, modPath, err := findModule()
	if err != nil {
		fatal(err)
	}
	dirs, err := expand(modDir, patterns)
	if err != nil {
		// A pattern matching nothing is a misconfigured invocation (a moved
		// package silently unlinted), not a crash: exit 1, not 2.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *baselinePath == "" {
		*baselinePath = filepath.Join(modDir, baselineName)
	}

	// Load every requested package first: LoadDir populates directives and
	// function summaries as a side effect, so by the time analyzers run, the
	// fact tables cover everything they can reach.
	loader := load.New(load.Config{ModulePath: modPath, ModuleDir: modDir})
	pkgs := make([]*load.Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(modDir, dir)
		if err != nil {
			fatal(err)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fatal(fmt.Errorf("socllint: %w", err))
		}
		pkgs = append(pkgs, pkg)
	}

	exit := 0
	var diags []jsonDiag
	fixes := map[string][]fixEdit{} // file -> edits
	suppressed := map[string]int{}
	for _, pkg := range pkgs {
		res, err := analysis.Run(pkg.Target(), analyzers, loader.Facts())
		if err != nil {
			fatal(fmt.Errorf("socllint: %s: %w", pkg.ImportPath, err))
		}
		for name, n := range res.Suppressed {
			suppressed[name] += n
		}
		for _, d := range res.Diagnostics {
			pos := d.Position(loader.Fset())
			file := pos.Filename
			if r, err := filepath.Rel(modDir, file); err == nil {
				file = r
			}
			diags = append(diags, jsonDiag{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
				Fixable: len(d.SuggestedFixes) > 0,
			})
			exit = 1
			if *fix {
				for _, sf := range d.SuggestedFixes {
					for _, te := range sf.TextEdits {
						start := loader.Fset().Position(te.Pos)
						end := loader.Fset().Position(te.End)
						fixes[start.Filename] = append(fixes[start.Filename],
							fixEdit{start: start.Offset, end: end.Offset, text: te.NewText})
					}
				}
			}
		}
	}

	if *fix {
		if err := applyFixes(fixes, modDir); err != nil {
			fatal(fmt.Errorf("socllint: %w", err))
		}
	}

	fullRun := len(patterns) == 1 && patterns[0] == "./..."
	ratchetErrs := checkBaseline(*baselinePath, suppressed, *updateBaseline, fullRun)
	if len(ratchetErrs) > 0 {
		exit = 1
	}

	if *jsonOut {
		out := struct {
			Diagnostics []jsonDiag     `json:"diagnostics"`
			Suppressed  map[string]int `json:"suppressed"`
			Ratchet     []string       `json:"ratchet,omitempty"`
		}{Diagnostics: diags, Suppressed: suppressed, Ratchet: ratchetErrs}
		if out.Diagnostics == nil {
			out.Diagnostics = []jsonDiag{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
		for _, msg := range ratchetErrs {
			fmt.Fprintln(os.Stderr, "socllint: "+msg)
		}
		fmt.Printf("socllint: %d package(s), %d diagnostic(s), suppressed: %s\n",
			len(pkgs), len(diags), formatCounts(suppressed))
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			var exitErr *exec.ExitError
			if !errors.As(err, &exitErr) {
				fatal(fmt.Errorf("socllint: running go vet: %w", err))
			}
			exit = 1
		}
	}
	os.Exit(exit)
}

// formatCounts renders per-analyzer suppression counts, sorted by name.
func formatCounts(m map[string]int) string {
	if len(m) == 0 {
		return "none"
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, m[name]))
	}
	return strings.Join(parts, " ")
}

// checkBaseline enforces (or rewrites) the suppression ratchet and returns
// violation messages. The exceed check always runs (a subset's counts are a
// lower bound on the full run's, so it can only under-report, never
// false-fail); the can-tighten hint only makes sense for a full ./... run.
func checkBaseline(path string, suppressed map[string]int, update, fullRun bool) []string {
	if update {
		bl := baselineFile{
			Comment:    "suppression ratchet: per-analyzer //socllint:ignore counts may only go down; rewrite with -update-baseline",
			Suppressed: suppressed,
		}
		data, err := json.MarshalIndent(bl, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(fmt.Errorf("socllint: writing baseline: %w", err))
		}
		fmt.Fprintf(os.Stderr, "socllint: baseline updated: %s\n", path)
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "socllint: no baseline at %s; run -update-baseline to start the ratchet\n", path)
			return nil
		}
		fatal(fmt.Errorf("socllint: reading baseline: %w", err))
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		fatal(fmt.Errorf("socllint: parsing %s: %w", path, err))
	}
	var errs []string
	for name, n := range suppressed {
		if n > bl.Suppressed[name] {
			errs = append(errs, fmt.Sprintf(
				"ratchet: %d suppressed %s diagnostics exceed the baseline %d; remove an ignore, or update the baseline alongside the reviewed new one",
				n, name, bl.Suppressed[name]))
		}
	}
	sort.Strings(errs)
	for name, base := range bl.Suppressed {
		if cur := suppressed[name]; fullRun && cur < base {
			fmt.Fprintf(os.Stderr,
				"socllint: ratchet can tighten: %s suppressions dropped %d -> %d; run -update-baseline\n",
				name, base, cur)
		}
	}
	return errs
}

// applyFixes applies the collected suggested fixes file by file, refusing
// files whose edits overlap, and reformats the result.
func applyFixes(fixes map[string][]fixEdit, modDir string) error {
	files := make([]string, 0, len(fixes))
	for f := range fixes {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := fixes[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return fmt.Errorf("%s: overlapping suggested fixes at offsets %d and %d; apply one and re-run",
					file, edits[i-1].start, edits[i].start)
			}
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var b strings.Builder
		last := 0
		for _, e := range edits {
			if e.start < last || e.end > len(src) {
				return fmt.Errorf("%s: suggested fix out of range", file)
			}
			b.Write(src[last:e.start])
			b.WriteString(e.text)
			last = e.end
		}
		b.Write(src[last:])
		formatted, err := format.Source([]byte(b.String()))
		if err != nil {
			return fmt.Errorf("%s: fixed source does not format: %w", file, err)
		}
		if err := os.WriteFile(file, formatted, 0o644); err != nil {
			return err
		}
		rel := file
		if r, err := filepath.Rel(modDir, file); err == nil {
			rel = r
		}
		fmt.Fprintf(os.Stderr, "socllint: fixed %s (%d edit(s))\n", rel, len(edits))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// findModule walks up from the working directory to go.mod and returns the
// module directory and path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		modFile := filepath.Join(dir, "go.mod")
		if f, err := os.Open(modFile); err == nil {
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					f.Close()
					return dir, strings.TrimSpace(rest), nil
				}
			}
			f.Close()
			return "", "", fmt.Errorf("socllint: no module line in %s", modFile)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("socllint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to package directories. A trailing /...
// walks recursively; testdata, vendor, and dot-directories are skipped, as
// are directories without non-test Go files. A pattern matching no package
// directory is an error: it means a moved or renamed tree is silently
// escaping the lint.
func expand(modDir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) bool {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return false
		}
		if seen[abs] {
			return true
		}
		if !hasBuildableGo(abs) {
			return false
		}
		seen[abs] = true
		out = append(out, abs)
		return true
	}
	for _, pat := range patterns {
		matched := false
		recursive := false
		dir := pat
		if strings.HasSuffix(dir, "/...") {
			recursive = true
			dir = strings.TrimSuffix(dir, "/...")
		}
		if dir == "" || dir == "." {
			dir = "."
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Clean(dir)
		}
		if !recursive {
			matched = add(dir)
		} else {
			err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if add(p) {
					matched = true
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("socllint: expanding %s: %w", pat, err)
			}
		}
		if !matched {
			return nil, fmt.Errorf("socllint: pattern %s matches no package directories", pat)
		}
	}
	return out, nil
}

// hasBuildableGo reports whether dir directly contains a non-test Go file.
func hasBuildableGo(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}
