// Command socllint is the project's multichecker: it runs the five
// repo-specific analyzers from internal/analysis over the requested packages
// and, unless -vet=false, chains the standard `go vet` passes behind them.
//
// Usage:
//
//	go run ./cmd/socllint ./...
//	go run ./cmd/socllint -vet=false ./internal/combine ./internal/model
//
// Diagnostics print as file:line:col: [analyzer] message. Intentional
// violations are suppressed with a reasoned directive on the offending line
// or the line above:
//
//	//socllint:ignore <analyzer>[,<analyzer>] <reason>
//
// The process exits 1 when any diagnostic survives suppression (or go vet
// fails), 0 otherwise.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/load"
	"repro/internal/analysis/placementmut"
	"repro/internal/analysis/sentinelerr"
	"repro/internal/analysis/snapshotpair"
)

var analyzers = []*analysis.Analyzer{
	placementmut.Analyzer,
	snapshotpair.Analyzer,
	floateq.Analyzer,
	sentinelerr.Analyzer,
	detrand.Analyzer,
}

func main() {
	vet := flag.Bool("vet", true, "also run `go vet` over the same patterns")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modDir, modPath, err := findModule()
	if err != nil {
		fatal(err)
	}
	dirs, err := expand(modDir, patterns)
	if err != nil {
		fatal(err)
	}

	loader := load.New(load.Config{ModulePath: modPath, ModuleDir: modDir})
	exit := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(modDir, dir)
		if err != nil {
			fatal(err)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fatal(fmt.Errorf("socllint: %w", err))
		}
		diags, err := analysis.Run(pkg.Target(), analyzers, loader.FuncDirectives)
		if err != nil {
			fatal(fmt.Errorf("socllint: %s: %w", importPath, err))
		}
		for _, d := range diags {
			pos := d.Position(loader.Fset())
			file := pos.Filename
			if r, err := filepath.Rel(modDir, file); err == nil {
				file = r
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
			exit = 1
		}
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Dir = "" // current directory, like the analyzers
		if err := cmd.Run(); err != nil {
			var exitErr *exec.ExitError
			if !errors.As(err, &exitErr) {
				fatal(fmt.Errorf("socllint: running go vet: %w", err))
			}
			exit = 1
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// findModule walks up from the working directory to go.mod and returns the
// module directory and path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		modFile := filepath.Join(dir, "go.mod")
		if f, err := os.Open(modFile); err == nil {
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					f.Close()
					return dir, strings.TrimSpace(rest), nil
				}
			}
			f.Close()
			return "", "", fmt.Errorf("socllint: no module line in %s", modFile)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("socllint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to package directories. A trailing /...
// walks recursively; testdata, vendor, and dot-directories are skipped, as
// are directories without non-test Go files.
func expand(modDir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] && hasBuildableGo(abs) {
			seen[abs] = true
			out = append(out, abs)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Clean(root)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// hasBuildableGo reports whether dir directly contains a non-test Go file.
func hasBuildableGo(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}
