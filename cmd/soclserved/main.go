// Command soclserved is the long-running placement daemon over the SoCL
// stack (internal/serve): it owns a live substrate and placement and ingests
// an event stream — request arrivals, departures, user moves, fault strikes
// and heals — reacting incrementally through the delta evaluator and the
// repair engine, and escalating to a full re-solve only past a configurable
// degradation threshold.
//
// The daemon speaks the recorded event-script format (serve.WriteScript /
// serve.ParseScript), so a batch simulation can be recorded once and served
// many ways:
//
//	soclserved -record events.txt -nodes 12 -users 15 -slots 24 -fail-rate 0.15
//	soclserved -script events.txt                  # serve mode (incremental)
//	soclserved -script events.txt -replay -policy repair   # bitwise sim replay
//	soclserved -script events.txt -idle-epochs 2 -warm-pool 1 -cold-start 0.25
//	soclserved -selftest                           # record→replay→compare, CI smoke
//
// In replay mode the daemon re-plans every epoch exactly like the batch
// simulator's slot loop and its evaluation stream is bitwise identical to
// sim.Run over the same scenario (use -policy repair for scripts recorded
// with faults, -policy none for fault-free ones). Serve mode solves once and
// afterwards reacts incrementally; adding -idle-epochs enables the
// serverless lifecycle (scale-to-zero, warm-pool sizing, cold-start
// pricing).
//
// The daemon also speaks a framed wire protocol (internal/transport), so
// live clients can drive it instead of script playback:
//
//	soclserved -listen unix:/tmp/socl.sock -once            # socket frontend
//	soclserved -listen tcp:127.0.0.1:7070 -unordered -deadline 1 \
//	    -queue 64 -capacity 16 -breaker                     # hardened frontend
//	soclserved -listen http:127.0.0.1:8080                  # loopback HTTP
//	soclserved -send unix:/tmp/socl.sock -script events.txt # load client
//	soclserved -send tcp:127.0.0.1:7070 -script events.txt \
//	    -unreliable -chaos-drop 0.3                         # open-loop + chaos
//	soclserved -selftest-transport                          # wire CI smoke
//
// A reliable (default) session retransmits until acknowledged and the
// ordered server admits in sequence order, so even a chaos-impaired wire
// yields a recorded stream identical to the sent script and a bitwise
// replay. -unordered plus -deadline/-queue/-capacity/-breaker is the
// overload regime: late events are shed, reaction costs debit admission
// capacity, and the circuit breaker degrades service (stale placement →
// cloud offload → shed) instead of collapsing.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		record   = flag.String("record", "", "record the scenario's event stream to this file ('-' = stdout) and exit")
		script   = flag.String("script", "", "event script to serve ('-' = stdin)")
		selftest = flag.Bool("selftest", false, "record a scenario, replay it through the daemon, and verify bitwise against the batch simulator (non-zero exit on mismatch)")

		nodes    = flag.Int("nodes", 12, "edge nodes (record/selftest scenario)")
		radius   = flag.Float64("radius", 0.4, "geometric topology radius")
		users    = flag.Int("users", 15, "users issuing requests")
		seed     = flag.Int64("seed", 1, "root random seed")
		slots    = flag.Int("slots", 24, "scenario length in slots")
		slotmin  = flag.Float64("slotmin", 0, "slot length in minutes (0 = simulator default)")
		failRate = flag.Float64("fail-rate", 0.15, "per-slot fault probability (0 = no fault schedule)")

		policy    = flag.String("policy", "auto", "reaction policy: auto | none | repair | resolve")
		threshold = flag.Float64("resolve-threshold", serve.DefaultResolveThreshold, "auto policy: post-repair unserved fraction past which to re-solve (negative disables escalation)")
		replay    = flag.Bool("replay", false, "replay mode: re-plan every epoch like the batch simulator (bitwise-comparable)")
		batch     = flag.Int("batch", 0, "max arrivals admitted per epoch, overflow deferred (0 = unlimited; serve mode only)")

		idleEpochs  = flag.Int("idle-epochs", 0, "scale an instance to zero after this many idle epochs (0 disables the serverless lifecycle)")
		warmPool    = flag.Int("warm-pool", 0, "minimum warm instances kept per service")
		warmWindow  = flag.Int("warm-window", 0, "demand window, in epochs, for the warm-pool sizer (0 = default)")
		reqsPerWarm = flag.Int("reqs-per-warm", 0, "demand a single warm instance absorbs, for the sizer (0 = default)")
		coldStart   = flag.Float64("cold-start", 0, "cold-start latency added per chain step on a cold instance")

		listen     = flag.String("listen", "", "serve the framed wire protocol on unix:PATH, tcp:HOST:PORT, or http:HOST:PORT")
		once       = flag.Bool("once", false, "with -listen: exit after the first session finishes, printing its report")
		send       = flag.String("send", "", "play -script at a listening daemon (unix:PATH or tcp:HOST:PORT)")
		unreliable = flag.Bool("unreliable", false, "with -send: open-loop mode — fire event frames once, no retransmission")
		unordered  = flag.Bool("unordered", false, "with -listen: admit frames as they arrive instead of in sequence order (the shedding regime)")
		deadline   = flag.Int("deadline", 0, "with -listen: default per-event latency budget in slots; blown budgets are shed (0 = unlimited)")
		queue      = flag.Int("queue", 0, "with -listen: admission queue bound (0 = unbounded)")
		capacity   = flag.Int("capacity", 0, "with -listen: admission work units per epoch, debited by reaction costs (0 = unlimited)")
		breakerOn  = flag.Bool("breaker", false, "with -listen: circuit-break the reaction path and degrade (stale serve → cloud offload → shed)")
		costBudget = flag.Int("cost-budget", 0, "with -breaker: reaction work units counted as an overrun failure (0 = errors only)")
		budget     = flag.Int("budget-slots", 0, "with -send: per-event deadline budget stamped on the wire (0 = server default)")
		chaosDrop  = flag.Float64("chaos-drop", 0, "with -send: per-frame drop probability on the client's sends")
		chaosDup   = flag.Float64("chaos-dup", 0, "with -send: per-frame duplication probability")
		chaosDelay = flag.Float64("chaos-delay", 0, "with -send: per-frame reorder-delay probability")

		selftestTransport = flag.Bool("selftest-transport", false, "run the wire-protocol smoke: chaos-impaired reliable session must replay bitwise; hardened open-loop session must survive")

		csvPath = flag.String("csv", "", "write per-epoch records as CSV to this file")
		quiet   = flag.Bool("quiet", false, "suppress the per-epoch table, print only the summary")
	)
	flag.Parse()

	if err := run(options{
		record: *record, script: *script, selftest: *selftest,
		nodes: *nodes, radius: *radius, users: *users, seed: *seed,
		slots: *slots, slotmin: *slotmin, failRate: *failRate,
		policy: *policy, threshold: *threshold, replay: *replay, batch: *batch,
		listen: *listen, once: *once, send: *send, unreliable: *unreliable,
		unordered: *unordered, deadline: *deadline, queue: *queue,
		capacity: *capacity, breakerOn: *breakerOn, costBudget: *costBudget,
		budget: *budget, drop: *chaosDrop, dup: *chaosDup, delay: *chaosDelay,
		selftestTransport: *selftestTransport,
		lifecycle: serve.LifecycleConfig{
			IdleEpochs:     *idleEpochs,
			WarmPool:       *warmPool,
			WarmWindow:     *warmWindow,
			ReqsPerWarm:    *reqsPerWarm,
			ColdStartDelay: *coldStart,
		},
		csvPath: *csvPath, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "soclserved:", err)
		os.Exit(1)
	}
}

type options struct {
	record, script string
	selftest       bool

	nodes, users, slots int
	radius, slotmin     float64
	failRate            float64
	seed                int64
	policy              string
	threshold           float64
	replay              bool
	batch               int
	lifecycle           serve.LifecycleConfig
	csvPath             string
	quiet               bool

	// Transport modes (transport.go).
	listen, send      string
	once              bool
	unreliable        bool
	unordered         bool
	deadline          int
	queue             int
	capacity          int
	breakerOn         bool
	costBudget        int
	budget            int
	drop, dup, delay  float64
	selftestTransport bool
}

func run(o options) error {
	switch {
	case o.selftest:
		return selfTest(o)
	case o.selftestTransport:
		return selfTestTransport(o)
	case o.record != "":
		return recordScenario(o)
	case o.listen != "":
		return runListen(o)
	case o.send != "":
		return runSendload(o)
	case o.script != "":
		return serveScript(o)
	default:
		return fmt.Errorf("nothing to do: pass -record, -script, -listen, -send, or -selftest (see -h)")
	}
}

// scenario builds the batch-simulator configuration the record/selftest
// modes share; its event stream is what the daemon serves.
func scenario(o options) sim.Config {
	g := topology.RandomGeometric(o.nodes, o.radius, topology.DefaultGenConfig(), o.seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), o.seed)
	cfg := sim.DefaultConfig(g, cat, o.users, o.seed)
	if o.slotmin > 0 {
		cfg.SlotMinutes = o.slotmin
	}
	cfg.DurationMinutes = float64(o.slots) * cfg.SlotMinutes
	if o.failRate > 0 {
		scfg := chaos.DefaultScheduleConfig()
		scfg.NodeFailProb = o.failRate
		scfg.LinkFailProb = o.failRate
		scfg.StorageShrinkProb = o.failRate / 2
		scfg.MinNodesUp = o.nodes / 2
		cfg.Faults = chaos.Generate(g, o.slots, scfg, o.seed)
		cfg.Policy = sim.PolicyRepair
	}
	return cfg
}

// stream records the scenario's event stream and stamps the topology
// provenance (radius and seeds) the daemon needs to rebuild the substrate
// from the script alone.
func stream(o options, cfg sim.Config) (*serve.Script, error) {
	s, err := sim.EventStream(cfg)
	if err != nil {
		return nil, err
	}
	s.Meta.Radius = o.radius
	s.Meta.TopoSeed = o.seed
	s.Meta.CatSeed = o.seed
	return s, nil
}

func recordScenario(o options) error {
	s, err := stream(o, scenario(o))
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if o.record != "-" {
		f, err := os.Create(o.record)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := serve.WriteScript(w, s); err != nil {
		return err
	}
	if o.record != "-" {
		fmt.Fprintf(os.Stderr, "recorded %d events over %d slots to %s\n",
			len(s.Events), s.Meta.NumSlots, o.record)
	}
	return nil
}

// daemonConfig rebuilds the substrate from the script's meta line and wires
// the daemon to the warm-started SoCL online solver: the planner is its
// Place, and the repair seam is its Repair, so incremental rounds feed the
// solver's warm state.
func daemonConfig(o options, meta serve.Meta) (serve.Config, error) {
	if meta.Nodes <= 0 || meta.Radius <= 0 {
		return serve.Config{}, fmt.Errorf("script lacks topology provenance (nodes/radius in the meta line); record it with soclserved -record")
	}
	g := topology.RandomGeometric(meta.Nodes, meta.Radius, topology.DefaultGenConfig(), meta.TopoSeed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), meta.CatSeed)
	algo := sim.NewSoCLOnline(core.DefaultConfig())
	sc := serve.Config{
		Graph:       g,
		Catalog:     cat,
		Lambda:      meta.Lambda,
		Budget:      meta.Budget,
		Mode:        model.RouteModeOptimal,
		RouteSeed:   meta.RouteSeed,
		Planner:     algo.Place,
		PlannerName: algo.Name(),
		Repair:      repair.DefaultConfig(),
		Replan:      o.replay,
	}
	//socllint:ignore floateq deliberate exact zero: both unset means no cloud fallback
	if meta.CloudTransfer != 0 || meta.CloudCompute != 0 {
		sc.Cloud = &model.CloudConfig{TransferCost: meta.CloudTransfer, Compute: meta.CloudCompute}
	}
	rep := serve.RepairPolicy{Run: algo.RepairWith}
	switch o.policy {
	case "auto":
		sc.Policy = serve.AutoPolicy{Threshold: o.threshold, Repair: rep}
	case "none":
		sc.Policy = serve.NonePolicy{}
	case "repair":
		sc.Policy = rep
	case "resolve":
		sc.Policy = serve.ResolvePolicy{}
	default:
		return serve.Config{}, fmt.Errorf("unknown policy %q (want auto | none | repair | resolve)", o.policy)
	}
	if !o.replay {
		sc.MaxBatch = o.batch
		sc.Lifecycle = o.lifecycle
	} else if o.batch != 0 || o.lifecycle.Enabled() {
		return serve.Config{}, fmt.Errorf("-replay is the batch simulator's discipline: it admits everything and keeps every instance (drop -batch and the lifecycle flags)")
	}
	return sc, nil
}

func serveScript(o options) error {
	r := io.Reader(os.Stdin)
	if o.script != "-" {
		f, err := os.Open(o.script)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s, err := serve.ParseScript(r)
	if err != nil {
		return err
	}
	sc, err := daemonConfig(o, s.Meta)
	if err != nil {
		return err
	}
	d, err := serve.NewDaemon(sc)
	if err != nil {
		return err
	}
	rr, err := d.RunScript(s)
	if rr != nil {
		report(os.Stdout, rr, o.quiet)
		if o.csvPath != "" {
			if werr := writeCSV(o.csvPath, rr); werr != nil && err == nil {
				err = werr
			}
		}
	}
	return err
}

var epochHeader = []string{"epoch", "reqs", "avg_delay", "cost", "served_obj",
	"missing", "unroutable", "degraded", "adds", "evicts", "resolved", "incr",
	"cold", "scale0", "warm"}

func epochRow(r *serve.EpochRecord) []string {
	b := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	return []string{
		strconv.Itoa(r.Epoch), strconv.Itoa(r.Requests),
		fmt.Sprintf("%.3f", r.AvgDelay), fmt.Sprintf("%.1f", r.Cost),
		fmt.Sprintf("%.1f", r.ServedObjective),
		strconv.Itoa(r.Missing), strconv.Itoa(r.Unroutable), strconv.Itoa(r.Degraded),
		strconv.Itoa(r.Adds), strconv.Itoa(r.Evicts), b(r.Resolved), b(r.Incremental),
		strconv.Itoa(r.ColdSteps), strconv.Itoa(r.ScaledToZero), strconv.Itoa(r.WarmSpares),
	}
}

func report(w io.Writer, rr *serve.RunResult, quiet bool) {
	if !quiet {
		fmt.Fprintln(w, tabJoin(epochHeader))
		for i := range rr.Records {
			fmt.Fprintln(w, tabJoin(epochRow(&rr.Records[i])))
		}
	}
	reqs, unserved, resolves, incr, cold, scale0 := 0, 0, 0, 0, 0, 0
	for _, r := range rr.Records {
		reqs += r.Requests
		unserved += r.Missing + r.Unroutable
		if r.Resolved {
			resolves++
		}
		if r.Incremental {
			incr++
		}
		cold += r.ColdSteps
		scale0 += r.ScaledToZero
	}
	fmt.Fprintf(w, "epochs=%d requests=%d unserved=%d resolves=%d incremental=%d cold_steps=%d scaled_to_zero=%d deployed=%d\n",
		len(rr.Records), reqs, unserved, resolves, incr, cold, scale0, rr.Placement.Instances())
}

func tabJoin(cells []string) string {
	var b bytes.Buffer
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%-10s", c)
	}
	return b.String()
}

func writeCSV(path string, rr *serve.RunResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprint(f, c)
		}
		fmt.Fprintln(f)
	}
	row(epochHeader)
	for i := range rr.Records {
		row(epochRow(&rr.Records[i]))
	}
	return nil
}

// selfTest is the CI smoke: record the scenario, push the script through a
// real file and the text parser, replay it through the daemon, and require
// the evaluation stream to match the batch simulator bit for bit; then run
// the incremental serve mode (with the serverless lifecycle) twice and
// require the two runs to be identical.
func selfTest(o options) error {
	cfg := scenario(o)
	res, err := sim.Run(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
	if err != nil {
		return fmt.Errorf("selftest: batch run: %w", err)
	}
	s, err := stream(o, cfg)
	if err != nil {
		return fmt.Errorf("selftest: record: %w", err)
	}

	// Text-format round trip through a real file.
	f, err := os.CreateTemp("", "soclserved-selftest-*.events")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if err := serve.WriteScript(f, s); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	parsed, err := serve.ParseScript(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("selftest: reparse: %w", err)
	}
	var a, b bytes.Buffer
	if err := serve.WriteScript(&a, s); err != nil {
		return err
	}
	if err := serve.WriteScript(&b, parsed); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("selftest: script round trip is not byte-identical")
	}

	// Replay: the daemon must reproduce the batch run bitwise.
	d, err := serve.NewDaemon(sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig())))
	if err != nil {
		return err
	}
	rr, err := d.RunScript(parsed)
	if err != nil {
		return fmt.Errorf("selftest: replay: %w", err)
	}
	if err := sim.CompareReplay(res, rr); err != nil {
		return fmt.Errorf("selftest: replay diverged from sim.Run: %w", err)
	}

	// Serve mode with the serverless lifecycle: two identically-configured
	// runs must be identical (the daemon draws no hidden randomness).
	serveOnce := func() (*serve.RunResult, error) {
		sc := sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
		sc.Replan = false
		sc.Policy = nil // default AutoPolicy
		sc.Lifecycle = serve.LifecycleConfig{IdleEpochs: 2, WarmPool: 1, ColdStartDelay: 0.25}
		d, err := serve.NewDaemon(sc)
		if err != nil {
			return nil, err
		}
		return d.RunScript(parsed)
	}
	r1, err := serveOnce()
	if err != nil {
		return fmt.Errorf("selftest: serve run 1: %w", err)
	}
	r2, err := serveOnce()
	if err != nil {
		return fmt.Errorf("selftest: serve run 2: %w", err)
	}
	if len(r1.Records) != len(r2.Records) {
		return fmt.Errorf("selftest: serve runs differ in length: %d vs %d", len(r1.Records), len(r2.Records))
	}
	for i := range r1.Records {
		x, y := r1.Records[i], r2.Records[i]
		x.PlanTime, x.ReactTime = 0, 0 // wall-clock telemetry, legitimately noisy
		y.PlanTime, y.ReactTime = 0, 0
		if x != y {
			return fmt.Errorf("selftest: serve runs diverge at epoch %d:\n  %+v\n  %+v", i, x, y)
		}
	}
	if len(r1.AllDelays) != len(r2.AllDelays) {
		return fmt.Errorf("selftest: serve delay streams differ in length")
	}
	for i := range r1.AllDelays {
		//socllint:ignore floateq deliberate exact compare: the determinism contract is bitwise
		if r1.AllDelays[i] != r2.AllDelays[i] {
			return fmt.Errorf("selftest: serve delay streams diverge at %d", i)
		}
	}
	fmt.Printf("selftest ok: %d slots, %d events, replay bitwise-identical to sim.Run, serve mode deterministic\n",
		s.Meta.NumSlots, len(s.Events))
	return nil
}
