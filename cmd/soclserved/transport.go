package main

// The transport modes: -listen serves the daemon behind the framed socket
// (or loopback-HTTP) frontend, -send plays a script at a listening daemon as
// a load client, and -selftest-transport is the CI smoke that proves the
// frontend preserves the bitwise replay contract under wire chaos.

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// parseListenSpec splits "unix:/path", "tcp:host:port", or "http:host:port".
func parseListenSpec(spec string) (network, addr string, isHTTP bool, err error) {
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return "", "", false, fmt.Errorf("address %q wants unix:PATH, tcp:HOST:PORT, or http:HOST:PORT", spec)
	}
	network, addr = spec[:i], spec[i+1:]
	switch network {
	case "unix", "tcp":
		return network, addr, false, nil
	case "http":
		return "tcp", addr, true, nil
	default:
		return "", "", false, fmt.Errorf("unknown listen scheme %q (want unix, tcp, or http)", network)
	}
}

// transportConfig assembles the frontend hardening from the CLI flags. The
// session factory closes over the CLI options so a wire session builds the
// exact daemon -script mode would.
func transportConfig(o options) transport.Config {
	tc := transport.Config{
		Factory: func(meta serve.Meta) (serve.Config, error) {
			return daemonConfig(o, meta)
		},
		Ordered:       !o.unordered,
		DeadlineSlots: o.deadline,
		MaxQueue:      o.queue,
		Capacity:      o.capacity,
	}
	if o.breakerOn {
		tc.Breaker = transport.BreakerConfig{Enabled: true, CostBudget: o.costBudget}
		cc := model.DefaultCloudConfig()
		tc.Ladder = transport.LadderConfig{
			CloudTransfer:  cc.TransferCost,
			CloudCompute:   cc.Compute,
			CloudColdStart: 0.25,
		}
	}
	return tc
}

func chaosConfig(o options) *chaos.LinkConfig {
	if o.drop <= 0 && o.dup <= 0 && o.delay <= 0 {
		return nil
	}
	return &chaos.LinkConfig{
		Seed:  stats.SplitSeed(o.seed, "transport/chaos"),
		Drop:  o.drop,
		Dup:   o.dup,
		Delay: o.delay,
	}
}

// runListen serves the framed frontend until interrupted — or, with -once,
// until the first session finishes, whereupon it prints that session's
// summary and per-epoch report and exits.
func runListen(o options) error {
	network, addr, isHTTP, err := parseListenSpec(o.listen)
	if err != nil {
		return err
	}
	tc := transportConfig(o)
	if isHTTP {
		return runListenHTTP(addr, tc, o)
	}
	if network == "unix" {
		os.Remove(addr) // clear a stale socket from a previous run
	}
	srv, err := transport.Listen(network, addr, tc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "soclserved: listening on %s:%s (ordered=%v deadline=%d queue=%d capacity=%d breaker=%v)\n",
		network, addr, !o.unordered, o.deadline, o.queue, o.capacity, o.breakerOn)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-errCh:
			srv.Close()
			return err
		case <-sig:
			srv.Close()
			fmt.Fprintln(os.Stderr, "soclserved: interrupted")
			return nil
		case <-tick.C:
			if !o.once || !srv.SessionDone() {
				continue
			}
			srv.Close()
			eng := srv.Engine()
			fmt.Println(eng.Summary())
			if rr := eng.Result(); rr != nil {
				report(os.Stdout, rr, o.quiet)
				if o.csvPath != "" {
					if werr := writeCSV(o.csvPath, rr); werr != nil {
						return werr
					}
				}
			}
			return eng.RunErr()
		}
	}
}

func runListenHTTP(addr string, tc transport.Config, o options) error {
	h := transport.NewHTTPFrontend(tc)
	hs := &http.Server{Addr: addr, Handler: h}
	fmt.Fprintf(os.Stderr, "soclserved: listening on http:%s\n", addr)
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-errCh:
			return err
		case <-sig:
			hs.Close()
			fmt.Fprintln(os.Stderr, "soclserved: interrupted")
			return nil
		case <-tick.C:
			if !o.once || !h.SessionDone() {
				continue
			}
			hs.Close()
			eng := h.Engine()
			fmt.Println(eng.Summary())
			if rr := eng.Result(); rr != nil {
				report(os.Stdout, rr, o.quiet)
			}
			return eng.RunErr()
		}
	}
}

// runSendload plays -script at a listening daemon: the client side of the
// framed protocol, with optional chaos impairment of its own sends.
func runSendload(o options) error {
	if o.script == "" {
		return fmt.Errorf("-send needs -script (the event stream to play)")
	}
	network, addr, isHTTP, err := parseListenSpec(o.send)
	if err != nil {
		return err
	}
	if isHTTP {
		return fmt.Errorf("-send speaks the socket protocol; point it at a unix: or tcp: listener")
	}
	f, err := os.Open(o.script)
	if err != nil {
		return err
	}
	s, err := serve.ParseScript(f)
	f.Close()
	if err != nil {
		return err
	}
	cli, err := transport.Dial(network, addr, transport.ClientConfig{
		Reliable:      !o.unreliable,
		Seed:          o.seed,
		DefaultBudget: o.budget,
		Chaos:         chaosConfig(o),
	})
	if err != nil {
		return err
	}
	defer cli.Close()
	rep, err := cli.Run(s)
	if rep != nil {
		fmt.Printf("sent=%d accepted=%d shed=%d dup_acks=%d retransmits=%d\n",
			countEvents(s), rep.Accepted, rep.Shed, rep.Dup, rep.Retransmits)
		if rep.Link.Sent > 0 {
			fmt.Printf("chaos: dropped=%d duplicated=%d delayed=%d of %d sends\n",
				rep.Link.Dropped, rep.Link.Duplicated, rep.Link.Delayed, rep.Link.Sent)
		}
		for _, e := range rep.Errors {
			fmt.Printf("server error: %s\n", e)
		}
		if rep.Summary != "" {
			fmt.Printf("server: %s\n", rep.Summary)
		}
	}
	return err
}

func countEvents(s *serve.Script) int { return len(s.Events) }

// selfTestTransport is the transport CI smoke. Leg 1: a reliable ordered
// session over a real unix socket with aggressive wire chaos must deliver a
// recorded stream byte-identical to the sent script, zero sheds, and a
// replay result bitwise equal to the batch simulator — chaos fully masked.
// Leg 2: an open-loop unordered session against the hardened frontend
// (deadlines, bounded queue, capacity, breaker) must complete without a
// daemon error and report its sheds.
func selfTestTransport(o options) error {
	cfg := scenario(o)
	res, err := sim.Run(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
	if err != nil {
		return fmt.Errorf("transport selftest: batch run: %w", err)
	}
	s, err := stream(o, cfg)
	if err != nil {
		return fmt.Errorf("transport selftest: record: %w", err)
	}

	// Leg 1: reliable + ordered + chaos == bitwise replay.
	dir, err := os.MkdirTemp("", "soclserved-transport-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := dir + "/daemon.sock"
	srv, err := transport.Listen("unix", sock, transport.Config{
		Factory: func(serve.Meta) (serve.Config, error) {
			return sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig())), nil
		},
		Ordered: true,
	})
	if err != nil {
		return err
	}
	go srv.Serve()
	cli, err := transport.Dial("unix", sock, transport.ClientConfig{
		Reliable: true,
		Seed:     o.seed,
		Chaos: &chaos.LinkConfig{
			Seed:  stats.SplitSeed(o.seed, "transport/chaos"),
			Drop:  0.15,
			Dup:   0.10,
			Delay: 0.10,
		},
	})
	if err != nil {
		srv.Close()
		return err
	}
	rep, err := cli.Run(s)
	cli.Close()
	srv.Close()
	if err != nil {
		return fmt.Errorf("transport selftest: reliable session: %w", err)
	}
	eng := srv.Engine()
	if !eng.Finished() || eng.RunErr() != nil {
		return fmt.Errorf("transport selftest: session did not finish cleanly: %v", eng.RunErr())
	}
	if st := eng.Stats(); st.Admitted != len(s.Events) || st.Shed() != 0 {
		return fmt.Errorf("transport selftest: reliable session admitted %d/%d events, shed %d",
			st.Admitted, len(s.Events), st.Shed())
	}
	if err := sameScript(s, eng.Recorded()); err != nil {
		return fmt.Errorf("transport selftest: recorded stream diverged: %w", err)
	}
	if err := sim.CompareReplay(res, eng.Result()); err != nil {
		return fmt.Errorf("transport selftest: wire replay diverged from sim.Run: %w", err)
	}

	// Leg 2: open-loop against the hardened frontend survives the chaos.
	o2 := o
	o2.unordered = true
	o2.deadline = 1
	o2.queue = 64
	o2.capacity = 16
	o2.breakerOn = true
	srv2, err := transport.Listen("tcp", "127.0.0.1:0", transportConfig(o2))
	if err != nil {
		return err
	}
	go srv2.Serve()
	cli2, err := transport.Dial("tcp", srv2.Addr().String(), transport.ClientConfig{
		Reliable: false,
		Seed:     o.seed + 1,
		Chaos: &chaos.LinkConfig{
			Seed:  stats.SplitSeed(o.seed+1, "transport/chaos"),
			Drop:  0.30,
			Dup:   0.10,
			Delay: 0.15,
		},
	})
	if err != nil {
		srv2.Close()
		return err
	}
	rep2, err := cli2.Run(s)
	cli2.Close()
	srv2.Close()
	if err != nil {
		return fmt.Errorf("transport selftest: open-loop session: %w", err)
	}
	eng2 := srv2.Engine()
	if !eng2.Finished() || eng2.RunErr() != nil {
		return fmt.Errorf("transport selftest: open-loop session did not finish cleanly: %v", eng2.RunErr())
	}
	fmt.Printf("transport selftest ok: reliable leg masked chaos (retransmits=%d, %d events bitwise), open-loop leg %s\n",
		rep.Retransmits, len(s.Events), eng2.Summary())
	_ = rep2
	return nil
}

// sameScript compares two scripts by their canonical serialization.
func sameScript(a, b *serve.Script) error {
	fa, err := transport.BuildSession(a, 0)
	if err != nil {
		return err
	}
	fb, err := transport.BuildSession(b, 0)
	if err != nil {
		return err
	}
	if len(fa) != len(fb) {
		return fmt.Errorf("frame counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Type != fb[i].Type || string(fa[i].Body) != string(fb[i].Body) {
			return fmt.Errorf("frame %d differs", i)
		}
	}
	return nil
}
