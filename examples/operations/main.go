// Operations: an operator's-eye walkthrough of the library's production
// features beyond the core solver — warm-started online re-planning with
// churn accounting, the cloud fallback under budget pressure, and
// contention re-pricing of the network. Each section prints a small report.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func main() {
	const seed = 11
	g := topology.RandomGeometric(12, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)

	onlineSection(g, cat, seed)
	cloudSection(g, cat, seed)
	contentionSection(g, cat, seed)
}

// onlineSection: six 5-minute slots of drifting demand, warm vs cold.
func onlineSection(g *topology.Graph, cat *msvc.Catalog, seed int64) {
	fmt.Println("── online re-planning (6 slots of drifting demand) ──")
	warm := core.NewOnlineSolver(core.DefaultConfig())
	cold := core.NewOnlineSolver(core.DefaultConfig())
	warmChurn, coldChurn := 0, 0
	var prevCold model.Placement
	for slot := 0; slot < 6; slot++ {
		w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(30), seed+int64(slot)*37)
		if err != nil {
			log.Fatal(err)
		}
		in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}

		_, st, err := warm.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		if slot > 0 {
			warmChurn += st.Started + st.Stopped
		}

		cold.Reset()
		solC, _, err := cold.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		if slot > 0 {
			a, r := model.PlacementDiff(prevCold, solC.Placement)
			coldChurn += a + r
		}
		prevCold = solC.Placement
	}
	fmt.Printf("  instance churn over 5 transitions: warm=%d  cold=%d\n", warmChurn, coldChurn)
	fmt.Println("  (each churned instance is a container cold-start the warm mode avoided)")
	fmt.Println()
}

// cloudSection: what happens when the edge budget can't cover the catalog.
func cloudSection(g *topology.Graph, cat *msvc.Catalog, seed int64) {
	fmt.Println("── cloud fallback under budget pressure ──")
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(40), seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, budget := range []float64{8000, 2500} {
		in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
		cloud := model.DefaultCloudConfig()
		in.Cloud = &cloud
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		ev := sol.Evaluation
		fmt.Printf("  budget %5.0f: edge instances=%2d  cloud-served=%2d  Σlatency=%7.1f  budget-met=%v\n",
			budget, sol.Placement.Instances(), ev.CloudServed, ev.LatencySum, sol.Stats.BudgetMet)
	}
	fmt.Println()
}

// contentionSection: re-price the chosen routes under slot-capacity sharing.
func contentionSection(g *topology.Graph, cat *msvc.Catalog, seed int64) {
	fmt.Println("── network contention re-pricing (5-minute slot) ──")
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(120), seed)
	if err != nil {
		log.Fatal(err)
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rep := in.EvaluateWithContention(sol.Placement, model.RouteModeOptimal, seed, model.DefaultContentionConfig())
	maxU, hot := 0.0, [2]int{}
	for key, u := range rep.Utilization {
		if u > maxU {
			maxU, hot = u, key
		}
	}
	fmt.Printf("  idle latency      %8.1f s\n", rep.LatencySum)
	fmt.Printf("  contended latency %8.1f s  (congested links: %d)\n", rep.LatencySumContended, rep.Congested)
	fmt.Printf("  hottest link      %v at %.1f%% slot utilization\n", hot, maxU*100)
}
