// Optgap: quantify SoCL's optimality gap against the exact branch-and-bound
// optimizer (the repository's Gurobi substitute) on instances small enough
// to solve exactly, and show the runtime cliff that makes exact solving
// impractical at scale — the paper's Fig. 2 / Fig. 7 story in one program.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/opt"
	"repro/internal/topology"
)

func instance(nodes, users int, seed int64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}

func main() {
	fmt.Printf("%-14s %10s %10s %8s %12s %12s %10s\n",
		"scale", "OPT obj", "SoCL obj", "gap%", "OPT time", "SoCL time", "OPT status")
	for _, c := range []struct{ v, u int }{
		{5, 10}, {8, 10}, {10, 10}, {10, 20}, {10, 30}, {10, 40},
	} {
		in := instance(c.v, c.u, 1)

		t0 := time.Now()
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		soclTime := time.Since(t0)

		// Warm-start the exact search with SoCL's placement (a standard
		// MIP-start) and cap it at 10 s per solve.
		res, err := opt.Solve(in, opt.Options{TimeLimit: 10 * time.Second, WarmStart: &sol.Placement})
		if err != nil {
			log.Fatal(err)
		}
		optObj := in.Evaluate(res.Placement).Objective
		soclObj := sol.Evaluation.Objective
		gap := (soclObj - optObj) / optObj * 100
		status := res.Status.String()
		if res.Status != opt.Optimal {
			status += "(cap)"
		}
		fmt.Printf("V=%-3d U=%-6d %10.1f %10.1f %8.2f %12v %12v %10s\n",
			c.v, c.u, optObj, soclObj, gap, res.Elapsed.Round(time.Microsecond),
			soclTime.Round(time.Microsecond), status)
	}
	fmt.Println("\nNote: the paper reports optimality gaps below 9.9% with SoCL running")
	fmt.Println("up to two orders of magnitude faster; capped rows show the exact")
	fmt.Println("solver's exponential blow-up (its incumbent is reported).")
}
