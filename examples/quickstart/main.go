// Quickstart: build a small edge network, generate an eShopOnContainers
// workload, run the SoCL solver, and inspect the solution — the minimal
// end-to-end use of the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func main() {
	const seed = 42

	// 1. Substrate: 8 edge servers with paper-ranged capacities
	//    ([5,20] GFLOP/s compute, [4,8] storage, [20,80] GB/s links).
	g := topology.RandomGeometric(8, 0.4, topology.DefaultGenConfig(), seed)

	// 2. Workload: the eShopOnContainers microservice catalog and 20 users
	//    issuing dependency-chain requests.
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(20), seed)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Instance: balance deployment cost and completion time (λ = 0.5)
	//    under a budget of 8000 cost units.
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}

	// 4. Solve with SoCL.
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	ev := sol.Evaluation
	fmt.Printf("objective  %.2f   (cost %.2f + latency %.2f, λ=%.1f)\n",
		ev.Objective, ev.Cost, ev.LatencySum, in.Lambda)
	fmt.Printf("instances  %d deployed (pre-provisioning had %d; %d combined away)\n",
		sol.Stats.FinalInstances, sol.Stats.PreprovInstances, sol.Stats.Combined)
	fmt.Printf("runtime    %v (partition %v, pre-provision %v, combine %v)\n",
		sol.Stats.Total, sol.Stats.PartitionTime, sol.Stats.PreprovTime, sol.Stats.CombineTime)
	fmt.Printf("feasible   %v\n\n", ev.Feasible())

	fmt.Println("placement:")
	for i := 0; i < in.M(); i++ {
		if nodes := sol.Placement.NodesOf(i); len(nodes) > 0 {
			fmt.Printf("  %-20s → edge servers %v\n", cat.Service(i).Name, nodes)
		}
	}

	fmt.Println("\nsample routes (request: chain → serving nodes):")
	for h := 0; h < 3 && h < len(w.Requests); h++ {
		req := w.Requests[h]
		names := make([]string, len(req.Chain))
		for i, s := range req.Chain {
			names[i] = cat.Service(s).Name
		}
		fmt.Printf("  u%d@node%d: %v → %v  (%.3f s)\n",
			req.ID, req.Home, names, ev.Routes[h].Nodes, ev.Latencies[h])
	}
}
