// Stadium: the paper's motivating scenario — base stations around a packed
// venue (Section V sets them near the National Stadium, Beijing), a crowd
// of mobile users issuing microservice chains, and a 2-hour time-slotted
// run comparing RP, JDR and SoCL under mobility. This is the workload the
// introduction's "provisioning-adaption" challenge describes: trigger
// locations drift as users move, and the placement must follow.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	const seed = 7

	// Two concentric rings of base stations around the venue plus radial
	// backhaul — the Stadium generator mirrors the paper's setting.
	g := topology.Stadium(14, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)

	fmt.Println("stadium scenario: 14 base stations, 40 mobile users, 2-hour trace")
	fmt.Println("slot = 5 min, users re-issue requests every ~5 min and hop cells with p=0.3")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "algo", "mean delay", "p50 delay", "max delay", "Σcost")

	for _, algo := range []sim.Algorithm{
		sim.RP{Seed: seed},
		sim.JDR{},
		sim.SoCL{Config: core.DefaultConfig()},
	} {
		cfg := sim.DefaultConfig(g, cat, 40, seed)
		cfg.DurationMinutes = 120
		res, err := sim.Run(cfg, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %12.3f %12.3f %12.0f\n",
			res.Algorithm, res.MeanDelay(), res.MedianDelay(), res.MaxDelay(), res.TotalCost())
	}

	fmt.Println("\nper-slot average delay (SoCL):")
	cfg := sim.DefaultConfig(g, cat, 40, seed)
	cfg.DurationMinutes = 60
	res, err := sim.Run(cfg, sim.SoCL{Config: core.DefaultConfig()})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Slots {
		bar := ""
		for i := 0; i < int(s.AvgDelay*8) && i < 60; i++ {
			bar += "#"
		}
		fmt.Printf("  t=%3.0fmin %6.3fs |%s\n", s.TimeMinutes, s.AvgDelay, bar)
	}
}
