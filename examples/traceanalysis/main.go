// Traceanalysis: regenerate the paper's motivation analyses (Figs. 3–4)
// from the synthetic Alibaba-like trace — per-service activity similarity,
// cross-trace dependency-chain similarity, and the bursty temporal request
// distribution that motivates adaptive provisioning.
package main

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultConfig() // 10 services, 10 hours, double peak
	tr := trace.Generate(cfg)
	fmt.Printf("generated %d events over %.0f h across %d trace files\n\n",
		len(tr.Events), cfg.DurationMinutes/60, cfg.NumFiles)

	// Fig. 3(a): similarity between services' temporal profiles.
	fmt.Println("service-profile cosine similarity (upper triangle):")
	m := tr.ServiceSimilarityMatrix(10)
	fmt.Print("      ")
	for j := range m {
		fmt.Printf(" s%-4d", j)
	}
	fmt.Println()
	for i := range m {
		fmt.Printf("  s%-3d", i)
		for j := range m[i] {
			if j <= i {
				fmt.Print("      ")
			} else {
				fmt.Printf(" %.3f", m[i][j])
			}
		}
		fmt.Println()
	}

	// Fig. 3(b): chain similarity across trace files.
	values, max := tr.ChainSimilarity()
	fmt.Printf("\ndependency-chain similarity across files (chains of %d microservices):\n", cfg.ChainLength)
	fmt.Printf("  pairs=%d  mean=%.3f  max=%.3f  (paper reports max ≈ 0.65)\n",
		len(values), stats.Mean(values), max)

	// Fig. 4: temporal distribution.
	fmt.Println("\ntemporal request distribution (10-minute bins):")
	bins := tr.TemporalHistogram(10)
	maxBin := 0
	for _, b := range bins {
		if b > maxBin {
			maxBin = b
		}
	}
	for i, b := range bins {
		if i%3 != 0 { // print every 30 min to keep the plot compact
			continue
		}
		bar := ""
		for j := 0; j < b*50/(maxBin+1); j++ {
			bar += "#"
		}
		fmt.Printf("  %3dmin %4d |%s\n", i*10, b, bar)
	}
	fmt.Printf("\npeak-to-mean ratio: %.2f (recurring peaks → time-varying workload)\n",
		tr.PeakToMeanRatio(10))
}
