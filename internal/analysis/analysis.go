// Package analysis is a self-contained, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis driver surface, sized for this repository's
// project-specific linters (cmd/socllint). The container building this repo
// has no module proxy access, so the real x/tools framework cannot be pulled
// in; the Analyzer/Pass/Diagnostic types below mirror its shape closely
// enough that the analyzers in the subpackages would port to x/tools by
// changing one import line.
//
// Beyond the x/tools surface, the runner understands suppression directives:
//
//	//socllint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line or on the line immediately above it. The
// reason is mandatory — a bare directive is itself reported — so every
// suppressed diagnostic documents why the pattern is intentional.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// FuncDirectives maps function/method objects (program-wide, across every
	// package the loader has seen) to the socllint directive lines from their
	// doc comments, e.g. "sentinel ErrNoInstance". Analyzers use it for
	// annotation-driven contracts on callees declared in other packages.
	FuncDirectives map[types.Object][]string

	// Summaries maps function/method objects (program-wide) to their
	// cross-function dataflow summaries; see FuncSummary. Nil entries mean
	// "opaque" (stdlib, or never loaded).
	Summaries map[types.Object]*FuncSummary

	// Report delivers one diagnostic. The runner installs it.
	Report func(Diagnostic)
}

// Facts bundles the program-wide side tables the loader accumulates across
// packages; Run hands them to every pass.
type Facts struct {
	FuncDirectives map[types.Object][]string
	Summaries      map[types.Object]*FuncSummary
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner

	// SuggestedFixes optionally carries mechanical repairs for the finding;
	// socllint -fix applies them (refusing on overlapping edits).
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained repair: apply all of its edits or none.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// inserts.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Position resolves the diagnostic's file position under fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position { return fset.Position(d.Pos) }

// --- suppression directives ---

// IgnoreDirectivePrefix is the comment prefix of a suppression.
const IgnoreDirectivePrefix = "//socllint:ignore"

var directiveRe = regexp.MustCompile(`^//socllint:ignore\s+([A-Za-z0-9_,]+)(?:\s+(.*))?$`)

// ignoreDirective is one parsed //socllint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	reason    string
	pos       token.Pos
}

// ignoreIndex maps file name → line → directive for one package.
type ignoreIndex map[string]map[int]*ignoreDirective

// buildIgnoreIndex scans every comment in the package for ignore directives.
// Directives with no reason are reported as diagnostics themselves (under the
// pseudo-analyzer name "socllint").
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, IgnoreDirectivePrefix) {
					continue
				}
				m := directiveRe.FindStringSubmatch(text)
				pos := fset.Position(c.Pos())
				if m == nil || strings.TrimSpace(m[2]) == "" {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "socllint",
						Message:  "malformed ignore directive: want //socllint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				d := &ignoreDirective{analyzers: map[string]bool{}, reason: strings.TrimSpace(m[2]), pos: c.Pos()}
				for _, name := range strings.Split(m[1], ",") {
					d.analyzers[strings.TrimSpace(name)] = true
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int]*ignoreDirective{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = d
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from analyzer name at position p is
// covered by a directive on the same line or the line directly above.
func (idx ignoreIndex) suppressed(name string, p token.Position) bool {
	byLine := idx[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if d := byLine[line]; d != nil && d.analyzers[name] {
			return true
		}
	}
	return false
}

// --- runner ---

// Target is the minimal package view the runner needs; internal/analysis/load
// produces values satisfying it.
type Target struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Result is one package's outcome: the diagnostics that survived
// suppression, plus the per-analyzer count of diagnostics a reasoned
// //socllint:ignore directive swallowed (the ratchet input).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  map[string]int
}

// Run executes every analyzer over one package, applying suppression
// directives, and returns the surviving diagnostics sorted by position along
// with the suppressed-per-analyzer counts. facts may be nil.
func Run(t *Target, analyzers []*Analyzer, facts *Facts) (*Result, error) {
	if facts == nil {
		facts = &Facts{}
	}
	res := &Result{Suppressed: map[string]int{}}
	out := &res.Diagnostics
	ignore := buildIgnoreIndex(t.Fset, t.Files, func(d Diagnostic) { *out = append(*out, d) })
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:       a,
			Fset:           t.Fset,
			Files:          t.Files,
			Pkg:            t.Pkg,
			TypesInfo:      t.TypesInfo,
			FuncDirectives: facts.FuncDirectives,
			Summaries:      facts.Summaries,
			Report:         func(d Diagnostic) { raw = append(raw, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return res, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range raw {
			d.Analyzer = a.Name
			if ignore.suppressed(a.Name, t.Fset.Position(d.Pos)) {
				res.Suppressed[a.Name]++
				continue
			}
			*out = append(*out, d)
		}
	}
	sort.Slice(*out, func(i, j int) bool {
		pi, pj := t.Fset.Position((*out)[i].Pos), t.Fset.Position((*out)[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return (*out)[i].Analyzer < (*out)[j].Analyzer
	})
	return res, nil
}
