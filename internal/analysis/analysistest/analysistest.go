// Package analysistest runs a socllint analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the stdlib-only framework
// in internal/analysis.
//
// Fixture layout: <testdata>/src/<pkg>/*.go. A line expecting diagnostics
// carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. Every
// diagnostic must be matched by a want and every want must match a
// diagnostic; suppression via //socllint:ignore is applied before matching,
// so a fixture line carrying a valid ignore directive and no want comment
// asserts that the directive is honored.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package beneath testdata/src, applies the analyzer,
// and reports want/got mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := load.New(load.Config{FixtureRoots: []string{filepath.Join(testdata, "src")}})
	for _, pkg := range pkgs {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		res, err := analysis.Run(p.Target(), []*analysis.Analyzer{a}, loader.Facts())
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		checkPackage(t, p, res.Diagnostics)
	}
}

func checkPackage(t *testing.T, p *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects := collectWants(t, p)
	for _, d := range diags {
		pos := d.Position(p.Fset)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != pos.Filename || e.line != pos.Line {
			continue
		}
		if e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, p *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range p.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, arg := range args {
					raw := unquoteWant(arg[1])
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
				}
			}
		}
	}
	return out
}

// unquoteWant undoes the minimal escaping the want syntax allows (\" and \\).
func unquoteWant(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
