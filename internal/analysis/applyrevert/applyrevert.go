// Package applyrevert enforces the DeltaEvaluator probe discipline — the
// delta-engine analogue of snapshotpair. model.DeltaEvaluator.Apply returns
// an undo record (*Delta) that the caller must hand back to Revert to
// restore the pre-probe state; an exit path that skips the Revert leaves the
// evaluator permanently shifted, and every later Eval silently scores the
// wrong placement (exactly the class of bug PR 1 fixed in the snapshot
// machinery, now one level up).
//
// The analyzer is type-directed: it tracks calls to a method named Apply
// whose receiver type also declares a Revert method taking exactly the
// Apply result type — the undo-token handshake that distinguishes
// DeltaEvaluator (and fixture doubles) from unrelated Apply methods such as
// chaos.Mask.Apply (which returns error). Per function it reports:
//
//   - an Apply whose undo record is bound but never passed to any Revert
//     (and not deferred, returned, or stored away) — a probe that can never
//     be rolled back. Discarding the result (`d.Apply(...)` as a statement)
//     is the intentional-commit idiom and is not flagged;
//   - an if-branch between Apply and Revert that exits via return or
//     continue without reverting — with a sharper message when the branch
//     calls Eval/EvalObjective first (evaluating unbalanced state);
//   - a Revert whose delta was recorded before an AdvanceTo on the same
//     receiver: AdvanceTo rebinds the evaluator's epoch, so the saved undo
//     record is stale and the Revert corrupts the new binding.
//
// Intentional sites carry a reasoned //socllint:ignore applyrevert
// directive.
package applyrevert

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the applyrevert pass.
var Analyzer = &analysis.Analyzer{
	Name: "applyrevert",
	Doc:  "flags DeltaEvaluator Apply calls without a balancing Revert on every path, and Reverts of deltas staled by AdvanceTo",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// applyCall is one tracked Apply with a bound undo record.
type applyCall struct {
	call *ast.CallExpr
	obj  types.Object // the variable holding the *Delta, nil when untracked (e.g. appended)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var applies []applyCall
	hasRevert := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPairedMethod(pass, call, "Apply"):
			if obj, bound := boundResult(pass, fd.Body, call); bound {
				applies = append(applies, applyCall{call: call, obj: obj})
			}
		case isPairedMethod(pass, call, "Revert"):
			hasRevert = true
		}
		return true
	})
	if len(applies) == 0 {
		return
	}

	for _, ap := range applies {
		if deferredRevert(pass, fd.Body) {
			continue
		}
		if !hasRevert {
			if escapes(pass, fd, ap) {
				continue // the undo record outlives this function; its owner reverts
			}
			pass.Reportf(ap.call.Pos(),
				"Apply records an undo delta but no Revert appears in this function; revert the probe, or discard the result to commit")
			continue
		}
		scope := innermostLoopBody(fd, ap.call.Pos())
		checkExitBranches(pass, scope, ap.call.End(), firstRevertAfter(pass, fd.Body, ap.call.End()))
		checkStaleRevert(pass, fd, ap)
	}
}

// checkExitBranches reports if-branches between pos and the balancing
// Revert (bound) that exit via return or continue without a Revert (or a
// fresh Apply, which restarts the pairing). Branches past the Revert run on
// balanced state and are out of scope.
func checkExitBranches(pass *analysis.Pass, scope *ast.BlockStmt, pos, bound token.Pos) {
	ast.Inspect(scope, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() < pos {
			return true
		}
		if bound != token.NoPos && ifs.Pos() > bound {
			return true
		}
		for _, blk := range ifBranches(ifs) {
			exit := exitStmt(blk)
			if exit == nil {
				continue
			}
			if containsPaired(pass, blk, "Revert") || containsPaired(pass, blk, "Apply") {
				continue
			}
			if evalCall := findEval(pass, blk); evalCall != nil {
				pass.Reportf(evalCall.Pos(),
					"Eval on an unbalanced evaluator: this branch exits without reverting the pending Apply, so the evaluation scores the probed placement")
				continue
			}
			pass.Reportf(exit.Pos(),
				"branch exits between Apply and Revert without reverting; the evaluator keeps the probe state — add a Revert or annotate the intentional commit")
		}
		return true
	})
}

// checkStaleRevert flags Revert(dl) when an AdvanceTo on a paired receiver
// sits between the Apply that produced dl and the Revert consuming it.
func checkStaleRevert(pass *analysis.Pass, fd *ast.FuncDecl, ap applyCall) {
	if ap.obj == nil {
		return
	}
	var advancePos token.Pos = token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPairedMethod(pass, call, "AdvanceTo") && call.Pos() > ap.call.End() {
			if advancePos == token.NoPos || call.Pos() < advancePos {
				advancePos = call.Pos()
			}
		}
		return true
	})
	if advancePos == token.NoPos {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPairedMethod(pass, call, "Revert") || call.Pos() < advancePos {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ap.obj {
				pass.Reportf(call.Pos(),
					"Revert of delta %s recorded before AdvanceTo: the evaluator rebound its epoch, so this undo record is stale", id.Name)
			}
		}
		return true
	})
}

// firstRevertAfter returns the position of the first Revert call after pos,
// or NoPos.
func firstRevertAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos) token.Pos {
	best := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPairedMethod(pass, call, "Revert") || call.Pos() < pos {
			return true
		}
		if best == token.NoPos || call.Pos() < best {
			best = call.Pos()
		}
		return true
	})
	return best
}

// isPairedMethod reports whether call invokes method name on a receiver
// whose type carries the Apply/Revert undo-token pair.
func isPairedMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	return hasUndoPair(recv)
}

// hasUndoPair reports whether t (or *t) declares Apply returning exactly the
// parameter type of a Revert method — the undo-token handshake.
func hasUndoPair(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	var apply, revert *types.Signature
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		switch m.Name() {
		case "Apply":
			apply = m.Type().(*types.Signature)
		case "Revert":
			revert = m.Type().(*types.Signature)
		}
	}
	if apply == nil || revert == nil {
		return false
	}
	if apply.Results().Len() != 1 || revert.Params().Len() != 1 {
		return false
	}
	return types.Identical(apply.Results().At(0).Type(), revert.Params().At(0).Type())
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// boundResult reports whether the Apply result is bound rather than
// discarded (a bare `d.Apply(...)` statement is the intentional-commit
// idiom), and the variable it is bound to when the binding is a plain
// assignment (`dl := d.Apply(...)`); appends, returns and other sinks bind
// with a nil object.
func boundResult(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) (types.Object, bool) {
	var obj types.Object
	discarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if n.X == call {
				discarded = true
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if rhs == call && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if id.Name == "_" {
							discarded = true
							return false
						}
						if o := pass.TypesInfo.Defs[id]; o != nil {
							obj = o
						} else {
							obj = pass.TypesInfo.Uses[id]
						}
					}
					return false
				}
			}
		}
		return true
	})
	return obj, !discarded
}

// escapes reports whether the undo record leaves the function: returned, or
// stored into a field/container that outlives the call.
func escapes(pass *analysis.Pass, fd *ast.FuncDecl, ap applyCall) bool {
	if ap.obj == nil {
		return true // appended into a caller-visible or long-lived container
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ap.obj {
					found = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ap.obj {
					if _, isIdent := n.Lhs[i].(*ast.Ident); !isIdent {
						found = true // stored through a field or element
					}
				}
			}
		}
		return true
	})
	return found
}

// findEval returns the first Eval/EvalObjective call on a paired receiver
// under n, or nil.
func findEval(pass *analysis.Pass, n ast.Node) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPairedMethod(pass, call, "Eval") || isPairedMethod(pass, call, "EvalObjective") {
			out = call
			return false
		}
		return true
	})
	return out
}

// containsPaired reports whether a call to the named paired method appears
// under n.
func containsPaired(pass *analysis.Pass, n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && isPairedMethod(pass, call, name) {
			found = true
		}
		return !found
	})
	return found
}

// deferredRevert reports a `defer x.Revert(...)` in the body.
func deferredRevert(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && isPairedMethod(pass, d.Call, "Revert") {
			found = true
		}
		return !found
	})
	return found
}

// ifBranches returns the then-block and any else-block of an if statement.
func ifBranches(ifs *ast.IfStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{ifs.Body}
	if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
		out = append(out, blk)
	}
	return out
}

// exitStmt returns the statement making blk an unconditional exit (trailing
// return or continue), or nil.
func exitStmt(blk *ast.BlockStmt) ast.Stmt {
	if len(blk.List) == 0 {
		return nil
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return last
	case *ast.BranchStmt:
		if last.Tok == token.CONTINUE {
			return last
		}
	}
	return nil
}

// innermostLoopBody returns the body of the innermost for/range statement
// enclosing pos, or the function body.
func innermostLoopBody(fd *ast.FuncDecl, pos token.Pos) *ast.BlockStmt {
	best := fd.Body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Body
			}
		case *ast.RangeStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Body
			}
		}
		return true
	})
	return best
}
