package applyrevert_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/applyrevert"
)

func TestApplyRevert(t *testing.T) {
	analysistest.Run(t, "testdata", applyrevert.Analyzer, "delta")
}
