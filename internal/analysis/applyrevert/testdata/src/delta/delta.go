// Package delta exercises applyrevert with a double of model's
// DeltaEvaluator: Apply returns an undo record that Revert consumes, and
// AdvanceTo rebinds the evaluator's epoch.
package delta

// Delta is the undo record.
type Delta struct{ svc, node int }

// Evaluation is an Eval result.
type Evaluation struct{ Obj float64 }

// Evaluator mirrors model.DeltaEvaluator's probe surface.
type Evaluator struct{ epoch int }

// Apply probes a move and returns its undo record.
func (e *Evaluator) Apply(svc, node int, val bool) *Delta {
	e.epoch++
	return &Delta{svc, node}
}

// Revert rolls a probe back.
func (e *Evaluator) Revert(dl *Delta) { e.epoch++ }

// AdvanceTo rebinds the evaluator to a new placement, invalidating all
// outstanding deltas.
func (e *Evaluator) AdvanceTo(p []int) int { e.epoch++; return 0 }

// Eval scores the current binding.
func (e *Evaluator) Eval() *Evaluation { return &Evaluation{} }

// goodProbe is the probe-and-roll-back discipline.
func goodProbe(e *Evaluator) float64 {
	dl := e.Apply(1, 2, true)
	ev := e.Eval()
	e.Revert(dl)
	return ev.Obj
}

// cleanCommit discards the undo record on purpose — the commit idiom the
// repair heuristics use once a move is accepted.
func cleanCommit(e *Evaluator) {
	e.Apply(1, 2, true)
}

// goodReturned hands the undo record to the caller, who owns the revert.
func goodReturned(e *Evaluator) *Delta {
	dl := e.Apply(1, 2, true)
	return dl
}

// goodAdvance reverts before rebinding; the positional stale check must not
// fire.
func goodAdvance(e *Evaluator, p []int) {
	dl := e.Apply(1, 2, true)
	e.Revert(dl)
	e.AdvanceTo(p)
}

// badNeverReverted binds the undo record and then drops it.
func badNeverReverted(e *Evaluator) {
	dl := e.Apply(1, 2, true) // want "no Revert appears in this function"
	_ = dl
}

// badEarlyExit bails out of the probe loop while the evaluator still holds
// the probe state.
func badEarlyExit(e *Evaluator, xs []int) float64 {
	for _, x := range xs {
		dl := e.Apply(x, 0, true)
		if x < 0 {
			return -1 // want "branch exits between Apply and Revert"
		}
		e.Revert(dl)
	}
	return 0
}

// badEvalUnbalanced scores the evaluator on the exit path before reverting —
// the evaluation sees the probed placement.
func badEvalUnbalanced(e *Evaluator, xs []int) float64 {
	for _, x := range xs {
		dl := e.Apply(x, 0, true)
		if x < 0 {
			ev := e.Eval() // want "Eval on an unbalanced evaluator"
			return ev.Obj
		}
		e.Revert(dl)
	}
	return 0
}

// badStale reverts a delta recorded before AdvanceTo rebound the epoch.
func badStale(e *Evaluator, p []int) {
	dl := e.Apply(1, 2, true)
	e.AdvanceTo(p)
	e.Revert(dl) // want "undo record is stale"
}

// goodBalancedThenLoop mirrors DeltaEvaluator.ProbeRemoval: the probe pair
// completes (and returns) inside one branch, and a later loop with continue
// exits runs only on the unprobed path — nothing there is unbalanced.
func goodBalancedThenLoop(e *Evaluator, xs []int) float64 {
	if len(xs) == 1 {
		dl := e.Apply(xs[0], 0, true)
		ev := e.Eval()
		e.Revert(dl)
		return ev.Obj
	}
	total := 0.0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		total += float64(x)
	}
	return total
}

// suppressedLeak is an intentionally unbalanced probe, documented.
func suppressedLeak(e *Evaluator) {
	//socllint:ignore applyrevert fixture: probe intentionally left applied
	dl := e.Apply(3, 4, true)
	_ = dl
}

// Mask mirrors chaos.Mask: an Apply with no undo-token handshake (it
// returns error, and there is no Revert), so the analyzer ignores it.
type Mask struct{}

// Apply applies the mask.
func (m *Mask) Apply(x int) error { return nil }

// cleanMask must not be tracked at all.
func cleanMask(m *Mask) error {
	if err := m.Apply(1); err != nil {
		return err
	}
	return nil
}
