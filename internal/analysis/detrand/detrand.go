// Package detrand enforces determinism in the reproducibility-critical
// packages (model, combine, topology, stats, ilp, opt, chaos, repair): every
// result there must be a pure function of the instance and an explicit seed.
//
// Flagged inside those packages:
//
//   - time.Now/Since/Until — wall-clock-dependent values (including
//     time.Now()-seeded generators) make runs unreproducible;
//   - package-level math/rand (and math/rand/v2) functions such as
//     rand.Intn/rand.Float64/rand.Shuffle — they draw from the shared global
//     source. Constructing explicitly seeded generators via rand.New /
//     rand.NewSource / rand.NewZipf / rand.NewPCG / rand.NewChaCha8 remains
//     allowed; *rand.Rand methods are untouched.
//
// In the exact-solver packages (ilp, opt) one more pattern is flagged:
// ranging over a map. Go randomizes map iteration order per run, so a map
// range in a branch-and-bound path can reorder branching decisions or
// incumbent updates between otherwise identical runs — exactly the
// nondeterminism the parallel engines' differential tests pin down. Ranges
// whose result is provably order-independent (scatter into a dense slice,
// commutative accumulation) carry a reasoned //socllint:ignore.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "flags time.Now, global math/rand, and (in the solver packages) map iteration in the deterministic packages",
	Run:  run,
}

// deterministicPkgs are the package names under the determinism contract.
var deterministicPkgs = map[string]bool{
	"model":    true,
	"combine":  true,
	"topology": true,
	"stats":    true,
	"ilp":      true,
	"opt":      true,
	"chaos":    true,
	"repair":   true,
	"serve":    true,
}

// mapRangePkgs are the packages where ranging over a map is additionally
// flagged: the exact solvers promise schedule-independent results (parallel
// incumbent == serial incumbent, bit for bit), and a map iteration inside
// the search is the classic way to silently break that promise. The fault
// stack (chaos, repair) makes the same promise — schedules replay bitwise
// and repairs pin a bitwise differential against their naive reference — so
// it lives under the same rule; both packages are slice-indexed throughout.
// The serving daemon (serve) pins daemon-vs-simulator replay and
// run-vs-rerun determinism bitwise, so it inherits the rule too.
var mapRangePkgs = map[string]bool{
	"ilp":    true,
	"opt":    true,
	"chaos":  true,
	"repair": true,
	"serve":  true,
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators rather than using the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !deterministicPkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	mapRanges := mapRangePkgs[pass.Pkg.Name()]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok && mapRanges {
				if t := pass.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(rs.Pos(),
							"map iteration in solver package %s: order is randomized per run; iterate sorted keys or a slice", pass.Pkg.Name())
					}
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods (e.g. (*rand.Rand).Intn)
			// have a receiver and are deterministic given their generator.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s; thread an explicit timestamp or seed through the caller", fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global math/rand.%s in deterministic package %s; use an explicitly seeded *rand.Rand", fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
