package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "det", "free", "solver", "chaos", "serve")
}
