// Package chaos (fixture) exercises the fault-stack contract: the base
// time/rand checks plus the solver-style map-iteration rule — fault
// schedules must replay bitwise, so iteration order anywhere in the package
// has to be deterministic.
package chaos

import (
	"math/rand"
	"time"
)

func scheduleSeedWrong() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now in deterministic package chaos"
}

func scheduleSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func pickVictimGlobal(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn in deterministic package chaos"
}

func pickVictim(r *rand.Rand, n int) int {
	return r.Intn(n) // ok: method on an injected generator
}

func downSetIteration(down map[int]bool) []int {
	var out []int
	for k := range down { // want "map iteration in solver package chaos"
		out = append(out, k)
	}
	return out
}

func downSliceIteration(down []bool) []int {
	var out []int
	for k, d := range down { // ok: slice iteration is ordered
		if d {
			out = append(out, k)
		}
	}
	return out
}

func scatterAllowed(scale map[int]float64, dense []float64) {
	//socllint:ignore detrand fixture: scatter into a dense slice is order-independent
	for j, v := range scale {
		dense[j] = v
	}
}
