// Package model (fixture) exercises detrand inside a deterministic package.
package model

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want "global math/rand.Intn in deterministic package model"
}

func globalFloat() float64 {
	return rand.Float64() // want "global math/rand.Float64 in deterministic package model"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now in deterministic package model"
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func drawFrom(r *rand.Rand) int {
	return r.Intn(10) // ok: method on an injected generator
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle in deterministic package model"
}

func annotatedNow() int64 {
	//socllint:ignore detrand fixture: wall time feeds a log line, not a decision
	return time.Now().Unix()
}

func elapsedWrong(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package model"
}

func elapsed(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0) // ok: both endpoints supplied by the caller
}

func mapRangeOutsideSolvers(m map[int]int) int {
	n := 0
	for k := range m { // ok: map-iteration check applies only to the solver packages
		n += k
	}
	return n
}
