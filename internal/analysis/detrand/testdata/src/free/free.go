// Package free is outside the determinism contract: nothing here is flagged.
package free

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // ok: package not under the determinism contract
}

func now() time.Time {
	return time.Now() // ok: package not under the determinism contract
}
