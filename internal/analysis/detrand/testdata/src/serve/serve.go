// Package serve (fixture) exercises the serving-daemon contract: the daemon
// pins bitwise replay against the batch simulator and bitwise run-vs-rerun
// determinism, so it carries both the base time/rand checks and the
// solver-style map-iteration rule. Wall-clock telemetry (reaction timing
// that is reported but never branched on) is the one sanctioned use, opted
// out per line.
package serve

import (
	"math/rand"
	"time"
)

func epochSeedWrong() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package serve"
}

func epochSeed(routeSeed int64, epoch int) int64 {
	return routeSeed + int64(epoch) // ok: derived from the config
}

func jitterAdmission(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn in deterministic package serve"
}

func admitInOrder(queue []int, upTo int) []int {
	var out []int
	for _, id := range queue { // ok: slice iteration is admission order
		if id <= upTo {
			out = append(out, id)
		}
	}
	return out
}

func reapIteration(idle map[int]int) []int {
	var out []int
	for k := range idle { // want "map iteration in solver package serve"
		out = append(out, k)
	}
	return out
}

func reactionTelemetry() time.Duration {
	//socllint:ignore detrand fixture: wall-clock reaction time is reported, never branched on
	t0 := time.Now()
	//socllint:ignore detrand fixture: wall-clock reaction time is reported, never branched on
	return time.Since(t0)
}
