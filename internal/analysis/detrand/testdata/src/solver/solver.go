// Package ilp (fixture) exercises the solver-package extras: map iteration
// is flagged on top of the base time/rand checks.
package ilp

import "time"

func sumOverMap(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want "map iteration in solver package ilp"
		total += v
	}
	return total
}

func keysOnly(m map[int]float64) int {
	n := 0
	for k := range m { // want "map iteration in solver package ilp"
		n += k
	}
	return n
}

func scatterAllowed(m map[int]float64, dense []float64) {
	//socllint:ignore detrand fixture: scatter into a dense slice is order-independent
	for j, v := range m {
		dense[j] = v
	}
}

func sliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs { // ok: slice iteration is ordered
		total += v
	}
	return total
}

func deadlineCheck() time.Time {
	return time.Now() // want "time.Now in deterministic package ilp"
}

func deadlineAllowed() time.Time {
	//socllint:ignore detrand fixture: wall-clock time limit is an explicit Options knob
	return time.Now()
}
