// Package floateq flags exact ==/!= comparisons between floating-point
// values.
//
// Objective, latency, and ζ values in this repository are accumulated
// float64 sums; exact equality on them is almost always a bug (the PR-1
// parallel-phase floor double-count hid behind one). Comparisons belong in an
// epsilon helper (a function whose name mentions almost/approx/eps/within,
// e.g. invariant.AlmostEq) or — for the deliberate exact cases, such as
// deterministic sort tie-breaks where epsilon comparison would break strict
// weak ordering — under a //socllint:ignore floateq <reason> directive.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floating-point operands outside epsilon helpers",
	Run:  run,
}

// helperRe recognizes epsilon-helper functions by name; their bodies may
// compare floats exactly.
var helperRe = regexp.MustCompile(`(?i)(almost|approx|eps|within|ulp)`)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if helperRe.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypeOf(be.X)) && isFloat(pass.TypeOf(be.Y)) {
					pass.Reportf(be.OpPos,
						"exact %s on floating-point values; use an epsilon helper or annotate the deliberate exact compare", be.Op)
				}
				return true
			})
		}
	}
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
