package floateq_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "fl")
}
