// Package fl exercises floateq.
package fl

func compareObjectives(a, b float64) bool {
	return a == b // want "exact == on floating-point values"
}

func compareLatencies(a, b float64) bool {
	if a != b { // want "exact != on floating-point values"
		return false
	}
	return true
}

func compareF32(a, b float32) bool {
	return a == b // want "exact == on floating-point values"
}

type scored struct{ zeta float64 }

func tieBreak(xs []scored) bool {
	return xs[0].zeta != xs[1].zeta // want "exact != on floating-point values"
}

func annotatedTieBreak(xs []scored) bool {
	//socllint:ignore floateq fixture: exact tie-break keeps the sort order strict-weak
	return xs[0].zeta != xs[1].zeta
}

func zeroLiteral(a float64) bool {
	return a == 0 // want "exact == on floating-point values"
}

// almostEq is an epsilon helper: exact comparison inside it is the point.
func almostEq(a, b, tol float64) bool {
	if a == b { // ok: epsilon helper
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// withinEps is recognized by name as a helper too.
func withinEps(a, b float64) bool {
	return a == b // ok: epsilon helper
}

func ints(a, b int) bool {
	return a == b // ok: integers compare exactly
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "exact == on floating-point values"
}

func viaHelper(a, b float64) bool {
	return almostEq(a, b, 1e-9) // ok: the sanctioned path
}
