// Package load type-checks packages for the socllint analyzers without any
// dependency outside the standard library. Stdlib imports are resolved by the
// compiler's "source" importer (GOROOT source, fully offline); imports inside
// this module are resolved straight to their directories under the module
// root; test fixtures resolve GOPATH-style under extra root directories
// (testdata/src). One Loader shares a FileSet and caches across packages, so
// driving the whole repository is a single-process, single-pass affair.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Package is one type-checked package with its syntax trees.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// FuncDirectives maps this package's function objects to the socllint
	// directive payloads found in their doc comments (text after
	// "//socllint:", e.g. "sentinel ErrNoInstance").
	FuncDirectives map[types.Object][]string
}

// Target adapts the package to the analysis runner.
func (p *Package) Target() *analysis.Target {
	return &analysis.Target{Fset: p.Fset, Files: p.Syntax, Pkg: p.Types, TypesInfo: p.TypesInfo}
}

// Config configures a Loader.
type Config struct {
	// ModulePath / ModuleDir root the in-module import space, e.g. "repro" at
	// the repository root. Empty disables module resolution.
	ModulePath string
	ModuleDir  string
	// FixtureRoots are GOPATH-style src roots (testdata/src): import path P
	// resolves to <root>/P when that directory holds Go files. Fixture roots
	// shadow module and stdlib paths.
	FixtureRoots []string
	// BuildTags are extra build constraints satisfied during file selection.
	BuildTags []string
	// IncludeTests adds the package's own _test.go files (not external
	// package_test files) to the load.
	IncludeTests bool
}

// Loader loads and caches packages.
type Loader struct {
	cfg    Config
	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*Package       // loaded module/fixture packages
	stdlib map[string]*types.Package // loaded stdlib packages
	ctxt   build.Context

	// FuncDirectives accumulates directives across every loaded package, for
	// analysis passes that need cross-package callee annotations.
	FuncDirectives map[types.Object][]string

	// Summaries accumulates cross-function dataflow summaries
	// (analysis.FuncSummary) across every loaded package. Imports type-check
	// before their importers, so by the time a package is summarized every
	// callee it can reach already has an entry — the bottom-up order the
	// summary pass needs.
	Summaries map[types.Object]*analysis.FuncSummary
}

// New returns a Loader over cfg.
func New(cfg Config) *Loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	ctxt.BuildTags = append(append([]string{}, ctxt.BuildTags...), cfg.BuildTags...)
	return &Loader{
		cfg:            cfg,
		fset:           fset,
		std:            importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:           map[string]*Package{},
		stdlib:         map[string]*types.Package{},
		ctxt:           ctxt,
		FuncDirectives: map[types.Object][]string{},
		Summaries:      map[types.Object]*analysis.FuncSummary{},
	}
}

// Fset returns the shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Facts bundles the program-wide side tables for analysis.Run.
func (l *Loader) Facts() *analysis.Facts {
	return &analysis.Facts{FuncDirectives: l.FuncDirectives, Summaries: l.Summaries}
}

// resolveDir maps an import path to a directory, or "" when the path is not a
// fixture or module package (i.e. stdlib).
func (l *Loader) resolveDir(path string) string {
	for _, root := range l.cfg.FixtureRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if l.cfg.ModulePath != "" {
		if path == l.cfg.ModulePath {
			return l.cfg.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
			return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rest))
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Load type-checks the package at importPath (fixture, module, or stdlib
// name) and caches the result.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir := l.resolveDir(importPath)
	if dir == "" {
		return nil, fmt.Errorf("load: %s is not a fixture or module package", importPath)
	}
	return l.LoadDir(dir, importPath)
}

// LoadDir type-checks the package in dir under the given import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	names := append([]string{}, bp.GoFiles...)
	if l.cfg.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l), FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath:     importPath,
		Dir:            dir,
		Name:           tpkg.Name(),
		Fset:           l.fset,
		Syntax:         files,
		Types:          tpkg,
		TypesInfo:      info,
		FuncDirectives: map[types.Object][]string{},
	}
	l.collectDirectives(p)
	analysis.Summarize(info, files, l.Summaries)
	l.pkgs[importPath] = p
	return p, nil
}

// collectDirectives extracts //socllint:<payload> doc-comment directives from
// the package's function declarations into the package-local and loader-wide
// maps.
func (l *Loader) collectDirectives(p *Package) {
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			obj := p.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if payload, ok := strings.CutPrefix(c.Text, "//socllint:"); ok &&
					!strings.HasPrefix(c.Text, analysis.IgnoreDirectivePrefix) {
					p.FuncDirectives[obj] = append(p.FuncDirectives[obj], strings.TrimSpace(payload))
					l.FuncDirectives[obj] = append(l.FuncDirectives[obj], strings.TrimSpace(payload))
				}
			}
		}
	}
}

// loaderImporter lets type-checking recurse through the Loader: fixture and
// module imports load from source directories; everything else is delegated
// to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.resolveDir(path); dir != "" {
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.stdlib[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	l.stdlib[path] = p
	return p, nil
}
