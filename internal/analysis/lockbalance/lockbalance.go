// Package lockbalance checks sync.Mutex / sync.RWMutex pairing per
// function: the parallel engines guard their shared incumbent stores with
// short mutex sections (internal/ilp's incumbentStore, internal/opt's
// optEngine), and an early return between Lock and Unlock deadlocks every
// worker at the next offer — a hang, not a wrong answer, which is why it
// deserves a lint rather than a differential test.
//
// Per function, for each lock value (identified by its receiver expression,
// e.g. "e.mu"):
//
//   - Lock with no Unlock anywhere in the function (and none deferred) —
//     reported with a suggested fix inserting `defer mu.Unlock()`;
//   - an if-branch between Lock and the Unlock that exits via return or
//     continue while still holding the lock;
//   - write-side Lock paired only with read-side RUnlock (and vice versa) —
//     the RLock/Lock mismatch that corrupts an RWMutex's reader count;
//   - Unlock (or RUnlock) on a lock this function never takes — sound only
//     as a documented cross-function locking protocol, so it must carry a
//     reasoned ignore.
//
// The analyzer is type-directed: only methods resolving to package sync
// (including promoted methods of embedded mutexes) participate.
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockbalance pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc:  "flags sync mutex Lock/Unlock imbalance on some path, RLock/Lock mismatches, and unlocks without locks",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// lockOp is one Lock/Unlock-family call on one lock value.
type lockOp struct {
	call     *ast.CallExpr
	key      string // receiver expression, e.g. "e.mu"
	name     string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
	deferred bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ops := collectOps(pass, fd.Body)
	if len(ops) == 0 {
		return
	}
	byKey := map[string][]lockOp{}
	order := []string{}
	for _, op := range ops {
		if _, seen := byKey[op.key]; !seen {
			order = append(order, op.key)
		}
		byKey[op.key] = append(byKey[op.key], op)
	}
	for _, key := range order {
		checkLock(pass, fd, key, byKey[key])
	}
}

func checkLock(pass *analysis.Pass, fd *ast.FuncDecl, key string, ops []lockOp) {
	count := func(name string, deferredOK bool) int {
		n := 0
		for _, op := range ops {
			if op.name == name && (deferredOK || !op.deferred) {
				n++
			}
		}
		return n
	}
	locks := count("Lock", true) + count("TryLock", true)
	rlocks := count("RLock", true) + count("TryRLock", true)
	unlocks := count("Unlock", true)
	runlocks := count("RUnlock", true)

	// Unlock without any lock: a cross-function protocol at best.
	if locks+rlocks == 0 {
		for _, op := range ops {
			switch op.name {
			case "Unlock", "RUnlock":
				pass.Reportf(op.call.Pos(),
					"%s.%s without a %s in this function: cross-function lock protocols hide unlock-without-lock panics; keep the pair in one function or annotate the protocol", key, op.name, map[string]string{"Unlock": "Lock", "RUnlock": "RLock"}[op.name])
			}
		}
		return
	}

	// RLock/Lock mismatch across the whole function.
	if locks > 0 && unlocks == 0 && runlocks > 0 {
		pass.Reportf(ops[0].call.Pos(),
			"%s.Lock paired only with RUnlock: write lock released through the read path corrupts the RWMutex state", key)
		return
	}
	if rlocks > 0 && runlocks == 0 && unlocks > 0 {
		pass.Reportf(ops[0].call.Pos(),
			"%s.RLock paired only with Unlock: read lock released through the write path panics at runtime", key)
		return
	}

	for _, op := range ops {
		if op.name != "Lock" && op.name != "RLock" {
			continue
		}
		unlockName := "Unlock"
		if op.name == "RLock" {
			unlockName = "RUnlock"
		}
		if hasDeferred(ops, unlockName) {
			continue // defer covers every exit
		}
		if count(unlockName, false) == 0 {
			pass.Report(analysis.Diagnostic{
				Pos: op.call.Pos(),
				Message: key + "." + op.name + " has no matching " + unlockName +
					" in this function: every later locker deadlocks",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message:   "defer the unlock right after the lock",
					TextEdits: []analysis.TextEdit{{Pos: op.call.End(), End: op.call.End(), NewText: "\ndefer " + key + "." + unlockName + "()"}},
				}},
			})
			continue
		}
		// Early exits between this Lock and its Unlock; branches past the
		// Unlock run with the lock released and are out of scope.
		scope := innermostLoopBody(fd, op.call.Pos())
		bound := token.NoPos
		for _, u := range ops {
			if u.name == unlockName && !u.deferred && u.call.Pos() > op.call.End() &&
				(bound == token.NoPos || u.call.Pos() < bound) {
				bound = u.call.Pos()
			}
		}
		checkExitBranches(pass, scope, op.call.End(), bound, key, unlockName)
	}
}

// checkExitBranches reports if-branches between pos and the closing unlock
// (bound) that exit via return or continue while the lock is still held.
func checkExitBranches(pass *analysis.Pass, scope *ast.BlockStmt, pos, bound token.Pos, key, unlockName string) {
	ast.Inspect(scope, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() < pos {
			return true
		}
		if bound != token.NoPos && ifs.Pos() > bound {
			return true
		}
		for _, blk := range ifBranches(ifs) {
			exit := exitStmt(blk)
			if exit == nil {
				continue
			}
			if containsOp(pass, blk, key, unlockName) {
				continue
			}
			pass.Reportf(exit.Pos(),
				"branch exits while holding %s (no %s before the %s): every later locker deadlocks", key, unlockName, exitWord(exit))
		}
		return true
	})
}

func exitWord(s ast.Stmt) string {
	if b, ok := s.(*ast.BranchStmt); ok && b.Tok == token.CONTINUE {
		return "continue"
	}
	return "return"
}

// collectOps gathers the sync lock/unlock calls of a body.
func collectOps(pass *analysis.Pass, body *ast.BlockStmt) []lockOp {
	var out []lockOp
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, name, ok := syncLockCall(pass, call)
		if !ok {
			return true
		}
		out = append(out, lockOp{call: call, key: key, name: name, deferred: deferred[call]})
		return true
	})
	return out
}

// syncLockCall matches method calls resolving to package sync's
// Lock/Unlock/RLock/RUnlock/TryLock/TryRLock and returns the lock's
// receiver-expression key.
func syncLockCall(pass *analysis.Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	fn, isFn := pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// containsOp reports whether an op with the given name on the given key
// appears under n.
func containsOp(pass *analysis.Pass, n ast.Node, key, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if k, nm, isOp := syncLockCall(pass, call); isOp && k == key && nm == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasDeferred(ops []lockOp, name string) bool {
	for _, op := range ops {
		if op.deferred && op.name == name {
			return true
		}
	}
	return false
}

// ifBranches returns the then-block and any else-block of an if statement.
func ifBranches(ifs *ast.IfStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{ifs.Body}
	if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
		out = append(out, blk)
	}
	return out
}

// exitStmt returns the statement making blk an unconditional exit (trailing
// return or continue), or nil.
func exitStmt(blk *ast.BlockStmt) ast.Stmt {
	if len(blk.List) == 0 {
		return nil
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return last
	case *ast.BranchStmt:
		if last.Tok == token.CONTINUE {
			return last
		}
	}
	return nil
}

// innermostLoopBody returns the body of the innermost for/range statement
// enclosing pos, or the function body.
func innermostLoopBody(fd *ast.FuncDecl, pos token.Pos) *ast.BlockStmt {
	best := fd.Body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Body
			}
		case *ast.RangeStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Body
			}
		}
		return true
	})
	return best
}
