package lockbalance_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockbalance"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, "testdata", lockbalance.Analyzer, "lk")
}
