// Package lk exercises lockbalance with the incumbent-store shape from the
// parallel engines: short mutex sections around shared best-so-far state.
package lk

import "sync"

// store mirrors ilp's incumbentStore / opt's engine state.
type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	x  int
}

// goodDefer is the offer idiom: defer covers every exit.
func goodDefer(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.x
}

// goodInline is a straight-line lock section.
func goodInline(s *store) {
	s.mu.Lock()
	s.x++
	s.mu.Unlock()
}

// goodRW pairs the read-side correctly.
func goodRW(s *store) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.x
}

// goodReleasedBeforeBranch releases before the early return: the branch
// after the Unlock runs lock-free and must not be flagged.
func goodReleasedBeforeBranch(s *store, v int) int {
	s.mu.Lock()
	s.x = v
	s.mu.Unlock()
	if v < 0 {
		return -1
	}
	return s.x
}

// badNoUnlock never releases: the next offer deadlocks every worker.
func badNoUnlock(s *store) {
	s.mu.Lock() // want "no matching Unlock"
	s.x++
}

// badEarlyReturn leaks the lock on the error path.
func badEarlyReturn(s *store, v int) int {
	s.mu.Lock()
	if v < 0 {
		return -1 // want "exits while holding s.mu"
	}
	s.x = v
	s.mu.Unlock()
	return v
}

// badMismatch releases a write lock through the read path.
func badMismatch(s *store) {
	s.rw.Lock() // want "paired only with RUnlock"
	s.x++
	s.rw.RUnlock()
}

// badRMismatch releases a read lock through the write path.
func badRMismatch(s *store) int {
	s.rw.RLock() // want "paired only with Unlock"
	v := s.x
	s.rw.Unlock()
	return v
}

// badUnlockOnly unlocks a mutex this function never locked.
func badUnlockOnly(s *store) {
	s.mu.Unlock() // want "without a Lock"
}

// suppressedProtocol is a documented cross-function handoff: the caller
// locks, this helper releases.
func suppressedProtocol(s *store) {
	//socllint:ignore lockbalance documented handoff: caller acquires mu before calling
	s.mu.Unlock()
}
