// Package parclosure flags unsynchronized writes to captured state inside
// closures that run on other goroutines — the bug class the parallel
// branch-and-bound engines (internal/ilp, internal/opt), the parallel
// fan-outs in model/combine, and the sweep executor
// (internal/experiments/sweep.go) are all one careless edit away from.
//
// A "spawned region" is the body of a `go func(){...}`, a function literal
// argument of the spawned call, or a function literal passed in a
// concurrent parameter position of a goroutine-spawning callee (worker-pool
// callbacks like experiments.runSweep's fn or the ilp engine's runFrontier
// process — the cross-function fact comes from the summary pass). Inside a
// region the analyzer reports:
//
//   - assignments and ++/-- through variables captured from the enclosing
//     function (or package scope), including field and *ptr stores rooted at
//     a captured variable;
//   - stores into captured maps (concurrent map writes fault at runtime);
//   - stores into captured slices whose index is itself captured or
//     constant — the repo's disjoint-index discipline requires the index to
//     be claimed inside the region (closure-local loop variable, closure
//     parameter, or atomic cursor read);
//   - calls that pass a captured variable (or its address) to a callee whose
//     summary says it writes through that parameter — the same race one
//     function call away;
//   - calls to functions whose summary records package-level variable
//     writes;
//   - references to an enclosing loop's iteration variable that are not
//     rebound or passed as arguments. Go ≥ 1.22 scopes iteration variables
//     per iteration, so today this is a latent rather than live race — but
//     the repo's worker pools pass indices explicitly (see runFrontier's
//     `go func(worker int)`), and the same shape silently races under any
//     pre-1.22 toolchain, so the style is banned outright.
//
// Writes between a Lock/RLock call and a later (or deferred) Unlock/RUnlock
// in the same region are treated as protected. Intentional sites (e.g. a
// region that is spawned but synchronously joined before the captured value
// is read) carry a reasoned //socllint:ignore parclosure directive.
package parclosure

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the parclosure pass.
var Analyzer = &analysis.Analyzer{
	Name: "parclosure",
	Doc:  "flags unsynchronized writes to captured variables and loop-variable capture inside goroutine-spawning closures",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, region := range analysis.SpawnedRegions(pass.TypesInfo, pass.Summaries, fd.Body) {
				checkRegion(pass, fd, region)
			}
		}
	}
	return nil, nil
}

// checkRegion analyzes one spawned closure.
func checkRegion(pass *analysis.Pass, fd *ast.FuncDecl, region analysis.Region) {
	lit := region.Lit
	captured := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if isPackageLevel(obj) {
			return true
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	windows := lockWindows(lit.Body)
	protected := func(pos token.Pos) bool {
		for _, w := range windows {
			if w.lo <= pos && pos < w.hi {
				return true
			}
		}
		return false
	}

	checkWrite := func(lhs ast.Expr, pos token.Pos) {
		if protected(pos) {
			return
		}
		reportWrite(pass, lit, lhs, captured)
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// A := redeclares locals; any captured name on its left would not
			// type-check, so only plain assignments can write captured state.
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, n.Pos())
		case *ast.CallExpr:
			if !protected(n.Pos()) {
				checkCall(pass, n, captured)
			}
		}
		return true
	})

	checkLoopCapture(pass, fd, region, captured)
}

// reportWrite classifies one unprotected assignment target. The access path
// is walked outside-in: an index step with a region-local index into a slice
// makes the written element per-task (the disjoint-index discipline) and the
// write is allowed; every other path rooted at a captured variable is a
// shared-state write.
func reportWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, captured func(types.Object) bool) {
	expr := lhs
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			base := pass.TypeOf(e.X)
			if base != nil {
				if _, isMap := base.Underlying().(*types.Map); isMap {
					if rootCaptured(pass, e.X, captured) {
						pass.Reportf(lhs.Pos(),
							"write to captured map %s inside goroutine closure: concurrent map writes fault; use a mutex or per-worker maps merged after the join", types.ExprString(e.X))
					}
					return
				}
			}
			if !exprCaptured(pass, e.Index, lit, captured) {
				return // region-local index: per-task element, disjoint by discipline
			}
			expr = e.X
		case *ast.Ident:
			obj := pass.ObjectOf(e)
			if captured(obj) {
				where := "captured variable"
				if isPackageLevel(obj) {
					where = "package-level variable"
				}
				pass.Reportf(lhs.Pos(),
					"unsynchronized write to %s %s inside goroutine closure; make it closure-local, guard it with a mutex, or merge per-worker results after the join", where, e.Name)
			}
			return
		default:
			return
		}
	}
}

// checkCall flags calls that hand captured state to a callee that mutates it
// (per the summary pass), and calls to functions that write package-level
// variables.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, captured func(types.Object) bool) {
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	sum := pass.Summaries[callee]
	if sum == nil {
		return
	}
	if len(sum.GlobalWrites) > 0 {
		pass.Reportf(call.Pos(),
			"call to %s inside goroutine closure writes package-level variable %s without synchronization", callee.Name(), sum.GlobalWrites[0].Name())
	}
	for i, arg := range call.Args {
		if i >= len(sum.MutatesParam) || !sum.MutatesParam[i] {
			continue
		}
		target := ast.Unparen(arg)
		addrTaken := false
		if u, ok := target.(*ast.UnaryExpr); ok && u.Op == token.AND {
			target = ast.Unparen(u.X)
			addrTaken = true
		}
		id, ok := target.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.ObjectOf(id)
		if !captured(obj) {
			continue
		}
		// An explicit &x always aliases caller state; a value argument only
		// does if its type carries a reference (slice, map, pointer, chan) —
		// value copies are private to the callee.
		if !addrTaken && !pointerLike(obj.Type()) {
			continue
		}
		pass.Reportf(call.Pos(),
			"call to %s mutates captured variable %s through parameter %d inside goroutine closure", callee.Name(), id.Name, i)
	}
}

// checkLoopCapture reports reads of an enclosing loop's iteration variables
// from inside the region, suggesting the repo's pass-as-parameter idiom. The
// fix shadows the variable at the top of the closure.
func checkLoopCapture(pass *analysis.Pass, fd *ast.FuncDecl, region analysis.Region, captured func(types.Object) bool) {
	loopVars := map[types.Object]bool{}
	spawnPos := region.Spawn.Pos()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Body.Pos() <= spawnPos && spawnPos <= n.Body.End() {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		case *ast.ForStmt:
			if n.Body.Pos() <= spawnPos && spawnPos <= n.Body.End() {
				if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					for _, e := range as.Lhs {
						if id, ok := e.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								loopVars[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return
	}
	// A self-shadowing `w := w` inside the closure is the sanctioned rebind
	// (it is what the suggested fix inserts): later uses resolve to the new
	// local, and the rebind's own RHS is the one permitted outer reference.
	rebound := map[types.Object]bool{}
	ast.Inspect(region.Lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			rid, ok := as.Rhs[i].(*ast.Ident)
			if !ok || rid.Name != lid.Name {
				continue
			}
			if obj := pass.TypesInfo.Uses[rid]; obj != nil && loopVars[obj] {
				rebound[obj] = true
			}
		}
		return true
	})
	reported := map[types.Object]bool{}
	ast.Inspect(region.Lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !loopVars[obj] || rebound[obj] || reported[obj] || !captured(obj) {
			return true
		}
		reported[obj] = true
		insert := region.Lit.Body.Lbrace + 1
		pass.Report(analysis.Diagnostic{
			Pos: id.Pos(),
			Message: "goroutine closure captures loop variable " + id.Name +
				"; pass it as an argument (per-iteration scoping saves this under go >= 1.22, but the repo's worker pools pass indices explicitly)",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "shadow the loop variable at the top of the closure",
				TextEdits: []analysis.TextEdit{{Pos: insert, End: insert, NewText: "\n" + id.Name + " := " + id.Name}},
			}},
		})
		return true
	})
}

// exprCaptured reports whether any variable referenced by e is captured from
// outside the region (so the expression's value is not region-private).
// Constant-only expressions count as captured: a fixed index written by every
// worker is the race, not the discipline.
func exprCaptured(pass *analysis.Pass, e ast.Expr, lit *ast.FuncLit, captured func(types.Object) bool) bool {
	sawLocal := false
	bad := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if captured(obj) {
			bad = true
		} else {
			sawLocal = true
		}
		return true
	})
	return bad || !sawLocal
}

// rootCaptured walks to the root identifier of an access path.
func rootCaptured(pass *analysis.Pass, e ast.Expr, captured func(types.Object) bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return captured(pass.ObjectOf(x))
		default:
			return false
		}
	}
}

// lockWindow is a [Lock, Unlock) position range within a region body.
type lockWindow struct{ lo, hi token.Pos }

// lockWindows finds mutex-protected spans: a Lock/RLock call opens a window
// that a later Unlock/RUnlock closes; a deferred unlock (or none) extends
// the window to the end of the body. This is positional, not path-sensitive
// — good enough for the straight-line lock regions the repo writes, and
// lockbalance owns the pairing discipline itself.
func lockWindows(body *ast.BlockStmt) []lockWindow {
	var locks, unlocks []token.Pos
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			locks = append(locks, call.End())
		case "Unlock", "RUnlock":
			// A deferred unlock runs at function exit: it never closes the
			// window early.
			if !deferred[call] {
				unlocks = append(unlocks, call.Pos())
			}
		}
		return true
	})
	var out []lockWindow
	for _, lo := range locks {
		hi := body.End()
		for _, u := range unlocks {
			if u > lo && u < hi {
				hi = u
			}
		}
		out = append(out, lockWindow{lo, hi})
	}
	return out
}

// pointerLike reports whether values of t alias underlying storage when
// passed by value.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// isPackageLevel reports whether obj is a package-scoped variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
