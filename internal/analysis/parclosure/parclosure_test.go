package parclosure_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/parclosure"
)

func TestParClosure(t *testing.T) {
	analysistest.Run(t, "testdata", parclosure.Analyzer, "par")
}
