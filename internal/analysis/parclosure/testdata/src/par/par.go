// Package par exercises parclosure: unsynchronized captured-state writes in
// goroutine closures and worker-pool callbacks, the disjoint-index and
// pass-as-parameter disciplines the repo's parallel code follows, and the
// suppression path.
package par

import "sync"

// pool mirrors experiments.runSweep's worker pool: fn runs on worker
// goroutines, so a callback passed to pool is concurrent code. parclosure
// learns this from pool's function summary (fn is referenced inside a
// spawned closure), not from pool's call sites.
func pool(n int, fn func(i int)) {
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// badSharedCounter is the sweep-executor race: accumulating into a captured
// scalar from the worker callback instead of landing results in out[i].
func badSharedCounter(n int) int {
	total := 0
	pool(n, func(i int) {
		total += i // want "unsynchronized write to captured variable total"
	})
	return total
}

// claimRace is the ilp runFrontier shape with the atomic cursor replaced by
// a captured int — the race the engine's atomic.Int64 cursor exists to
// prevent.
func claimRace(frontier []int) {
	next := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next < len(frontier) {
				i := next
				next++ // want "unsynchronized write to captured variable next"
				_ = frontier[i]
			}
		}()
	}
	wg.Wait()
}

// badMapWrite: concurrent map writes fault at runtime.
func badMapWrite(n int) map[int]int {
	m := map[int]int{}
	pool(n, func(i int) {
		m[i] = i // want "write to captured map m"
	})
	return m
}

// badCapturedIndex: an index captured from the enclosing function is shared
// by every worker, so the element writes collide.
func badCapturedIndex(out []int) {
	j := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[j] = 1 // want "unsynchronized write to captured variable out"
		}()
	}
	wg.Wait()
}

// bump mutates through its pointer parameter; the summary pass records it.
func bump(p *int, v int) { *p += v }

// badPtrMutation races one call away: the callback hands the captured
// accumulator to a mutating callee.
func badPtrMutation(n int) int {
	total := 0
	pool(n, func(i int) {
		bump(&total, i) // want "bump mutates captured variable total through parameter 0"
	})
	return total
}

var hits int

// recordHit writes package-level state; the summary pass records it.
func recordHit() { hits++ }

// badGlobalViaCall: the global write happens in the callee, visible only
// through its summary.
func badGlobalViaCall(n int) {
	pool(n, func(i int) {
		recordHit() // want "recordHit inside goroutine closure writes package-level variable hits"
	})
}

// badGlobalWrite: direct package-level write from a worker.
func badGlobalWrite(n int) {
	pool(n, func(i int) {
		hits = i // want "unsynchronized write to package-level variable hits"
	})
}

// badLoopVar captures the spawn loop's variable instead of passing it.
func badLoopVar(out []int) {
	var wg sync.WaitGroup
	for w := 0; w < len(out); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(w) // want "goroutine closure captures loop variable w"
		}()
	}
	wg.Wait()
}

func sink(int) {}

// goodIndexed is the disjoint-index discipline runSweep documents: each
// callback invocation owns out[i] because i arrives as an argument.
func goodIndexed(n int) []int {
	out := make([]int, n)
	pool(n, func(i int) {
		out[i] = i * i
	})
	return out
}

// goodLoopParam passes the loop variable as an argument, the runFrontier
// idiom (`go func(worker int) {...}(wi)`).
func goodLoopParam(out []int) {
	var wg sync.WaitGroup
	for w := 0; w < len(out); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = w
		}(w)
	}
	wg.Wait()
}

// goodRebound uses the self-shadowing rebind the suggested fix inserts.
func goodRebound(out []int) {
	var wg sync.WaitGroup
	for w := 0; w < len(out); w++ {
		wg.Add(1)
		go func() {
			w := w
			defer wg.Done()
			out[w] = w
		}()
	}
	wg.Wait()
}

// goodLocked guards the shared accumulator with a mutex.
func goodLocked(n int) int {
	total := 0
	var mu sync.Mutex
	pool(n, func(i int) {
		mu.Lock()
		total += i
		mu.Unlock()
	})
	return total
}

// goodChunked is the model/combine fan-out shape: chunk bounds passed as
// parameters, all mutation closure-local.
func goodChunked(xs []int) []int {
	out := make([]int, len(xs))
	var wg sync.WaitGroup
	chunk := (len(xs) + 3) / 4
	for w := 0; w < 4; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = xs[i] * 2
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// suppressedJoin: a single spawned goroutine fully joined before the value
// is read — safe by handoff, documented with a reasoned ignore.
func suppressedJoin(n int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		//socllint:ignore parclosure single goroutine, joined via done before total is read
		total = n
		close(done)
	}()
	<-done
	return total
}

// badStealCursor is the work-stealing deque shape gone wrong: the steal
// cursor into the shared deque is a captured variable every thief bumps, so
// two thieves can pop the same task — or skip one — depending on the
// schedule.
func badStealCursor(deque []int) {
	top := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for top < len(deque) {
				sink(deque[top])
				top++ // want "unsynchronized write to captured variable top"
			}
		}()
	}
	wg.Wait()
}

// badStealRegrow: a stolen task pushes follow-up work by appending to the
// captured deque itself instead of routing it through the pool.
func badStealRegrow(n int) {
	deque := make([]int, 0, n)
	pool(n, func(i int) {
		deque = append(deque, i) // want "unsynchronized write to captured variable deque"
	})
	sink(len(deque))
}

// goodStealDeques is the internal/bb discipline: per-worker deques, each
// guarded by its own mutex; the worker id arrives as a parameter and the
// victim order (id+k)%W is a pure function of it, so every shared access
// sits behind the victim's lock and every per-worker write lands at a
// parameter-derived index.
func goodStealDeques(tasks []int) int {
	const workers = 4
	deques := make([][]int, workers)
	var mus [workers]sync.Mutex
	for i, t := range tasks {
		deques[i%workers] = append(deques[i%workers], t)
	}
	popped := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < workers; k++ {
				victim := (id + k) % workers
				mus[victim].Lock()
				for len(deques[victim]) > 0 {
					top := deques[victim][0]
					deques[victim] = deques[victim][1:]
					popped[id] += top
				}
				mus[victim].Unlock()
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	for _, p := range popped {
		sum += p
	}
	return sum
}
