// Package placementmut flags raw writes to model.Placement's X matrix.
//
// The incremental routing engine caches per-service candidate lists in
// model.PlacementIndex; a write that bypasses PlacementIndex.Set/Rebind
// leaves the cache stale and silently corrupts every routed result (the PR-1
// bug class). This analyzer makes such writes a lint error: any assignment,
// IncDec, or copy() destination reaching Placement.X is reported unless it
// sits inside one of the whitelisted mutation paths of package model itself
// (Placement.Set, PlacementIndex.Set/Rebind, NewPlacement, Clone).
// Intentional pre-index writes elsewhere (snapshot buffers that are always
// followed by Rebind) carry a //socllint:ignore placementmut <reason>
// directive.
package placementmut

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the placementmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "placementmut",
	Doc:  "flags writes to model.Placement.X outside PlacementIndex.Set/Rebind and whitelisted constructors",
	Run:  run,
}

// whitelist names the model-package functions allowed to write Placement.X.
var whitelist = map[string]bool{
	"Set":          true, // Placement.Set and PlacementIndex.Set
	"Rebind":       true,
	"NewPlacement": true,
	"Clone":        true,
}

func run(pass *analysis.Pass) (any, error) {
	inModel := pass.Pkg.Name() == "model"
	for _, f := range pass.Files {
		var fn *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn = n
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs, fn, inModel)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X, fn, inModel)
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
					if obj := pass.ObjectOf(id); obj == nil || obj.Parent() == types.Universe {
						checkWrite(pass, n.Args[0], fn, inModel)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkWrite reports lhs when it denotes (part of) a Placement.X matrix and
// the enclosing function is not whitelisted within package model.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, fn *ast.FuncDecl, inModel bool) {
	sel := placementXSelector(pass, lhs)
	if sel == nil {
		return
	}
	if inModel && fn != nil && whitelist[fn.Name.Name] {
		return
	}
	where := "outside package model"
	if inModel {
		where = "outside the whitelisted model mutators"
	}
	pass.Reportf(sel.Pos(),
		"raw write to Placement.X %s desynchronizes PlacementIndex; use PlacementIndex.Set/Rebind or Placement.Set", where)
}

// placementXSelector unwraps index expressions (p.X, p.X[i], p.X[i][k]) and
// returns the underlying `.X` selector when its receiver is model.Placement.
func placementXSelector(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
			continue
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.SelectorExpr:
			if v.Sel.Name != "X" {
				return nil
			}
			if isPlacement(pass.TypeOf(v.X)) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isPlacement reports whether t is (a pointer to) a named type Placement
// declared in a package named "model".
func isPlacement(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Placement" && obj.Pkg() != nil && obj.Pkg().Name() == "model"
}
