package placementmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/placementmut"
)

func TestPlacementMut(t *testing.T) {
	analysistest.Run(t, "testdata", placementmut.Analyzer, "model", "a")
}
