// Package a exercises placementmut outside package model.
package a

import "model"

func mutateCell(p model.Placement) {
	p.X[0][1] = true // want "raw write to Placement.X outside package model"
}

func mutateRow(p model.Placement) {
	p.X[0] = nil // want "raw write to Placement.X outside package model"
}

func mutateMatrix(p *model.Placement) {
	p.X = nil // want "raw write to Placement.X outside package model"
}

func mutateViaCopy(dst, src model.Placement) {
	copy(dst.X[0], src.X[0]) // want "raw write to Placement.X outside package model"
}

func mutateCompound(p model.Placement, rows [][]bool) {
	p.X[2], rows[0] = rows[0], p.X[2] // want "raw write to Placement.X outside package model"
}

func throughIndex(ix *model.PlacementIndex) {
	ix.Set(0, 1, true) // ok: the sanctioned mutation path
}

func throughSet(p model.Placement) {
	p.Set(0, 1, true) // ok: Placement.Set is the model-owned write
}

func read(p model.Placement) bool {
	n := 0
	for _, on := range p.X[0] { // ok: read-only range
		if on {
			n++
		}
	}
	return p.X[0][0] && n > 0 // ok: read
}

func annotated(p model.Placement) {
	//socllint:ignore placementmut fixture: snapshot buffer restored before any index read
	p.X[1][1] = true
}

// copyShadow proves that a user-defined copy function does not trip the
// builtin-copy destination check.
func copyShadow(p model.Placement) {
	localCopy(p.X[0], p.X[0]) // ok: not the builtin copy
}

func localCopy(dst, src []bool) {}
