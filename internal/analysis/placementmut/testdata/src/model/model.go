// Package model is a fixture mirror of repro/internal/model's placement
// surface: the analyzer matches the Placement type by name and package name,
// so these declarations stand in for the real ones.
package model

type Placement struct {
	X [][]bool
}

func NewPlacement(m, v int) Placement {
	x := make([][]bool, m)
	for i := range x {
		x[i] = make([]bool, v) // constructor: whitelisted
	}
	return Placement{X: x}
}

func (p Placement) Clone() Placement {
	q := NewPlacement(len(p.X), len(p.X[0]))
	for i := range p.X {
		copy(q.X[i], p.X[i]) // Clone: whitelisted
	}
	return q
}

func (p Placement) Set(i, k int, val bool) { p.X[i][k] = val } // whitelisted

func (p Placement) Has(i, k int) bool { return p.X[i][k] }

type PlacementIndex struct {
	p     Placement
	dirty []bool
}

func (ix *PlacementIndex) Set(i, k int, val bool) {
	ix.p.X[i][k] = val // whitelisted
	ix.dirty[i] = true
}

func (ix *PlacementIndex) Rebind(p Placement) {
	ix.p = p
	ix.p.X[0] = ix.p.X[0] // whitelisted (Rebind)
}

// sneakyReset writes the matrix outside every whitelisted mutator: flagged
// even inside package model.
func (p Placement) sneakyReset(i, k int) {
	p.X[i][k] = false // want "raw write to Placement.X outside the whitelisted model mutators"
}
