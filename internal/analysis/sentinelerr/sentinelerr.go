// Package sentinelerr enforces errors.Is/errors.As discipline around
// sentinel-documented errors such as model.ErrNoInstance.
//
// Three checks:
//
//  1. ==/!= comparison of error values against anything but nil: wrapped
//     sentinels never compare equal — use errors.Is.
//  2. Type assertion of an error to a concrete error type (x.(ErrFoo) or a
//     type switch over an error): use errors.As, which unwraps.
//  3. Calls to functions annotated `//socllint:sentinel <Name>` (functions
//     whose error result carries a sentinel the caller must branch on):
//     discarding the error result — or handling it while the enclosing
//     function never consults errors.Is/errors.As/Is*-style helpers — is
//     flagged. The deadlineViolated bug of PR 1 was exactly such a caller
//     treating "any error" as the sentinel.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the sentinelerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc:  "flags error handling that must branch on errors.Is/errors.As for sentinel errors",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	branchesOnSentinel := usesErrorBranding(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkComparison(pass, n)
		case *ast.TypeAssertExpr:
			checkAssertion(pass, n)
		case *ast.AssignStmt:
			checkSentinelCallAssign(pass, n, branchesOnSentinel)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := sentinelCallee(pass, call); ok {
					pass.Reportf(call.Pos(),
						"error result of %s (sentinel contract) is discarded; handle it with errors.Is/errors.As", name)
				}
			}
		}
		return true
	})
}

// checkComparison flags err ==/!= X where X is not nil.
func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isErrorType(pass.TypeOf(be.X)) && !isErrorType(pass.TypeOf(be.Y)) {
		return
	}
	if isNil(pass, be.X) || isNil(pass, be.Y) {
		return
	}
	pass.Reportf(be.OpPos, "errors compared with %s never match wrapped sentinels; use errors.Is", be.Op)
}

// checkAssertion flags err.(ConcreteError); type switches produce implicit
// TypeAssertExpr nodes with nil Type, handled by the switch's case clauses.
func checkAssertion(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if !isErrorType(pass.TypeOf(ta.X)) {
		return
	}
	if ta.Type == nil { // type switch header: the cases carry the types
		pass.Reportf(ta.Pos(), "type switch on an error does not unwrap; use errors.As")
		return
	}
	if implementsError(pass.TypeOf(ta.Type)) {
		pass.Reportf(ta.Pos(), "type assertion on an error does not unwrap; use errors.As")
	}
}

// checkSentinelCallAssign flags assignments from sentinel-annotated calls
// that blank the error result or feed a function that never brands errors.
func checkSentinelCallAssign(pass *analysis.Pass, as *ast.AssignStmt, branded bool) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := sentinelCallee(pass, call)
	if !ok {
		return
	}
	errIdx := errorResultIndex(pass, call)
	if errIdx < 0 || errIdx >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(),
			"error result of %s (sentinel contract) is discarded; handle it with errors.Is/errors.As", name)
		return
	}
	if !branded {
		pass.Reportf(call.Pos(),
			"%s returns a sentinel error but this function never branches on errors.Is/errors.As; nil-only checks misclassify other failures", name)
	}
}

// sentinelCallee reports the callee name when the called function carries a
// //socllint:sentinel directive.
func sentinelCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return "", false
	}
	for _, d := range pass.FuncDirectives[obj] {
		if strings.HasPrefix(d, "sentinel") {
			return id.Name, true
		}
	}
	return "", false
}

// errorResultIndex returns the index of the call's error result, or -1.
func errorResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	t := pass.TypeOf(call)
	if t == nil {
		return -1
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

// usesErrorBranding reports whether the body calls errors.Is/errors.As or an
// Is*/As*-named helper that takes an error argument (e.g. model.IsNoInstance).
func usesErrorBranding(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return !found
		}
		if name == "Is" || name == "As" ||
			((strings.HasPrefix(name, "Is") || strings.HasPrefix(name, "As")) && hasErrorArg(pass, call)) {
			found = true
		}
		return !found
	})
	return found
}

// hasErrorArg reports whether any argument of the call is error-typed.
func hasErrorArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isErrorType(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is the error interface or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// implementsError is isErrorType for asserted target types.
func implementsError(t types.Type) bool { return isErrorType(t) }

// isNil reports whether e is the predeclared nil.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		obj := pass.ObjectOf(id)
		return obj == nil || obj.Parent() == types.Universe
	}
	if t, ok := pass.TypesInfo.Types[e]; ok {
		if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return true
		}
	}
	return false
}
