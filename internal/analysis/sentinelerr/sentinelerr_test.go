package sentinelerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelerr.Analyzer, "sentdep", "sent")
}
