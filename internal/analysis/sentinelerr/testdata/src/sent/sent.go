// Package sent exercises sentinelerr.
package sent

import (
	"errors"
	"fmt"

	"sentdep"
)

type notFoundError struct{ id int }

func (e notFoundError) Error() string { return fmt.Sprintf("%d not found", e.id) }

var errSentinel = errors.New("sentinel")

func equalityCompare(err error) bool {
	return err == errSentinel // want "errors compared with == never match wrapped sentinels; use errors.Is"
}

func inequalityCompare(err error) bool {
	return err != errSentinel // want "errors compared with != never match wrapped sentinels; use errors.Is"
}

func nilCompare(err error) bool {
	return err == nil // ok: nil check
}

func properIs(err error) bool {
	return errors.Is(err, errSentinel) // ok
}

func typeAssert(err error) bool {
	_, ok := err.(notFoundError) // want "type assertion on an error does not unwrap; use errors.As"
	return ok
}

func typeSwitch(err error) string {
	switch err.(type) { // want "type switch on an error does not unwrap; use errors.As"
	case notFoundError:
		return "nf"
	default:
		return "?"
	}
}

func properAs(err error) bool {
	var nf notFoundError
	return errors.As(err, &nf) // ok
}

func nonErrorAssert(v interface{}) bool {
	_, ok := v.(int) // ok: not an error assertion
	return ok
}

func discardsSentinel() int {
	n, _, _ := sentdep.Route(3) // want "error result of Route \\(sentinel contract\\) is discarded"
	return n
}

func dropsAllResults() {
	sentdep.Route(3) // want "error result of Route \\(sentinel contract\\) is discarded"
}

func nilOnlyHandling() float64 {
	_, d, err := sentdep.Route(3) // want "Route returns a sentinel error but this function never branches on errors.Is"
	if err != nil {
		return -1
	}
	return d
}

func brandedHandling() float64 {
	_, d, err := sentdep.Route(3) // ok: branches on the sentinel helper
	if err != nil {
		if sentdep.IsNoInstance(err) {
			return 0
		}
		return -1
	}
	return d
}

func errorsIsHandling() float64 {
	_, d, err := sentdep.Route(3) // ok: errors.Is
	if errors.Is(err, sentdep.ErrNoInstance) {
		return 0
	}
	return d
}

func annotatedNilOnly() float64 {
	//socllint:ignore sentinelerr fixture: any failure funnels to the same fallback by design
	_, d, err := sentdep.Route(3)
	if err != nil {
		return -1
	}
	return d
}

func unannotatedCallee() error {
	_, err := plainCall() // ok: no sentinel contract on the callee
	return err
}

func plainCall() (int, error) { return 0, nil }
