// Package sentdep declares sentinel-contract functions for the sentinelerr
// fixture, mirroring model.RouteOptimal's ErrNoInstance contract.
package sentdep

import "errors"

// ErrNoInstance mirrors the real sentinel.
var ErrNoInstance = errors.New("no instance")

// Route fails with ErrNoInstance when the service has no instance.
//
//socllint:sentinel ErrNoInstance
func Route(svc int) (int, float64, error) {
	if svc < 0 {
		return 0, 0, ErrNoInstance
	}
	return svc, 1.0, nil
}

// IsNoInstance reports whether err is the sentinel, unwrapping.
func IsNoInstance(err error) bool { return errors.Is(err, ErrNoInstance) }
