// Package snapshotpair flags snapshot() calls whose paired restore() is
// missing from failure exits of the same function.
//
// The combine serial phase brackets every speculative removal with
// saveSnapshot/restoreSnapshot; PR 1 fixed a restore that leaked state, and
// the residual hazard is an early exit (return/continue) taken between the
// two calls. The analyzer enforces, per function that calls a snapshot-like
// method:
//
//  1. at least one paired restore call (or a deferred restore) must appear in
//     the function, and
//  2. within the snapshot's innermost loop (or the function body), every
//     if-branch after the snapshot that exits via return or continue must
//     contain a restore call.
//
// Exits that intentionally commit the speculative state are annotated with
// //socllint:ignore snapshotpair <reason>.
package snapshotpair

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the snapshotpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotpair",
	Doc:  "flags snapshot() calls whose restore() is not reachable on failure paths of the same function",
	Run:  run,
}

// pairs maps snapshot-taking method names to their restoring counterparts.
var pairs = map[string]string{
	"snapshot":     "restore",
	"Snapshot":     "Restore",
	"saveSnapshot": "restoreSnapshot",
	"SaveSnapshot": "RestoreSnapshot",
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Locate snapshot calls and their restore names.
	type snap struct {
		call    *ast.CallExpr
		restore string
	}
	var snaps []snap
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); name != "" {
				if r, ok := pairs[name]; ok {
					snaps = append(snaps, snap{call, r})
				}
			}
		}
		return true
	})
	for _, s := range snaps {
		if deferredCall(fd.Body, s.restore) {
			continue // defer restore() covers every exit
		}
		if !containsCall(fd.Body, s.restore) {
			pass.Reportf(s.call.Pos(),
				"%s has no matching %s anywhere in this function", calleeName(s.call), s.restore)
			continue
		}
		scope := innermostLoopBody(fd, s.call.Pos())
		checkExitBranches(pass, scope, s.call.End(), s.restore)
	}
}

// checkExitBranches reports if-branches after pos that exit via return or
// continue without restoring.
func checkExitBranches(pass *analysis.Pass, scope *ast.BlockStmt, pos token.Pos, restore string) {
	ast.Inspect(scope, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() < pos {
			return true
		}
		for _, blk := range ifBranches(ifs) {
			exit := exitStmt(blk)
			if exit == nil {
				continue
			}
			if containsCall(blk, restore) || takesSnapshot(blk) {
				continue
			}
			pass.Reportf(exit.Pos(),
				"branch exits between snapshot and %s without restoring; add %s or annotate the intentional commit", restore, restore)
		}
		return true
	})
}

// ifBranches returns the then-block and any else-block of an if statement.
func ifBranches(ifs *ast.IfStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{ifs.Body}
	if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
		out = append(out, blk)
	}
	return out
}

// exitStmt returns the statement making blk an unconditional exit (trailing
// return or continue), or nil.
func exitStmt(blk *ast.BlockStmt) ast.Stmt {
	if len(blk.List) == 0 {
		return nil
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return last
	case *ast.BranchStmt:
		if last.Tok == token.CONTINUE {
			return last
		}
	}
	return nil
}

// innermostLoopBody returns the body of the innermost for/range statement
// enclosing pos, or the function body when the snapshot is not inside a loop.
func innermostLoopBody(fd *ast.FuncDecl, pos token.Pos) *ast.BlockStmt {
	best := fd.Body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Body
			}
		case *ast.RangeStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() {
				best = n.Body
			}
		}
		return true
	})
	return best
}

// containsCall reports whether any call to a function/method named name
// appears under n.
func containsCall(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && calleeName(call) == name {
			found = true
		}
		return !found
	})
	return found
}

// takesSnapshot reports whether the block takes a fresh snapshot of its own.
func takesSnapshot(n ast.Node) bool {
	for save := range pairs {
		if containsCall(n, save) {
			return true
		}
	}
	return false
}

// deferredCall reports whether a `defer x.name(...)` appears in the body.
func deferredCall(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && calleeName(d.Call) == name {
			found = true
		}
		return !found
	})
	return found
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
