package snapshotpair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotpair"
)

func TestSnapshotPair(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotpair.Analyzer, "snap")
}
