// Package snap exercises snapshotpair.
package snap

type state struct{}

func (s *state) saveSnapshot()    {}
func (s *state) restoreSnapshot() {}
func (s *state) snapshot()        {}
func (s *state) restore()         {}
func (s *state) work() bool       { return false }

// missingRestore never restores at all.
func missingRestore(s *state) {
	s.saveSnapshot() // want "saveSnapshot has no matching restoreSnapshot anywhere in this function"
	_ = s.work()
}

// earlyContinue exits the loop iteration on a failure branch without
// restoring, although a restore exists on another path.
func earlyContinue(s *state) {
	for i := 0; i < 10; i++ {
		s.saveSnapshot()
		if s.work() {
			continue // want "branch exits between snapshot and restoreSnapshot without restoring"
		}
		if i > 5 {
			s.restoreSnapshot()
			continue // ok: restored before exiting
		}
	}
}

// earlyReturn exits the function on a failure branch without restoring.
func earlyReturn(s *state) {
	s.snapshot()
	if s.work() {
		return // want "branch exits between snapshot and restore without restoring"
	}
	s.restore()
}

// deferred restores on every path via defer.
func deferred(s *state) {
	s.saveSnapshot()
	defer s.restoreSnapshot()
	if s.work() {
		return // ok: deferred restore covers this exit
	}
}

// balanced restores on each failure branch.
func balanced(s *state) {
	for i := 0; i < 10; i++ {
		s.saveSnapshot()
		if s.work() {
			s.restoreSnapshot()
			continue
		}
		s.restoreSnapshot()
	}
}

// committed documents an intentional accept-and-continue exit.
func committed(s *state) {
	for i := 0; i < 10; i++ {
		s.saveSnapshot()
		if s.work() {
			//socllint:ignore snapshotpair fixture: failed step is accepted, not rolled back
			continue
		}
		s.restoreSnapshot()
	}
}

// resnapshotted branches that take a fresh snapshot of their own are the new
// snapshot's problem, not this one's.
func resnapshotted(s *state) {
	s.saveSnapshot()
	if s.work() {
		s.saveSnapshot() // ok: branch owns a fresh snapshot
		return
	}
	s.restoreSnapshot()
}

// beforeSnapshot: exits lexically before the snapshot are not failure paths
// of it.
func beforeSnapshot(s *state) {
	if s.work() {
		return // ok: snapshot not yet taken
	}
	s.saveSnapshot()
	s.restoreSnapshot()
}
