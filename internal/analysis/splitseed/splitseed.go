// Package splitseed enforces the seed-splitting discipline that makes the
// repo's parallel code bitwise-replayable: RNG state must never cross a
// goroutine boundary, and any generator created inside concurrent code must
// derive its seed from stats.SplitSeed — a pure function of the root seed
// and a stream label, never of scheduling order (the contract the sweep
// executor documents in internal/experiments/sweep.go).
//
// In every function that spawns goroutines (directly, or via a callee the
// summary pass knows spawns them), the analyzer reports:
//
//   - a *rand.Rand declared outside a spawned closure but used inside it —
//     a shared generator's draw order depends on the schedule, so two runs
//     diverge silently (and *rand.Rand is not goroutine-safe to begin with);
//   - a *rand.Rand passed as an argument in a go statement, or to a
//     goroutine-spawning callee — the same sharing one call away;
//   - a generator constructed inside a spawned closure (stats.NewRand,
//     rand.New) whose seed is not derived from SplitSeed. Derivation is
//     traced through locals, arithmetic, conversions, and calls to functions
//     whose summary marks their return SplitSeed-derived; closure parameters
//     count as derived (the spawn site is responsible for what it passes
//     in, and that site is checked in its own function).
//
// Intentional sites carry a reasoned //socllint:ignore splitseed directive.
package splitseed

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the splitseed pass.
var Analyzer = &analysis.Analyzer{
	Name: "splitseed",
	Doc:  "flags *rand.Rand values crossing goroutine boundaries and in-goroutine generators not derived from SplitSeed",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	regions := analysis.SpawnedRegions(pass.TypesInfo, pass.Summaries, fd.Body)
	for _, region := range regions {
		checkRegion(pass, region)
	}
	checkSpawnArgs(pass, fd)
}

// checkRegion flags shared generators used inside one spawned closure and
// un-derived generators created there.
func checkRegion(pass *analysis.Pass, region analysis.Region) {
	lit := region.Lit
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}

	// Closure parameters are derived by contract: the spawn site chooses what
	// to pass and is checked in its own function.
	params := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	derived := derivedInRegion(pass, lit, params)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || local(obj) {
				return true
			}
			if analysis.IsRandType(obj.Type()) {
				pass.Reportf(n.Pos(),
					"*rand.Rand %s is shared across a goroutine boundary; derive a per-task generator inside the closure with stats.SplitSeed", n.Name)
			}
		case *ast.CallExpr:
			if !isRandConstructor(pass, n) {
				return true
			}
			if len(n.Args) == 1 && !isDerivedSeed(pass, n.Args[0], derived, params) {
				pass.Reportf(n.Pos(),
					"generator created inside a goroutine closure without a SplitSeed-derived seed; results depend on scheduling order — use stats.SplitSeed(seed, label)")
			}
		}
		return true
	})
}

// checkSpawnArgs flags *rand.Rand arguments handed to goroutines or to
// goroutine-spawning callees anywhere in the function.
func checkSpawnArgs(pass *analysis.Pass, fd *ast.FuncDecl) {
	flagArgs := func(call *ast.CallExpr, how string) {
		for _, arg := range call.Args {
			t := pass.TypeOf(arg)
			if t != nil && analysis.IsRandType(t) {
				pass.Reportf(arg.Pos(),
					"*rand.Rand passed %s shares one generator across goroutines; pass a SplitSeed-derived seed instead", how)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			flagArgs(n.Call, "to a go statement")
		case *ast.CallExpr:
			callee := analysis.CalleeFunc(pass.TypesInfo, n)
			if sum := pass.Summaries[callee]; sum != nil && sum.Spawns {
				flagArgs(n, "to goroutine-spawning "+callee.Name())
			}
		}
		return true
	})
}

// isRandConstructor matches stats.NewRand (by name, so fixtures carry their
// own stats package) and math/rand's rand.New.
func isRandConstructor(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch {
	case callee.Name() == "NewRand":
		return true
	case callee.Name() == "New" &&
		(callee.Pkg().Path() == "math/rand" || callee.Pkg().Path() == "math/rand/v2"):
		return true
	}
	return false
}

// derivedInRegion collects region-local variables assigned SplitSeed-derived
// values (two passes resolve simple forward chains).
func derivedInRegion(pass *analysis.Pass, lit *ast.FuncLit, params map[types.Object]bool) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for i := 0; i < 2; i++ {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if isDerivedSeed(pass, as.Rhs[j], derived, params) {
					derived[obj] = true
				}
			}
			return true
		})
	}
	return derived
}

// isDerivedSeed reports whether a seed expression is SplitSeed-derived:
// a SplitSeed call, a call whose callee summary says SplitDerived, a derived
// local or closure parameter, or arithmetic/conversions over such values.
// rand.NewSource(x) wrappers recurse into x.
func isDerivedSeed(pass *analysis.Pass, e ast.Expr, derived, params map[types.Object]bool) bool {
	merged := derived
	if len(params) > 0 {
		merged = make(map[types.Object]bool, len(derived)+len(params))
		for k := range derived {
			merged[k] = true
		}
		for k := range params {
			merged[k] = true
		}
	}
	return analysisDerived(pass, e, merged)
}

func analysisDerived(pass *analysis.Pass, e ast.Expr, derived map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return analysisDerived(pass, e.X, derived)
	case *ast.UnaryExpr:
		return analysisDerived(pass, e.X, derived)
	case *ast.BinaryExpr:
		return analysisDerived(pass, e.X, derived) || analysisDerived(pass, e.Y, derived)
	case *ast.CallExpr:
		if analysis.IsSplitSeedCall(pass.TypesInfo, e) {
			return true
		}
		if sum := pass.Summaries[analysis.CalleeFunc(pass.TypesInfo, e)]; sum != nil && sum.SplitDerived {
			return true
		}
		for _, arg := range e.Args {
			if analysisDerived(pass, arg, derived) {
				return true
			}
		}
		return false
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && derived[obj]
	default:
		return false
	}
}
