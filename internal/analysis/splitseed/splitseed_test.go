package splitseed_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/splitseed"
)

func TestSplitSeed(t *testing.T) {
	analysistest.Run(t, "testdata", splitseed.Analyzer, "seed")
}
