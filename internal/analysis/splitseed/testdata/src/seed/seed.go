// Package seed exercises splitseed: *rand.Rand crossing goroutine
// boundaries, in-goroutine generators with underived seeds (the sweep
// executor's bug shape), and the SplitSeed-derived shapes that pass.
package seed

import (
	"math/rand"
	"sync"

	"stats"
)

// pool mirrors experiments.runSweep's worker pool: fn runs on worker
// goroutines with a per-point seed handed in.
func pool(n int, fn func(i int, seed int64)) {
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i, stats.SplitSeed(42, "point"))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// badShared is the race runSweep's contract forbids: one generator drawn
// from by every worker, so the draw order depends on the schedule.
func badShared(n int) {
	r := stats.NewRand(7)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.Int63() // want "shared across a goroutine boundary"
		}()
	}
	wg.Wait()
}

// badSpawnArg hands the generator to the goroutine as an argument — the same
// sharing, one hop away.
func badSpawnArg(r *rand.Rand) {
	done := make(chan struct{})
	go func(g *rand.Rand) { // the parameter is fine; the argument is the leak
		_ = g.Int63()
		close(done)
	}(r) // want "passed to a go statement"
	<-done
}

// badUnsplitConstant seeds every worker's generator with the same constant —
// the sweep-executor bug shape where each point replays identical draws (and
// any later fix to thread the worker index reintroduces schedule dependence).
func badUnsplitConstant(n int) {
	pool(n, func(i int, s int64) {
		r := stats.NewRand(777) // want "without a SplitSeed-derived seed"
		_ = r.Int63()
	})
}

// badUnsplitRandNew builds a stdlib generator inside the closure from a raw
// literal seed.
func badUnsplitRandNew() {
	done := make(chan struct{})
	go func() {
		r := rand.New(rand.NewSource(99)) // want "without a SplitSeed-derived seed"
		_ = r.Int63()
		close(done)
	}()
	<-done
}

// goodParamSeed is the contract runSweep documents: the pool derives a seed
// per point and the callback builds its generator from it.
func goodParamSeed(n int) {
	pool(n, func(i int, s int64) {
		r := stats.NewRand(s)
		_ = r.Int63()
	})
}

// goodLocalSplit derives the seed inside the closure.
func goodLocalSplit() {
	done := make(chan struct{})
	go func() {
		s := stats.SplitSeed(42, "worker")
		r := stats.NewRand(s)
		_ = r.Int63()
		close(done)
	}()
	<-done
}

// pointSeed derives through a helper; the summary pass marks its return
// SplitSeed-derived, so callers may use it as a seed.
func pointSeed(root int64, i int) int64 {
	return stats.SplitSeed(root, "pt") + int64(i)
}

// goodHelperSplit exercises the cross-function derivation fact.
func goodHelperSplit() {
	done := make(chan struct{})
	go func() {
		r := stats.NewRand(pointSeed(42, 1))
		_ = r.Int63()
		close(done)
	}()
	<-done
}

// suppressedShared: a generator intentionally handed to a single goroutine
// that owns it exclusively after the send — documented with a reasoned
// ignore.
func suppressedShared() {
	r := stats.NewRand(5)
	done := make(chan struct{})
	go func() {
		//socllint:ignore splitseed ownership handoff: spawner never touches r again
		_ = r.Int63()
		close(done)
	}()
	<-done
}

// badStealCursorSeed is the work-stealing analog of the sweep-executor bug:
// the stolen task seeds its generator from the steal cursor, i.e. from the
// order in which thieves happened to win tasks — replays diverge the moment
// a steal lands differently.
func badStealCursorSeed(tasks []int) {
	var mu sync.Mutex
	top := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if top >= len(tasks) {
					mu.Unlock()
					return
				}
				t := tasks[top]
				top++
				mu.Unlock()
				r := stats.NewRand(int64(t)) // want "without a SplitSeed-derived seed"
				_ = r.Int63()
			}
		}()
	}
	wg.Wait()
}

// goodStealTaskSeed is the discipline internal/bb's callers follow: the
// stolen task's seed is SplitSeed-derived from the root seed plus the task's
// own identity, so stealing reorders execution but never derivation.
func goodStealTaskSeed(tasks []int) {
	var mu sync.Mutex
	top := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if top >= len(tasks) {
					mu.Unlock()
					return
				}
				t := tasks[top]
				top++
				mu.Unlock()
				r := stats.NewRand(stats.SplitSeed(42, "steal") + int64(t))
				_ = r.Int63()
			}
		}()
	}
	wg.Wait()
}
