// Package stats mirrors repro/internal/stats' RNG helpers for the splitseed
// fixtures: NewRand constructs a generator, SplitSeed derives a child seed
// from a root seed and a stream label.
package stats

import "math/rand"

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SplitSeed derives an independent child seed (FNV-style mix of the label).
func SplitSeed(seed int64, label string) int64 {
	h := uint64(seed) ^ 1469598103934665603
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 1099511628211
	}
	return int64(h)
}
