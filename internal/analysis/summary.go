// Function summaries: the lightweight cross-function dataflow layer under
// the concurrency analyzers (parclosure, splitseed). For every function and
// method the loader type-checks, Summarize records the facts a caller-side
// analyzer needs about a callee it cannot see into:
//
//   - which pointer-like parameters (and the receiver) the function writes
//     through;
//   - which package-level variables it writes;
//   - whether it spawns goroutines, directly or through any callee;
//   - which function-typed parameters it invokes (or lets escape) inside a
//     spawned goroutine — the worker-pool-callback fact that lets parclosure
//     treat a closure passed to runSweep/runFrontier exactly like the body
//     of a `go func`;
//   - whether RNG state flows out of it: a *math/rand.Rand return, or a
//     return value derived from stats.SplitSeed.
//
// Summaries are computed bottom-up over the loader's package graph: imports
// type-check (and summarize) before their importers, so cross-package callee
// summaries are always present; within one package, Summarize iterates to a
// fixpoint so mutual recursion and declaration order do not matter. Stdlib
// functions have no summaries (no syntax is loaded for them) and are treated
// as opaque.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncSummary is the cross-function fact sheet of one declared function or
// method.
type FuncSummary struct {
	// MutatesRecv reports a write through the receiver (field assignment,
	// element store, or *recv store).
	MutatesRecv bool
	// MutatesParam[i] reports a write through parameter i.
	MutatesParam []bool
	// GlobalWrites lists the package-level variables the function assigns.
	GlobalWrites []types.Object
	// Spawns reports that the function starts goroutines, directly (a go
	// statement) or transitively (a call to a Spawns function).
	Spawns bool
	// ConcurrentParams[i] reports that function-typed parameter i is invoked
	// or referenced inside a goroutine the function spawns, or forwarded to a
	// concurrent position of another callee — i.e. a closure argument may run
	// on another goroutine.
	ConcurrentParams []bool
	// ReturnsRand reports a *math/rand.Rand (or v2) return value.
	ReturnsRand bool
	// SplitDerived reports a return value derived from stats.SplitSeed (or
	// from another SplitDerived function): callers may treat the result as a
	// goroutine-safe per-task seed.
	SplitDerived bool
}

// Summarize computes summaries for every function declared in files and
// merges them into out, which already holds the summaries of every package
// loaded earlier (the callees). It iterates to a fixpoint within the package
// so same-package call cycles converge regardless of declaration order.
func Summarize(info *types.Info, files []*ast.File, out map[types.Object]*FuncSummary) {
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// A package's call graph is finite and summaries only ever gain facts, so
	// this converges; the bound is a safety net, not a tuning knob.
	for iter := 0; iter < len(decls)+2; iter++ {
		changed := false
		for _, fd := range decls {
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			s := summarizeFunc(info, fd, out)
			if prev := out[obj]; prev == nil || !equalSummary(prev, s) {
				out[obj] = s
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// summarizeFunc computes one function's summary against the current state of
// the program-wide map.
func summarizeFunc(info *types.Info, fd *ast.FuncDecl, all map[types.Object]*FuncSummary) *FuncSummary {
	recv, params := funcBindings(info, fd)
	s := &FuncSummary{
		MutatesParam:     make([]bool, len(params)),
		ConcurrentParams: make([]bool, len(params)),
	}
	paramIndex := func(obj types.Object) int {
		for i, p := range params {
			if p == obj {
				return i
			}
		}
		return -1
	}
	noteWrite := func(obj types.Object) {
		switch {
		case obj == nil:
		case recv != nil && obj == recv:
			s.MutatesRecv = true
		case paramIndex(obj) >= 0:
			s.MutatesParam[paramIndex(obj)] = true
		case isPackageLevelVar(obj):
			for _, g := range s.GlobalWrites {
				if g == obj {
					return
				}
			}
			s.GlobalWrites = append(s.GlobalWrites, obj)
		}
	}

	derived := derivedLocals(info, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			s.Spawns = true
			// A function-typed parameter launched or captured by the spawned
			// closure runs concurrently with the caller.
			for _, p := range concurrentParamRefs(info, n, params) {
				s.ConcurrentParams[p] = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				noteWrite(writeRoot(info, lhs))
			}
		case *ast.IncDecStmt:
			noteWrite(writeRoot(info, n.X))
		case *ast.CallExpr:
			callee := CalleeFunc(info, n)
			cs := all[callee]
			if cs == nil {
				return true
			}
			if cs.Spawns {
				s.Spawns = true
			}
			// Forwarding one of our own function-typed parameters into a
			// concurrent position of the callee makes it concurrent here too.
			for i, arg := range n.Args {
				id, ok := arg.(*ast.Ident)
				if !ok {
					continue
				}
				j := paramIndex(info.Uses[id])
				if j < 0 {
					continue
				}
				if i < len(cs.ConcurrentParams) && cs.ConcurrentParams[i] {
					s.ConcurrentParams[j] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if IsRandType(info.TypeOf(res)) {
					s.ReturnsRand = true
				}
				if isDerivedExpr(info, res, derived, all, nil) {
					s.SplitDerived = true
				}
			}
		}
		return true
	})
	return s
}

// funcBindings returns the receiver object (nil for plain functions) and the
// parameter objects of a declaration, in order.
func funcBindings(info *types.Info, fd *ast.FuncDecl) (recv types.Object, params []types.Object) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = info.Defs[fd.Recv.List[0].Names[0]]
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				params = append(params, info.Defs[name])
			}
		}
	}
	return recv, params
}

// writeRoot resolves the base object an assignment writes through: the x of
// x.f = v, x[i] = v, *x = v, or chains thereof. A plain `x = v` rebinds the
// local and mutates nothing shared, so it roots only when x is package-level.
func writeRoot(info *types.Info, lhs ast.Expr) types.Object {
	indirect := false
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			indirect = true
			lhs = e.X
		case *ast.IndexExpr:
			indirect = true
			lhs = e.X
		case *ast.StarExpr:
			indirect = true
			lhs = e.X
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return nil
			}
			if !indirect && !isPackageLevelVar(obj) {
				return nil // plain rebind of a local
			}
			return obj
		default:
			return nil
		}
	}
}

// isPackageLevelVar reports whether obj is a package-scoped variable.
func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// concurrentParamRefs returns the indexes of function-typed params referenced
// anywhere under the spawned call of a go statement.
func concurrentParamRefs(info *types.Info, g *ast.GoStmt, params []types.Object) []int {
	var out []int
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
			return true
		}
		for i, p := range params {
			if p == obj {
				out = append(out, i)
			}
		}
		return true
	})
	return out
}

// equalSummary compares two summaries field by field.
func equalSummary(a, b *FuncSummary) bool {
	if a.MutatesRecv != b.MutatesRecv || a.Spawns != b.Spawns ||
		a.ReturnsRand != b.ReturnsRand || a.SplitDerived != b.SplitDerived ||
		len(a.MutatesParam) != len(b.MutatesParam) ||
		len(a.ConcurrentParams) != len(b.ConcurrentParams) ||
		len(a.GlobalWrites) != len(b.GlobalWrites) {
		return false
	}
	for i := range a.MutatesParam {
		if a.MutatesParam[i] != b.MutatesParam[i] {
			return false
		}
	}
	for i := range a.ConcurrentParams {
		if a.ConcurrentParams[i] != b.ConcurrentParams[i] {
			return false
		}
	}
	for i := range a.GlobalWrites {
		if a.GlobalWrites[i] != b.GlobalWrites[i] {
			return false
		}
	}
	return true
}

// --- shared helpers for the concurrency analyzers ---

// Region is one closure that may execute on a goroutine other than its
// enclosing function's: the literal of a `go func(){...}` (or a literal
// argument of the spawned call), or a literal passed in a concurrent
// parameter position of a goroutine-spawning callee (worker-pool callback).
type Region struct {
	Lit   *ast.FuncLit
	Spawn ast.Node // the go statement or the spawning call expression
}

// SpawnedRegions finds every such region under body. summaries supplies the
// cross-function facts for the worker-pool case and may be nil.
func SpawnedRegions(info *types.Info, summaries map[types.Object]*FuncSummary, body ast.Node) []Region {
	var out []Region
	seen := map[*ast.FuncLit]bool{}
	add := func(lit *ast.FuncLit, spawn ast.Node) {
		if lit != nil && !seen[lit] {
			seen[lit] = true
			out = append(out, Region{Lit: lit, Spawn: spawn})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				add(lit, n)
			}
			for _, arg := range n.Call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					add(lit, n)
				}
			}
		case *ast.CallExpr:
			cs := summaries[CalleeFunc(info, n)]
			if cs == nil {
				return true
			}
			for i, arg := range n.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				if i < len(cs.ConcurrentParams) && cs.ConcurrentParams[i] {
					add(lit, n)
				}
			}
		}
		return true
	})
	return out
}

// CalleeFunc resolves a call to its declared *types.Func (possibly from
// another package), or nil for closures, function values, conversions and
// built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if obj, ok := info.Uses[id].(*types.Func); ok {
		return obj
	}
	return nil
}

// IsRandType reports whether t is *math/rand.Rand (v1 or v2).
func IsRandType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

// IsSplitSeedCall reports whether call invokes a function named SplitSeed
// (the repo's stats.SplitSeed; fixtures carry their own).
func IsSplitSeedCall(info *types.Info, call *ast.CallExpr) bool {
	callee := CalleeFunc(info, call)
	return callee != nil && callee.Name() == "SplitSeed"
}

// derivedLocals walks a function body and collects the local variables whose
// values derive from SplitSeed (directly, through a SplitDerived callee, or
// through arithmetic on an already-derived value). Two passes make simple
// forward chains converge without full dataflow.
func derivedLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if isDerivedExpr(info, as.Rhs[i], derived, nil, nil) {
					derived[obj] = true
				}
			}
			return true
		})
	}
	return derived
}

// isDerivedExpr reports whether e is derived from SplitSeed: a SplitSeed
// call, a call to a SplitDerived function (per summaries), a variable in the
// derived set or the extra set, or arithmetic/conversions over such values.
func isDerivedExpr(info *types.Info, e ast.Expr, derived map[types.Object]bool, summaries map[types.Object]*FuncSummary, extra map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isDerivedExpr(info, e.X, derived, summaries, extra)
	case *ast.UnaryExpr:
		return isDerivedExpr(info, e.X, derived, summaries, extra)
	case *ast.BinaryExpr:
		return isDerivedExpr(info, e.X, derived, summaries, extra) ||
			isDerivedExpr(info, e.Y, derived, summaries, extra)
	case *ast.CallExpr:
		if IsSplitSeedCall(info, e) {
			return true
		}
		if cs := summaries[CalleeFunc(info, e)]; cs != nil && cs.SplitDerived {
			return true
		}
		// Conversions (int64(x)) and wrappers (rand.NewSource(x)): derived if
		// any argument is.
		for _, arg := range e.Args {
			if isDerivedExpr(info, arg, derived, summaries, extra) {
				return true
			}
		}
		return false
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return false
		}
		return derived[obj] || (extra != nil && extra[obj])
	default:
		return false
	}
}
