package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis"
)

// probeAnalyzer reports one diagnostic, under the given name, at every call
// to a function literally named "mark".
func probeAnalyzer(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test probe",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						pass.Reportf(call.Pos(), "%s finding", name)
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

func parseTarget(t *testing.T, src string) *analysis.Target {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &analysis.Target{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

// The fixture exercises every suppression rule: a multi-analyzer directive
// on the line above, a same-line directive covering one analyzer only, a
// directive too far above to reach, and a bare directive (no reason), which
// is itself a diagnostic. Line numbers are load-bearing.
const suppressSrc = `package p

func mark() {}

func f() {
	//socllint:ignore aaa,bbb both analyzers are intentionally quiet here
	mark()
	mark() //socllint:ignore aaa same-line directive covers aaa only

	//socllint:ignore aaa a directive two lines above the site does not reach

	mark()

	//socllint:ignore aaa
	mark()
}
`

func TestSuppression(t *testing.T) {
	target := parseTarget(t, suppressSrc)
	res, err := analysis.Run(target,
		[]*analysis.Analyzer{probeAnalyzer("aaa"), probeAnalyzer("bbb")}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, fmt.Sprintf("%d:%s", d.Position(target.Fset).Line, d.Analyzer))
	}
	want := []string{
		"8:bbb",       // same-line directive names aaa only
		"12:aaa",      // directive two lines above is out of range
		"12:bbb",      //
		"14:socllint", // bare directive: no reason, reported itself
		"15:aaa",      // the bare directive suppresses nothing
		"15:bbb",      //
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic[%d] = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}

	if n := res.Suppressed["aaa"]; n != 2 {
		t.Errorf("suppressed[aaa] = %d, want 2 (line-above multi + same-line)", n)
	}
	if n := res.Suppressed["bbb"]; n != 1 {
		t.Errorf("suppressed[bbb] = %d, want 1 (line-above multi only)", n)
	}
}
