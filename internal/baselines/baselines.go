// Package baselines implements the three comparison algorithms of the SoCL
// paper's evaluation (Section V):
//
//   - RP (Random Provisioning): deploys instances at random sites until the
//     budget is exhausted — unstructured, cost-blind, the paper's weakest
//     baseline.
//   - JDR (Joint Deployment and Routing, after Peng et al. [11]): splits
//     microservices into single-user and multi-user groups; single-user
//     services deploy next to their one user, multi-user services deploy
//     redundantly on the highest-capacity servers. Latency-driven,
//     cost-oblivious.
//   - GC-OG (Greedy Combine with Objective Gradient): starts from full
//     coverage of all demand sites and repeatedly applies the single
//     instance-removal with the best exact-objective improvement — accurate
//     but with the exhaustive per-round search whose cost the paper
//     highlights.
//
// All baselines guarantee at least one instance per used service and
// respect the storage constraint; like SoCL they are scored by the shared
// exact evaluator (model.Evaluate).
package baselines

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
)

// RP builds a random provisioning: one random feasible site per used
// service first (continuity), then random additional instances until the
// budget or storage is exhausted. All randomness derives from seed.
func RP(in *model.Instance, seed int64) model.Placement {
	r := stats.NewRand(stats.SplitSeed(seed, "baseline/rp"))
	p := model.NewPlacement(in.M(), in.V())
	cat := in.Workload.Catalog
	cost := 0.0

	fits := func(svc, k int) bool {
		return !p.Has(svc, k) &&
			in.StorageUsed(p, k)+cat.Service(svc).Storage <= in.Graph.Node(k).Storage+model.FeasTol &&
			cost+cat.Service(svc).DeployCost <= in.Budget+model.FeasTol
	}

	// Continuity pass.
	used := in.Workload.ServicesUsed()
	for _, svc := range used {
		perm := r.Perm(in.V())
		for _, k := range perm {
			if fits(svc, k) {
				p.Set(svc, k, true)
				cost += cat.Service(svc).DeployCost
				break
			}
		}
	}
	// Random fill: draw (service, node) pairs until a full sweep fails.
	type pair struct{ svc, k int }
	var all []pair
	for _, svc := range used {
		for k := 0; k < in.V(); k++ {
			all = append(all, pair{svc, k})
		}
	}
	stats.Shuffle(r, all)
	for _, pr := range all {
		if fits(pr.svc, pr.k) {
			p.Set(pr.svc, pr.k, true)
			cost += cat.Service(pr.svc).DeployCost
		}
	}
	return p
}

// JDR builds the joint-deployment-and-routing baseline placement:
// single-user services deploy at (or nearest to) their user's home; multi-
// user services deploy on the highest-capacity servers, one instance per
// demand node up to the budget.
func JDR(in *model.Instance) model.Placement {
	p := model.NewPlacement(in.M(), in.V())
	cat := in.Workload.Catalog
	cost := 0.0

	fits := func(svc, k int) bool {
		return !p.Has(svc, k) &&
			in.StorageUsed(p, k)+cat.Service(svc).Storage <= in.Graph.Node(k).Storage+model.FeasTol &&
			cost+cat.Service(svc).DeployCost <= in.Budget+model.FeasTol
	}
	place := func(svc, k int) bool {
		if fits(svc, k) {
			p.Set(svc, k, true)
			cost += cat.Service(svc).DeployCost
			return true
		}
		return false
	}
	// placeNearest tries k, then every node ordered by path cost from k.
	placeNearest := func(svc, k int) {
		if place(svc, k) {
			return
		}
		order := nodesByDistance(in, k)
		for _, q := range order {
			if place(svc, q) {
				return
			}
		}
	}

	// Capacity-descending server order for multi-user services. JDR
	// concentrates multi-user services on the high-capacity tier — the top
	// fifth of servers — which is what makes it latency-suboptimal when
	// the big machines sit far from the crowd (the paper's Fig. 9/10
	// criticism).
	capOrder := make([]int, in.V())
	for i := range capOrder {
		capOrder[i] = i
	}
	sort.Slice(capOrder, func(a, b int) bool {
		ca, cb := in.Graph.Node(capOrder[a]).Compute, in.Graph.Node(capOrder[b]).Compute
		//socllint:ignore floateq exact compare keeps the order strict-weak; an epsilon would break sort transitivity
		if ca != cb {
			return ca > cb
		}
		return capOrder[a] < capOrder[b]
	})
	tier := (in.V() + 4) / 5
	if tier < 2 {
		tier = 2
	}
	if tier > in.V() {
		tier = in.V()
	}
	capTier := capOrder[:tier]

	// Deterministic service order.
	used := append([]int(nil), in.Workload.ServicesUsed()...)
	sort.Ints(used)

	// Pass 1 — continuity: one instance per used service before any
	// redundancy, so the budget cannot be exhausted by redundant copies of
	// early services while later services go uncovered.
	for _, svc := range used {
		demand := in.Workload.NodesRequesting(svc)
		totalUsers := 0
		for _, k := range demand {
			totalUsers += in.Workload.DemandCount(k, svc)
		}
		if totalUsers <= 1 {
			placeNearest(svc, demand[0]) // single-user: next to the user
			continue
		}
		// Multi-user: first instance on the highest-capacity server that
		// fits.
		placed := false
		for _, k := range capTier {
			if place(svc, k) {
				placed = true
				break
			}
		}
		if !placed {
			placeNearest(svc, demand[0])
		}
	}

	// Pass 2 — redundancy: multi-user services add instances on high-
	// capacity servers, one per demand node (the paper's redundancy
	// criticism of JDR).
	for _, svc := range used {
		demand := in.Workload.NodesRequesting(svc)
		totalUsers := 0
		for _, k := range demand {
			totalUsers += in.Workload.DemandCount(k, svc)
		}
		if totalUsers <= 1 {
			continue
		}
		target := len(demand)
		for _, k := range capTier {
			if p.Count(svc) >= target {
				break
			}
			place(svc, k)
		}
	}
	return p
}

// GCOGResult carries the GC-OG placement plus its search effort, used by
// the runtime comparisons.
type GCOGResult struct {
	Placement model.Placement
	Rounds    int
	Evals     int // exact objective evaluations performed
}

// GCOGConfig selects the GC-OG scoring machinery, mirroring combine.Config:
// the default is the incremental delta-evaluation engine; Naive preserves
// the from-scratch rescan path for differential testing and as the reference
// semantics. Mode/Seed pick the routing model used for scoring (zero value =
// optimal routing, matching Instance.Evaluate).
type GCOGConfig struct {
	Naive bool
	Mode  model.RoutingMode
	Seed  int64 // consumed only by RouteModeRandom
}

// GCOG runs greedy combine with objective gradient under the default
// configuration (incremental scoring, optimal routing).
func GCOG(in *model.Instance) GCOGResult {
	return GCOGWithConfig(in, GCOGConfig{})
}

// gcogInitial builds the shared starting placement: a continuity pass (one
// instance per used service at — or nearest to — its first demand node),
// then storage-aware full coverage of every demand site. Shared by the naive
// and incremental search loops so they start from identical states.
func gcogInitial(in *model.Instance, used []int) model.Placement {
	cat := in.Workload.Catalog
	p := model.NewPlacement(in.M(), in.V())
	roomAt := func(svc, k int) bool {
		return in.StorageUsed(p, k)+cat.Service(svc).Storage <= in.Graph.Node(k).Storage+model.FeasTol
	}
	// Continuity pass first: one instance per service before any redundancy,
	// so storage cannot be exhausted by early services' copies while later
	// services go uncovered.
	for _, svc := range used {
		home := in.Workload.NodesRequesting(svc)[0]
		if roomAt(svc, home) {
			p.Set(svc, home, true)
			continue
		}
		for _, k := range nodesByDistance(in, home) {
			if roomAt(svc, k) {
				p.Set(svc, k, true)
				break
			}
		}
	}
	// Full coverage of remaining demand sites, storage-aware: a site that
	// would overflow is skipped, so removals never need to repair storage.
	for _, svc := range used {
		for _, k := range in.Workload.NodesRequesting(svc) {
			if !p.Has(svc, k) && roomAt(svc, k) {
				p.Set(svc, k, true)
			}
		}
	}
	return p
}

// GCOGWithConfig runs greedy combine with objective gradient: start from
// full coverage of every demand site, then repeatedly evaluate every
// possible single-instance removal with the exact evaluator and apply the
// best one, until the budget and storage constraints hold and no removal
// improves the objective.
//
// The incremental path scores each candidate removal through a
// model.DeltaEvaluator probe (Apply → Eval → Revert), re-routing only the
// requests that traversed the removed instance; the naive path re-evaluates
// the whole placement from scratch per candidate. Both count one Eval per
// candidate and are bit-identical in outcome (see TestGCOGDifferential).
func GCOGWithConfig(in *model.Instance, cfg GCOGConfig) GCOGResult {
	used := append([]int(nil), in.Workload.ServicesUsed()...)
	sort.Ints(used)
	p := gcogInitial(in, used)
	if cfg.Naive {
		return gcogNaive(in, cfg, used, p)
	}

	de := model.NewDeltaEvaluator(in, p, cfg.Mode, cfg.Seed)
	res := GCOGResult{}
	maxRounds := in.M()*in.V() + 16
	for ; res.Rounds < maxRounds; res.Rounds++ {
		cur := de.Eval()
		res.Evals++
		needReduce := cur.OverBudget

		bestObj := cur.Objective
		bestSvc, bestK := -1, -1
		forcedObj := math.Inf(1)
		forcedSvc, forcedK := -1, -1
		for _, svc := range used {
			if de.Placement().Count(svc) <= 1 {
				continue
			}
			// Placement.NodesOf allocates a fresh slice, so a random-mode
			// probe's internal Apply cannot invalidate the iteration (the
			// index's cached NodesOf would be rebuilt in place under us).
			for _, k := range de.Placement().NodesOf(svc) {
				obj, _ := de.ProbeRemoval(svc, k)
				res.Evals++
				if obj < bestObj-model.ObjTol {
					bestObj, bestSvc, bestK = obj, svc, k
				}
				if obj < forcedObj {
					forcedObj, forcedSvc, forcedK = obj, svc, k
				}
			}
		}
		switch {
		case bestSvc != -1:
			de.Apply(bestSvc, bestK, false)
		case needReduce && forcedSvc != -1:
			// No improving move but the budget still binds: take the
			// least-damaging removal.
			de.Apply(forcedSvc, forcedK, false)
		default:
			return GCOGResult{Placement: de.Placement(), Rounds: res.Rounds, Evals: res.Evals}
		}
	}
	res.Placement = de.Placement()
	return res
}

// gcogNaive is the reference search loop: identical move selection, every
// candidate scored by a from-scratch EvaluateRouted.
func gcogNaive(in *model.Instance, cfg GCOGConfig, used []int, p model.Placement) GCOGResult {
	res := GCOGResult{}
	maxRounds := in.M()*in.V() + 16
	for ; res.Rounds < maxRounds; res.Rounds++ {
		cur := in.EvaluateRouted(p, cfg.Mode, cfg.Seed)
		res.Evals++
		needReduce := cur.OverBudget

		bestObj := cur.Objective
		bestSvc, bestK := -1, -1
		forcedObj := math.Inf(1)
		forcedSvc, forcedK := -1, -1
		for _, svc := range used {
			if p.Count(svc) <= 1 {
				continue
			}
			for _, k := range p.NodesOf(svc) {
				p.Set(svc, k, false)
				ev := in.EvaluateRouted(p, cfg.Mode, cfg.Seed)
				res.Evals++
				if ev.Objective < bestObj-model.ObjTol {
					bestObj, bestSvc, bestK = ev.Objective, svc, k
				}
				if ev.Objective < forcedObj {
					forcedObj, forcedSvc, forcedK = ev.Objective, svc, k
				}
				p.Set(svc, k, true)
			}
		}
		switch {
		case bestSvc != -1:
			p.Set(bestSvc, bestK, false)
		case needReduce && forcedSvc != -1:
			// No improving move but the budget still binds: take the
			// least-damaging removal.
			p.Set(forcedSvc, forcedK, false)
		default:
			return GCOGResult{Placement: p, Rounds: res.Rounds, Evals: res.Evals}
		}
	}
	res.Placement = p
	return res
}

// nodesByDistance returns all nodes ordered by ascending path cost from k
// (excluding k itself).
func nodesByDistance(in *model.Instance, k int) []int {
	order := make([]int, 0, in.V()-1)
	for q := 0; q < in.V(); q++ {
		if q != k {
			order = append(order, q)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := in.Graph.PathCost(k, order[a]), in.Graph.PathCost(k, order[b])
		//socllint:ignore floateq exact compare keeps the order strict-weak; an epsilon would break sort transitivity
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	return order
}
