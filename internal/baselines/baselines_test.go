package baselines

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func makeInstance(nodes, users int, seed int64, budget float64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
}

func checkBaselineFeasibility(t *testing.T, in *model.Instance, p model.Placement, name string) {
	t.Helper()
	for _, svc := range in.Workload.ServicesUsed() {
		if p.Count(svc) == 0 {
			t.Fatalf("%s: service %d has no instance", name, svc)
		}
	}
	if k := in.CheckStorage(p); k != -1 {
		t.Fatalf("%s: storage violated at node %d", name, k)
	}
}

func TestRPFeasibleAndBudgetHungry(t *testing.T) {
	in := makeInstance(10, 40, 1, 8000)
	p := RP(in, 7)
	checkBaselineFeasibility(t, in, p, "RP")
	cost := in.DeployCost(p)
	if cost > in.Budget+1e-6 {
		t.Fatalf("RP cost %v over budget %v", cost, in.Budget)
	}
	// RP should consume most of the budget (it fills greedily at random).
	if cost < in.Budget*0.5 {
		t.Fatalf("RP cost %v suspiciously low for budget %v", cost, in.Budget)
	}
}

func TestRPDeterministicPerSeed(t *testing.T) {
	in := makeInstance(8, 20, 2, 7000)
	p1, p2 := RP(in, 5), RP(in, 5)
	p3 := RP(in, 6)
	same, diff := true, true
	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			if p1.Has(i, k) != p2.Has(i, k) {
				same = false
			}
			if p1.Has(i, k) != p3.Has(i, k) {
				diff = false
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different RP placements")
	}
	if diff {
		t.Fatal("different seeds produced identical RP placements")
	}
}

func TestJDRPlacesSingleUserServicesNearHome(t *testing.T) {
	in := makeInstance(10, 40, 3, 8000)
	p := JDR(in)
	checkBaselineFeasibility(t, in, p, "JDR")
	if in.DeployCost(p) > in.Budget+1e-6 {
		t.Fatal("JDR exceeded budget")
	}
	for _, svc := range in.Workload.ServicesUsed() {
		demand := in.Workload.NodesRequesting(svc)
		users := 0
		for _, k := range demand {
			users += in.Workload.DemandCount(k, svc)
		}
		if users == 1 {
			// The instance should be at the home or as near as storage
			// allowed; at minimum it exists (checked above). Verify it is
			// unique (single-user services get exactly one instance).
			if p.Count(svc) != 1 {
				t.Fatalf("single-user service %d has %d instances", svc, p.Count(svc))
			}
		}
	}
}

func TestJDRRedundantMultiUserDeployment(t *testing.T) {
	// Generous budget AND storage: JDR's capacity tier is narrow (top fifth
	// of servers), so its nodes must have room for replicas.
	gcfg := topology.DefaultGenConfig()
	gcfg.StorageMin, gcfg.StorageMax = 100, 200
	g := topology.RandomGeometric(10, 0.35, gcfg, 4)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 4)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(60), 4)
	if err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
	p := JDR(in)
	redundant := false
	for _, svc := range in.Workload.ServicesUsed() {
		if p.Count(svc) > 1 {
			redundant = true
		}
	}
	if !redundant {
		t.Fatal("JDR produced no redundancy under a generous budget")
	}
}

func TestGCOGConvergesAndFeasible(t *testing.T) {
	in := makeInstance(8, 20, 5, 7000)
	res := GCOG(in)
	checkBaselineFeasibility(t, in, res.Placement, "GC-OG")
	ev := in.Evaluate(res.Placement)
	if ev.OverBudget {
		t.Fatalf("GC-OG over budget: %v > %v", ev.Cost, in.Budget)
	}
	if res.Evals <= 0 || res.Rounds <= 0 {
		t.Fatalf("GC-OG effort counters empty: %+v", res)
	}
}

func TestGCOGBeatsRPOnObjective(t *testing.T) {
	in := makeInstance(10, 40, 6, 8000)
	evG := in.Evaluate(GCOG(in).Placement)
	evR := in.Evaluate(RP(in, 1))
	if evG.Objective > evR.Objective {
		t.Fatalf("GC-OG (%v) worse than RP (%v)", evG.Objective, evR.Objective)
	}
}

// Integration sanity for the paper's headline ordering on a mid-size
// instance: SoCL ≤ GC-OG ≤ RP on the exact objective (JDR's position varies
// with workload, so it is only checked against RP-level feasibility).
func TestObjectiveOrderingSoCLFirst(t *testing.T) {
	in := makeInstance(10, 60, 7, 8000)
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	objSoCL := sol.Evaluation.Objective
	objGC := in.Evaluate(GCOG(in).Placement).Objective
	objRP := in.Evaluate(RP(in, 3)).Objective
	if objSoCL > objRP {
		t.Fatalf("SoCL (%v) worse than RP (%v)", objSoCL, objRP)
	}
	// GC-OG is the strong baseline; allow SoCL to trail it slightly but not
	// grossly (paper: SoCL at or below GC-OG).
	if objSoCL > objGC*1.15 {
		t.Fatalf("SoCL (%v) more than 15%% worse than GC-OG (%v)", objSoCL, objGC)
	}
}

// Property: every baseline returns a feasible, storage-respecting placement
// on random instances.
func TestBaselinesFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := makeInstance(8, 20, seed, 8000)
		for _, p := range []model.Placement{RP(in, seed), JDR(in), GCOG(in).Placement} {
			for _, svc := range in.Workload.ServicesUsed() {
				if p.Count(svc) == 0 {
					return false
				}
			}
			if in.CheckStorage(p) != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
