package baselines

import (
	"testing"

	"repro/internal/model"
)

// TestGCOGDifferential proves the incremental GC-OG search is the naive one:
// identical placements bit for bit, identical round and eval counts, across
// seeds, budgets (binding and slack) and both deterministic route modes.
func TestGCOGDifferential(t *testing.T) {
	// Random mode exercises ProbeRemoval's mutate-and-revert fallback; the
	// deterministic modes exercise the memoized counterfactual path.
	modes := []model.RoutingMode{model.RouteModeOptimal, model.RouteModeGreedy, model.RouteModeRandom}
	budgets := []float64{4000, 9000}
	for _, mode := range modes {
		for seed := int64(1); seed <= 3; seed++ {
			for _, budget := range budgets {
				in := makeInstance(9, 35, seed, budget)
				cfg := GCOGConfig{Mode: mode, Seed: seed}
				inc := GCOGWithConfig(in, cfg)
				cfg.Naive = true
				nai := GCOGWithConfig(in, cfg)

				label := func(what string) string {
					return mode.String() + "/seed=" + string(rune('0'+seed)) + what
				}
				if inc.Rounds != nai.Rounds || inc.Evals != nai.Evals {
					t.Fatalf("%s: effort diverges: incremental %d rounds/%d evals, naive %d/%d",
						label(""), inc.Rounds, inc.Evals, nai.Rounds, nai.Evals)
				}
				for i := 0; i < in.M(); i++ {
					for k := 0; k < in.V(); k++ {
						if inc.Placement.Has(i, k) != nai.Placement.Has(i, k) {
							t.Fatalf("%s: placements diverge at x(%d,%d)", label(""), i, k)
						}
					}
				}
				// Same placement must mean same exact objective, but assert it
				// anyway: it is the quantity the search optimizes.
				a := in.EvaluateRouted(inc.Placement, mode, seed)
				b := in.EvaluateRouted(nai.Placement, mode, seed)
				//socllint:ignore floateq differential test demands bitwise equality, not approximation
				if a.Objective != b.Objective {
					t.Fatalf("%s: objectives diverge %v vs %v", label(""), a.Objective, b.Objective)
				}
			}
		}
	}
}

// TestGCOGDefaultIsIncremental pins the public entry point to the fast path
// while confirming it still matches the documented naive semantics.
func TestGCOGDefaultIsIncremental(t *testing.T) {
	in := makeInstance(8, 30, 4, 6000)
	def := GCOG(in)
	nai := GCOGWithConfig(in, GCOGConfig{Naive: true})
	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			if def.Placement.Has(i, k) != nai.Placement.Has(i, k) {
				t.Fatalf("default GCOG diverges from naive at x(%d,%d)", i, k)
			}
		}
	}
}
