// Package bb is the deterministic work-stealing pool behind the parallel
// branch-and-bound engines (internal/ilp, internal/opt). It replaces the
// fixed-frontier scheme — a serial breadth-first expansion to 64 subtree
// roots drained through an atomic cursor — whose static split leaves workers
// idle on skewed trees (DESIGN.md §14).
//
// Structure:
//
//   - each worker owns a deque: the owner pushes and pops at the bottom
//     (LIFO, depth-first dive order), thieves steal from the top (FIFO, the
//     shallowest and therefore largest subtrees);
//   - the steal order is fixed by worker index — worker i scans victims
//     (i+1)%W, (i+2)%W, … — so the only scheduling freedom is OS timing;
//   - seeds are dealt round-robin across deques;
//   - termination is an outstanding-item count: every seeded or pushed item
//     is processed exactly once (or abandoned on stop/error), and workers
//     exit when the count reaches zero.
//
// Sharing is adaptive: Ctx.ShouldShare reports whether any worker is
// currently starving, and the engines push a subtree to the deque only then,
// keeping everything on a private stack otherwise. With one worker nothing is
// ever idle, so ShouldShare is constantly false and the search runs the exact
// serial dive — zero pool overhead on the Workers:1 path.
//
// The pool itself makes no determinism promise about the schedule — steals
// depend on timing. The engines' results are schedule-independent by
// construction (tie-keeping prunes plus lexicographic incumbent tie-breaks;
// see internal/ilp's package comment), which is what the Workers:1 ≡
// Workers:N differential tests pin.
package bb

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats reports what the pool did; counters are informational (they depend on
// the schedule) and must not feed back into search decisions.
type Stats struct {
	Steals int64 // items taken from another worker's deque
	Pushes int64 // items shared via Ctx.Push (seeds not included)
}

// deque is one worker's double-ended work queue. A plain mutex is enough:
// the owner touches it only when its local stack is empty and thieves only
// when theirs ran dry, so contention is a property of starvation, not of the
// hot path.
type deque[T any] struct {
	mu    sync.Mutex
	items []T
}

func (d *deque[T]) pushBottom(v T) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

func (d *deque[T]) popBottom() (T, bool) {
	var zero T
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return zero, false
	}
	v := d.items[n-1]
	d.items[n-1] = zero
	d.items = d.items[:n-1]
	return v, true
}

func (d *deque[T]) stealTop() (T, bool) {
	var zero T
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[0]
	// Shift in place instead of reslicing so the backing array keeps its
	// capacity for the owner's future pushes.
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = zero
	d.items = d.items[:len(d.items)-1]
	return v, true
}

type pool[T any] struct {
	deques      []deque[T]
	process     func(*Ctx[T], T) error
	outstanding atomic.Int64 // seeded or pushed items not yet processed
	idle        atomic.Int64 // workers currently starving
	stop        func() bool
	aborted     atomic.Bool
	steals      atomic.Int64
	pushes      atomic.Int64

	errMu sync.Mutex
	err   error
}

// Ctx is a worker's handle into the pool, passed to every process call.
type Ctx[T any] struct {
	p  *pool[T]
	id int
}

// Worker is the stable worker index (0 ≤ Worker < workers); engines use it to
// select per-worker scratch state (warm solvers, search-state clones).
func (c *Ctx[T]) Worker() int { return c.id }

// ShouldShare reports whether some worker is currently starving, i.e. whether
// pushing a subtree would actually hand work to an idle thief. It is a hint:
// racing reads may over- or under-share, which affects only the schedule —
// never the search result. With one worker it is always false.
func (c *Ctx[T]) ShouldShare() bool { return c.p.idle.Load() > 0 }

// Push shares an item on the calling worker's deque, where the top is exposed
// to thieves. Call only from inside a process callback.
func (c *Ctx[T]) Push(v T) {
	c.p.outstanding.Add(1)
	c.p.pushes.Add(1)
	c.p.deques[c.id].pushBottom(v)
}

// Run distributes seeds round-robin over per-worker deques and processes
// items until every deque is empty and no item is in flight, stop() reports
// true, or a process call returns an error (first error wins; the pool aborts
// and Run returns it). process runs concurrently on up to workers goroutines;
// it may Push further items via the Ctx.
func Run[T any](workers int, seeds []T, stop func() bool, process func(*Ctx[T], T) error) (Stats, error) {
	if workers < 1 {
		workers = 1
	}
	p := &pool[T]{deques: make([]deque[T], workers), process: process, stop: stop}
	for i, s := range seeds {
		p.outstanding.Add(1)
		p.deques[i%workers].pushBottom(s)
	}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p.work(&Ctx[T]{p: p, id: id})
		}(wi)
	}
	wg.Wait()
	p.errMu.Lock()
	err := p.err
	p.errMu.Unlock()
	return Stats{Steals: p.steals.Load(), Pushes: p.pushes.Load()}, err
}

// work is one worker's loop: drain the own deque bottom-first, steal top-first
// from victims in the fixed (id+1)%W scan order, spin idle while items are in
// flight elsewhere, exit when everything is done or the search stopped.
func (p *pool[T]) work(c *Ctx[T]) {
	w := len(p.deques)
	idle := false
	defer func() {
		if idle {
			p.idle.Add(-1)
		}
	}()
	for {
		if p.aborted.Load() || (p.stop != nil && p.stop()) {
			return
		}
		v, ok := p.deques[c.id].popBottom()
		if !ok {
			for k := 1; k < w && !ok; k++ {
				v, ok = p.deques[(c.id+k)%w].stealTop()
				if ok {
					p.steals.Add(1)
				}
			}
		}
		if !ok {
			if p.outstanding.Load() == 0 {
				return
			}
			if !idle {
				idle = true
				p.idle.Add(1)
			}
			runtime.Gosched()
			continue
		}
		if idle {
			idle = false
			p.idle.Add(-1)
		}
		err := p.process(c, v)
		p.outstanding.Add(-1)
		if err != nil {
			p.errMu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.errMu.Unlock()
			p.aborted.Store(true)
			return
		}
	}
}
