package bb

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Every seeded and pushed item must be processed exactly once.
func TestRunProcessesEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		const seeds = 23
		var mu sync.Mutex
		seen := map[int]int{}
		in := make([]int, seeds)
		for i := range in {
			in[i] = i
		}
		_, err := Run(workers, in, nil, func(c *Ctx[int], v int) error {
			mu.Lock()
			seen[v]++
			mu.Unlock()
			// Fan out two generations of children so pushes are exercised even
			// without starvation (Push is valid regardless of ShouldShare).
			if v < seeds {
				c.Push(v + 1000)
				c.Push(v + 2000)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 3*seeds {
			t.Fatalf("workers=%d: processed %d distinct items, want %d", workers, len(seen), 3*seeds)
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: item %d processed %d times", workers, v, n)
			}
		}
	}
}

// With an unbalanced layout, thieves must actually steal. The single seed
// lands on worker 0, which pushes children and then blocks inside process
// until they are all gone — worker 0 cannot pop its own deque while blocked,
// so every child must be stolen by one of the three starving workers.
func TestRunStealsUnderImbalance(t *testing.T) {
	const children = 16
	var done atomic.Int64
	stats, err := Run(4, []int{-1}, nil, func(c *Ctx[int], v int) error {
		if v == -1 {
			for i := 0; i < children; i++ {
				c.Push(i)
			}
			for done.Load() < children {
				runtime.Gosched()
			}
			return nil
		}
		done.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushes != children {
		t.Fatalf("pushes = %d, want %d", stats.Pushes, children)
	}
	// The seed itself may also be stolen before its owner pops it, so the
	// count can exceed the children by one.
	if stats.Steals < children {
		t.Fatalf("steals = %d, want >= %d (all children must be stolen)", stats.Steals, children)
	}
}

// The first process error aborts the pool and is returned.
func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	seeds := make([]int, 50)
	for i := range seeds {
		seeds[i] = i
	}
	var calls atomic.Int64
	_, err := Run(4, seeds, nil, func(c *Ctx[int], v int) error {
		calls.Add(1)
		if v == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls.Load() > 50 {
		t.Fatalf("pool kept running after the error: %d calls", calls.Load())
	}
}

// stop() abandons remaining work without error.
func TestRunHonorsStop(t *testing.T) {
	var stopped atomic.Bool
	var calls atomic.Int64
	seeds := make([]int, 100)
	_, err := Run(2, seeds, stopped.Load, func(c *Ctx[int], v int) error {
		if calls.Add(1) >= 5 {
			stopped.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 100 {
		t.Fatal("stop() was never honored")
	}
}

// With a single worker ShouldShare must be constantly false — the Workers:1
// path must behave exactly like a serial dive with a private stack.
func TestShouldShareFalseWithOneWorker(t *testing.T) {
	shared := false
	seeds := []int{0}
	_, err := Run(1, seeds, nil, func(c *Ctx[int], v int) error {
		if c.ShouldShare() {
			shared = true
		}
		if v < 64 {
			c.Push(2*v + 1)
			c.Push(2*v + 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared {
		t.Fatal("ShouldShare reported an idle worker in a single-worker pool")
	}
}

// Worker indices are stable and within range; per-worker state selection
// depends on it.
func TestWorkerIndexInRange(t *testing.T) {
	const workers = 3
	seeds := make([]int, 60)
	var bad atomic.Bool
	_, err := Run(workers, seeds, nil, func(c *Ctx[int], v int) error {
		if c.Worker() < 0 || c.Worker() >= workers {
			bad.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Fatal("worker index out of range")
	}
}
