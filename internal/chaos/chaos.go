// Package chaos is the deterministic fault-injection layer: seeded,
// reproducible fault schedules (node crashes, link bandwidth degradation,
// storage shrinkage, with correlated and flapping variants) applied as a
// *masked view* over the substrate. The base topology.Graph and
// model.Instance are never mutated — a Mask accumulates the active faults
// and derives a masked graph/instance on demand, so the pristine substrate
// survives any fault sequence bit for bit: once every fault has healed, the
// mask hands back the original graph pointer and evaluation results are
// bitwise identical to the pre-fault baseline.
//
// Staleness is epoch-based, mirroring model.PlacementIndex: every effective
// fault application bumps Mask.Epoch(), and artifacts derived from the mask
// (masked graphs, repair outcomes, DeltaEvaluator bindings in
// internal/repair) record the epoch they were built at. A consumer holding
// an artifact stamped with epoch e is coherent with the mask iff Epoch()
// still equals e.
//
// Determinism contract: chaos is under the same rules as model/topology
// (enforced by the detrand analyzer) — no wall clock, no global math/rand,
// and no map iteration. Link state lives in a slice sorted by endpoint pair,
// not in the topology's link map, so derived graphs are built in a fixed
// order and schedules are pure functions of (graph, config, seed).
package chaos

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/topology"
)

// FaultKind enumerates the substrate faults the injector models.
type FaultKind int

// Fault kinds. Each *Crash/Degrade/Shrink kind has a matching healing kind;
// schedules always emit them in pairs so any fault eventually clears.
const (
	// NodeCrash takes an edge server down: its links vanish from the masked
	// graph (the node becomes unreachable) and every instance deployed on it
	// is lost until repair re-provisions elsewhere.
	NodeCrash FaultKind = iota
	// NodeRecover brings a crashed server back with its original capacity.
	NodeRecover
	// LinkDegrade multiplies one link's effective Shannon rate by Factor
	// (0 < Factor < 1): transfers crossing it slow down proportionally.
	LinkDegrade
	// LinkRestore returns a degraded link to its nominal rate.
	LinkRestore
	// StorageShrink multiplies a node's storage capacity Φ(v_k) by Factor,
	// modelling disk pressure; placements may become Eq. 6-infeasible and
	// need eviction.
	StorageShrink
	// StorageRestore returns a shrunk node to its nominal capacity.
	StorageRestore
)

func (k FaultKind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case NodeRecover:
		return "node-recover"
	case LinkDegrade:
		return "link-degrade"
	case LinkRestore:
		return "link-restore"
	case StorageShrink:
		return "storage-shrink"
	case StorageRestore:
		return "storage-restore"
	default:
		return "?"
	}
}

// Event is one scheduled fault (or healing) occurrence.
type Event struct {
	Slot int
	Kind FaultKind
	// Node is the target server for node and storage events.
	Node int
	// A, B (A < B) are the endpoints for link events.
	A, B int
	// Factor is the capacity multiplier for LinkDegrade/StorageShrink,
	// clamped into (0, 1]. Ignored by the other kinds.
	Factor float64
}

func (e Event) String() string {
	switch e.Kind {
	case LinkDegrade, LinkRestore:
		return fmt.Sprintf("slot %d: %s (%d,%d) factor %.3g", e.Slot, e.Kind, e.A, e.B, e.Factor)
	case StorageShrink, StorageRestore:
		return fmt.Sprintf("slot %d: %s node %d factor %.3g", e.Slot, e.Kind, e.Node, e.Factor)
	default:
		return fmt.Sprintf("slot %d: %s node %d", e.Slot, e.Kind, e.Node)
	}
}

// Inst identifies one deployed instance (service i on node k).
type Inst struct{ Svc, Node int }

// minFactor floors degradation factors so masked link rates stay positive
// (topology.AddLink rejects non-positive rates) and storage stays a number.
const minFactor = 1e-9

func clampFactor(f float64) float64 {
	if f < minFactor {
		return minFactor
	}
	if f > 1 {
		return 1
	}
	return f
}

// Mask is the accumulated fault state over one base substrate. It never
// mutates the base graph: MaskedGraph derives (and caches, keyed by epoch) a
// finalized masked topology, and Instance wraps a model.Instance with the
// masked graph swapped in. The zero value is unusable; construct with
// NewMask. Not safe for concurrent mutation; the derived graph may be read
// concurrently once built.
type Mask struct {
	base *topology.Graph
	// links is the base link set sorted by (A, B) — the one canonical order
	// every derived graph is built in. linkScale is parallel to links.
	links     []topology.Link
	linkScale []float64
	down      []bool
	storScale []float64

	downCount, degradedCount, shrunkCount int

	epoch        uint64
	derived      *topology.Graph
	derivedEpoch uint64
}

// NewMask returns a pristine mask over base.
func NewMask(base *topology.Graph) *Mask {
	links := base.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	m := &Mask{
		base:      base,
		links:     links,
		linkScale: make([]float64, len(links)),
		down:      make([]bool, base.N()),
		storScale: make([]float64, base.N()),
	}
	for i := range m.linkScale {
		m.linkScale[i] = 1
	}
	for k := range m.storScale {
		m.storScale[k] = 1
	}
	return m
}

// Base returns the pristine substrate the mask wraps.
func (m *Mask) Base() *topology.Graph { return m.base }

// Links returns the base link set in the mask's canonical (A, B)-ascending
// order — the order derived graphs are rebuilt in. Callers must not mutate
// the returned slice.
func (m *Mask) Links() []topology.Link { return m.links }

// Epoch returns the mask's mutation counter: it increases monotonically on
// every effective Apply (no-ops — e.g. crashing an already-down node — do
// not count) and never otherwise. Consumers stamp derived artifacts with the
// epoch and treat any drift as staleness.
func (m *Mask) Epoch() uint64 { return m.epoch }

// Pristine reports whether no fault is currently active. A pristine mask's
// Graph() is the base graph itself (pointer-identical), which is what makes
// crash-then-recover round trips bitwise exact.
func (m *Mask) Pristine() bool {
	return m.downCount == 0 && m.degradedCount == 0 && m.shrunkCount == 0
}

// NodeUp reports whether node k is currently serving.
func (m *Mask) NodeUp(k int) bool { return !m.down[k] }

// DownNodes returns the currently-crashed nodes, ascending.
func (m *Mask) DownNodes() []int {
	var out []int
	for k, d := range m.down {
		if d {
			out = append(out, k)
		}
	}
	return out
}

// UpCount returns the number of currently-serving nodes.
func (m *Mask) UpCount() int { return m.base.N() - m.downCount }

// linkIndex locates the link (a,b) in the sorted slice, or -1.
func (m *Mask) linkIndex(a, b int) int {
	if a > b {
		a, b = b, a
	}
	i := sort.Search(len(m.links), func(i int) bool {
		if m.links[i].A != a {
			return m.links[i].A > a
		}
		return m.links[i].B >= b
	})
	if i < len(m.links) && m.links[i].A == a && m.links[i].B == b {
		return i
	}
	return -1
}

// Apply folds one fault event into the mask. Events that do not change the
// state (crashing a down node, restoring a nominal link) are no-ops that
// leave the epoch untouched. Unknown link endpoints or out-of-range nodes
// return an error rather than panicking, so replaying a schedule against a
// mismatched graph fails loudly.
func (m *Mask) Apply(ev Event) error {
	switch ev.Kind {
	case NodeCrash, NodeRecover, StorageShrink, StorageRestore:
		if ev.Node < 0 || ev.Node >= len(m.down) {
			return fmt.Errorf("chaos: event %v targets node outside [0,%d)", ev, len(m.down))
		}
	}
	switch ev.Kind {
	case NodeCrash:
		if m.down[ev.Node] {
			return nil
		}
		m.down[ev.Node] = true
		m.downCount++
	case NodeRecover:
		if !m.down[ev.Node] {
			return nil
		}
		m.down[ev.Node] = false
		m.downCount--
	case LinkDegrade, LinkRestore:
		i := m.linkIndex(ev.A, ev.B)
		if i < 0 {
			return fmt.Errorf("chaos: event %v targets a link the base graph does not have", ev)
		}
		newScale := 1.0
		if ev.Kind == LinkDegrade {
			newScale = clampFactor(ev.Factor)
		}
		delta, changed := updateScale(&m.linkScale[i], newScale)
		if !changed {
			return nil
		}
		m.degradedCount += delta
	case StorageShrink, StorageRestore:
		newScale := 1.0
		if ev.Kind == StorageShrink {
			newScale = clampFactor(ev.Factor)
		}
		delta, changed := updateScale(&m.storScale[ev.Node], newScale)
		if !changed {
			return nil
		}
		m.shrunkCount += delta
	default:
		return fmt.Errorf("chaos: unknown fault kind %d", ev.Kind)
	}
	m.epoch++
	return nil
}

// updateScale writes next into *cur, reporting whether anything changed and
// the resulting delta to the active-fault count (+1 nominal→scaled, -1
// scaled→nominal, 0 for scaled→differently-scaled). Scales are assigned
// literals or clamped schedule factors, never computed, so the exact float
// compares are deliberate no-op detection.
func updateScale(cur *float64, next float64) (delta int, changed bool) {
	//socllint:ignore floateq scales are assigned literals/clamped factors, never computed; exact no-op detection is intended
	if *cur == next {
		return 0, false
	}
	//socllint:ignore floateq see above: 1 is the literal nominal scale
	was, now := *cur != 1, next != 1
	*cur = next
	switch {
	case now && !was:
		delta = 1
	case was && !now:
		delta = -1
	}
	return delta, true
}

// Graph returns the masked substrate: crashed nodes keep their ID (the
// placement and request coordinate systems stay dense) but lose every link,
// degraded links carry Rate·Factor, and shrunk nodes carry Storage·Factor.
// A pristine mask returns the base graph itself; otherwise the derived graph
// is rebuilt at most once per epoch and cached.
func (m *Mask) Graph() *topology.Graph {
	if m.Pristine() {
		return m.base
	}
	if m.derived != nil && m.derivedEpoch == m.epoch {
		return m.derived
	}
	g := topology.New(m.base.N())
	for k := 0; k < m.base.N(); k++ {
		n := m.base.Node(k)
		g.AddNode(n.X, n.Y, n.Compute, n.Storage*m.storScale[k])
	}
	for i, l := range m.links {
		if m.down[l.A] || m.down[l.B] {
			continue
		}
		// Rate·1.0 is exact, so un-degraded links keep their bitwise rate.
		if err := g.AddLink(l.A, l.B, l.Rate*m.linkScale[i]); err != nil {
			panic("chaos: rebuilding masked graph: " + err.Error()) // unreachable: endpoints and rates come from the base graph
		}
	}
	g.Finalize()
	m.derived = g
	m.derivedEpoch = m.epoch
	return g
}

// Instance returns in with the masked graph swapped in (workload, λ, budget
// and cloud config are shared, not copied). The caller's instance must be
// built on the mask's base graph.
func (m *Mask) Instance(in *model.Instance) *model.Instance {
	if in.Graph != m.base {
		panic("chaos: Mask.Instance called with an instance built on a different graph")
	}
	cp := *in
	cp.Graph = m.Graph()
	return &cp
}

// MaskPlacement returns a copy of p with every instance hosted on a crashed
// node cleared, plus the cleared instances in ascending (svc, node) order —
// the "lost instances" input to damage classification.
func (m *Mask) MaskPlacement(p model.Placement) (model.Placement, []Inst) {
	q := p.Clone()
	var lost []Inst
	for i := range q.X {
		for k, on := range q.X[i] {
			if on && m.down[k] {
				q.Set(i, k, false)
				lost = append(lost, Inst{Svc: i, Node: k})
			}
		}
	}
	return q, lost
}

// StorageCapacity returns node k's masked storage capacity.
func (m *Mask) StorageCapacity(k int) float64 {
	return m.base.Node(k).Storage * m.storScale[k]
}
