package chaos

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func testInstance(t *testing.T, nodes, users int, seed int64) *model.Instance {
	t.Helper()
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}

func TestScheduleDeterministic(t *testing.T) {
	g := topology.RandomGeometric(10, 0.4, topology.DefaultGenConfig(), 7)
	for _, cfg := range []ScheduleConfig{DefaultScheduleConfig(), CorrelatedScheduleConfig(), FlappingScheduleConfig()} {
		a := Generate(g, 40, cfg, 42)
		b := Generate(g, 40, cfg, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same seed produced different schedules")
		}
		if len(a.Events) == 0 {
			t.Fatalf("no fault events over 40 slots at default rates")
		}
		c := Generate(g, 40, cfg, 43)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("different seeds produced identical schedules (len %d)", len(a.Events))
		}
	}
}

// TestScheduleReplayConsistency replays a generated schedule through a mask
// and checks the pairing discipline: crashes target up nodes, recoveries
// target down nodes, and every event applies cleanly.
func TestScheduleReplayConsistency(t *testing.T) {
	g := topology.RandomGeometric(12, 0.4, topology.DefaultGenConfig(), 3)
	sched := Generate(g, 60, CorrelatedScheduleConfig(), 11)
	m := NewMask(g)
	for _, ev := range sched.Events {
		switch ev.Kind {
		case NodeCrash:
			if !m.NodeUp(ev.Node) {
				t.Fatalf("%v: crash of an already-down node", ev)
			}
		case NodeRecover:
			if m.NodeUp(ev.Node) {
				t.Fatalf("%v: recovery of an up node", ev)
			}
		}
		epoch := m.Epoch()
		if err := m.Apply(ev); err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if m.Epoch() == epoch {
			t.Fatalf("%v: effective event did not bump the epoch", ev)
		}
		if m.UpCount() < 1 {
			t.Fatalf("%v: schedule took every node down", ev)
		}
	}
}

func TestScheduleAt(t *testing.T) {
	g := topology.RandomGeometric(8, 0.4, topology.DefaultGenConfig(), 5)
	sched := Generate(g, 30, FlappingScheduleConfig(), 9)
	total := 0
	for slot := 0; slot < sched.NumSlots; slot++ {
		for _, ev := range sched.At(slot) {
			if ev.Slot != slot {
				t.Fatalf("At(%d) returned %v", slot, ev)
			}
			total++
		}
	}
	if total != len(sched.Events) {
		t.Fatalf("At slices cover %d of %d events", total, len(sched.Events))
	}
}

func TestMaskNoopAndEpoch(t *testing.T) {
	g := topology.RandomGeometric(6, 0.5, topology.DefaultGenConfig(), 1)
	m := NewMask(g)
	if !m.Pristine() || m.Epoch() != 0 {
		t.Fatalf("fresh mask not pristine at epoch 0")
	}
	if err := m.Apply(Event{Kind: NodeCrash, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 || m.Pristine() || m.NodeUp(2) {
		t.Fatalf("crash not reflected: epoch %d pristine %v up %v", m.Epoch(), m.Pristine(), m.NodeUp(2))
	}
	// Re-crashing is a no-op: no epoch bump.
	if err := m.Apply(Event{Kind: NodeCrash, Node: 2}); err != nil || m.Epoch() != 1 {
		t.Fatalf("no-op crash bumped epoch to %d (err %v)", m.Epoch(), err)
	}
	if got := m.DownNodes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DownNodes = %v", got)
	}
	if err := m.Apply(Event{Kind: NodeRecover, Node: 2}); err != nil || !m.Pristine() {
		t.Fatalf("recovery did not restore pristine state (err %v)", err)
	}
	// Unknown link: loud error.
	if err := m.Apply(Event{Kind: LinkDegrade, A: 0, B: 0, Factor: 0.5}); err == nil {
		t.Fatal("degrading a non-existent link did not error")
	}
	if err := m.Apply(Event{Kind: NodeCrash, Node: 99}); err == nil {
		t.Fatal("crashing an out-of-range node did not error")
	}
}

func TestMaskedGraphProperties(t *testing.T) {
	g := topology.RandomGeometric(9, 0.45, topology.DefaultGenConfig(), 17)
	m := NewMask(g)
	links := g.Links()
	l := links[0]
	for _, x := range links { // pick the smallest (A,B) link for stability
		if x.A < l.A || (x.A == l.A && x.B < l.B) {
			l = x
		}
	}

	if err := m.Apply(Event{Kind: NodeCrash, Node: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Event{Kind: StorageShrink, Node: 1, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	mg := m.Graph()
	if mg == g {
		t.Fatal("masked graph aliases the base despite active faults")
	}
	for q := 0; q < g.N(); q++ {
		if q == 4 {
			continue
		}
		if !math.IsInf(mg.PathCost(4, q), 1) {
			t.Fatalf("crashed node 4 still reaches %d (cost %v)", q, mg.PathCost(4, q))
		}
	}
	if want := g.Node(1).Storage * 0.5; mg.Node(1).Storage != want {
		t.Fatalf("shrunk storage %v != %v", mg.Node(1).Storage, want)
	}
	if mg.Node(2).Storage != g.Node(2).Storage {
		t.Fatalf("unshrunk node 2 storage changed")
	}

	// Degrade one link not incident to the crashed node, if needed pick another.
	if l.A == 4 || l.B == 4 {
		for _, x := range links {
			if x.A != 4 && x.B != 4 {
				l = x
				break
			}
		}
	}
	if err := m.Apply(Event{Kind: LinkDegrade, A: l.A, B: l.B, Factor: 0.25}); err != nil {
		t.Fatal(err)
	}
	mg = m.Graph()
	rate, ok := mg.LinkRate(l.A, l.B)
	if !ok || rate != l.Rate*0.25 {
		t.Fatalf("degraded link rate %v (ok %v), want %v", rate, ok, l.Rate*0.25)
	}
	// The same epoch returns the cached derived graph.
	if m.Graph() != mg {
		t.Fatal("derived graph not cached per epoch")
	}
}

// TestMaskRoundTrip is the crash-then-recover bitwise guarantee: after every
// fault heals, the mask hands back the base graph itself and evaluation is
// bit-identical to the pre-fault baseline.
func TestMaskRoundTrip(t *testing.T) {
	in := testInstance(t, 8, 25, 21)
	p := baselines.JDR(in)
	ev0 := in.EvaluateRouted(p, model.RouteModeOptimal, 0)

	m := NewMask(in.Graph)
	l := NewMask(in.Graph).links[0]
	faults := []Event{
		{Kind: NodeCrash, Node: 3},
		{Kind: LinkDegrade, A: l.A, B: l.B, Factor: 0.2},
		{Kind: StorageShrink, Node: 0, Factor: 0.3},
	}
	heals := []Event{
		{Kind: NodeRecover, Node: 3},
		{Kind: LinkRestore, A: l.A, B: l.B},
		{Kind: StorageRestore, Node: 0},
	}
	for _, ev := range faults {
		if err := m.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if m.Pristine() || m.Graph() == in.Graph {
		t.Fatal("faults did not detach the masked view")
	}
	masked, lost := m.MaskPlacement(p)
	for _, li := range lost {
		if li.Node != 3 {
			t.Fatalf("lost instance %v not on the crashed node", li)
		}
		if masked.Has(li.Svc, li.Node) {
			t.Fatalf("lost instance %v still present in masked placement", li)
		}
	}
	if p.Instances() != masked.Instances()+len(lost) {
		t.Fatalf("masking dropped %d of %d instances but reported %d lost",
			p.Instances()-masked.Instances(), p.Instances(), len(lost))
	}

	for _, ev := range heals {
		if err := m.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Pristine() {
		t.Fatal("healing every fault did not restore pristine state")
	}
	if m.Graph() != in.Graph {
		t.Fatal("pristine mask does not alias the base graph")
	}
	ev1 := m.Instance(in).EvaluateRouted(p, model.RouteModeOptimal, 0)
	if math.Float64bits(ev1.Objective) != math.Float64bits(ev0.Objective) ||
		math.Float64bits(ev1.LatencySum) != math.Float64bits(ev0.LatencySum) ||
		math.Float64bits(ev1.Cost) != math.Float64bits(ev0.Cost) {
		t.Fatalf("post-recovery evaluation diverges: obj %v vs %v, lat %v vs %v, cost %v vs %v",
			ev1.Objective, ev0.Objective, ev1.LatencySum, ev0.LatencySum, ev1.Cost, ev0.Cost)
	}
	for h := range ev0.Latencies {
		if math.Float64bits(ev1.Latencies[h]) != math.Float64bits(ev0.Latencies[h]) {
			t.Fatalf("request %d latency %v != baseline %v", h, ev1.Latencies[h], ev0.Latencies[h])
		}
	}
}

// TestMaskedEvaluationClassesSplit pins the missing-vs-unroutable split on a
// masked substrate: crashing a node that hosts the only instance of a
// service yields MissingInstances, while crashing a *user's* node (leaving
// instances intact elsewhere) yields Unroutable for its requests.
func TestMaskedEvaluationClassesSplit(t *testing.T) {
	in := testInstance(t, 8, 25, 21)
	p := baselines.JDR(in)

	// Crash a node hosting some service's only instance, if one exists.
	m := NewMask(in.Graph)
	var target = -1
	for i := range p.X {
		if nodes := p.NodesOf(i); len(nodes) == 1 {
			target = nodes[0]
			break
		}
	}
	if target >= 0 {
		if err := m.Apply(Event{Kind: NodeCrash, Node: target}); err != nil {
			t.Fatal(err)
		}
		masked, _ := m.MaskPlacement(p)
		ev := m.Instance(in).EvaluateRouted(masked, model.RouteModeOptimal, 0)
		if ev.MissingInstances == 0 {
			t.Fatalf("crashing sole-instance node %d produced no MissingInstances", target)
		}
		if ev.Unserved() != ev.MissingInstances+ev.Unroutable {
			t.Fatalf("Unserved %d != Missing %d + Unroutable %d", ev.Unserved(), ev.MissingInstances, ev.Unroutable)
		}
	}

	// Crash a pure user node: pick one hosting nothing but homing requests.
	m2 := NewMask(in.Graph)
	hosts := make([]bool, in.V())
	for i := range p.X {
		for _, k := range p.NodesOf(i) {
			hosts[k] = true
		}
	}
	for _, req := range in.Workload.Requests {
		if !hosts[req.Home] {
			if err := m2.Apply(Event{Kind: NodeCrash, Node: req.Home}); err != nil {
				t.Fatal(err)
			}
			masked, lost := m2.MaskPlacement(p)
			if len(lost) != 0 {
				t.Fatalf("crashing non-hosting node %d lost instances %v", req.Home, lost)
			}
			ev := m2.Instance(in).EvaluateRouted(masked, model.RouteModeOptimal, 0)
			if ev.Unroutable == 0 {
				t.Fatalf("crashing user node %d produced no Unroutable requests", req.Home)
			}
			if ev.MissingInstances != 0 {
				t.Fatalf("crashing non-hosting node %d produced MissingInstances %d", req.Home, ev.MissingInstances)
			}
			break
		}
	}
}
