package chaos

// Transport-level chaos: a Link sits between a frame producer and the wire
// and injects seeded drops, duplicates, and bounded reordering delays. It is
// the network-layer sibling of the substrate Mask — faults happen to frames
// in flight instead of to nodes and links — and obeys the same determinism
// contract: no wall clock, no global randomness, no map iteration.
//
// Every per-frame decision is a pure function of (seed, frame bytes), drawn
// by hashing the frame content and mixing with the seed. The transport
// encodes the retransmission attempt number into each frame, so a
// retransmitted frame hashes differently from its first attempt and redraws
// its fate — exactly one independent coin per wire appearance, which is what
// makes retransmission effective against a deterministic adversary.

// LinkConfig tunes the injected impairments. All probabilities are in
// [0, 1]; zero values inject nothing.
type LinkConfig struct {
	// Seed scopes the per-frame decision stream (mix it from the run seed
	// with stats.SplitSeed).
	Seed int64
	// Drop is the probability a frame silently vanishes.
	Drop float64
	// Dup is the probability a frame is delivered twice back to back.
	Dup float64
	// Delay is the probability a frame is held back and re-inserted later —
	// after between 1 and DelayMax subsequent frames — reordering the
	// stream.
	Delay float64
	// DelayMax bounds the reordering distance in frames (default 3 when
	// Delay > 0).
	DelayMax int
}

func (c LinkConfig) delayMax() int {
	if c.DelayMax <= 0 {
		return 3
	}
	return c.DelayMax
}

// LinkStats counts the impairments a Link actually injected.
type LinkStats struct {
	Sent       int // frames handed to Send
	Delivered  int // frames that reached the output (duplicates included)
	Dropped    int
	Duplicated int
	Delayed    int
}

type heldFrame struct {
	frame []byte
	due   int // deliver once this many frames have passed through
}

// Link applies LinkConfig impairments to a frame stream. Not goroutine-safe;
// wrap sends in the caller's serialization.
type Link struct {
	cfg   LinkConfig
	out   func([]byte) error
	pos   int
	held  []heldFrame
	stats LinkStats
}

// NewLink builds a link that delivers surviving frames to out.
func NewLink(cfg LinkConfig, out func([]byte) error) *Link {
	return &Link{cfg: cfg, out: out}
}

// Stats snapshots the impairment counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Send passes one frame through the impaired link. The frame is copied if it
// must be held, so the caller may reuse the buffer.
func (l *Link) Send(frame []byte) error {
	l.pos++
	l.stats.Sent++
	if err := l.deliverDue(); err != nil {
		return err
	}
	h := mix64(uint64(l.cfg.Seed), hashBytes(frame))
	dropDraw, h := nextU01(h)
	if dropDraw < l.cfg.Drop {
		l.stats.Dropped++
		return nil
	}
	dupDraw, h := nextU01(h)
	delayDraw, h := nextU01(h)
	if delayDraw < l.cfg.Delay {
		span, _ := nextDraw(h)
		due := l.pos + 1 + int(span%uint64(l.cfg.delayMax()))
		l.held = append(l.held, heldFrame{frame: append([]byte(nil), frame...), due: due})
		l.stats.Delayed++
		return nil
	}
	if err := l.deliver(frame); err != nil {
		return err
	}
	if dupDraw < l.cfg.Dup {
		l.stats.Duplicated++
		return l.deliver(frame)
	}
	return nil
}

// Flush delivers every held frame in hold order. Call at end of stream so
// delayed frames are not lost.
func (l *Link) Flush() error {
	for _, hf := range l.held {
		if err := l.deliver(hf.frame); err != nil {
			return err
		}
	}
	l.held = l.held[:0]
	return nil
}

func (l *Link) deliverDue() error {
	if len(l.held) == 0 {
		return nil
	}
	keep := l.held[:0]
	for _, hf := range l.held {
		if hf.due <= l.pos {
			if err := l.deliver(hf.frame); err != nil {
				return err
			}
			continue
		}
		keep = append(keep, hf)
	}
	l.held = keep
	return nil
}

func (l *Link) deliver(frame []byte) error {
	l.stats.Delivered++
	return l.out(frame)
}

// hashBytes is FNV-1a over the frame content.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer over seed ⊕ content hash; nextDraw walks
// the splitmix sequence for further independent draws.
func mix64(seed, h uint64) uint64 {
	z := seed ^ h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func nextDraw(state uint64) (draw, next uint64) {
	next = state + 0x9e3779b97f4a7c15
	return mix64(0, next), next
}

// nextU01 draws a uniform float in [0,1) and advances the state.
func nextU01(state uint64) (float64, uint64) {
	d, next := nextDraw(state)
	return float64(d>>11) / (1 << 53), next
}
