package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

func playLink(cfg LinkConfig, frames [][]byte) ([][]byte, LinkStats) {
	var out [][]byte
	l := NewLink(cfg, func(b []byte) error {
		out = append(out, append([]byte(nil), b...))
		return nil
	})
	for _, f := range frames {
		if err := l.Send(f); err != nil {
			panic(err)
		}
	}
	if err := l.Flush(); err != nil {
		panic(err)
	}
	return out, l.Stats()
}

func testFrames(n int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = []byte(fmt.Sprintf("frame-%03d attempt=0", i))
	}
	return frames
}

func TestLinkDeterministic(t *testing.T) {
	cfg := LinkConfig{Seed: 11, Drop: 0.2, Dup: 0.15, Delay: 0.25}
	frames := testFrames(200)
	outA, stA := playLink(cfg, frames)
	outB, stB := playLink(cfg, frames)
	if stA != stB {
		t.Fatalf("stats diverge: %+v vs %+v", stA, stB)
	}
	if len(outA) != len(outB) {
		t.Fatalf("delivery counts diverge: %d vs %d", len(outA), len(outB))
	}
	for i := range outA {
		if !bytes.Equal(outA[i], outB[i]) {
			t.Fatalf("delivery %d diverges: %q vs %q", i, outA[i], outB[i])
		}
	}
	if stA.Dropped == 0 || stA.Duplicated == 0 || stA.Delayed == 0 {
		t.Fatalf("chaos inactive at these rates: %+v", stA)
	}
}

func TestLinkAccounting(t *testing.T) {
	_, st := playLink(LinkConfig{Seed: 3, Drop: 0.3, Dup: 0.2, Delay: 0.3}, testFrames(300))
	if st.Sent != 300 {
		t.Fatalf("sent = %d, want 300", st.Sent)
	}
	// Every copy that enters the link (original or duplicate) is either
	// delivered or dropped; Flush leaves nothing held.
	if st.Delivered+st.Dropped != st.Sent+st.Duplicated {
		t.Fatalf("accounting broken: delivered %d + dropped %d != sent %d + dup %d",
			st.Delivered, st.Dropped, st.Sent, st.Duplicated)
	}
}

// TestLinkContentKeyed pins the retransmission contract: a frame's fate is a
// function of its content, so a retransmit with a bumped attempt counter
// redraws, while a byte-identical resend repeats its fate.
func TestLinkContentKeyed(t *testing.T) {
	cfg := LinkConfig{Seed: 7, Drop: 0.5}
	fate := func(frame []byte) bool {
		out, _ := playLink(cfg, [][]byte{frame})
		return len(out) > 0
	}
	redraws := 0
	for i := 0; i < 64; i++ {
		a := []byte(fmt.Sprintf("frame-%03d attempt=0", i))
		b := []byte(fmt.Sprintf("frame-%03d attempt=1", i))
		if fate(a) != fate(a) {
			t.Fatalf("identical frame %d changed fate between sends", i)
		}
		if fate(a) != fate(b) {
			redraws++
		}
	}
	if redraws == 0 {
		t.Fatal("bumping the attempt counter never redrew a frame's fate")
	}
}

func TestLinkDelayBounded(t *testing.T) {
	frames := testFrames(100)
	order := make(map[string]int, len(frames))
	for i, f := range frames {
		order[string(f)] = i
	}
	out, _ := playLink(LinkConfig{Seed: 19, Delay: 0.5, DelayMax: 3}, frames)
	for pos, f := range out {
		sent := order[string(f)]
		// With DelayMax=3 and no drops/dups a frame lands at most 4 slots
		// past its send position.
		if pos > sent+4 {
			t.Fatalf("frame sent at %d delivered at %d, exceeds delay bound", sent, pos)
		}
	}
}
