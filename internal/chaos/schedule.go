package chaos

import (
	"sort"

	"repro/internal/stats"
	"repro/internal/topology"
)

// ScheduleConfig parameterizes fault-schedule generation. All probabilities
// are per-entity per-slot; durations are geometric with the given mean (each
// subsequent slot heals with probability 1/mean), the standard memoryless
// MTTR model.
type ScheduleConfig struct {
	// NodeFailProb is the per-node per-slot crash probability.
	NodeFailProb float64
	// MeanDownSlots is the mean node outage duration in slots (≥1).
	MeanDownSlots float64
	// Correlated is the probability that a crash propagates to each direct
	// neighbor of the crashing node (shared power/backhaul domains); 0
	// keeps crashes independent.
	Correlated float64
	// LinkFailProb is the per-link per-slot degradation probability.
	LinkFailProb float64
	// LinkDegradeFactor scales a degraded link's effective rate (0,1).
	LinkDegradeFactor float64
	// MeanDegradeSlots is the mean link degradation duration in slots.
	MeanDegradeSlots float64
	// StorageShrinkProb is the per-node per-slot storage-shrink probability.
	StorageShrinkProb float64
	// StorageShrinkFactor scales a shrunk node's capacity (0,1).
	StorageShrinkFactor float64
	// MeanShrinkSlots is the mean storage-pressure duration in slots.
	MeanShrinkSlots float64
	// MinNodesUp floors the number of simultaneously-serving nodes: crashes
	// that would drop below it are skipped. Defaults to 1 (the substrate
	// never fully disappears).
	MinNodesUp int
}

// DefaultScheduleConfig returns a moderate independent-failure regime: ~5%
// of nodes and links fault per slot with mean three-slot outages, plus
// occasional storage pressure.
func DefaultScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		NodeFailProb:  0.05,
		MeanDownSlots: 3,
		LinkFailProb:  0.05, LinkDegradeFactor: 0.25, MeanDegradeSlots: 3,
		StorageShrinkProb: 0.02, StorageShrinkFactor: 0.5, MeanShrinkSlots: 4,
		MinNodesUp: 1,
	}
}

// CorrelatedScheduleConfig returns the correlated variant: crashes drag each
// neighbor down with probability one half, modelling shared power or
// backhaul domains failing together.
func CorrelatedScheduleConfig() ScheduleConfig {
	cfg := DefaultScheduleConfig()
	cfg.Correlated = 0.5
	return cfg
}

// FlappingScheduleConfig returns the flapping variant: frequent short
// outages (mean one slot), the pathological churn regime for repair — state
// barely settles before the next transition.
func FlappingScheduleConfig() ScheduleConfig {
	cfg := DefaultScheduleConfig()
	cfg.NodeFailProb = 0.25
	cfg.MeanDownSlots = 1
	cfg.LinkFailProb = 0.2
	cfg.MeanDegradeSlots = 1
	return cfg
}

// Schedule is a reproducible fault timeline over numSlots time slots.
// Events are ordered by slot; within a slot, healings precede new faults
// (a recovery frees capacity before the slot's crashes consume it), and
// entities are visited in ascending ID order, so replaying a schedule is
// fully deterministic.
type Schedule struct {
	NumSlots int
	Events   []Event
}

// At returns the events of one slot (a subslice of Events; do not mutate).
func (s *Schedule) At(slot int) []Event {
	lo := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].Slot >= slot })
	hi := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].Slot > slot })
	return s.Events[lo:hi]
}

// Generate draws a fault schedule for g over numSlots slots. The result is a
// pure function of (g, numSlots, cfg, seed): the generator walks slots, then
// nodes and links in ascending order, drawing from a single split-seeded
// stream — never the wall clock, never map iteration (links come from the
// mask's sorted slice). Crash events always pair with a later NodeRecover
// (and likewise for degrade/shrink) unless the horizon ends first; outages
// heal geometrically with the configured means.
func Generate(g *topology.Graph, numSlots int, cfg ScheduleConfig, seed int64) *Schedule {
	r := stats.NewRand(stats.SplitSeed(seed, "chaos/schedule"))
	if cfg.MinNodesUp <= 0 {
		cfg.MinNodesUp = 1
	}
	links := NewMask(g).links // canonical sorted link order
	n := g.N()

	down := make([]bool, n)
	degraded := make([]bool, len(links))
	shrunk := make([]bool, n)
	upCount := n

	sched := &Schedule{NumSlots: numSlots}
	healProb := func(mean float64) float64 {
		if mean <= 1 {
			return 1
		}
		return 1 / mean
	}
	crash := func(slot, k int) {
		if down[k] || upCount-1 < cfg.MinNodesUp {
			return
		}
		down[k] = true
		upCount--
		sched.Events = append(sched.Events, Event{Slot: slot, Kind: NodeCrash, Node: k})
	}

	for slot := 0; slot < numSlots; slot++ {
		// Healings first: a node that crashed in slot t is down for slots
		// t..t+d-1 and serves again in t+d.
		for k := 0; k < n; k++ {
			if down[k] && r.Float64() < healProb(cfg.MeanDownSlots) {
				down[k] = false
				upCount++
				sched.Events = append(sched.Events, Event{Slot: slot, Kind: NodeRecover, Node: k})
			}
		}
		for i := range links {
			if degraded[i] && r.Float64() < healProb(cfg.MeanDegradeSlots) {
				degraded[i] = false
				sched.Events = append(sched.Events, Event{Slot: slot, Kind: LinkRestore, A: links[i].A, B: links[i].B, Factor: 1})
			}
		}
		for k := 0; k < n; k++ {
			if shrunk[k] && r.Float64() < healProb(cfg.MeanShrinkSlots) {
				shrunk[k] = false
				sched.Events = append(sched.Events, Event{Slot: slot, Kind: StorageRestore, Node: k, Factor: 1})
			}
		}

		// New faults.
		for k := 0; k < n; k++ {
			if down[k] || r.Float64() >= cfg.NodeFailProb {
				continue
			}
			crash(slot, k)
			if cfg.Correlated <= 0 {
				continue
			}
			nb := g.Neighbors(k)
			sort.Ints(nb)
			for _, q := range nb {
				if !down[q] && r.Float64() < cfg.Correlated {
					crash(slot, q)
				}
			}
		}
		for i := range links {
			if !degraded[i] && r.Float64() < cfg.LinkFailProb {
				degraded[i] = true
				sched.Events = append(sched.Events, Event{
					Slot: slot, Kind: LinkDegrade,
					A: links[i].A, B: links[i].B,
					Factor: clampFactor(cfg.LinkDegradeFactor),
				})
			}
		}
		for k := 0; k < n; k++ {
			if !shrunk[k] && r.Float64() < cfg.StorageShrinkProb {
				shrunk[k] = true
				sched.Events = append(sched.Events, Event{
					Slot: slot, Kind: StorageShrink, Node: k,
					Factor: clampFactor(cfg.StorageShrinkFactor),
				})
			}
		}
	}
	return sched
}
