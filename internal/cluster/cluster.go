// Package cluster is a discrete-event runtime emulation of the paper's
// Kubernetes testbed, one fidelity level below package sim's analytic
// model. Where sim prices latency with closed-form transfer and compute
// times, cluster *executes* every request through the infrastructure:
//
//   - each edge node is a FIFO processor serving microservice steps at its
//     compute rate;
//   - each physical link is a FIFO channel serializing the transfers that
//     cross it, so network contention emerges from the event timeline
//     instead of a pricing formula;
//   - placements materialize as containers with a cold-start delay: a
//     newly deployed instance only serves after ColdStart seconds, which
//     is what makes placement churn (and the online solver's warm
//     retention) matter;
//   - at every slot boundary the algorithm under test re-plans from the
//     requests observed during the previous slot — the paper's "observed
//     system state and current user demand".
//
// The simulation is deterministic for a given seed.
package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Config parameterizes a cluster run.
type Config struct {
	Graph   *topology.Graph
	Catalog *msvc.Catalog

	NumUsers    int
	SlotSeconds float64 // re-planning interval (paper: 5 min = 300 s)
	Horizon     float64 // total simulated seconds
	// MeanInterarrival is the mean seconds between a user's requests.
	MeanInterarrival float64
	MoveProb         float64 // per-slot user mobility probability

	ColdStart float64 // seconds before a new container serves traffic

	Lambda float64
	Budget float64

	Workload msvc.WorkloadConfig // data-volume ranges (NumUsers ignored)

	Seed int64
}

// DefaultConfig mirrors sim.DefaultConfig at cluster fidelity: 5-minute
// slots, ~5-minute request interarrivals, 30-second container cold starts.
func DefaultConfig(g *topology.Graph, cat *msvc.Catalog, users int, seed int64) Config {
	base := sim.DefaultConfig(g, cat, users, seed)
	return Config{
		Graph: g, Catalog: cat,
		NumUsers:         users,
		SlotSeconds:      base.SlotMinutes * 60,
		Horizon:          base.DurationMinutes * 60,
		MeanInterarrival: base.MeanInterarrival * 60,
		MoveProb:         base.MoveProb,
		ColdStart:        30,
		Lambda:           base.Lambda,
		Budget:           base.Budget,
		Workload:         base.Workload,
		Seed:             seed,
	}
}

// Result aggregates a cluster run.
type Result struct {
	Algorithm string

	Sojourns   []float64 // per-completed-request end-to-end times (s)
	Completed  int
	Unserved   int // requests unroutable at admission (no container, dead link)
	ColdStarts int // containers launched after the first slot
	// BusyFraction[k] is node k's busy time divided by the horizon.
	BusyFraction []float64
	// SlotCosts records the deployment cost of each slot's placement.
	SlotCosts []float64
}

// MeanSojourn returns the average completed-request sojourn.
func (r *Result) MeanSojourn() float64 { return stats.Mean(r.Sojourns) }

// P95Sojourn returns the 95th-percentile sojourn (0 when empty).
func (r *Result) P95Sojourn() float64 {
	if len(r.Sojourns) == 0 {
		return 0
	}
	return stats.Percentile(r.Sojourns, 95)
}

// MaxSojourn returns the maximum sojourn (0 when empty).
func (r *Result) MaxSojourn() float64 {
	if len(r.Sojourns) == 0 {
		return 0
	}
	return stats.Max(r.Sojourns)
}

// --- event machinery ---

type eventKind int

const (
	evArrival  eventKind = iota // a request enters the system
	evLegDone                   // one link leg of a transfer finished
	evStepDone                  // a compute step finished
	evSlot                      // slot boundary: observe, re-plan, deploy
)

type event struct {
	at   float64
	seq  int64 // tie-breaker for determinism
	kind eventKind
	req  *liveRequest
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//socllint:ignore floateq exact compare keeps the order strict-weak; an epsilon would break sort transitivity
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// liveRequest tracks a request's progress through its chain.
type liveRequest struct {
	req     msvc.Request
	arrived float64
	// route[t] is the node executing chain step t (fixed at admission).
	route []int
	// phase: the request alternates transfer legs and compute steps.
	step    int   // current chain step index
	legs    []leg // remaining link legs of the current transfer
	retired bool
}

// leg is one link hop of a transfer.
type leg struct {
	a, b int
	gb   float64
}

// container is a deployed service instance; ready is when it starts
// serving.
type container struct {
	ready float64
}

type runtime struct {
	cfg  Config
	algo sim.Algorithm
	rng  interface {
		Float64() float64
		Intn(int) int
	}
	now    float64
	seq    int64
	events eventQueue

	// Infrastructure state.
	nodeFree []float64 // node k's processor is free from this time
	nodeBusy []float64 // accumulated busy seconds
	linkFree map[[2]int]float64
	// containers[svc][node] → container (present = deployed).
	containers []map[int]*container

	homes    []int
	observed []msvc.Request // requests seen this slot (for next re-plan)

	res *Result
}

// Run executes algo over the configured horizon at cluster fidelity.
func Run(cfg Config, algo sim.Algorithm) (*Result, error) {
	if cfg.Graph == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("cluster: nil graph or catalog")
	}
	if cfg.NumUsers <= 0 || cfg.SlotSeconds <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("cluster: non-positive sizing")
	}
	if len(cfg.Catalog.Flows()) == 0 {
		return nil, fmt.Errorf("cluster: catalog has no flows")
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = cfg.SlotSeconds
	}
	rt := &runtime{
		cfg:      cfg,
		algo:     algo,
		rng:      stats.NewRand(stats.SplitSeed(cfg.Seed, "cluster/run")),
		nodeFree: make([]float64, cfg.Graph.N()),
		nodeBusy: make([]float64, cfg.Graph.N()),
		linkFree: map[[2]int]float64{},
		res:      &Result{Algorithm: algo.Name()},
	}
	rt.containers = make([]map[int]*container, cfg.Catalog.Len())
	for i := range rt.containers {
		rt.containers[i] = map[int]*container{}
	}
	rt.homes = make([]int, cfg.NumUsers)
	for u := range rt.homes {
		rt.homes[u] = rt.rng.Intn(cfg.Graph.N())
	}

	// Seed arrivals per user (Poisson process, thinned at generation).
	for u := 0; u < cfg.NumUsers; u++ {
		rt.scheduleNextArrival(u, 0)
	}
	// Slot boundaries (the first at t=0 performs the initial deployment
	// from a forecast sample of requests).
	rt.push(&event{at: 0, kind: evSlot})

	for rt.events.Len() > 0 {
		ev := heap.Pop(&rt.events).(*event)
		if ev.at > cfg.Horizon {
			break
		}
		rt.now = ev.at
		switch ev.kind {
		case evSlot:
			if err := rt.replan(); err != nil {
				return nil, err
			}
			if rt.now+cfg.SlotSeconds <= cfg.Horizon {
				rt.push(&event{at: rt.now + cfg.SlotSeconds, kind: evSlot})
			}
		case evArrival:
			rt.admit(ev.req)
		case evLegDone:
			rt.advanceTransfer(ev.req)
		case evStepDone:
			rt.finishStep(ev.req)
		}
	}

	rt.res.BusyFraction = make([]float64, cfg.Graph.N())
	for k := range rt.nodeBusy {
		rt.res.BusyFraction[k] = rt.nodeBusy[k] / cfg.Horizon
	}
	return rt.res, nil
}

func (rt *runtime) push(ev *event) {
	rt.seq++
	ev.seq = rt.seq
	heap.Push(&rt.events, ev)
}

// scheduleNextArrival draws the user's next request.
func (rt *runtime) scheduleNextArrival(user int, from float64) {
	gap := -math.Log(1-rt.rng.Float64()) * rt.cfg.MeanInterarrival
	at := from + gap
	if at > rt.cfg.Horizon {
		return
	}
	req := rt.makeRequest(user)
	lr := &liveRequest{req: req, arrived: at}
	rt.push(&event{at: at, kind: evArrival, req: lr})
	rt.scheduleNextArrival(user, at)
}

func (rt *runtime) makeRequest(user int) msvc.Request {
	flows := rt.cfg.Catalog.Flows()
	base := flows[rt.rng.Intn(len(flows))]
	chain := append([]msvc.ServiceID(nil), base...)
	if len(chain) > 1 && rt.rng.Float64() < rt.cfg.Workload.TruncateProb {
		chain = chain[:len(chain)-1]
	}
	w := rt.cfg.Workload
	req := msvc.Request{
		Home:     rt.homes[user],
		Chain:    chain,
		DataIn:   uniform(rt.rng, w.InDataMin, w.InDataMax),
		DataOut:  uniform(rt.rng, w.OutDataMin, w.OutDataMax),
		Deadline: math.Inf(1),
	}
	req.EdgeData = make([]float64, len(chain)-1)
	for i := range req.EdgeData {
		req.EdgeData[i] = uniform(rt.rng, w.EdgeDataMin, w.EdgeDataMax)
	}
	return req
}

func uniform(r interface{ Float64() float64 }, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// replan observes the previous slot's requests, asks the algorithm for a
// placement, and reconciles containers (new ones cold-start).
func (rt *runtime) replan() error {
	// Mobility happens at slot boundaries.
	if rt.now > 0 {
		for u := range rt.homes {
			if rt.rng.Float64() < rt.cfg.MoveProb {
				nb := rt.cfg.Graph.Neighbors(rt.homes[u])
				if len(nb) > 0 {
					rt.homes[u] = nb[rt.rng.Intn(len(nb))]
				}
			}
		}
	}

	observed := rt.observed
	rt.observed = nil
	if len(observed) == 0 {
		// Bootstrap (or an idle slot): forecast one request per user.
		for u := range rt.homes {
			observed = append(observed, rt.makeRequest(u))
		}
	}
	for i := range observed {
		observed[i].ID = i
	}
	in := &model.Instance{
		Graph:    rt.cfg.Graph,
		Workload: &msvc.Workload{Catalog: rt.cfg.Catalog, Requests: observed},
		Lambda:   rt.cfg.Lambda,
		Budget:   rt.cfg.Budget,
	}
	placement, err := rt.algo.Place(in)
	if err != nil {
		return fmt.Errorf("cluster: %s re-plan failed at t=%.0f: %w", rt.algo.Name(), rt.now, err)
	}
	rt.res.SlotCosts = append(rt.res.SlotCosts, in.DeployCost(placement))

	// Reconcile containers.
	for svc := range rt.containers {
		for node := range rt.containers[svc] {
			if !placement.Has(svc, node) {
				delete(rt.containers[svc], node) // graceful stop
			}
		}
		for _, node := range placement.NodesOf(svc) {
			if _, ok := rt.containers[svc][node]; !ok {
				ready := rt.now + rt.cfg.ColdStart
				//socllint:ignore floateq exact zero is the sentinel for the pre-traffic instant, never a computed time
				if rt.now == 0 {
					ready = 0 // initial deployment pre-warms before traffic
				} else {
					rt.res.ColdStarts++
				}
				rt.containers[svc][node] = &container{ready: ready}
			}
		}
	}
	return nil
}

// admit routes an arriving request against currently deployed containers
// and starts its ingress transfer.
func (rt *runtime) admit(lr *liveRequest) {
	rt.observed = append(rt.observed, lr.req)
	route := rt.route(&lr.req)
	if route == nil {
		rt.res.Unserved++
		return
	}
	lr.route = route
	lr.step = 0
	lr.legs = rt.legsFor(lr.req.Home, route[0], lr.req.DataIn)
	rt.advanceTransfer(lr)
}

// route picks the serving node per chain step by lowest path cost from the
// previous location among *deployed* containers (cold ones are routable —
// they queue until ready). Returns nil when some step has no container.
func (rt *runtime) route(req *msvc.Request) []int {
	route := make([]int, len(req.Chain))
	prev := req.Home
	for t, svc := range req.Chain {
		best, bestCost := -1, math.Inf(1)
		keys := make([]int, 0, len(rt.containers[svc]))
		for node := range rt.containers[svc] {
			keys = append(keys, node)
		}
		sort.Ints(keys) // map order must not leak into the simulation
		for _, node := range keys {
			if c := rt.cfg.Graph.PathCost(prev, node); c < bestCost {
				best, bestCost = node, c
			}
		}
		if best == -1 {
			return nil
		}
		route[t] = best
		prev = best
	}
	return route
}

// legsFor expands a transfer into its per-link legs.
func (rt *runtime) legsFor(a, b int, gb float64) []leg {
	if a == b || gb <= 0 {
		return nil
	}
	path := rt.cfg.Graph.Path(a, b)
	legs := make([]leg, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		legs = append(legs, leg{a: path[i-1], b: path[i], gb: gb})
	}
	return legs
}

// advanceTransfer serves the next link leg of the current transfer, or
// starts the compute step when the transfer is done.
func (rt *runtime) advanceTransfer(lr *liveRequest) {
	if lr.retired {
		return
	}
	if len(lr.legs) == 0 {
		if lr.step >= len(lr.route) {
			// Egress finished: the request is complete.
			rt.complete(lr)
			return
		}
		rt.startStep(lr)
		return
	}
	lg := lr.legs[0]
	lr.legs = lr.legs[1:]
	key := linkKey(lg.a, lg.b)
	rate, ok := rt.cfg.Graph.LinkRate(lg.a, lg.b)
	if !ok || rate <= 0 {
		rt.res.Unserved++
		lr.retired = true
		return
	}
	start := math.Max(rt.now, rt.linkFree[key])
	done := start + lg.gb/rate
	rt.linkFree[key] = done
	rt.push(&event{at: done, kind: evLegDone, req: lr})
}

// startStep queues the current chain step on its node's FIFO processor,
// gated by the container's readiness.
func (rt *runtime) startStep(lr *liveRequest) {
	node := lr.route[lr.step]
	svc := lr.req.Chain[lr.step]
	c := rt.containers[svc][node]
	ready := rt.now
	if c != nil && c.ready > ready {
		ready = c.ready // cold container: head-of-line wait
	}
	start := math.Max(ready, rt.nodeFree[node])
	serve := rt.cfg.Catalog.Service(svc).Compute / rt.cfg.Graph.Node(node).Compute
	done := start + serve
	rt.nodeFree[node] = done
	rt.nodeBusy[node] += serve
	rt.push(&event{at: done, kind: evStepDone, req: lr})
}

// finishStep starts the next transfer (to the next step's node, or the
// egress back home).
func (rt *runtime) finishStep(lr *liveRequest) {
	if lr.retired {
		return
	}
	cur := lr.route[lr.step]
	lr.step++
	if lr.step < len(lr.route) {
		lr.legs = rt.legsFor(cur, lr.route[lr.step], lr.req.EdgeData[lr.step-1])
	} else {
		lr.legs = rt.legsFor(cur, lr.req.Home, lr.req.DataOut)
	}
	rt.advanceTransfer(lr)
}

func (rt *runtime) complete(lr *liveRequest) {
	lr.retired = true
	rt.res.Completed++
	rt.res.Sojourns = append(rt.res.Sojourns, rt.now-lr.arrived)
}

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
