package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/topology"
)

func setup(nodes int, seed int64) (*topology.Graph, *msvc.Catalog) {
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	return g, cat
}

func shortCfg(g *topology.Graph, cat *msvc.Catalog, users int, seed int64) Config {
	cfg := DefaultConfig(g, cat, users, seed)
	cfg.Horizon = 1800 // 6 slots of 5 minutes
	return cfg
}

func TestRunBasics(t *testing.T) {
	g, cat := setup(8, 1)
	cfg := shortCfg(g, cat, 10, 1)
	res, err := Run(cfg, sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if len(res.Sojourns) != res.Completed {
		t.Fatalf("sojourns %d != completed %d", len(res.Sojourns), res.Completed)
	}
	for _, s := range res.Sojourns {
		if s < 0 {
			t.Fatalf("negative sojourn %v", s)
		}
	}
	if res.MeanSojourn() <= 0 || res.MaxSojourn() < res.MeanSojourn() {
		t.Fatalf("sojourn stats inconsistent: mean=%v max=%v", res.MeanSojourn(), res.MaxSojourn())
	}
	if res.P95Sojourn() > res.MaxSojourn() {
		t.Fatal("p95 > max")
	}
	if len(res.SlotCosts) == 0 {
		t.Fatal("no slot costs recorded")
	}
	for k, b := range res.BusyFraction {
		if b < 0 || b > 1+1e-9 {
			t.Fatalf("node %d busy fraction %v out of range", k, b)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g, cat := setup(8, 2)
	r1, err := Run(shortCfg(g, cat, 8, 2), sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(shortCfg(g, cat, 8, 2), sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed != r2.Completed || len(r1.Sojourns) != len(r2.Sojourns) {
		t.Fatal("same seed produced different runs")
	}
	for i := range r1.Sojourns {
		if r1.Sojourns[i] != r2.Sojourns[i] {
			t.Fatal("sojourn streams differ")
		}
	}
}

func TestRunErrors(t *testing.T) {
	g, cat := setup(6, 3)
	if _, err := Run(Config{}, sim.JDR{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := shortCfg(g, cat, 0, 3)
	if _, err := Run(cfg, sim.JDR{}); err == nil {
		t.Fatal("zero users accepted")
	}
	bad := shortCfg(g, msvc.NewCatalog(), 5, 3)
	if _, err := Run(bad, sim.JDR{}); err == nil {
		t.Fatal("flowless catalog accepted")
	}
}

func TestColdStartsAccumulate(t *testing.T) {
	g, cat := setup(10, 4)
	cfg := shortCfg(g, cat, 15, 4)
	cfg.MoveProb = 0.8 // high mobility → placements drift → cold starts
	res, err := Run(cfg, sim.SoCL{Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdStarts == 0 {
		t.Fatal("no cold starts despite drifting demand")
	}
}

func TestOnlineWarmHasFewerColdStarts(t *testing.T) {
	g, cat := setup(10, 5)
	cfgA := shortCfg(g, cat, 15, 5)
	oneShot, err := Run(cfgA, sim.SoCL{Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	cfgB := shortCfg(g, cat, 15, 5)
	online, err := Run(cfgB, sim.NewSoCLOnline(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if online.ColdStarts > oneShot.ColdStarts {
		t.Fatalf("online cold starts %d exceed one-shot %d", online.ColdStarts, oneShot.ColdStarts)
	}
}

func TestColdStartDelaysFirstSlotChanges(t *testing.T) {
	// With an enormous cold start, any container launched after t=0 is
	// useless for the rest of the horizon; requests routed to it stall and
	// never complete. Compare against zero cold start: completions must not
	// increase when cold start grows.
	g, cat := setup(8, 6)
	warm := shortCfg(g, cat, 10, 6)
	warm.ColdStart = 0
	resWarm, err := Run(warm, sim.SoCL{Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	cold := shortCfg(g, cat, 10, 6)
	cold.ColdStart = 1e7
	resCold, err := Run(cold, sim.SoCL{Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if resCold.Completed > resWarm.Completed {
		t.Fatalf("more completions with infinite cold start: %d > %d",
			resCold.Completed, resWarm.Completed)
	}
}

func TestAllAlgorithmsComplete(t *testing.T) {
	g, cat := setup(8, 7)
	for _, algo := range []sim.Algorithm{
		sim.SoCL{Config: core.DefaultConfig()},
		sim.NewSoCLOnline(core.DefaultConfig()),
		sim.RP{Seed: 7},
		sim.JDR{},
	} {
		cfg := shortCfg(g, cat, 8, 7)
		cfg.Horizon = 900
		res, err := Run(cfg, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s: nothing completed", algo.Name())
		}
	}
}

func TestQueueingEmergesUnderLoad(t *testing.T) {
	// Crank the arrival rate: sojourns must grow versus a light load run
	// (queueing at nodes/links), while both stay positive.
	g, cat := setup(6, 8)
	light := shortCfg(g, cat, 5, 8)
	light.MeanInterarrival = 600
	heavy := shortCfg(g, cat, 5, 8)
	heavy.MeanInterarrival = 10 // 60× the load
	resL, err := Run(light, sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	resH, err := Run(heavy, sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if resH.Completed <= resL.Completed {
		t.Fatalf("heavy load completed less: %d vs %d", resH.Completed, resL.Completed)
	}
	if resH.MeanSojourn() < resL.MeanSojourn() {
		t.Fatalf("no queueing under heavy load: %v < %v", resH.MeanSojourn(), resL.MeanSojourn())
	}
}

func TestBusyFractionReflectsLoad(t *testing.T) {
	g, cat := setup(6, 9)
	cfg := shortCfg(g, cat, 20, 9)
	cfg.MeanInterarrival = 30
	res, err := Run(cfg, sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, b := range res.BusyFraction {
		total += b
	}
	if total <= 0 {
		t.Fatal("no node did any work")
	}
}
