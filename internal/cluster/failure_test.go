package cluster

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// emptyPlacer deploys nothing: every admitted request must be counted
// unserved rather than crash the runtime.
type emptyPlacer struct{}

func (emptyPlacer) Name() string               { return "empty" }
func (emptyPlacer) Routing() model.RoutingMode { return model.RouteModeGreedy }
func (emptyPlacer) Place(in *model.Instance) (model.Placement, error) {
	return model.NewPlacement(in.M(), in.V()), nil
}

func TestEmptyPlacementCountsUnserved(t *testing.T) {
	g, cat := setup(6, 11)
	cfg := shortCfg(g, cat, 8, 11)
	cfg.Horizon = 900
	res, err := Run(cfg, emptyPlacer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d requests with no containers", res.Completed)
	}
	if res.Unserved == 0 {
		t.Fatal("unserved not counted")
	}
}

// failingPlacer errors at re-plan: the runtime must surface the error.
type failingPlacer struct{}

func (failingPlacer) Name() string               { return "failing" }
func (failingPlacer) Routing() model.RoutingMode { return model.RouteModeGreedy }
func (failingPlacer) Place(*model.Instance) (model.Placement, error) {
	return model.Placement{}, errors.New("boom")
}

func TestPlannerErrorPropagates(t *testing.T) {
	g, cat := setup(6, 12)
	cfg := shortCfg(g, cat, 5, 12)
	if _, err := Run(cfg, failingPlacer{}); err == nil {
		t.Fatal("planner error swallowed")
	}
}

func TestZeroMeanInterarrivalDefaults(t *testing.T) {
	g, cat := setup(6, 13)
	cfg := shortCfg(g, cat, 5, 13)
	cfg.MeanInterarrival = 0
	res, err := Run(cfg, sim.JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("defaulted interarrival produced no traffic")
	}
}
