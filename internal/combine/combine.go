// Package combine implements Algorithms 3–5 of the SoCL paper: multi-scale
// combination. Starting from the pre-provisioned placement 𝒫^t it merges
// instances at two granularities:
//
//   - large-scale (parallel) gradient descent: while the deployment cost
//     exceeds the budget, the ω-fraction of instances with the smallest
//     latency loss ζ (Eq. 14) — after dependency-conflict filtering — is
//     combined in one batch (Algorithm 3 lines 1–5, Algorithm 4);
//   - small-scale (serial) gradient descent: instances are removed one at a
//     time while the objective gradient δ = Q' − Q” + Θ stays positive,
//     with storage planning (Algorithm 5, FuzzyAHP local demand factor ρ)
//     and a deadline roll-back that re-adds and freezes instances whose
//     removal violates constraint (4).
//
// Internal bookkeeping mirrors the paper's connection model: every request
// step maintains a reliance — the instance serving it — updated by the
// connection rule (same partition group preferred, then highest channel
// speed from the user's home server).
//
// # Incremental engine invariants
//
// The hot path (ζ scoring and the exact deadline check) runs on an
// incremental engine (incremental.go) whose correctness rests on three
// invariants, each preserved by every placement/reliance mutation:
//
//  1. Candidate coherence: state.idx always indexes the live placement.
//     Every placement mutation goes through state.setPlace, and wholesale
//     replacements (snapshot restore) Rebind the index. Cached per-service
//     node lists are therefore equal to Placement.NodesOf at all times.
//  2. Reliance-index coherence: state.relyIdx maps each live instance to
//     the ascending (h,t) list of steps relying on it — exactly the pairs
//     with rel[h][t]==node and Chain[t]==svc. Reliance reassignments move
//     entries between lists; restores rebuild the index from rel. The
//     ascending order makes ζ's float summation bit-identical to the naive
//     full scan.
//  3. Route-cache exactness: a valid state.routes entry holds the request's
//     true optimal route and latency under the live placement. Removing an
//     instance invalidates exactly the requests whose cached route used it
//     (shrinking a candidate set cannot change the optimum of a request
//     whose route avoids the removed node); adding one (migration target)
//     invalidates every request whose chain contains the service, since a
//     grown candidate set can strictly improve avoided-node routes too.
//
// Config.Naive disables the engine and runs the original full rescans; the
// two paths are differentially tested to produce bit-identical placements
// and statistics.
package combine

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fuzzy"
	"repro/internal/invariant"
	"repro/internal/model"
	"repro/internal/partition"
)

// Config holds the combination hyper-parameters.
type Config struct {
	// Omega is ω: the fraction of instances combined per parallel batch.
	Omega float64
	// Theta is Θ: the positive disturbance that keeps the serial descent
	// running through small objective rebounds.
	Theta float64
	// MaxRounds caps each phase's iterations (safety net; 0 = |M|·|V|).
	MaxRounds int
	// Warm, when non-zero, marks instances that were already running in the
	// previous decision slot. Equal-ζ ties are broken toward removing cold
	// instances first, so warm instances survive whenever the objective is
	// indifferent — reducing placement churn in online operation.
	Warm model.Placement
	// WarmBias is added to a warm instance's ζ when ordering removal
	// candidates: warm instances resist removal by this many latency units,
	// trading a bounded amount of objective for fewer container cold-starts.
	// 0 keeps the ordering purely objective-driven.
	WarmBias float64
	// Naive disables the incremental routing engine and re-derives every ζ
	// and deadline check from full scans. Results are bit-identical either
	// way; the flag exists for differential tests and benchmarks.
	Naive bool
}

// DefaultConfig returns ω=0.25, Θ=1.0.
func DefaultConfig() Config { return Config{Omega: 0.25, Theta: 1.0} }

// Result reports the combination outcome.
type Result struct {
	Placement  model.Placement
	BudgetMet  bool // deployment cost ≤ 𝒦^max after the parallel phase
	Combined   int  // instances removed in total
	RolledBack int  // deadline roll-backs in the serial phase
	Migrated   int  // storage-planning migrations
	ParallelRounds,
	SerialRounds int

	// Incremental-engine telemetry (zero when Config.Naive): requests whose
	// cached optimal route was reused across deadline checks, and requests
	// re-routed because a mutation could have changed their optimum.
	RouteCacheHits  int
	RouteRecomputed int
}

type instKey struct{ svc, node int }

// cloudNode is the reliance marker for steps served by the cloud fallback.
const cloudNode = -2

type state struct {
	in       *model.Instance
	part     *partition.Result
	place    model.Placement
	rel      [][]int // reliance[h][t] = serving node, or cloudNode
	frozen   map[instKey]bool
	weights  []float64
	cost     float64
	warm     map[instKey]bool // instances running in the previous slot
	warmBias float64

	// Incremental engine (all nil/zero when running naive; see
	// incremental.go and the package comment's invariants).
	idx                   *model.PlacementIndex   // cached candidate node lists
	relyIdx               map[instKey][][2]int    // instance → ascending relying (h,t)
	routes                []cachedRoute           // per-request deadline-check cache
	finite                []int                   // requests with finite deadlines
	chainReqs             map[int][]int           // service → finite requests using it
	scratch               *model.RouteScratch     // serial-path DP buffers
	dirtyBuf              []int                   // reusable re-route worklist
	zetaCache             map[int]map[int]float64 // service → node → memoized ζ
	latRow                []float64               // per-request ψ rows for starObjective
	latRowDirty           []bool                  // rows needing re-derivation
	cacheHits, recomputed int

	// Static memoization, shared by both engine modes (pure functions of
	// the instance and partition, never of the mutable placement).
	groupTab  map[int][]int // service → per-node partition group, -1 outside
	rhoCache  [][]float64   // localDemandFactor (svc, node), NaN = unset
	demandTab [][]int       // demandTab[svc][k] = Workload.DemandCount(k, svc)
	latTab    [][]float64   // per request: step latencies, row-major [t·V+k]
	cloudLat  [][]float64   // per request: cloud step latencies [t]
	snap      snapState     // reusable serial-step snapshot buffers

	// idxWatch memoizes index-coherence verification by epoch; inert (and
	// all its uses free) without the soclinvariants build tag.
	idxWatch invariant.IndexWatch
}

// setPlace mutates the placement, keeping the candidate index coherent
// (invariant 1).
func (s *state) setPlace(i, k int, val bool) {
	if s.idx != nil {
		s.idx.Set(i, k, val)
		return
	}
	s.place.Set(i, k, val)
}

// nodesOf returns service i's hosting nodes, ascending — cached when the
// incremental engine is on.
func (s *state) nodesOf(i int) []int {
	if s.idx != nil {
		return s.idx.NodesOf(i)
	}
	return s.place.NodesOf(i)
}

// Run executes the multi-scale combination on the pre-provisioned placement.
func Run(in *model.Instance, part *partition.Result, pre model.Placement, cfg Config) Result {
	if cfg.Omega <= 0 || cfg.Omega > 1 {
		cfg.Omega = 0.25
	}
	if cfg.Theta < 0 {
		cfg.Theta = 0
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = in.M()*in.V() + 16
	}
	s := &state{
		in:       in,
		part:     part,
		place:    pre.Clone(),
		frozen:   make(map[instKey]bool),
		weights:  fuzzy.SoCLWeights(),
		warm:     make(map[instKey]bool),
		warmBias: cfg.WarmBias,
	}
	for i := range cfg.Warm.X {
		for k, on := range cfg.Warm.X[i] {
			if on {
				s.warm[instKey{i, k}] = true
			}
		}
	}
	s.cost = in.DeployCost(s.place)
	s.buildStaticTables()
	s.initReliance()
	if !cfg.Naive {
		s.initIncremental()
	}

	res := Result{}
	res.BudgetMet = s.parallelPhase(cfg, &res)
	if res.BudgetMet {
		invariant.CheckBudget(in, s.place, "combine: after parallel phase")
	}
	s.checkPhaseInvariants("after parallel phase")
	s.serialPhase(cfg, &res)
	s.checkPhaseInvariants("after serial phase")
	// Final storage repair: the parallel phase does not run Algorithm 5, so
	// a placement can exit the loop budget-feasible but storage-tight.
	if s.storagePlanning(&res) {
		invariant.CheckStorage(in, s.place, "combine: final storage planning")
	}
	s.checkPhaseInvariants("after final storage planning")
	res.Placement = s.place
	res.RouteCacheHits = s.cacheHits
	res.RouteRecomputed = s.recomputed
	return res
}

// --- reliance bookkeeping ---

// buildStaticTables precomputes lookups that depend only on the instance
// and the (immutable) partition: the per-service node→group table replacing
// ServicePartition.GroupOf's linear scan on the pickReliance hot path, and
// the lazy memo for the FuzzyAHP local demand factor ρ (a pure function of
// the workload). Both modes share these — they change no observable value.
func (s *state) buildStaticTables() {
	s.groupTab = make(map[int][]int, len(s.part.ByService))
	for svc, sp := range s.part.ByService {
		if sp == nil {
			continue
		}
		row := make([]int, s.in.V())
		for k := range row {
			row[k] = -1
		}
		// First group wins, mirroring GroupOf's scan order.
		for g := range sp.Groups {
			for _, n := range sp.Groups[g].Members {
				if row[n] == -1 {
					row[n] = g
				}
			}
			for _, n := range sp.Groups[g].Candidates {
				if row[n] == -1 {
					row[n] = g
				}
			}
		}
		s.groupTab[svc] = row
	}
	s.rhoCache = make([][]float64, s.in.M())
	for i := range s.rhoCache {
		s.rhoCache[i] = make([]float64, s.in.V())
		for k := range s.rhoCache[i] {
			s.rhoCache[i][k] = math.NaN()
		}
	}
	// Per-(service,node) user demand in one workload pass, replacing the
	// O(|U|·L) DemandCount scan inside every ρ normalizer.
	s.demandTab = make([][]int, s.in.M())
	for i := range s.demandTab {
		s.demandTab[i] = make([]int, s.in.V())
	}
	reqs := s.in.Workload.Requests
	for h := range reqs {
		req := &reqs[h]
		for t, svc := range req.Chain {
			dup := false
			for _, prev := range req.Chain[:t] {
				if prev == svc {
					dup = true // Uses() counts a request once per service
					break
				}
			}
			if !dup {
				s.demandTab[svc][req.Home]++
			}
		}
	}
	// Step latencies are pure in (h, t, k): precompute them eagerly so the
	// ζ and objective hot loops — including the parallel ζ workers — do
	// read-only table lookups.
	v := s.in.V()
	s.latTab = make([][]float64, len(reqs))
	if s.in.Cloud != nil {
		s.cloudLat = make([][]float64, len(reqs))
	}
	for h := range reqs {
		req := &reqs[h]
		row := make([]float64, len(req.Chain)*v)
		for t := range req.Chain {
			data := s.stepData(h, t)
			comp := s.in.Workload.Catalog.Service(req.Chain[t]).Compute
			for k := 0; k < v; k++ {
				c := s.in.Graph.PathCost(req.Home, k)
				if math.IsInf(c, 1) {
					row[t*v+k] = 1e12
					continue
				}
				row[t*v+k] = data*c + comp/s.in.Graph.Node(k).Compute
			}
		}
		s.latTab[h] = row
		if s.in.Cloud != nil {
			crow := make([]float64, len(req.Chain))
			for t := range req.Chain {
				crow[t] = s.stepData(h, t)*s.in.Cloud.TransferCost +
					s.in.Workload.Catalog.Service(req.Chain[t]).Compute/s.in.Cloud.Compute
			}
			s.cloudLat[h] = crow
		}
	}
}

func (s *state) initReliance() {
	reqs := s.in.Workload.Requests
	s.rel = make([][]int, len(reqs))
	for h := range reqs {
		s.rel[h] = make([]int, len(reqs[h].Chain))
		for t := range reqs[h].Chain {
			s.rel[h][t] = s.pickReliance(h, t, -1)
		}
	}
}

// pickReliance applies the connection-update rule for request h's step t,
// excluding node `excl` (-1 for none): prefer instances in the same
// partition group as the home server, then the highest virtual channel
// speed (equivalently the lowest path cost) from home. Returns -1 when the
// service has no instance other than excl.
func (s *state) pickReliance(h, t, excl int) int {
	req := &s.in.Workload.Requests[h]
	svc := req.Chain[t]
	groups := s.groupTab[svc] // nil when the service has no partition
	homeGroup := -1
	if groups != nil {
		homeGroup = groups[req.Home]
	}
	best, bestCost, bestInGroup := -1, math.Inf(1), false
	for _, k := range s.nodesOf(svc) {
		if k == excl {
			continue
		}
		inGroup := homeGroup != -1 && groups[k] == homeGroup
		c := s.in.Graph.PathCost(req.Home, k)
		// Group preference dominates; within a class, lowest cost wins.
		if best == -1 || (inGroup && !bestInGroup) ||
			(inGroup == bestInGroup && c < bestCost) {
			best, bestCost, bestInGroup = k, c, inGroup
		}
	}
	if best == -1 && s.in.Cloud != nil {
		return cloudNode
	}
	return best
}

// stepData returns the data volume entering request h's step t.
func (s *state) stepData(h, t int) float64 {
	req := &s.in.Workload.Requests[h]
	if t == 0 {
		return req.DataIn
	}
	return req.EdgeData[t-1]
}

// stepLatency is the ψ contribution of serving (h,t) at node k: transfer of
// the step's data from home plus compute time. Values are pure in (h,t,k)
// and normally served from the tables built by buildStaticTables; the
// formula fallback keeps hand-assembled states (tests) working.
func (s *state) stepLatency(h, t, k int) float64 {
	if k == cloudNode {
		if s.cloudLat != nil {
			return s.cloudLat[h][t]
		}
	} else if s.latTab != nil {
		return s.latTab[h][t*s.in.V()+k]
	}
	req := &s.in.Workload.Requests[h]
	if k == cloudNode {
		// Cloud-served step: WAN transfer of the step's data plus cloud
		// compute (the evaluator's whole-request fallback is the
		// per-request analogue; see model.CloudConfig).
		return s.stepData(h, t)*s.in.Cloud.TransferCost +
			s.in.Workload.Catalog.Service(req.Chain[t]).Compute/s.in.Cloud.Compute
	}
	c := s.in.Graph.PathCost(req.Home, k)
	if math.IsInf(c, 1) {
		return 1e12
	}
	return s.stepData(h, t)*c +
		s.in.Workload.Catalog.Service(req.Chain[t]).Compute/s.in.Graph.Node(k).Compute
}

// starRow is request h's ψ row: its chain's step latencies summed in
// t-order under the current reliances, +Inf when a step has no serving
// instance. Rows are the unit of starObjective's incremental cache — both
// engine modes sum the same rows in the same order, so cached and
// from-scratch totals are bitwise identical.
func (s *state) starRow(h int) float64 {
	row := 0.0
	for t, k := range s.rel[h] {
		if k == -1 {
			return math.Inf(1)
		}
		row += s.stepLatency(h, t, k)
	}
	return row
}

// starObjective is the internal Q of Algorithm 3: λ·cost + (1−λ)·Σψ over
// current reliances. The incremental engine keeps one ψ row per request,
// re-deriving only rows whose reliances changed since the last call
// (latRowDirty, maintained by every rel mutation site); the naive path
// recomputes every row. A +Inf row means a reliance-less step, which makes
// the whole objective +Inf regardless of λ — matching the historical early
// return.
func (s *state) starObjective() float64 {
	lat := 0.0
	if s.latRow != nil {
		for h := range s.latRow {
			if s.latRowDirty[h] {
				s.latRow[h] = s.starRow(h)
				s.latRowDirty[h] = false
			}
			if math.IsInf(s.latRow[h], 1) {
				return math.Inf(1)
			}
			lat += s.latRow[h]
		}
	} else {
		for h := range s.rel {
			row := s.starRow(h)
			if math.IsInf(row, 1) {
				return math.Inf(1)
			}
			lat += row
		}
	}
	return s.in.Objective(s.cost, lat)
}

// markRowDirty flags request h's ψ row for re-derivation at the next
// starObjective; a no-op in naive mode, whose rows are never cached.
func (s *state) markRowDirty(h int) {
	if s.latRowDirty != nil {
		s.latRowDirty[h] = true
	}
}

// --- latency loss (Algorithm 4) ---

// zeta computes ζ_{i,k} (Eq. 14) for the instance (svc, node): the latency
// increase of moving every relying step to its best alternative. +Inf when
// some step would have no alternative. With the reverse reliance index the
// cost is O(relying steps); the naive fallback scans every (h,t) pair. Both
// visit relying steps in ascending (h,t) order, so the sums are identical.
func (s *state) zeta(svc, node int) float64 {
	if s.relyIdx != nil {
		loss := 0.0
		for _, ht := range s.relyIdx[instKey{svc, node}] {
			h, t := ht[0], ht[1]
			alt := s.pickReliance(h, t, node)
			if alt == -1 {
				return math.Inf(1) // no alternative and no cloud
			}
			loss += s.stepLatency(h, t, alt) - s.stepLatency(h, t, node)
		}
		return loss
	}
	loss := 0.0
	for h := range s.rel {
		req := &s.in.Workload.Requests[h]
		for t, k := range s.rel[h] {
			if k != node || req.Chain[t] != svc {
				continue
			}
			alt := s.pickReliance(h, t, node)
			if alt == -1 {
				return math.Inf(1) // no alternative and no cloud
			}
			loss += s.stepLatency(h, t, alt) - s.stepLatency(h, t, node)
		}
	}
	return loss
}

type scoredInst struct {
	key  instKey
	zeta float64
}

// zetaParallelThreshold is the eligible-instance count above which ζ values
// are computed concurrently. ζ computations are independent reads of the
// combination state, so the parallel path is deterministic.
const zetaParallelThreshold = 32

// updateInstanceSet is Algorithm 4: the eligible instances with their ζ,
// sorted ascending (highest combination priority first). Services reduced
// to a single instance are excluded to preserve service continuity. With
// the incremental engine, ζ values are served from the per-service memo —
// a mutation of service i invalidates only i's row, because ζ(i,k) depends
// solely on i's candidate set and relying steps — so a serial round rescores
// one service instead of the whole deployment. Cache misses are scored in
// parallel when numerous — the "parallel" in the paper's parallel local
// search.
func (s *state) updateInstanceSet() []scoredInst {
	var out []scoredInst
	var miss []int // indices of out lacking a memoized ζ
	for _, svc := range s.in.Workload.ServicesUsed() {
		nodes := s.nodesOf(svc)
		// Line 2-3: single-instance services are skipped for continuity —
		// unless the cloud fallback exists, in which case even the last
		// instance may combine (the service then runs from the cloud).
		if len(nodes) <= 1 && s.in.Cloud == nil {
			continue
		}
		row := s.zetaCache[svc] // nil map lookup is fine in naive mode
		for _, k := range nodes {
			key := instKey{svc, k}
			if s.frozen[key] {
				continue
			}
			if z, ok := row[k]; ok {
				out = append(out, scoredInst{key, z})
			} else {
				miss = append(miss, len(out))
				out = append(out, scoredInst{key, 0})
			}
		}
	}
	if len(miss) >= zetaParallelThreshold && runtime.GOMAXPROCS(0) > 1 {
		if s.idx != nil {
			s.idx.Prewarm() // ζ workers read candidate lists concurrently
		}
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		chunk := (len(miss) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(miss) {
				hi = len(miss)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for _, i := range miss[lo:hi] {
					out[i].zeta = s.zeta(out[i].key.svc, out[i].key.node)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for _, i := range miss {
			out[i].zeta = s.zeta(out[i].key.svc, out[i].key.node)
		}
	}
	if s.zetaCache != nil {
		for _, i := range miss {
			row := s.zetaCache[out[i].key.svc]
			if row == nil {
				row = make(map[int]float64)
				s.zetaCache[out[i].key.svc] = row
			}
			row[out[i].key.node] = out[i].zeta
		}
	}
	// Removal priority: warm instances resist removal by WarmBias latency
	// units; exact ties still break cold-first (churn bias).
	rank := func(sc scoredInst) float64 {
		if s.warm[sc.key] && !math.IsInf(sc.zeta, 1) {
			return sc.zeta + s.warmBias
		}
		return sc.zeta
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		//socllint:ignore floateq exact compare keeps the order strict-weak; an epsilon here would break sort transitivity
		if ri != rj {
			return ri < rj
		}
		wi, wj := s.warm[out[i].key], s.warm[out[j].key]
		if wi != wj {
			return !wi // cold sorts first (combined first)
		}
		if out[i].key.svc != out[j].key.svc {
			return out[i].key.svc < out[j].key.svc
		}
		return out[i].key.node < out[j].key.node
	})
	return out
}

// removeInstance deletes (svc,node) and re-homes every relying step.
// It returns the list of (h,t) pairs whose reliance changed, for undo.
// Incrementally the relying steps come straight off the reverse index
// (invariant 2) and only routes that used the instance are invalidated
// (invariant 3); the naive fallback scans all (h,t). Both orders ascend.
func (s *state) removeInstance(svc, node int) [][2]int {
	s.setPlace(svc, node, false)
	delete(s.zetaCache, svc) // ζ row depends on svc's candidates + reliances
	s.cost -= s.in.Workload.Catalog.Service(svc).DeployCost
	if s.relyIdx != nil {
		s.invalidateRoutesRemoved(svc, node)
		moved := s.relyIdx[instKey{svc, node}]
		delete(s.relyIdx, instKey{svc, node})
		for _, ht := range moved {
			h, t := ht[0], ht[1]
			nk := s.pickReliance(h, t, -1)
			s.rel[h][t] = nk
			s.markRowDirty(h)
			s.relyAdd(svc, nk, h, t)
		}
		return moved
	}
	var moved [][2]int
	for h := range s.rel {
		req := &s.in.Workload.Requests[h]
		for t, k := range s.rel[h] {
			if k == node && req.Chain[t] == svc {
				s.rel[h][t] = s.pickReliance(h, t, -1)
				moved = append(moved, [2]int{h, t})
			}
		}
	}
	return moved
}

// --- large-scale parallel phase (Algorithm 3 lines 1–5) ---

func (s *state) parallelPhase(cfg Config, res *Result) bool {
	for round := 0; round < cfg.MaxRounds; round++ {
		if s.cost <= s.in.Budget {
			return true
		}
		list := s.updateInstanceSet()
		if len(list) == 0 {
			return s.cost <= s.in.Budget
		}
		batch := int(math.Ceil(cfg.Omega * float64(len(list))))
		if batch < 1 {
			batch = 1
		}
		if batch > len(list) {
			batch = len(list)
		}
		omega := list[:batch]
		omega = s.filterDependencyConflicts(omega)

		removedAny := false
		for _, inst := range omega {
			if s.cost <= s.in.Budget {
				break
			}
			if math.IsInf(inst.zeta, 1) {
				continue
			}
			// Never remove below one instance even if the batch contains
			// several instances of the same service — unless the cloud
			// fallback can absorb the service entirely. The live Count
			// already reflects this batch's removals, so it is compared
			// against the floor directly (an earlier revision subtracted a
			// per-service removal tally on top, double-counting removals and
			// skipping legal ones).
			floor := 1
			if s.in.Cloud != nil {
				floor = 0
			}
			if len(s.nodesOf(inst.key.svc)) <= floor {
				continue
			}
			if !s.place.Has(inst.key.svc, inst.key.node) {
				continue
			}
			s.removeInstance(inst.key.svc, inst.key.node)
			res.Combined++
			removedAny = true
		}
		res.ParallelRounds++
		if !removedAny {
			return s.cost <= s.in.Budget
		}
	}
	return s.cost <= s.in.Budget
}

// filterDependencyConflicts implements line 4 of Algorithm 3: when two
// batch instances belong to services adjacent in some user's dependency
// chain, the one with the larger ζ is discarded.
func (s *state) filterDependencyConflicts(omega []scoredInst) []scoredInst {
	adjacent := s.dependencyAdjacency()
	drop := make([]bool, len(omega))
	for i := 0; i < len(omega); i++ {
		for j := i + 1; j < len(omega); j++ {
			if drop[i] || drop[j] {
				continue
			}
			a, b := omega[i].key.svc, omega[j].key.svc
			if a == b || !adjacent[[2]int{a, b}] {
				continue
			}
			if omega[i].zeta >= omega[j].zeta {
				drop[i] = true
			} else {
				drop[j] = true
			}
		}
	}
	var out []scoredInst
	for i, inst := range omega {
		if !drop[i] {
			out = append(out, inst)
		}
	}
	return out
}

// dependencyAdjacency returns the symmetric set of service pairs adjacent
// in at least one request chain.
func (s *state) dependencyAdjacency() map[[2]int]bool {
	adj := map[[2]int]bool{}
	for h := range s.in.Workload.Requests {
		chain := s.in.Workload.Requests[h].Chain
		for t := 1; t < len(chain); t++ {
			adj[[2]int{chain[t-1], chain[t]}] = true
			adj[[2]int{chain[t], chain[t-1]}] = true
		}
	}
	return adj
}

// --- small-scale serial phase (Algorithm 3 lines 6–15) ---

func (s *state) serialPhase(cfg Config, res *Result) {
	for round := 0; round < cfg.MaxRounds; round++ {
		list := s.updateInstanceSet()
		if len(list) == 0 {
			return
		}
		inst := list[0] // argmin ζ
		if math.IsInf(inst.zeta, 1) {
			return
		}
		qBefore := s.starObjective()
		s.saveSnapshot(res)
		s.removeInstance(inst.key.svc, inst.key.node)
		res.SerialRounds++

		// Algorithm 5: storage planning after the combination.
		if !s.storagePlanning(res) {
			// Storage unsatisfiable at this size: keep combining (the
			// parallel loop's "continue" in line 17) — i.e., accept the
			// removal and move on.
			res.Combined++
			//socllint:ignore snapshotpair removal is committed, not rolled back: storage stays tight until further combining shrinks the deployment
			continue
		}

		// Constraint (4): exact deadline check with optimal routing. The
		// roll-back restores the full pre-step state — including any
		// storage migrations this step performed — so a rolled-back step
		// never leaves residual deadline damage.
		if s.deadlineViolated() {
			s.restoreSnapshot(res)
			s.frozen[inst.key] = true // never combine this instance again
			res.RolledBack++
			s.checkPhaseInvariants("after serial rollback")
			continue
		}

		qAfter := s.starObjective()
		delta := qBefore - qAfter + cfg.Theta
		if delta <= 0 {
			// Objective rose beyond the disturbance: revert and stop.
			s.restoreSnapshot(res)
			s.checkPhaseInvariants("after serial revert")
			return
		}
		res.Combined++
		s.checkPhaseInvariants("after accepted serial step")
	}
}

// snapState captures placement, reliances, cost, the frozen set and the
// migration counter for a full step undo. The frozen set must round-trip
// because the step's storage planning may migrate() a frozen instance away
// (un-freezing it); a rolled-back step must neither leak that deletion nor
// keep counting its undone migrations. Cached routes are struct-copied:
// their node slices are immutable once published (re-routes install fresh
// slices), so sharing them with the snapshot is safe.
//
// The buffers live on state.snap and are reused round over round — at most
// one snapshot is live at a time, and a restore copies contents back into
// the live structures rather than swapping slice headers, so the serial
// loop runs allocation-free.
type snapState struct {
	place       model.Placement
	rel         [][]int
	cost        float64
	frozen      map[instKey]bool
	migrated    int
	routes      []cachedRoute
	latRow      []float64
	latRowDirty []bool
}

func (s *state) saveSnapshot(res *Result) {
	sn := &s.snap
	if sn.place.X == nil {
		sn.place = s.place.Clone()
		sn.rel = make([][]int, len(s.rel))
		for h := range s.rel {
			sn.rel[h] = append([]int(nil), s.rel[h]...)
		}
		sn.frozen = make(map[instKey]bool, len(s.frozen))
		if s.routes != nil {
			sn.routes = make([]cachedRoute, len(s.routes))
		}
		if s.latRow != nil {
			sn.latRow = make([]float64, len(s.latRow))
			sn.latRowDirty = make([]bool, len(s.latRowDirty))
		}
	} else {
		for i := range s.place.X {
			//socllint:ignore placementmut write target is the snapshot buffer, never indexed; the live placement is only read
			copy(sn.place.X[i], s.place.X[i])
		}
		for h := range s.rel {
			copy(sn.rel[h], s.rel[h])
		}
		clear(sn.frozen)
	}
	for k, v := range s.frozen {
		sn.frozen[k] = v
	}
	sn.cost = s.cost
	sn.migrated = res.Migrated
	if s.routes != nil {
		copy(sn.routes, s.routes)
	}
	if s.latRow != nil {
		copy(sn.latRow, s.latRow)
		copy(sn.latRowDirty, s.latRowDirty)
	}
}

func (s *state) restoreSnapshot(res *Result) {
	sn := &s.snap
	for i := range s.place.X {
		//socllint:ignore placementmut wholesale restore: the Rebind below invalidates every cached list before the next read
		copy(s.place.X[i], sn.place.X[i])
	}
	for h := range s.rel {
		copy(s.rel[h], sn.rel[h])
	}
	s.cost = sn.cost
	clear(s.frozen)
	for k, v := range sn.frozen {
		s.frozen[k] = v
	}
	res.Migrated = sn.migrated
	if s.idx != nil {
		s.idx.Rebind(s.place) // contents changed in place: invalidate all
		s.rebuildRelianceIndex()
		copy(s.routes, sn.routes)
	}
	if s.latRow != nil {
		copy(s.latRow, sn.latRow)
		copy(s.latRowDirty, sn.latRowDirty)
	}
}

// deadlineViolated checks constraint (4) under exact optimal routing. A
// request whose chain lost its last instance is served by the cloud
// fallback when one exists — mirroring the evaluator — and violates only
// if the cloud completion time misses the deadline.
func (s *state) deadlineViolated() bool {
	if s.routes != nil {
		v := s.deadlineViolatedIncremental()
		s.checkDeadlineVerdict(v) // differential Eq. 4; no-op unless armed
		return v
	}
	return s.deadlineViolatedNaive()
}

// deadlineViolatedNaive routes every finite-deadline request from scratch —
// the ground-truth path behind Config.Naive and the invariant layer's
// differential check.
func (s *state) deadlineViolatedNaive() bool {
	for h := range s.in.Workload.Requests {
		req := &s.in.Workload.Requests[h]
		if math.IsInf(req.Deadline, 1) {
			continue
		}
		_, d, err := s.in.RouteOptimal(req, s.place)
		if err != nil {
			// Branch on the sentinel, not err != nil: only ErrNoInstance is
			// eligible for cloud fallback. (PR 1's stale-verdict bug hid in
			// exactly this kind of catch-all; any other error is a violation.)
			if !model.IsNoInstance(err) || s.in.Cloud == nil {
				return true
			}
			d = s.in.Cloud.CloudCompletionTime(s.in.Workload.Catalog, req)
		}
		if d > req.Deadline+model.FeasTol {
			return true
		}
	}
	return false
}

// --- storage planning (Algorithm 5) ---

// storagePlanning migrates low-priority instances off overflowing nodes to
// the nearest (fastest-link) node with room. Returns false when the total
// instance volume exceeds total storage (more combining required).
func (s *state) storagePlanning(res *Result) bool {
	in := s.in
	totalNeed := 0.0
	for i := 0; i < in.M(); i++ {
		totalNeed += float64(len(s.nodesOf(i))) * in.Workload.Catalog.Service(i).Storage
	}
	if totalNeed > in.Graph.TotalStorage()+model.FeasTol {
		return false
	}
	for k := 0; k < in.V(); k++ {
		guard := 0
		for in.StorageUsed(s.place, k) > in.Graph.Node(k).Storage+model.FeasTol {
			guard++
			if guard > in.M()+1 {
				return false
			}
			j := s.lowestPriorityService(k)
			if j == -1 {
				return false
			}
			if !s.migrate(j, k, res) {
				return false
			}
		}
	}
	return true
}

// lowestPriorityService returns the service on node k with the smallest
// local demand factor ρ (Definition 9), or -1 when the node is empty.
func (s *state) lowestPriorityService(k int) int {
	best, bestRho := -1, math.Inf(1)
	for i := 0; i < s.in.M(); i++ {
		if !s.place.Has(i, k) {
			continue
		}
		if rho := s.localDemandFactor(i, k); rho < bestRho {
			best, bestRho = i, rho
		}
	}
	return best
}

// localDemandFactor computes ρ_{v_k}^{m_i} by FuzzyAHP-weighted criteria:
// requesting users, chain-order factor ℝ, deployment cost, and (inverted)
// storage footprint. Higher ρ means higher keep-priority. ρ depends only on
// the workload — never on the placement — so values are memoized for the
// lifetime of the run.
func (s *state) localDemandFactor(svc, k int) float64 {
	if s.rhoCache == nil {
		return s.computeDemandFactor(svc, k)
	}
	if rho := s.rhoCache[svc][k]; !math.IsNaN(rho) {
		return rho
	}
	rho := s.computeDemandFactor(svc, k)
	s.rhoCache[svc][k] = rho
	return rho
}

// demandCount reads the precomputed demand table, falling back to the
// workload scan for hand-assembled states.
func (s *state) demandCount(k, svc int) int {
	if s.demandTab != nil {
		return s.demandTab[svc][k]
	}
	return s.in.Workload.DemandCount(k, svc)
}

func (s *state) computeDemandFactor(svc, k int) float64 {
	in := s.in
	cat := in.Workload.Catalog

	users := float64(s.demandCount(k, svc))
	var uf, ul, um float64
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		if req.Home != k {
			continue
		}
		switch req.Position(svc) {
		case "first":
			uf++
		case "last":
			ul++
		case "mid":
			um++
		}
	}
	order := 0.0
	if users > 0 {
		order = (3*uf + 2*ul + um) / users
	}

	// Normalizers: max user demand over all (node,service) pairs with this
	// service, max κ, max φ across the catalog.
	maxUsers := 1.0
	for q := 0; q < in.V(); q++ {
		if u := float64(s.demandCount(q, svc)); u > maxUsers {
			maxUsers = u
		}
	}
	maxKappa, maxPhi := 1.0, 1.0
	for i := 0; i < in.M(); i++ {
		m := cat.Service(i)
		if m.DeployCost > maxKappa {
			maxKappa = m.DeployCost
		}
		if m.Storage > maxPhi {
			maxPhi = m.Storage
		}
	}
	m := cat.Service(svc)
	w := s.weights
	return w[fuzzy.CritUsers]*(users/maxUsers) +
		w[fuzzy.CritOrder]*(order/3) + // ℝ ∈ [0,3]
		w[fuzzy.CritCost]*(m.DeployCost/maxKappa) +
		w[fuzzy.CritStorage]*(1-m.Storage/maxPhi)
}

// migrate moves service svc off node k to the best-connected node with room
// and no existing instance, updating reliances. Returns false when no
// target fits.
func (s *state) migrate(svc, k int, res *Result) bool {
	in := s.in
	phi := in.Workload.Catalog.Service(svc).Storage
	// Targets ordered by channel speed from k, fastest first (line 11).
	type cand struct {
		q    int
		cost float64
	}
	var cands []cand
	for q := 0; q < in.V(); q++ {
		if q == k {
			continue
		}
		cands = append(cands, cand{q, in.Graph.PathCost(k, q)})
	}
	sort.Slice(cands, func(i, j int) bool {
		//socllint:ignore floateq exact compare keeps the order strict-weak; an epsilon here would break sort transitivity
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].q < cands[j].q
	})
	for _, c := range cands {
		if s.place.Has(svc, c.q) {
			continue
		}
		if in.StorageUsed(s.place, c.q)+phi > in.Graph.Node(c.q).Storage+model.FeasTol {
			continue
		}
		// Move: deployment cost is unchanged (one instance either way).
		s.setPlace(svc, k, false)
		s.setPlace(svc, c.q, true)
		delete(s.zetaCache, svc)
		if s.relyIdx != nil {
			// The added instance at c.q can improve any route over svc, so
			// the whole service is invalidated (invariant 3, addition case).
			s.invalidateRoutesService(svc)
			moved := s.relyIdx[instKey{svc, k}]
			delete(s.relyIdx, instKey{svc, k})
			for _, ht := range moved {
				h, t := ht[0], ht[1]
				nk := s.pickReliance(h, t, -1)
				s.rel[h][t] = nk
				s.markRowDirty(h)
				s.relyAdd(svc, nk, h, t)
			}
		} else {
			for h := range s.rel {
				req := &in.Workload.Requests[h]
				for t, node := range s.rel[h] {
					if node == k && req.Chain[t] == svc {
						s.rel[h][t] = s.pickReliance(h, t, -1)
					}
				}
			}
		}
		delete(s.frozen, instKey{svc, k})
		res.Migrated++
		return true
	}
	return false
}
