package combine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/topology"
)

func buildInstance(nodes, users int, seed int64, budget float64) (*model.Instance, *partition.Result, model.Placement) {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		panic(err)
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
	part := partition.Build(in, partition.DefaultConfig())
	pre := preprov.Run(in, part)
	return in, part, pre.Placement
}

func TestRunMeetsBudget(t *testing.T) {
	in, part, pre := buildInstance(10, 40, 1, 8000)
	res := Run(in, part, pre, DefaultConfig())
	if !res.BudgetMet {
		t.Fatalf("budget not met: cost=%v budget=%v", in.DeployCost(res.Placement), in.Budget)
	}
	if got := in.DeployCost(res.Placement); got > in.Budget+1e-6 {
		t.Fatalf("final cost %v exceeds budget %v", got, in.Budget)
	}
}

func TestRunPreservesServiceContinuity(t *testing.T) {
	in, part, pre := buildInstance(10, 40, 2, 7000)
	res := Run(in, part, pre, DefaultConfig())
	for _, svc := range in.Workload.ServicesUsed() {
		if res.Placement.Count(svc) == 0 {
			t.Fatalf("service %d lost all instances", svc)
		}
	}
	ev := in.Evaluate(res.Placement)
	if ev.MissingInstances != 0 {
		t.Fatalf("evaluator reports %d missing instances", ev.MissingInstances)
	}
}

func TestRunNeverWorseThanPreprovObjective(t *testing.T) {
	// With a generous budget, combination is purely objective-driven; the
	// final exact objective should not exceed the pre-provisioned one by
	// more than the Θ slack per serial round (sanity: it usually improves).
	in, part, pre := buildInstance(10, 30, 3, 1e6)
	evPre := in.Evaluate(pre)
	res := Run(in, part, pre, DefaultConfig())
	evPost := in.Evaluate(res.Placement)
	slack := float64(res.SerialRounds+1) * DefaultConfig().Theta * 2
	if evPost.Objective > evPre.Objective+slack {
		t.Fatalf("objective degraded: pre=%v post=%v slack=%v", evPre.Objective, evPost.Objective, slack)
	}
}

func TestRunRespectsStorage(t *testing.T) {
	in, part, pre := buildInstance(10, 40, 4, 8000)
	res := Run(in, part, pre, DefaultConfig())
	if k := in.CheckStorage(res.Placement); k != -1 {
		t.Fatalf("storage violated at node %d", k)
	}
}

func TestImpossibleBudgetReported(t *testing.T) {
	in, part, pre := buildInstance(8, 30, 5, 8000)
	in.Budget = 1 // below even one-instance-per-service
	res := Run(in, part, pre, DefaultConfig())
	if res.BudgetMet {
		t.Fatal("impossible budget reported as met")
	}
	// Continuity still preserved: combining stops at one instance per
	// service rather than dropping services.
	for _, svc := range in.Workload.ServicesUsed() {
		if res.Placement.Count(svc) == 0 {
			t.Fatalf("service %d dropped under impossible budget", svc)
		}
	}
}

func TestDeadlineRollbackFreezesInstances(t *testing.T) {
	// Storage is made non-binding so that deadline roll-back is the only
	// corrective mechanism exercised; migrations would otherwise shift
	// latencies after the deadlines were fixed below.
	gcfg := topology.DefaultGenConfig()
	gcfg.StorageMin, gcfg.StorageMax = 1000, 2000
	g := topology.RandomGeometric(10, 0.35, gcfg, 6)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 6)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(30), 6)
	if err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
	part := partition.Build(in, partition.DefaultConfig())
	pre := preprov.Run(in, part).Placement
	// Tighten deadlines to just above the pre-provisioned latency so that
	// combinations quickly violate them and roll-backs occur.
	ev := in.Evaluate(pre)
	for h := range in.Workload.Requests {
		in.Workload.Requests[h].Deadline = ev.Latencies[h] * 1.02
	}
	res := Run(in, part, pre, DefaultConfig())
	evPost := in.Evaluate(res.Placement)
	if evPost.DeadlineViolated != 0 {
		t.Fatalf("%d deadline violations survived roll-back", evPost.DeadlineViolated)
	}
}

func TestOmegaControlsBatchAggressiveness(t *testing.T) {
	in1, part1, pre1 := buildInstance(10, 40, 7, 6000)
	cfgSmall := DefaultConfig()
	cfgSmall.Omega = 0.05
	resSmall := Run(in1, part1, pre1, cfgSmall)

	in2, part2, pre2 := buildInstance(10, 40, 7, 6000)
	cfgBig := DefaultConfig()
	cfgBig.Omega = 0.9
	resBig := Run(in2, part2, pre2, cfgBig)

	if resSmall.ParallelRounds < resBig.ParallelRounds {
		t.Fatalf("smaller ω should need ≥ as many parallel rounds: %d vs %d",
			resSmall.ParallelRounds, resBig.ParallelRounds)
	}
	_ = resSmall
	_ = resBig
}

func TestConfigDefaultsApplied(t *testing.T) {
	in, part, pre := buildInstance(8, 20, 8, 8000)
	res := Run(in, part, pre, Config{Omega: -1, Theta: -5})
	if in.DeployCost(res.Placement) > in.Budget+1e-6 {
		t.Fatal("defaulted config failed to meet budget")
	}
}

// Property: the combined placement is always a subset-or-migration of
// feasible sites, meets storage, keeps every used service alive, and its
// deploy cost never exceeds the pre-provisioned cost when the budget binds.
func TestCombineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		in, part, pre := buildInstance(8, 25, seed, 7000)
		preCost := in.DeployCost(pre)
		res := Run(in, part, pre, DefaultConfig())
		cost := in.DeployCost(res.Placement)
		if cost > preCost+1e-6 {
			return false // combining can only remove or migrate, never add
		}
		if in.CheckStorage(res.Placement) != -1 {
			return false
		}
		for _, svc := range in.Workload.ServicesUsed() {
			if res.Placement.Count(svc) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — same inputs, same placement.
func TestCombineDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		in1, part1, pre1 := buildInstance(8, 20, seed, 7000)
		in2, part2, pre2 := buildInstance(8, 20, seed, 7000)
		r1 := Run(in1, part1, pre1, DefaultConfig())
		r2 := Run(in2, part2, pre2, DefaultConfig())
		for i := 0; i < in1.M(); i++ {
			for k := 0; k < in1.V(); k++ {
				if r1.Placement.Has(i, k) != r2.Placement.Has(i, k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestZetaInfinityForLastReachableInstance(t *testing.T) {
	// Directly exercise ζ = +Inf: a service with exactly one instance must
	// be excluded from the instance set entirely.
	in, part, pre := buildInstance(8, 20, 9, 1e6)
	s := &state{in: in, part: part, place: pre.Clone(), frozen: map[instKey]bool{}}
	s.cost = in.DeployCost(s.place)
	s.buildStaticTables()
	s.initReliance()
	list := s.updateInstanceSet()
	for _, it := range list {
		if s.place.Count(it.key.svc) <= 1 {
			t.Fatalf("single-instance service %d in instance set", it.key.svc)
		}
	}
	// ζ must be finite for all listed instances (alternatives exist).
	for _, it := range list {
		if math.IsInf(it.zeta, 1) {
			t.Fatalf("infinite ζ for listed instance %+v", it.key)
		}
	}
}
