package combine

import (
	"testing"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/topology"
)

// assertRunsIdentical runs the combination twice — incremental engine on and
// off — and asserts bit-identical placements and statistics.
func assertRunsIdentical(t *testing.T, label string, in1, in2 *model.Instance,
	part1, part2 *partition.Result, pre1, pre2 model.Placement, cfg Config) {
	t.Helper()
	cfgNaive := cfg
	cfgNaive.Naive = true
	inc := Run(in1, part1, pre1, cfg)
	naive := Run(in2, part2, pre2, cfgNaive)

	for i := range inc.Placement.X {
		for k := range inc.Placement.X[i] {
			if inc.Placement.Has(i, k) != naive.Placement.Has(i, k) {
				t.Fatalf("%s: placement diverges at service %d node %d (incremental=%v)",
					label, i, k, inc.Placement.Has(i, k))
			}
		}
	}
	if inc.BudgetMet != naive.BudgetMet ||
		inc.Combined != naive.Combined ||
		inc.RolledBack != naive.RolledBack ||
		inc.Migrated != naive.Migrated ||
		inc.ParallelRounds != naive.ParallelRounds ||
		inc.SerialRounds != naive.SerialRounds {
		t.Fatalf("%s: stats diverge:\nincremental %+v\nnaive       %+v", label, inc, naive)
	}
	if naive.RouteCacheHits != 0 || naive.RouteRecomputed != 0 {
		t.Fatalf("%s: naive run reported cache telemetry %d/%d",
			label, naive.RouteCacheHits, naive.RouteRecomputed)
	}
}

// TestIncrementalMatchesNaive is the engine's differential proof: across
// seeded random instances — tight budgets (parallel phase active), generous
// budgets (serial phase dominant), tight deadlines (roll-backs + frozen
// churn), cloud fallback on and off — deadlineViolated, ζ and the reliance
// maintenance must reproduce the naive full-rescan results bit for bit.
func TestIncrementalMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in1, part1, pre1 := buildInstance(10, 40, seed, 6500)
		in2, part2, pre2 := buildInstance(10, 40, seed, 6500)
		assertRunsIdentical(t, "tight budget", in1, in2, part1, part2, pre1, pre2, DefaultConfig())
	}
	for seed := int64(1); seed <= 6; seed++ {
		in1, part1, pre1 := buildInstance(9, 35, seed, 1e6)
		in2, part2, pre2 := buildInstance(9, 35, seed, 1e6)
		assertRunsIdentical(t, "serial-dominant", in1, in2, part1, part2, pre1, pre2, DefaultConfig())
	}
	// Cloud fallback: floor drops to zero, last instances may be absorbed.
	for seed := int64(1); seed <= 5; seed++ {
		in1, part1, pre1 := buildInstance(8, 30, seed, 5000)
		in2, part2, pre2 := buildInstance(8, 30, seed, 5000)
		cc := model.DefaultCloudConfig()
		in1.Cloud = &cc
		in2.Cloud = &cc
		assertRunsIdentical(t, "cloud fallback", in1, in2, part1, part2, pre1, pre2, DefaultConfig())
	}
}

// TestIncrementalMatchesNaiveUnderRollbacks squeezes deadlines to just above
// the pre-provisioned latencies so the serial phase constantly rolls back,
// exercising snapshot/restore of the route cache, reliance index and frozen
// set.
func TestIncrementalMatchesNaiveUnderRollbacks(t *testing.T) {
	build := func(seed int64) (*model.Instance, *partition.Result, model.Placement) {
		gcfg := topology.DefaultGenConfig()
		g := topology.RandomGeometric(10, 0.35, gcfg, seed)
		cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
		w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(30), seed)
		if err != nil {
			t.Fatal(err)
		}
		in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
		part := partition.Build(in, partition.DefaultConfig())
		pre := preprov.Run(in, part).Placement
		ev := in.Evaluate(pre)
		for h := range in.Workload.Requests {
			in.Workload.Requests[h].Deadline = ev.Latencies[h] * 1.02
		}
		return in, part, pre
	}
	for seed := int64(1); seed <= 5; seed++ {
		in1, part1, pre1 := build(seed)
		in2, part2, pre2 := build(seed)
		assertRunsIdentical(t, "rollback-heavy", in1, in2, part1, part2, pre1, pre2, DefaultConfig())
	}
}

// TestIncrementalCacheTelemetry asserts the engine actually reuses routes:
// on a serial-dominant run the cache-hit count must dwarf recomputes.
func TestIncrementalCacheTelemetry(t *testing.T) {
	in, part, pre := buildInstance(10, 60, 2, 1e6)
	res := Run(in, part, pre, DefaultConfig())
	if res.SerialRounds == 0 {
		t.Skip("no serial rounds on this instance")
	}
	if res.RouteRecomputed == 0 && res.RouteCacheHits == 0 {
		t.Fatal("incremental run reported no routing telemetry")
	}
	if res.RouteCacheHits <= res.RouteRecomputed {
		t.Fatalf("cache ineffective: %d hits vs %d recomputes",
			res.RouteCacheHits, res.RouteRecomputed)
	}
}
