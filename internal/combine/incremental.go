package combine

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/model"
)

// This file is the combine-side half of the incremental routing engine.
// Three structures avoid the O(rounds·|U|·L·|V|²) rescans of the naive
// implementation (kept, bit-identical, behind Config.Naive):
//
//   - state.idx, a model.PlacementIndex: cached per-service candidate node
//     lists consumed by pickReliance / RouteOptimal, invalidated per
//     mutation instead of re-scanned per call;
//   - state.relyIdx, the reverse reliance index: for every live instance the
//     ascending list of (h,t) request steps relying on it, so ζ and
//     removeInstance walk exactly the relying steps;
//   - state.routes, the per-request optimal-route cache backing
//     deadlineViolated: a request is re-routed only when its cached optimal
//     route used a removed instance, or an instance of a chain service was
//     added (migration). Removing a node a route avoids cannot change that
//     request's optimum — the candidate set only shrank around a still-
//     available argmin — so cache hits are exact, not approximate.

// cachedRoute is one request's memoized deadline-check outcome.
type cachedRoute struct {
	nodes   []int   // optimal assignment; nil when cloud-served or missing
	lat     float64 // completion time under that assignment
	cloud   bool    // served by the cloud fallback (ErrNoInstance + Cloud)
	missing bool    // ErrNoInstance with no cloud: instant violation
	valid   bool
}

// initIncremental builds the index structures for a freshly initialized
// state (place, rel and cost already set).
func (s *state) initIncremental() {
	s.idx = model.NewPlacementIndex(s.place)
	s.scratch = &model.RouteScratch{}
	s.zetaCache = make(map[int]map[int]float64)
	s.rebuildRelianceIndex()

	reqs := s.in.Workload.Requests
	s.routes = make([]cachedRoute, len(reqs))
	s.chainReqs = make(map[int][]int)
	// starObjective's ψ-row cache: everything dirty until the first call.
	s.latRow = make([]float64, len(reqs))
	s.latRowDirty = make([]bool, len(reqs))
	for h := range s.latRowDirty {
		s.latRowDirty[h] = true
	}
	for h := range reqs {
		if math.IsInf(reqs[h].Deadline, 1) {
			continue // never deadline-checked, never cached
		}
		s.finite = append(s.finite, h)
		seen := map[int]bool{}
		for _, svc := range reqs[h].Chain {
			if !seen[svc] {
				seen[svc] = true
				s.chainReqs[svc] = append(s.chainReqs[svc], h)
			}
		}
	}
}

// --- reverse reliance index ---

// rebuildRelianceIndex recomputes relyIdx from rel. Iterating h then t keeps
// every per-instance list ascending in (h,t) — the same order the naive scan
// visits relying steps, so ζ sums float terms identically.
func (s *state) rebuildRelianceIndex() {
	s.relyIdx = make(map[instKey][][2]int)
	for h := range s.rel {
		req := &s.in.Workload.Requests[h]
		for t, k := range s.rel[h] {
			if k >= 0 {
				key := instKey{req.Chain[t], k}
				s.relyIdx[key] = append(s.relyIdx[key], [2]int{h, t})
			}
		}
	}
}

// relyAdd inserts (h,t) into the instance's sorted relying list.
func (s *state) relyAdd(svc, node, h, t int) {
	if node < 0 {
		return // cloud or unserved: no instance to index
	}
	key := instKey{svc, node}
	list := s.relyIdx[key]
	at := sort.Search(len(list), func(i int) bool {
		return list[i][0] > h || (list[i][0] == h && list[i][1] >= t)
	})
	list = append(list, [2]int{})
	copy(list[at+1:], list[at:])
	list[at] = [2]int{h, t}
	s.relyIdx[key] = list
}

// relyRemove drops (h,t) from the instance's relying list.
func (s *state) relyRemove(svc, node, h, t int) {
	if node < 0 {
		return
	}
	key := instKey{svc, node}
	list := s.relyIdx[key]
	at := sort.Search(len(list), func(i int) bool {
		return list[i][0] > h || (list[i][0] == h && list[i][1] >= t)
	})
	if at < len(list) && list[at] == [2]int{h, t} {
		list = append(list[:at], list[at+1:]...)
		if len(list) == 0 {
			delete(s.relyIdx, key)
		} else {
			s.relyIdx[key] = list
		}
	}
}

// --- route cache invalidation ---

// invalidateRoutesRemoved marks dirty every cached route that executed some
// chain step on the removed instance (svc, node). Routes avoiding the node
// keep their optimum: removal only shrinks their candidate sets around a
// still-available argmin.
func (s *state) invalidateRoutesRemoved(svc, node int) {
	if s.routes == nil {
		return
	}
	for _, h := range s.chainReqs[svc] {
		e := &s.routes[h]
		if !e.valid || e.nodes == nil {
			continue
		}
		chain := s.in.Workload.Requests[h].Chain
		for t, k := range e.nodes {
			if k == node && chain[t] == svc {
				e.valid = false
				break
			}
		}
	}
}

// invalidateRoutesService marks dirty every cached route whose chain
// contains svc. Required when an instance of svc is *added* (migration
// target): a larger candidate set can strictly improve a route that never
// touched the old node.
func (s *state) invalidateRoutesService(svc int) {
	if s.routes == nil {
		return
	}
	for _, h := range s.chainReqs[svc] {
		s.routes[h].valid = false
	}
}

// --- incremental deadline check ---

// rerouteParallelThreshold is the dirty-request count above which the
// re-route fan-out goes parallel (mirroring model.EvaluateRouted's pattern;
// per-request routing is independent, so results are deterministic).
const rerouteParallelThreshold = 64

// rerouteOne refreshes request h's cache entry under the current placement.
func (s *state) rerouteOne(h int, sc *model.RouteScratch) {
	req := &s.in.Workload.Requests[h]
	a, d, err := s.in.RouteOptimalIndexed(req, s.idx, sc)
	e := &s.routes[h]
	*e = cachedRoute{valid: true}
	switch {
	case err == nil:
		e.nodes, e.lat = a.Nodes, d
	case model.IsNoInstance(err) && s.in.Cloud != nil:
		// Same sentinel discipline as the naive deadlineViolated path: only
		// ErrNoInstance routes to the cloud; anything else counts as missing
		// (infinite latency), keeping the two paths' verdicts identical.
		e.cloud = true
		e.lat = s.in.Cloud.CloudCompletionTime(s.in.Workload.Catalog, req)
	default:
		e.missing = true
		e.lat = math.Inf(1)
	}
}

// deadlineViolatedIncremental re-routes only invalidated requests, fanning
// the subset out over GOMAXPROCS workers when large, then checks constraint
// (4) against the cache. The verdict is identical to routing every request
// from scratch.
func (s *state) deadlineViolatedIncremental() bool {
	dirty := s.dirtyBuf[:0]
	for _, h := range s.finite {
		if !s.routes[h].valid {
			dirty = append(dirty, h)
		}
	}
	s.dirtyBuf = dirty
	s.recomputed += len(dirty)
	s.cacheHits += len(s.finite) - len(dirty)

	if len(dirty) >= rerouteParallelThreshold && runtime.GOMAXPROCS(0) > 1 {
		s.idx.Prewarm() // concurrent NodesOf reads must not rebuild
		workers := runtime.GOMAXPROCS(0)
		chunk := (len(dirty) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(dirty) {
				hi = len(dirty)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				sc := &model.RouteScratch{}
				for _, h := range dirty[lo:hi] {
					s.rerouteOne(h, sc)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for _, h := range dirty {
			s.rerouteOne(h, s.scratch)
		}
	}

	for _, h := range s.finite {
		e := &s.routes[h]
		if e.missing || e.lat > s.in.Workload.Requests[h].Deadline+model.FeasTol {
			return true
		}
	}
	return false
}
