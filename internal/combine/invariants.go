package combine

import (
	"repro/internal/invariant"
	"repro/internal/model"
)

// This file wires internal/invariant into the combine phase boundaries. All
// checks are armed by the `soclinvariants` build tag and compile to nothing
// otherwise; with the tag on they recompute the incremental engine's three
// cached structures (candidate index, reverse reliance index, route cache)
// from scratch and panic on the first divergence — the runtime counterpart
// of the placementmut/snapshotpair analyzers, catching what escapes them.

// checkPhaseInvariants validates the mutable state against ground truth:
//
//  1. PlacementIndex ↔ Placement coherence (epoch-memoized: the O(M·N)
//     scan reruns only when the index mutated since the last verified one);
//  2. the cost accumulator against Eq. 1 recomputed;
//  3. reliance validity: every served step relies on a live instance;
//  4. the reverse reliance index against a full rescan of rel;
//  5. route-cache exactness: every valid entry equals fresh optimal routing.
func (s *state) checkPhaseInvariants(where string) {
	if !invariant.Enabled {
		return
	}
	s.idxWatch.Check(s.idx)
	invariant.Assertf(invariant.AlmostEq(s.cost, s.in.DeployCost(s.place), 1e-6),
		"combine %s: cost accumulator %.9g != recomputed deploy cost %.9g", where, s.cost, s.in.DeployCost(s.place))
	for h := range s.rel {
		req := &s.in.Workload.Requests[h]
		for t, k := range s.rel[h] {
			if k >= 0 {
				invariant.Assertf(s.place.Has(req.Chain[t], k),
					"combine %s: rel[%d][%d] = node %d but service %d has no instance there", where, h, t, k, req.Chain[t])
			}
		}
	}
	s.checkRelianceIndex(where)
	s.checkRouteCache(where)
	s.checkStarRows(where)
}

// checkStarRows verifies starObjective's ψ-row cache: every clean row must
// equal its from-scratch re-derivation bitwise — a dirty flag missed by some
// rel mutation site would silently skew the serial phase's accept/revert
// decisions otherwise.
func (s *state) checkStarRows(where string) {
	if !invariant.Enabled || s.latRow == nil {
		return
	}
	for h := range s.latRow {
		if s.latRowDirty[h] {
			continue
		}
		fresh := s.starRow(h)
		invariant.Assertf(invariant.AlmostEq(s.latRow[h], fresh, 0),
			"combine %s: cached ψ row %d = %v != recomputed %v", where, h, s.latRow[h], fresh)
	}
}

// checkRelianceIndex verifies relyIdx against rel in both directions: every
// indexed (h,t) must rely on exactly that instance with lists ascending
// (ζ sums float terms in list order — order is semantic, not cosmetic), and
// every served step of rel must be indexed exactly once.
func (s *state) checkRelianceIndex(where string) {
	if !invariant.Enabled || s.relyIdx == nil {
		return
	}
	indexed := 0
	for key, list := range s.relyIdx {
		invariant.Assertf(len(list) > 0, "combine %s: relyIdx[%v] is an empty list, not a deleted key", where, key)
		prev := [2]int{-1, -1}
		for _, ht := range list {
			h, t := ht[0], ht[1]
			invariant.Assertf(prev[0] < h || (prev[0] == h && prev[1] < t),
				"combine %s: relyIdx[%v] not ascending at (%d,%d)", where, key, h, t)
			prev = ht
			invariant.Assertf(s.in.Workload.Requests[h].Chain[t] == key.svc && s.rel[h][t] == key.node,
				"combine %s: relyIdx[%v] lists (%d,%d) but rel[%d][%d] = %d", where, key, h, t, h, t, s.rel[h][t])
			indexed++
		}
	}
	served := 0
	for h := range s.rel {
		for _, k := range s.rel[h] {
			if k >= 0 {
				served++
			}
		}
	}
	invariant.Assertf(indexed == served,
		"combine %s: relyIdx tracks %d steps, rel serves %d", where, indexed, served)
}

// checkRouteCache verifies the "cache hits are exact" claim: every valid
// entry must reproduce routing the request from scratch under the current
// placement — same assignment, bitwise-same latency, same fallback class.
func (s *state) checkRouteCache(where string) {
	if !invariant.Enabled || s.routes == nil {
		return
	}
	for _, h := range s.finite {
		e := &s.routes[h]
		if !e.valid {
			continue
		}
		req := &s.in.Workload.Requests[h]
		a, d, err := s.in.RouteOptimal(req, s.place)
		switch {
		case err == nil:
			invariant.Assertf(!e.cloud && !e.missing,
				"combine %s: request %d cached as cloud/missing but is routable", where, h)
			invariant.Assertf(invariant.AlmostEq(e.lat, d, 0),
				"combine %s: request %d cached latency %v != fresh %v", where, h, e.lat, d)
			invariant.Assertf(len(e.nodes) == len(a.Nodes), "combine %s: request %d cached route length mismatch", where, h)
			for t := range a.Nodes {
				invariant.Assertf(e.nodes[t] == a.Nodes[t],
					"combine %s: request %d cached route step %d = node %d, fresh = %d", where, h, t, e.nodes[t], a.Nodes[t])
			}
		case model.IsNoInstance(err) && s.in.Cloud != nil:
			invariant.Assertf(e.cloud,
				"combine %s: request %d is cloud-eligible but cached as %+v", where, h, *e)
		default:
			invariant.Assertf(e.missing,
				"combine %s: request %d is unroutable but cached as %+v", where, h, *e)
		}
	}
}

// checkDeadlineVerdict asserts the incremental deadline verdict equals the
// naive one routed from scratch — the differential form of Eq. 4 (absolute
// feasibility is not an invariant mid-run: intermediate placements may
// legitimately violate deadlines and be rolled back).
func (s *state) checkDeadlineVerdict(incremental bool) {
	if !invariant.Enabled {
		return
	}
	s.checkRouteCache("deadline check")
	naive := s.deadlineViolatedNaive()
	invariant.Assertf(incremental == naive,
		"combine deadline check: incremental verdict %v != naive %v", incremental, naive)
}
