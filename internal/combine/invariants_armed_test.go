//go:build soclinvariants

package combine

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/model"
)

// TestInvariantArmedDifferential is satellite coverage for the runtime
// invariant layer: with soclinvariants on, every Run below executes the
// phase-boundary checks (index coherence, cost recount, reliance index
// rescan, route-cache exactness, differential Eq. 4 verdicts) — any
// divergence panics the test — and the incremental/naive outputs must still
// be bit-identical. Under the plain build this file does not compile, and
// the same scenarios run (unchecked) via differential_test.go.
func TestInvariantArmedDifferential(t *testing.T) {
	if !invariant.Enabled {
		t.Fatal("build tag soclinvariants must arm the invariant layer")
	}
	for seed := int64(1); seed <= 3; seed++ {
		in1, part1, pre1 := buildInstance(10, 40, seed, 6500)
		in2, part2, pre2 := buildInstance(10, 40, seed, 6500)
		assertRunsIdentical(t, "armed tight budget", in1, in2, part1, part2, pre1, pre2, DefaultConfig())
	}
	// Cloud fallback exercises the sentinel (ErrNoInstance) branches of the
	// route cache and the deadline differential.
	in1, part1, pre1 := buildInstance(8, 30, 2, 5000)
	in2, part2, pre2 := buildInstance(8, 30, 2, 5000)
	cc := model.DefaultCloudConfig()
	in1.Cloud = &cc
	in2.Cloud = &cc
	assertRunsIdentical(t, "armed cloud fallback", in1, in2, part1, part2, pre1, pre2, DefaultConfig())
}
