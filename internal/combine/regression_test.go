package combine

import (
	"testing"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/partition"
	"repro/internal/topology"
)

// TestParallelBatchRemovesMultipleInstancesOfOneService pins the floor-guard
// fix in parallelPhase: a single ω-batch containing several instances of the
// same service must be allowed to remove all but the last one. The earlier
// revision subtracted a per-service removal tally from the live count, double
// counting each removal and skipping legal ones — forcing extra rounds.
func TestParallelBatchRemovesMultipleInstancesOfOneService(t *testing.T) {
	cat := msvc.NewCatalog()
	svc, err := cat.Add("solo", 100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddFlow([]msvc.ServiceID{svc}); err != nil {
		t.Fatal(err)
	}
	g := topology.RandomGeometric(6, 0.9, topology.DefaultGenConfig(), 11)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(12), 11)
	if err != nil {
		t.Fatal(err)
	}
	// Three instances at cost 300 against a budget of 100: exactly two
	// removals are needed, and with ω=1 the whole list is one batch.
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 100}
	part := partition.Build(in, partition.DefaultConfig())
	pre := model.NewPlacement(in.M(), in.V())
	for k := 0; k < 3; k++ {
		pre.Set(svc, k, true)
	}

	for _, naive := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Omega = 1
		cfg.Naive = naive
		res := Run(in, part, pre, cfg)
		if !res.BudgetMet {
			t.Fatalf("naive=%v: budget not met", naive)
		}
		if res.Placement.Count(svc) != 1 {
			t.Fatalf("naive=%v: %d instances survive, want 1", naive, res.Placement.Count(svc))
		}
		if res.Combined != 2 {
			t.Fatalf("naive=%v: Combined = %d, want 2", naive, res.Combined)
		}
		// The double-counting bug needed a second round for the second
		// removal; the fixed guard completes the batch in one.
		if res.ParallelRounds != 1 {
			t.Fatalf("naive=%v: ParallelRounds = %d, want 1", naive, res.ParallelRounds)
		}
	}
}

// TestRollbackRestoresFrozenAndMigrated pins the snapshot fix: migrate()
// un-freezes the moved instance and bumps res.Migrated, so a step that is
// rolled back must restore both — the earlier restore() leaked the frozen
// deletion (the instance became combinable again) and kept counting the
// undone migration.
func TestRollbackRestoresFrozenAndMigrated(t *testing.T) {
	for _, naive := range []bool{false, true} {
		in, part, pre := buildInstance(8, 20, 10, 1e6)
		s := &state{in: in, part: part, place: pre.Clone(), frozen: map[instKey]bool{}}
		s.cost = in.DeployCost(s.place)
		s.buildStaticTables()
		s.initReliance()
		if !naive {
			s.initIncremental()
		}

		res := &Result{Migrated: 3} // pre-existing migrations must survive
		migrated := false
		for _, svc := range in.Workload.ServicesUsed() {
			for _, k := range append([]int(nil), s.nodesOf(svc)...) {
				key := instKey{svc, k}
				s.frozen[key] = true
				s.saveSnapshot(res)
				// migrate mutates nothing when it fails, so probing is safe.
				if !s.migrate(svc, k, res) {
					delete(s.frozen, key)
					continue
				}
				migrated = true
				if s.frozen[key] {
					t.Fatalf("naive=%v: migrate left %v frozen", naive, key)
				}
				if res.Migrated != 4 {
					t.Fatalf("naive=%v: Migrated = %d after migrate, want 4", naive, res.Migrated)
				}
				s.restoreSnapshot(res)
				if !s.frozen[key] {
					t.Fatalf("naive=%v: rollback leaked frozen entry %v", naive, key)
				}
				if res.Migrated != 3 {
					t.Fatalf("naive=%v: Migrated = %d after rollback, want 3", naive, res.Migrated)
				}
				if !s.place.Has(svc, k) {
					t.Fatalf("naive=%v: rollback did not restore instance (%d,%d)", naive, svc, k)
				}
				for i := range pre.X {
					for n := range pre.X[i] {
						if s.place.Has(i, n) != pre.Has(i, n) {
							t.Fatalf("naive=%v: placement differs from snapshot at (%d,%d)", naive, i, n)
						}
					}
				}
				break
			}
			if migrated {
				break
			}
		}
		if !migrated {
			t.Fatalf("naive=%v: no migratable instance found", naive)
		}
	}
}

// TestDeadlineCheckUsesCloudFallback pins the dead cloud-absorption fix:
// when a request's chain has lost its last instance, deadlineViolated must
// fall back to the cloud completion time instead of treating ErrNoInstance
// as an instant violation — otherwise the serial phase can never absorb a
// last instance into the cloud and rolls back forever.
func TestDeadlineCheckUsesCloudFallback(t *testing.T) {
	for _, naive := range []bool{false, true} {
		in, part, pre := buildInstance(8, 20, 12, 1e6)
		cc := model.DefaultCloudConfig()
		in.Cloud = &cc
		// Finite but generous deadlines: the check must actually run and
		// must pass via the cloud path.
		for h := range in.Workload.Requests {
			in.Workload.Requests[h].Deadline = 1e12
		}
		s := &state{in: in, part: part, place: pre.Clone(), frozen: map[instKey]bool{}}
		s.cost = in.DeployCost(s.place)
		s.buildStaticTables()
		s.initReliance()
		if !naive {
			s.initIncremental()
		}

		svc := in.Workload.Requests[0].Chain[0]
		for _, k := range append([]int(nil), s.nodesOf(svc)...) {
			s.removeInstance(svc, k)
		}
		if s.place.Count(svc) != 0 {
			t.Fatalf("naive=%v: service %d not fully removed", naive, svc)
		}
		if s.deadlineViolated() {
			t.Fatalf("naive=%v: cloud-served request flagged as violation", naive)
		}
		// Shrink one affected deadline below its cloud completion time: now
		// the same cloud path must report the violation.
		req := &in.Workload.Requests[0]
		req.Deadline = in.Cloud.CloudCompletionTime(in.Workload.Catalog, req) * 0.5
		if !s.deadlineViolated() {
			t.Fatalf("naive=%v: missed cloud deadline not flagged", naive)
		}
	}
}
