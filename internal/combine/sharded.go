package combine

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/invariant"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/stats"
	"repro/internal/topology"
)

// This file is the sharded combine path: the full partition → pre-provision
// → combine pipeline run independently per topology shard, merged by index
// order, and stitched at the boundaries with a DeltaEvaluator fix-up pass.
// It is what takes the solve from one global O(|V|²) table build plus
// O(|U|·instances²) routing to S independent problems of 1/S the size — the
// million-user scale path of ext_scale.
//
// Determinism follows the sweep-executor discipline (experiments.runSweep):
// shard s's work is a pure function of the instance, the plan, and the
// derived seed stats.SplitSeed(Seed, "shard/<s>"); results land in slot s of
// a pre-sized slice regardless of which worker computes them; every
// cross-shard phase (merge, reconciliation, accounting) walks shards in
// ascending index order. Workers=1 and Workers=N therefore produce bitwise
// identical placements and objectives, which TestRunShardedWorkerDeterminism
// pins.
//
// Reconciliation: per-shard solves never see cross-boundary reliances — a
// chain whose user sits one hop from a neighboring shard's gateway may be
// served better by that gateway than by an instance its own solve kept. The
// fix-up pass rebuilds, per shard, a halo sub-instance (owned nodes plus the
// neighbors' facing gateways, owned requests plus servable halo requests),
// binds a model.DeltaEvaluator to the merged placement restricted to that
// view, and probes the removal of every owned gateway instance through the
// apply/score/rollback machinery: removals that strictly improve the halo
// objective without increasing unserved or deadline-violated counts commit
// to the merged placement; everything else rolls back. Removal-only fix-ups
// keep the merge trivially storage- and budget-monotone (Eq. 5/6 can only
// improve), which the armed invariant layer rechecks per shard.

// ShardedConfig configures RunSharded.
type ShardedConfig struct {
	// Partition and Combine configure each shard's pipeline stages.
	Partition partition.Config
	// Combine holds the per-shard combination hyper-parameters.
	Combine Config
	// Workers bounds the shard worker pool: 0 = GOMAXPROCS, 1 = serial (no
	// goroutines). Placements and objectives are identical either way.
	Workers int
	// Seed is the root seed; shard s derives stats.SplitSeed(Seed,
	// "shard/<s>") for every seeded component it binds (the reconciliation
	// evaluator's routing seed — inert under optimal routing, but derived
	// per the repo-wide discipline so seeded modes stay reproducible).
	Seed int64
	// NoReconcile skips the boundary fix-up pass (ablation knob).
	NoReconcile bool
	// Naive ignores the plan and solves the whole instance as a single
	// shard: the global-combine reference path of the differential tests and
	// the ext_scale comparison. It finalizes a full copy of the graph, so it
	// works — at full O(|V|²) cost — even on unfinalized substrates.
	Naive bool
}

// DefaultShardedConfig returns per-shard defaults matching the global
// pipeline's (median-ξ partitioning, ω=0.25, Θ=1).
func DefaultShardedConfig() ShardedConfig {
	return ShardedConfig{Partition: partition.DefaultConfig(), Combine: DefaultConfig()}
}

// ShardRun is one shard's solve telemetry.
type ShardRun struct {
	Shard     int
	Nodes     int // owned nodes
	Requests  int // owned requests
	Instances int // instances placed by the shard's solve
	BudgetMet bool
	SolveTime time.Duration
}

// ShardedResult is the merged outcome of a sharded combine.
type ShardedResult struct {
	// Placement is the merged global placement (parent node IDs).
	Placement model.Placement
	// Cost is the exact global deployment cost of the merged placement.
	Cost float64
	// LatencySum, Unserved and DeadlineViolated aggregate each shard's own
	// requests evaluated on its halo view (owned nodes plus facing
	// gateways). Routing a request within its halo can only overestimate
	// the latency a global evaluator would find, so Objective is an upper
	// bound on the true global objective of Placement — the bounded-regret
	// differential test measures the gap against the Naive reference.
	LatencySum       float64
	Unserved         int
	DeadlineViolated int
	// Objective is λ·Cost + (1−λ)·LatencySum with the halo-scoped latencies.
	Objective float64
	// BudgetMet reports Cost ≤ the parent budget; per-shard continuity
	// floors can push the merged cost past it on starved budgets.
	BudgetMet bool
	// Shards holds per-shard telemetry, indexed by shard.
	Shards []ShardRun
	// ReconcileProbes and ReconcileRemoved count boundary fix-up activity.
	ReconcileProbes  int
	ReconcileRemoved int
	// SolveTime covers slicing + per-shard solves + merge; ReconcileTime and
	// AccountTime the fix-up pass and the final per-shard evaluations.
	SolveTime     time.Duration
	ReconcileTime time.Duration
	AccountTime   time.Duration
}

// boundaryImproveTol is the strict-improvement margin a boundary removal must
// clear: ties and float-noise-level wins roll back, keeping the fix-up pass
// deterministic under summation-order changes.
const boundaryImproveTol = 1e-9

// RunSharded solves the instance per shard of plan and merges the results;
// see the file comment for the discipline. The parent graph may be
// unfinalized — every stage works on finalized per-shard extracts. The plan
// must cover the instance's nodes exactly; users and service chains follow
// their home node's shard.
func RunSharded(in *model.Instance, plan *topology.ShardPlan, cfg ShardedConfig) (*ShardedResult, error) {
	//socllint:ignore detrand elapsed wall time is telemetry, never branched on
	t0 := time.Now()
	if cfg.Naive || plan == nil {
		all := make([]int, in.V())
		for v := range all {
			all[v] = v
		}
		var err error
		plan, err = topology.PlanShards(in.Graph, [][]int{all})
		if err != nil {
			return nil, err
		}
	}
	if len(plan.NodeShard) != in.V() {
		return nil, fmt.Errorf("combine: plan covers %d nodes, instance has %d", len(plan.NodeShard), in.V())
	}
	S := plan.NumShards
	M := in.M()

	// Owned requests per shard and per node, ascending by parent index.
	reqsByShard := make([][]int, S)
	reqsByNode := make([][]int, in.V())
	for h := range in.Workload.Requests {
		home := in.Workload.Requests[h].Home
		if home < 0 || home >= in.V() {
			return nil, fmt.Errorf("combine: request %d homed on out-of-range node %d", h, home)
		}
		s := plan.NodeShard[home]
		reqsByShard[s] = append(reqsByShard[s], h)
		reqsByNode[home] = append(reqsByNode[home], h)
	}

	// Budget split: each shard gets its demand share of the parent budget,
	// floored at the service-continuity cost Σκ over the services its own
	// requests use (preprov deploys each used service at least once; a budget
	// below that floor is unmeetable by construction).
	kappa := make([]float64, M)
	for i := range kappa {
		kappa[i] = in.Workload.Catalog.Service(i).DeployCost
	}
	budgets := make([]float64, S)
	totalReqs := float64(len(in.Workload.Requests))
	for s := 0; s < S; s++ {
		used := make([]bool, M)
		floor := 0.0
		for _, h := range reqsByShard[s] {
			for _, svc := range in.Workload.Requests[h].Chain {
				if !used[svc] {
					used[svc] = true
					floor += kappa[svc]
				}
			}
		}
		share := 0.0
		if totalReqs > 0 {
			share = in.Budget * float64(len(reqsByShard[s])) / totalReqs
		}
		budgets[s] = share
		if budgets[s] < floor {
			budgets[s] = floor
		}
	}

	// Phase 1: independent per-shard solves through a slot-indexed worker
	// pool (the runSweep pattern: out[s] is written only by the worker that
	// drew index s, so parallel and serial runs are identical).
	type shardOut struct {
		si    *model.ShardInstance
		local model.Placement
		stat  ShardRun
		err   error
	}
	outs := make([]shardOut, S)
	solve := func(s int) shardOut {
		//socllint:ignore detrand elapsed wall time is telemetry, never branched on
		t := time.Now()
		own := plan.Shards[s]
		reqs := reqsByShard[s]
		st := ShardRun{Shard: s, Nodes: len(own), Requests: len(reqs)}
		si, err := model.NewShardInstance(in, own, len(own), reqs, len(reqs))
		if err != nil {
			return shardOut{err: fmt.Errorf("combine: shard %d: %w", s, err)}
		}
		if len(reqs) == 0 {
			// No demand: nothing to place on this shard.
			st.BudgetMet = true
			//socllint:ignore detrand elapsed wall time is telemetry, never branched on
			st.SolveTime = time.Since(t)
			return shardOut{si: si, local: model.NewPlacement(M, len(own)), stat: st}
		}
		si.Sub.Budget = budgets[s]
		part := partition.Build(si.Sub, cfg.Partition)
		pre := preprov.Run(si.Sub, part)
		res := Run(si.Sub, part, pre.Placement, cfg.Combine)
		st.Instances = res.Placement.Instances()
		st.BudgetMet = res.BudgetMet
		//socllint:ignore detrand elapsed wall time is telemetry, never branched on
		st.SolveTime = time.Since(t)
		// Per-shard Eq. 5/6 recheck before the merge; Eq. 4 is rechecked by
		// CheckShardMerge once the merged placement is evaluated.
		invariant.CheckStorage(si.Sub, res.Placement, fmt.Sprintf("sharded: shard %d solve", s))
		if res.BudgetMet {
			invariant.CheckBudget(si.Sub, res.Placement, fmt.Sprintf("sharded: shard %d solve", s))
		}
		return shardOut{si: si, local: res.Placement, stat: st}
	}
	forEachShard(S, cfg.Workers, outs, solve)
	for s := range outs {
		if outs[s].err != nil {
			return nil, outs[s].err
		}
	}

	// Phase 2: index-ordered merge. Shards own disjoint node columns, so the
	// merge is conflict-free by construction.
	merged := model.NewPlacement(M, in.V())
	res := &ShardedResult{Placement: merged, Shards: make([]ShardRun, S)}
	for s := 0; s < S; s++ {
		outs[s].si.ScatterOwn(outs[s].local, merged)
		res.Shards[s] = outs[s].stat
	}
	invariant.CheckStorage(in, merged, "sharded: merge") // Eq. 6 needs no finalized parent
	//socllint:ignore detrand elapsed wall time is telemetry, never branched on
	res.SolveTime = time.Since(t0)

	buildHalo := func(s int) (*model.ShardInstance, error) {
		own := plan.Shards[s]
		halo := plan.Halo(s)
		nodes := make([]int, 0, len(own)+len(halo))
		nodes = append(nodes, own...)
		nodes = append(nodes, halo...)
		reqs := append([]int(nil), reqsByShard[s]...)
		ownReqs := len(reqs)
		if len(halo) > 0 {
			// Halo requests (homed on the neighbors' facing gateways) ride
			// along only when the restricted view can serve their whole
			// chain; an unservable halo request would pin the base objective
			// at +Inf and mask every boundary improvement.
			avail := make([]bool, M)
			for i := 0; i < M; i++ {
				for _, v := range nodes {
					if merged.X[i][v] {
						avail[i] = true
						break
					}
				}
			}
			var haloReqs []int
			for _, hn := range halo {
				for _, h := range reqsByNode[hn] {
					servable := true
					for _, svc := range in.Workload.Requests[h].Chain {
						if !avail[svc] {
							servable = false
							break
						}
					}
					if servable {
						haloReqs = append(haloReqs, h)
					}
				}
			}
			sort.Ints(haloReqs)
			reqs = append(reqs, haloReqs...)
		}
		si, err := model.NewShardInstance(in, nodes, len(own), reqs, ownReqs)
		if err != nil {
			return nil, fmt.Errorf("combine: shard %d halo: %w", s, err)
		}
		si.Sub.Budget = math.Inf(1) // fix-up scoring is objective-driven, not budget-gated
		return si, nil
	}

	// Phase 3: boundary reconciliation, serial in ascending shard order (each
	// shard's view must include the removals neighbors already committed).
	//
	// Cross-shard safety: when shard s sheds an instance, its requests may now
	// route through a neighbor's boundary instance — a reliance s's guard can
	// see but the neighbor's cannot (s's interior requests are outside every
	// other shard's halo view). After each shard commits, the boundary
	// instances its own requests route through are pinned, and later shards
	// skip pinned candidates. Without the pin-set, shard s can shed an
	// instance relying on t's gateway and t (reconciling later, guarding only
	// its own halo view) can shed that gateway, stranding s's requests.
	haloInst := make([]*model.ShardInstance, S)
	if !cfg.NoReconcile {
		//socllint:ignore detrand elapsed wall time is telemetry, never branched on
		tr := time.Now()
		pinned := make(map[[2]int]bool) // (service, parent node) → relied upon
		for s := 0; s < S; s++ {
			if len(plan.Halo(s)) == 0 {
				continue
			}
			si, err := buildHalo(s)
			if err != nil {
				return nil, err
			}
			haloInst[s] = si
			de := model.NewDeltaEvaluator(si.Sub, si.Restrict(merged), model.RouteModeOptimal,
				stats.SplitSeed(cfg.Seed, fmt.Sprintf("shard/%d", s)))
			base := de.Eval()
			// Candidates: the shard's own gateway instances, ascending
			// (service, node) — the only placements a cross-shard reliance
			// can make redundant.
			gwLocal := localIndex(plan.Gateways[s], si.Nodes[:si.OwnNodes])
			for i := 0; i < M; i++ {
				for _, k := range gwLocal {
					if !de.Placement().Has(i, k) || pinned[[2]int{i, si.Nodes[k]}] {
						continue
					}
					res.ReconcileProbes++
					obj, _ := de.ProbeRemoval(i, k)
					if !(obj < base.Objective-boundaryImproveTol) {
						continue
					}
					dl := de.Apply(i, k, false)
					ev := de.Eval()
					if ev.Unserved() <= base.Unserved() && ev.DeadlineViolated <= base.DeadlineViolated {
						merged.Set(i, si.Nodes[k], false)
						base = ev
						res.ReconcileRemoved++
					} else {
						// The objective improved by shedding cost while a
						// request went unserved or late: roll back.
						de.Revert(dl)
					}
				}
			}
			// Pin every boundary instance this shard's own requests route
			// through under the committed placement. Over-pinning (a route
			// that merely prefers a boundary instance it does not need) only
			// forgoes a later removal; under-pinning strands requests.
			for h := 0; h < si.OwnReqs; h++ {
				rt := base.Routes[h]
				if rt.Nodes == nil {
					continue
				}
				chain := si.Sub.Workload.Requests[h].Chain
				for j, kn := range rt.Nodes {
					if kn >= si.OwnNodes {
						pinned[[2]int{chain[j], si.Nodes[kn]}] = true
					}
				}
			}
		}
		//socllint:ignore detrand elapsed wall time is telemetry, never branched on
		res.ReconcileTime = time.Since(tr)
	}

	// Phase 4: final accounting — each shard's own requests evaluated on its
	// halo view under the final merged placement (neighbors' reconciliation
	// may have moved boundary instances, so views rebuild or re-advance).
	//socllint:ignore detrand elapsed wall time is telemetry, never branched on
	ta := time.Now()
	type acct struct {
		lat      float64
		unserved int
		late     int
		err      error
	}
	accts := make([]acct, S)
	account := func(s int) acct {
		si := haloInst[s]
		if si == nil {
			var err error
			si, err = buildHalo(s)
			if err != nil {
				return acct{err: err}
			}
		}
		ev := si.Sub.Evaluate(si.Restrict(merged))
		invariant.CheckShardMerge(si.Sub, ev, false, fmt.Sprintf("sharded: shard %d account", s))
		a := acct{}
		for h := 0; h < si.OwnReqs; h++ {
			l := ev.Latencies[h]
			a.lat += l
			if math.IsInf(l, 1) {
				a.unserved++
			} else if l > si.Sub.Workload.Requests[h].Deadline+model.FeasTol {
				a.late++
			}
		}
		return a
	}
	forEachShard(S, cfg.Workers, accts, account)
	for s := 0; s < S; s++ {
		if accts[s].err != nil {
			return nil, accts[s].err
		}
		res.LatencySum += accts[s].lat
		res.Unserved += accts[s].unserved
		res.DeadlineViolated += accts[s].late
	}
	//socllint:ignore detrand elapsed wall time is telemetry, never branched on
	res.AccountTime = time.Since(ta)
	res.Cost = in.DeployCost(merged)
	res.Objective = in.Objective(res.Cost, res.LatencySum)
	res.BudgetMet = res.Cost <= in.Budget+model.FeasTol
	return res, nil
}

// forEachShard runs fn over shard indices through a slot-indexed worker pool
// (out[s] is written only by the worker that drew s; workers ≤ 1 runs the
// pure serial path). The runSweep pattern, minus the per-point seeds the
// callers derive themselves.
func forEachShard[R any](n, workers int, out []R, fn func(s int) R) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for s := 0; s < n; s++ {
			out[s] = fn(s)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range idx {
				out[s] = fn(s)
			}
		}()
	}
	for s := 0; s < n; s++ {
		idx <- s
	}
	close(idx)
	wg.Wait()
}

// localIndex maps the sorted global node IDs in want to their local indices
// within the sorted prefix own of a shard's node map.
func localIndex(want, own []int) []int {
	out := make([]int, 0, len(want))
	j := 0
	for _, v := range want {
		for j < len(own) && own[j] < v {
			j++
		}
		if j < len(own) && own[j] == v {
			out = append(out, j)
			j++
		}
	}
	return out
}
