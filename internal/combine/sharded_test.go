package combine

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/stats"
	"repro/internal/topology"
)

// clusteredInstance builds a small clustered instance plus its region shard
// plan: the fixture of every sharded-combine test. The substrate is left
// unfinalized (RunSharded never needs the parent finalized); tests that want
// global queries finalize a full Subgraph copy themselves.
func clusteredInstance(t *testing.T, users, regions, perRegion int, lambda float64, seed int64) (*model.Instance, *topology.ShardPlan) {
	t.Helper()
	g, regionNodes := topology.Clustered(topology.DefaultClusterConfig(regions, perRegion), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	wcfg := msvc.DefaultWorkloadConfig(users)
	wcfg.DeadlineSlack = 0
	wcfg.Hotspot = 0
	w, err := msvc.GenerateWorkload(cat, g, wcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	kappa := 0.0
	for i := 0; i < cat.Len(); i++ {
		kappa += cat.Service(i).DeployCost
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: lambda, Budget: 1.5 * float64(regions) * kappa}
	plan, err := topology.PlanShards(g, regionNodes)
	if err != nil {
		t.Fatal(err)
	}
	return in, plan
}

// globalEval finalizes a full copy of the instance's graph and evaluates the
// placement globally — the ground truth the halo-scoped accounting bounds.
func globalEval(in *model.Instance, p model.Placement) (*model.Instance, *model.Evaluation) {
	all := make([]int, in.V())
	for v := range all {
		all[v] = v
	}
	gc := topology.Subgraph(in.Graph, all)
	gc.Finalize()
	gin := &model.Instance{Graph: gc, Workload: in.Workload, Lambda: in.Lambda, Budget: in.Budget}
	return gin, gin.Evaluate(p)
}

// The ISSUE-pinned bounded-regret differential: on small instances the
// sharded objective must stay within factor 2 of the global reference. The
// halo-scoped sharded objective is itself an upper bound on the true global
// objective of the merged placement, so the test also checks that ordering.
func TestRunShardedBoundedRegret(t *testing.T) {
	const regretBound = 2.0
	for _, users := range []int{60, 240} {
		in, plan := clusteredInstance(t, users, 4, 8, 0.05, int64(100+users))
		cfg := DefaultShardedConfig()
		cfg.Seed = stats.SplitSeed(1, "regret")
		sharded, err := RunSharded(in, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Naive = true
		global, err := RunSharded(in, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Unserved != 0 || global.Unserved != 0 {
			t.Fatalf("users=%d: unserved sharded=%d global=%d, want 0",
				users, sharded.Unserved, global.Unserved)
		}
		if math.IsInf(sharded.Objective, 1) || math.IsInf(global.Objective, 1) {
			t.Fatalf("users=%d: infinite objective (sharded=%v global=%v)",
				users, sharded.Objective, global.Objective)
		}
		if sharded.Objective > regretBound*global.Objective {
			t.Fatalf("users=%d: sharded objective %.4g exceeds %.1f× global %.4g",
				users, sharded.Objective, regretBound, global.Objective)
		}
		// Halo-scoped accounting upper-bounds the true global objective of
		// the merged placement, and the merged placement serves everyone.
		gin, ev := globalEval(in, sharded.Placement)
		trueObj := gin.Objective(gin.DeployCost(sharded.Placement), ev.LatencySum)
		if trueObj > sharded.Objective+1e-6 {
			t.Fatalf("users=%d: true objective %.6g above halo-scoped bound %.6g",
				users, trueObj, sharded.Objective)
		}
		for h := range in.Workload.Requests {
			if math.IsInf(ev.Latencies[h], 1) {
				t.Fatalf("users=%d: request %d unserved under global evaluation", users, h)
			}
		}
	}
}

// The ISSUE-pinned determinism differential: Workers=1 and Workers=N produce
// bitwise identical merged placements and accounting.
func TestRunShardedWorkerDeterminism(t *testing.T) {
	in, plan := clusteredInstance(t, 180, 4, 7, 0.05, 42)
	run := func(workers int) *ShardedResult {
		cfg := DefaultShardedConfig()
		cfg.Seed = stats.SplitSeed(7, "determinism")
		cfg.Workers = workers
		res, err := RunSharded(in, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{4, 0} {
		par := run(workers)
		for i := range serial.Placement.X {
			for v := range serial.Placement.X[i] {
				if serial.Placement.X[i][v] != par.Placement.X[i][v] {
					t.Fatalf("workers=%d: placement bit (%d,%d) differs", workers, i, v)
				}
			}
		}
		if math.Float64bits(serial.Objective) != math.Float64bits(par.Objective) {
			t.Fatalf("workers=%d: objective %v != serial %v", workers, par.Objective, serial.Objective)
		}
		if math.Float64bits(serial.Cost) != math.Float64bits(par.Cost) {
			t.Fatalf("workers=%d: cost %v != serial %v", workers, par.Cost, serial.Cost)
		}
		if math.Float64bits(serial.LatencySum) != math.Float64bits(par.LatencySum) {
			t.Fatalf("workers=%d: latency sum %v != serial %v", workers, par.LatencySum, serial.LatencySum)
		}
		if serial.Unserved != par.Unserved || serial.DeadlineViolated != par.DeadlineViolated ||
			serial.ReconcileRemoved != par.ReconcileRemoved {
			t.Fatalf("workers=%d: counts differ", workers)
		}
	}
}

// Boundary reconciliation must never strand a request: the cross-shard
// pin-set forbids a shard from removing an instance an earlier shard's
// committed fix-up now relies on. Pinned by the 240-user case, where the
// unpinned version strands interior requests.
func TestRunShardedReconcileNeverStrands(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		in, plan := clusteredInstance(t, 240, 4, 8, 0.5, seed)
		cfg := DefaultShardedConfig()
		cfg.Seed = stats.SplitSeed(seed, "strand")
		res, err := RunSharded(in, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Unserved != 0 {
			t.Fatalf("seed %d: %d requests stranded after reconciliation", seed, res.Unserved)
		}
		_, ev := globalEval(in, res.Placement)
		for h := range in.Workload.Requests {
			if math.IsInf(ev.Latencies[h], 1) {
				t.Fatalf("seed %d: request %d unserved under global evaluation", seed, h)
			}
		}
	}
}

// The Naive path on a single-shard plan is the plain global pipeline: its
// placement must equal partition → preprov → combine run directly.
func TestRunShardedNaiveMatchesDirectPipeline(t *testing.T) {
	in, plan := clusteredInstance(t, 120, 4, 6, 0.05, 13)
	cfg := DefaultShardedConfig()
	cfg.Seed = stats.SplitSeed(1, "naive")
	cfg.Naive = true
	res, err := RunSharded(in, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Direct pipeline over a finalized copy. The single shard's budget is
	// max(full budget, continuity floor) = the full budget here.
	gin, _ := globalEval(in, res.Placement)
	part := partition.Build(gin, cfg.Partition)
	pre := preprov.Run(gin, part)
	direct := Run(gin, part, pre.Placement, cfg.Combine)

	for i := range res.Placement.X {
		for v := range res.Placement.X[i] {
			if res.Placement.X[i][v] != direct.Placement.X[i][v] {
				t.Fatalf("placement bit (%d,%d): naive sharded %v, direct %v",
					i, v, res.Placement.X[i][v], direct.Placement.X[i][v])
			}
		}
	}
}

// Zero-request shards must solve to empty placements without error.
func TestRunShardedEmptyShard(t *testing.T) {
	g, regions := topology.Clustered(topology.DefaultClusterConfig(3, 5), 21)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 21)
	// All users homed in region 0: regions 1 and 2 carry no demand.
	reqs := make([]msvc.Request, 0, 10)
	flows := cat.Flows()
	for h := 0; h < 10; h++ {
		reqs = append(reqs, msvc.Request{
			ID: h, Home: regions[0][h%len(regions[0])], Chain: flows[h%len(flows)],
			DataIn: 1, DataOut: 1,
			EdgeData: edgeOnes(len(flows[h%len(flows)]) - 1),
			Deadline: math.Inf(1),
		})
	}
	in := &model.Instance{
		Graph:    g,
		Workload: &msvc.Workload{Catalog: cat, Requests: reqs},
		Lambda:   0.05,
		Budget:   1e6,
	}
	plan, err := topology.PlanShards(g, regions)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultShardedConfig()
	res, err := RunSharded(in, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 0 {
		t.Fatalf("unserved = %d", res.Unserved)
	}
	for s := 1; s <= 2; s++ {
		if res.Shards[s].Instances != 0 {
			t.Fatalf("empty shard %d placed %d instances", s, res.Shards[s].Instances)
		}
	}
	// No instance may land outside region 0's nodes plus nothing else.
	for i := range res.Placement.X {
		for v := range res.Placement.X[i] {
			if res.Placement.X[i][v] && plan.NodeShard[v] != 0 {
				t.Fatalf("instance (%d,%d) on empty shard %d", i, v, plan.NodeShard[v])
			}
		}
	}
}

func edgeOnes(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
