// Package config defines a JSON scenario format for SoCL experiments so
// that instances — topology, microservice catalog, workload, and objective
// parameters — can be stored, shared, and replayed outside Go code. The
// cmd/socl CLI accepts a scenario file via -scenario.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

// Scenario is the root document.
type Scenario struct {
	Name   string  `json:"name"`
	Seed   int64   `json:"seed"`
	Lambda float64 `json:"lambda"`
	Budget float64 `json:"budget"`

	Topology TopologySpec `json:"topology"`
	Catalog  CatalogSpec  `json:"catalog"`
	Workload WorkloadSpec `json:"workload"`
}

// TopologySpec selects a generator or an explicit node/link list.
type TopologySpec struct {
	// Kind: "geometric", "stadium", "ringhubs", "grid", or "explicit".
	Kind   string  `json:"kind"`
	Nodes  int     `json:"nodes,omitempty"`
	Radius float64 `json:"radius,omitempty"` // geometric
	Rows   int     `json:"rows,omitempty"`   // grid
	Cols   int     `json:"cols,omitempty"`   // grid
	Hubs   int     `json:"hubs,omitempty"`   // ringhubs

	// Gen overrides the default capacity/bandwidth ranges when non-nil.
	Gen *GenRanges `json:"gen,omitempty"`

	// Explicit topology (Kind == "explicit").
	NodeList []NodeSpec `json:"node_list,omitempty"`
	LinkList []LinkSpec `json:"link_list,omitempty"`
}

// GenRanges mirrors topology.GenConfig for JSON.
type GenRanges struct {
	ComputeMin float64 `json:"compute_min"`
	ComputeMax float64 `json:"compute_max"`
	StorageMin float64 `json:"storage_min"`
	StorageMax float64 `json:"storage_max"`
	RateMin    float64 `json:"rate_min"`
	RateMax    float64 `json:"rate_max"`
}

// NodeSpec is one explicit edge server.
type NodeSpec struct {
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Compute float64 `json:"compute"`
	Storage float64 `json:"storage"`
}

// LinkSpec is one explicit link with its effective rate.
type LinkSpec struct {
	A    int     `json:"a"`
	B    int     `json:"b"`
	Rate float64 `json:"rate"`
}

// CatalogSpec selects an embedded application dataset, a synthetic
// catalog, or an explicit service list.
type CatalogSpec struct {
	// Kind: "eshop", "sock-shop", "piggymetrics", "hotel-reservation",
	// "synthetic", or "explicit".
	Kind        string `json:"kind"`
	NumServices int    `json:"num_services,omitempty"` // synthetic

	// Dataset overrides κ/q/φ ranges when non-nil (eshop & synthetic).
	Dataset *DatasetRanges `json:"dataset,omitempty"`

	// Explicit catalog (Kind == "explicit").
	Services []ServiceSpec `json:"services,omitempty"`
	Flows    [][]string    `json:"flows,omitempty"`
}

// DatasetRanges mirrors msvc.DatasetConfig for JSON.
type DatasetRanges struct {
	CostMin    float64 `json:"cost_min"`
	CostMax    float64 `json:"cost_max"`
	ComputeMin float64 `json:"compute_min"`
	ComputeMax float64 `json:"compute_max"`
	StorageMin float64 `json:"storage_min"`
	StorageMax float64 `json:"storage_max"`
}

// ServiceSpec is one explicit microservice.
type ServiceSpec struct {
	Name       string  `json:"name"`
	DeployCost float64 `json:"deploy_cost"`
	Compute    float64 `json:"compute"`
	Storage    float64 `json:"storage"`
}

// WorkloadSpec mirrors msvc.WorkloadConfig plus the user count.
type WorkloadSpec struct {
	NumUsers      int     `json:"num_users"`
	EdgeDataMin   float64 `json:"edge_data_min"`
	EdgeDataMax   float64 `json:"edge_data_max"`
	InDataMin     float64 `json:"in_data_min"`
	InDataMax     float64 `json:"in_data_max"`
	OutDataMin    float64 `json:"out_data_min"`
	OutDataMax    float64 `json:"out_data_max"`
	Hotspot       float64 `json:"hotspot"`
	HotspotNodes  int     `json:"hotspot_nodes"`
	DeadlineSlack float64 `json:"deadline_slack"`
	TruncateProb  float64 `json:"truncate_prob"`
}

// Default returns the standard evaluation scenario (10 geometric nodes, the
// eShop catalog, 40 users, λ=0.5, budget 8000).
func Default() *Scenario {
	w := msvc.DefaultWorkloadConfig(40)
	return &Scenario{
		Name: "default", Seed: 1, Lambda: 0.5, Budget: 8000,
		Topology: TopologySpec{Kind: "geometric", Nodes: 10, Radius: 0.35},
		Catalog:  CatalogSpec{Kind: "eshop"},
		Workload: WorkloadSpec{
			NumUsers:    40,
			EdgeDataMin: w.EdgeDataMin, EdgeDataMax: w.EdgeDataMax,
			InDataMin: w.InDataMin, InDataMax: w.InDataMax,
			OutDataMin: w.OutDataMin, OutDataMax: w.OutDataMax,
			Hotspot: w.Hotspot, HotspotNodes: w.HotspotNodes,
			DeadlineSlack: w.DeadlineSlack, TruncateProb: w.TruncateProb,
		},
	}
}

// Load reads and validates a scenario from a JSON file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Save writes the scenario as indented JSON.
func (sc *Scenario) Save(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks scenario-level invariants (instance-level ones are
// re-checked by model.Instance.Validate after Build).
func (sc *Scenario) Validate() error {
	if sc.Lambda < 0 || sc.Lambda > 1 {
		return fmt.Errorf("config: lambda %v outside [0,1]", sc.Lambda)
	}
	if sc.Budget <= 0 {
		return fmt.Errorf("config: non-positive budget %v", sc.Budget)
	}
	switch sc.Topology.Kind {
	case "geometric", "stadium", "ringhubs":
		if sc.Topology.Nodes <= 0 {
			return fmt.Errorf("config: topology %q needs nodes > 0", sc.Topology.Kind)
		}
	case "grid":
		if sc.Topology.Rows <= 0 || sc.Topology.Cols <= 0 {
			return fmt.Errorf("config: grid needs rows/cols > 0")
		}
	case "explicit":
		if len(sc.Topology.NodeList) == 0 {
			return fmt.Errorf("config: explicit topology has no nodes")
		}
	default:
		return fmt.Errorf("config: unknown topology kind %q", sc.Topology.Kind)
	}
	switch sc.Catalog.Kind {
	case "eshop", "sock-shop", "piggymetrics", "hotel-reservation":
	case "synthetic":
		if sc.Catalog.NumServices < 2 {
			return fmt.Errorf("config: synthetic catalog needs num_services ≥ 2")
		}
	case "explicit":
		if len(sc.Catalog.Services) == 0 || len(sc.Catalog.Flows) == 0 {
			return fmt.Errorf("config: explicit catalog needs services and flows")
		}
	default:
		return fmt.Errorf("config: unknown catalog kind %q", sc.Catalog.Kind)
	}
	if sc.Workload.NumUsers < 0 {
		return fmt.Errorf("config: negative user count")
	}
	return nil
}

// Build materializes the scenario into a solvable instance.
func (sc *Scenario) Build() (*model.Instance, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	g, err := sc.buildTopology()
	if err != nil {
		return nil, err
	}
	cat, err := sc.buildCatalog()
	if err != nil {
		return nil, err
	}
	wcfg := msvc.WorkloadConfig{
		NumUsers:    sc.Workload.NumUsers,
		EdgeDataMin: sc.Workload.EdgeDataMin, EdgeDataMax: sc.Workload.EdgeDataMax,
		InDataMin: sc.Workload.InDataMin, InDataMax: sc.Workload.InDataMax,
		OutDataMin: sc.Workload.OutDataMin, OutDataMax: sc.Workload.OutDataMax,
		Hotspot: sc.Workload.Hotspot, HotspotNodes: sc.Workload.HotspotNodes,
		DeadlineSlack: sc.Workload.DeadlineSlack, TruncateProb: sc.Workload.TruncateProb,
	}
	w, err := msvc.GenerateWorkload(cat, g, wcfg, sc.Seed)
	if err != nil {
		return nil, err
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: sc.Lambda, Budget: sc.Budget}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

func (sc *Scenario) buildTopology() (*topology.Graph, error) {
	gcfg := topology.DefaultGenConfig()
	if r := sc.Topology.Gen; r != nil {
		gcfg.ComputeMin, gcfg.ComputeMax = r.ComputeMin, r.ComputeMax
		gcfg.StorageMin, gcfg.StorageMax = r.StorageMin, r.StorageMax
		gcfg.RateMin, gcfg.RateMax = r.RateMin, r.RateMax
	}
	switch sc.Topology.Kind {
	case "geometric":
		radius := sc.Topology.Radius
		if radius <= 0 {
			radius = 0.35
		}
		return topology.RandomGeometric(sc.Topology.Nodes, radius, gcfg, sc.Seed), nil
	case "stadium":
		return topology.Stadium(sc.Topology.Nodes, gcfg, sc.Seed), nil
	case "ringhubs":
		hubs := sc.Topology.Hubs
		if hubs <= 0 {
			hubs = sc.Topology.Nodes / 4
		}
		if hubs < 1 {
			hubs = 1
		}
		return topology.RingHubs(sc.Topology.Nodes-hubs, hubs, gcfg, sc.Seed), nil
	case "grid":
		return topology.Grid(sc.Topology.Rows, sc.Topology.Cols, gcfg, sc.Seed), nil
	case "explicit":
		g := topology.New(len(sc.Topology.NodeList))
		for _, n := range sc.Topology.NodeList {
			g.AddNode(n.X, n.Y, n.Compute, n.Storage)
		}
		for _, l := range sc.Topology.LinkList {
			if err := g.AddLink(l.A, l.B, l.Rate); err != nil {
				return nil, fmt.Errorf("config: %w", err)
			}
		}
		g.Finalize()
		return g, nil
	}
	return nil, fmt.Errorf("config: unknown topology kind %q", sc.Topology.Kind)
}

func (sc *Scenario) buildCatalog() (*msvc.Catalog, error) {
	dcfg := msvc.DefaultDatasetConfig()
	if r := sc.Catalog.Dataset; r != nil {
		dcfg.CostMin, dcfg.CostMax = r.CostMin, r.CostMax
		dcfg.ComputeMin, dcfg.ComputeMax = r.ComputeMin, r.ComputeMax
		dcfg.StorageMin, dcfg.StorageMax = r.StorageMin, r.StorageMax
	}
	switch sc.Catalog.Kind {
	case "eshop", "sock-shop", "piggymetrics", "hotel-reservation":
		return msvc.CatalogByName(sc.Catalog.Kind, dcfg, sc.Seed)
	case "synthetic":
		return msvc.SyntheticCatalog(sc.Catalog.NumServices, dcfg, sc.Seed), nil
	case "explicit":
		cat := msvc.NewCatalog()
		for _, s := range sc.Catalog.Services {
			if _, err := cat.Add(s.Name, s.DeployCost, s.Compute, s.Storage); err != nil {
				return nil, fmt.Errorf("config: %w", err)
			}
		}
		for fi, flow := range sc.Catalog.Flows {
			chain := make([]msvc.ServiceID, len(flow))
			for i, name := range flow {
				id, ok := cat.Lookup(name)
				if !ok {
					return nil, fmt.Errorf("config: flow %d references unknown service %q", fi, name)
				}
				chain[i] = id
			}
			if err := cat.AddFlow(chain); err != nil {
				return nil, fmt.Errorf("config: %w", err)
			}
		}
		return cat, nil
	}
	return nil, fmt.Errorf("config: unknown catalog kind %q", sc.Catalog.Kind)
}
