package config

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestDefaultScenarioBuilds(t *testing.T) {
	sc := Default()
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.V() != 10 || len(in.Workload.Requests) != 40 {
		t.Fatalf("built %d nodes, %d users", in.V(), len(in.Workload.Requests))
	}
	// The default scenario must be solvable end to end.
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Evaluation.MissingInstances != 0 {
		t.Fatal("default scenario unsolvable")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sc := Default()
	sc.Name = "roundtrip"
	sc.Topology.Kind = "stadium"
	sc.Topology.Nodes = 12
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" || got.Topology.Kind != "stadium" || got.Topology.Nodes != 12 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	in1, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	in2, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in1.V() != in2.V() || len(in1.Workload.Requests) != len(in2.Workload.Requests) {
		t.Fatal("round-tripped scenario builds a different instance")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Scenario){
		func(s *Scenario) { s.Lambda = 2 },
		func(s *Scenario) { s.Budget = 0 },
		func(s *Scenario) { s.Topology.Kind = "???" },
		func(s *Scenario) { s.Topology.Kind = "geometric"; s.Topology.Nodes = 0 },
		func(s *Scenario) { s.Topology.Kind = "grid"; s.Topology.Rows = 0 },
		func(s *Scenario) { s.Topology.Kind = "explicit"; s.Topology.NodeList = nil },
		func(s *Scenario) { s.Catalog.Kind = "???" },
		func(s *Scenario) { s.Catalog.Kind = "synthetic"; s.Catalog.NumServices = 1 },
		func(s *Scenario) { s.Catalog.Kind = "explicit" },
		func(s *Scenario) { s.Workload.NumUsers = -1 },
	}
	for i, mutate := range cases {
		sc := Default()
		mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Fatalf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestExplicitTopologyAndCatalog(t *testing.T) {
	sc := Default()
	sc.Topology = TopologySpec{
		Kind: "explicit",
		NodeList: []NodeSpec{
			{X: 0, Y: 0, Compute: 10, Storage: 20},
			{X: 1, Y: 0, Compute: 15, Storage: 20},
		},
		LinkList: []LinkSpec{{A: 0, B: 1, Rate: 40}},
	}
	sc.Catalog = CatalogSpec{
		Kind: "explicit",
		Services: []ServiceSpec{
			{Name: "auth", DeployCost: 300, Compute: 1, Storage: 1},
			{Name: "api", DeployCost: 400, Compute: 2, Storage: 1},
		},
		Flows: [][]string{{"auth", "api"}},
	}
	sc.Workload.NumUsers = 5
	sc.Workload.HotspotNodes = 2
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.V() != 2 || in.M() != 2 {
		t.Fatalf("explicit build: V=%d M=%d", in.V(), in.M())
	}
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Evaluation.Feasible() {
		t.Fatalf("explicit scenario infeasible: %+v", sol.Evaluation)
	}
}

func TestExplicitCatalogErrors(t *testing.T) {
	sc := Default()
	sc.Catalog = CatalogSpec{
		Kind:     "explicit",
		Services: []ServiceSpec{{Name: "a", DeployCost: 1, Compute: 1, Storage: 1}},
		Flows:    [][]string{{"a", "zzz"}},
	}
	if _, err := sc.Build(); err == nil {
		t.Fatal("unknown flow service accepted")
	}
	sc.Catalog.Flows = [][]string{{"a", "a"}}
	if _, err := sc.Build(); err == nil {
		t.Fatal("duplicate consecutive flow accepted")
	}
}

func TestExplicitTopologyLinkError(t *testing.T) {
	sc := Default()
	sc.Topology = TopologySpec{
		Kind:     "explicit",
		NodeList: []NodeSpec{{Compute: 10, Storage: 5}},
		LinkList: []LinkSpec{{A: 0, B: 7, Rate: 10}},
	}
	if _, err := sc.Build(); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestGenRangeOverride(t *testing.T) {
	sc := Default()
	sc.Topology.Gen = &GenRanges{
		ComputeMin: 50, ComputeMax: 60,
		StorageMin: 9, StorageMax: 10,
		RateMin: 5, RateMax: 6,
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range in.Graph.Nodes() {
		if n.Compute < 50 || n.Compute > 60 {
			t.Fatalf("compute %v outside override", n.Compute)
		}
	}
}

func TestAllGeneratorKinds(t *testing.T) {
	for _, kind := range []string{"geometric", "stadium", "ringhubs", "grid"} {
		sc := Default()
		sc.Topology.Kind = kind
		sc.Topology.Nodes = 12
		sc.Topology.Rows, sc.Topology.Cols = 3, 4
		in, err := sc.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if in.V() == 0 {
			t.Fatalf("%s: empty graph", kind)
		}
	}
}
