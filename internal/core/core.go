// Package core is the public façade of the SoCL framework — the paper's
// primary contribution. It orchestrates the three stages of Section IV:
//
//  1. region-based initial partitioning (package partition, Algorithm 1),
//  2. instance pre-provisioning (package preprov, Algorithm 2), and
//  3. multi-scale combination (package combine, Algorithms 3–5),
//
// and returns the provisioning decision 𝒳 together with its exact
// evaluation (optimal per-request routing, cost, latency, objective) and
// per-stage timing statistics.
//
// Typical use:
//
//	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
//	sol, err := core.Solve(in, core.DefaultConfig())
//	if err != nil { ... }
//	fmt.Println(sol.Evaluation.Objective)
package core

import (
	"time"

	"repro/internal/combine"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/preprov"
)

// Config bundles the hyper-parameters of all three stages.
type Config struct {
	Partition partition.Config
	Combine   combine.Config
}

// DefaultConfig returns the paper-aligned defaults: auto ξ at the median
// virtual-link speed, ω = 0.25, Θ = 1.
func DefaultConfig() Config {
	return Config{
		Partition: partition.DefaultConfig(),
		Combine:   combine.DefaultConfig(),
	}
}

// Stats reports per-stage wall-clock times and combination counters.
type Stats struct {
	PartitionTime time.Duration
	PreprovTime   time.Duration
	CombineTime   time.Duration
	Total         time.Duration

	PreprovInstances int  // instances after Algorithm 2
	FinalInstances   int  // instances in 𝒳
	Combined         int  // instances removed by Algorithm 3
	RolledBack       int  // deadline roll-backs
	Migrated         int  // storage migrations
	BudgetMet        bool // parallel phase reached Σ𝒦 ≤ 𝒦^max

	// Incremental routing-engine telemetry (zero with combine.Config.Naive):
	// deadline checks served from the per-request route cache vs re-routed.
	RouteCacheHits  int
	RouteRecomputed int
}

// Solution is the complete output of a SoCL run.
type Solution struct {
	Placement  model.Placement
	Evaluation *model.Evaluation
	Stats      Stats

	// Intermediate artifacts, exposed for inspection and experiments.
	Partition *partition.Result
	Preprov   *preprov.Result
}

// Solve runs the full SoCL pipeline on the instance.
func Solve(in *model.Instance, cfg Config) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sol := &Solution{}
	start := time.Now()

	t0 := time.Now()
	sol.Partition = partition.Build(in, cfg.Partition)
	sol.Stats.PartitionTime = time.Since(t0)

	t1 := time.Now()
	sol.Preprov = preprov.Run(in, sol.Partition)
	sol.Stats.PreprovTime = time.Since(t1)
	sol.Stats.PreprovInstances = sol.Preprov.Placement.Instances()

	t2 := time.Now()
	comb := combine.Run(in, sol.Partition, sol.Preprov.Placement, cfg.Combine)
	sol.Stats.CombineTime = time.Since(t2)

	sol.Placement = comb.Placement
	sol.Stats.FinalInstances = comb.Placement.Instances()
	sol.Stats.Combined = comb.Combined
	sol.Stats.RolledBack = comb.RolledBack
	sol.Stats.Migrated = comb.Migrated
	sol.Stats.BudgetMet = comb.BudgetMet
	sol.Stats.RouteCacheHits = comb.RouteCacheHits
	sol.Stats.RouteRecomputed = comb.RouteRecomputed
	sol.Stats.Total = time.Since(start)

	sol.Evaluation = in.Evaluate(sol.Placement)
	return sol, nil
}
