package core

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func makeInstance(nodes, users int, seed int64, budget float64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
}

func TestSolveEndToEnd(t *testing.T) {
	in := makeInstance(10, 40, 1, 8000)
	sol, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev := sol.Evaluation
	if ev.MissingInstances != 0 {
		t.Fatalf("missing instances: %d", ev.MissingInstances)
	}
	if ev.OverBudget {
		t.Fatalf("over budget: cost=%v budget=%v", ev.Cost, in.Budget)
	}
	if ev.StorageViolatedAt != -1 {
		t.Fatalf("storage violated at node %d", ev.StorageViolatedAt)
	}
	if sol.Stats.FinalInstances <= 0 || sol.Stats.FinalInstances > sol.Stats.PreprovInstances {
		t.Fatalf("instances: pre=%d final=%d", sol.Stats.PreprovInstances, sol.Stats.FinalInstances)
	}
	if !sol.Stats.BudgetMet {
		t.Fatal("budget not met on a feasible instance")
	}
	if sol.Stats.Total <= 0 {
		t.Fatal("timing not recorded")
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := makeInstance(6, 10, 2, 8000)
	in.Lambda = -1
	if _, err := Solve(in, DefaultConfig()); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestSolveSmallNetwork(t *testing.T) {
	// Single-node network: everything deploys locally.
	g := topology.New(1)
	g.AddNode(0, 0, 10, 100)
	g.Finalize()
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 3)
	cfg := msvc.DefaultWorkloadConfig(5)
	cfg.HotspotNodes = 1
	w, err := msvc.GenerateWorkload(cat, g, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e5}
	sol, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Evaluation.MissingInstances != 0 {
		t.Fatal("single-node network not covered")
	}
	for _, svc := range in.Workload.ServicesUsed() {
		if !sol.Placement.Has(svc, 0) {
			t.Fatalf("service %d not on the only node", svc)
		}
	}
}

// Property: SoCL solutions are feasible (budget, storage, coverage) across
// random instances with workable budgets.
func TestSolveFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := makeInstance(8, 25, seed, 8000)
		sol, err := Solve(in, DefaultConfig())
		if err != nil {
			return false
		}
		ev := sol.Evaluation
		return ev.MissingInstances == 0 && !ev.OverBudget && ev.StorageViolatedAt == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism of the full pipeline.
func TestSolveDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		in1 := makeInstance(8, 20, seed, 7000)
		in2 := makeInstance(8, 20, seed, 7000)
		s1, err1 := Solve(in1, DefaultConfig())
		s2, err2 := Solve(in2, DefaultConfig())
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < in1.M(); i++ {
			for k := 0; k < in1.V(); k++ {
				if s1.Placement.Has(i, k) != s2.Placement.Has(i, k) {
					return false
				}
			}
		}
		return s1.Evaluation.Objective == s2.Evaluation.Objective
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
