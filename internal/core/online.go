package core

import (
	"time"

	"repro/internal/combine"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/preprov"
)

// OnlineSolver runs SoCL in the paper's time-slotted online mode: at each
// slot it re-plans against the observed demand, but instead of starting
// from scratch it retains the previous slot's surviving instances as warm
// starts — the paper's "flexible storage planning … allowing more warm
// instances in the nearby area" — and reports placement churn (instances
// started/stopped versus the previous slot), the metric an operator pays
// for as container cold-starts.
//
// OnlineSolver is not safe for concurrent use; drive one per simulated
// cluster.
type OnlineSolver struct {
	cfg     Config
	prev    model.Placement
	hasPrev bool
}

// NewOnlineSolver returns an online solver with the given stage
// configuration.
func NewOnlineSolver(cfg Config) *OnlineSolver {
	return &OnlineSolver{cfg: cfg}
}

// OnlineStats extends the per-slot solution with churn accounting.
type OnlineStats struct {
	Started int // instances newly deployed vs the previous slot
	Stopped int // instances torn down vs the previous slot
	Kept    int // instances carried over
}

// Reset drops the warm state, making the next Step a cold start.
func (o *OnlineSolver) Reset() { o.hasPrev = false; o.prev = model.Placement{} }

// Step solves one slot. The instance may have a different workload each
// slot but must keep the same catalog size and node count for warm reuse;
// if the shape changed, the warm state is dropped automatically.
func (o *OnlineSolver) Step(in *model.Instance) (*Solution, OnlineStats, error) {
	if err := in.Validate(); err != nil {
		return nil, OnlineStats{}, err
	}
	if o.hasPrev && (len(o.prev.X) != in.M() || lenRowBool(o.prev.X) != in.V()) {
		o.Reset()
	}

	sol := &Solution{}
	start := time.Now()

	t0 := time.Now()
	sol.Partition = partition.Build(in, o.cfg.Partition)
	sol.Stats.PartitionTime = time.Since(t0)

	t1 := time.Now()
	sol.Preprov = preprov.Run(in, sol.Partition)
	sol.Stats.PreprovTime = time.Since(t1)

	// Warm retention: union the fresh pre-provisioning with the previous
	// slot's instances for services the current workload still uses. The
	// combination stage then trims the union under the current budget, so
	// a stale instance survives only if it still pays for itself.
	pre := sol.Preprov.Placement.Clone()
	if o.hasPrev {
		used := make(map[int]bool)
		for _, svc := range in.Workload.ServicesUsed() {
			used[svc] = true
		}
		for i := range o.prev.X {
			if !used[i] {
				continue
			}
			for k, on := range o.prev.X[i] {
				if on {
					pre.Set(i, k, true)
				}
			}
		}
	}
	sol.Stats.PreprovInstances = pre.Instances()

	t2 := time.Now()
	ccfg := o.cfg.Combine
	if o.hasPrev {
		// Warm instances resist removal (fewer container cold-starts); the
		// bias defaults to 2Θ when the caller didn't choose one.
		ccfg.Warm = o.prev
		//socllint:ignore floateq exact zero means the caller left the bias unset; it is never a computed value
		if ccfg.WarmBias == 0 {
			ccfg.WarmBias = 2 * combineTheta(ccfg)
		}
	}
	comb := combine.Run(in, sol.Partition, pre, ccfg)
	sol.Stats.CombineTime = time.Since(t2)

	sol.Placement = comb.Placement
	sol.Stats.FinalInstances = comb.Placement.Instances()
	sol.Stats.Combined = comb.Combined
	sol.Stats.RolledBack = comb.RolledBack
	sol.Stats.Migrated = comb.Migrated
	sol.Stats.BudgetMet = comb.BudgetMet
	sol.Stats.Total = time.Since(start)
	sol.Evaluation = in.Evaluate(sol.Placement)

	var st OnlineStats
	if o.hasPrev {
		st.Started, st.Stopped = model.PlacementDiff(o.prev, sol.Placement)
		st.Kept = sol.Placement.Instances() - st.Started
	} else {
		st.Started = sol.Placement.Instances()
	}
	o.prev = sol.Placement.Clone()
	o.hasPrev = true
	return sol, st, nil
}

// combineTheta returns the effective Θ of a combine config (its default
// when unset), used to scale the online warm bias.
func combineTheta(cfg combine.Config) float64 {
	if cfg.Theta > 0 {
		return cfg.Theta
	}
	return combine.DefaultConfig().Theta
}

func lenRowBool(x [][]bool) int {
	if len(x) == 0 {
		return 0
	}
	return len(x[0])
}
