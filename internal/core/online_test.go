package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

// slotInstances builds a sequence of instances over the same substrate with
// drifting workloads (different seeds → different homes/chains).
func slotInstances(n int, seed int64) []*model.Instance {
	g := topology.RandomGeometric(10, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	out := make([]*model.Instance, n)
	for s := 0; s < n; s++ {
		w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(30), seed+int64(s)*101)
		if err != nil {
			panic(err)
		}
		out[s] = &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
	}
	return out
}

func TestOnlineSolverBasics(t *testing.T) {
	slots := slotInstances(4, 1)
	o := NewOnlineSolver(DefaultConfig())
	for s, in := range slots {
		sol, st, err := o.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Evaluation.Feasible() {
			t.Fatalf("slot %d infeasible: %+v", s, sol.Evaluation)
		}
		if s == 0 {
			if st.Started != sol.Placement.Instances() || st.Stopped != 0 {
				t.Fatalf("cold start churn wrong: %+v", st)
			}
		} else {
			if st.Kept < 0 || st.Started < 0 || st.Stopped < 0 {
				t.Fatalf("negative churn: %+v", st)
			}
			if st.Kept+st.Started != sol.Placement.Instances() {
				t.Fatalf("churn doesn't add up: %+v vs %d instances", st, sol.Placement.Instances())
			}
		}
	}
}

func TestOnlineWarmReducesChurn(t *testing.T) {
	slots := slotInstances(6, 2)

	// Warm: persistent online solver.
	warm := NewOnlineSolver(DefaultConfig())
	warmChurn := 0
	for s, in := range slots {
		_, st, err := warm.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if s > 0 {
			warmChurn += st.Started + st.Stopped
		}
	}

	// Cold: reset before every slot (equivalent to from-scratch Solve).
	cold := NewOnlineSolver(DefaultConfig())
	coldChurn := 0
	var prev model.Placement
	for s, in := range slots {
		cold.Reset()
		sol, _, err := cold.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if s > 0 {
			a, r := model.PlacementDiff(prev, sol.Placement)
			coldChurn += a + r
		}
		prev = sol.Placement
	}

	if warmChurn > coldChurn {
		t.Fatalf("warm churn %d exceeds cold churn %d", warmChurn, coldChurn)
	}
}

func TestOnlineResetAndShapeChange(t *testing.T) {
	o := NewOnlineSolver(DefaultConfig())
	slots := slotInstances(1, 3)
	if _, _, err := o.Step(slots[0]); err != nil {
		t.Fatal(err)
	}
	// Different node count → warm state must be dropped, not crash.
	g2 := topology.RandomGeometric(6, 0.4, topology.DefaultGenConfig(), 77)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 77)
	w, err := msvc.GenerateWorkload(cat, g2, msvc.DefaultWorkloadConfig(10), 77)
	if err != nil {
		t.Fatal(err)
	}
	in2 := &model.Instance{Graph: g2, Workload: w, Lambda: 0.5, Budget: 8000}
	sol, st, err := o.Step(in2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Started != sol.Placement.Instances() {
		t.Fatalf("shape change should cold-start: %+v", st)
	}
}

func TestOnlineInvalidInstance(t *testing.T) {
	o := NewOnlineSolver(DefaultConfig())
	slots := slotInstances(1, 4)
	slots[0].Lambda = 9
	if _, _, err := o.Step(slots[0]); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestPlacementDiff(t *testing.T) {
	a := model.NewPlacement(2, 3)
	b := model.NewPlacement(2, 3)
	a.Set(0, 0, true)
	a.Set(1, 2, true)
	b.Set(0, 0, true)
	b.Set(0, 1, true)
	added, removed := model.PlacementDiff(a, b)
	if added != 1 || removed != 1 {
		t.Fatalf("diff = +%d -%d, want +1 -1", added, removed)
	}
	// Against the zero placement, everything in b counts as added.
	added, removed = model.PlacementDiff(model.Placement{}, b)
	if added != 2 || removed != 0 {
		t.Fatalf("zero diff = +%d -%d", added, removed)
	}
}
