package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/repair"
)

// Repair drives the incremental repair engine from the online solver, so
// planned-ahead placements and fault repair compose instead of fighting: the
// stale placement p is repaired against the accumulated fault mask, and the
// repaired placement is adopted as the next Step's warm state. Without this,
// the slot after a repair would warm-start from the pre-fault placement and
// re-deploy instances the repair deliberately evicted.
//
// The repair itself is exactly repair.Run — the composition changes only what
// the *next* Step retains, never the repaired placement (pinned by the
// differential test against standalone repair).
func (o *OnlineSolver) Repair(in *model.Instance, m *chaos.Mask, p model.Placement, cfg repair.Config) (*repair.Result, error) {
	if in == nil || m == nil {
		return nil, fmt.Errorf("core: Repair needs an instance and a mask")
	}
	res := repair.Run(in, m, p, cfg)
	o.prev = res.Placement.Clone()
	o.hasPrev = true
	return res, nil
}
