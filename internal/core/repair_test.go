package core

import (
	"math"
	"testing"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/repair"
)

// TestOnlineRepairMatchesStandalone is the differential test for the
// composed path: OnlineSolver.Repair must produce the exact placement and
// evaluation standalone repair.Run produces on the same instance, mask, and
// stale placement — the composition may only change what the next Step
// warm-starts from, never the repair itself.
func TestOnlineRepairMatchesStandalone(t *testing.T) {
	in := makeInstance(10, 12, 61, 8000)
	o := NewOnlineSolver(DefaultConfig())
	sol, _, err := o.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	planned := sol.Placement

	mask := chaos.NewMask(in.Graph)
	crashed := -1
	for k := 0; k < in.V() && crashed < 0; k++ {
		for i := 0; i < in.M(); i++ {
			if planned.Has(i, k) {
				crashed = k
				break
			}
		}
	}
	if crashed < 0 {
		t.Fatal("no deployed node to crash")
	}
	if err := mask.Apply(chaos.Event{Kind: chaos.NodeCrash, Node: crashed}); err != nil {
		t.Fatal(err)
	}

	rcfg := repair.Config{Mode: model.RouteModeOptimal}
	want := repair.Run(in, mask, planned.Clone(), rcfg)
	got, err := o.Repair(in, mask, planned.Clone(), rcfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			if got.Placement.Has(i, k) != want.Placement.Has(i, k) {
				t.Fatalf("composed repair diverges from standalone at (%d,%d)", i, k)
			}
		}
	}
	if math.Float64bits(got.After.Objective) != math.Float64bits(want.After.Objective) ||
		got.After.Unserved() != want.After.Unserved() ||
		len(got.Added) != len(want.Added) || len(got.Evicted) != len(want.Evicted) {
		t.Fatalf("composed repair evaluation diverges: %+v vs %+v", got.After, want.After)
	}

	// The adoption half of the contract: the next Step warm-starts from the
	// repaired placement, not the pre-fault one.
	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			if o.prev.Has(i, k) != got.Placement.Has(i, k) {
				t.Fatalf("warm state not adopted from the repair at (%d,%d)", i, k)
			}
		}
	}
	if !o.hasPrev {
		t.Fatal("repair left the solver cold")
	}

	// And Repair without a prior Step still works (the daemon may repair
	// before its solver ever planned).
	o2 := NewOnlineSolver(DefaultConfig())
	if _, err := o2.Repair(in, mask, planned.Clone(), rcfg); err != nil {
		t.Fatal(err)
	}
	if !o2.hasPrev {
		t.Fatal("repair on a cold solver did not seed the warm state")
	}
}
