package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/viz"
)

// Chart renders a table the harness knows how to plot into a standalone
// SVG. ok is false for tables without a chart mapping (they remain
// CSV/text only).
func Chart(t *Table) (svg string, ok bool) {
	switch t.ID {
	case "fig2":
		return chartFig2(t), true
	case "fig4":
		return chartFig4(t), true
	case "fig7ab":
		return chartFig7(t, "users"), true
	case "fig7cd":
		return chartFig7(t, "nodes"), true
	case "fig8":
		return chartFig8(t), true
	case "fig10":
		return chartFig10(t), true
	default:
		return "", false
	}
}

// WriteSVGs renders every chartable table into dir/<id>.svg.
func WriteSVGs(dir string, tables ...*Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		svg, ok := Chart(t)
		if !ok {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, t.ID+".svg"), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// col returns the values of a named column as floats (NaN-free rows only).
func (t *Table) col(name string) []float64 {
	idx := -1
	for i, h := range t.Header {
		if h == name {
			idx = i
		}
	}
	if idx == -1 {
		return nil
	}
	var out []float64
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}

// cellAt returns the string cell at (row, column-name).
func (t *Table) cellAt(row int, name string) string {
	for i, h := range t.Header {
		if h == name {
			return t.Rows[row][i]
		}
	}
	return ""
}

func parseF(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

func chartFig2(t *Table) string {
	// One series per node count: runtime vs users, log y.
	byNodes := map[string]*viz.Series{}
	var order []string
	for i := range t.Rows {
		n := t.cellAt(i, "nodes")
		u, ok1 := parseF(t.cellAt(i, "users"))
		r, ok2 := parseF(t.cellAt(i, "runtime_s"))
		if !ok1 || !ok2 {
			continue
		}
		s, ok := byNodes[n]
		if !ok {
			s = &viz.Series{Name: n + " nodes"}
			byNodes[n] = s
			order = append(order, n)
		}
		s.X = append(s.X, u)
		s.Y = append(s.Y, r)
	}
	series := make([]viz.Series, 0, len(order))
	for _, n := range order {
		series = append(series, *byNodes[n])
	}
	return viz.LineChart("Fig. 2 — exact optimizer runtime", "users", "runtime (s, log)", series, true)
}

func chartFig4(t *Table) string {
	s := viz.Series{Name: "requests"}
	for i := range t.Rows {
		x, ok1 := parseF(t.cellAt(i, "t_minutes"))
		y, ok2 := parseF(t.cellAt(i, "requests"))
		if !ok1 || !ok2 {
			continue // skips the peak_to_mean summary row
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	return viz.LineChart("Fig. 4 — temporal request distribution", "minutes", "requests / 10 min", []viz.Series{s}, false)
}

func chartFig7(t *Table, xCol string) string {
	opt := viz.Series{Name: "OPT"}
	socl := viz.Series{Name: "SoCL"}
	for i := range t.Rows {
		x, ok := parseF(t.cellAt(i, xCol))
		if !ok {
			continue
		}
		if y, ok := parseF(t.cellAt(i, "opt_runtime_s")); ok {
			opt.X = append(opt.X, x)
			opt.Y = append(opt.Y, y)
		}
		if y, ok := parseF(t.cellAt(i, "socl_runtime_s")); ok {
			socl.X = append(socl.X, x)
			socl.Y = append(socl.Y, y)
		}
	}
	title := fmt.Sprintf("Fig. 7 — OPT vs SoCL runtime over %s", xCol)
	return viz.LineChart(title, xCol, "runtime (s, log)", []viz.Series{opt, socl}, true)
}

func chartFig8(t *Table) string {
	// Grouped bars: objective by user scale × algorithm.
	var labels []string
	seen := map[string]bool{}
	algoSeries := map[string]*viz.Series{}
	var algoOrder []string
	for i := range t.Rows {
		u := t.cellAt(i, "users")
		if !seen[u] {
			seen[u] = true
			labels = append(labels, u)
		}
		algo := t.cellAt(i, "algorithm")
		if _, ok := algoSeries[algo]; !ok {
			algoSeries[algo] = &viz.Series{Name: algo}
			algoOrder = append(algoOrder, algo)
		}
	}
	for _, algo := range algoOrder {
		for _, u := range labels {
			for i := range t.Rows {
				if t.cellAt(i, "users") == u && t.cellAt(i, "algorithm") == algo {
					if y, ok := parseF(t.cellAt(i, "objective")); ok {
						algoSeries[algo].Y = append(algoSeries[algo].Y, y)
					}
				}
			}
		}
	}
	series := make([]viz.Series, 0, len(algoOrder))
	for _, a := range algoOrder {
		series = append(series, *algoSeries[a])
	}
	return viz.GroupedBarChart("Fig. 8 — objective vs user scale", "objective", labels, series)
}

func chartFig10(t *Table) string {
	byAlgo := map[string]*viz.Series{}
	var order []string
	for i := range t.Rows {
		algo := t.cellAt(i, "algorithm")
		x, ok1 := parseF(t.cellAt(i, "t_minutes"))
		y, ok2 := parseF(t.cellAt(i, "avg_delay"))
		if !ok1 || !ok2 {
			continue
		}
		s, ok := byAlgo[algo]
		if !ok {
			s = &viz.Series{Name: algo}
			byAlgo[algo] = s
			order = append(order, algo)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	series := make([]viz.Series, 0, len(order))
	for _, a := range order {
		series = append(series, *byAlgo[a])
	}
	return viz.LineChart("Fig. 10 — average delay over the mobility trace", "minutes", "avg delay (s)", series, false)
}

// LoadCSV reads a table previously written by WriteCSV. The table's ID is
// the file's base name without extension; the title is left empty (charts
// carry their own titles).
func LoadCSV(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("experiments: reading %s: %w", path, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiments: %s is empty", path)
	}
	id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	t := &Table{ID: id, Header: records[0]}
	for _, row := range records[1:] {
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Replot loads every CSV in dir and renders SVGs for the chartable ones
// into svgDir, returning the number of charts written.
func Replot(dir, svgDir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var tables []*Table
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".csv" {
			continue
		}
		t, err := LoadCSV(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, err
		}
		tables = append(tables, t)
	}
	n := 0
	for _, t := range tables {
		if _, ok := Chart(t); ok {
			n++
		}
	}
	if err := WriteSVGs(svgDir, tables...); err != nil {
		return 0, err
	}
	return n, nil
}
