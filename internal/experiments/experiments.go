// Package experiments contains one driver per table/figure of the SoCL
// paper's evaluation (Section V). Each driver builds the figure's workload,
// runs every algorithm involved, and emits the same rows/series the paper
// reports as a Table that can be printed as text or CSV.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured outcomes
// are recorded in EXPERIMENTS.md. Experiment IDs: fig2, fig3, fig4, fig7,
// fig8, fig9, fig10.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Options configures a driver run.
type Options struct {
	// Short shrinks every sweep for quick runs (CI, go test, benches).
	Short bool
	// Seed is the root seed; all randomness derives from it.
	Seed int64
	// OptTimeLimit caps each exact-optimizer solve (fig2/fig7). Zero means
	// 30 s (full) / 3 s (short).
	OptTimeLimit time.Duration
	// OutDir, when non-empty, receives one CSV per table.
	OutDir string
	// Workers bounds the sweep worker pool (runSweep) AND the exact solver's
	// internal branch-and-bound pool (opt.Options.Workers for the Fig2/Fig7
	// OPT columns): 0 means GOMAXPROCS, 1 forces serial execution. Parallel
	// and serial runs produce identical tables; see sweep.go and DESIGN.md §9
	// for the two determinism contracts.
	Workers int
	// Shards, when positive, overrides the per-point region count of the
	// ext_scale clustered substrates (the -shards flag). Zero keeps each
	// sweep point's default.
	Shards int
}

// DefaultOptions returns full-scale settings with seed 1.
func DefaultOptions() Options { return Options{Seed: 1} }

func (o Options) optLimit() time.Duration {
	if o.OptTimeLimit > 0 {
		return o.OptTimeLimit
	}
	if o.Short {
		return 3 * time.Second
	}
	return 30 * time.Second
}

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig7a"
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the table to dir/<id>.csv.
func (t *Table) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Emit prints the tables and, when OutDir is set, writes their CSVs.
func Emit(w io.Writer, opts Options, tables ...*Table) error {
	for _, t := range tables {
		t.Fprint(w)
		if opts.OutDir != "" {
			if err := t.WriteCSV(opts.OutDir); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildInstance assembles the standard evaluation instance: a random
// geometric edge network with paper-ranged capacities, the eShopOnContainers
// workload, λ = 0.5, and the given budget.
func buildInstance(nodes, users int, budget float64, seed int64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0 // the figure sweeps measure latency, not SLOs
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err) // static configuration; cannot fail for valid sizes
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func sec(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

// partialSlots reports how many slots of a (possibly partial) run completed,
// for mid-run failure diagnostics; sim.Run returns the partial result
// alongside its error.
func partialSlots(r *sim.Result) int {
	if r == nil {
		return 0
	}
	return len(r.Slots)
}
