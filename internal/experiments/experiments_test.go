package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func shortOpts() Options {
	return Options{Short: true, Seed: 1, OptTimeLimit: 2 * time.Second}
}

func cell(t *Table, row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func cellF(tst *testing.T, t *Table, row int, col string) float64 {
	tst.Helper()
	v, err := strconv.ParseFloat(cell(t, row, col), 64)
	if err != nil {
		tst.Fatalf("cell (%d,%s) = %q not a float", row, col, cell(t, row, col))
	}
	return v
}

func TestFig2ShortShape(t *testing.T) {
	tb := Fig2(shortOpts())
	if len(tb.Rows) != 6 { // 2 node scales × 3 user scales
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Runtime must be non-decreasing overall trend: the largest scale takes
	// at least as long as the smallest.
	first := cellF(t, tb, 0, "runtime_s")
	last := cellF(t, tb, len(tb.Rows)-1, "runtime_s")
	if last < first*0.5 {
		t.Fatalf("no runtime growth: first=%v last=%v", first, last)
	}
}

func TestFig3Short(t *testing.T) {
	a, b := Fig3(shortOpts())
	if len(a.Rows) != 5*4/2 { // C(5,2) pairs
		t.Fatalf("fig3a rows = %d", len(a.Rows))
	}
	for i := range a.Rows {
		v := cellF(t, a, i, "cosine_similarity")
		if v < 0 || v > 1.000001 {
			t.Fatalf("similarity out of range: %v", v)
		}
	}
	var maxSim float64
	for i := range b.Rows {
		if cell(b, i, "metric") == "max_similarity" {
			maxSim = cellF(t, b, i, "value")
		}
	}
	if maxSim <= 0.2 || maxSim > 0.9 {
		t.Fatalf("fig3b max similarity %v outside the diverse-chain band", maxSim)
	}
}

func TestFig4Short(t *testing.T) {
	tb := Fig4(shortOpts())
	if len(tb.Rows) < 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "peak_to_mean" {
		t.Fatalf("missing summary row: %v", last)
	}
	ratio, err := strconv.ParseFloat(last[1], 64)
	if err != nil || ratio < 1.2 {
		t.Fatalf("peak_to_mean = %v (err %v); peaks not visible", last[1], err)
	}
}

func TestFig7ShortShape(t *testing.T) {
	users, nodes := Fig7(shortOpts())
	if len(users.Rows) != 3 || len(nodes.Rows) != 2 {
		t.Fatalf("rows = %d/%d", len(users.Rows), len(nodes.Rows))
	}
	for _, tb := range []*Table{users, nodes} {
		for i := range tb.Rows {
			optObj := cellF(t, tb, i, "opt_obj")
			soclObj := cellF(t, tb, i, "socl_obj")
			if optObj <= 0 || soclObj <= 0 {
				t.Fatalf("non-positive objective row %d", i)
			}
			// SoCL must stay within 25% of the (possibly capped) OPT value
			// at these small scales; the paper reports gaps below 10%.
			if soclObj > optObj*1.25 {
				t.Fatalf("SoCL gap too large: %v vs %v", soclObj, optObj)
			}
			// SoCL runtime should beat OPT runtime at every scale here.
			if cellF(t, tb, i, "socl_runtime_s") > cellF(t, tb, i, "opt_runtime_s")*2+0.01 {
				t.Fatalf("SoCL slower than OPT in row %d", i)
			}
		}
	}
}

func TestFig8ShortShape(t *testing.T) {
	tb := Fig8(shortOpts())
	if len(tb.Rows) != 2*4 { // 2 user scales × 4 algorithms
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Within each user scale: SoCL ≤ RP on objective.
	byScale := map[string]map[string]float64{}
	for i := range tb.Rows {
		u := cell(tb, i, "users")
		if byScale[u] == nil {
			byScale[u] = map[string]float64{}
		}
		byScale[u][cell(tb, i, "algorithm")] = cellF(t, tb, i, "objective")
	}
	// Per-instance heuristic dominance is not guaranteed (the paper's claim
	// is the aggregate shape); allow a sub-percent flip on any single seed.
	for u, objs := range byScale {
		if objs["SoCL"] > objs["RP"]*1.01 {
			t.Fatalf("scale %s: SoCL (%v) worse than RP (%v)", u, objs["SoCL"], objs["RP"])
		}
		if objs["SoCL"] > objs["JDR"]*1.01 {
			t.Fatalf("scale %s: SoCL (%v) worse than JDR (%v)", u, objs["SoCL"], objs["JDR"])
		}
	}
}

func TestFig9Short(t *testing.T) {
	tb := Fig9(shortOpts())
	if len(tb.Rows) != 3 { // 1 user scale × 3 algorithms
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	objs := map[string]float64{}
	for i := range tb.Rows {
		objs[cell(tb, i, "algorithm")] = cellF(t, tb, i, "objective_sum")
		if cellF(t, tb, i, "max_delay") < cellF(t, tb, i, "mean_delay") {
			t.Fatal("max < mean delay")
		}
	}
	if objs["SoCL"] > objs["RP"] {
		t.Fatalf("SoCL objective %v worse than RP %v on the testbed", objs["SoCL"], objs["RP"])
	}
}

func TestFig10Short(t *testing.T) {
	series, summary := Fig10(shortOpts())
	if len(series.Rows) == 0 || len(summary.Rows) != 3 {
		t.Fatalf("rows = %d/%d", len(series.Rows), len(summary.Rows))
	}
	means := map[string]float64{}
	for i := range summary.Rows {
		means[cell(summary, i, "algorithm")] = cellF(t, summary, i, "mean_delay")
	}
	// SoCL achieves the lowest mean delay on the mobility trace (paper's
	// headline Fig. 10 finding). Allow small tolerance for short mode.
	if means["SoCL"] > means["JDR"]*1.1 {
		t.Fatalf("SoCL mean delay %v not clearly below JDR %v", means["SoCL"], means["JDR"])
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1") {
		t.Fatalf("print output: %q", out)
	}
	dir := t.TempDir()
	if err := tb.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a,b") {
		t.Fatalf("csv content: %q", data)
	}
}

func TestEmitWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	opts := shortOpts()
	opts.OutDir = dir
	tb := &Table{ID: "y", Title: "demo", Header: []string{"c"}}
	tb.AddRow("3")
	var buf bytes.Buffer
	if err := Emit(&buf, opts, tb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "y.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestChartsRenderForKnownTables(t *testing.T) {
	opts := shortOpts()
	fig2 := Fig2(opts)
	fig4 := Fig4(opts)
	users, nodes := Fig7(opts)
	fig8 := Fig8(opts)
	series, _ := Fig10(opts)
	for _, tb := range []*Table{fig2, fig4, users, nodes, fig8, series} {
		svg, ok := Chart(tb)
		if !ok {
			t.Fatalf("%s: no chart mapping", tb.ID)
		}
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Fatalf("%s: malformed svg", tb.ID)
		}
	}
	if _, ok := Chart(&Table{ID: "unknown"}); ok {
		t.Fatal("unknown table got a chart")
	}
}

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	tb := Fig4(shortOpts())
	if err := WriteSVGs(dir, tb, &Table{ID: "unmapped"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.svg")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "unmapped.svg")); err == nil {
		t.Fatal("unmapped table rendered")
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tb := Fig4(shortOpts())
	if err := tb.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "fig4" || len(got.Rows) != len(tb.Rows) {
		t.Fatalf("round trip: id=%s rows=%d want %d", got.ID, len(got.Rows), len(tb.Rows))
	}
	if _, ok := Chart(got); !ok {
		t.Fatal("loaded table not chartable")
	}
}

func TestReplot(t *testing.T) {
	dir := t.TempDir()
	tb := Fig4(shortOpts())
	if err := tb.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	other := &Table{ID: "notchartable", Header: []string{"a"}}
	other.AddRow("1")
	if err := other.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	n, err := Replot(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replotted %d charts, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.svg")); err != nil {
		t.Fatal(err)
	}
}
