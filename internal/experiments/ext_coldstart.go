package experiments

import (
	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ExtColdstart sweeps the serving daemon's serverless lifecycle across the
// scale-to-zero aggressiveness grid: ColdStartDelay (the per-step cold
// penalty, in the same units as chain latency) × IdleEpochs (how many idle
// epochs an instance survives before reclamation). Two demand troughs of
// different lengths are carved into the recorded stream (arrivals dropped,
// matching departures too): under the simulator's steady per-slot demand no
// instance ever goes idle, so the troughs are what make scale-to-zero
// reachable — and their differing lengths are what separate the IdleEpochs
// axis. An aggressive reaper (IdleEpochs 1) scales to zero in both the short
// lull and the long one and pays ColdStartDelay on every returning step; a
// conservative reaper (IdleEpochs 4) rides out the short lull warm and only
// reclaims during the long trough. The lifecycle rows run with WarmPool 0
// and WarmWindow 1 so the sizer tracks demand within one epoch and nothing
// artificially floors the instance count; the first row disables the
// lifecycle (IdleEpochs = 0) as the always-warm baseline.
//
// Columns: cold_steps counts chain steps that paid the cold penalty, scale0
// counts instances reclaimed to zero, mean_delay and p95_delay summarize the
// finite per-request latencies (cold penalties included), react_s totals
// planning + reaction time. With WarmPool 0 a fully reclaimed service leaves
// its first returning request unroutable until the repair policy
// re-provisions it — the unserved column is the availability price of
// scale-to-zero, and it falls as IdleEpochs grows. Rows follow the
// ext_faults err-column contract: a failed configuration reports its message
// in err with zeroed counts rather than dropping the row.
func ExtColdstart(opts Options) *Table {
	nodes, users, duration := 12, 15, 120.0
	if opts.Short {
		nodes, users, duration = 8, 8, 30
	}
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), opts.Seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
	cfg := sim.DefaultConfig(g, cat, users, opts.Seed)
	cfg.DurationMinutes = duration

	type cell struct {
		idle  int
		delay float64
	}
	grid := []cell{
		{0, 0}, // lifecycle disabled: always-warm baseline
		{1, 0.1}, {1, 0.25}, {1, 1.0},
		{2, 0.1}, {2, 0.25}, {2, 1.0},
		{4, 0.1}, {4, 0.25}, {4, 1.0},
	}
	if opts.Short {
		// The short run's carved lulls are single epochs, so the lifecycle
		// cell uses IdleEpochs 1 — the only threshold a one-epoch lull trips.
		grid = []cell{{0, 0}, {1, 0.25}}
	}

	t := &Table{
		ID:    "ext_coldstart",
		Title: "Serverless lifecycle: request delay vs cold-start penalty and idle reclamation",
		Header: []string{"idle_epochs", "cold_delay", "epochs", "requests", "unserved",
			"cold_steps", "scale0", "mean_delay", "p95_delay", "obj_sum", "react_s", "err"},
	}

	script, err := sim.EventStream(cfg)
	if err != nil {
		t.AddRow("0", "0.00", "0", "0", "0", "0", "0", "0.000", "0.000", "0.0", "0.000", err.Error())
		return t
	}
	// A short lull only aggressive reapers act on, then a long trough that
	// drains everyone. For the full 24-epoch run: quiet [6,8) and [12,18).
	numSlots := int(cfg.DurationMinutes / cfg.SlotMinutes)
	carveTrough(script, numSlots/4, numSlots/3)
	carveTrough(script, numSlots/2, 3*numSlots/4)

	for _, c := range grid {
		sc := sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
		sc.Replan = false
		sc.Policy = nil // AutoPolicy: repair first, escalate past the threshold
		if c.idle > 0 {
			sc.Lifecycle = serve.LifecycleConfig{
				IdleEpochs:     c.idle,
				WarmPool:       0, // true scale-to-zero: no per-service floor
				WarmWindow:     1, // sizer tracks demand within one epoch
				ColdStartDelay: c.delay,
			}
		}
		idleCol, delayCol := itoa(c.idle), f2(c.delay)

		d, err := serve.NewDaemon(sc)
		if err != nil {
			t.AddRow(idleCol, delayCol, "0", "0", "0", "0", "0", "0.000", "0.000", "0.0", "0.000", err.Error())
			continue
		}
		rr, err := d.RunScript(script)
		errCol := ""
		if err != nil {
			errCol = err.Error()
		}
		if rr == nil {
			t.AddRow(idleCol, delayCol, "0", "0", "0", "0", "0", "0.000", "0.000", "0.0", "0.000", errCol)
			continue
		}
		reqs, unserved, cold, scale0 := 0, 0, 0, 0
		objSum, reactS := 0.0, 0.0
		for _, r := range rr.Records {
			reqs += r.Requests
			unserved += r.Missing + r.Unroutable
			cold += r.ColdSteps
			scale0 += r.ScaledToZero
			objSum += r.ServedObjective
			reactS += (r.PlanTime + r.ReactTime).Seconds()
		}
		mean, p95 := 0.0, 0.0
		if len(rr.AllDelays) > 0 {
			mean = stats.Mean(rr.AllDelays)
			p95 = stats.Percentile(rr.AllDelays, 95)
		}
		t.AddRow(idleCol, delayCol, itoa(len(rr.Records)), itoa(reqs), itoa(unserved),
			itoa(cold), itoa(scale0), f3(mean), f3(p95), f1(objSum), f3(reactS), errCol)
	}
	return t
}

// carveTrough removes every arrival in slots [from, to) from the recorded
// stream, along with the matching departures — a quiet window in which the
// daemon's demand drains, idle counters age, and the warm-pool sizer's
// history empties.
func carveTrough(s *serve.Script, from, to int) {
	dropped := make(map[int]bool)
	kept := s.Events[:0]
	for _, ev := range s.Events {
		switch {
		case ev.Kind == serve.EvArrive && ev.Slot >= from && ev.Slot < to:
			dropped[ev.ID] = true
			continue
		case ev.Kind == serve.EvDepart && dropped[ev.ID]:
			continue
		}
		kept = append(kept, ev)
	}
	s.Events = kept
}
