package experiments

import (
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
)

// ExtOverload sweeps the transport frontend (internal/transport) across
// offered load, wire-loss rate, and the circuit breaker, using the
// in-process session player — the same framed codec, chaos link, and
// admission engine the socket server runs, minus the socket.
//
// Each cell replays one recorded event stream through an unordered
// (open-loop) engine with a fixed per-epoch admission capacity and a
// one-epoch deadline budget. Offered load scales with the user population
// while capacity stays fixed, so heavier columns overrun the admission
// budget; substrate faults make the repair/re-solve reaction path expensive,
// and that reaction cost is debited from the next epoch's capacity — the
// overload spiral the breaker exists to cut. With the breaker on, cost
// overruns trip it open, epochs degrade to the stale-placement/cloud-offload
// ladder (whose reaction cost is zero), capacity recovers, and the backlog
// drains instead of blowing deadlines.
//
// Columns: events counts unique event frames received (drops reduce it,
// this is open-loop traffic); shed_dl/shed_q/shed_ovl split the sheds by
// cause (deadline blown, queue full, overload rejection while the breaker
// is open); shed_rate = total sheds / events; p99_wait is the 99th
// percentile admission wait in epochs; trips/degr_ep/offl_ep count breaker
// trips, degraded-serve epochs, and epochs the cloud rung engaged;
// unserved is the final epoch's unserved requests. err follows the
// ext_faults partial-result contract: a failed cell reports its message and
// the sweep continues.
//
// Two regimes show up at the top load. Under wire loss the breaker is a
// clean win: the shed rate drops by half and fewer requests go unserved.
// On a lossless wire the breaker sheds more in total — the open-breaker
// overload rung rejects arrivals at the half-full queue — but finishes with
// zero unserved: it trades raw admission volume for keeping the admitted
// work servable, which is the ladder's contract.
func ExtOverload(opts Options) *Table {
	nodes, slots := 10, 12
	loads := []int{8, 16, 24}
	drops := []float64{0, 0.25}
	if opts.Short {
		nodes, slots = 8, 8
		loads = []int{6, 18}
		drops = []float64{0.25}
	}

	t := &Table{
		ID:    "ext_overload",
		Title: "Transport overload sweep: offered load x wire loss x circuit breaker",
		Header: []string{"users", "drop", "breaker", "events", "admitted",
			"shed_dl", "shed_q", "shed_ovl", "shed_rate", "p99_wait",
			"trips", "degr_ep", "offl_ep", "unserved", "err"},
	}

	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), opts.Seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
	cc := model.DefaultCloudConfig()

	for _, users := range loads {
		cfg := sim.DefaultConfig(g, cat, users, opts.Seed)
		cfg.DurationMinutes = float64(slots) * cfg.SlotMinutes
		scfg := chaos.DefaultScheduleConfig()
		scfg.NodeFailProb = 0.25
		scfg.LinkFailProb = 0.15
		scfg.MinNodesUp = nodes / 2
		cfg.Faults = chaos.Generate(g, slots, scfg, opts.Seed)
		cfg.Policy = sim.PolicyRepair
		script, err := sim.EventStream(cfg)
		if err != nil {
			for _, drop := range drops {
				for _, brk := range []bool{false, true} {
					t.AddRow(itoa(users), f2(drop), onOff(brk), "0", "0", "0", "0",
						"0", "0.000", "0", "0", "0", "0", "0", err.Error())
				}
			}
			continue
		}
		frames, err := transport.BuildSession(script, 0)
		if err != nil {
			for _, drop := range drops {
				for _, brk := range []bool{false, true} {
					t.AddRow(itoa(users), f2(drop), onOff(brk), "0", "0", "0", "0",
						"0", "0.000", "0", "0", "0", "0", "0", err.Error())
				}
			}
			continue
		}
		for _, drop := range drops {
			for _, brk := range []bool{false, true} {
				tcfg := transport.Config{
					Factory: func(serve.Meta) (serve.Config, error) {
						sc := sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
						sc.Replan = false
						sc.Policy = nil // AutoPolicy under the guard
						return sc, nil
					},
					Ordered:       false,
					DeadlineSlots: 2,
					MaxQueue:      64,
					Capacity:      48,
					Breaker: transport.BreakerConfig{
						Enabled: brk, TripAfter: 1, Cooldown: 2, CostBudget: 12,
					},
					Ladder: transport.LadderConfig{
						CloudTransfer:  cc.TransferCost,
						CloudCompute:   cc.Compute,
						CloudColdStart: 0.25,
					},
				}
				var lcfg *chaos.LinkConfig
				if drop > 0 {
					lcfg = &chaos.LinkConfig{
						Seed:  stats.SplitSeed(opts.Seed, "ext_overload/chaos"),
						Drop:  drop,
						Dup:   0.05,
						Delay: 0.15,
					}
				}
				eng, err := transport.PlaySession(tcfg, frames, lcfg)
				if err != nil {
					t.AddRow(itoa(users), f2(drop), onOff(brk), "0", "0", "0", "0",
						"0", "0.000", "0", "0", "0", "0", "0", err.Error())
					continue
				}
				st := eng.Stats()
				shedRate := 0.0
				if st.Events > 0 {
					shedRate = float64(st.Shed()) / float64(st.Events)
				}
				trips, degr, offl := 0, 0, 0
				if b := eng.Breaker(); b != nil {
					trips = b.Trips()
				}
				if gd := eng.Guard(); gd != nil {
					degr, offl = gd.DegradedEpochs, gd.OffloadEpochs
				}
				unserved := 0
				if res := eng.Result(); res != nil && res.Final != nil {
					unserved = res.Final.Unserved()
				}
				errCol := ""
				if eng.RunErr() != nil {
					errCol = eng.RunErr().Error() // partial epochs still reported
				}
				t.AddRow(itoa(users), f2(drop), onOff(brk), itoa(st.Events),
					itoa(st.Admitted), itoa(st.ShedDeadline), itoa(st.ShedQueue),
					itoa(st.ShedOverload), f3(shedRate),
					itoa(eng.WaitPercentile(0.99)), itoa(trips), itoa(degr),
					itoa(offl), itoa(unserved), errCol)
			}
		}
	}
	return t
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
