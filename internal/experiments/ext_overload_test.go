package experiments

import "testing"

// TestExtOverloadShort pins the sweep's headline claim: at the highest
// offered load the breaker-on cell sheds less than breaker-off and finishes
// with no more unserved requests.
func TestExtOverloadShort(t *testing.T) {
	tb := ExtOverload(shortOpts())
	if len(tb.Rows) != 4 { // 2 loads x 1 drop x {off, on}
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for i := range tb.Rows {
		if e := cell(tb, i, "err"); e != "" {
			t.Fatalf("row %d failed: %s", i, e)
		}
		events := cellF(t, tb, i, "events")
		admitted := cellF(t, tb, i, "admitted")
		shed := cellF(t, tb, i, "shed_dl") + cellF(t, tb, i, "shed_q") +
			cellF(t, tb, i, "shed_ovl")
		if admitted+shed != events {
			t.Fatalf("row %d: admitted %v + shed %v != events %v", i, admitted, shed, events)
		}
	}
	// The last two rows are the top load, breaker off then on.
	off, on := len(tb.Rows)-2, len(tb.Rows)-1
	if cell(tb, off, "breaker") != "off" || cell(tb, on, "breaker") != "on" {
		t.Fatal("row order changed: expected breaker off/on at the top load")
	}
	offShed := cellF(t, tb, off, "shed_rate")
	onShed := cellF(t, tb, on, "shed_rate")
	if onShed >= offShed {
		t.Fatalf("breaker did not cut the top-load shed rate: off %v, on %v", offShed, onShed)
	}
	if cellF(t, tb, on, "unserved") > cellF(t, tb, off, "unserved") {
		t.Fatal("breaker increased top-load unserved requests")
	}
	if cellF(t, tb, on, "trips") == 0 {
		t.Fatal("breaker never tripped at the top load")
	}
}
