package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/combine"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ExtScale charts solve time and objective regret versus |U| across
// 10²…10⁶ users on clustered substrates: the sharded combine
// (combine.RunSharded — per-region solves on finalized per-shard extracts,
// index-ordered merge, boundary reconciliation) against the global reference
// (the same pipeline as one shard, paying the full O(|V|²) table build and
// global-candidate routing). Two rows per sweep point:
//
//	path     — "sharded" or "global";
//	build_s  — substrate + workload generation (shared, reported once per
//	           point on the sharded row);
//	solve_s  — the path's full solve, including the global path's whole-
//	           graph finalize and each path's final accounting;
//	obj      — the path's objective. The sharded objective scores each
//	           shard's own requests on its halo view, an upper bound on the
//	           true global objective of the merged placement (DESIGN.md
//	           §13); the global objective is exact.
//	regret_x — sharded obj ÷ global obj on the sharded row (an upper bound
//	           on the true regret, for the same reason); 1.000 on the
//	           global row; empty when the global path did not run.
//	fixups   — boundary-reconciliation removals (sharded row only).
//	err      — empty on a clean run; a panic or error leaves its message
//	           here and the row keeps whatever partial columns exist (the
//	           ext_faults partial-result contract). The global path above
//	           extScaleGlobalCap users is recorded as a skipped row rather
//	           than dropped: its O(|U|·|V|²) routing and O(|U|·L·|V|)
//	           latency tables are infeasible at that scale.
//
// Deadlines are disabled (latency sweep) and user homes are uniform so shard
// load stays balanced. -shards overrides the per-point region count.
func ExtScale(opts Options) *Table {
	type point struct{ users, regions, perRegion int }
	pts := []point{
		{100, 4, 12},
		{1000, 9, 12},
		{10000, 16, 25},
		{100000, 36, 28},
		{1000000, 100, 100},
	}
	globalCap := extScaleGlobalCap
	if opts.Short {
		pts = []point{
			{60, 4, 6},
			{240, 4, 8},
		}
		globalCap = 240
	}

	t := &Table{
		ID:    "ext_scale",
		Title: "Sharded vs global combine: solve time and regret vs |U| on clustered substrates",
		Header: []string{"users", "nodes", "shards", "path", "build_s", "solve_s",
			"obj", "cost", "unserved", "fixups", "regret_x", "err"},
	}

	for pi, p := range pts {
		regions := p.regions
		if opts.Shards > 0 {
			regions = opts.Shards
		}
		seed := stats.SplitSeed(opts.Seed, fmt.Sprintf("ext_scale/%d", pi))
		tb := time.Now()
		in, plan, err := buildClusteredInstance(p.users, regions, p.perRegion, seed)
		if err != nil {
			t.AddRow(itoa(p.users), "0", itoa(regions), "sharded", "0.000", "0.000",
				"0", "0", "0", "0", "", err.Error())
			t.AddRow(itoa(p.users), "0", itoa(regions), "global", "0.000", "0.000",
				"0", "0", "0", "0", "", err.Error())
			continue
		}
		buildS := time.Since(tb)

		sharded, shardedDur, shardedErr := runScalePath(in, plan, seed, opts.Workers, false)
		var global *combine.ShardedResult
		var globalDur time.Duration
		var globalErr error
		if p.users <= globalCap {
			global, globalDur, globalErr = runScalePath(in, plan, seed, opts.Workers, true)
		} else {
			globalErr = fmt.Errorf("skipped: global solve infeasible at %d users / %d nodes (O(|V|²) tables, O(|U|·L·|V|) latency tables)", p.users, in.V())
		}

		regret := ""
		if sharded != nil && global != nil && global.Objective > 0 && !math.IsInf(global.Objective, 1) {
			regret = f3(sharded.Objective / global.Objective)
		}
		addScaleRow(t, p.users, in.V(), plan.NumShards, "sharded", buildS, shardedDur, sharded, regret, shardedErr)
		globalRegret := ""
		if global != nil {
			globalRegret = "1.000"
		}
		addScaleRow(t, p.users, in.V(), plan.NumShards, "global", 0, globalDur, global, globalRegret, globalErr)
	}
	return t
}

// extScaleGlobalCap is the largest user count the global reference still
// runs at in the full sweep; past it the global row is reported as skipped.
const extScaleGlobalCap = 100000

// buildClusteredInstance assembles one ext_scale point: an unfinalized
// clustered substrate, a uniform no-deadline workload over it, and the shard
// plan following the generator's regions. The budget scales with the region
// count so per-shard continuity floors stay affordable while the combine
// still has instances to trim.
func buildClusteredInstance(users, regions, perRegion int, seed int64) (*model.Instance, *topology.ShardPlan, error) {
	g, regionNodes := topology.Clustered(topology.DefaultClusterConfig(regions, perRegion), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	wcfg := msvc.DefaultWorkloadConfig(users)
	wcfg.DeadlineSlack = 0
	wcfg.Hotspot = 0
	w, err := msvc.GenerateWorkload(cat, g, wcfg, seed)
	if err != nil {
		return nil, nil, err
	}
	kappaTotal := 0.0
	for i := 0; i < cat.Len(); i++ {
		kappaTotal += cat.Service(i).DeployCost
	}
	// λ = 0.05 keeps the sweep in the latency-dominant regime sharding
	// targets: with cost dominating, the global solve centralizes into one
	// region and the per-region continuity floors read as pure regret.
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.05, Budget: 1.5 * float64(regions) * kappaTotal}
	plan, err := topology.PlanShards(g, regionNodes)
	if err != nil {
		return nil, nil, err
	}
	return in, plan, nil
}

// runScalePath runs one ext_scale path, converting panics (e.g. allocation
// failures at the extreme sizes) into the row's err column.
func runScalePath(in *model.Instance, plan *topology.ShardPlan, seed int64, workers int, naive bool) (res *combine.ShardedResult, dur time.Duration, err error) {
	t0 := time.Now()
	defer func() {
		dur = time.Since(t0)
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	cfg := combine.DefaultShardedConfig()
	cfg.Workers = workers
	cfg.Seed = seed
	cfg.Naive = naive
	res, err = combine.RunSharded(in, plan, cfg)
	return res, time.Since(t0), err
}

// addScaleRow emits one path row, keeping partial columns when the result is
// missing (the err column carries the reason).
func addScaleRow(t *Table, users, nodes, shards int, path string, build, solve time.Duration, r *combine.ShardedResult, regret string, err error) {
	buildCol := "0.000"
	if build > 0 {
		buildCol = f3(build.Seconds())
	}
	errCol := ""
	if err != nil {
		errCol = err.Error()
	}
	if r == nil {
		t.AddRow(itoa(users), itoa(nodes), itoa(shards), path, buildCol, f3(solve.Seconds()),
			"0", "0", "0", "0", regret, errCol)
		return
	}
	t.AddRow(itoa(users), itoa(nodes), itoa(shards), path, buildCol, f3(solve.Seconds()),
		fmt.Sprintf("%.6g", r.Objective), fmt.Sprintf("%.6g", r.Cost),
		itoa(r.Unserved), itoa(r.ReconcileRemoved), regret, errCol)
}
