package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ExtServe compares the batch simulator with the serving daemon on the same
// recorded event stream (internal/serve), across the daemon's operating
// modes:
//
//	sim-batch     — sim.Run, the reference the daemon replays;
//	daemon-replay — replay mode (re-plan every epoch); the check column
//	                reports the bitwise comparison against sim-batch;
//	daemon-serve  — serve mode: one initial solve, then incremental repair
//	                per changed epoch (AutoPolicy), steady epochs on the
//	                delta evaluator;
//	daemon-slsv   — serve mode plus the serverless lifecycle: idle
//	                instances scale to zero, a warm pool holds the floor,
//	                and cold starts price into completion time.
//
// Columns: resolves counts full re-solves, incr counts delta-evaluator
// epochs, cold_steps counts chain steps that paid the cold-start penalty,
// scale0 counts instances reclaimed to zero, react_s totals reaction time
// (planning + repair + re-solve). err follows the ext_faults partial-result
// contract: empty on a clean run, otherwise the failure message, with the
// row reporting whatever slots or epochs completed — one mode failing never
// aborts the remaining modes.
func ExtServe(opts Options) *Table {
	nodes, users, duration := 12, 15, 120.0
	if opts.Short {
		nodes, users, duration = 8, 8, 30
	}
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), opts.Seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
	cfg := sim.DefaultConfig(g, cat, users, opts.Seed)
	cfg.DurationMinutes = duration
	numSlots := int(duration / cfg.SlotMinutes)
	scfg := chaos.DefaultScheduleConfig()
	scfg.NodeFailProb = 0.15
	scfg.MinNodesUp = nodes / 2
	cfg.Faults = chaos.Generate(g, numSlots, scfg, opts.Seed)
	cfg.Policy = sim.PolicyRepair

	t := &Table{
		ID:    "ext_serve",
		Title: "Serving daemon vs batch simulator on one recorded event stream",
		Header: []string{"mode", "epochs", "requests", "unserved", "degraded",
			"resolves", "adds", "evicts", "incr", "cold_steps", "scale0",
			"obj_sum", "react_s", "check", "err"},
	}

	batch, batchErr := sim.Run(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
	if batch == nil {
		t.AddRow("sim-batch", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0",
			"0.0", "0.000", "", batchErr.Error())
	} else {
		adds, evicts, reactS := 0, 0, 0.0
		for _, s := range batch.Slots {
			adds += s.RepairAdds
			evicts += s.RepairEvict
			reactS += (s.PlaceTime + s.RepairTime).Seconds()
		}
		errCol := ""
		if batchErr != nil {
			errCol = batchErr.Error() // partial result: the counts above still stand
		}
		t.AddRow("sim-batch", itoa(len(batch.Slots)), itoa(batch.TotalRequests()),
			itoa(batch.TotalUnserved()), itoa(batch.TotalDegraded()), "0",
			itoa(adds), itoa(evicts), "0", "0", "0",
			f1(sumObjectives(batch)), f3(reactS), "", errCol)
	}

	script, scriptErr := sim.EventStream(cfg)

	daemonRow := func(mode string, sc serve.Config, verify bool) {
		if script == nil {
			t.AddRow(mode, "0", "0", "0", "0", "0", "0", "0", "0", "0", "0",
				"0.0", "0.000", "", scriptErr.Error())
			return
		}
		d, err := serve.NewDaemon(sc)
		if err != nil {
			t.AddRow(mode, "0", "0", "0", "0", "0", "0", "0", "0", "0", "0",
				"0.0", "0.000", "", err.Error())
			return
		}
		rr, err := d.RunScript(script)
		check, errCol := "", ""
		if err != nil {
			errCol = err.Error() // partial epochs below still count
		} else if verify {
			if batch == nil {
				check = "skipped: no batch reference"
			} else if cmpErr := sim.CompareReplay(batch, rr); cmpErr != nil {
				check = fmt.Sprintf("MISMATCH: %v", cmpErr)
			} else {
				check = "bitwise=ok"
			}
		}
		reqs, unserved, degraded, resolves, adds, evicts, incr := 0, 0, 0, 0, 0, 0, 0
		cold, scale0, objSum, reactS := 0, 0, 0.0, 0.0
		for _, r := range rr.Records {
			reqs += r.Requests
			unserved += r.Missing + r.Unroutable
			degraded += r.Degraded
			if r.Resolved {
				resolves++
			}
			adds += r.Adds
			evicts += r.Evicts
			if r.Incremental {
				incr++
			}
			cold += r.ColdSteps
			scale0 += r.ScaledToZero
			objSum += r.ServedObjective
			reactS += (r.PlanTime + r.ReactTime).Seconds()
		}
		t.AddRow(mode, itoa(len(rr.Records)), itoa(reqs), itoa(unserved),
			itoa(degraded), itoa(resolves), itoa(adds), itoa(evicts), itoa(incr),
			itoa(cold), itoa(scale0), f1(objSum), f3(reactS), check, errCol)
	}

	daemonRow("daemon-replay", sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig())), true)

	sc := sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
	sc.Replan = false
	sc.Policy = nil // default AutoPolicy: repair first, escalate past the threshold
	daemonRow("daemon-serve", sc, false)

	sc = sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
	sc.Replan = false
	sc.Policy = nil
	sc.Lifecycle = serve.LifecycleConfig{IdleEpochs: 2, WarmPool: 1, ColdStartDelay: 0.25}
	daemonRow("daemon-slsv", sc, false)

	return t
}
