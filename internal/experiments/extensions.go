package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ExtBudget sweeps the cost constraint over the paper's stated range
// (5000–8000) at fixed scale, reporting every algorithm's objective, cost
// and latency — the budget dimension Section V-A mentions but no figure
// isolates.
func ExtBudget(opts Options) *Table {
	budgets := []float64{5800, 6400, 7000, 7600, 8200}
	users, nodes := 80, 10
	if opts.Short {
		budgets = []float64{6400, 8200}
		users, nodes = 20, 8
	}
	t := &Table{
		ID:     "ext_budget",
		Title:  "Objective vs deployment budget (paper range 5000–8000)",
		Header: []string{"budget", "algorithm", "objective", "cost", "latency_sum", "budget_met"},
	}
	// The graph and workload depend only on scale and seed, so one shared
	// instance serves every budget point with in.Budget rebound per point —
	// and one DeltaEvaluator scores all budgets × algorithms, re-routing
	// only the requests each placement diff touches (the evaluator reads
	// Budget fresh at every Eval, so rebinding it between points is safe).
	// This driver therefore stays serial by construction.
	in := buildInstance(nodes, users, budgets[0], opts.Seed)
	// The lowest budgets sit below one-instance-per-service; the cloud
	// fallback keeps those rows comparable (uncovered services serve
	// from the cloud at WAN latency instead of scoring +Inf).
	cloud := model.DefaultCloudConfig()
	in.Cloud = &cloud
	var de *model.DeltaEvaluator
	for _, b := range budgets {
		in.Budget = b
		for _, algo := range fig8Algorithms(opts) {
			p, err := algo.place(in)
			if err != nil {
				panic(err)
			}
			if de == nil {
				de = model.NewDeltaEvaluator(in, p, model.RouteModeOptimal, 0)
			} else {
				de.AdvanceTo(p)
			}
			ev := de.Eval()
			met := "yes"
			if ev.OverBudget {
				met = "no"
			}
			t.AddRow(f1(b), algo.name, f1(ev.Objective), f1(ev.Cost), f1(ev.LatencySum), met)
		}
	}
	return t
}

// ExtLambda sweeps the objective weight λ, showing the cost/latency trade
// each algorithm strikes — the knob Definition 1 introduces.
func ExtLambda(opts Options) *Table {
	// The sweep reaches down to λ where the per-instance cost λ·κ drops
	// below typical latency losses ζ, so the latency-leaning regime (more
	// instances, lower latency) is visible — at moderate λ the combine
	// always trims to minimal coverage (cost dominates at these scales).
	lambdas := []float64{0.001, 0.01, 0.1, 0.5, 0.9}
	users, nodes := 60, 10
	if opts.Short {
		lambdas = []float64{0.002, 0.8}
		users, nodes = 15, 8
	}
	t := &Table{
		ID:     "ext_lambda",
		Title:  "Cost/latency trade-off vs λ (SoCL)",
		Header: []string{"lambda", "objective", "cost", "latency_sum", "instances"},
	}
	for _, l := range lambdas {
		in := buildInstance(nodes, users, 8000, opts.Seed)
		in.Lambda = l
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			panic(err)
		}
		ev := sol.Evaluation
		t.AddRow(f3(l), f1(ev.Objective), f1(ev.Cost), f1(ev.LatencySum), itoa(sol.Placement.Instances()))
	}
	return t
}

// ExtOmega is the ω ablation (DESIGN.md §5): how the parallel-combination
// fraction trades solution quality against combination rounds.
func ExtOmega(opts Options) *Table {
	omegas := []float64{0.05, 0.15, 0.25, 0.5, 0.9}
	users, nodes := 80, 12
	if opts.Short {
		omegas = []float64{0.1, 0.9}
		users, nodes = 20, 8
	}
	t := &Table{
		ID:     "ext_omega",
		Title:  "Ablation: parallel-combination fraction ω",
		Header: []string{"omega", "objective", "parallel_rounds", "serial_rounds", "combined", "runtime_s"},
	}
	for _, om := range omegas {
		in := buildInstance(nodes, users, 8000, opts.Seed)
		part := partition.Build(in, partition.DefaultConfig())
		pre := preprov.Run(in, part)
		cfg := combine.DefaultConfig()
		cfg.Omega = om
		t0 := time.Now()
		res := combine.Run(in, part, pre.Placement, cfg)
		el := time.Since(t0)
		ev := in.Evaluate(res.Placement)
		t.AddRow(f3(om), f1(ev.Objective), itoa(res.ParallelRounds), itoa(res.SerialRounds),
			itoa(res.Combined), sec(el))
	}
	return t
}

// ExtXi is the ξ ablation: the virtual-link threshold's effect on group
// counts and final objective.
func ExtXi(opts Options) *Table {
	quantiles := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	users, nodes := 80, 12
	if opts.Short {
		quantiles = []float64{0.2, 0.8}
		users, nodes = 20, 8
	}
	t := &Table{
		ID:     "ext_xi",
		Title:  "Ablation: partition threshold ξ (as a virtual-link speed quantile)",
		Header: []string{"xi_quantile", "avg_groups_per_service", "objective"},
	}
	for _, q := range quantiles {
		in := buildInstance(nodes, users, 8000, opts.Seed)
		cfg := core.DefaultConfig()
		cfg.Partition = partition.Config{Xi: 0, XiQuantile: q}
		sol, err := core.Solve(in, cfg)
		if err != nil {
			panic(err)
		}
		groups, services := 0, 0
		for _, sp := range sol.Partition.ByService {
			groups += len(sp.Groups)
			services++
		}
		avg := 0.0
		if services > 0 {
			avg = float64(groups) / float64(services)
		}
		t.AddRow(f3(q), f3(avg), f1(sol.Evaluation.Objective))
	}
	return t
}

// ExtRouting isolates the routing contribution: the same placements scored
// under optimal DP routing vs greedy nearest-instance vs random routing.
func ExtRouting(opts Options) *Table {
	users, nodes := 80, 12
	if opts.Short {
		users, nodes = 20, 8
	}
	t := &Table{
		ID:     "ext_routing",
		Title:  "Ablation: routing policy on fixed placements",
		Header: []string{"placement", "routing", "latency_sum", "objective"},
	}
	in := buildInstance(nodes, users, 8000, opts.Seed)
	placements := map[string]model.Placement{
		"JDR": baselines.JDR(in),
	}
	if sol, err := core.Solve(in, core.DefaultConfig()); err == nil {
		placements["SoCL"] = sol.Placement
	}
	// One evaluator per routing mode, advanced across the placements: the
	// routing caches survive the SoCL→JDR transition, so the second
	// placement re-routes only the requests the two disagree on. Each
	// evaluator aliases the placement it binds (NewDeltaEvaluator's
	// contract), so every mode gets its own clone — otherwise the first
	// AdvanceTo would mutate the bitset under the other two.
	evals := map[model.RoutingMode]*model.DeltaEvaluator{}
	for _, name := range []string{"SoCL", "JDR"} {
		p, ok := placements[name]
		if !ok {
			continue
		}
		for _, mode := range []model.RoutingMode{model.RouteModeOptimal, model.RouteModeGreedy, model.RouteModeRandom} {
			de := evals[mode]
			if de == nil {
				de = model.NewDeltaEvaluator(in, p.Clone(), mode, opts.Seed)
				evals[mode] = de
			} else {
				de.AdvanceTo(p)
			}
			ev := de.Eval()
			t.AddRow(name, mode.String(), f1(ev.LatencySum), f1(ev.Objective))
		}
	}
	return t
}

// ExtOnline compares one-shot SoCL (re-solve from scratch each slot) with
// the warm-started online solver over a mobility trace: objective parity at
// much lower placement churn (container cold-starts).
func ExtOnline(opts Options) *Table {
	nodes, users := 12, 30
	duration := 120.0
	if opts.Short {
		nodes, users = 8, 10
		duration = 30
	}
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), opts.Seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)

	t := &Table{
		ID:     "ext_online",
		Title:  "One-shot vs warm-started online SoCL over a mobility trace",
		Header: []string{"mode", "mean_delay", "objective_sum", "churn"},
	}

	// One-shot: stateless SoCL; churn measured between consecutive slots.
	cfg := sim.DefaultConfig(g, cat, users, opts.Seed)
	cfg.DurationMinutes = duration
	oneShot, err := sim.Run(cfg, sim.SoCL{Config: core.DefaultConfig()})
	if err != nil {
		panic(fmt.Sprintf("ext_online one-shot: %v (completed %d slots)", err, partialSlots(oneShot)))
	}
	objSum := 0.0
	for _, s := range oneShot.Slots {
		objSum += s.Objective
	}
	// Churn for the one-shot mode is recomputed by replaying the decision
	// sequence through a resetting online solver.
	churnCold := replayChurn(g, cat, users, duration, opts.Seed, true)
	t.AddRow("one-shot", f3(oneShot.MeanDelay()), f1(objSum), itoa(churnCold))

	cfg2 := sim.DefaultConfig(g, cat, users, opts.Seed)
	cfg2.DurationMinutes = duration
	onlineAlgo := sim.NewSoCLOnline(core.DefaultConfig())
	online, err := sim.Run(cfg2, onlineAlgo)
	if err != nil {
		panic(fmt.Sprintf("ext_online warm: %v (completed %d slots)", err, partialSlots(online)))
	}
	objSum2 := 0.0
	for _, s := range online.Slots {
		objSum2 += s.Objective
	}
	t.AddRow("online-warm", f3(online.MeanDelay()), f1(objSum2), itoa(onlineAlgo.Churn))
	return t
}

// replayChurn measures placement churn of from-scratch solving by running
// the same simulation with an online solver that is reset (cold) or kept
// (warm) between slots.
func replayChurn(g *topology.Graph, cat *msvc.Catalog, users int, duration float64, seed int64, cold bool) int {
	adapter := &churnAdapter{solver: core.NewOnlineSolver(core.DefaultConfig()), cold: cold}
	cfg := sim.DefaultConfig(g, cat, users, seed)
	cfg.DurationMinutes = duration
	if res, err := sim.Run(cfg, adapter); err != nil {
		panic(fmt.Sprintf("replayChurn: %v (completed %d slots)", err, partialSlots(res)))
	}
	return adapter.churn
}

type churnAdapter struct {
	solver *core.OnlineSolver
	cold   bool
	slots  int
	churn  int
	prev   model.Placement
}

func (*churnAdapter) Name() string               { return "churn-probe" }
func (*churnAdapter) Routing() model.RoutingMode { return model.RouteModeOptimal }
func (c *churnAdapter) Place(in *model.Instance) (model.Placement, error) {
	if c.cold {
		c.solver.Reset()
	}
	sol, _, err := c.solver.Step(in)
	if err != nil {
		return model.Placement{}, err
	}
	if c.slots > 0 {
		a, r := model.PlacementDiff(c.prev, sol.Placement)
		c.churn += a + r
	}
	c.prev = sol.Placement.Clone()
	c.slots++
	return sol.Placement, nil
}

// ExtDecompose cross-validates the decomposition exact solver against
// branch-and-bound and shows its speed at scales where B&B caps out.
func ExtDecompose(opts Options) *Table {
	scales := []struct{ v, u int }{{6, 10}, {10, 20}, {12, 40}, {15, 60}}
	if opts.Short {
		scales = scales[:2]
	}
	limit := opts.optLimit()
	t := &Table{
		ID:     "ext_decompose",
		Title:  "Decomposition exact solver vs branch-and-bound (storage-rich instances)",
		Header: []string{"nodes", "users", "decomp_obj", "decomp_s", "bb_obj", "bb_s", "bb_status", "applicable"},
	}
	for _, sc := range scales {
		in := storageRichInstance(sc.v, sc.u, opts.Seed)
		dec, err := opt.SolveDecomposed(in, opt.Options{TimeLimit: limit})
		if err != nil {
			panic(err)
		}
		bb, err := opt.Solve(in, opt.Options{TimeLimit: limit, Workers: opts.Workers})
		if err != nil {
			panic(err)
		}
		status := bb.Status.String()
		if bb.Status != opt.Optimal {
			status += " (cap)"
		}
		appl := "yes"
		if !dec.Applicable {
			appl = "no"
		}
		t.AddRow(itoa(sc.v), itoa(sc.u), f1(dec.StarObjective), sec(dec.Elapsed),
			f1(bb.StarObjective), sec(bb.Elapsed), status, appl)
	}
	return t
}

// storageRichInstance relaxes storage so the decomposition always applies.
func storageRichInstance(nodes, users int, seed int64) *model.Instance {
	gcfg := topology.DefaultGenConfig()
	gcfg.StorageMin, gcfg.StorageMax = 100, 200
	g := topology.RandomGeometric(nodes, 0.35, gcfg, seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}
