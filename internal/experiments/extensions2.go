package experiments

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/model"
)

// ExtContention re-prices every algorithm's solution under the network-
// contention extension (link capacity shared within a decision slot): the
// introduction's "path conflicts and network contention" argument,
// quantified. Cost-blind redundant placements route more traffic over hot
// links and suffer more under contention.
func ExtContention(opts Options) *Table {
	users, nodes := 120, 10
	if opts.Short {
		users, nodes = 30, 8
	}
	t := &Table{
		ID:    "ext_contention",
		Title: "Contention re-pricing of placements (5-minute slot capacity sharing)",
		Header: []string{"algorithm", "latency_idle", "latency_contended",
			"inflation_pct", "congested_links", "max_utilization"},
	}
	in := buildInstance(nodes, users, 8000, opts.Seed)
	cc := model.DefaultContentionConfig()
	for _, algo := range fig8Algorithms(opts) {
		p, err := algo.place(in)
		if err != nil {
			panic(err)
		}
		rep := in.EvaluateWithContention(p, model.RouteModeOptimal, opts.Seed, cc)
		maxU := 0.0
		for _, u := range rep.Utilization {
			if u > maxU {
				maxU = u
			}
		}
		infl := 0.0
		if rep.LatencySum > 0 {
			infl = (rep.LatencySumContended - rep.LatencySum) / rep.LatencySum * 100
		}
		t.AddRow(algo.name, f1(rep.LatencySum), f1(rep.LatencySumContended),
			f3(infl), itoa(rep.Congested), f3(maxU))
	}
	return t
}

// ExtCloud measures the cloud-fallback extension: with a deliberately
// hopeless budget, how many requests each algorithm pushes to the cloud and
// what that costs in latency versus an adequate budget.
func ExtCloud(opts Options) *Table {
	users, nodes := 60, 10
	if opts.Short {
		users, nodes = 15, 8
	}
	t := &Table{
		ID:    "ext_cloud",
		Title: "Cloud fallback under budget pressure",
		Header: []string{"budget", "algorithm", "cloud_served", "missing",
			"latency_sum", "objective"},
	}
	for _, budget := range []float64{8000, 3000} {
		in := buildInstance(nodes, users, budget, opts.Seed)
		cloud := model.DefaultCloudConfig()
		in.Cloud = &cloud
		algos := []namedAlgo{
			{"JDR", func(in *model.Instance) (model.Placement, error) {
				return baselines.JDR(in), nil
			}},
			{"SoCL", func(in *model.Instance) (model.Placement, error) {
				sol, err := core.Solve(in, core.DefaultConfig())
				if err != nil {
					return model.Placement{}, err
				}
				return sol.Placement, nil
			}},
		}
		for _, algo := range algos {
			p, err := algo.place(in)
			if err != nil {
				panic(err)
			}
			ev := in.Evaluate(p)
			t.AddRow(f1(budget), algo.name, itoa(ev.CloudServed),
				itoa(ev.MissingInstances), f1(ev.LatencySum), f1(ev.Objective))
		}
	}
	return t
}
