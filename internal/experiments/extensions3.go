package experiments

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ExtCluster re-runs the Fig. 9/10 comparison at cluster fidelity (package
// cluster): discrete-event execution with FIFO queueing on nodes and links
// and 30-second container cold starts. This is the closest this repository
// gets to the paper's real Kubernetes testbed; the analytic simulator's
// orderings should survive the added queueing and cold-start effects, and
// the warm online solver should show fewer cold starts than one-shot SoCL.
func ExtCluster(opts Options) *Table {
	nodes, users := 12, 30
	horizon := 3600.0 // one hour
	if opts.Short {
		nodes, users = 8, 10
		horizon = 1200
	}
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), opts.Seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)

	t := &Table{
		ID:    "ext_cluster",
		Title: "Cluster-fidelity testbed (queueing + cold starts)",
		Header: []string{"algorithm", "completed", "mean_sojourn", "p95_sojourn",
			"max_sojourn", "cold_starts", "mean_slot_cost"},
	}
	algos := []sim.Algorithm{
		sim.RP{Seed: opts.Seed},
		sim.JDR{},
		sim.SoCL{Config: core.DefaultConfig()},
		sim.NewSoCLOnline(core.DefaultConfig()),
	}
	for _, algo := range algos {
		cfg := cluster.DefaultConfig(g, cat, users, opts.Seed)
		cfg.Horizon = horizon
		res, err := cluster.Run(cfg, algo)
		if err != nil {
			panic(err)
		}
		meanCost := 0.0
		for _, c := range res.SlotCosts {
			meanCost += c
		}
		if len(res.SlotCosts) > 0 {
			meanCost /= float64(len(res.SlotCosts))
		}
		t.AddRow(res.Algorithm, itoa(res.Completed), f3(res.MeanSojourn()),
			f3(res.P95Sojourn()), f3(res.MaxSojourn()), itoa(res.ColdStarts), f1(meanCost))
	}
	return t
}

// ExtDatasets sweeps the embedded application datasets (eShopOnContainers,
// Sock Shop, PiggyMetrics, Hotel Reservation — four of the twenty projects
// in the paper's curated dataset family) at a fixed scale, confirming the
// algorithm ordering is not an artifact of one application's shape.
func ExtDatasets(opts Options) *Table {
	users, nodes := 60, 10
	if opts.Short {
		users, nodes = 15, 8
	}
	t := &Table{
		ID:    "ext_datasets",
		Title: "Algorithm ordering across application datasets",
		Header: []string{"dataset", "services", "algorithm", "objective",
			"cost", "latency_sum"},
	}
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), opts.Seed)
	for _, name := range msvc.DatasetNames() {
		cat, err := msvc.CatalogByName(name, msvc.DefaultDatasetConfig(), opts.Seed)
		if err != nil {
			panic(err)
		}
		wcfg := msvc.DefaultWorkloadConfig(users)
		wcfg.DeadlineSlack = 0
		w, err := msvc.GenerateWorkload(cat, g, wcfg, opts.Seed)
		if err != nil {
			panic(err)
		}
		in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
		for _, algo := range fig8Algorithms(opts) {
			p, err := algo.place(in)
			if err != nil {
				panic(err)
			}
			ev := in.Evaluate(p)
			t.AddRow(name, itoa(cat.Len()), algo.name, f1(ev.Objective),
				f1(ev.Cost), f1(ev.LatencySum))
		}
	}
	return t
}
