package experiments

import (
	"time"

	"repro/internal/combine"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/partition"
	"repro/internal/preprov"
	"repro/internal/topology"
)

// ExtCombineBench measures the incremental routing engine against the naive
// full-rescan combination it replaces, across problem scales. Both modes run
// on identical inputs; the engine must reproduce the naive placement bit for
// bit (the "identical" column re-checks it outside the unit tests), so the
// only difference is wall-clock and the cache telemetry. Deadlines are kept
// finite — unlike the figure sweeps — because the exact per-round deadline
// check is precisely the path the route cache accelerates.
func ExtCombineBench(opts Options) *Table {
	scales := []struct{ nodes, users int }{{10, 60}, {15, 120}, {25, 250}}
	reps := 3
	if opts.Short {
		scales = []struct{ nodes, users int }{{8, 30}, {10, 60}}
		reps = 1
	}
	t := &Table{
		ID:    "ext_combinebench",
		Title: "Incremental vs naive combination engine",
		Header: []string{"nodes", "users", "naive_s", "incremental_s", "speedup",
			"cache_hits", "recomputed", "identical"},
	}
	for _, sc := range scales {
		g := topology.RandomGeometric(sc.nodes, 0.35, topology.DefaultGenConfig(), opts.Seed)
		cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
		w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(sc.users), opts.Seed)
		if err != nil {
			panic(err) // static configuration; cannot fail for valid sizes
		}
		// A generous budget keeps the serial descent — the engine's hot
		// path — running until the objective gradient stops it.
		in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e9}
		part := partition.Build(in, partition.DefaultConfig())
		pre := preprov.Run(in, part).Placement

		run := func(cfg combine.Config) (combine.Result, time.Duration) {
			var res combine.Result
			best := time.Duration(1<<63 - 1)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				res = combine.Run(in, part, pre, cfg)
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			return res, best
		}
		naiveCfg := combine.DefaultConfig()
		naiveCfg.Naive = true
		resN, durN := run(naiveCfg)
		resI, durI := run(combine.DefaultConfig())

		identical := "yes"
		for i := range resI.Placement.X {
			for k := range resI.Placement.X[i] {
				if resI.Placement.Has(i, k) != resN.Placement.Has(i, k) {
					identical = "no"
				}
			}
		}
		t.AddRow(itoa(sc.nodes), itoa(sc.users), sec(durN), sec(durI),
			f1(durN.Seconds()/durI.Seconds()), itoa(resI.RouteCacheHits),
			itoa(resI.RouteRecomputed), identical)
	}
	return t
}
