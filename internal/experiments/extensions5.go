package experiments

import (
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ExtFaults is the availability sweep: the trace simulation under seeded
// substrate faults (internal/chaos), comparing the three responses to damage
// at increasing failure rates — serve the broken placement (none), repair it
// incrementally (repair), or re-solve from scratch every faulty slot
// (resolve). All three see bitwise-identical fault, mobility, and request
// streams (policies consume no RNG), so the columns differ only by policy:
//
//	viol_rate — unserved requests (missing + unroutable) per request;
//	degraded  — edge-served requests slower than the slot's no-fault
//	            reference;
//	rec_slots — mean length of service-loss runs, in slots;
//	rec_p50/p95/p99 — percentiles of the same run-length distribution
//	            (recovery is heavy-tailed under bursty schedules, so the
//	            tails say more than the mean);
//	obj_x     — total served-part objective over the run vs the no-fault
//	            baseline (the raw objective saturates at +Inf the moment
//	            one request goes unserved, so the finite served part is
//	            what stays comparable across policies);
//	repair_s  — total time in repair.Run or the re-solve, the cost the
//	            incremental engine is meant to shrink;
//	err       — empty on a clean run; a mid-run failure leaves its message
//	            here and the row reports the partial slots that completed
//	            (sim.Run returns the partial result alongside the error).
func ExtFaults(opts Options) *Table {
	nodes, users, duration := 12, 15, 120.0
	rates := []float64{0.05, 0.15, 0.3}
	if opts.Short {
		nodes, users, duration = 8, 8, 30
		rates = []float64{0.15}
	}
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), opts.Seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
	mk := func() sim.Config {
		cfg := sim.DefaultConfig(g, cat, users, opts.Seed)
		cfg.DurationMinutes = duration
		return cfg
	}
	algo := sim.SoCL{Config: core.DefaultConfig()}

	t := &Table{
		ID:    "ext_faults",
		Title: "Availability under substrate faults: incremental repair vs full re-solve vs none",
		Header: []string{"fail_rate", "policy", "requests", "unserved", "viol_rate",
			"degraded", "rec_slots", "rec_p50", "rec_p95", "rec_p99", "obj_x", "repair_s", "err"},
	}

	baseline, baseErr := sim.Run(mk(), algo)
	baseObj := 0.0
	if baseline != nil {
		baseObj = sumObjectives(baseline) // partial on error: still the best reference available
	}
	if baseErr != nil {
		baseReqs := 0
		if baseline != nil {
			baseReqs = baseline.TotalRequests()
		}
		t.AddRow("0.000", "baseline", itoa(baseReqs), "0", "0.000",
			"0", "0.0", "0.0", "0.0", "0.0", "1", "0.000", baseErr.Error())
	}
	numSlots := int(duration / mk().SlotMinutes)

	// The sweep axis: independent failures at increasing rates, then the two
	// structured regimes from chaos — correlated domain crashes ("corr") and
	// fast flapping ("flap") — which stress repair along orthogonal axes
	// (burst width vs churn frequency) that no independent rate reproduces.
	type faultCase struct {
		label string
		cfg   chaos.ScheduleConfig
	}
	var cases []faultCase
	for _, rate := range rates {
		scfg := chaos.DefaultScheduleConfig()
		scfg.NodeFailProb = rate
		scfg.LinkFailProb = rate
		scfg.StorageShrinkProb = rate / 2
		cases = append(cases, faultCase{f3(rate), scfg})
	}
	cases = append(cases,
		faultCase{"corr", chaos.CorrelatedScheduleConfig()},
		faultCase{"flap", chaos.FlappingScheduleConfig()})

	for _, fc := range cases {
		scfg := fc.cfg
		scfg.MinNodesUp = nodes / 2
		sched := chaos.Generate(g, numSlots, scfg, opts.Seed)
		for _, pol := range []sim.FaultPolicy{sim.PolicyNone, sim.PolicyRepair, sim.PolicyResolve} {
			cfg := mk()
			cfg.Faults = sched
			cfg.Policy = pol
			res, err := sim.Run(cfg, algo)
			if res == nil {
				// Configuration-level failure: no slot ever ran.
				t.AddRow(fc.label, pol.String(), "0", "0", "0.000", "0",
					"0.0", "0.0", "0.0", "0.0", "+Inf", "0.000", err.Error())
				continue
			}
			reqs := res.TotalRequests()
			viol := 0.0
			if reqs > 0 {
				viol = float64(res.TotalUnserved()) / float64(reqs)
			}
			repairS := 0.0
			for _, s := range res.Slots {
				repairS += s.RepairTime.Seconds()
			}
			objX := math.Inf(1)
			if baseObj > 0 {
				objX = sumObjectives(res) / baseObj
			}
			errCol := ""
			if err != nil {
				errCol = err.Error() // the row reports the partial slots above
			}
			t.AddRow(fc.label, pol.String(), itoa(reqs), itoa(res.TotalUnserved()),
				f3(viol), itoa(res.TotalDegraded()), f1(res.MeanRecoverySlots()),
				f1(res.RecoveryPercentile(50)), f1(res.RecoveryPercentile(95)),
				f1(res.RecoveryPercentile(99)),
				fmt.Sprintf("%.3g", objX), f3(repairS), errCol)
		}
	}
	return t
}

// sumObjectives totals the per-slot served-part objectives of a run (the raw
// per-slot objective is +Inf whenever a request went unserved; the served
// part is the finite, cross-policy-comparable remainder).
func sumObjectives(r *sim.Result) float64 {
	s := 0.0
	for _, rec := range r.Slots {
		s += rec.ServedObjective
	}
	return s
}
