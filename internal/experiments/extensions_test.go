package experiments

import (
	"strconv"
	"testing"
)

func TestExtBudgetShort(t *testing.T) {
	tb := ExtBudget(shortOpts())
	if len(tb.Rows) != 2*4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		budget := cellF(t, tb, i, "budget")
		cost := cellF(t, tb, i, "cost")
		met := cell(tb, i, "budget_met")
		if met == "yes" && cost > budget+1e-6 {
			t.Fatalf("row %d: cost %v over budget %v but marked met", i, cost, budget)
		}
	}
}

func TestExtLambdaShortTradeoff(t *testing.T) {
	tb := ExtLambda(shortOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Higher λ weights cost more: the high-λ row's cost must not exceed
	// the low-λ row's cost (SoCL trims harder when cost dominates).
	lowCost := cellF(t, tb, 0, "cost")
	highCost := cellF(t, tb, 1, "cost")
	if highCost > lowCost+1e-6 {
		t.Fatalf("cost did not shrink with λ: %v → %v", lowCost, highCost)
	}
}

func TestExtOmegaShort(t *testing.T) {
	tb := ExtOmega(shortOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Larger ω → no more parallel rounds than smaller ω.
	small := cellF(t, tb, 0, "parallel_rounds")
	big := cellF(t, tb, 1, "parallel_rounds")
	if big > small {
		t.Fatalf("parallel rounds grew with ω: %v → %v", small, big)
	}
}

func TestExtXiShort(t *testing.T) {
	tb := ExtXi(shortOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Higher ξ quantile → at least as many groups per service.
	low := cellF(t, tb, 0, "avg_groups_per_service")
	high := cellF(t, tb, 1, "avg_groups_per_service")
	if high < low-1e-9 {
		t.Fatalf("groups shrank with ξ: %v → %v", low, high)
	}
}

func TestExtRoutingShort(t *testing.T) {
	tb := ExtRouting(shortOpts())
	if len(tb.Rows) != 6 { // 2 placements × 3 modes
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// For every placement: optimal ≤ greedy ≤ random latency.
	lat := map[string]map[string]float64{}
	for i := range tb.Rows {
		p, m := cell(tb, i, "placement"), cell(tb, i, "routing")
		if lat[p] == nil {
			lat[p] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(cell(tb, i, "latency_sum"), 64)
		if err != nil {
			t.Fatal(err)
		}
		lat[p][m] = v
	}
	for p, m := range lat {
		if m["optimal"] > m["greedy"]+1e-6 {
			t.Fatalf("%s: optimal %v worse than greedy %v", p, m["optimal"], m["greedy"])
		}
		if m["optimal"] > m["random"]+1e-6 {
			t.Fatalf("%s: optimal %v worse than random %v", p, m["optimal"], m["random"])
		}
	}
}

func TestExtOnlineShort(t *testing.T) {
	tb := ExtOnline(shortOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	churnCold := cellF(t, tb, 0, "churn")
	churnWarm := cellF(t, tb, 1, "churn")
	if churnWarm > churnCold {
		t.Fatalf("warm churn %v exceeds cold churn %v", churnWarm, churnCold)
	}
}

func TestExtDecomposeShort(t *testing.T) {
	tb := ExtDecompose(shortOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if cell(tb, i, "applicable") != "yes" {
			t.Fatalf("row %d: decomposition inapplicable on storage-rich instance", i)
		}
		// When B&B proved optimality, objectives must match.
		if cell(tb, i, "bb_status") == "optimal" {
			d := cellF(t, tb, i, "decomp_obj")
			b := cellF(t, tb, i, "bb_obj")
			if d > b+1e-4 || d < b-1e-4 {
				t.Fatalf("row %d: decomp %v != bb %v", i, d, b)
			}
		}
	}
}

func TestExtContentionShort(t *testing.T) {
	tb := ExtContention(shortOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		idle := cellF(t, tb, i, "latency_idle")
		cont := cellF(t, tb, i, "latency_contended")
		if cont < idle-1e-6 {
			t.Fatalf("row %d: contention reduced latency (%v → %v)", i, idle, cont)
		}
	}
}

func TestExtCloudShort(t *testing.T) {
	tb := ExtCloud(shortOpts())
	if len(tb.Rows) != 4 { // 2 budgets × 2 algorithms
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if cell(tb, i, "missing") != "0" {
			t.Fatalf("row %d: missing instances despite cloud fallback", i)
		}
	}
	// Tight budget rows (budget 3000 < one instance per service) must show
	// cloud offloading for at least one algorithm.
	cloudUsed := false
	for i := range tb.Rows {
		if cell(tb, i, "budget") == "3000.0" && cellF(t, tb, i, "cloud_served") > 0 {
			cloudUsed = true
		}
	}
	if !cloudUsed {
		t.Fatal("no cloud offloading under a hopeless budget")
	}
}

func TestExtClusterShort(t *testing.T) {
	tb := ExtCluster(shortOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	cold := map[string]float64{}
	for i := range tb.Rows {
		if cellF(t, tb, i, "completed") <= 0 {
			t.Fatalf("row %d completed nothing", i)
		}
		cold[cell(tb, i, "algorithm")] = cellF(t, tb, i, "cold_starts")
	}
	if cold["SoCL-online"] > cold["SoCL"] {
		t.Fatalf("online cold starts %v exceed one-shot %v", cold["SoCL-online"], cold["SoCL"])
	}
}

func TestExtDatasetsShort(t *testing.T) {
	tb := ExtDatasets(shortOpts())
	if len(tb.Rows) != 4*4 { // 4 datasets × 4 algorithms
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// SoCL never worse than RP on any dataset.
	objs := map[string]map[string]float64{}
	for i := range tb.Rows {
		d := cell(tb, i, "dataset")
		if objs[d] == nil {
			objs[d] = map[string]float64{}
		}
		objs[d][cell(tb, i, "algorithm")] = cellF(t, tb, i, "objective")
	}
	for d, m := range objs {
		if m["SoCL"] > m["RP"] {
			t.Fatalf("%s: SoCL %v worse than RP %v", d, m["SoCL"], m["RP"])
		}
	}
}

func TestExtCombineBenchShort(t *testing.T) {
	tb := ExtCombineBench(shortOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if got := cell(tb, i, "identical"); got != "yes" {
			t.Fatalf("row %d: incremental placement diverged from naive", i)
		}
		hits := cellF(t, tb, i, "cache_hits")
		rec := cellF(t, tb, i, "recomputed")
		if hits+rec > 0 && hits < rec {
			t.Fatalf("row %d: cache ineffective (%v hits vs %v recomputes)", i, hits, rec)
		}
	}
}

func TestExtFaultsShort(t *testing.T) {
	tb := ExtFaults(shortOpts())
	if len(tb.Rows) != 9 { // (1 rate + corr + flap presets) × 3 policies in short mode
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	labels := map[string]int{}
	for i := range tb.Rows {
		labels[cell(tb, i, "fail_rate")]++
	}
	for _, want := range []string{"corr", "flap"} {
		if labels[want] != 3 {
			t.Fatalf("preset %q rows = %d, want 3 (labels: %v)", want, labels[want], labels)
		}
	}
	viol := map[string]float64{}
	reqs := map[string]float64{}
	for i := range tb.Rows {
		if cell(tb, i, "fail_rate") != "0.150" {
			continue // cross-policy invariants below are per-schedule
		}
		pol := cell(tb, i, "policy")
		viol[pol] = cellF(t, tb, i, "viol_rate")
		reqs[pol] = cellF(t, tb, i, "requests")
	}
	// Identical fault/request streams across policies.
	if reqs["none"] != reqs["repair"] || reqs["none"] != reqs["resolve"] {
		t.Fatalf("request streams diverge across policies: %v", reqs)
	}
	// Repair never serves fewer requests than no repair.
	if viol["repair"] > viol["none"] {
		t.Fatalf("repair violation rate %v exceeds no-repair %v", viol["repair"], viol["none"])
	}
}

func TestExtServeShort(t *testing.T) {
	tb := ExtServe(shortOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	reqs := map[string]float64{}
	for i := range tb.Rows {
		mode := cell(tb, i, "mode")
		reqs[mode] = cellF(t, tb, i, "requests")
		switch mode {
		case "daemon-replay":
			// The replay row carries the bitwise verdict against sim-batch.
			if got := cell(tb, i, "check"); got != "bitwise=ok" {
				t.Fatalf("replay check = %q", got)
			}
		case "sim-batch", "daemon-serve", "daemon-slsv":
			if got := cell(tb, i, "check"); got != "" {
				t.Fatalf("%s check = %q", mode, got)
			}
		default:
			t.Fatalf("unexpected mode %q", mode)
		}
	}
	// Every mode consumes the same recorded request stream.
	for mode, r := range reqs {
		if r != reqs["sim-batch"] {
			t.Fatalf("request streams diverge: %s saw %v, sim-batch %v", mode, r, reqs["sim-batch"])
		}
	}
}

func TestExtScaleShort(t *testing.T) {
	tb := ExtScale(shortOpts())
	if len(tb.Rows) != 4 { // 2 sweep points × (sharded, global)
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if got := cell(tb, i, "err"); got != "" {
			t.Fatalf("row %d err = %q", i, got)
		}
		if got := cellF(t, tb, i, "unserved"); got != 0 {
			t.Fatalf("row %d unserved = %v", i, got)
		}
		switch path := cell(tb, i, "path"); path {
		case "sharded":
			if r := cellF(t, tb, i, "regret_x"); r <= 0 || r > 4 {
				t.Fatalf("row %d regret_x = %v", i, r)
			}
			if s := cellF(t, tb, i, "shards"); s != 4 {
				t.Fatalf("row %d shards = %v", i, s)
			}
		case "global":
			if got := cell(tb, i, "regret_x"); got != "1.000" {
				t.Fatalf("row %d global regret_x = %q", i, got)
			}
		default:
			t.Fatalf("row %d unexpected path %q", i, path)
		}
	}
}

func TestExtScaleShardsOverride(t *testing.T) {
	opts := shortOpts()
	opts.Shards = 2
	tb := ExtScale(opts)
	for i := range tb.Rows {
		if s := cellF(t, tb, i, "shards"); s != 2 {
			t.Fatalf("row %d shards = %v with -shards=2", i, s)
		}
		if got := cell(tb, i, "err"); got != "" {
			t.Fatalf("row %d err = %q", i, got)
		}
	}
}

func TestExtColdstartShort(t *testing.T) {
	tb := ExtColdstart(shortOpts())
	if len(tb.Rows) != 2 { // always-warm baseline + one lifecycle cell
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if got := cell(tb, i, "err"); got != "" {
			t.Fatalf("row %d err = %q", i, got)
		}
		if cellF(t, tb, i, "requests") <= 0 {
			t.Fatalf("row %d served no requests", i)
		}
	}
	// The baseline row never scales to zero and never pays a cold start.
	if cellF(t, tb, 0, "scale0") != 0 || cellF(t, tb, 0, "cold_steps") != 0 {
		t.Fatalf("baseline row reports lifecycle activity: scale0=%v cold=%v",
			cellF(t, tb, 0, "scale0"), cellF(t, tb, 0, "cold_steps"))
	}
	// The lifecycle row must actually exercise scale-to-zero: the carved
	// demand troughs drain the warm sizer, instances are reclaimed, and the
	// returning demand pays cold starts.
	if cellF(t, tb, 1, "scale0") <= 0 || cellF(t, tb, 1, "cold_steps") <= 0 {
		t.Fatalf("lifecycle row shows no scale-to-zero activity: scale0=%v cold=%v",
			cellF(t, tb, 1, "scale0"), cellF(t, tb, 1, "cold_steps"))
	}
	// Both rows replay the same recorded stream.
	if cellF(t, tb, 0, "requests") != cellF(t, tb, 1, "requests") {
		t.Fatal("request streams diverge between rows")
	}
}
