package experiments

import (
	"strconv"

	"repro/internal/opt"
)

// Fig2 reproduces Figure 2: runtime of the exact optimizer (the Gurobi
// stand-in) as the user count grows, for several edge-network sizes. The
// paper's observation — runtime grows exponentially, over tenfold across
// the user sweep — is reproduced in shape; each solve is capped at
// Options.OptTimeLimit and capped runs are marked "(cap)" with the
// incumbent's optimality unproven.
//
// Scale note (EXPERIMENTS.md): the paper sweeps 10–30 servers with Gurobi
// on the y(h,i,k) ILP. Our specialized solver's decomposition-aware bound
// makes instances *easier* as |V| grows (per-service optima stop
// conflicting), so the hardness frontier — where the exponential growth is
// visible before the cap — sits at 6–10 servers. The sweep is placed there;
// the growth-in-|U| shape is identical.
func Fig2(opts Options) *Table {
	nodeScales := []int{6, 8, 10}
	userScales := []int{20, 40, 60}
	if opts.Short {
		nodeScales = []int{6, 8}
		userScales = []int{10, 15, 20}
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Exact optimizer runtime vs user count (log-scale y in the paper)",
		Header: []string{"nodes", "users", "runtime_s", "status", "bb_nodes", "star_obj"},
	}
	limit := opts.optLimit()
	for _, v := range nodeScales {
		for _, u := range userScales {
			in := buildInstance(v, u, 8000, opts.Seed)
			res, err := opt.Solve(in, opt.Options{TimeLimit: limit, Workers: opts.Workers})
			if err != nil {
				panic(err)
			}
			status := res.Status.String()
			if res.Status != opt.Optimal {
				status += " (cap)"
			}
			t.AddRow(itoa(v), itoa(u), sec(res.Elapsed), status,
				itoa64(res.Nodes), f1(res.StarObjective))
		}
	}
	return t
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
