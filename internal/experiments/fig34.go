package experiments

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig3 reproduces Figure 3: (a) similarity between the top services'
// temporal activity profiles across a 1-hour trace, and (b) similarity of
// long (>12-microservice) dependency chains across trace files — the
// paper's evidence of a dynamic, heterogeneous service landscape with
// maximum trace similarity ≈ 0.65.
func Fig3(opts Options) (*Table, *Table) {
	cfg := trace.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.DurationMinutes = 60 // Fig. 3 uses a one-hour trace
	cfg.BaseRatePerMin = 6
	// Sharp in-window peaks: per-service phase shifts then produce the
	// heterogeneous activity profiles Fig. 3(a) reports (similarities
	// "vary significantly across files").
	cfg.PeakTimes = []float64{15, 45}
	cfg.PeakGains = []float64{6, 8}
	cfg.PeakWidth = 6
	if opts.Short {
		cfg.NumServices = 5
		cfg.NumFiles = 4
	}
	tr := trace.Generate(cfg)

	a := &Table{
		ID:     "fig3a",
		Title:  "Pairwise service-profile similarity (1-hour trace)",
		Header: []string{"service_i", "service_j", "cosine_similarity"},
	}
	m := tr.ServiceSimilarityMatrix(5)
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			a.AddRow(itoa(i), itoa(j), f3(m[i][j]))
		}
	}

	b := &Table{
		ID:     "fig3b",
		Title:  "Dependency-chain similarity across trace files (chains > 12 microservices)",
		Header: []string{"metric", "value"},
	}
	values, max := tr.ChainSimilarity()
	b.AddRow("pairs", itoa(len(values)))
	b.AddRow("mean_similarity", f3(stats.Mean(values)))
	b.AddRow("max_similarity", f3(max))
	b.AddRow("min_similarity", f3(stats.Min(values)))
	return a, b
}

// Fig4 reproduces Figure 4: the temporal distribution of user requests over
// a 10-hour trace, showing significant fluctuations and recurring peaks.
func Fig4(opts Options) *Table {
	cfg := trace.DefaultConfig()
	cfg.Seed = opts.Seed
	if opts.Short {
		cfg.DurationMinutes = 120
	}
	tr := trace.Generate(cfg)
	bin := 10.0
	bins := tr.TemporalHistogram(bin)
	t := &Table{
		ID:     "fig4",
		Title:  "Temporal distribution of user requests (10-minute bins)",
		Header: []string{"t_minutes", "requests"},
	}
	for i, b := range bins {
		t.AddRow(f1(float64(i)*bin), itoa(b))
	}
	t.AddRow("peak_to_mean", f3(tr.PeakToMeanRatio(bin)))
	return t
}
