package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/opt"
)

// Fig7 reproduces Figure 7 (a)–(d): the exact optimizer (OPT) versus SoCL
// on objective value and runtime, sweeping the user scale at a fixed
// network size (a, b) and the edge-node scale at a fixed user count (c, d).
// Both algorithms are scored by the shared exact evaluator so objective
// values are directly comparable; OPT optimizes the star-linearized ILP
// with a per-solve time cap, reporting its incumbent when capped (marked
// "(cap)") — mirroring how the paper reports Gurobi at scales where exact
// solving stops being practical.
//
// Both sweeps run through the parallel executor. Objective columns are
// deterministic per seed; the runtime columns (and a capped OPT's
// incumbent) remain wall-clock-dependent exactly as they were serially.
func Fig7(opts Options) (*Table, *Table) {
	userScales := []int{10, 20, 30, 40, 50, 60}
	nodeScales := []int{5, 10, 15, 20, 25, 30}
	fixedNodes, fixedUsers := 10, 40
	if opts.Short {
		userScales = []int{6, 10, 14}
		nodeScales = []int{5, 8}
		fixedNodes, fixedUsers = 8, 10
	}
	limit := opts.OptTimeLimit
	if limit == 0 {
		limit = opts.optLimit()
	}

	users := &Table{
		ID:     "fig7ab",
		Title:  "OPT vs SoCL over user scale (objective & runtime)",
		Header: []string{"users", "opt_obj", "socl_obj", "gap_pct", "opt_runtime_s", "socl_runtime_s", "opt_status"},
	}
	users.Rows = runSweep(opts, "fig7ab", len(userScales), func(i int, seed int64) []string {
		u := userScales[i]
		return optVsSoCLRow(fixedNodes, u, itoa(u), limit, seed, opts.Workers)
	})

	nodes := &Table{
		ID:     "fig7cd",
		Title:  "OPT vs SoCL over edge-node scale (objective & runtime)",
		Header: []string{"nodes", "opt_obj", "socl_obj", "gap_pct", "opt_runtime_s", "socl_runtime_s", "opt_status"},
	}
	nodes.Rows = runSweep(opts, "fig7cd", len(nodeScales), func(i int, seed int64) []string {
		v := nodeScales[i]
		return optVsSoCLRow(v, fixedUsers, itoa(v), limit, seed, opts.Workers)
	})
	return users, nodes
}

func optVsSoCLRow(nodes, users int, label string, limit time.Duration, seed int64, workers int) []string {
	in := buildInstance(nodes, users, 8000, seed)

	t0 := time.Now()
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	soclTime := time.Since(t0)
	soclObj := sol.Evaluation.Objective

	res, err := opt.Solve(in, opt.Options{TimeLimit: limit, WarmStart: &sol.Placement, Workers: workers})
	if err != nil {
		panic(err)
	}
	optObj := soclObj
	status := res.Status.String()
	if res.Status == opt.Optimal || res.Status == opt.Feasible {
		optObj = in.Evaluate(res.Placement).Objective
	}
	if res.Status != opt.Optimal {
		status += " (cap)"
	}
	gap := 0.0
	if optObj > 0 {
		gap = (soclObj - optObj) / optObj * 100
	}
	return []string{label, f1(optObj), f1(soclObj), f3(gap), sec(res.Elapsed), sec(soclTime), status}
}
