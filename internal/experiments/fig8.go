package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/model"
)

// Fig8 reproduces Figure 8 (a)–(d): the weighted objective (cost & latency)
// of RP, JDR, GC-OG and SoCL over growing user scales at 10 edge servers.
// The paper's shape — SoCL lowest at every scale, GC-OG second but slow,
// JDR inflated by redundancy, RP worst and degrading fastest — is what this
// driver regenerates, together with each algorithm's decision runtime.
//
// User scales run through the parallel sweep executor (one instance per
// point, derived seed); within a point the four placements are scored by a
// single DeltaEvaluator advanced placement-to-placement, so only the
// requests the placement diff touches are re-routed between algorithms.
func Fig8(opts Options) *Table {
	userScales := []int{80, 120, 160, 200}
	nodes := 10
	if opts.Short {
		userScales = []int{20, 40}
		nodes = 8
	}
	t := &Table{
		ID:    "fig8",
		Title: "Objective (cost & latency) vs user scale, 10 servers",
		Header: []string{"users", "algorithm", "objective", "cost", "latency_sum",
			"runtime_s", "instances"},
	}
	rows := runSweep(opts, "fig8", len(userScales), func(i int, seed int64) [][]string {
		u := userScales[i]
		in := buildInstance(nodes, u, 8000, seed)
		var out [][]string
		var de *model.DeltaEvaluator
		for _, algo := range fig8Algorithms(opts) {
			t0 := time.Now()
			p, err := algo.place(in)
			el := time.Since(t0)
			if err != nil {
				panic(err)
			}
			if de == nil {
				de = model.NewDeltaEvaluator(in, p, model.RouteModeOptimal, 0)
			} else {
				de.AdvanceTo(p)
			}
			ev := de.Eval()
			out = append(out, []string{itoa(u), algo.name, f1(ev.Objective), f1(ev.Cost),
				f1(ev.LatencySum), sec(el), itoa(p.Instances())})
		}
		return out
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r...)
	}
	return t
}

type namedAlgo struct {
	name  string
	place func(*model.Instance) (model.Placement, error)
}

func fig8Algorithms(opts Options) []namedAlgo {
	return []namedAlgo{
		{"RP", func(in *model.Instance) (model.Placement, error) {
			return baselines.RP(in, opts.Seed), nil
		}},
		{"JDR", func(in *model.Instance) (model.Placement, error) {
			return baselines.JDR(in), nil
		}},
		{"GC-OG", func(in *model.Instance) (model.Placement, error) {
			return baselines.GCOG(in).Placement, nil
		}},
		{"SoCL", func(in *model.Instance) (model.Placement, error) {
			sol, err := core.Solve(in, core.DefaultConfig())
			if err != nil {
				return model.Placement{}, err
			}
			return sol.Placement, nil
		}},
	}
}
