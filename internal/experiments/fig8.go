package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/model"
)

// Fig8 reproduces Figure 8 (a)–(d): the weighted objective (cost & latency)
// of RP, JDR, GC-OG and SoCL over growing user scales at 10 edge servers.
// The paper's shape — SoCL lowest at every scale, GC-OG second but slow,
// JDR inflated by redundancy, RP worst and degrading fastest — is what this
// driver regenerates, together with each algorithm's decision runtime.
func Fig8(opts Options) *Table {
	userScales := []int{80, 120, 160, 200}
	nodes := 10
	if opts.Short {
		userScales = []int{20, 40}
		nodes = 8
	}
	t := &Table{
		ID:    "fig8",
		Title: "Objective (cost & latency) vs user scale, 10 servers",
		Header: []string{"users", "algorithm", "objective", "cost", "latency_sum",
			"runtime_s", "instances"},
	}
	for _, u := range userScales {
		in := buildInstance(nodes, u, 8000, opts.Seed)
		for _, algo := range fig8Algorithms(opts) {
			t0 := time.Now()
			p, err := algo.place(in)
			el := time.Since(t0)
			if err != nil {
				panic(err)
			}
			ev := in.Evaluate(p)
			t.AddRow(itoa(u), algo.name, f1(ev.Objective), f1(ev.Cost),
				f1(ev.LatencySum), sec(el), itoa(p.Instances()))
		}
	}
	return t
}

type namedAlgo struct {
	name  string
	place func(*model.Instance) (model.Placement, error)
}

func fig8Algorithms(opts Options) []namedAlgo {
	return []namedAlgo{
		{"RP", func(in *model.Instance) (model.Placement, error) {
			return baselines.RP(in, opts.Seed), nil
		}},
		{"JDR", func(in *model.Instance) (model.Placement, error) {
			return baselines.JDR(in), nil
		}},
		{"GC-OG", func(in *model.Instance) (model.Placement, error) {
			return baselines.GCOG(in).Placement, nil
		}},
		{"SoCL", func(in *model.Instance) (model.Placement, error) {
			sol, err := core.Solve(in, core.DefaultConfig())
			if err != nil {
				return model.Placement{}, err
			}
			return sol.Placement, nil
		}},
	}
}
