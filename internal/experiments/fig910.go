package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Fig9 reproduces Figure 9: the small-scale testbed evaluation on 8 edge
// nodes with 50 and 70 users — total objective, provisioning cost, and
// completion time for RP, JDR and SoCL, plus the per-user median latency
// the paper quotes (RP/JDR/SoCL medians 2.795/3.989/2.796 at 50 users).
// The testbed is the time-slotted cluster simulator (DESIGN.md §2).
//
// User scales are independent sweep points (parallel executor, derived
// seed per point); within a point the three algorithms replay the same
// trace so their rows stay comparable. The testbed topology and catalog
// are fixed across scales — each point rebuilds them from the root seed,
// which is deterministic and keeps points free of shared state.
func Fig9(opts Options) *Table {
	userScales := []int{50, 70}
	nodes, slots := 8, 6
	if opts.Short {
		userScales = []int{12}
		slots = 3
	}
	t := &Table{
		ID:    "fig9",
		Title: "Testbed (simulated cluster), 8 edge nodes: objective, cost, delay",
		Header: []string{"users", "algorithm", "objective_sum", "cost_sum",
			"mean_delay", "median_user_delay", "max_delay"},
	}
	rows := runSweep(opts, "fig9", len(userScales), func(i int, seed int64) [][]string {
		u := userScales[i]
		g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), opts.Seed)
		cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
		var out [][]string
		for _, algo := range fig910Algorithms(opts) {
			cfg := sim.DefaultConfig(g, cat, u, seed)
			cfg.DurationMinutes = float64(slots) * cfg.SlotMinutes
			res, err := sim.Run(cfg, algo)
			if err != nil {
				panic(fmt.Sprintf("fig9 %s: %v (completed %d slots)", algo.Name(), err, partialSlots(res)))
			}
			objSum, costSum := 0.0, 0.0
			for _, s := range res.Slots {
				objSum += s.Objective
				costSum += s.Cost
			}
			out = append(out, []string{itoa(u), res.Algorithm, f1(objSum), f1(costSum),
				f3(res.MeanDelay()), f3(res.MedianDelay()), f3(res.MaxDelay())})
		}
		return out
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r...)
	}
	return t
}

// fig10Point is one algorithm's replay of the mobility trace.
type fig10Point struct {
	series  [][]string
	summary []string
}

// Fig10 reproduces Figure 10: the 4-hour mobility trace on 16 edge nodes
// with 50 users issuing requests every ~5 minutes under stochastic
// dependency chains — average delay per timestamp for RP, JDR and SoCL,
// plus the per-algorithm maximum delay the paper uses as its stability
// metric (SoCL 48.84 ms vs JDR 90.04 ms and RP 77.29 ms).
//
// The sweep dimension here is the algorithm, not the instance: every
// point must replay the *same* trace or the comparison is meaningless, so
// all points build their simulation from the root seed and the executor's
// derived per-point seed is deliberately unused.
func Fig10(opts Options) (*Table, *Table) {
	nodes, users := 16, 50
	duration := 240.0
	if opts.Short {
		nodes, users = 10, 12
		duration = 30
	}

	seriesT := &Table{
		ID:     "fig10",
		Title:  "Average delay per timestamp, 4-hour mobility trace, 16 edge nodes",
		Header: []string{"t_minutes", "algorithm", "avg_delay", "max_delay", "requests"},
	}
	summaryT := &Table{
		ID:     "fig10summary",
		Title:  "Delay summary over the mobility trace",
		Header: []string{"algorithm", "mean_delay", "p95_delay", "max_delay"},
	}
	algos := fig910Algorithms(opts)
	points := runSweep(opts, "fig10", len(algos), func(i int, _ int64) fig10Point {
		g := topology.RandomGeometric(nodes, 0.3, topology.DefaultGenConfig(), opts.Seed)
		cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), opts.Seed)
		cfg := sim.DefaultConfig(g, cat, users, opts.Seed)
		cfg.DurationMinutes = duration
		res, err := sim.Run(cfg, algos[i])
		if err != nil {
			panic(fmt.Sprintf("fig10 %s: %v (completed %d slots)", algos[i].Name(), err, partialSlots(res)))
		}
		var pt fig10Point
		for _, s := range res.Slots {
			pt.series = append(pt.series, []string{f1(s.TimeMinutes), res.Algorithm,
				f3(s.AvgDelay), f3(s.MaxDelay), itoa(s.Requests)})
		}
		p95 := 0.0
		if len(res.AllDelays) > 0 {
			p95 = stats.Percentile(res.AllDelays, 95)
		}
		pt.summary = []string{res.Algorithm, f3(res.MeanDelay()), f3(p95), f3(res.MaxDelay())}
		return pt
	})
	for _, pt := range points {
		seriesT.Rows = append(seriesT.Rows, pt.series...)
		summaryT.AddRow(pt.summary...)
	}
	return seriesT, summaryT
}

func fig910Algorithms(opts Options) []sim.Algorithm {
	return []sim.Algorithm{
		sim.RP{Seed: opts.Seed},
		sim.JDR{},
		sim.SoCL{Config: core.DefaultConfig()},
	}
}
