package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// runSweep evaluates fn over n sweep points through a worker pool and
// returns the results ordered by point index. Two properties make parallel
// sweeps reproduce the serial tables bit for bit:
//
//   - Each point gets its own derived seed, stats.SplitSeed(opts.Seed,
//     "<label>/<i>"), a pure function of the root seed and the point's
//     index — never of scheduling order or worker identity.
//   - Results land in out[i], so the caller's row order is the sweep order
//     regardless of which point finishes first.
//
// Workers comes from opts.Workers: 0 means GOMAXPROCS, 1 forces the serial
// path (no goroutines at all, useful under -race and in differential
// tests). fn must not share mutable state across points; drivers that reuse
// one instance across points (ExtBudget's delta-scored budget sweep) stay
// on plain serial loops instead.
func runSweep[R any](opts Options, label string, n int, fn func(i int, seed int64) R) []R {
	out := make([]R, n)
	seedOf := func(i int) int64 {
		return stats.SplitSeed(opts.Seed, fmt.Sprintf("%s/%d", label, i))
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i, seedOf(i))
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i, seedOf(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
