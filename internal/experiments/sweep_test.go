package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestRunSweepDeterministic pins the executor's two contracts on a synthetic
// sweep: results are ordered by point index whatever the worker count, and
// each point's seed is the documented pure function of root seed and index.
func TestRunSweepDeterministic(t *testing.T) {
	const n = 17
	type point struct {
		I    int
		Seed int64
	}
	fn := func(i int, seed int64) point { return point{i, seed} }
	for _, workers := range []int{1, 2, 4, 9} {
		opts := Options{Seed: 42, Workers: workers}
		got := runSweep(opts, "synthetic", n, fn)
		for i, p := range got {
			if p.I != i {
				t.Fatalf("workers=%d: slot %d holds point %d", workers, i, p.I)
			}
			want := stats.SplitSeed(42, fmt.Sprintf("synthetic/%d", i))
			if p.Seed != want {
				t.Fatalf("workers=%d point %d: seed %d, want %d", workers, i, p.Seed, want)
			}
		}
	}
}

// maskCols blanks wall-clock columns so parallel-vs-serial comparisons test
// the deterministic cells only.
func maskCols(tb *Table, cols ...string) [][]string {
	mask := map[int]bool{}
	for i, h := range tb.Header {
		for _, c := range cols {
			if h == c {
				mask[i] = true
			}
		}
	}
	out := make([][]string, len(tb.Rows))
	for r, row := range tb.Rows {
		cp := append([]string(nil), row...)
		for i := range cp {
			if mask[i] {
				cp[i] = "-"
			}
		}
		out[r] = cp
	}
	return out
}

// TestSweepParallelMatchesSerial proves the figure generators emit identical
// tables under the serial and parallel executors — runtime columns excepted,
// as those measure wall clock by design. Fig2/Fig7 are exempt overall: their
// capped exact-optimizer solves make even the *objective* columns
// wall-clock-dependent, which no executor can mask.
func TestSweepParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		serial := Options{Short: true, Seed: seed, Workers: 1}
		par := Options{Short: true, Seed: seed, Workers: 4}

		a, b := Fig8(serial), Fig8(par)
		if !reflect.DeepEqual(maskCols(a, "runtime_s"), maskCols(b, "runtime_s")) {
			t.Fatalf("seed %d: fig8 parallel diverges from serial:\n%v\nvs\n%v",
				seed, maskCols(a, "runtime_s"), maskCols(b, "runtime_s"))
		}

		f9s, f9p := Fig9(serial), Fig9(par)
		if !reflect.DeepEqual(f9s.Rows, f9p.Rows) {
			t.Fatalf("seed %d: fig9 parallel diverges from serial", seed)
		}

		s1, s2 := Fig10(serial)
		p1, p2 := Fig10(par)
		if !reflect.DeepEqual(s1.Rows, p1.Rows) || !reflect.DeepEqual(s2.Rows, p2.Rows) {
			t.Fatalf("seed %d: fig10 parallel diverges from serial", seed)
		}
	}
}
