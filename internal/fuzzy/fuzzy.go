// Package fuzzy implements Fuzzy AHP (analytic hierarchy process) with
// triangular fuzzy numbers and Chang's extent analysis, used by the SoCL
// storage-planning stage (Algorithm 5) to weight the four instance-priority
// criteria of Definition 9: deployment cost κ, storage footprint φ,
// requesting-user count |𝕌|, and chain-order factor ℝ.
package fuzzy

import (
	"fmt"
	"math"
)

// Triangular is a triangular fuzzy number (L, M, U) with L ≤ M ≤ U.
type Triangular struct {
	L, M, U float64
}

// T constructs a triangular fuzzy number, panicking on malformed input
// (construction sites are all static).
func T(l, m, u float64) Triangular {
	if !(l <= m && m <= u) {
		panic(fmt.Sprintf("fuzzy: invalid triangular (%v,%v,%v)", l, m, u))
	}
	return Triangular{l, m, u}
}

// Linguistic scale for pairwise importance judgments (Saaty scale fuzzified
// with spread 1). Reciprocal returns the fuzzy reciprocal for the mirrored
// cell.
var (
	Equal          = T(1, 1, 1)
	WeaklyMore     = T(1, 2, 3)
	ModeratelyMore = T(2, 3, 4)
	StronglyMore   = T(4, 5, 6)
	ExtremelyMore  = T(6, 7, 8)
)

// Add returns a ⊕ b.
func (a Triangular) Add(b Triangular) Triangular {
	return Triangular{a.L + b.L, a.M + b.M, a.U + b.U}
}

// Mul returns a ⊗ b (approximate multiplication for positive TFNs).
func (a Triangular) Mul(b Triangular) Triangular {
	return Triangular{a.L * b.L, a.M * b.M, a.U * b.U}
}

// Reciprocal returns (1/U, 1/M, 1/L).
func (a Triangular) Reciprocal() Triangular {
	return Triangular{1 / a.U, 1 / a.M, 1 / a.L}
}

// Defuzzify returns the graded-mean value (L + 4M + U)/6.
func (a Triangular) Defuzzify() float64 { return (a.L + 4*a.M + a.U) / 6 }

// Possibility returns V(a ≥ b), the degree of possibility that a is greater
// than or equal to b under Chang's extent analysis.
func Possibility(a, b Triangular) float64 {
	switch {
	case a.M >= b.M:
		return 1
	case b.L >= a.U:
		return 0
	default:
		return (b.L - a.U) / ((a.M - a.U) - (b.M - b.L))
	}
}

// ExtentWeights computes crisp criteria weights from a fuzzy pairwise
// comparison matrix via Chang's extent analysis. The matrix must be square
// with unit diagonal. Weights are non-negative and sum to 1; when the
// possibility degrees are all zero for some criterion the weights fall back
// to defuzzified row sums (a standard degenerate-case repair).
func ExtentWeights(matrix [][]Triangular) ([]float64, error) {
	n := len(matrix)
	if n == 0 {
		return nil, fmt.Errorf("fuzzy: empty matrix")
	}
	for i, row := range matrix {
		if len(row) != n {
			return nil, fmt.Errorf("fuzzy: row %d has %d entries, want %d", i, len(row), n)
		}
		if row[i] != Equal {
			return nil, fmt.Errorf("fuzzy: diagonal entry %d is not Equal", i)
		}
		for j, c := range row {
			if c.L <= 0 || c.L > c.M || c.M > c.U {
				return nil, fmt.Errorf("fuzzy: invalid entry (%d,%d): %+v", i, j, c)
			}
		}
	}

	// Row extents S_i = Σ_j a_ij ⊗ (Σ_i Σ_j a_ij)^{-1}.
	rowSums := make([]Triangular, n)
	grand := Triangular{}
	for i := range matrix {
		s := Triangular{}
		for _, c := range matrix[i] {
			s = s.Add(c)
		}
		rowSums[i] = s
		grand = grand.Add(s)
	}
	inv := grand.Reciprocal()
	extents := make([]Triangular, n)
	for i := range extents {
		extents[i] = rowSums[i].Mul(inv)
	}

	// d(A_i) = min_{j≠i} V(S_i ≥ S_j).
	d := make([]float64, n)
	for i := range extents {
		m := math.Inf(1)
		for j := range extents {
			if j == i {
				continue
			}
			if v := Possibility(extents[i], extents[j]); v < m {
				m = v
			}
		}
		if n == 1 {
			m = 1
		}
		d[i] = m
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum <= 1e-12 {
		// Degenerate: fall back to defuzzified extents.
		for i := range d {
			d[i] = extents[i].Defuzzify()
			sum += d[i]
		}
	}
	for i := range d {
		d[i] /= sum
	}
	return d, nil
}

// ReciprocalMatrix builds a full fuzzy comparison matrix from the strict
// upper triangle: upper[i][j-i-1] compares criterion i to criterion j
// (i < j). Lower cells are filled with reciprocals; the diagonal is Equal.
func ReciprocalMatrix(upper [][]Triangular) ([][]Triangular, error) {
	n := len(upper) + 1
	for i, row := range upper {
		if len(row) != n-1-i {
			return nil, fmt.Errorf("fuzzy: upper row %d has %d entries, want %d", i, len(row), n-1-i)
		}
	}
	m := make([][]Triangular, n)
	for i := range m {
		m[i] = make([]Triangular, n)
		m[i][i] = Equal
	}
	for i := 0; i < n-1; i++ {
		for off, c := range upper[i] {
			j := i + 1 + off
			m[i][j] = c
			m[j][i] = c.Reciprocal()
		}
	}
	return m, nil
}

// SoCLCriteria indexes the four storage-planning criteria.
const (
	CritUsers   = iota // |𝕌_{v_k}^{m_i}|: requesting users
	CritOrder          // ℝ: chain-order factor
	CritCost           // κ: deployment cost
	CritStorage        // φ: storage footprint
	NumCriteria
)

// SoCLWeights returns the criteria weights for the local demand factor ρ
// (Definition 9) from the paper-aligned judgment matrix: user demand
// dominates, chain position matters moderately, cost weakly, storage least.
func SoCLWeights() []float64 {
	upper := [][]Triangular{
		// users vs: order, cost, storage
		{WeaklyMore, ModeratelyMore, StronglyMore},
		// order vs: cost, storage
		{WeaklyMore, ModeratelyMore},
		// cost vs: storage
		{WeaklyMore},
	}
	m, err := ReciprocalMatrix(upper)
	if err != nil {
		panic(err) // static input
	}
	w, err := ExtentWeights(m)
	if err != nil {
		panic(err)
	}
	return w
}
