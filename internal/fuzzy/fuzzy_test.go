package fuzzy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestTriangularOps(t *testing.T) {
	a := T(1, 2, 3)
	b := T(2, 3, 4)
	if got := a.Add(b); got != (Triangular{3, 5, 7}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Mul(b); got != (Triangular{2, 6, 12}) {
		t.Fatalf("Mul = %+v", got)
	}
	r := b.Reciprocal()
	if math.Abs(r.L-0.25) > 1e-12 || math.Abs(r.U-0.5) > 1e-12 {
		t.Fatalf("Reciprocal = %+v", r)
	}
	if got := T(1, 2, 3).Defuzzify(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Defuzzify = %v", got)
	}
}

func TestTInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("T(3,2,1) did not panic")
		}
	}()
	T(3, 2, 1)
}

func TestPossibility(t *testing.T) {
	if Possibility(T(1, 2, 3), T(1, 2, 3)) != 1 {
		t.Fatal("identical TFNs should have possibility 1")
	}
	if Possibility(T(1, 2, 3), T(0, 1, 2)) != 1 {
		t.Fatal("clearly larger should give 1")
	}
	if Possibility(T(0, 1, 2), T(3, 4, 5)) != 0 {
		t.Fatal("disjoint lower should give 0")
	}
	// Partial overlap: a=(1,2,4), b=(3,4,5): V(a>=b) = (3-4)/((2-4)-(4-3)) = 1/3.
	got := Possibility(T(1, 2, 4), T(3, 4, 5))
	if math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("partial possibility = %v, want 1/3", got)
	}
}

func TestExtentWeightsIdentityMatrix(t *testing.T) {
	// All-Equal matrix → uniform weights.
	n := 4
	m := make([][]Triangular, n)
	for i := range m {
		m[i] = make([]Triangular, n)
		for j := range m[i] {
			m[i][j] = Equal
		}
	}
	w, err := ExtentWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, wi := range w {
		if math.Abs(wi-0.25) > 1e-9 {
			t.Fatalf("weights = %v, want uniform", w)
		}
	}
}

func TestExtentWeightsDominantCriterion(t *testing.T) {
	upper := [][]Triangular{
		{StronglyMore, StronglyMore},
		{Equal},
	}
	m, err := ReciprocalMatrix(upper)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ExtentWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] <= w[1] || w[0] <= w[2] {
		t.Fatalf("dominant criterion not heaviest: %v", w)
	}
	sum := w[0] + w[1] + w[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestExtentWeightsErrors(t *testing.T) {
	if _, err := ExtentWeights(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := ExtentWeights([][]Triangular{{Equal, Equal}}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	bad := [][]Triangular{{WeaklyMore}}
	if _, err := ExtentWeights(bad); err == nil {
		t.Fatal("non-Equal diagonal accepted")
	}
	zero := [][]Triangular{
		{Equal, {0, 1, 2}},
		{{0.5, 1, 2}, Equal},
	}
	if _, err := ExtentWeights(zero); err == nil {
		t.Fatal("non-positive L accepted")
	}
}

func TestReciprocalMatrixShape(t *testing.T) {
	upper := [][]Triangular{
		{WeaklyMore, ModeratelyMore},
		{StronglyMore},
	}
	m, err := ReciprocalMatrix(upper)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("size = %d", len(m))
	}
	// m[1][0] must be reciprocal of m[0][1].
	want := WeaklyMore.Reciprocal()
	if m[1][0] != want {
		t.Fatalf("m[1][0] = %+v, want %+v", m[1][0], want)
	}
	if _, err := ReciprocalMatrix([][]Triangular{{Equal}, {Equal}}); err == nil {
		t.Fatal("ragged upper triangle accepted")
	}
}

func TestSoCLWeightsOrdering(t *testing.T) {
	w := SoCLWeights()
	if len(w) != NumCriteria {
		t.Fatalf("weights = %v", w)
	}
	sum := 0.0
	for _, wi := range w {
		if wi < 0 {
			t.Fatalf("negative weight in %v", w)
		}
		sum += wi
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if !(w[CritUsers] >= w[CritOrder] && w[CritOrder] >= w[CritCost] && w[CritCost] >= w[CritStorage]) {
		t.Fatalf("weight ordering violated: %v", w)
	}
}

// Property: extent weights are a probability vector for any consistent
// random reciprocal matrix built from the linguistic scale.
func TestExtentWeightsProbabilityVectorProperty(t *testing.T) {
	scale := []Triangular{Equal, WeaklyMore, ModeratelyMore, StronglyMore, ExtremelyMore}
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 3 + r.Intn(3)
		upper := make([][]Triangular, n-1)
		for i := range upper {
			upper[i] = make([]Triangular, n-1-i)
			for j := range upper[i] {
				c := scale[r.Intn(len(scale))]
				if r.Float64() < 0.5 {
					c = c.Reciprocal()
					if c.L > c.M || c.M > c.U || c.L <= 0 {
						return false
					}
				}
				upper[i][j] = c
			}
		}
		m, err := ReciprocalMatrix(upper)
		if err != nil {
			return false
		}
		w, err := ExtentWeights(m)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, wi := range w {
			if wi < -1e-12 || math.IsNaN(wi) {
				return false
			}
			sum += wi
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Possibility is within [0,1] and V(a≥b)=1 or V(b≥a)=1 (at least
// one direction fully possible).
func TestPossibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		mk := func() Triangular {
			l := r.Float64() * 5
			m := l + r.Float64()*3
			u := m + r.Float64()*3
			return T(l, m, u)
		}
		a, b := mk(), mk()
		pab, pba := Possibility(a, b), Possibility(b, a)
		if pab < 0 || pab > 1 || pba < 0 || pba > 1 {
			return false
		}
		return pab == 1 || pba == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
