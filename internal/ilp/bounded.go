package ilp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/model"
)

// BoundedMIP couples a bounded-variable LP with integrality markers.
// Compared to MIP, binary variables live as [0,1] bounds instead of rows,
// and branch-and-bound tightens bounds instead of appending constraints —
// both the relaxations and the node setup are substantially cheaper.
type BoundedMIP struct {
	Prob    *lp.BoundedProblem
	Integer []bool
}

// Validate checks structural sanity.
func (m *BoundedMIP) Validate() error {
	if m.Prob == nil {
		return fmt.Errorf("ilp: nil problem")
	}
	if err := m.Prob.Validate(); err != nil {
		return err
	}
	if len(m.Integer) != m.Prob.NumVars {
		return fmt.Errorf("ilp: Integer length %d != NumVars %d", len(m.Integer), m.Prob.NumVars)
	}
	return nil
}

// SolveBounded runs branch and bound over the bounded-variable relaxation.
// Semantics match Solve (same Options and Result): the warm-started parallel
// engine by default (engine.go), the original serial search under opt.Naive.
func SolveBounded(m *BoundedMIP, opt Options) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if opt.Naive {
		return solveBoundedNaive(m, opt)
	}
	return solveBoundedEngine(m, opt)
}

// solveBoundedNaive is the reference search: serial, depth-first, one
// cloned problem and from-scratch SolveBounded per node. Pinned against the
// engine by the differential tests; must not change behaviour.
func solveBoundedNaive(m *BoundedMIP, opt Options) (Result, error) {
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	start := time.Now()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	res := Result{Status: NoSolution, Objective: math.Inf(1), Bound: math.Inf(-1)}
	var incumbent []float64

	type node struct {
		lower, upper []float64
		lpObj        float64
	}
	root := node{
		lower: append([]float64(nil), m.Prob.Lower...),
		upper: append([]float64(nil), m.Prob.Upper...),
	}
	stack := []node{root}
	rootSolved := false
	rootBound := math.Inf(-1)

	for len(stack) > 0 {
		if opt.MaxNodes > 0 && res.Nodes >= opt.MaxNodes {
			break
		}
		//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		if incumbent != nil && nd.lpObj >= res.Objective-1e-9 && rootSolved {
			continue
		}

		p := m.Prob.Clone()
		copy(p.Lower, nd.lower)
		copy(p.Upper, nd.upper)
		feasibleBounds := true
		for j := range p.Lower {
			if p.Lower[j] > p.Upper[j] {
				feasibleBounds = false
				break
			}
		}
		if !feasibleBounds {
			continue
		}
		sol, err := lp.SolveBounded(p)
		if err != nil {
			return Result{}, err
		}
		switch sol.Status {
		case lp.Infeasible:
			if !rootSolved {
				//socllint:ignore detrand elapsed wall time is reported, never branched on
				return Result{Status: Infeasible, Nodes: res.Nodes, Elapsed: time.Since(start)}, nil
			}
			continue
		case lp.Unbounded:
			if !rootSolved {
				return Result{}, fmt.Errorf("ilp: relaxation unbounded")
			}
			continue
		case lp.IterLimit:
			continue
		}
		if !rootSolved {
			rootSolved = true
			rootBound = sol.Objective
		}
		if incumbent != nil && sol.Objective >= res.Objective-1e-9 {
			continue
		}

		branchVar, frac := -1, 0.0
		for j := range m.Integer {
			if !m.Integer[j] {
				continue
			}
			f := sol.X[j] - math.Floor(sol.X[j])
			d := math.Min(f, 1-f)
			if d > intTol && d > frac {
				frac, branchVar = d, j
			}
		}
		if branchVar == -1 {
			if sol.Objective < res.Objective {
				res.Objective = sol.Objective
				incumbent = append([]float64(nil), sol.X...)
				if opt.Gap > 0 && gapOK(res.Objective, rootBound, opt.Gap) {
					goto done
				}
			}
			continue
		}

		fl := math.Floor(sol.X[branchVar])
		up := node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
			lpObj: sol.Objective,
		}
		up.lower[branchVar] = fl + 1
		down := node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
			lpObj: sol.Objective,
		}
		down.upper[branchVar] = fl
		stack = append(stack, up, down)
	}
done:
	//socllint:ignore detrand elapsed wall time is reported, never branched on
	res.Elapsed = time.Since(start)
	res.Bound = rootBound
	if incumbent == nil {
		if len(stack) == 0 && rootSolved {
			res.Status = Infeasible
		}
		return res, nil
	}
	res.X = incumbent
	if len(stack) == 0 || (opt.Gap > 0 && gapOK(res.Objective, rootBound, opt.Gap)) {
		res.Status = Optimal
	} else {
		res.Status = Feasible
	}
	return res, nil
}

// BuildSoCLBounded constructs the Definition-4 ILP with binaries as [0,1]
// bounds — the same model as BuildSoCL with a much smaller tableau (no
// explicit x ≤ 1 rows, no y ≤ 0 forbidden-pair rows: forbidden assignments
// get a zero upper bound instead).
func BuildSoCLBounded(in *model.Instance) (*BoundedMIP, *VarMap) {
	M, V := in.M(), in.V()
	reqs := in.Workload.Requests

	vm := &VarMap{NumServices: M, NumNodes: V, YBase: make([]int, len(reqs))}
	n := M * V
	for h := range reqs {
		vm.YBase[h] = n
		n += len(reqs[h].Chain) * V
	}
	vm.Total = n

	p := lp.NewBoundedProblem(n)
	integer := make([]bool, n)
	for j := range integer {
		integer[j] = true
		p.SetBounds(j, 0, 1)
	}

	for i := 0; i < M; i++ {
		kappa := in.Workload.Catalog.Service(i).DeployCost
		for k := 0; k < V; k++ {
			p.SetObjective(vm.XIdx(i, k), in.Lambda*kappa)
		}
	}
	for h := range reqs {
		req := &reqs[h]
		for t := range req.Chain {
			for k := 0; k < V; k++ {
				coef := in.StarCoef(req, t, k)
				if math.IsInf(coef, 1) {
					p.SetBounds(vm.YIdx(h, t, k), 0, 0) // unreachable pair
					continue
				}
				p.SetObjective(vm.YIdx(h, t, k), (1-in.Lambda)*coef)
			}
		}
	}

	for h := range reqs {
		req := &reqs[h]
		for t, svc := range req.Chain {
			row := make(map[int]float64, V)
			for k := 0; k < V; k++ {
				row[vm.YIdx(h, t, k)] = 1
			}
			p.AddConstraint(row, lp.EQ, 1)
			for k := 0; k < V; k++ {
				p.AddConstraint(map[int]float64{
					vm.YIdx(h, t, k): 1,
					vm.XIdx(svc, k):  -1,
				}, lp.LE, 0)
			}
		}
	}
	for k := 0; k < V; k++ {
		row := make(map[int]float64, M)
		for i := 0; i < M; i++ {
			row[vm.XIdx(i, k)] = in.Workload.Catalog.Service(i).Storage
		}
		p.AddConstraint(row, lp.LE, in.Graph.Node(k).Storage)
	}
	budgetRow := make(map[int]float64, M*V)
	for i := 0; i < M; i++ {
		kappa := in.Workload.Catalog.Service(i).DeployCost
		for k := 0; k < V; k++ {
			budgetRow[vm.XIdx(i, k)] = kappa
		}
	}
	p.AddConstraint(budgetRow, lp.LE, in.Budget)
	for h := range reqs {
		req := &reqs[h]
		if math.IsInf(req.Deadline, 1) {
			continue
		}
		row := make(map[int]float64)
		for t := range req.Chain {
			for k := 0; k < V; k++ {
				if c := in.StarCoef(req, t, k); !math.IsInf(c, 1) {
					row[vm.YIdx(h, t, k)] = c
				}
			}
		}
		p.AddConstraint(row, lp.LE, req.Deadline)
	}
	return &BoundedMIP{Prob: p, Integer: integer}, vm
}
