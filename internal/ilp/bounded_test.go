package ilp

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
	"repro/internal/stats"
)

func TestBoundedKnapsackMatchesRowBased(t *testing.T) {
	p := lp.NewBoundedProblem(3)
	p.SetObjective(0, -10)
	p.SetObjective(1, -13)
	p.SetObjective(2, -7)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 1)
	}
	p.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, lp.LE, 6)
	res, err := SolveBounded(&BoundedMIP{Prob: p, Integer: []bool{true, true, true}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-(-20)) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal -20", res.Status, res.Objective)
	}
}

func TestBoundedMIPInfeasible(t *testing.T) {
	p := lp.NewBoundedProblem(1)
	p.SetBounds(0, 0, 1)
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 2)
	res, err := SolveBounded(&BoundedMIP{Prob: p, Integer: []bool{true}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestBoundedMIPIntegerInfeasible(t *testing.T) {
	p := lp.NewBoundedProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 0.4)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 0.6)
	res, err := SolveBounded(&BoundedMIP{Prob: p, Integer: []bool{true}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestBoundedValidate(t *testing.T) {
	if _, err := SolveBounded(&BoundedMIP{}, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := lp.NewBoundedProblem(2)
	if _, err := SolveBounded(&BoundedMIP{Prob: p, Integer: []bool{true}}, Options{}); err == nil {
		t.Fatal("integer length mismatch accepted")
	}
}

// Differential property: bounded B&B matches row-based B&B on random binary
// programs.
func TestBoundedMIPMatchesRowBasedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 4 + r.Intn(4)
		pb := lp.NewBoundedProblem(n)
		pr := lp.NewProblem(n)
		for j := 0; j < n; j++ {
			c := math.Round((r.Float64()*20-10)*4) / 4
			pb.SetObjective(j, c)
			pr.SetObjective(j, c)
			pb.SetBounds(j, 0, 1)
			pr.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
		}
		for i := 0; i < 2; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round(r.Float64()*5*4) / 4
			}
			rhs := math.Round(r.Float64()*float64(n)*3*4) / 4
			pb.AddConstraint(coeffs, lp.LE, rhs)
			pr.AddConstraint(coeffs, lp.LE, rhs)
		}
		integer := make([]bool, n)
		for j := range integer {
			integer[j] = true
		}
		rb, err1 := SolveBounded(&BoundedMIP{Prob: pb, Integer: integer}, Options{})
		rr, err2 := Solve(&MIP{Prob: pr, Integer: integer}, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if rb.Status != rr.Status {
			return false
		}
		if rb.Status != Optimal {
			return true
		}
		return math.Abs(rb.Objective-rr.Objective) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The bounded SoCL model must agree with the row-based model and be faster
// to build/solve on tiny instances.
func TestBuildSoCLBoundedMatches(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := soclInstance(3, 3, seed)
		mb, vmb := BuildSoCLBounded(in)
		mr, _ := BuildSoCL(in)
		rb, err := SolveBounded(mb, Options{TimeLimit: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Solve(mr, Options{TimeLimit: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if rb.Status != Optimal || rr.Status != Optimal {
			t.Fatalf("seed %d: statuses %v/%v", seed, rb.Status, rr.Status)
		}
		if math.Abs(rb.Objective-rr.Objective) > 1e-4 {
			t.Fatalf("seed %d: bounded %v != row-based %v", seed, rb.Objective, rr.Objective)
		}
		p := vmb.Placement(rb.X)
		for _, s := range in.Workload.ServicesUsed() {
			if p.Count(s) == 0 {
				t.Fatalf("seed %d: service %d uncovered", seed, s)
			}
		}
	}
}
