// Parallel branch-and-bound engine shared by Solve (row-based MIP, cold
// bounds-overlay node LPs) and SolveBounded (bounded MIP, warm-started node
// LPs). Architecture (DESIGN.md §9, §14):
//
//   - the root's children seed a work-stealing pool (internal/bb): each
//     worker dives depth-first on a private stack and shares the "up" sibling
//     of a branch onto its deque only while some other worker is starving
//     (bb.Ctx.ShouldShare) — with one worker nothing is ever shared and the
//     search is the exact serial dive;
//   - Options.StaticFrontier restores the previous scheduler — a serial
//     breadth-first expansion to a fixed frontier of 64 subtree roots drained
//     through an atomic cursor — as a reference schedule for differential
//     tests;
//   - the incumbent is shared through an atomic best-objective (lock-free
//     reads on the prune path) plus a mutex-guarded vector with a
//     deterministic tie-break: at equal objective within model.ObjTol the
//     lexicographically smallest solution vector wins;
//   - node and time limits are enforced globally through one atomic node
//     counter and a shared deadline.
//
// Determinism: every node's LP result is a pure function of its tree
// position (row engine: cold solve of base+bounds; bounded engine: warm from
// its parent for dive children, from the shared root snapshot for stolen or
// stacked siblings — never from whatever a worker last touched), and pruning keeps
// ties alive (a subtree is cut only when its bound exceeds the incumbent by
// more than model.ObjTol). Every solution within ObjTol of the optimum is
// therefore enumerated under every schedule, and the lexicographic tie-break
// picks the same winner — so any worker count returns the same result, which
// the differential tests pin against the serial reference.
package ilp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bb"
	"repro/internal/invariant"
	"repro/internal/lp"
	"repro/internal/model"
)

// resolveWorkers maps the Options.Workers knob to a pool size.
func resolveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// frontierTarget is the Options.StaticFrontier expansion size: the serial
// breadth-first prefix stops once this many unexplored subtree roots are
// queued. It is a fixed constant — NOT a function of the worker count — so
// the expansion phase, and with it each node's warm-start lineage, is
// identical for every Options.Workers value.
const frontierTarget = 64

// mostFractional returns the most fractional integer variable of x, or -1
// when x is integer feasible — the same branching rule as the naive search.
func mostFractional(integer []bool, x []float64) int {
	branchVar, frac := -1, 0.0
	for j := range integer {
		if !integer[j] {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > intTol && d > frac {
			frac, branchVar = d, j
		}
	}
	return branchVar
}

// lexLessX orders solution vectors for the incumbent tie-break: elementwise,
// integer variables compared on their rounded values first so LP noise on an
// integral variable cannot flip the order.
func lexLessX(a, b []float64, integer []bool) bool {
	for j := range a {
		av, bv := a[j], b[j]
		if j < len(integer) && integer[j] {
			av, bv = math.Round(av), math.Round(bv)
		}
		if av < bv {
			return true
		}
		if av > bv {
			return false
		}
	}
	return false
}

// incumbentStore shares the incumbent between workers. bits carries the best
// objective for lock-free prune reads; the vector and the tie-break run
// under the mutex.
type incumbentStore struct {
	mu   sync.Mutex
	bits atomic.Uint64
	x    []float64
	obj  float64
	ok   bool
}

func (s *incumbentStore) init() { s.bits.Store(math.Float64bits(math.Inf(1))) }

// best returns the current best objective (+Inf read as "no incumbent").
func (s *incumbentStore) best() (float64, bool) {
	v := math.Float64frombits(s.bits.Load())
	return v, !math.IsInf(v, 1)
}

// offer installs x as the incumbent when it is strictly better than the
// current one (beyond model.ObjTol), or tied within model.ObjTol and
// lexicographically smaller. Reports whether x was installed.
func (s *incumbentStore) offer(x []float64, obj float64, integer []bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ok {
		if obj > s.obj+model.ObjTol {
			return false
		}
		if obj >= s.obj-model.ObjTol && !lexLessX(x, s.x, integer) {
			return false
		}
	}
	s.x = append(s.x[:0], x...)
	s.obj, s.ok = obj, true
	s.bits.Store(math.Float64bits(obj))
	return true
}

// take returns the final incumbent after all workers have stopped.
func (s *incumbentStore) take() ([]float64, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ok {
		return nil, math.Inf(1), false
	}
	return append([]float64(nil), s.x...), s.obj, true
}

// engineState is the control block shared by both engine variants.
type engineState struct {
	opt       Options
	store     incumbentStore
	nodes     atomic.Int64
	aborted   atomic.Bool
	gapStop   atomic.Bool
	deadline  time.Time
	rootBound float64
}

func (e *engineState) stopped() bool { return e.aborted.Load() || e.gapStop.Load() }

// countNode claims one node against the global limits, reporting false (and
// flagging the abort) when a limit is hit.
func (e *engineState) countNode() bool {
	n := e.nodes.Add(1)
	if e.opt.MaxNodes > 0 && n > int64(e.opt.MaxNodes) {
		e.aborted.Store(true)
		return false
	}
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.aborted.Store(true)
		return false
	}
	return true
}

// pruned is the tie-keeping bound test: a subtree is cut only when its bound
// exceeds the incumbent by more than model.ObjTol, so equal-objective
// solutions stay reachable under every schedule (the determinism argument
// needs the full tie class enumerated).
func (e *engineState) pruned(bound float64) bool {
	best, ok := e.store.best()
	return ok && bound > best+model.ObjTol
}

// noteIncumbent runs after a successful offer: it checks the gap stop.
func (e *engineState) noteIncumbent() {
	if e.opt.Gap <= 0 {
		return
	}
	if best, ok := e.store.best(); ok && gapOK(best, e.rootBound, e.opt.Gap) {
		e.gapStop.Store(true)
	}
}

// finish assembles the Result exactly as the naive searches do: Optimal when
// the tree was exhausted (or the gap target met), Feasible/NoSolution when a
// limit stopped the search, Infeasible when exhaustion found no integer
// point. Nodes is clamped to MaxNodes (the counter may overshoot by the
// worker count).
func (e *engineState) finish(start time.Time) Result {
	res := Result{Objective: math.Inf(1), Bound: e.rootBound}
	//socllint:ignore detrand elapsed wall time is reported, never branched on
	res.Elapsed = time.Since(start)
	n := e.nodes.Load()
	if e.opt.MaxNodes > 0 && n > int64(e.opt.MaxNodes) {
		n = int64(e.opt.MaxNodes)
	}
	res.Nodes = int(n)
	x, obj, ok := e.store.take()
	aborted := e.aborted.Load()
	if !ok {
		if aborted {
			res.Status = NoSolution
		} else {
			res.Status = Infeasible
		}
		return res
	}
	res.X = x
	res.Objective = obj
	if !aborted || (e.opt.Gap > 0 && gapOK(obj, e.rootBound, e.opt.Gap)) {
		res.Status = Optimal
	} else {
		res.Status = Feasible
	}
	return res
}

// runFrontier drains the frontier with a worker pool; process explores one
// subtree and returns its first error.
func runFrontier[N any](e *engineState, workers int, frontier []N, process func(N, int) error) error {
	if len(frontier) == 0 || e.stopped() {
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !e.stopped() {
				i := next.Add(1) - 1
				if i >= int64(len(frontier)) {
					return
				}
				if err := process(frontier[i], worker); err != nil {
					select {
					case errCh <- err:
					default:
					}
					e.aborted.Store(true)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// --- row-based engine (Solve) ---

type rowEngine struct {
	engineState
	m *MIP
}

// solveRowEngine is the parallel counterpart of solveNaive. Node LPs are
// cold bounds-overlay solves of the shared base problem — a pure function of
// the node's branch bounds, so results are schedule-independent by
// construction.
func solveRowEngine(m *MIP, opt Options) (Result, error) {
	workers := resolveWorkers(opt.Workers)
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	start := time.Now()
	e := &rowEngine{m: m}
	e.opt = opt
	e.rootBound = math.Inf(-1)
	e.store.init()
	if opt.TimeLimit > 0 {
		e.deadline = start.Add(opt.TimeLimit)
	}
	ws := &lp.Workspace{}

	// Root relaxation, handled explicitly so Infeasible/Unbounded map to the
	// same results the naive search returns.
	e.nodes.Add(1)
	rootSol, err := solveNodeLP(m.Prob, nil, ws)
	if err != nil {
		return Result{}, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		//socllint:ignore detrand elapsed wall time is reported, never branched on
		return Result{Status: Infeasible, Nodes: 1, Elapsed: time.Since(start)}, nil
	case lp.Unbounded:
		return Result{}, fmt.Errorf("ilp: relaxation unbounded")
	case lp.IterLimit:
		res := e.finish(start)
		return res, nil
	}
	e.rootBound = rootSol.Objective

	var queue []bbNode
	if bv := mostFractional(m.Integer, rootSol.X); bv == -1 {
		if e.store.offer(rootSol.X, rootSol.Objective, m.Integer) {
			e.verify(rootSol.X, rootSol.Objective)
			e.noteIncumbent()
		}
	} else {
		fl := math.Floor(rootSol.X[bv])
		queue = append(queue,
			bbNode{bounds: []branchBound{{Var: bv, Upper: true, Val: fl}}, lpObj: rootSol.Objective},
			bbNode{bounds: []branchBound{{Var: bv, Upper: false, Val: fl + 1}}, lpObj: rootSol.Objective})
	}

	if opt.StaticFrontier {
		// Reference scheduler: deterministic breadth-first expansion to the
		// frontier, then an atomic-cursor pool over the subtree roots.
		for len(queue) > 0 && len(queue) < frontierTarget && !e.stopped() {
			nd := queue[0]
			queue = queue[1:]
			down, up, branched, perr := e.processNode(nd, ws)
			if perr != nil {
				return Result{}, perr
			}
			if branched {
				queue = append(queue, down, up)
			}
		}
		err = runFrontier(&e.engineState, workers, queue, func(nd bbNode, _ int) error {
			return e.dfsFrom(nd)
		})
		if err != nil {
			return Result{}, err
		}
		return e.finish(start), nil
	}

	// Work-stealing scheduler: the root children seed the pool directly; load
	// balance comes from workers sharing "up" siblings while others starve.
	wss := make([]*lp.Workspace, workers)
	for i := range wss {
		wss[i] = &lp.Workspace{}
	}
	_, err = bb.Run(workers, queue, e.stopped, func(c *bb.Ctx[bbNode], nd bbNode) error {
		return e.dfsSteal(c, nd, wss[c.Worker()])
	})
	if err != nil {
		return Result{}, err
	}
	return e.finish(start), nil
}

// processNode solves one node; when it branches, down/up are the two
// children (the down branch is the dive-first child, mirroring the naive
// LIFO order).
func (e *rowEngine) processNode(nd bbNode, ws *lp.Workspace) (down, up bbNode, branched bool, err error) {
	if !e.countNode() {
		return
	}
	if len(nd.bounds) > 0 && e.pruned(nd.lpObj) {
		return
	}
	sol, serr := solveNodeLP(e.m.Prob, nd.bounds, ws)
	if serr != nil {
		err = serr
		return
	}
	if sol.Status != lp.Optimal {
		return // Infeasible/IterLimit: unexplorable; Unbounded cannot occur below the root
	}
	if e.pruned(sol.Objective) {
		return
	}
	bv := mostFractional(e.m.Integer, sol.X)
	if bv == -1 {
		if e.store.offer(sol.X, sol.Objective, e.m.Integer) {
			e.verify(sol.X, sol.Objective)
			e.noteIncumbent()
		}
		return
	}
	fl := math.Floor(sol.X[bv])
	down = bbNode{bounds: appendBound(nd.bounds, branchBound{Var: bv, Upper: true, Val: fl}), lpObj: sol.Objective}
	up = bbNode{bounds: appendBound(nd.bounds, branchBound{Var: bv, Upper: false, Val: fl + 1}), lpObj: sol.Objective}
	branched = true
	return
}

// dfsSteal explores one subtree depth-first (down child first) on a private
// stack, sharing the "up" sibling with the pool only while some worker is
// starving. Node LPs are cold solves, so where a node runs never changes its
// result.
func (e *rowEngine) dfsSteal(c *bb.Ctx[bbNode], root bbNode, ws *lp.Workspace) error {
	stack := []bbNode{root}
	for len(stack) > 0 && !e.stopped() {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		down, up, branched, err := e.processNode(nd, ws)
		if err != nil {
			return err
		}
		if branched {
			if c.ShouldShare() {
				c.Push(up)
			} else {
				stack = append(stack, up)
			}
			stack = append(stack, down)
		}
	}
	return nil
}

// dfsFrom explores one frontier subtree depth-first (down child first) —
// the Options.StaticFrontier worker body.
func (e *rowEngine) dfsFrom(root bbNode) error {
	ws := &lp.Workspace{}
	stack := []bbNode{root}
	for len(stack) > 0 && !e.stopped() {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		down, up, branched, err := e.processNode(nd, ws)
		if err != nil {
			return err
		}
		if branched {
			stack = append(stack, up, down)
		}
	}
	return nil
}

// verify re-checks an accepted incumbent against the base problem from
// scratch under -tags soclinvariants: constraint rows, nonnegativity,
// integrality, and the objective recomputation.
func (e *rowEngine) verify(x []float64, obj float64) {
	if !invariant.Enabled {
		return
	}
	for j, isInt := range e.m.Integer {
		if isInt {
			invariant.Assertf(math.Abs(x[j]-math.Round(x[j])) <= intTol,
				"ilp engine incumbent: variable %d = %v is not integral", j, x[j])
		}
	}
	invariant.CheckLPRowSolution(e.m.Prob, x, obj, "ilp engine incumbent")
}

func appendBound(bounds []branchBound, b branchBound) []branchBound {
	out := make([]branchBound, len(bounds)+1)
	copy(out, bounds)
	out[len(bounds)] = b
	return out
}

// --- bounded engine (SolveBounded) ---

type boundedNode struct {
	lower, upper []float64
	lpObj        float64
	// snap is the parent's post-solve tableau (work-stealing path only): the
	// up sibling restores it instead of the root snapshot, so its warm source
	// is the same parent basis the down child dove from. nil means the root
	// snapshot (seeds and the StaticFrontier path).
	snap *lp.WarmSnapshot
}

type boundedEngine struct {
	engineState
	m *BoundedMIP
	// snap is the root relaxation's tableau. Seeded nodes (and every stack
	// node under StaticFrontier) restart from it; work-stealing nodes carry a
	// parent snapshot instead (boundedNode.snap) so their LP lineage is the
	// parent basis — still a pure function of tree position, never of which
	// worker (or schedule) ran the node. Dive children warm directly from
	// their parent's tableau, which in depth-first order is the last solve.
	snap *lp.WarmSnapshot
	// snapPool recycles per-branch parent snapshots: each is restored exactly
	// once (by the stacked or stolen up sibling) and then returns here.
	snapPool sync.Pool
}

// solveBoundedEngine is the parallel, warm-started counterpart of
// solveBoundedNaive.
func solveBoundedEngine(m *BoundedMIP, opt Options) (Result, error) {
	workers := resolveWorkers(opt.Workers)
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	start := time.Now()
	e := &boundedEngine{m: m}
	e.opt = opt
	e.rootBound = math.Inf(-1)
	e.store.init()
	if opt.TimeLimit > 0 {
		e.deadline = start.Add(opt.TimeLimit)
	}
	lpCfg := lp.WarmConfig{Dense: opt.DenseLP}
	ws, err := lp.NewWarmSolverCfg(m.Prob, lpCfg)
	if err != nil {
		return Result{}, err
	}

	e.nodes.Add(1)
	rootSol, err := ws.SolveWithBounds(m.Prob.Lower, m.Prob.Upper)
	if err != nil {
		return Result{}, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		//socllint:ignore detrand elapsed wall time is reported, never branched on
		return Result{Status: Infeasible, Nodes: 1, Elapsed: time.Since(start)}, nil
	case lp.Unbounded:
		return Result{}, fmt.Errorf("ilp: relaxation unbounded")
	case lp.IterLimit:
		return e.finish(start), nil
	}
	e.rootBound = rootSol.Objective
	//socllint:ignore snapshotpair root snapshot is stored on the engine; every queued/frontier node Restores it (processNode fromSnapshot=true)
	e.snap = ws.Snapshot()

	var queue []boundedNode
	if bv := mostFractional(m.Integer, rootSol.X); bv == -1 {
		if e.store.offer(rootSol.X, rootSol.Objective, m.Integer) {
			e.verify(rootSol.X, rootSol.Objective)
			e.noteIncumbent()
		}
	} else {
		down, up := branchBounded(m.Prob.Lower, m.Prob.Upper, bv, rootSol.X[bv], rootSol.Objective)
		queue = append(queue, down, up)
	}

	solvers := make([]*lp.WarmSolver, workers)
	for i := range solvers {
		if solvers[i], err = lp.NewWarmSolverCfg(m.Prob, lpCfg); err != nil {
			return Result{}, err
		}
	}

	if opt.StaticFrontier {
		// Reference scheduler: breadth-first expansion, atomic-cursor pool.
		for len(queue) > 0 && len(queue) < frontierTarget && !e.stopped() {
			nd := queue[0]
			queue = queue[1:]
			down, up, branched, perr := e.processNode(nd, ws, true)
			if perr != nil {
				return Result{}, perr
			}
			if branched {
				queue = append(queue, down, up)
			}
		}
		err = runFrontier(&e.engineState, workers, queue, func(nd boundedNode, worker int) error {
			return e.dfsFrom(nd, solvers[worker])
		})
		if err != nil {
			return Result{}, err
		}
		return e.finish(start), nil
	}

	// Work-stealing scheduler: the root children seed the pool; every seeded
	// or stolen node restarts from the root snapshot, so the warm lineage of
	// a node depends only on its tree position, never on which worker (or
	// which schedule) ran it.
	_, err = bb.Run(workers, queue, e.stopped, func(c *bb.Ctx[boundedNode], nd boundedNode) error {
		return e.dfsSteal(c, nd, solvers[c.Worker()])
	})
	if err != nil {
		return Result{}, err
	}
	return e.finish(start), nil
}

// processNode solves one node. fromSnapshot selects the warm source: true
// restores the root tableau first (queued siblings and frontier roots),
// false warms straight from the solver's current state (dive children, whose
// parent was by construction the previous solve on this solver).
func (e *boundedEngine) processNode(nd boundedNode, ws *lp.WarmSolver, fromSnapshot bool) (down, up boundedNode, branched bool, err error) {
	if !e.countNode() {
		return
	}
	if e.pruned(nd.lpObj) {
		return
	}
	for j := range nd.lower {
		if nd.lower[j] > nd.upper[j] {
			return // branching emptied the interval
		}
	}
	if fromSnapshot {
		if nd.snap != nil {
			ws.Restore(nd.snap)
			e.snapPool.Put(nd.snap)
		} else {
			ws.Restore(e.snap)
		}
	}
	sol, serr := ws.SolveWithBounds(nd.lower, nd.upper)
	if serr != nil {
		err = serr
		return
	}
	if sol.Status != lp.Optimal {
		return
	}
	if e.pruned(sol.Objective) {
		return
	}
	bv := mostFractional(e.m.Integer, sol.X)
	if bv == -1 {
		if e.store.offer(sol.X, sol.Objective, e.m.Integer) {
			e.verify(sol.X, sol.Objective)
			invariant.CheckWarmFactorization(ws, "ilp bounded engine incumbent")
			e.noteIncumbent()
		}
		return
	}
	down, up = branchBounded(nd.lower, nd.upper, bv, sol.X[bv], sol.Objective)
	branched = true
	return
}

// dfsSteal explores one subtree depth-first on a private stack. The down
// child is processed immediately on the same solver (warm from the parent
// tableau it just produced, fromSnap=false); the up child is either shared
// with the pool (when a worker is starving) or stacked locally — both paths
// restart it from the root snapshot, so sharing changes the schedule but
// never a node's warm lineage.
func (e *boundedEngine) dfsSteal(c *bb.Ctx[boundedNode], root boundedNode, ws *lp.WarmSolver) error {
	var stack []boundedNode
	cur, fromSnap, have := root, true, true
	for have && !e.stopped() {
		down, up, branched, err := e.processNode(cur, ws, fromSnap)
		if err != nil {
			return err
		}
		switch {
		case branched:
			// The solver still holds cur's optimal tableau — the parent basis
			// for both children. Hand it to the up sibling before the down
			// dive mutates the solver.
			ps, _ := e.snapPool.Get().(*lp.WarmSnapshot)
			up.snap = ws.SnapshotTo(ps)
			if c.ShouldShare() {
				c.Push(up)
			} else {
				stack = append(stack, up)
			}
			cur, fromSnap = down, false
		case len(stack) > 0:
			cur, fromSnap = stack[len(stack)-1], true
			stack = stack[:len(stack)-1]
		default:
			have = false
		}
	}
	return nil
}

// dfsFrom explores one frontier subtree depth-first — the
// Options.StaticFrontier worker body. The down child is
// processed immediately on the same solver (warm from the parent tableau it
// just produced); the up child is stacked and later restarted from the root
// snapshot.
func (e *boundedEngine) dfsFrom(root boundedNode, ws *lp.WarmSolver) error {
	var stack []boundedNode
	cur, fromSnap, have := root, true, true
	for have && !e.stopped() {
		down, up, branched, err := e.processNode(cur, ws, fromSnap)
		if err != nil {
			return err
		}
		switch {
		case branched:
			stack = append(stack, up)
			cur, fromSnap = down, false
		case len(stack) > 0:
			cur, fromSnap = stack[len(stack)-1], true
			stack = stack[:len(stack)-1]
		default:
			have = false
		}
	}
	return nil
}

// verify re-checks an accepted incumbent from scratch under
// -tags soclinvariants.
func (e *boundedEngine) verify(x []float64, obj float64) {
	if !invariant.Enabled {
		return
	}
	for j, isInt := range e.m.Integer {
		if isInt {
			invariant.Assertf(math.Abs(x[j]-math.Round(x[j])) <= intTol,
				"ilp bounded engine incumbent: variable %d = %v is not integral", j, x[j])
		}
	}
	invariant.CheckLPBoundedSolution(e.m.Prob, x, obj, "ilp bounded engine incumbent")
}

// branchBounded builds the two children of a bounded node: down tightens the
// upper bound to floor(xv), up raises the lower bound to floor(xv)+1.
func branchBounded(lower, upper []float64, bv int, xv, lpObj float64) (down, up boundedNode) {
	fl := math.Floor(xv)
	down = boundedNode{
		lower: append([]float64(nil), lower...),
		upper: append([]float64(nil), upper...),
		lpObj: lpObj,
	}
	down.upper[bv] = fl
	up = boundedNode{
		lower: append([]float64(nil), lower...),
		upper: append([]float64(nil), upper...),
		lpObj: lpObj,
	}
	up.lower[bv] = fl + 1
	return down, up
}
