package ilp

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/lp"
)

// WriteLP serializes a MIP in the CPLEX LP file format, which Gurobi,
// CPLEX, SCIP, HiGHS and GLPK all read. This is the repository's bridge to
// external solvers: the SoCL ILP built by BuildSoCL/BuildSoCLBounded can be
// exported and solved by a commercial optimizer to double-check the
// built-in exact solvers (see DESIGN.md §2 — the paper used Gurobi).
//
// Variable j is named x<j>. Binary/integer markers go to the General
// section (bounds carry the 0/1 restriction for binaries).
func WriteLP(w io.Writer, prob *lp.Problem, integer []bool) error {
	if prob == nil {
		return fmt.Errorf("ilp: nil problem")
	}
	if err := prob.Validate(); err != nil {
		return err
	}
	if integer != nil && len(integer) != prob.NumVars {
		return fmt.Errorf("ilp: integer length %d != NumVars %d", len(integer), prob.NumVars)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `\ SoCL ILP export (CPLEX LP format)`)
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	writeLinear(bw, prob.Objective)
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, c := range prob.Constraints {
		fmt.Fprintf(bw, " c%d:", i)
		coeffs := make([]float64, prob.NumVars)
		//socllint:ignore detrand map scatter into a dense slice indexed by key; result is iteration-order-independent
		for j, v := range c.Coeffs {
			coeffs[j] = v
		}
		writeLinear(bw, coeffs)
		switch c.Rel {
		case lp.LE:
			fmt.Fprintf(bw, " <= %g\n", c.RHS)
		case lp.GE:
			fmt.Fprintf(bw, " >= %g\n", c.RHS)
		case lp.EQ:
			fmt.Fprintf(bw, " = %g\n", c.RHS)
		}
	}

	if integer != nil {
		fmt.Fprintln(bw, "General")
		line := 0
		for j, isInt := range integer {
			if !isInt {
				continue
			}
			fmt.Fprintf(bw, " x%d", j)
			line++
			if line%10 == 0 {
				fmt.Fprintln(bw)
			}
		}
		if line%10 != 0 {
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// WriteBoundedLP serializes a BoundedMIP, emitting its variable bounds in
// the Bounds section.
func WriteBoundedLP(w io.Writer, m *BoundedMIP) error {
	if err := m.Validate(); err != nil {
		return err
	}
	prob := m.Prob
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `\ SoCL ILP export (CPLEX LP format, bounded variables)`)
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	writeLinear(bw, prob.Objective)
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, c := range prob.Constraints {
		fmt.Fprintf(bw, " c%d:", i)
		coeffs := make([]float64, prob.NumVars)
		//socllint:ignore detrand map scatter into a dense slice indexed by key; result is iteration-order-independent
		for j, v := range c.Coeffs {
			coeffs[j] = v
		}
		writeLinear(bw, coeffs)
		switch c.Rel {
		case lp.LE:
			fmt.Fprintf(bw, " <= %g\n", c.RHS)
		case lp.GE:
			fmt.Fprintf(bw, " >= %g\n", c.RHS)
		case lp.EQ:
			fmt.Fprintf(bw, " = %g\n", c.RHS)
		}
	}

	fmt.Fprintln(bw, "Bounds")
	for j := 0; j < prob.NumVars; j++ {
		lo, up := prob.Lower[j], prob.Upper[j]
		switch {
		//socllint:ignore floateq structural zero: LP-format default bound, assigned not computed
		case math.IsInf(up, 1) && lo == 0:
			// default bound; omit
		case math.IsInf(up, 1):
			fmt.Fprintf(bw, " x%d >= %g\n", j, lo)
		default:
			fmt.Fprintf(bw, " %g <= x%d <= %g\n", lo, j, up)
		}
	}

	fmt.Fprintln(bw, "General")
	line := 0
	for j, isInt := range m.Integer {
		if !isInt {
			continue
		}
		fmt.Fprintf(bw, " x%d", j)
		line++
		if line%10 == 0 {
			fmt.Fprintln(bw)
		}
	}
	if line%10 != 0 {
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// writeLinear emits "+ 2 x0 - 3.5 x4 ..." skipping zero coefficients (a
// lone "0 x0" is emitted for the all-zero expression, which LP format
// requires to be non-empty).
func writeLinear(w io.Writer, coeffs []float64) {
	wrote := false
	for j, v := range coeffs {
		//socllint:ignore floateq structural zero coefficients are skipped exactly; a tolerance would drop real terms
		if v == 0 {
			continue
		}
		if v >= 0 {
			fmt.Fprintf(w, " + %g x%d", v, j)
		} else {
			fmt.Fprintf(w, " - %g x%d", -v, j)
		}
		wrote = true
	}
	if !wrote {
		fmt.Fprint(w, " 0 x0")
	}
}
