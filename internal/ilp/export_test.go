package ilp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lp"
)

func TestWriteLPKnapsack(t *testing.T) {
	p := lp.NewProblem(3)
	p.SetObjective(0, -10)
	p.SetObjective(1, -13)
	p.SetObjective(2, -7)
	p.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, lp.LE, 6)
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 0)
	p.AddConstraint(map[int]float64{1: 1, 2: 1}, lp.EQ, 1)
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, []bool{true, true, true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize", "Subject To", "General", "End",
		"- 10 x0", "- 13 x1", "- 7 x2",
		"+ 3 x0 + 4 x1 + 2 x2 <= 6",
		">= 0", "= 1",
		" x0 x1 x2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPValidation(t *testing.T) {
	if err := WriteLP(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := lp.NewProblem(2)
	if err := WriteLP(&bytes.Buffer{}, p, []bool{true}); err == nil {
		t.Fatal("integer length mismatch accepted")
	}
}

func TestWriteLPZeroObjective(t *testing.T) {
	p := lp.NewProblem(1)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obj: 0 x0") {
		t.Fatalf("empty objective not emitted:\n%s", buf.String())
	}
	// No General section without integer markers.
	if strings.Contains(buf.String(), "General") {
		t.Fatal("General section without integers")
	}
}

func TestWriteBoundedLPSoCLModel(t *testing.T) {
	in := soclInstance(3, 3, 1)
	m, vm := BuildSoCLBounded(in)
	var buf bytes.Buffer
	if err := WriteBoundedLP(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Minimize", "Subject To", "Bounds", "General", "End"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing section %q", want)
		}
	}
	// Every binary variable appears: spot-check first and last.
	if !strings.Contains(out, " x0") {
		t.Fatal("x0 missing")
	}
	last := vm.Total - 1
	if !strings.Contains(out, "x"+itoaTest(last)) {
		t.Fatalf("x%d missing", last)
	}
	// The export must parse back structurally: count constraint lines.
	lines := strings.Split(out, "\n")
	constraints := 0
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "c") && strings.Contains(l, ":") {
			constraints++
		}
	}
	if constraints != len(m.Prob.Constraints) {
		t.Fatalf("exported %d constraints, model has %d", constraints, len(m.Prob.Constraints))
	}
}

func TestWriteBoundedLPValidation(t *testing.T) {
	if err := WriteBoundedLP(&bytes.Buffer{}, &BoundedMIP{}); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func itoaTest(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
