// Package ilp implements a generic mixed-integer linear programming solver:
// branch and bound over the LP relaxation provided by package lp. Together
// they form the "optimizer" substitute for Gurobi used by the paper's OPT
// comparisons (see DESIGN.md): exact on small instances, exponential at
// scale — which is precisely the behaviour Fig. 2 / Fig. 7 document.
package ilp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// MIP couples an LP with integrality markers. Integer variables are assumed
// binary-or-bounded via explicit constraints in the LP (the SoCL builder
// adds x ≤ 1 rows); branching introduces the floor/ceil bounds.
type MIP struct {
	Prob    *lp.Problem
	Integer []bool // len == Prob.NumVars
}

// Validate checks structural sanity.
func (m *MIP) Validate() error {
	if m.Prob == nil {
		return fmt.Errorf("ilp: nil problem")
	}
	if err := m.Prob.Validate(); err != nil {
		return err
	}
	if len(m.Integer) != m.Prob.NumVars {
		return fmt.Errorf("ilp: Integer length %d != NumVars %d", len(m.Integer), m.Prob.NumVars)
	}
	return nil
}

// Options bounds the search.
type Options struct {
	TimeLimit time.Duration // 0 = unlimited
	MaxNodes  int           // 0 = unlimited
	// Gap: stop when (incumbent - bound)/max(|incumbent|,1) ≤ Gap.
	Gap float64
	// Workers sizes the parallel branch-and-bound worker pool: 0 means
	// GOMAXPROCS, 1 runs the deterministic engine on one goroutine. Any
	// worker count returns the same optimum and — via the lexicographic
	// incumbent tie-break — the same solution vector (DESIGN.md §9).
	// Node/time limits make which incumbent a *capped* run holds
	// schedule-dependent, exactly as they made it wall-clock-dependent
	// serially.
	Workers int
	// Naive forces the original serial depth-first search, kept verbatim as
	// the reference implementation the engine is differentially tested
	// against (mirrors combine.Config.Naive / baselines.GCOGConfig.Naive).
	Naive bool
	// StaticFrontier reverts the engine to the fixed-frontier scheduler (a
	// serial breadth-first expansion to 64 subtree roots drained through an
	// atomic cursor) instead of the work-stealing pool. Kept as a reference
	// schedule the stealing engine is differentially tested against; results
	// are identical either way.
	StaticFrontier bool
	// DenseLP makes the bounded engine's warm solvers use the dense tableau
	// engine (lp.WarmConfig{Dense: true}) instead of the sparse revised
	// simplex — an escape hatch plus the pivot for dense-vs-sparse
	// differential tests and benchmarks.
	DenseLP bool
}

// Status of a MIP solve.
type Status int

// Solve outcomes. Feasible means the search stopped early (time/node limit)
// with an incumbent whose optimality is not proven.
const (
	Optimal Status = iota
	Feasible
	Infeasible
	NoSolution // stopped early with no incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	default:
		return "?"
	}
}

// Result of a MIP solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	Bound     float64 // proven lower bound on the optimum
	Nodes     int     // branch-and-bound nodes explored
	Elapsed   time.Duration
}

const intTol = 1e-6

type bbNode struct {
	// extra bounds accumulated along the branch: (var, isUpper, value)
	bounds []branchBound
	lpObj  float64 // parent LP bound, for ordering
}

// branchBound is one branching bound (var, isUpper, value) — structurally
// the overlay row the lp package applies on top of the shared base problem.
type branchBound = lp.BoundRow

// Solve runs branch and bound: the parallel engine by default (engine.go),
// or the original serial depth-first search when opt.Naive is set.
func Solve(m *MIP, opt Options) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if opt.Naive {
		return solveNaive(m, opt)
	}
	return solveRowEngine(m, opt)
}

// solveNaive is the reference search: serial, depth-first, one LP per node.
// It is pinned against the engine by the differential tests and must not
// change behaviour.
func solveNaive(m *MIP, opt Options) (Result, error) {
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	start := time.Now()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	res := Result{Status: NoSolution, Objective: math.Inf(1), Bound: math.Inf(-1)}
	var incumbent []float64

	stack := []bbNode{{}}
	rootSolved := false
	rootBound := math.Inf(-1)

	for len(stack) > 0 {
		if opt.MaxNodes > 0 && res.Nodes >= opt.MaxNodes {
			break
		}
		//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		// Prune against incumbent using the parent bound before solving.
		if incumbent != nil && node.lpObj >= res.Objective-1e-9 && len(node.bounds) > 0 {
			continue
		}

		sol, err := solveNodeLP(m.Prob, node.bounds, nil)
		if err != nil {
			return Result{}, err
		}
		if sol.Status == lp.Infeasible {
			if !rootSolved {
				rootSolved = true
				//socllint:ignore detrand elapsed wall time is reported, never branched on
				res.Elapsed = time.Since(start)
				return Result{Status: Infeasible, Nodes: res.Nodes, Elapsed: res.Elapsed}, nil
			}
			continue
		}
		if sol.Status == lp.Unbounded {
			if !rootSolved {
				return Result{}, fmt.Errorf("ilp: relaxation unbounded")
			}
			continue
		}
		if sol.Status == lp.IterLimit {
			// Treat as unexplorable; conservative (keeps incumbent valid).
			continue
		}
		if !rootSolved {
			rootSolved = true
			rootBound = sol.Objective
		}
		if incumbent != nil && sol.Objective >= res.Objective-1e-9 {
			continue // bound prune
		}

		// Find most fractional integer variable.
		branchVar, frac := -1, 0.0
		for j := range m.Integer {
			if !m.Integer[j] {
				continue
			}
			f := sol.X[j] - math.Floor(sol.X[j])
			d := math.Min(f, 1-f)
			if d > intTol && d > frac {
				frac, branchVar = d, j
			}
		}
		if branchVar == -1 {
			// Integer feasible.
			if sol.Objective < res.Objective {
				res.Objective = sol.Objective
				incumbent = append([]float64(nil), sol.X...)
				if opt.Gap > 0 && gapOK(res.Objective, rootBound, opt.Gap) {
					break
				}
			}
			continue
		}

		fl := math.Floor(sol.X[branchVar])
		// Push the "up" child first so the "down" child (often cheaper for
		// deployment variables) is explored first (LIFO).
		up := append(append([]branchBound(nil), node.bounds...), branchBound{Var: branchVar, Upper: false, Val: fl + 1})
		down := append(append([]branchBound(nil), node.bounds...), branchBound{Var: branchVar, Upper: true, Val: fl})
		stack = append(stack, bbNode{bounds: up, lpObj: sol.Objective}, bbNode{bounds: down, lpObj: sol.Objective})
	}

	//socllint:ignore detrand elapsed wall time is reported, never branched on
	res.Elapsed = time.Since(start)
	res.Bound = rootBound
	if incumbent == nil {
		if len(stack) == 0 && rootSolved {
			res.Status = Infeasible // exhausted without integer point
		}
		return res, nil
	}
	res.X = incumbent
	if len(stack) == 0 || (opt.Gap > 0 && gapOK(res.Objective, rootBound, opt.Gap)) {
		res.Status = Optimal
	} else {
		res.Status = Feasible
	}
	return res, nil
}

func gapOK(incumbent, bound, gap float64) bool {
	if math.IsInf(bound, -1) {
		return false
	}
	return (incumbent-bound)/math.Max(math.Abs(incumbent), 1) <= gap
}

// solveNodeLP solves one node relaxation via the bounds overlay: the branch
// bounds are applied as extra tableau rows on the shared base problem, which
// replaced the former Problem.Clone()-per-node construction bit-for-bit
// (the lp package pins the equivalence; BenchmarkILPNodeLP the allocation
// win). ws may be nil; workers pass their own to pool tableau storage.
func solveNodeLP(base *lp.Problem, bounds []branchBound, ws *lp.Workspace) (lp.Solution, error) {
	return lp.SolveWithBoundRows(base, bounds, ws)
}
