package ilp

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestKnapsack(t *testing.T) {
	// max 10a+13b+7c, weights 3,4,2, cap 6, binary → min negative.
	// Best: b+c = 20 (weight 6). a+c = 17, a alone 10.
	p := lp.NewProblem(3)
	p.SetObjective(0, -10)
	p.SetObjective(1, -13)
	p.SetObjective(2, -7)
	p.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, lp.LE, 6)
	for j := 0; j < 3; j++ {
		p.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
	}
	m := &MIP{Prob: p, Integer: []bool{true, true, true}}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-20)) > 1e-6 {
		t.Fatalf("objective = %v, want -20", res.Objective)
	}
	if res.X[1] < 0.5 || res.X[2] < 0.5 || res.X[0] > 0.5 {
		t.Fatalf("x = %v, want [0 1 1]", res.X)
	}
}

func TestIntegerForcesWorseThanLP(t *testing.T) {
	// max x1+x2 s.t. 2x1+x2 <= 3, x1+2x2 <= 3 → LP opt at (1,1)=2 integral;
	// tweak: 2x1+2x2 <= 3 → LP 1.5, ILP 1.
	p := lp.NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint(map[int]float64{0: 2, 1: 2}, lp.LE, 3)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	p.AddConstraint(map[int]float64{1: 1}, lp.LE, 1)
	m := &MIP{Prob: p, Integer: []bool{true, true}}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-(-1)) > 1e-6 {
		t.Fatalf("objective = %v, want -1", res.Objective)
	}
}

func TestMIPInfeasible(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 2)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	m := &MIP{Prob: p, Integer: []bool{true}}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestMIPIntegerInfeasibleByBranching(t *testing.T) {
	// 0.4 <= x <= 0.6, x integer → LP feasible, no integer point.
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 0.4)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 0.6)
	m := &MIP{Prob: p, Integer: []bool{true}}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10y, x continuous ≤ 2.5, y binary, x + y ≤ 3.
	// Optimal: y=1, x=2 → -1·2 - 10·1 = -12.
	p := lp.NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -10)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 2.5)
	p.AddConstraint(map[int]float64{1: 1}, lp.LE, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.LE, 3)
	m := &MIP{Prob: p, Integer: []bool{false, true}}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-(-12)) > 1e-6 {
		t.Fatalf("objective = %v, want -12", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-1) > 1e-6 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestNodeLimitReturnsNoSolutionOrFeasible(t *testing.T) {
	p := lp.NewProblem(6)
	for j := 0; j < 6; j++ {
		p.SetObjective(j, -float64(j+1))
		p.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
	}
	p.AddConstraint(map[int]float64{0: 3, 1: 5, 2: 7, 3: 11, 4: 13, 5: 17}, lp.LE, 20)
	m := &MIP{Prob: p, Integer: []bool{true, true, true, true, true, true}}
	res, err := Solve(m, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal && res.Nodes > 1 {
		t.Fatalf("node limit ignored: %d nodes", res.Nodes)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := Solve(&MIP{}, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := lp.NewProblem(2)
	if _, err := Solve(&MIP{Prob: p, Integer: []bool{true}}, Options{}); err == nil {
		t.Fatal("integer-length mismatch accepted")
	}
}

// bruteForceBinary enumerates all binary assignments of a small MIP whose
// variables are all binary (with explicit ≤1 rows) and returns the best
// feasible objective.
func bruteForceBinary(p *lp.Problem) float64 {
	n := p.NumVars
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			}
		}
		ok := true
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * x[j]
			}
			switch c.Rel {
			case lp.LE:
				ok = lhs <= c.RHS+1e-9
			case lp.GE:
				ok = lhs >= c.RHS-1e-9
			case lp.EQ:
				ok = math.Abs(lhs-c.RHS) <= 1e-9
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		z := 0.0
		for j := 0; j < n; j++ {
			z += p.Objective[j] * x[j]
		}
		if z < best {
			best = z
		}
	}
	return best
}

// Property: B&B matches brute-force enumeration on random small binary
// programs.
func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 4 + r.Intn(4) // 4..7 binaries
		p := lp.NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, math.Round((r.Float64()*20-10)*4)/4)
			p.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
		}
		for c := 0; c < 2; c++ {
			row := map[int]float64{}
			for j := 0; j < n; j++ {
				row[j] = math.Round(r.Float64()*5*4) / 4
			}
			p.AddConstraint(row, lp.LE, math.Round(r.Float64()*float64(n)*3*4)/4)
		}
		integer := make([]bool, n)
		for j := range integer {
			integer[j] = true
		}
		res, err := Solve(&MIP{Prob: p, Integer: integer}, Options{})
		if err != nil {
			return false
		}
		want := bruteForceBinary(p)
		if math.IsInf(want, 1) {
			return res.Status == Infeasible
		}
		return res.Status == Optimal && math.Abs(res.Objective-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- SoCL model builder tests ---

func soclInstance(nodes, users int, seed int64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.5, topology.DefaultGenConfig(), seed)
	cat := msvc.SyntheticCatalog(3, msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0 // keep the tiny ILPs feasible
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e5}
}

func TestBuildSoCLShape(t *testing.T) {
	in := soclInstance(3, 4, 1)
	m, vm := BuildSoCL(in)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	wantVars := in.M() * in.V()
	for _, r := range in.Workload.Requests {
		wantVars += len(r.Chain) * in.V()
	}
	if vm.Total != wantVars || m.Prob.NumVars != wantVars {
		t.Fatalf("vars = %d, want %d", m.Prob.NumVars, wantVars)
	}
	// Column indices must be unique and in range.
	seen := map[int]bool{}
	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			j := vm.XIdx(i, k)
			if j < 0 || j >= wantVars || seen[j] {
				t.Fatalf("bad x index %d", j)
			}
			seen[j] = true
		}
	}
	for h, r := range in.Workload.Requests {
		for tt := range r.Chain {
			for k := 0; k < in.V(); k++ {
				j := vm.YIdx(h, tt, k)
				if j < 0 || j >= wantVars || seen[j] {
					t.Fatalf("bad y index %d", j)
				}
				seen[j] = true
			}
		}
	}
}

func TestSolveSoCLTinyIsFeasibleAndBetterThanNaive(t *testing.T) {
	in := soclInstance(3, 3, 2)
	m, vm := BuildSoCL(in)
	res, err := Solve(m, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	p := vm.Placement(res.X)
	ev := in.Evaluate(p)
	if ev.MissingInstances != 0 {
		t.Fatalf("ILP solution missing instances: %+v", ev)
	}
	if ev.StorageViolatedAt != -1 || ev.OverBudget {
		t.Fatalf("ILP solution violates hard constraints: %+v", ev)
	}
	// Naive: deploy every used service everywhere. The ILP optimum on the
	// star objective should not exceed the star objective of the naive
	// placement.
	naive := model.NewPlacement(in.M(), in.V())
	for _, s := range in.Workload.ServicesUsed() {
		for k := 0; k < in.V(); k++ {
			naive.Set(s, k, true)
		}
	}
	naiveStar := starObjective(in, naive)
	if res.Objective > naiveStar+1e-6 {
		t.Fatalf("ILP objective %v worse than naive star objective %v", res.Objective, naiveStar)
	}
}

// starObjective computes the Definition-4 objective of a placement with
// optimal per-step star routing (each step independently picks argmin d̃).
func starObjective(in *model.Instance, p model.Placement) float64 {
	obj := in.Lambda * in.DeployCost(p)
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		for t := range req.Chain {
			best := math.Inf(1)
			for _, k := range p.NodesOf(req.Chain[t]) {
				if c := in.StarCoef(req, t, k); c < best {
					best = c
				}
			}
			obj += (1 - in.Lambda) * best
		}
	}
	return obj
}

// Property: on tiny instances, decoding the MIP solution always yields a
// placement where every requested service has ≥1 instance, and the MIP
// objective equals λ·cost + (1−λ)·(star latencies of its own y choices).
func TestSoCLILPPlacementCoversAllServices(t *testing.T) {
	f := func(seed int64) bool {
		in := soclInstance(3, 2, seed)
		m, vm := BuildSoCL(in)
		res, err := Solve(m, Options{TimeLimit: 20 * time.Second})
		if err != nil || res.Status != Optimal {
			return false
		}
		p := vm.Placement(res.X)
		for _, s := range in.Workload.ServicesUsed() {
			if p.Count(s) == 0 {
				return false
			}
		}
		// Reconstruct the objective from the solution vector.
		z := 0.0
		for j, c := range m.Prob.Objective {
			z += c * res.X[j]
		}
		return math.Abs(z-res.Objective) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
