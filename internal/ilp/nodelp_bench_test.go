package ilp

import (
	"testing"

	"repro/internal/lp"
)

// cloneNodeLP is the construction solveNodeLP replaced: deep-copy the base
// problem and append each branch bound as an ordinary constraint. Kept here
// as the benchmark/differential baseline for the bounds overlay.
func cloneNodeLP(base *lp.Problem, bounds []branchBound) (lp.Solution, error) {
	p := base.Clone()
	for _, b := range bounds {
		rel := lp.GE
		if b.Upper {
			rel = lp.LE
		}
		p.AddConstraint(map[int]float64{b.Var: 1}, rel, b.Val)
	}
	return lp.Solve(p)
}

func nodeLPFixture() (*MIP, []branchBound) {
	in := soclInstance(3, 3, 1)
	m, vm := BuildSoCL(in)
	// A plausible mid-tree node: two deployment variables branched.
	bounds := []branchBound{
		{Var: vm.XIdx(0, 0), Upper: true, Val: 0},
		{Var: vm.XIdx(1, 1), Upper: false, Val: 1},
	}
	return m, bounds
}

func BenchmarkILPNodeLP(b *testing.B) {
	m, bounds := nodeLPFixture()
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cloneNodeLP(m.Prob, bounds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("overlay", func(b *testing.B) {
		ws := &lp.Workspace{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solveNodeLP(m.Prob, bounds, ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The overlay with a pooled workspace must allocate at least 5x less per
// node LP than the clone-and-append construction it replaced.
func TestNodeLPAllocWin(t *testing.T) {
	m, bounds := nodeLPFixture()
	// Results must agree before comparing costs.
	want, err := cloneNodeLP(m.Prob, bounds)
	if err != nil {
		t.Fatal(err)
	}
	ws := &lp.Workspace{}
	got, err := solveNodeLP(m.Prob, bounds, ws)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Objective != want.Objective {
		t.Fatalf("overlay result %v/%v != clone result %v/%v", got.Status, got.Objective, want.Status, want.Objective)
	}

	cloneAllocs := testing.AllocsPerRun(50, func() {
		if _, err := cloneNodeLP(m.Prob, bounds); err != nil {
			t.Fatal(err)
		}
	})
	overlayAllocs := testing.AllocsPerRun(50, func() {
		if _, err := solveNodeLP(m.Prob, bounds, ws); err != nil {
			t.Fatal(err)
		}
	})
	if overlayAllocs*5 > cloneAllocs {
		t.Fatalf("allocs/op: overlay %.1f vs clone %.1f — want ≥ 5x reduction", overlayAllocs, cloneAllocs)
	}
	t.Logf("allocs/op: clone %.1f, overlay %.1f (%.1fx)", cloneAllocs, overlayAllocs, cloneAllocs/overlayAllocs)
}
