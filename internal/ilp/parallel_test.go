package ilp

import (
	"math"
	"testing"
	"time"

	"repro/internal/lp"
)

// Differential tests pinning the parallel engine against the serial naive
// reference: same status, same objective, and — across worker counts — the
// identical solution vector selected by the deterministic tie-break
// (DESIGN.md §9).

func sameX(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			return false
		}
	}
	return true
}

func TestEngineMatchesNaiveRowBased(t *testing.T) {
	sizes := [][2]int{{3, 3}, {4, 4}}
	for _, sz := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			in := soclInstance(sz[0], sz[1], seed)
			m, _ := BuildSoCL(in)
			limit := 60 * time.Second
			naive, err := Solve(m, Options{TimeLimit: limit, Naive: true})
			if err != nil {
				t.Fatal(err)
			}
			w1, err := Solve(m, Options{TimeLimit: limit, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			w4, err := Solve(m, Options{TimeLimit: limit, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if naive.Status != w1.Status || naive.Status != w4.Status {
				t.Fatalf("nodes=%d users=%d seed=%d: status naive=%v w1=%v w4=%v",
					sz[0], sz[1], seed, naive.Status, w1.Status, w4.Status)
			}
			if naive.Status != Optimal {
				continue
			}
			if math.Abs(naive.Objective-w1.Objective) > 1e-9 || math.Abs(naive.Objective-w4.Objective) > 1e-9 {
				t.Fatalf("nodes=%d users=%d seed=%d: objective naive=%v w1=%v w4=%v",
					sz[0], sz[1], seed, naive.Objective, w1.Objective, w4.Objective)
			}
			if !sameX(w1.X, w4.X) {
				t.Fatalf("nodes=%d users=%d seed=%d: worker count changed the incumbent:\nw1=%v\nw4=%v",
					sz[0], sz[1], seed, w1.X, w4.X)
			}
		}
	}
}

func TestEngineMatchesNaiveBounded(t *testing.T) {
	sizes := [][2]int{{3, 3}, {4, 4}}
	for _, sz := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			in := soclInstance(sz[0], sz[1], seed)
			m, _ := BuildSoCLBounded(in)
			limit := 60 * time.Second
			naive, err := SolveBounded(m, Options{TimeLimit: limit, Naive: true})
			if err != nil {
				t.Fatal(err)
			}
			w1, err := SolveBounded(m, Options{TimeLimit: limit, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			w4, err := SolveBounded(m, Options{TimeLimit: limit, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if naive.Status != w1.Status || naive.Status != w4.Status {
				t.Fatalf("nodes=%d users=%d seed=%d: status naive=%v w1=%v w4=%v",
					sz[0], sz[1], seed, naive.Status, w1.Status, w4.Status)
			}
			if naive.Status != Optimal {
				continue
			}
			// The warm tableau keeps native lower bounds while SolveBounded
			// shifts them, so objectives agree to LP tolerance, not bitwise.
			if math.Abs(naive.Objective-w1.Objective) > 1e-6 || math.Abs(naive.Objective-w4.Objective) > 1e-6 {
				t.Fatalf("nodes=%d users=%d seed=%d: objective naive=%v w1=%v w4=%v",
					sz[0], sz[1], seed, naive.Objective, w1.Objective, w4.Objective)
			}
			if !sameX(w1.X, w4.X) {
				t.Fatalf("nodes=%d users=%d seed=%d: worker count changed the incumbent:\nw1=%v\nw4=%v",
					sz[0], sz[1], seed, w1.X, w4.X)
			}
		}
	}
}

// The work-stealing scheduler (default) and the fixed-frontier scheduler
// (Options.StaticFrontier) must return identical results — same status, same
// objective, bitwise the same vector — on both engine variants, for any
// worker count: scheduling is not allowed to leak into the search result.
func TestEngineStaticFrontierMatchesSteal(t *testing.T) {
	sizes := [][2]int{{3, 3}, {4, 4}}
	for _, sz := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			in := soclInstance(sz[0], sz[1], seed)
			row, _ := BuildSoCL(in)
			bounded, _ := BuildSoCLBounded(in)
			for _, workers := range []int{1, 4} {
				steal, err := Solve(row, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				static, err := Solve(row, Options{Workers: workers, StaticFrontier: true})
				if err != nil {
					t.Fatal(err)
				}
				if steal.Status != static.Status || (steal.Status == Optimal && !sameX(steal.X, static.X)) {
					t.Fatalf("row size=%v seed=%d workers=%d: scheduler changed the result:\nsteal=%v %v\nstatic=%v %v",
						sz, seed, workers, steal.Status, steal.X, static.Status, static.X)
				}
				bSteal, err := SolveBounded(bounded, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				bStatic, err := SolveBounded(bounded, Options{Workers: workers, StaticFrontier: true})
				if err != nil {
					t.Fatal(err)
				}
				if bSteal.Status != bStatic.Status || (bSteal.Status == Optimal && !sameX(bSteal.X, bStatic.X)) {
					t.Fatalf("bounded size=%v seed=%d workers=%d: scheduler changed the result:\nsteal=%v %v\nstatic=%v %v",
						sz, seed, workers, bSteal.Status, bSteal.X, bStatic.Status, bStatic.X)
				}
			}
		}
	}
}

// The bounded engine's node LPs must not depend on the simplex engine: the
// sparse revised simplex (default) and the dense tableau (Options.DenseLP)
// pivot identically (pinned bitwise at the lp level), so the MIP result is
// bitwise identical end to end.
func TestEngineDenseLPMatchesSparse(t *testing.T) {
	sizes := [][2]int{{3, 3}, {4, 4}}
	for _, sz := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			in := soclInstance(sz[0], sz[1], seed)
			m, _ := BuildSoCLBounded(in)
			for _, workers := range []int{1, 4} {
				sparse, err := SolveBounded(m, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				dense, err := SolveBounded(m, Options{Workers: workers, DenseLP: true})
				if err != nil {
					t.Fatal(err)
				}
				if sparse.Status != dense.Status ||
					math.Float64bits(sparse.Objective) != math.Float64bits(dense.Objective) ||
					(sparse.Status == Optimal && !sameX(sparse.X, dense.X)) {
					t.Fatalf("size=%v seed=%d workers=%d: LP engine changed the result:\nsparse=%v %v %v\ndense=%v %v %v",
						sz, seed, workers, sparse.Status, sparse.Objective, sparse.X,
						dense.Status, dense.Objective, dense.X)
				}
			}
		}
	}
}

// The knapsack fixture has a unique optimum; every path must find it.
func TestEngineKnapsackAllWorkerCounts(t *testing.T) {
	build := func() *MIP {
		p := lp.NewProblem(3)
		p.SetObjective(0, -10)
		p.SetObjective(1, -13)
		p.SetObjective(2, -7)
		p.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, lp.LE, 6)
		for j := 0; j < 3; j++ {
			p.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
		}
		return &MIP{Prob: p, Integer: []bool{true, true, true}}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Solve(build(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal || math.Abs(res.Objective-(-20)) > 1e-6 {
			t.Fatalf("workers=%d: status=%v objective=%v", workers, res.Status, res.Objective)
		}
		if res.X[1] < 0.5 || res.X[2] < 0.5 || res.X[0] > 0.5 {
			t.Fatalf("workers=%d: x = %v, want [0 1 1]", workers, res.X)
		}
	}
}

// Engine must honor the global node limit across workers (the shared counter
// may overshoot transiently; the reported count must not).
func TestEngineNodeLimit(t *testing.T) {
	in := soclInstance(4, 5, 1)
	m, _ := BuildSoCL(in)
	res, err := Solve(m, Options{MaxNodes: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 10 {
		t.Fatalf("nodes = %d > limit 10", res.Nodes)
	}
	if res.Status == Optimal && res.Nodes >= 10 {
		t.Fatalf("claimed optimal at the node limit: %+v", res)
	}
}

// Infeasible and integer-infeasible models must report the same status
// through the engine as through the naive search.
func TestEngineInfeasibleStatuses(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 2)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	m := &MIP{Prob: p, Integer: []bool{true}}
	for _, naiveFlag := range []bool{true, false} {
		res, err := Solve(m, Options{Naive: naiveFlag, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Infeasible {
			t.Fatalf("naive=%v: status = %v, want infeasible", naiveFlag, res.Status)
		}
	}

	// LP-feasible but integer-infeasible: 2x = 1 with x integer.
	p2 := lp.NewProblem(1)
	p2.SetObjective(0, 1)
	p2.AddConstraint(map[int]float64{0: 2}, lp.EQ, 1)
	m2 := &MIP{Prob: p2, Integer: []bool{true}}
	for _, naiveFlag := range []bool{true, false} {
		res, err := Solve(m2, Options{Naive: naiveFlag, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Infeasible {
			t.Fatalf("naive=%v: status = %v, want infeasible", naiveFlag, res.Status)
		}
	}
}
