package ilp

import (
	"math"

	"repro/internal/lp"
	"repro/internal/model"
)

// VarMap records how SoCL decision variables map onto MIP columns so that a
// solution vector can be decoded back into a model.Placement.
type VarMap struct {
	NumServices int
	NumNodes    int
	// x(i,k) lives at column i·NumNodes + k.
	// y(h,t,k) lives at YBase[h] + t·NumNodes + k.
	YBase []int
	Total int
}

// XIdx returns the column of x(i,k).
func (vm *VarMap) XIdx(i, k int) int { return i*vm.NumNodes + k }

// YIdx returns the column of y(h, step t, k).
func (vm *VarMap) YIdx(h, t, k int) int { return vm.YBase[h] + t*vm.NumNodes + k }

// Placement decodes the x block of a solution vector.
func (vm *VarMap) Placement(x []float64) model.Placement {
	p := model.NewPlacement(vm.NumServices, vm.NumNodes)
	for i := 0; i < vm.NumServices; i++ {
		for k := 0; k < vm.NumNodes; k++ {
			if x[vm.XIdx(i, k)] > 0.5 {
				p.Set(i, k, true)
			}
		}
	}
	return p
}

// BuildSoCL constructs the Definition-4 ILP for an instance:
//
//	min  λ Σ κ(m_i)·x(i,k) + (1−λ) Σ y(h,i,k)·d̃(h,i,k)
//	s.t. Σ_k y(h,t,k) = 1                        (9)  per request step
//	     y(h,t,k) ≤ x(i,k)                       (10)
//	     Σ_i φ(m_i)·x(i,k) ≤ Φ(v_k)              (6)  per node
//	     Σ κ(m_i)·x(i,k) ≤ 𝒦^max                 (5)
//	     Σ_t,k y(h,t,k)·d̃ ≤ 𝒟_h^max              (4)  when finite
//	     x, y ∈ {0,1}
//
// Latency coefficients d̃ use the star linearization (model.StarCoef); see
// DESIGN.md §5. Only x columns carry explicit ≤1 rows — y is bounded by (9).
func BuildSoCL(in *model.Instance) (*MIP, *VarMap) {
	M, V := in.M(), in.V()
	reqs := in.Workload.Requests

	vm := &VarMap{NumServices: M, NumNodes: V, YBase: make([]int, len(reqs))}
	n := M * V
	for h := range reqs {
		vm.YBase[h] = n
		n += len(reqs[h].Chain) * V
	}
	vm.Total = n

	p := lp.NewProblem(n)
	integer := make([]bool, n)
	for j := range integer {
		integer[j] = true
	}

	// Objective.
	for i := 0; i < M; i++ {
		kappa := in.Workload.Catalog.Service(i).DeployCost
		for k := 0; k < V; k++ {
			p.SetObjective(vm.XIdx(i, k), in.Lambda*kappa)
		}
	}
	for h := range reqs {
		req := &reqs[h]
		for t := range req.Chain {
			for k := 0; k < V; k++ {
				coef := in.StarCoef(req, t, k)
				if math.IsInf(coef, 1) {
					// Disconnected pair: forbid by assignment instead of an
					// infinite coefficient (keeps the LP finite).
					p.AddConstraint(map[int]float64{vm.YIdx(h, t, k): 1}, lp.LE, 0)
					continue
				}
				p.SetObjective(vm.YIdx(h, t, k), (1-in.Lambda)*coef)
			}
		}
	}

	// (9) assignment; (10) linking.
	for h := range reqs {
		req := &reqs[h]
		for t, svc := range req.Chain {
			row := make(map[int]float64, V)
			for k := 0; k < V; k++ {
				row[vm.YIdx(h, t, k)] = 1
			}
			p.AddConstraint(row, lp.EQ, 1)
			for k := 0; k < V; k++ {
				p.AddConstraint(map[int]float64{
					vm.YIdx(h, t, k): 1,
					vm.XIdx(svc, k):  -1,
				}, lp.LE, 0)
			}
		}
	}

	// (6) storage per node.
	for k := 0; k < V; k++ {
		row := make(map[int]float64, M)
		for i := 0; i < M; i++ {
			row[vm.XIdx(i, k)] = in.Workload.Catalog.Service(i).Storage
		}
		p.AddConstraint(row, lp.LE, in.Graph.Node(k).Storage)
	}

	// (5) budget.
	budgetRow := make(map[int]float64, M*V)
	for i := 0; i < M; i++ {
		kappa := in.Workload.Catalog.Service(i).DeployCost
		for k := 0; k < V; k++ {
			budgetRow[vm.XIdx(i, k)] = kappa
		}
	}
	p.AddConstraint(budgetRow, lp.LE, in.Budget)

	// (4) per-request deadline on the linearized latency, when finite.
	for h := range reqs {
		req := &reqs[h]
		if math.IsInf(req.Deadline, 1) {
			continue
		}
		row := make(map[int]float64)
		for t := range req.Chain {
			for k := 0; k < V; k++ {
				if c := in.StarCoef(req, t, k); !math.IsInf(c, 1) {
					row[vm.YIdx(h, t, k)] = c
				}
			}
		}
		p.AddConstraint(row, lp.LE, req.Deadline)
	}

	// Binary upper bounds for x (y is bounded via (9)).
	for i := 0; i < M; i++ {
		for k := 0; k < V; k++ {
			p.AddConstraint(map[int]float64{vm.XIdx(i, k): 1}, lp.LE, 1)
		}
	}

	return &MIP{Prob: p, Integer: integer}, vm
}
