// Package integration exercises the full SoCL stack across module
// boundaries: pipeline vs exact optimizers, serialization round trips into
// solves, the simulator driving every algorithm, and failure injection that
// no single package test can reach.
package integration

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baselines"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/topology"
)

func makeInstance(nodes, users int, seed int64, budget float64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
}

// SoCL must stay within 10% of the proven optimum (the paper reports gaps
// below 9.9%) wherever the exact solver finishes.
func TestSoCLGapAgainstProvenOptimum(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := makeInstance(8, 12, seed, 8000)
		res, err := opt.Solve(in, opt.Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != opt.Optimal {
			t.Logf("seed %d: optimum unproven in time, skipping", seed)
			continue
		}
		optObj := in.Evaluate(res.Placement).Objective
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		gap := (sol.Evaluation.Objective - optObj) / optObj
		if gap > 0.10 {
			t.Fatalf("seed %d: SoCL gap %.1f%% exceeds 10%%", seed, gap*100)
		}
	}
}

// The three exact paths — generic MILP, specialized B&B, decomposition —
// must agree on tiny storage-rich instances.
func TestThreeExactSolversAgree(t *testing.T) {
	gcfg := topology.DefaultGenConfig()
	gcfg.StorageMin, gcfg.StorageMax = 100, 200
	g := topology.RandomGeometric(3, 0.5, gcfg, 5)
	cat := msvc.SyntheticCatalog(3, msvc.DefaultDatasetConfig(), 5)
	wcfg := msvc.DefaultWorkloadConfig(3)
	wcfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, wcfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e5}

	bb, err := opt.Solve(in, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := opt.SolveDecomposed(in, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ilp.BuildSoCL(in)
	gen, err := ilp.Solve(m, ilp.Options{TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if bb.Status != opt.Optimal || !dec.Applicable || gen.Status != ilp.Optimal {
		t.Fatalf("statuses: bb=%v dec=%v gen=%v", bb.Status, dec.Status, gen.Status)
	}
	if math.Abs(bb.StarObjective-dec.StarObjective) > 1e-5 ||
		math.Abs(bb.StarObjective-gen.Objective) > 1e-4 {
		t.Fatalf("optima disagree: bb=%v dec=%v gen=%v",
			bb.StarObjective, dec.StarObjective, gen.Objective)
	}
}

// A scenario saved to JSON, re-loaded, and solved must reproduce the exact
// same objective as the in-memory original.
func TestScenarioRoundTripSolves(t *testing.T) {
	sc := config.Default()
	sc.Workload.NumUsers = 25
	in1, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.json")
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	sc2, err := config.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := sc2.Build()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := core.Solve(in1, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.Solve(in2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Evaluation.Objective != s2.Evaluation.Objective {
		t.Fatalf("objectives differ after round trip: %v vs %v",
			s1.Evaluation.Objective, s2.Evaluation.Objective)
	}
}

// Every algorithm must survive a full simulated day slice with mobile users
// and produce zero failed requests.
func TestSimulatorDrivesAllAlgorithms(t *testing.T) {
	g := topology.Stadium(12, topology.DefaultGenConfig(), 9)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 9)
	algos := []sim.Algorithm{
		sim.SoCL{Config: core.DefaultConfig()},
		sim.NewSoCLOnline(core.DefaultConfig()),
		sim.RP{Seed: 9},
		sim.JDR{},
		sim.GCOG{},
	}
	for _, algo := range algos {
		cfg := sim.DefaultConfig(g, cat, 10, 9)
		cfg.DurationMinutes = 20
		res, err := sim.Run(cfg, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		for _, s := range res.Slots {
			if s.Unserved() > 0 {
				t.Fatalf("%s: %d missing + %d unroutable requests at slot %d", algo.Name(), s.Missing, s.Unroutable, s.Slot)
			}
		}
	}
}

// Failure injection: a disconnected substrate. Requests homed in one
// component for services only deployable in the other must surface as
// infinite latency, never as a crash or a silent wrong answer.
func TestDisconnectedSubstrate(t *testing.T) {
	g := topology.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0, 10, 50)
	}
	// Two islands: {0,1} and {2,3}.
	if err := g.AddLink(0, 1, 30); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(2, 3, 30); err != nil {
		t.Fatal(err)
	}
	g.Finalize()

	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a})
	w := &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
		{ID: 0, Home: 0, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 1, Home: 2, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
	}}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e4}

	// Deploy only on island {0,1}: request 1's optimal route must be +Inf.
	p := model.NewPlacement(1, 4)
	p.Set(a, 0, true)
	ev := in.Evaluate(p)
	if !math.IsInf(ev.Latencies[1], 1) {
		t.Fatalf("cross-island latency = %v, want +Inf", ev.Latencies[1])
	}
	// SoCL on this instance must still cover both islands or yield a
	// well-formed (possibly infeasible) evaluation — never panic.
	sol, err := core.Solve(in, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Evaluation == nil {
		t.Fatal("nil evaluation")
	}
}

// Failure injection: a budget below one instance of each service. All
// algorithms must degrade gracefully (cover what they can, stay storage
// feasible) rather than crash.
func TestHopelessBudget(t *testing.T) {
	in := makeInstance(8, 15, 11, 8000)
	in.Budget = 10
	if _, err := core.Solve(in, core.DefaultConfig()); err != nil {
		t.Fatalf("SoCL crashed: %v", err)
	}
	_ = baselines.RP(in, 1)
	_ = baselines.JDR(in)
	_ = baselines.GCOG(in)
}

// Property: on random instances, the four algorithms produce placements the
// evaluator accepts, and SoCL's objective is never the worst of the four.
func TestSoCLNeverWorstProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := makeInstance(8, 30, seed, 8000)
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			return false
		}
		objs := []float64{
			in.Evaluate(baselines.RP(in, seed)).Objective,
			in.Evaluate(baselines.JDR(in)).Objective,
			in.Evaluate(baselines.GCOG(in).Placement).Objective,
		}
		worst := objs[0]
		for _, o := range objs {
			if o > worst {
				worst = o
			}
		}
		return sol.Evaluation.Objective <= worst+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end determinism: the whole stack (generation → solve → evaluate)
// replays exactly from a root seed.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() float64 {
		in := makeInstance(10, 40, 42, 8000)
		sol, err := core.Solve(in, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sol.Evaluation.Objective
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("end-to-end nondeterminism: %v vs %v", a, b)
	}
}
