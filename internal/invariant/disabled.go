//go:build !soclinvariants

package invariant

// Enabled is false without the `soclinvariants` build tag: every check in
// this package is an immediate return that the compiler eliminates.
const Enabled = false
