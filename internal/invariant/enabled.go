//go:build soclinvariants

package invariant

// Enabled is true in builds tagged `soclinvariants`: every check in this
// package runs and panics on violation. The constant folds to false in
// regular builds, so the checks compile to nothing.
const Enabled = true
