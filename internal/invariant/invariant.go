// Package invariant is the runtime counterpart of the socllint analyzers: a
// build-tag-gated assertion layer that checks, while the algorithms run, the
// properties the static passes can only approximate. Build with
//
//	go test -tags soclinvariants ./...
//
// to arm it; without the tag every function returns immediately and the
// compiler deletes the calls, so hot paths pay nothing.
//
// The checks mirror the paper's feasibility system: deadline satisfaction
// (Eq. 4), the deployment budget (Eq. 5), per-node storage capacity (Eq. 6),
// and — beyond the paper — coherence of the PlacementIndex cache with its
// placement, the exact bug class PR 1 fixed.
//
// Dependency direction: invariant imports model, never the reverse.
package invariant

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Assert panics with msg when cond is false (and checks are Enabled).
func Assert(cond bool, msg string) {
	if !Enabled || cond {
		return
	}
	panic("invariant: " + msg)
}

// Assertf is Assert with formatting; args are not evaluated when disabled
// only if the caller guards with Enabled — prefer Assert for hot sites.
func Assertf(cond bool, format string, args ...any) {
	if !Enabled || cond {
		return
	}
	panic("invariant: " + fmt.Sprintf(format, args...))
}

// AlmostEq reports |a-b| <= eps, treating equal infinities as equal. It is
// the comparison the floateq analyzer demands instead of ==.
func AlmostEq(a, b, eps float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return math.Abs(a-b) <= eps
}

// IndexWatch memoizes coherence verification of one PlacementIndex by epoch:
// a full O(M·N) CheckCoherent scan runs only when the index mutated since
// the last verified scan, so per-phase checks stay cheap in long runs.
// The zero value is ready to use. Not safe for concurrent use.
type IndexWatch struct {
	epoch   uint64
	checked bool
}

// Check verifies ix's cached candidate lists against its placement, skipping
// the scan when the epoch is unchanged since the last verified Check.
func (w *IndexWatch) Check(ix *model.PlacementIndex) {
	if !Enabled || ix == nil {
		return
	}
	if w.checked && ix.Epoch() == w.epoch {
		return
	}
	if err := ix.CheckCoherent(); err != nil {
		panic("invariant: " + err.Error())
	}
	w.epoch, w.checked = ix.Epoch(), true
}

// CheckBudget panics when the placement's deployment cost exceeds the
// instance budget (Eq. 5).
func CheckBudget(in *model.Instance, p model.Placement, where string) {
	if !Enabled {
		return
	}
	if !in.CheckBudget(p) {
		panic(fmt.Sprintf("invariant: %s: deployment cost %.6g exceeds budget %.6g (Eq. 5)", where, in.DeployCost(p), in.Budget))
	}
}

// CheckStorage panics when any node's stored instance volume exceeds its
// capacity (Eq. 6).
func CheckStorage(in *model.Instance, p model.Placement, where string) {
	if !Enabled {
		return
	}
	if k := in.CheckStorage(p); k >= 0 {
		panic(fmt.Sprintf("invariant: %s: node %d stores %.6g > capacity %.6g (Eq. 6)", where, k, in.StorageUsed(p, k), in.Graph.Node(k).Storage))
	}
}

// CheckPostRepair revalidates a repaired placement against the paper's
// feasibility system on the (possibly fault-masked) substrate the evaluation
// was produced on. Eq. 5 and Eq. 6 are hard: repair's eviction phases must
// leave cost within budget and every node within its masked capacity, so any
// violation is a repair bug. Eq. 4 is soft under faults — a degraded
// substrate may make some deadlines physically unmeetable, and repair's
// contract is honest accounting rather than a guarantee — so the check
// recounts deadline violations from the per-request latencies and panics
// only when the recount disagrees with the evaluation's counter.
func CheckPostRepair(in *model.Instance, ev *model.Evaluation, where string) {
	if !Enabled {
		return
	}
	CheckBudget(in, ev.Placement, where)
	CheckStorage(in, ev.Placement, where)
	late := 0
	for h := range in.Workload.Requests {
		if ev.Routes[h].Nodes == nil && math.IsInf(ev.Latencies[h], 1) {
			continue // missing instance: counted in MissingInstances, not Eq. 4
		}
		if ev.Latencies[h] > in.Workload.Requests[h].Deadline+model.FeasTol {
			late++
		}
	}
	if late != ev.DeadlineViolated {
		panic(fmt.Sprintf("invariant: %s: %d deadline violations recounted from latencies, evaluation says %d (Eq. 4)", where, late, ev.DeadlineViolated))
	}
}

// CheckDeadlines panics when some finite-deadline request cannot meet its
// deadline under exact optimal routing (Eq. 4), honoring the cloud fallback
// exactly as the evaluator and combine's deadlineViolated do: a request
// whose chain has no instance is served by the cloud when one exists.
func CheckDeadlines(in *model.Instance, p model.Placement, where string) {
	if !Enabled {
		return
	}
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		if math.IsInf(req.Deadline, 1) {
			continue
		}
		_, d, err := in.RouteOptimal(req, p)
		if err != nil {
			if !model.IsNoInstance(err) || in.Cloud == nil {
				panic(fmt.Sprintf("invariant: %s: request %d unroutable with no cloud fallback: %v (Eq. 4)", where, req.ID, err))
			}
			d = in.Cloud.CloudCompletionTime(in.Workload.Catalog, req)
		}
		if d > req.Deadline+model.FeasTol {
			panic(fmt.Sprintf("invariant: %s: request %d completes at %.6g > deadline %.6g (Eq. 4)", where, req.ID, d, req.Deadline))
		}
	}
}
