//go:build soclinvariants

package invariant

import (
	"math"
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

// This file runs only under the soclinvariants tag: it proves the armed
// checks actually fire (a suite of assertions that can never fail is
// indistinguishable from one that never runs).

func expectPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func armedInstance(t *testing.T, seed int64) *model.Instance {
	t.Helper()
	g := topology.RandomGeometric(8, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(20), seed)
	if err != nil {
		t.Fatal(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e9}
}

func densePlacement(in *model.Instance) model.Placement {
	p := model.NewPlacement(in.M(), in.V())
	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			p.Set(i, k, true)
		}
	}
	return p
}

func TestArmedAssert(t *testing.T) {
	if !Enabled {
		t.Fatal("soclinvariants build must set Enabled")
	}
	Assert(true, "must not fire")
	Assertf(true, "must not fire")
	expectPanic(t, "broken", func() { Assert(false, "broken") })
	expectPanic(t, "broken 42", func() { Assertf(false, "broken %d", 42) })
}

// TestArmedIndexWatch proves both halves of the epoch memoization: a stale
// cache is caught on a fresh watch, and a watch that already verified the
// current epoch skips the scan entirely (so per-phase checks stay O(1)
// between mutations — raw writes do not bump the epoch, which is exactly
// why the placementmut analyzer bans them).
func TestArmedIndexWatch(t *testing.T) {
	p := model.NewPlacement(2, 4)
	p.Set(0, 1, true)
	ix := model.NewPlacementIndex(p)
	ix.Prewarm()

	var w IndexWatch
	w.Check(ix) // verifies and memoizes epoch

	p.X[0][2] = true // raw write: cache stale, epoch unchanged
	w.Check(ix)      // memoized — must NOT panic (and must not scan)

	var fresh IndexWatch
	expectPanic(t, "stale", func() { fresh.Check(ix) })

	p.X[0][2] = false // restore coherence
	fresh = IndexWatch{}
	fresh.Check(ix)
	ix.Set(1, 3, true) // epoch bump forces the next scan
	ix.Prewarm()
	fresh.Check(ix) // re-verifies at the new epoch
}

func TestArmedFeasibilityChecks(t *testing.T) {
	in := armedInstance(t, 1)
	p := densePlacement(in)

	in.Budget = in.DeployCost(p) + 1
	CheckBudget(in, p, "test")
	in.Budget = in.DeployCost(p) / 2
	expectPanic(t, "Eq. 5", func() { CheckBudget(in, p, "test") })
	in.Budget = 1e9

	if k := in.CheckStorage(p); k >= 0 {
		expectPanic(t, "Eq. 6", func() { CheckStorage(in, p, "test") })
	} else {
		CheckStorage(in, p, "test")
	}

	for h := range in.Workload.Requests {
		in.Workload.Requests[h].Deadline = math.Inf(1)
	}
	CheckDeadlines(in, p, "test") // no finite deadline: vacuously feasible
	for h := range in.Workload.Requests {
		in.Workload.Requests[h].Deadline = 1e-12
	}
	expectPanic(t, "Eq. 4", func() { CheckDeadlines(in, p, "test") })

	// Unroutable request without a cloud fallback: also an Eq. 4 panic.
	empty := model.NewPlacement(in.M(), in.V())
	expectPanic(t, "Eq. 4", func() { CheckDeadlines(in, empty, "test") })
}

// TestArmedWarmFactorization proves the factorization probe fires on a solved
// warm solver without panicking (healthy residual), and is a no-op before any
// solve (no basis to check).
func TestArmedWarmFactorization(t *testing.T) {
	p := lp.NewBoundedProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.LE, 4)
	ws, err := lp.NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	CheckWarmFactorization(ws, "test") // not ready: must be a no-op
	sol, err := ws.SolveWithBounds(p.Lower, p.Upper)
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("solve: %v %v", sol.Status, err)
	}
	CheckWarmFactorization(ws, "test") // healthy basis: must not panic
}
