package invariant

import (
	"math"
	"testing"

	"repro/internal/model"
)

// TestAlmostEq pins the comparison semantics the floateq analyzer points
// callers at: tolerance inclusive, equal infinities equal, NaN never equal.
func TestAlmostEq(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{0, 0, 0, true},
		{inf, inf, 0, true},
		{-inf, -inf, 0, true},
		{inf, -inf, 0, false},
		{inf, 1, 1e9, false},
		{math.NaN(), math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := AlmostEq(c.a, c.b, c.eps); got != c.want {
			t.Errorf("AlmostEq(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

// TestDisabledChecksAreInert documents the no-tag contract: with Enabled
// false every check — even on a blatantly violated condition or a stale
// index — must be a no-op, so production binaries cannot panic here.
func TestDisabledChecksAreInert(t *testing.T) {
	if Enabled {
		t.Skip("soclinvariants build: checks are armed by design")
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("disabled invariant check panicked: %v", r)
		}
	}()
	Assert(false, "must not fire")
	Assertf(false, "must not fire (%d)", 1)

	p := model.NewPlacement(1, 2)
	p.Set(0, 0, true)
	ix := model.NewPlacementIndex(p)
	ix.Prewarm()
	p.X[0][1] = true // stale cache — ignored when disabled
	var w IndexWatch
	w.Check(ix)
}
