package invariant

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// CheckShardMerge revalidates one shard's slice of a merged sharded
// placement against the paper's feasibility system (Eq. 4–6), given the
// shard sub-instance's evaluation of its restricted placement. It is called
// at the merge boundaries of combine.RunSharded: after the per-shard solves
// land in the global placement and again after boundary reconciliation.
//
// Eq. 6 (storage) is hard: the merge writes disjoint node columns, so any
// per-node overflow is a sharding bug. Eq. 5 (budget) is checked only when
// the shard claims budgetMet — per-shard budget floors (service continuity)
// may legitimately exceed a shard's demand share. Eq. 4 (deadlines) is a
// recount from the per-request latencies, as in CheckPostRepair; it is
// skipped when the evaluation has unroutable requests, whose +Inf latencies
// the evaluator counts against finite deadlines while Eq. 4 is vacuous for
// them.
func CheckShardMerge(in *model.Instance, ev *model.Evaluation, budgetMet bool, where string) {
	if !Enabled {
		return
	}
	if budgetMet {
		CheckBudget(in, ev.Placement, where)
	}
	CheckStorage(in, ev.Placement, where)
	if ev.Unroutable > 0 {
		return
	}
	late := 0
	for h := range in.Workload.Requests {
		if ev.Routes[h].Nodes == nil && math.IsInf(ev.Latencies[h], 1) {
			continue // missing instance: counted in MissingInstances, not Eq. 4
		}
		if ev.Latencies[h] > in.Workload.Requests[h].Deadline+model.FeasTol {
			late++
		}
	}
	if late != ev.DeadlineViolated {
		panic(fmt.Sprintf("invariant: %s: %d deadline violations recounted from latencies, evaluation says %d (Eq. 4)", where, late, ev.DeadlineViolated))
	}
}
