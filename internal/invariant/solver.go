package invariant

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Solver-side invariants: re-verify a solution a branch-and-bound engine
// accepted as incumbent by recomputing everything from scratch against the
// original problem — no tableau, no warm state, no overlay. The parallel
// engines call these under -tags soclinvariants for every accepted
// incumbent, so a warm-start or sharing bug that produced an infeasible or
// mispriced vector panics at the moment of acceptance instead of surfacing
// as a silently wrong benchmark row.

// lpCheckTol is looser than model.FeasTol because the simplex solvers work
// at eps = 1e-9 themselves; recomputation in a different summation order can
// legitimately differ by a few ulps beyond that.
const lpCheckTol = 1e-6

// CheckLPRowSolution panics unless x is feasible for p (every constraint row
// within lpCheckTol, all variables nonnegative) and obj matches the
// recomputed objective value.
func CheckLPRowSolution(p *lp.Problem, x []float64, obj float64, where string) {
	if !Enabled {
		return
	}
	if len(x) != p.NumVars {
		panic(fmt.Sprintf("invariant: %s: solution length %d != NumVars %d", where, len(x), p.NumVars))
	}
	for j, v := range x {
		if v < -lpCheckTol || math.IsNaN(v) {
			panic(fmt.Sprintf("invariant: %s: x[%d] = %v violates nonnegativity", where, j, v))
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, v := range c.Coeffs {
			lhs += v * x[j]
		}
		checkRow(lhs, c.Rel, c.RHS, i, where)
	}
	checkObjective(p.Objective, x, obj, where)
}

// CheckLPBoundedSolution panics unless x is feasible for the bounded problem
// p (rows within lpCheckTol, every variable inside [Lower, Upper]) and obj
// matches the recomputed objective value.
func CheckLPBoundedSolution(p *lp.BoundedProblem, x []float64, obj float64, where string) {
	if !Enabled {
		return
	}
	if len(x) != p.NumVars {
		panic(fmt.Sprintf("invariant: %s: solution length %d != NumVars %d", where, len(x), p.NumVars))
	}
	for j, v := range x {
		if math.IsNaN(v) || v < p.Lower[j]-lpCheckTol || v > p.Upper[j]+lpCheckTol {
			panic(fmt.Sprintf("invariant: %s: x[%d] = %v outside [%v, %v]", where, j, v, p.Lower[j], p.Upper[j]))
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, v := range c.Coeffs {
			lhs += v * x[j]
		}
		checkRow(lhs, c.Rel, c.RHS, i, where)
	}
	checkObjective(p.Objective, x, obj, where)
}

// CheckWarmFactorization panics when a warm solver's maintained basic values
// drift from its factorization beyond lpCheckTol — the probe behind the
// sparse engine's eta-file/refactorization bookkeeping (a stale or corrupt
// factorization shows up as a constraint-row residual at the basis point
// long before it misprices an incumbent). No-op when ws holds no Optimal
// basis.
func CheckWarmFactorization(ws *lp.WarmSolver, where string) {
	if !Enabled {
		return
	}
	res, ok := ws.FactorizationResidual()
	if !ok {
		return
	}
	if math.IsNaN(res) || res > lpCheckTol {
		panic(fmt.Sprintf("invariant: %s: factorization residual %.3g exceeds %g", where, res, lpCheckTol))
	}
}

func checkRow(lhs float64, rel lp.Rel, rhs float64, row int, where string) {
	ok := true
	switch rel {
	case lp.LE:
		ok = lhs <= rhs+lpCheckTol
	case lp.GE:
		ok = lhs >= rhs-lpCheckTol
	case lp.EQ:
		ok = AlmostEq(lhs, rhs, lpCheckTol)
	}
	if !ok {
		panic(fmt.Sprintf("invariant: %s: constraint %d violated: lhs %.9g vs rhs %.9g (rel %v)", where, row, lhs, rhs, rel))
	}
}

func checkObjective(objective, x []float64, obj float64, where string) {
	want := 0.0
	for j, c := range objective {
		want += c * x[j]
	}
	scale := math.Max(math.Abs(want), 1)
	if !AlmostEq(obj, want, lpCheckTol*scale) {
		panic(fmt.Sprintf("invariant: %s: reported objective %.12g != recomputed %.12g", where, obj, want))
	}
}
