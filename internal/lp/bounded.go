package lp

import (
	"fmt"
	"math"
)

// BoundedProblem is a linear program with explicit variable bounds:
//
//	minimize    c·x
//	subject to  A·x {≤,=,≥} b,   lo ≤ x ≤ up
//
// Handling bounds inside the simplex (nonbasic-at-lower / nonbasic-at-upper
// states and bound flips) avoids one constraint row per bound — for the
// SoCL ILP, whose variables are all binary, this halves the tableau versus
// the row-based encoding in Problem. SolveBounded is differentially tested
// against Solve on the row-based encoding.
type BoundedProblem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
	Lower       []float64 // default 0
	Upper       []float64 // +Inf allowed
}

// NewBoundedProblem returns a problem with n variables, bounds [0, +Inf).
func NewBoundedProblem(n int) *BoundedProblem {
	p := &BoundedProblem{
		NumVars:   n,
		Objective: make([]float64, n),
		Lower:     make([]float64, n),
		Upper:     make([]float64, n),
	}
	for i := range p.Upper {
		p.Upper[i] = math.Inf(1)
	}
	return p
}

// SetObjective sets variable j's objective coefficient.
func (p *BoundedProblem) SetObjective(j int, c float64) { p.Objective[j] = c }

// SetBounds sets lo ≤ x_j ≤ up.
func (p *BoundedProblem) SetBounds(j int, lo, up float64) {
	p.Lower[j] = lo
	p.Upper[j] = up
}

// AddConstraint appends a row (coefficients copied).
func (p *BoundedProblem) AddConstraint(coeffs map[int]float64, rel Rel, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for j, v := range coeffs {
		cp[j] = v
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: cp, Rel: rel, RHS: rhs})
}

// Clone deep-copies the problem.
func (p *BoundedProblem) Clone() *BoundedProblem {
	q := NewBoundedProblem(p.NumVars)
	copy(q.Objective, p.Objective)
	copy(q.Lower, p.Lower)
	copy(q.Upper, p.Upper)
	q.Constraints = make([]Constraint, len(p.Constraints))
	for i, c := range p.Constraints {
		cp := make(map[int]float64, len(c.Coeffs))
		for j, v := range c.Coeffs {
			cp[j] = v
		}
		q.Constraints[i] = Constraint{Coeffs: cp, Rel: c.Rel, RHS: c.RHS}
	}
	return q
}

// Validate checks structural sanity.
func (p *BoundedProblem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: no variables")
	}
	if len(p.Objective) != p.NumVars || len(p.Lower) != p.NumVars || len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: objective/bounds length mismatch")
	}
	for j := 0; j < p.NumVars; j++ {
		if math.IsInf(p.Lower[j], 0) || math.IsNaN(p.Lower[j]) || math.IsNaN(p.Upper[j]) {
			return fmt.Errorf("lp: invalid bounds on variable %d", j)
		}
		if p.Lower[j] > p.Upper[j] {
			return fmt.Errorf("lp: empty bound interval on variable %d [%v, %v]", j, p.Lower[j], p.Upper[j])
		}
	}
	for i, c := range p.Constraints {
		for j := range c.Coeffs {
			if j < 0 || j >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d", i, j)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has invalid RHS %v", i, c.RHS)
		}
	}
	return nil
}

// SolveBounded solves the problem with a bounded-variable two-phase primal
// simplex.
func SolveBounded(p *BoundedProblem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	// Shift lower bounds to zero: x = lo + x', 0 ≤ x' ≤ up − lo.
	shifted := p.Clone()
	for i := range shifted.Constraints {
		c := &shifted.Constraints[i]
		for j, v := range c.Coeffs {
			c.RHS -= v * p.Lower[j]
		}
	}
	for j := 0; j < p.NumVars; j++ {
		shifted.Upper[j] = p.Upper[j] - p.Lower[j]
		shifted.Lower[j] = 0
	}

	t := newBoundedTableau(shifted)
	if t.numArtificial > 0 {
		t.setPhase(true, nil)
		st := t.iterate()
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: t.iters}, nil
		}
		if t.zval > 1e-7 {
			return Solution{Status: Infeasible, Iters: t.iters}, nil
		}
		t.driveOutArtificials()
	}
	t.setPhase(false, shifted.Objective)
	switch t.iterate() {
	case Unbounded:
		return Solution{Status: Unbounded, Iters: t.iters}, nil
	case IterLimit:
		return Solution{Status: IterLimit, Iters: t.iters}, nil
	}
	x := t.extract(p.NumVars)
	obj := 0.0
	for j := 0; j < p.NumVars; j++ {
		x[j] += p.Lower[j] // undo the shift
		obj += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj, Iters: t.iters}, nil
}

// boundedTableau separates the coefficient matrix (B⁻¹A, maintained by
// Gauss-Jordan pivots) from the current basic-variable values (maintained
// by movement updates), which is what makes nonbasic-at-upper states and
// bound flips straightforward.
type boundedTableau struct {
	coef          [][]float64 // (m+1) rows × nTotal columns; row m = reduced costs
	val           []float64   // current value of each basic variable (per row)
	zval          float64     // current objective value
	basis         []int
	inBasis       []bool
	atUpper       []bool
	upper         []float64
	cost          []float64 // current phase's objective by column
	nStruct       int
	nSlack        int
	numArtificial int
	nTotal        int
	artCols       []int
	iters         int
	maxIters      int
}

func newBoundedTableau(p *BoundedProblem) *boundedTableau {
	m := len(p.Constraints)
	nStruct := p.NumVars
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		rel := c.Rel
		if c.RHS < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	nTotal := nStruct + nSlack + nArt
	t := &boundedTableau{
		coef:          make([][]float64, m+1),
		val:           make([]float64, m),
		basis:         make([]int, m),
		inBasis:       make([]bool, nTotal),
		atUpper:       make([]bool, nTotal),
		upper:         make([]float64, nTotal),
		nStruct:       nStruct,
		nSlack:        nSlack,
		numArtificial: nArt,
		nTotal:        nTotal,
		maxIters:      20000 + 200*(m+nTotal),
	}
	for j := 0; j < nTotal; j++ {
		if j < nStruct {
			t.upper[j] = p.Upper[j]
		} else {
			t.upper[j] = math.Inf(1)
		}
	}
	for i := range t.coef {
		t.coef[i] = make([]float64, nTotal)
	}
	slackCol, artCol := nStruct, nStruct+nSlack
	for i, c := range p.Constraints {
		row := t.coef[i]
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, v := range c.Coeffs {
			row[j] += sign * v
		}
		t.val[i] = sign * c.RHS
		switch rel {
		case LE:
			row[slackCol] = 1
			t.setBasis(i, slackCol)
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.setBasis(i, artCol)
			t.artCols = append(t.artCols, artCol)
			artCol++
		case EQ:
			row[artCol] = 1
			t.setBasis(i, artCol)
			t.artCols = append(t.artCols, artCol)
			artCol++
		}
	}
	return t
}

func (t *boundedTableau) m() int { return len(t.coef) - 1 }

func (t *boundedTableau) setBasis(r, col int) {
	t.basis[r] = col
	t.inBasis[col] = true
}

// setPhase installs the phase objective (phase 1: Σ artificials) as reduced
// costs and recomputes zval for the current solution.
func (t *boundedTableau) setPhase(phase1 bool, c []float64) {
	t.cost = make([]float64, t.nTotal)
	if phase1 {
		for _, a := range t.artCols {
			t.cost[a] = 1
		}
	} else {
		copy(t.cost, c)
	}
	obj := t.coef[t.m()]
	copy(obj, t.cost)
	for r, bj := range t.basis {
		factor := obj[bj]
		//socllint:ignore floateq structural zero: entry was assigned zero by elimination, not approximately computed
		if factor == 0 {
			continue
		}
		row := t.coef[r]
		for j := range obj {
			obj[j] -= factor * row[j]
		}
	}
	t.zval = 0
	for r, bj := range t.basis {
		t.zval += t.cost[bj] * t.val[r]
	}
	for j := 0; j < t.nTotal; j++ {
		if t.atUpper[j] && !t.inBasis[j] && !math.IsInf(t.upper[j], 1) {
			t.zval += t.cost[j] * t.upper[j]
		}
	}
}

// iterate runs bounded-variable simplex pivots until optimality,
// unboundedness, or the iteration cap.
func (t *boundedTableau) iterate() Status {
	isArt := make([]bool, t.nTotal)
	for _, c := range t.artCols {
		isArt[c] = true
	}
	blandAfter := t.maxIters / 2
	for ; t.iters < t.maxIters; t.iters++ {
		obj := t.coef[t.m()]
		enter, dir := -1, 1.0
		if t.iters < blandAfter {
			best := eps
			for j := 0; j < t.nTotal; j++ {
				if isArt[j] || t.inBasis[j] {
					continue
				}
				if !t.atUpper[j] && -obj[j] > best {
					best, enter, dir = -obj[j], j, 1
				} else if t.atUpper[j] && obj[j] > best {
					best, enter, dir = obj[j], j, -1
				}
			}
		} else { // Bland
			for j := 0; j < t.nTotal; j++ {
				if isArt[j] || t.inBasis[j] {
					continue
				}
				if !t.atUpper[j] && obj[j] < -eps {
					enter, dir = j, 1
					break
				}
				if t.atUpper[j] && obj[j] > eps {
					enter, dir = j, -1
					break
				}
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Ratio test: the entering variable moves by dist ≥ 0 in direction
		// dir; basic r changes by −dir·a_r·dist and must stay in
		// [0, upper(basis r)]; the entering variable itself is limited by
		// its interval length.
		limit := t.upper[enter]
		leave, leaveToUpper := -1, false
		for r := 0; r < t.m(); r++ {
			a := dir * t.coef[r][enter]
			switch {
			case a > eps: // basic decreases toward 0
				if ratio := t.val[r] / a; ratio < limit-eps {
					limit, leave, leaveToUpper = ratio, r, false
				} else if ratio <= limit+eps && leave != -1 && !leaveToUpper &&
					t.basis[r] < t.basis[leave] {
					leave = r // Bland-style tie-break for anti-cycling
				}
			case a < -eps: // basic increases toward its upper bound
				ub := t.upper[t.basis[r]]
				if math.IsInf(ub, 1) {
					continue
				}
				if ratio := (ub - t.val[r]) / (-a); ratio < limit-eps {
					limit, leave, leaveToUpper = ratio, r, true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}

		if leave == -1 {
			t.boundFlip(enter, dir)
			continue
		}
		t.moveAndPivot(enter, dir, limit, leave, leaveToUpper)
	}
	return IterLimit
}

// boundFlip moves nonbasic variable j across its whole interval.
func (t *boundedTableau) boundFlip(j int, dir float64) {
	dist := t.upper[j]
	for r := 0; r < t.m(); r++ {
		t.val[r] -= dir * dist * t.coef[r][j]
	}
	t.zval += t.coef[t.m()][j] * dir * dist
	t.atUpper[j] = dir > 0
}

// moveAndPivot advances the entering variable by dist, retires the leaving
// basic variable at the bound it hit, and pivots the coefficient matrix.
func (t *boundedTableau) moveAndPivot(enter int, dir, dist float64, leave int, leaveToUpper bool) {
	// Value updates for all basic rows.
	for r := 0; r < t.m(); r++ {
		t.val[r] -= dir * dist * t.coef[r][enter]
	}
	t.zval += t.coef[t.m()][enter] * dir * dist

	// The entering variable's new value.
	enterVal := dist
	if dir < 0 {
		enterVal = t.upper[enter] - dist
	}
	leavingCol := t.basis[leave]
	t.inBasis[leavingCol] = false
	t.atUpper[leavingCol] = leaveToUpper
	t.atUpper[enter] = false
	t.setBasis(leave, enter)
	t.val[leave] = enterVal

	// Gauss-Jordan on coefficients only.
	pr := t.coef[leave]
	pv := pr[enter]
	for j := range pr {
		pr[j] /= pv
	}
	for r := range t.coef {
		if r == leave {
			continue
		}
		f := t.coef[r][enter]
		//socllint:ignore floateq structural zero skip is an optimization; pivoting handles near-zeros via ratio tests
		if f == 0 {
			continue
		}
		tr := t.coef[r]
		for j := range tr {
			tr[j] -= f * pr[j]
		}
		tr[enter] = 0
	}
}

// driveOutArtificials pivots zero-valued basic artificials out after
// phase 1. Nonbasic-at-upper columns are eligible too (a degenerate pivot
// entering from the upper bound): skipping them can leave an artificial
// basic on a row whose only nonzero structural column sits at its upper
// bound — e.g. an equality that forces a variable exactly to that bound.
// Any artificial that still cannot be pivoted out (redundant row) is then
// pinned by clamping every artificial's upper bound to zero, so the phase-2
// ratio test can never move one off zero and silently break feasibility.
func (t *boundedTableau) driveOutArtificials() {
	isArt := make([]bool, t.nTotal)
	for _, c := range t.artCols {
		isArt[c] = true
	}
	for r := 0; r < t.m(); r++ {
		if !isArt[t.basis[r]] {
			continue
		}
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if math.Abs(t.coef[r][j]) > 1e-7 && !t.inBasis[j] {
				dir := 1.0
				if t.atUpper[j] {
					dir = -1
				}
				t.moveAndPivot(j, dir, 0, r, false)
				break
			}
		}
	}
	for _, a := range t.artCols {
		t.upper[a] = 0
	}
}

// extract returns the structural solution in shifted space.
func (t *boundedTableau) extract(n int) []float64 {
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if t.atUpper[j] && !t.inBasis[j] && !math.IsInf(t.upper[j], 1) {
			x[j] = t.upper[j]
		}
	}
	for r, bj := range t.basis {
		if bj < n {
			x[bj] = t.val[r]
		}
	}
	return x
}
