package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func solveBoundedOK(t *testing.T, p *BoundedProblem) Solution {
	t.Helper()
	s, err := SolveBounded(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestBoundedSimpleBox(t *testing.T) {
	// min -x - 2y, 0 ≤ x ≤ 3, 0 ≤ y ≤ 2, x + y ≤ 4 → x=2 y=2 z=-6? Check:
	// y=2 (upper), x ≤ 2 → x=2 → z = -2-4 = -6.
	p := NewBoundedProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -2)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	s := solveBoundedOK(t, p)
	if math.Abs(s.Objective-(-6)) > 1e-6 {
		t.Fatalf("objective = %v, want -6", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestBoundedPureBoundFlip(t *testing.T) {
	// No binding rows: min -x with x ≤ 5 → pure bound flip to 5.
	p := NewBoundedProblem(1)
	p.SetObjective(0, -1)
	p.SetBounds(0, 0, 5)
	p.AddConstraint(map[int]float64{0: 1}, LE, 100)
	s := solveBoundedOK(t, p)
	if math.Abs(s.X[0]-5) > 1e-6 || math.Abs(s.Objective-(-5)) > 1e-6 {
		t.Fatalf("x = %v obj = %v", s.X, s.Objective)
	}
}

func TestBoundedNonzeroLower(t *testing.T) {
	// min x + y with x ≥ 2, y ∈ [1,3], x + y ≥ 5 → x=2? then y=3 → 5.
	// Or x=4,y=1 → 5. Objective value is 5 either way.
	p := NewBoundedProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetBounds(0, 2, math.Inf(1))
	p.SetBounds(1, 1, 3)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 5)
	s := solveBoundedOK(t, p)
	if math.Abs(s.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
	if s.X[0] < 2-1e-9 || s.X[1] < 1-1e-9 || s.X[1] > 3+1e-9 {
		t.Fatalf("bounds violated: %v", s.X)
	}
}

func TestBoundedInfeasible(t *testing.T) {
	// x ≤ 1 (bound) but row forces x ≥ 2.
	p := NewBoundedProblem(1)
	p.SetObjective(0, 1)
	p.SetBounds(0, 0, 1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	s, err := SolveBounded(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestBoundedUnbounded(t *testing.T) {
	p := NewBoundedProblem(1)
	p.SetObjective(0, -1) // min -x, x unbounded above
	p.AddConstraint(map[int]float64{0: 1}, GE, 0)
	s, err := SolveBounded(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestBoundedValidate(t *testing.T) {
	p := NewBoundedProblem(1)
	p.SetBounds(0, 3, 1)
	if _, err := SolveBounded(p); err == nil {
		t.Fatal("empty bound interval accepted")
	}
	p2 := NewBoundedProblem(1)
	p2.Lower[0] = math.Inf(-1)
	if _, err := SolveBounded(p2); err == nil {
		t.Fatal("infinite lower bound accepted")
	}
}

func TestBoundedBinaryKnapsackRelaxation(t *testing.T) {
	// LP relaxation of the knapsack from the ILP tests: max 10a+13b+7c,
	// 3a+4b+2c ≤ 6, 0 ≤ vars ≤ 1. LP optimum: b=1, c=1, a=0 → 20;
	// actually fractional a=0: 4+2=6 full. Check against row-based Solve.
	pb := NewBoundedProblem(3)
	pb.SetObjective(0, -10)
	pb.SetObjective(1, -13)
	pb.SetObjective(2, -7)
	for j := 0; j < 3; j++ {
		pb.SetBounds(j, 0, 1)
	}
	pb.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, LE, 6)
	sb := solveBoundedOK(t, pb)

	pr := NewProblem(3)
	pr.SetObjective(0, -10)
	pr.SetObjective(1, -13)
	pr.SetObjective(2, -7)
	pr.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, LE, 6)
	for j := 0; j < 3; j++ {
		pr.AddConstraint(map[int]float64{j: 1}, LE, 1)
	}
	sr, err := Solve(pr)
	if err != nil || sr.Status != Optimal {
		t.Fatal(err)
	}
	if math.Abs(sb.Objective-sr.Objective) > 1e-6 {
		t.Fatalf("bounded %v != row-based %v", sb.Objective, sr.Objective)
	}
}

// Differential property test: on random LPs with box bounds, SolveBounded
// must agree with Solve on the row-based encoding (status and objective).
func TestBoundedMatchesRowBasedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(4)
		pb := NewBoundedProblem(n)
		pr := NewProblem(n)
		for j := 0; j < n; j++ {
			c := math.Round((r.Float64()*10-5)*4) / 4
			pb.SetObjective(j, c)
			pr.SetObjective(j, c)
			lo := math.Round(r.Float64()*2*4) / 4
			up := lo + math.Round((0.5+r.Float64()*4)*4)/4
			pb.SetBounds(j, lo, up)
			pr.AddConstraint(map[int]float64{j: 1}, GE, lo)
			pr.AddConstraint(map[int]float64{j: 1}, LE, up)
		}
		rows := 1 + r.Intn(3)
		for i := 0; i < rows; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round((r.Float64()*4-2)*4) / 4
			}
			rel := []Rel{LE, GE, EQ}[r.Intn(3)]
			rhs := math.Round((r.Float64()*20-5)*4) / 4
			pb.AddConstraint(coeffs, rel, rhs)
			pr.AddConstraint(coeffs, rel, rhs)
		}
		sb, err1 := SolveBounded(pb)
		sr, err2 := Solve(pr)
		if err1 != nil || err2 != nil {
			return false
		}
		if sb.Status != sr.Status {
			return false
		}
		if sb.Status != Optimal {
			return true
		}
		if math.Abs(sb.Objective-sr.Objective) > 1e-5 {
			return false
		}
		// The bounded solution must satisfy its own constraints and bounds.
		for j := 0; j < n; j++ {
			if sb.X[j] < pb.Lower[j]-1e-6 || sb.X[j] > pb.Upper[j]+1e-6 {
				return false
			}
		}
		for _, c := range pb.Constraints {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * sb.X[j]
			}
			switch c.Rel {
			case LE:
				if lhs > c.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The bounded solver should use dramatically fewer rows than the row-based
// encoding on all-binary problems (smoke check: it solves a mid-size box LP
// in bounded iterations).
func TestBoundedScalesOnBinaryBoxes(t *testing.T) {
	n := 200
	p := NewBoundedProblem(n)
	r := stats.NewRand(3)
	coeffs := map[int]float64{}
	for j := 0; j < n; j++ {
		p.SetObjective(j, r.Float64()*10-5)
		p.SetBounds(j, 0, 1)
		coeffs[j] = 1 + r.Float64()
	}
	p.AddConstraint(coeffs, LE, float64(n)/4)
	s := solveBoundedOK(t, p)
	if s.Iters > 2000 {
		t.Fatalf("too many iterations: %d", s.Iters)
	}
}
