// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A·x {≤,=,≥} b,   x ≥ 0
//
// It is the foundation of this repository's Gurobi substitution (see
// DESIGN.md): package ilp builds a branch-and-bound MILP solver on top of
// it, and package opt cross-validates its specialized exact solver against
// it. The implementation favours clarity and numerical robustness (Bland's
// anti-cycling rule after a Dantzig phase) over large-scale performance —
// the paper's point, after all, is that exact solving does not scale.
package lp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return "?"
	}
}

// Constraint is one row: Σ Coeffs[j]·x_j  Rel  RHS.
type Constraint struct {
	Coeffs map[int]float64
	Rel    Rel
	RHS    float64
}

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // minimize; length NumVars
	Constraints []Constraint
}

// NewProblem returns a problem with n variables and a zero objective.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// SetObjective sets the coefficient of variable j in the minimized
// objective.
func (p *Problem) SetObjective(j int, c float64) {
	p.Objective[j] = c
}

// AddConstraint appends a row. Coefficient maps are copied.
func (p *Problem) AddConstraint(coeffs map[int]float64, rel Rel, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for j, v := range coeffs {
		cp[j] = v
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: cp, Rel: rel, RHS: rhs})
}

// Clone deep-copies the problem (used by branch-and-bound nodes).
func (p *Problem) Clone() *Problem {
	q := NewProblem(p.NumVars)
	copy(q.Objective, p.Objective)
	q.Constraints = make([]Constraint, len(p.Constraints))
	for i, c := range p.Constraints {
		cp := make(map[int]float64, len(c.Coeffs))
		for j, v := range c.Coeffs {
			cp[j] = v
		}
		q.Constraints[i] = Constraint{Coeffs: cp, Rel: c.Rel, RHS: c.RHS}
	}
	return q
}

// Validate checks structural sanity.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: no variables")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective length %d != NumVars %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		for j := range c.Coeffs {
			if j < 0 || j >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d", i, j)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has invalid RHS %v", i, c.RHS)
		}
	}
	return nil
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Iters     int
}

const eps = 1e-9

// Solve runs two-phase primal simplex. The returned solution's X is valid
// only when Status == Optimal.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	return newTableau(p).solve(p.Objective, p.NumVars)
}

// solve runs the two-phase driver on a constructed tableau (shared by Solve
// and the bounds-overlay SolveWithBoundRows).
func (t *tableau) solve(objective []float64, nVars int) (Solution, error) {
	// Phase 1: minimize artificial sum.
	if t.numArtificial > 0 {
		t.setPhase1Objective()
		st := t.iterate()
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: t.iters}, nil
		}
		if t.objValue() > 1e-7 {
			return Solution{Status: Infeasible, Iters: t.iters}, nil
		}
		t.driveOutArtificials()
	}
	// Phase 2: original objective.
	t.setPhase2Objective(objective)
	st := t.iterate()
	switch st {
	case Unbounded:
		return Solution{Status: Unbounded, Iters: t.iters}, nil
	case IterLimit:
		return Solution{Status: IterLimit, Iters: t.iters}, nil
	}
	x := make([]float64, nVars)
	for r, bj := range t.basis {
		if bj < nVars {
			x[bj] = t.rhs(r)
		}
	}
	return Solution{Status: Optimal, X: x, Objective: t.objValue(), Iters: t.iters}, nil
}

// tableau is the dense simplex tableau. Columns: structural vars
// [0,nStruct), slack/surplus [nStruct,nStruct+nSlack), artificials after
// that; the final column is the RHS. The objective row is rows[m].
type tableau struct {
	rows          [][]float64 // (m+1) × (nTotal+1)
	basis         []int       // basic variable per constraint row
	nStruct       int
	nSlack        int
	numArtificial int
	nTotal        int
	artCols       []int // column index of each artificial
	iters         int
	maxIters      int
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	nStruct := p.NumVars
	// Count slacks and artificials.
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		b := c.RHS
		rel := c.Rel
		if b < 0 { // normalize to b ≥ 0 by negating the row
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	nTotal := nStruct + nSlack + nArt
	t := &tableau{
		rows:          make([][]float64, m+1),
		basis:         make([]int, m),
		nStruct:       nStruct,
		nSlack:        nSlack,
		numArtificial: nArt,
		nTotal:        nTotal,
		maxIters:      20000 + 200*(m+nTotal),
	}
	for i := range t.rows {
		t.rows[i] = make([]float64, nTotal+1)
	}
	slackCol := nStruct
	artCol := nStruct + nSlack
	for i, c := range p.Constraints {
		row := t.rows[i]
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, v := range c.Coeffs {
			row[j] += sign * v
		}
		row[nTotal] = sign * c.RHS
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			t.artCols = append(t.artCols, artCol)
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			t.artCols = append(t.artCols, artCol)
			artCol++
		}
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) m() int { return len(t.rows) - 1 }

func (t *tableau) rhs(r int) float64 { return t.rows[r][t.nTotal] }

// objValue returns the current objective value (the tableau keeps -z in the
// bottom-right corner).
func (t *tableau) objValue() float64 { return -t.rows[t.m()][t.nTotal] }

// setPhase1Objective installs min Σ artificials and eliminates basic
// artificials from the objective row.
func (t *tableau) setPhase1Objective() {
	obj := t.rows[t.m()]
	for j := range obj {
		obj[j] = 0
	}
	isArt := make(map[int]bool, len(t.artCols))
	for _, c := range t.artCols {
		obj[c] = 1
		isArt[c] = true
	}
	for r, bj := range t.basis {
		if isArt[bj] {
			t.eliminate(r)
		}
	}
}

// setPhase2Objective installs the original objective (artificial columns get
// +∞-like cost by being excluded from entering) and eliminates basic
// contributions.
func (t *tableau) setPhase2Objective(c []float64) {
	obj := t.rows[t.m()]
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, c)
	for r, bj := range t.basis {
		if math.Abs(obj[bj]) > 0 {
			t.eliminate(r)
		}
	}
}

// eliminate zeroes the objective-row entry of the basic variable of row r.
func (t *tableau) eliminate(r int) {
	obj := t.rows[t.m()]
	factor := obj[t.basis[r]]
	//socllint:ignore floateq structural zero: entry was assigned zero by elimination, not approximately computed
	if factor == 0 {
		return
	}
	row := t.rows[r]
	for j := range obj {
		obj[j] -= factor * row[j]
	}
}

// iterate runs simplex pivots until optimality, unboundedness or the
// iteration cap. Artificial columns never re-enter the basis.
func (t *tableau) iterate() Status {
	isArt := make([]bool, t.nTotal)
	for _, c := range t.artCols {
		isArt[c] = true
	}
	blandAfter := t.maxIters / 2
	for ; t.iters < t.maxIters; t.iters++ {
		obj := t.rows[t.m()]
		enter := -1
		if t.iters < blandAfter {
			// Dantzig: most negative reduced cost.
			best := -eps
			for j := 0; j < t.nTotal; j++ {
				if !isArt[j] && obj[j] < best {
					best, enter = obj[j], j
				}
			}
		} else {
			// Bland: first negative reduced cost (anti-cycling).
			for j := 0; j < t.nTotal; j++ {
				if !isArt[j] && obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m(); r++ {
			a := t.rows[r][enter]
			if a > eps {
				ratio := t.rhs(r) / a
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave == -1 || t.basis[r] < t.basis[leave])) {
					bestRatio, leave = ratio, r
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return IterLimit
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for r := range t.rows {
		if r == row {
			continue
		}
		f := t.rows[r][col]
		//socllint:ignore floateq structural zero skip is an optimization; pivoting handles near-zeros via ratio tests
		if f == 0 {
			continue
		}
		tr := t.rows[r]
		for j := range tr {
			tr[j] -= f * pr[j]
		}
		tr[col] = 0 // crush fp residue on the pivot column
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables out of the basis
// after phase 1 (or drops their rows when redundant).
func (t *tableau) driveOutArtificials() {
	isArt := make([]bool, t.nTotal)
	for _, c := range t.artCols {
		isArt[c] = true
	}
	for r := 0; r < t.m(); r++ {
		if !isArt[t.basis[r]] {
			continue
		}
		// Find any non-artificial column with a nonzero entry to pivot in.
		pivoted := false
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if math.Abs(t.rows[r][j]) > 1e-7 {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: basic artificial at value 0 with an all-zero
			// row. Leave it; its RHS is ~0 and it can never pivot again.
			t.rows[r][t.nTotal] = 0
		}
	}
}
