package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleMax(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6 → min -3x-2y; optimum x=4,y=0, z=-12.
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6)
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-12)) > 1e-6 {
		t.Fatalf("objective = %v, want -12", s.Objective)
	}
	if math.Abs(s.X[0]-4) > 1e-6 || math.Abs(s.X[1]) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x+y s.t. x+y = 10, x >= 3, y >= 2 → objective 10.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 10)
	p.AddConstraint(map[int]float64{0: 1}, GE, 3)
	p.AddConstraint(map[int]float64{1: 1}, GE, 2)
	s := solveOK(t, p)
	if math.Abs(s.Objective-10) > 1e-6 {
		t.Fatalf("objective = %v, want 10", s.Objective)
	}
	if s.X[0] < 3-1e-6 || s.X[1] < 2-1e-6 {
		t.Fatalf("x = %v violates bounds", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 0 (implicit): unbounded below.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 0)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -5 means x >= 5; min x → 5.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: -1}, LE, -5)
	s := solveOK(t, p)
	if math.Abs(s.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate vertex; must not cycle.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	p.AddConstraint(map[int]float64{1: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 2) // redundant at optimum
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-2)) > 1e-6 {
		t.Fatalf("objective = %v, want -2", s.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows → redundant artificial; must still solve.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	s := solveOK(t, p)
	if math.Abs(s.Objective-4) > 1e-6 { // x=4, y=0
		t.Fatalf("objective = %v, want 4", s.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem(0)
	if _, err := Solve(p); err == nil {
		t.Fatal("no-variable problem accepted")
	}
	p2 := NewProblem(1)
	p2.AddConstraint(map[int]float64{5: 1}, LE, 1)
	if _, err := Solve(p2); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	p3 := NewProblem(1)
	p3.AddConstraint(map[int]float64{0: 1}, LE, math.NaN())
	if _, err := Solve(p3); err == nil {
		t.Fatal("NaN RHS accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, LE, 3)
	q := p.Clone()
	q.Objective[0] = 9
	q.Constraints[0].Coeffs[0] = 7
	if p.Objective[0] != 1 || p.Constraints[0].Coeffs[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (10, 20), 2 demands (15, 15), costs [[1,2],[3,1]].
	// Optimal: x00=10, x10=5, x11=15 → 10+15+15 = 40.
	p := NewProblem(4) // x00 x01 x10 x11
	costs := []float64{1, 2, 3, 1}
	for j, c := range costs {
		p.SetObjective(j, c)
	}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 10)
	p.AddConstraint(map[int]float64{2: 1, 3: 1}, EQ, 20)
	p.AddConstraint(map[int]float64{0: 1, 2: 1}, EQ, 15)
	p.AddConstraint(map[int]float64{1: 1, 3: 1}, EQ, 15)
	s := solveOK(t, p)
	if math.Abs(s.Objective-40) > 1e-6 {
		t.Fatalf("objective = %v, want 40", s.Objective)
	}
}

// referenceEnumerate solves a small LP with all-LE rows by enumerating basic
// feasible solutions via vertex enumeration over constraint pairs in 2D.
func vertex2D(a1, b1, c1, a2, b2, c2 float64) (float64, float64, bool) {
	det := a1*b2 - a2*b1
	if math.Abs(det) < 1e-12 {
		return 0, 0, false
	}
	return (c1*b2 - c2*b1) / det, (a1*c2 - a2*c1) / det, true
}

// Property: on random feasible bounded 2-variable LPs, the simplex optimum
// matches brute-force vertex enumeration.
func TestSimplexMatchesVertexEnumeration2D(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		// min c·x over x,y>=0 with 3 random "≤" constraints with positive
		// coefficients (guarantees bounded feasible region containing 0).
		type row struct{ a, b, c float64 }
		rows := make([]row, 3)
		for i := range rows {
			rows[i] = row{1 + r.Float64()*4, 1 + r.Float64()*4, 1 + r.Float64()*9}
		}
		cx, cy := -1-r.Float64()*4, -1-r.Float64()*4 // maximize positive combo

		p := NewProblem(2)
		p.SetObjective(0, cx)
		p.SetObjective(1, cy)
		for _, rw := range rows {
			p.AddConstraint(map[int]float64{0: rw.a, 1: rw.b}, LE, rw.c)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}

		// Enumerate candidate vertices: axis intercepts and pairwise
		// intersections, keep feasible ones, take the best.
		cands := [][2]float64{{0, 0}}
		for _, rw := range rows {
			cands = append(cands, [2]float64{rw.c / rw.a, 0}, [2]float64{0, rw.c / rw.b})
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if x, y, ok := vertex2D(rows[i].a, rows[i].b, rows[i].c, rows[j].a, rows[j].b, rows[j].c); ok {
					cands = append(cands, [2]float64{x, y})
				}
			}
		}
		best := math.Inf(1)
		for _, v := range cands {
			x, y := v[0], v[1]
			if x < -1e-9 || y < -1e-9 {
				continue
			}
			ok := true
			for _, rw := range rows {
				if rw.a*x+rw.b*y > rw.c+1e-9 {
					ok = false
					break
				}
			}
			if ok {
				if z := cx*x + cy*y; z < best {
					best = z
				}
			}
		}
		return math.Abs(s.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reported optimum is ≤ the objective at any random feasible
// point (optimality certificate on sampled points).
func TestOptimumDominatesFeasiblePoints(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 3 + r.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, r.Float64()*10-5)
		}
		// Box constraints keep it bounded: x_j <= u_j.
		ub := make([]float64, n)
		for j := 0; j < n; j++ {
			ub[j] = 1 + r.Float64()*9
			p.AddConstraint(map[int]float64{j: 1}, LE, ub[j])
		}
		// A couple of random coupling rows with positive coefficients.
		for i := 0; i < 2; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = r.Float64() * 2
			}
			p.AddConstraint(coeffs, LE, 5+r.Float64()*20)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Sample feasible points by scaling random points into the box and
		// rejecting violations.
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = r.Float64() * ub[j]
			}
			feasible := true
			for _, c := range p.Constraints {
				lhs := 0.0
				for j, v := range c.Coeffs {
					lhs += v * x[j]
				}
				if c.Rel == LE && lhs > c.RHS+1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			z := 0.0
			for j := range x {
				z += p.Objective[j] * x[j]
			}
			if z < s.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
