package lp

import (
	"fmt"
	"math"
)

// Bounds-overlay solve mode for branch-and-bound: a child node's LP differs
// from the shared base problem only by a handful of single-variable bound
// rows (x_v ≥ val or x_v ≤ val). SolveWithBoundRows builds the child tableau
// directly from the base problem plus those rows — constructing bit-for-bit
// the tableau that Clone()+AddConstraint()+Solve() would have produced —
// without deep-copying the base's constraint maps. Combined with a reusable
// Workspace it removes the per-node allocation hot spot the ilp package had
// (see BenchmarkILPNodeLP).

// BoundRow is one single-variable branching constraint applied on top of a
// base problem: x_Var ≤ Val when Upper, else x_Var ≥ Val.
type BoundRow struct {
	Var   int
	Upper bool
	Val   float64
}

// Workspace pools tableau storage across solves. The zero value is ready to
// use; each call reslices (growing only when a larger tableau appears) and
// re-zeroes the backing arrays, so steady-state solves allocate nothing for
// the tableau itself. A Workspace is not safe for concurrent use — give each
// worker its own.
type Workspace struct {
	flat  []float64
	rows  [][]float64
	basis []int
	art   []int
}

// tableauStorage returns zeroed row storage for an (mRows)×(nCols) tableau
// plus basis/artCols scratch, reusing w's backing arrays when they fit.
func (w *Workspace) tableauStorage(mRows, nCols, nArt int) (rows [][]float64, basis, art []int) {
	need := mRows * nCols
	if cap(w.flat) < need {
		w.flat = make([]float64, need)
	}
	w.flat = w.flat[:need]
	for i := range w.flat {
		w.flat[i] = 0
	}
	if cap(w.rows) < mRows {
		w.rows = make([][]float64, mRows)
	}
	w.rows = w.rows[:mRows]
	for i := 0; i < mRows; i++ {
		w.rows[i] = w.flat[i*nCols : (i+1)*nCols : (i+1)*nCols]
	}
	if cap(w.basis) < mRows {
		w.basis = make([]int, mRows)
	}
	w.basis = w.basis[:mRows-1] // one basis slot per constraint row
	if cap(w.art) < nArt {
		w.art = make([]int, nArt)
	}
	art = w.art[:0]
	return w.rows, w.basis, art
}

// SolveWithBoundRows solves base with the extra bound rows appended, exactly
// as if they had been added to a clone with AddConstraint — the constructed
// tableau is bitwise identical (TestOverlayMatchesClone pins this) — but
// without copying the base problem. base is only read, so concurrent calls
// sharing one base are safe as long as each passes its own Workspace.
// ws may be nil (storage is then allocated per call).
func SolveWithBoundRows(base *Problem, extra []BoundRow, ws *Workspace) (Solution, error) {
	if err := base.Validate(); err != nil {
		return Solution{}, err
	}
	for _, b := range extra {
		if b.Var < 0 || b.Var >= base.NumVars {
			return Solution{}, fmt.Errorf("lp: bound row references variable %d", b.Var)
		}
		if math.IsNaN(b.Val) || math.IsInf(b.Val, 0) {
			return Solution{}, fmt.Errorf("lp: bound row on variable %d has invalid value %v", b.Var, b.Val)
		}
	}
	if ws == nil {
		ws = &Workspace{}
	}
	t := newOverlayTableau(base, extra, ws)
	return t.solve(base.Objective, base.NumVars)
}

// newOverlayTableau mirrors newTableau with the extra bound rows appended
// after the base constraints, in order — the exact row layout a clone with
// AddConstraint would produce.
func newOverlayTableau(p *Problem, extra []BoundRow, ws *Workspace) *tableau {
	m := len(p.Constraints) + len(extra)
	nStruct := p.NumVars
	nSlack, nArt := 0, 0
	countRow := func(rhs float64, rel Rel) {
		if rhs < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	for _, c := range p.Constraints {
		countRow(c.RHS, c.Rel)
	}
	for _, b := range extra {
		rel := GE
		if b.Upper {
			rel = LE
		}
		countRow(b.Val, rel)
	}
	nTotal := nStruct + nSlack + nArt
	rows, basis, art := ws.tableauStorage(m+1, nTotal+1, nArt)
	t := &tableau{
		rows:          rows,
		basis:         basis,
		nStruct:       nStruct,
		nSlack:        nSlack,
		numArtificial: nArt,
		nTotal:        nTotal,
		artCols:       art,
		maxIters:      20000 + 200*(m+nTotal),
	}
	slackCol, artCol := nStruct, nStruct+nSlack
	fillRow := func(i int, rel Rel, rhs float64, coeffs func(sign float64, row []float64)) {
		row := t.rows[i]
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rel = flip(rel)
		}
		coeffs(sign, row)
		row[nTotal] = sign * rhs
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			t.artCols = append(t.artCols, artCol)
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			t.artCols = append(t.artCols, artCol)
			artCol++
		}
	}
	for i, c := range p.Constraints {
		c := c
		fillRow(i, c.Rel, c.RHS, func(sign float64, row []float64) {
			for j, v := range c.Coeffs {
				row[j] += sign * v
			}
		})
	}
	for bi, b := range extra {
		b := b
		rel := GE
		if b.Upper {
			rel = LE
		}
		fillRow(len(p.Constraints)+bi, rel, b.Val, func(sign float64, row []float64) {
			row[b.Var] += sign
		})
	}
	return t
}
