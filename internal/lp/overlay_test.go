package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// cloneWithBounds is the replaced construction: clone the base and append
// each bound row as an ordinary constraint.
func cloneWithBounds(base *Problem, extra []BoundRow) *Problem {
	p := base.Clone()
	for _, b := range extra {
		rel := GE
		if b.Upper {
			rel = LE
		}
		p.AddConstraint(map[int]float64{b.Var: 1}, rel, b.Val)
	}
	return p
}

// The overlay must reproduce the clone-and-append path bit for bit: same
// status, same iteration count, bitwise-identical objective and solution
// vector — it builds the identical tableau, so the identical pivot sequence
// must follow.
func TestOverlayMatchesClone(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(4)
		base := NewProblem(n)
		for j := 0; j < n; j++ {
			base.SetObjective(j, math.Round((r.Float64()*10-5)*4)/4)
		}
		rows := 1 + r.Intn(3)
		for i := 0; i < rows; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round((r.Float64()*4-2)*4) / 4
			}
			rel := []Rel{LE, GE, EQ}[r.Intn(3)]
			rhs := math.Round((r.Float64()*20-5)*4) / 4
			base.AddConstraint(coeffs, rel, rhs)
		}
		var extra []BoundRow
		for b := 0; b < r.Intn(4); b++ {
			extra = append(extra, BoundRow{
				Var:   r.Intn(n),
				Upper: r.Intn(2) == 0,
				Val:   math.Round(r.Float64()*3*4) / 4,
			})
		}
		got, err1 := SolveWithBoundRows(base, extra, nil)
		want, err2 := Solve(cloneWithBounds(base, extra))
		if (err1 != nil) != (err2 != nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if got.Status != want.Status || got.Iters != want.Iters {
			return false
		}
		if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
			return false
		}
		if len(got.X) != len(want.X) {
			return false
		}
		for j := range got.X {
			if math.Float64bits(got.X[j]) != math.Float64bits(want.X[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// A reused Workspace must not leak state between solves: interleave problems
// of different shapes and re-check each against a fresh solve.
func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	ws := &Workspace{}
	r := stats.NewRand(7)
	for round := 0; round < 50; round++ {
		n := 1 + r.Intn(5)
		base := NewProblem(n)
		for j := 0; j < n; j++ {
			base.SetObjective(j, math.Round((r.Float64()*10-5)*4)/4)
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round((r.Float64()*4-2)*4) / 4
			}
			rel := []Rel{LE, GE, EQ}[r.Intn(3)]
			base.AddConstraint(coeffs, rel, math.Round((r.Float64()*20-5)*4)/4)
		}
		var extra []BoundRow
		if r.Intn(2) == 0 {
			extra = append(extra, BoundRow{Var: r.Intn(n), Upper: true, Val: math.Round(r.Float64()*3*4) / 4})
		}
		got, err1 := SolveWithBoundRows(base, extra, ws)
		want, err2 := SolveWithBoundRows(base, extra, nil)
		if (err1 != nil) != (err2 != nil) {
			t.Fatalf("round %d: error mismatch %v vs %v", round, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if got.Status != want.Status || got.Iters != want.Iters ||
			math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
			t.Fatalf("round %d: workspace-reuse result differs: %+v vs %+v", round, got, want)
		}
	}
}

func TestOverlayValidatesBoundRows(t *testing.T) {
	base := NewProblem(2)
	base.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	if _, err := SolveWithBoundRows(base, []BoundRow{{Var: 5, Upper: true, Val: 1}}, nil); err == nil {
		t.Fatal("out-of-range bound row accepted")
	}
	if _, err := SolveWithBoundRows(base, []BoundRow{{Var: 0, Upper: true, Val: math.NaN()}}, nil); err == nil {
		t.Fatal("NaN bound row accepted")
	}
	if _, err := SolveWithBoundRows(base, []BoundRow{{Var: 0, Val: math.Inf(1)}}, nil); err == nil {
		t.Fatal("infinite bound row accepted")
	}
}
