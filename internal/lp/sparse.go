package lp

// Sparse revised simplex (DESIGN.md §14). The dense warmTableau maintains the
// full B⁻¹A matrix and pays O(m·n) per pivot; SoCL's node relaxations are
// overwhelmingly sparse (each request row touches only the services on its
// chain), so this engine keeps the constraint matrix in CSC form and
// represents B⁻¹ as a product-form eta file instead:
//
//   - pricing computes y = c_B B⁻¹ by one BTRAN sweep and reduced costs by
//     sparse column dots (no maintained objective row);
//   - the ratio test and basic-value updates use the FTRANed entering column,
//     whose nonzeros are exactly the rows a dense pivot would touch;
//   - each pivot appends one eta (the entering column + pivot row), and the
//     file is rebuilt from the original columns — refactorization — when the
//     update count or fill crosses a threshold, or when a tiny pivot signals
//     numerical drift; refactorization also refreshes the basic values from
//     the new factorization, which is the drift correction that keeps long
//     warm chains honest.
//
// The phase structure, pivot rules (Dantzig with a Bland fallback after
// maxIters/2, bound flips, the basis-index ratio tie-break) and tolerances
// mirror warmTableau exactly, so the two engines explore the same vertices up
// to floating-point rounding; the dense path stays available behind
// WarmConfig{Dense: true} as the differential reference.

import (
	"math"
	"sort"
)

// refactorPivTol is the refactorization pivot threshold: a slot whose FTRANed
// pivot entry is smaller is deferred to a later elimination round.
const refactorPivTol = 1e-8

// driftPivTol flags a suspiciously small simplex pivot on a long eta chain;
// the solver refactorizes and re-derives the iteration instead of trusting it.
const driftPivTol = 1e-7

// cscMatrix is the immutable structural matrix of a BoundedProblem in
// compressed-sparse-column form, with a CSR mirror (for row residuals), the
// right-hand side, and the fixed slack layout (one slack column per LE/GE
// row). It is built once per WarmSolver and shared by every snapshot.
type cscMatrix struct {
	m, n int // rows, structural columns

	colp []int32 // n+1 column offsets into rows/vals
	rows []int32
	vals []float64

	rowp  []int32 // m+1 row offsets into cols/rvals (CSR mirror)
	cols  []int32
	rvals []float64

	rhs       []float64
	rel       []Rel
	slackCol  []int32   // per row: slack column (total index) or -1 for EQ
	slackSign []float64 // +1 for LE rows, -1 for GE rows
	nSlack    int
}

// newCSC builds the CSC/CSR forms from the row-major constraint maps. Entries
// within a row are sorted by column and exact zeros are dropped, so the
// layout is deterministic regardless of map iteration order.
func newCSC(p *BoundedProblem) *cscMatrix {
	m, n := len(p.Constraints), p.NumVars
	a := &cscMatrix{m: m, n: n}
	a.rowp = make([]int32, m+1)
	a.rhs = make([]float64, m)
	a.rel = make([]Rel, m)
	a.slackCol = make([]int32, m)
	a.slackSign = make([]float64, m)

	nnz := 0
	for i, c := range p.Constraints {
		for _, v := range c.Coeffs {
			//socllint:ignore floateq structural nonzero scan over verbatim input coefficients; a tolerance would drop real entries
			if v != 0 {
				nnz++
			}
		}
		a.rhs[i] = c.RHS
		a.rel[i] = c.Rel
	}
	a.cols = make([]int32, 0, nnz)
	a.rvals = make([]float64, 0, nnz)
	colCount := make([]int32, n+1)

	var rowCols []int
	for i, c := range p.Constraints {
		rowCols = rowCols[:0]
		for j, v := range c.Coeffs {
			//socllint:ignore floateq same structural nonzero scan as the count pass above
			if v != 0 {
				rowCols = append(rowCols, j)
			}
		}
		sort.Ints(rowCols)
		for _, j := range rowCols {
			a.cols = append(a.cols, int32(j))
			a.rvals = append(a.rvals, c.Coeffs[j])
			colCount[j+1]++
		}
		a.rowp[i+1] = int32(len(a.cols))
	}

	// CSC from CSR: prefix-sum the column counts, then scatter rows in order,
	// which leaves each column's row indices sorted ascending.
	a.colp = colCount
	for j := 0; j < n; j++ {
		a.colp[j+1] += a.colp[j]
	}
	a.rows = make([]int32, nnz)
	a.vals = make([]float64, nnz)
	next := make([]int32, n)
	for j := 0; j < n; j++ {
		next[j] = a.colp[j]
	}
	for i := 0; i < m; i++ {
		for k := a.rowp[i]; k < a.rowp[i+1]; k++ {
			j := a.cols[k]
			a.rows[next[j]] = int32(i)
			a.vals[next[j]] = a.rvals[k]
			next[j]++
		}
	}

	slack := int32(n)
	for i := 0; i < m; i++ {
		switch a.rel[i] {
		case LE:
			a.slackCol[i], a.slackSign[i] = slack, 1
			slack++
		case GE:
			a.slackCol[i], a.slackSign[i] = slack, -1
			slack++
		default:
			a.slackCol[i] = -1
		}
	}
	a.nSlack = int(slack) - n
	return a
}

// etaEntry is one off-pivot nonzero of an eta column.
type etaEntry struct {
	i int32
	v float64
}

// etaElem is one elementary factor of the product-form inverse
// B⁻¹ = E_K … E_1: the pivot row r, the pre-division pivot value pv, and the
// off-pivot nonzeros of the (FTRANed) entering column. Immutable once
// appended, so snapshots share the entry slices.
type etaElem struct {
	r   int32
	pv  float64
	ent []etaEntry
}

// sparseTableau is the revised-simplex counterpart of warmTableau: the same
// basis/bounds/phase state, but no coefficient matrix — columns are read from
// the shared cscMatrix and transformed through the eta file on demand.
type sparseTableau struct {
	a *cscMatrix // shared, immutable

	nStruct       int
	nSlack        int
	numArtificial int
	nTotal        int

	lrow  []int32   // logical (slack+artificial) columns: row index
	lsign []float64 // and coefficient sign

	val     []float64 // basic variable values, one per row slot
	basis   []int
	inBasis []bool
	atUpper []bool
	lower   []float64
	upper   []float64
	cost    []float64 // current phase costs
	isArt   []bool
	artCols []int

	etas     []etaElem
	baseEtas int // etas laid down by the last build/refactorization
	etaNNZ   int // off-pivot nonzeros appended since then

	// entArena backs the etaElem.ent slices so pivots don't allocate.
	// Appending is always safe (shared ent slices end at or before the
	// current len), but resetting to [:0] is not once a snapshot/restore
	// holds headers into this array — resetArena abandons it then.
	entArena    []etaEntry
	arenaShared bool

	iters       int
	maxIters    int
	updLimit    int // update etas beyond baseEtas that trigger refactorization
	updLimitCfg int // WarmConfig.UpdateLimit override (0 = heuristic)
	nnzLimit    int // update fill that triggers refactorization
	refactors   int // mid-solve refactorization count (tests observe)

	// Scratch vectors (length m), never part of snapshots.
	w       []float64
	y       []float64
	rhsv    []float64
	perm    []int
	basis2  []int
	rowFree []bool
}

func (t *sparseTableau) m() int { return t.a.m }

// grow (re)sizes every array for the given column count, reusing backing
// storage across rebuilds, and resets the per-column state.
func (t *sparseTableau) grow(nTotal, nArt int) {
	m := t.a.m
	growF := func(s []float64, n int) []float64 {
		if cap(s) < n {
			return make([]float64, n)
		}
		return s[:n]
	}
	growI := func(s []int, n int) []int {
		if cap(s) < n {
			return make([]int, n)
		}
		return s[:n]
	}
	growB := func(s []bool, n int) []bool {
		if cap(s) < n {
			return make([]bool, n)
		}
		return s[:n]
	}
	growI32 := func(s []int32, n int) []int32 {
		if cap(s) < n {
			return make([]int32, n)
		}
		return s[:n]
	}
	t.val = growF(t.val, m)
	t.basis = growI(t.basis, m)
	t.lower = growF(t.lower, nTotal)
	t.upper = growF(t.upper, nTotal)
	t.cost = growF(t.cost, nTotal)
	t.inBasis = growB(t.inBasis, nTotal)
	t.atUpper = growB(t.atUpper, nTotal)
	t.isArt = growB(t.isArt, nTotal)
	for j := 0; j < nTotal; j++ {
		t.inBasis[j] = false
		t.atUpper[j] = false
		t.isArt[j] = false
	}
	t.lrow = growI32(t.lrow, nTotal-t.nStruct)
	t.lsign = growF(t.lsign, nTotal-t.nStruct)
	t.artCols = growI(t.artCols, nArt)[:0]
	t.w = growF(t.w, m)
	t.y = growF(t.y, m)
	t.rhsv = growF(t.rhsv, m)
	t.perm = growI(t.perm, m)
	t.basis2 = growI(t.basis2, m)
	t.rowFree = growB(t.rowFree, m)
}

// build constructs the cold initial state for the base problem under the
// given structural bounds: structurals nonbasic at their lower bound, each
// row's slack basic when the residual r_i = b_i − Σ a_ij·lo_j has the
// feasible sign, an artificial column (coefficient sign(r_i)) basic at |r_i|
// otherwise. This is the native-sign analogue of warmTableau.build's row
// negation: where the dense build flips a row, this one gives the basic
// logical column a −1 coefficient, which the initial eta file absorbs.
func (t *sparseTableau) build(p *BoundedProblem, lower, upper []float64) {
	a := t.a
	m := a.m
	t.nStruct = a.n
	t.nSlack = a.nSlack

	// First pass: residuals and the artificial count. (rhsv is sized here
	// because grow can only run once the artificial count is known.)
	if cap(t.rhsv) < m {
		t.rhsv = make([]float64, m)
	}
	resid := t.rhsv[:m]
	for i := 0; i < m; i++ {
		r := a.rhs[i]
		for k := a.rowp[i]; k < a.rowp[i+1]; k++ {
			r -= a.rvals[k] * lower[a.cols[k]]
		}
		resid[i] = r
	}
	nArt := 0
	for i := 0; i < m; i++ {
		switch a.rel[i] {
		case LE:
			if resid[i] < 0 {
				nArt++
			}
		case GE:
			if resid[i] >= 0 {
				nArt++
			}
		case EQ:
			nArt++
		}
	}
	t.numArtificial = nArt
	t.nTotal = t.nStruct + t.nSlack + nArt
	t.grow(t.nTotal, nArt)
	t.maxIters = 20000 + 200*(m+t.nTotal)
	t.iters = 0
	t.updLimit = t.nStruct / 2
	if t.updLimit < 48 {
		t.updLimit = 48
	}
	if t.updLimitCfg > 0 {
		t.updLimit = t.updLimitCfg
	}
	t.nnzLimit = 16*m + 2*len(a.vals)

	copy(t.lower[:t.nStruct], lower)
	copy(t.upper[:t.nStruct], upper)
	for j := t.nStruct; j < t.nTotal; j++ {
		t.lower[j] = 0
		t.upper[j] = math.Inf(1)
	}
	for i := 0; i < m; i++ {
		if sc := a.slackCol[i]; sc >= 0 {
			t.lrow[sc-int32(t.nStruct)] = int32(i)
			t.lsign[sc-int32(t.nStruct)] = a.slackSign[i]
		}
	}

	t.etas = t.etas[:0]
	t.etaNNZ = 0
	t.resetArena()
	artCol := t.nStruct + t.nSlack
	for i := 0; i < m; i++ {
		r := resid[i]
		slackBasic := false
		switch a.rel[i] {
		case LE:
			slackBasic = r >= 0
		case GE:
			slackBasic = r < 0
		}
		if slackBasic {
			sc := int(a.slackCol[i])
			t.basis[i] = sc
			t.inBasis[sc] = true
			if a.slackSign[i] < 0 {
				t.val[i] = -r
				t.etas = append(t.etas, etaElem{r: int32(i), pv: -1})
			} else {
				t.val[i] = r
			}
			continue
		}
		sign := 1.0
		if r < 0 {
			sign = -1
		}
		t.lrow[artCol-t.nStruct] = int32(i)
		t.lsign[artCol-t.nStruct] = sign
		t.basis[i] = artCol
		t.inBasis[artCol] = true
		t.isArt[artCol] = true
		t.artCols = append(t.artCols, artCol)
		t.val[i] = sign * r
		if sign < 0 {
			t.etas = append(t.etas, etaElem{r: int32(i), pv: -1})
		}
		artCol++
	}
	t.baseEtas = len(t.etas)
}

// nonbasicValue is the value a nonbasic column currently sits at.
func (t *sparseTableau) nonbasicValue(j int) float64 {
	if t.atUpper[j] {
		return t.upper[j]
	}
	return t.lower[j]
}

// setPhase installs the phase costs (phase 1: Σ artificials; phase 2: the
// structural objective). Unlike the dense engine there is no objective row to
// eliminate — reduced costs are priced fresh each iteration.
func (t *sparseTableau) setPhase(phase1 bool, c []float64) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	if phase1 {
		for _, ac := range t.artCols {
			t.cost[ac] = 1
		}
	} else {
		copy(t.cost, c)
	}
}

// infeasibility is the phase-1 objective at the current point: artificials
// are the only costed columns and sit at zero when nonbasic, so the sum runs
// over basic artificial values.
func (t *sparseTableau) infeasibility() float64 {
	s := 0.0
	for r, bj := range t.basis {
		if t.isArt[bj] {
			s += t.val[r]
		}
	}
	return s
}

// colInto scatters column j of the augmented matrix [A | logicals] into the
// zeroed dense vector x.
func (t *sparseTableau) colInto(j int, x []float64) {
	if j < t.nStruct {
		a := t.a
		for k := a.colp[j]; k < a.colp[j+1]; k++ {
			x[a.rows[k]] = a.vals[k]
		}
		return
	}
	x[t.lrow[j-t.nStruct]] = t.lsign[j-t.nStruct]
}

// colAddScaled adds d · column j into x (used to accumulate bound deltas and
// the effective right-hand side).
func (t *sparseTableau) colAddScaled(j int, d float64, x []float64) {
	if j < t.nStruct {
		a := t.a
		for k := a.colp[j]; k < a.colp[j+1]; k++ {
			x[a.rows[k]] += a.vals[k] * d
		}
		return
	}
	x[t.lrow[j-t.nStruct]] += t.lsign[j-t.nStruct] * d
}

// colDot is yᵀ·A_j over column j's nonzeros.
func (t *sparseTableau) colDot(j int, y []float64) float64 {
	if j < t.nStruct {
		a := t.a
		s := 0.0
		for k := a.colp[j]; k < a.colp[j+1]; k++ {
			s += y[a.rows[k]] * a.vals[k]
		}
		return s
	}
	return t.lsign[j-t.nStruct] * y[t.lrow[j-t.nStruct]]
}

// ftran applies the eta file in order: x ← B⁻¹x. Each eta replays the column
// operations of one dense pivot (divide the pivot row, then subtract the
// entering column's multiples), restricted to the stored nonzeros — skipped
// rows are exactly the rows a dense pivot leaves untouched.
func (t *sparseTableau) ftran(x []float64) {
	for k := range t.etas {
		e := &t.etas[k]
		xr := x[e.r] / e.pv
		x[e.r] = xr
		//socllint:ignore floateq structural zero skip: subtracting v·0 never changes bits, so the sparse shortcut is exact
		if xr == 0 {
			continue
		}
		for _, en := range e.ent {
			x[en.i] -= en.v * xr
		}
	}
}

// btran applies the transposed eta file in reverse order: x ← (B⁻¹)ᵀx.
func (t *sparseTableau) btran(x []float64) {
	for k := len(t.etas) - 1; k >= 0; k-- {
		e := &t.etas[k]
		s := x[e.r]
		for _, en := range e.ent {
			s -= en.v * x[en.i]
		}
		x[e.r] = s / e.pv
	}
}

// appendEta records the pivot (row r, FTRANed column w) as a new eta. The
// off-pivot nonzeros land in entArena; a mid-eta reallocation is fine because
// append copies the whole arena, so the final [start:len] window still holds
// every entry of this eta.
func (t *sparseTableau) appendEta(r int, w []float64) {
	start := len(t.entArena)
	for i := range w {
		//socllint:ignore floateq collecting exact nonzeros of the FTRANed column; near-zeros must be kept to stay bitwise-faithful to dense pivoting
		if w[i] != 0 && i != r {
			t.entArena = append(t.entArena, etaEntry{i: int32(i), v: w[i]})
		}
	}
	var ent []etaEntry
	if nnz := len(t.entArena) - start; nnz > 0 {
		ent = t.entArena[start:len(t.entArena):len(t.entArena)]
		t.etaNNZ += nnz
	}
	t.etas = append(t.etas, etaElem{r: int32(r), pv: w[r], ent: ent})
}

// resetArena clears the eta-entry arena for a fresh factorization, abandoning
// the backing array when snapshot/restore headers still reference it.
func (t *sparseTableau) resetArena() {
	if t.arenaShared {
		t.entArena = nil
		t.arenaShared = false
		return
	}
	t.entArena = t.entArena[:0]
}

// iterate runs revised-simplex pivots until optimality, unboundedness, or the
// iteration cap — warmTableau.iterate with BTRAN pricing and FTRAN columns.
func (t *sparseTableau) iterate() Status {
	m := t.m()
	blandAfter := t.maxIters / 2
	for ; t.iters < t.maxIters; t.iters++ {
		// y = (B⁻¹)ᵀ c_B: one BTRAN of the basic costs.
		y := t.y
		anyCost := false
		for r := 0; r < m; r++ {
			c := t.cost[t.basis[r]]
			y[r] = c
			//socllint:ignore floateq cost entries are exact copies of the phase objective; zero means "not costed"
			if c != 0 {
				anyCost = true
			}
		}
		if anyCost {
			t.btran(y)
		}

		enter, dir := -1, 1.0
		if t.iters < blandAfter {
			best := eps
			for j := 0; j < t.nTotal; j++ {
				if t.isArt[j] || t.inBasis[j] {
					continue
				}
				d := t.cost[j]
				if anyCost {
					d -= t.colDot(j, y)
				}
				if !t.atUpper[j] && -d > best {
					best, enter, dir = -d, j, 1
				} else if t.atUpper[j] && d > best {
					best, enter, dir = d, j, -1
				}
			}
		} else { // Bland
			for j := 0; j < t.nTotal; j++ {
				if t.isArt[j] || t.inBasis[j] {
					continue
				}
				d := t.cost[j]
				if anyCost {
					d -= t.colDot(j, y)
				}
				if !t.atUpper[j] && d < -eps {
					enter, dir = j, 1
					break
				}
				if t.atUpper[j] && d > eps {
					enter, dir = j, -1
					break
				}
			}
		}
		if enter == -1 {
			return Optimal
		}

		// w = B⁻¹A_enter: the entering column in the current basis.
		w := t.w
		for r := 0; r < m; r++ {
			w[r] = 0
		}
		t.colInto(enter, w)
		t.ftran(w)

		limit := t.upper[enter] - t.lower[enter]
		leave, leaveToUpper := -1, false
		for r := 0; r < m; r++ {
			a := dir * w[r]
			switch {
			case a > eps: // basic decreases toward its lower bound
				if ratio := (t.val[r] - t.lower[t.basis[r]]) / a; ratio < limit-eps {
					limit, leave, leaveToUpper = ratio, r, false
				} else if ratio <= limit+eps && leave != -1 && !leaveToUpper &&
					t.basis[r] < t.basis[leave] {
					leave = r // Bland-style tie-break for anti-cycling
				}
			case a < -eps: // basic increases toward its upper bound
				ub := t.upper[t.basis[r]]
				if math.IsInf(ub, 1) {
					continue
				}
				if ratio := (ub - t.val[r]) / (-a); ratio < limit-eps {
					limit, leave, leaveToUpper = ratio, r, true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}
		if leave == -1 {
			t.boundFlip(enter, dir, w)
			continue
		}
		if math.Abs(w[leave]) < driftPivTol && len(t.etas) > t.baseEtas {
			// Drift guard: a tiny pivot at the end of a long eta chain is more
			// likely accumulated rounding than a true near-singular step.
			// Refactorize and re-derive the whole iteration.
			if !t.refactorize() {
				return IterLimit
			}
			continue
		}
		t.moveAndPivot(enter, dir, limit, leave, leaveToUpper, w)
		if len(t.etas)-t.baseEtas >= t.updLimit || t.etaNNZ > t.nnzLimit {
			if !t.refactorize() {
				return IterLimit
			}
		}
	}
	return IterLimit
}

// boundFlip moves nonbasic variable j across its whole interval; w is the
// FTRANed column of j.
func (t *sparseTableau) boundFlip(j int, dir float64, w []float64) {
	dist := t.upper[j] - t.lower[j]
	for r := 0; r < t.m(); r++ {
		//socllint:ignore floateq structural zero skip: subtracting dir·dist·0 never changes bits
		if w[r] != 0 {
			t.val[r] -= dir * dist * w[r]
		}
	}
	t.atUpper[j] = dir > 0
}

// moveAndPivot advances the entering variable by dist, retires the leaving
// basic variable at the bound it hit, and appends the pivot eta.
func (t *sparseTableau) moveAndPivot(enter int, dir, dist float64, leave int, leaveToUpper bool, w []float64) {
	for r := 0; r < t.m(); r++ {
		//socllint:ignore floateq structural zero skip: subtracting dir·dist·0 never changes bits
		if w[r] != 0 {
			t.val[r] -= dir * dist * w[r]
		}
	}
	enterVal := t.lower[enter] + dist
	if dir < 0 {
		enterVal = t.upper[enter] - dist
	}
	leavingCol := t.basis[leave]
	t.inBasis[leavingCol] = false
	t.atUpper[leavingCol] = leaveToUpper
	t.atUpper[enter] = false
	t.basis[leave] = enter
	t.inBasis[enter] = true
	t.val[leave] = enterVal
	t.appendEta(leave, w)
}

// driveOutArtificials pivots zero-valued basic artificials out after phase 1.
// The tableau row needed to pick a pivot column is priced as ρ = (B⁻¹)ᵀe_r,
// then ρᵀA_j per candidate — the revised analogue of scanning the dense row.
// Nonbasic-at-upper columns are eligible (degenerate pivot entering from the
// upper bound), and artificial upper bounds are clamped to zero afterwards so
// a still-basic artificial on a redundant row can never leave zero in
// phase 2 — same discipline, and the same candidate scan order, as the dense
// engines, keeping the pivot sequences bitwise aligned.
func (t *sparseTableau) driveOutArtificials() {
	m := t.m()
	for r := 0; r < m; r++ {
		if !t.isArt[t.basis[r]] {
			continue
		}
		rho := t.y
		for i := 0; i < m; i++ {
			rho[i] = 0
		}
		rho[r] = 1
		t.btran(rho)
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if t.inBasis[j] {
				continue
			}
			if math.Abs(t.colDot(j, rho)) > 1e-7 {
				dir := 1.0
				if t.atUpper[j] {
					dir = -1
				}
				w := t.w
				for i := 0; i < m; i++ {
					w[i] = 0
				}
				t.colInto(j, w)
				t.ftran(w)
				t.moveAndPivot(j, dir, 0, r, false, w)
				break
			}
		}
	}
	for _, a := range t.artCols {
		t.upper[a] = 0
	}
}

// refactorize rebuilds the eta file for the current basis from the original
// columns: one eta per basis column, columns processed in ascending nnz order
// (logical columns first — each costs at most one trivial eta). The pivot row
// for each eta is chosen freely among the rows no earlier eta pivoted on —
// largest magnitude, lowest row index on ties — because the basis can be
// nonsingular while a fixed column→row pivot assignment hits an exact zero:
// a permutation block between two basic columns is the minimal example, and
// simplex pivot sequences do produce those. Columns whose best available
// pivot is numerically tiny are deferred to later elimination rounds; a round
// that defers everything retries once accepting any nonzero pivot before
// declaring the basis singular. The slot→row assignment is then re-derived
// from the pivots actually taken — the basis as a set is unchanged; which
// tableau row carries which basic variable is bookkeeping the factorization
// owns — and the basic values are refreshed from the fresh factorization,
// which is the drift correction. Returns false only when the basis is
// numerically singular.
func (t *sparseTableau) refactorize() bool {
	m := t.m()
	t.etas = t.etas[:0]
	t.etaNNZ = 0
	t.resetArena()
	t.refactors++

	order := t.perm[:0]
	for r := 0; r < m; r++ {
		order = append(order, r)
	}
	colNNZ := func(j int) int {
		if j < t.nStruct {
			return int(t.a.colp[j+1] - t.a.colp[j])
		}
		return 1
	}
	sort.SliceStable(order, func(x, y int) bool {
		nx, ny := colNNZ(t.basis[order[x]]), colNNZ(t.basis[order[y]])
		if nx != ny {
			return nx < ny
		}
		return order[x] < order[y]
	})

	newBasis := t.basis2[:m]
	rowFree := t.rowFree[:m]
	for r := 0; r < m; r++ {
		rowFree[r] = true
		newBasis[r] = -1
	}

	pending := order
	var deferred []int
	forced := false
	for len(pending) > 0 {
		progressed := false
		deferred = deferred[:0]
		for _, s := range pending {
			col := t.basis[s]
			w := t.w
			for i := 0; i < m; i++ {
				w[i] = 0
			}
			t.colInto(col, w)
			t.ftran(w)
			piv, best := -1, 0.0
			for r := 0; r < m; r++ {
				if !rowFree[r] {
					continue
				}
				if a := math.Abs(w[r]); a > best {
					piv, best = r, a
				}
			}
			if best < refactorPivTol && !(forced && piv >= 0) {
				deferred = append(deferred, s)
				continue
			}
			t.appendEta(piv, w)
			rowFree[piv] = false
			newBasis[piv] = col
			progressed = true
		}
		if !progressed {
			if forced {
				return false // no remaining column has a nonzero pivot anywhere: singular
			}
			forced = true
		} else {
			forced = false
		}
		pending = append(pending[:0], deferred...)
	}
	copy(t.basis, newBasis)
	t.baseEtas = len(t.etas)
	t.etaNNZ = 0
	t.recomputeVal()
	return true
}

// recomputeVal refreshes the basic values from the factorization:
// x_B = B⁻¹(b − Σ_{nonbasic j} A_j·x_j).
func (t *sparseTableau) recomputeVal() {
	m := t.m()
	b := t.rhsv
	for i := 0; i < m; i++ {
		b[i] = t.a.rhs[i]
	}
	for j := 0; j < t.nTotal; j++ {
		if t.inBasis[j] {
			continue
		}
		v := t.nonbasicValue(j)
		//socllint:ignore floateq nonbasic value at exactly zero contributes nothing; a tolerance would drop real contributions
		if v != 0 && !math.IsInf(v, 1) {
			t.colAddScaled(j, -v, b)
		}
	}
	t.ftran(b)
	copy(t.val, b)
}

// residualNorm is ‖row residuals‖∞ at the tableau's current point — every
// constraint row re-evaluated against the basic values and nonbasic bound
// positions using the original matrix (no factorization involved), i.e. the
// B·x_B = b̃ consistency check in row form. invariant.CheckWarmFactorization
// gates on it under -tags soclinvariants.
func (t *sparseTableau) residualNorm() float64 {
	m := t.m()
	res := t.rhsv
	for i := 0; i < m; i++ {
		res[i] = t.a.rhs[i]
	}
	for j := 0; j < t.nTotal; j++ {
		var v float64
		if t.inBasis[j] {
			continue
		}
		v = t.nonbasicValue(j)
		//socllint:ignore floateq exact-zero skip mirrors recomputeVal
		if v != 0 && !math.IsInf(v, 1) {
			t.colAddScaled(j, -v, res)
		}
	}
	for r, bj := range t.basis {
		//socllint:ignore floateq exact-zero skip: subtracting val·0 never changes the residual bits
		if t.val[r] != 0 {
			t.colAddScaled(bj, -t.val[r], res)
		}
	}
	norm := 0.0
	for i := 0; i < m; i++ {
		if a := math.Abs(res[i]); a > norm {
			norm = a
		}
	}
	return norm
}

// copyFrom deep-copies src's state into t, reusing t's storage. The cscMatrix
// and eta entry slices are shared — both are immutable once built.
func (t *sparseTableau) copyFrom(src *sparseTableau) {
	t.a = src.a
	t.nStruct, t.nSlack = src.nStruct, src.nSlack
	t.numArtificial, t.nTotal = src.numArtificial, src.nTotal
	t.grow(src.nTotal, src.numArtificial)
	copy(t.val, src.val)
	copy(t.basis, src.basis)
	copy(t.lower, src.lower)
	copy(t.upper, src.upper)
	copy(t.cost, src.cost)
	copy(t.inBasis, src.inBasis)
	copy(t.atUpper, src.atUpper)
	copy(t.isArt, src.isArt)
	copy(t.lrow, src.lrow)
	copy(t.lsign, src.lsign)
	t.artCols = append(t.artCols[:0], src.artCols...)
	t.etas = append(t.etas[:0], src.etas...)
	src.arenaShared = true
	t.baseEtas, t.etaNNZ = src.baseEtas, src.etaNNZ
	t.iters, t.maxIters = src.iters, src.maxIters
	t.updLimit, t.updLimitCfg = src.updLimit, src.updLimitCfg
	t.nnzLimit = src.nnzLimit
	t.refactors = src.refactors
}

// --- WarmSolver sparse path ---

// solveSparseWithBounds is SolveWithBounds' sparse branch: warm resume when
// the previous Optimal basis survives the bound change, cold two-phase solve
// otherwise. Control flow mirrors the dense branch exactly.
func (w *WarmSolver) solveSparseWithBounds(lower, upper []float64) (Solution, error) {
	if w.ready {
		w.sp.iters = 0
		resumed := w.warmApplySparse(lower, upper)
		if resumed {
			w.Stats.Warm++
		} else if w.sp.dualResume() {
			// Bound tightening broke primal feasibility but dual pivots
			// repaired it on the existing factorization.
			resumed = true
			w.Stats.Dual++
		}
		if resumed {
			st := w.sp.iterate()
			if st == Optimal {
				return w.extractSparse(), nil
			}
			// Unbounded can legitimately appear when bounds were relaxed;
			// IterLimit means the resumed basis cycled. Either way the tableau
			// is no longer a usable warm source.
			w.ready = false
			return Solution{Status: st, Iters: w.sp.iters}, nil
		}
	}
	w.ready = false
	w.Stats.Cold++
	return w.coldSolveSparse(lower, upper)
}

// warmApplySparse moves the tableau to (lower, upper): nonbasic columns shift
// to their new bound values, with the basic-value correction applied as one
// FTRAN of the accumulated column deltas (the dense engine applies each
// column's delta separately; the batched form is the same linear map). It
// reports whether the basis is still primal feasible.
func (w *WarmSolver) warmApplySparse(lower, upper []float64) bool {
	t := &w.sp
	m := t.m()
	acc := t.rhsv
	for r := 0; r < m; r++ {
		acc[r] = 0
	}
	any := false
	for j := 0; j < t.nStruct; j++ {
		nl, nu := lower[j], upper[j]
		ol, ou := t.lower[j], t.upper[j]
		//socllint:ignore floateq bound values are copied verbatim between nodes; unchanged bounds compare bitwise equal
		if nl == ol && nu == ou {
			continue
		}
		if !t.inBasis[j] {
			oldv, newv := ol, nl
			if t.atUpper[j] {
				oldv = ou
				if math.IsInf(nu, 1) {
					t.atUpper[j] = false // upper bound vanished; park at lower
					newv = nl
				} else {
					newv = nu
				}
			}
			//socllint:ignore floateq structural zero delta: the bound value was copied, not computed; only a literal move needs the RHS update
			if d := newv - oldv; d != 0 {
				any = true
				t.colAddScaled(j, d, acc)
			}
		}
		t.lower[j], t.upper[j] = nl, nu
	}
	if any {
		t.ftran(acc)
		for r := 0; r < m; r++ {
			//socllint:ignore floateq structural zero skip: subtracting 0 never changes bits
			if acc[r] != 0 {
				t.val[r] -= acc[r]
			}
		}
	}
	for r := 0; r < m; r++ {
		bj := t.basis[r]
		if t.val[r] < t.lower[bj]-warmFeasTol {
			return false
		}
		if up := t.upper[bj]; !math.IsInf(up, 1) && t.val[r] > up+warmFeasTol {
			return false
		}
		// A basic artificial pushed off zero means the rows themselves became
		// inconsistent under the new bounds; only phase 1 can decide that.
		if t.isArt[bj] && t.val[r] > warmFeasTol {
			return false
		}
	}
	return true
}

// dualResume is warmTableau.dualResume on the revised simplex: after a bound
// change broke primal feasibility, drive each violated basic variable to its
// bound with dual pivots instead of rebuilding. Candidate pivots are priced
// from ρ = (B⁻¹)ᵀe_r (the revised analogue of reading dense row r) and the
// reduced costs from one BTRAN of the basic costs; the pivot distance, though,
// is taken from the FTRANed entering column, whose entries replay the dense
// engine's row arithmetic bit for bit — so when both engines choose the same
// pivot the updated basic values stay bitwise identical. Reports whether
// primal feasibility was restored; false sends the caller to a cold start.
func (t *sparseTableau) dualResume() bool {
	m := t.m()
	maxSteps := 4 * (m + t.nTotal)
	for steps := 0; steps < maxSteps; steps++ {
		// Leaving row: the most-violated basic variable, lowest row on ties.
		r, below := -1, false
		worst := warmFeasTol
		for i := 0; i < m; i++ {
			bj := t.basis[i]
			if d := t.lower[bj] - t.val[i]; d > worst {
				worst, r, below = d, i, true
			}
			if up := t.upper[bj]; !math.IsInf(up, 1) {
				if d := t.val[i] - up; d > worst {
					worst, r, below = d, i, false
				}
			}
		}
		if r == -1 {
			return true
		}
		// y = (B⁻¹)ᵀc_B for reduced costs, ρ = (B⁻¹)ᵀe_r for the pivot row.
		y := t.y
		anyCost := false
		for i := 0; i < m; i++ {
			c := t.cost[t.basis[i]]
			y[i] = c
			//socllint:ignore floateq cost entries are exact copies of the phase objective; zero means "not costed"
			if c != 0 {
				anyCost = true
			}
		}
		if anyCost {
			t.btran(y)
		}
		rho := t.rhsv
		for i := 0; i < m; i++ {
			rho[i] = 0
		}
		rho[r] = 1
		t.btran(rho)

		enter, dir, bestRatio := -1, 1.0, math.Inf(1)
		for j := 0; j < t.nTotal; j++ {
			if t.isArt[j] || t.inBasis[j] || !(t.upper[j] > t.lower[j]) {
				continue
			}
			d := 1.0
			if t.atUpper[j] {
				d = -1
			}
			// val[r] changes by −a per unit of entering movement.
			a := d * t.colDot(j, rho)
			if below {
				if a >= -eps { // need val[r] to increase
					continue
				}
			} else if a <= eps { // need val[r] to decrease
				continue
			}
			rc := t.cost[j]
			if anyCost {
				rc -= t.colDot(j, y)
			}
			rc *= d
			if rc < 0 {
				// Slightly dual-infeasible columns price as ratio zero; the
				// primal cleanup pass restores optimality afterwards.
				rc = 0
			}
			if ratio := rc / math.Abs(a); ratio < bestRatio {
				bestRatio, enter, dir = ratio, j, d
			}
		}
		if enter == -1 {
			return false // no usable pivot; the cold start decides feasibility
		}

		// w = B⁻¹A_enter: the pivot distance and the eta both come from the
		// FTRANed column, matching the dense engine's arithmetic exactly.
		w := t.w
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		t.colInto(enter, w)
		t.ftran(w)
		if math.Abs(w[r]) < driftPivTol && len(t.etas) > t.baseEtas {
			// Same drift guard as the primal loop: refactorize and re-derive
			// the whole step rather than pivot on accumulated rounding.
			if !t.refactorize() {
				return false
			}
			continue
		}
		a := dir * w[r]
		if below {
			if a >= -eps {
				return false // ρ-estimate and true pivot disagree on the sign
			}
		} else if a <= eps {
			return false
		}
		need := worst / math.Abs(a)
		if lim := t.upper[enter] - t.lower[enter]; need >= lim {
			// The entering column exhausts its own interval before the
			// violation closes: a bound flip makes partial progress.
			t.boundFlip(enter, dir, w)
			t.iters++
			continue
		}
		t.moveAndPivot(enter, dir, need, r, !below, w)
		t.iters++
		if len(t.etas)-t.baseEtas >= t.updLimit || t.etaNNZ > t.nnzLimit {
			if !t.refactorize() {
				return false
			}
		}
	}
	return false
}

// coldSolveSparse rebuilds the tableau from scratch under the given bounds
// (two phases), reusing storage from previous solves.
func (w *WarmSolver) coldSolveSparse(lower, upper []float64) (Solution, error) {
	t := &w.sp
	t.build(w.base, lower, upper)
	if t.numArtificial > 0 {
		t.setPhase(true, nil)
		st := t.iterate()
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: t.iters}, nil
		}
		if t.infeasibility() > warmFeasTol {
			return Solution{Status: Infeasible, Iters: t.iters}, nil
		}
		t.driveOutArtificials()
	}
	t.setPhase(false, w.base.Objective)
	switch t.iterate() {
	case Unbounded:
		return Solution{Status: Unbounded, Iters: t.iters}, nil
	case IterLimit:
		return Solution{Status: IterLimit, Iters: t.iters}, nil
	}
	return w.extractSparse(), nil
}

// extractSparse reads the structural solution off an Optimal tableau and
// marks the solver warm-ready; the objective is recomputed from x so warm
// chains cannot drift (same discipline as the dense extractSolution).
func (w *WarmSolver) extractSparse() Solution {
	t := &w.sp
	x := make([]float64, w.base.NumVars)
	for j := range x {
		if t.atUpper[j] && !t.inBasis[j] {
			x[j] = t.upper[j]
		} else {
			x[j] = t.lower[j]
		}
	}
	for r, bj := range t.basis {
		if bj < len(x) {
			x[bj] = t.val[r]
		}
	}
	canonZeros(x)
	obj := 0.0
	for j, c := range w.base.Objective {
		obj += c * x[j]
	}
	w.ready = true
	return Solution{Status: Optimal, X: x, Objective: obj, Iters: t.iters}
}

// FactorizationResidual reports the ∞-norm of the constraint-row residuals at
// the solver's current basis point (B·x_B = b̃ rearranged into row form), and
// whether the solver holds a point to check. It is the factorization
// consistency probe behind invariant.CheckWarmFactorization; it is also valid
// for the dense engine, where it checks the maintained basic values instead.
func (w *WarmSolver) FactorizationResidual() (float64, bool) {
	if !w.ready {
		return 0, false
	}
	if !w.dense {
		return w.sp.residualNorm(), true
	}
	return w.denseResidualNorm(), true
}

// Refactorizations reports how many mid-solve eta-file rebuilds the sparse
// engine has performed (always 0 for the dense engine); regression tests use
// it to pin that the refactorization path is actually exercised.
func (w *WarmSolver) Refactorizations() int {
	if w.dense {
		return 0
	}
	return w.sp.refactors
}

// denseResidualNorm is the dense-engine counterpart of residualNorm: the
// structural point implied by the tableau (basic values + nonbasic bound
// positions) is checked against every original constraint row, measuring
// inequality rows by their violation and equality rows by |Ax−b|.
func (w *WarmSolver) denseResidualNorm() float64 {
	t := &w.t
	x := make([]float64, t.nStruct)
	for j := 0; j < t.nStruct; j++ {
		if t.atUpper[j] && !t.inBasis[j] {
			x[j] = t.upper[j]
		} else {
			x[j] = t.lower[j]
		}
	}
	for r, bj := range t.basis {
		if bj < t.nStruct {
			x[bj] = t.val[r]
		}
	}
	norm := 0.0
	for _, c := range w.base.Constraints {
		s := -c.RHS
		for j, v := range c.Coeffs {
			s += v * x[j]
		}
		switch c.Rel {
		case LE:
			if s > norm {
				norm = s
			}
		case GE:
			if -s > norm {
				norm = -s
			}
		default:
			if a := math.Abs(s); a > norm {
				norm = a
			}
		}
	}
	return norm
}
