package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// newSparseDensePair builds one WarmSolver per engine over the same base
// problem. Every differential test in this file drives the pair in lockstep.
func newSparseDensePair(t *testing.T, p *BoundedProblem) (sparse, dense *WarmSolver) {
	t.Helper()
	sp, err := NewWarmSolverCfg(p, WarmConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewWarmSolverCfg(p, WarmConfig{Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	return sp, ds
}

// The warm-solver fixtures are small dyadic problems where both engines visit
// the same vertices, so the solutions are required to match bitwise — the
// differential contract ISSUE 9 pins.
func TestSparseMatchesDenseBitwiseOnFixtures(t *testing.T) {
	cases := []struct {
		name  string
		build func() *BoundedProblem
	}{
		{"simple-box", func() *BoundedProblem {
			p := NewBoundedProblem(2)
			p.SetObjective(0, -1)
			p.SetObjective(1, -2)
			p.SetBounds(0, 0, 3)
			p.SetBounds(1, 0, 2)
			p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
			return p
		}},
		{"pure-bound-flip", func() *BoundedProblem {
			p := NewBoundedProblem(1)
			p.SetObjective(0, -1)
			p.SetBounds(0, 0, 5)
			p.AddConstraint(map[int]float64{0: 1}, LE, 100)
			return p
		}},
		{"nonzero-lower", func() *BoundedProblem {
			p := NewBoundedProblem(2)
			p.SetObjective(0, 1)
			p.SetObjective(1, 1)
			p.SetBounds(0, 2, math.Inf(1))
			p.SetBounds(1, 1, 3)
			p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 5)
			return p
		}},
		{"infeasible", func() *BoundedProblem {
			p := NewBoundedProblem(1)
			p.SetObjective(0, 1)
			p.SetBounds(0, 0, 1)
			p.AddConstraint(map[int]float64{0: 1}, GE, 2)
			return p
		}},
		{"unbounded", func() *BoundedProblem {
			p := NewBoundedProblem(1)
			p.SetObjective(0, -1)
			p.AddConstraint(map[int]float64{0: 1}, GE, 0)
			return p
		}},
		{"knapsack", knapsackBase},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			sp, ds := newSparseDensePair(t, p)
			lower, upper := cloneBounds(p)
			a, err := sp.SolveWithBounds(lower, upper)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ds.SolveWithBounds(lower, upper)
			if err != nil {
				t.Fatal(err)
			}
			if a.Status != b.Status {
				t.Fatalf("status sparse=%v dense=%v", a.Status, b.Status)
			}
			if a.Status != Optimal {
				return
			}
			if a.Objective != b.Objective {
				t.Fatalf("objective sparse=%v dense=%v", a.Objective, b.Objective)
			}
			for j := range a.X {
				if a.X[j] != b.X[j] {
					t.Fatalf("x[%d] sparse=%v dense=%v", j, a.X[j], b.X[j])
				}
			}
		})
	}
}

// The warm branching chain from the dense tests, replayed on both engines in
// lockstep: statuses bitwise, objectives bitwise on this dyadic fixture, and
// the sparse engine must actually take warm resumes.
func TestSparseMatchesDenseOnKnapsackChain(t *testing.T) {
	p := knapsackBase()
	sp, ds := newSparseDensePair(t, p)
	steps := [][2][]float64{
		{{0, 0, 0}, {1, 1, 1}},
		{{0, 0, 0}, {1, 0, 1}},
		{{0, 1, 0}, {1, 1, 1}},
		{{0, 1, 0}, {0, 1, 1}},
		{{1, 1, 0}, {1, 1, 1}},
		{{0, 0, 0}, {1, 1, 0}},
		{{0, 0, 1}, {1, 1, 1}},
	}
	for i, st := range steps {
		a, err := sp.SolveWithBounds(append([]float64(nil), st[0]...), append([]float64(nil), st[1]...))
		if err != nil {
			t.Fatalf("step %d sparse: %v", i, err)
		}
		b, err := ds.SolveWithBounds(append([]float64(nil), st[0]...), append([]float64(nil), st[1]...))
		if err != nil {
			t.Fatalf("step %d dense: %v", i, err)
		}
		if a.Status != b.Status {
			t.Fatalf("step %d: status sparse=%v dense=%v", i, a.Status, b.Status)
		}
		if a.Status == Optimal && a.Objective != b.Objective {
			t.Fatalf("step %d: objective sparse=%v dense=%v", i, a.Objective, b.Objective)
		}
	}
	if sp.Stats.Warm == 0 {
		t.Fatalf("sparse chain never took the warm path: %+v", sp.Stats)
	}
}

// Property test: random bounded LPs under random branching-style bound moves,
// sparse vs dense in lockstep. Statuses must agree exactly; objectives within
// 1e-8 (the engines price reduced costs through different linear maps, so
// degenerate ties can resolve to different optimal vertices).
func TestSparseMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(4)
		p := NewBoundedProblem(n)
		baseLo := make([]float64, n)
		baseUp := make([]float64, n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, math.Round((r.Float64()*10-5)*4)/4)
			baseLo[j] = math.Round(r.Float64()*2*4) / 4
			baseUp[j] = baseLo[j] + math.Round((0.5+r.Float64()*4)*4)/4
			p.SetBounds(j, baseLo[j], baseUp[j])
		}
		rows := 1 + r.Intn(3)
		for i := 0; i < rows; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round((r.Float64()*4-2)*4) / 4
			}
			rel := []Rel{LE, GE, EQ}[r.Intn(3)]
			rhs := math.Round((r.Float64()*20-5)*4) / 4
			p.AddConstraint(coeffs, rel, rhs)
		}
		sp, err := NewWarmSolverCfg(p, WarmConfig{})
		if err != nil {
			return false
		}
		ds, err := NewWarmSolverCfg(p, WarmConfig{Dense: true})
		if err != nil {
			return false
		}
		for step := 0; step < 6; step++ {
			lower := append([]float64(nil), baseLo...)
			upper := append([]float64(nil), baseUp...)
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					continue
				}
				mid := baseLo[j] + math.Round(r.Float64()*(baseUp[j]-baseLo[j])*4)/4
				if r.Intn(2) == 0 {
					lower[j] = mid
				} else {
					upper[j] = mid
				}
			}
			a, err := sp.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...))
			if err != nil {
				return false
			}
			b, err := ds.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...))
			if err != nil {
				return false
			}
			if a.Status != b.Status {
				return false
			}
			if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Beale's classic cycling example: under the plain Dantzig rule with naive
// tie-breaking the simplex method cycles forever on this LP. The engines'
// anti-cycling defenses (basis-index ratio tie-break, Bland fallback) must
// terminate it at the known optimum on both engines.
func TestSparseDegenerateCyclingFixture(t *testing.T) {
	p := NewBoundedProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	for j := 0; j < 4; j++ {
		p.SetBounds(j, 0, math.Inf(1))
	}
	p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, LE, 0)
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)

	sp, ds := newSparseDensePair(t, p)
	lower, upper := cloneBounds(p)
	a, err := sp.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ds.SolveWithBounds(lower, upper)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != Optimal || b.Status != Optimal {
		t.Fatalf("status sparse=%v dense=%v, want optimal", a.Status, b.Status)
	}
	// Known optimum: x = (1/25·... ) with objective −1/20.
	if math.Abs(a.Objective-(-0.05)) > 1e-9 || math.Abs(b.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective sparse=%v dense=%v, want -0.05", a.Objective, b.Objective)
	}
}

// Regression: an equality row that forces a variable exactly to its upper
// bound can end phase 1 with the artificial still basic at zero while the
// only structural column in its row is nonbasic-at-upper. driveOutArtificials
// used to skip at-upper columns, and an unpinned artificial (upper = +Inf)
// could then re-grow during phase 2, silently breaking the equality: the
// solve reported x0 = 0, objective -4.75, as "optimal". All three engines
// (standalone SolveBounded, warm dense, warm sparse) shared the bug.
func TestArtificialPinnedAfterPhase1(t *testing.T) {
	build := func() *BoundedProblem {
		p := NewBoundedProblem(2)
		p.SetObjective(0, 2.25)
		p.SetObjective(1, -1)
		p.SetBounds(0, 0, 2.25)
		p.SetBounds(1, 0.25, 4.75)
		p.AddConstraint(map[int]float64{0: -0.25, 1: 1.25}, LE, 10)
		p.AddConstraint(map[int]float64{0: -2}, EQ, -4.5) // forces x0 = 2.25 = upper
		return p
	}
	check := func(name string, s Solution, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Status != Optimal {
			t.Fatalf("%s: status = %v, want optimal", name, s.Status)
		}
		if math.Abs(s.X[0]-2.25) > 1e-9 || math.Abs(s.X[1]-4.75) > 1e-9 {
			t.Fatalf("%s: x = %v, want [2.25 4.75]", name, s.X)
		}
		if math.Abs(s.Objective-0.3125) > 1e-9 {
			t.Fatalf("%s: objective = %v, want 0.3125", name, s.Objective)
		}
	}
	p := build()
	st, err := SolveBounded(p)
	check("standalone", st, err)
	sp, ds := newSparseDensePair(t, p)
	lower, upper := cloneBounds(p)
	a, err := sp.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...))
	check("sparse", a, err)
	b, err := ds.SolveWithBounds(lower, upper)
	check("dense", b, err)
	for j := range a.X {
		if math.Float64bits(a.X[j]) != math.Float64bits(b.X[j]) {
			t.Fatalf("sparse/dense mismatch at %d: %v vs %v", j, a.X[j], b.X[j])
		}
	}
}

// An EQ-only system starts phase 1 with every row carrying an artificial (no
// slack can be basic). Both engines must drive all artificials out and agree.
func TestSparseAllArtificialPhase1(t *testing.T) {
	// A 2×3 transportation problem: all five rows are equalities.
	p := NewBoundedProblem(6) // x[ij] = amount from supply i to demand j
	cost := []float64{4, 6, 9, 5, 3, 8}
	for j, c := range cost {
		p.SetObjective(j, c)
		p.SetBounds(j, 0, math.Inf(1))
	}
	p.AddConstraint(map[int]float64{0: 1, 1: 1, 2: 1}, EQ, 10) // supply 0
	p.AddConstraint(map[int]float64{3: 1, 4: 1, 5: 1}, EQ, 15) // supply 1
	p.AddConstraint(map[int]float64{0: 1, 3: 1}, EQ, 7)        // demand 0
	p.AddConstraint(map[int]float64{1: 1, 4: 1}, EQ, 8)        // demand 1
	p.AddConstraint(map[int]float64{2: 1, 5: 1}, EQ, 10)       // demand 2

	sp, ds := newSparseDensePair(t, p)
	lower, upper := cloneBounds(p)
	a, err := sp.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ds.SolveWithBounds(lower, upper)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != Optimal || b.Status != Optimal {
		t.Fatalf("status sparse=%v dense=%v", a.Status, b.Status)
	}
	if math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("objective sparse=%v dense=%v", a.Objective, b.Objective)
	}
	if sp.sp.numArtificial != len(p.Constraints) {
		t.Fatalf("numArtificial = %d, want %d (every EQ row)", sp.sp.numArtificial, len(p.Constraints))
	}
}

// WarmConfig.UpdateLimit=1 makes every pivot trigger the eta-update
// refactorization threshold; the solves must still match the cold reference
// and the refactorization counter must actually advance (the threshold path
// is live, and mid-solve rebuilds do not corrupt state).
func TestSparseForcedRefactorization(t *testing.T) {
	p := knapsackBase()
	sp, err := NewWarmSolverCfg(p, WarmConfig{UpdateLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := cloneBounds(p)
	if _, err := sp.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...)); err != nil {
		t.Fatal(err)
	}
	steps := [][2][]float64{
		{{0, 0, 0}, {1, 0, 1}},
		{{0, 1, 0}, {1, 1, 1}},
		{{0, 0, 1}, {1, 1, 1}},
		{{0, 0, 0}, {1, 1, 1}},
	}
	for i, st := range steps {
		got, err := sp.SolveWithBounds(append([]float64(nil), st[0]...), append([]float64(nil), st[1]...))
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		checkAgainstReference(t, p, got, st[0], st[1])
	}
	if sp.Refactorizations() == 0 {
		t.Fatal("updLimit=1 never triggered a refactorization")
	}
}

// Regression for the permutation-block basis: the slot→row assignment the
// simplex pivots leave behind can have exactly-zero diagonal pivots even
// though the basis is nonsingular (two basic columns whose eliminated forms
// swap rows). refactorize must re-derive the assignment rather than declare
// the basis singular. Swapping two slots by hand is a legal disguise of the
// same basis set, so the rebuilt factorization must still be consistent.
func TestSparseRefactorizePermutedSlots(t *testing.T) {
	p := knapsackBase()
	sp, err := NewWarmSolverCfg(p, WarmConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := cloneBounds(p)
	want, err := sp.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...))
	if err != nil {
		t.Fatal(err)
	}
	tb := &sp.sp
	if tb.m() < 1 {
		t.Fatal("fixture has no rows")
	}
	if !tb.refactorize() {
		t.Fatal("refactorize reported a singular basis on an optimal tableau")
	}
	if res := tb.residualNorm(); res > 1e-9 {
		t.Fatalf("residual %v after refactorization", res)
	}
	got := sp.extractSparse()
	if got.Objective != want.Objective {
		t.Fatalf("objective drifted across refactorization: %v vs %v", got.Objective, want.Objective)
	}
	for j := range got.X {
		if got.X[j] != want.X[j] {
			t.Fatalf("x[%d] drifted across refactorization: %v vs %v", j, got.X[j], want.X[j])
		}
	}
}

// Snapshot must round-trip the factorization state bitwise: a restored solver
// is field-for-field identical to the snapshotted one, and two restores of the
// same snapshot produce bitwise-identical re-solves regardless of what was
// solved in between.
func TestSparseSnapshotRestoreBitwiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(3)
		p := NewBoundedProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, math.Round((r.Float64()*10-5)*4)/4)
			p.SetBounds(j, 0, 1+float64(r.Intn(3)))
		}
		for i := 0; i < 1+r.Intn(2); i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round((r.Float64()*4-2)*4) / 4
			}
			p.AddConstraint(coeffs, []Rel{LE, GE}[r.Intn(2)], math.Round(r.Float64()*10*4)/4)
		}
		w, err := NewWarmSolverCfg(p, WarmConfig{})
		if err != nil {
			return false
		}
		lower, upper := cloneBounds(p)
		if _, err := w.SolveWithBounds(append([]float64(nil), lower...), append([]float64(nil), upper...)); err != nil {
			return false
		}
		snap := w.Snapshot()
		if snap == nil {
			return true // infeasible/unbounded roots have nothing to snapshot
		}

		child := func() ([]float64, []float64) {
			lo := append([]float64(nil), lower...)
			up := append([]float64(nil), upper...)
			j := r.Intn(n)
			mid := math.Round(r.Float64()*(up[j]-lo[j])*4)/4 + lo[j]
			if r.Intn(2) == 0 {
				lo[j] = mid
			} else {
				up[j] = mid
			}
			return lo, up
		}
		lo1, up1 := child()
		lo2, up2 := child()

		w.Restore(snap)
		if !sparseStateEqual(&w.sp, &snap.sp) {
			return false
		}
		a1, err := w.SolveWithBounds(append([]float64(nil), lo1...), append([]float64(nil), up1...))
		if err != nil {
			return false
		}
		// Pollute with an unrelated solve, restore, and replay the same child.
		if _, err := w.SolveWithBounds(lo2, up2); err != nil {
			return false
		}
		w.Restore(snap)
		if !sparseStateEqual(&w.sp, &snap.sp) {
			return false
		}
		a2, err := w.SolveWithBounds(lo1, up1)
		if err != nil {
			return false
		}
		if a1.Status != a2.Status || a1.Objective != a2.Objective {
			return false
		}
		for j := range a1.X {
			if a1.X[j] != a2.X[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// sparseStateEqual compares every snapshot-carried field of two sparse
// tableaux bitwise (scratch vectors excluded — they are not state).
func sparseStateEqual(a, b *sparseTableau) bool {
	if a.nStruct != b.nStruct || a.nSlack != b.nSlack ||
		a.numArtificial != b.numArtificial || a.nTotal != b.nTotal ||
		a.baseEtas != b.baseEtas || a.etaNNZ != b.etaNNZ ||
		a.iters != b.iters || a.maxIters != b.maxIters ||
		a.updLimit != b.updLimit || a.nnzLimit != b.nnzLimit {
		return false
	}
	if len(a.etas) != len(b.etas) {
		return false
	}
	for k := range a.etas {
		ea, eb := &a.etas[k], &b.etas[k]
		if ea.r != eb.r || ea.pv != eb.pv || len(ea.ent) != len(eb.ent) {
			return false
		}
		for i := range ea.ent {
			if ea.ent[i] != eb.ent[i] {
				return false
			}
		}
	}
	eqF := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqB := func(x, y []bool) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eqF(a.val, b.val) || !eqF(a.lower, b.lower) || !eqF(a.upper, b.upper) ||
		!eqF(a.cost, b.cost) || !eqF(a.lsign, b.lsign) {
		return false
	}
	if !eqB(a.inBasis, b.inBasis) || !eqB(a.atUpper, b.atUpper) || !eqB(a.isArt, b.isArt) {
		return false
	}
	if len(a.basis) != len(b.basis) {
		return false
	}
	for i := range a.basis {
		if a.basis[i] != b.basis[i] {
			return false
		}
	}
	if len(a.artCols) != len(b.artCols) {
		return false
	}
	for i := range a.artCols {
		if a.artCols[i] != b.artCols[i] {
			return false
		}
	}
	if len(a.lrow) != len(b.lrow) {
		return false
	}
	for i := range a.lrow {
		if a.lrow[i] != b.lrow[i] {
			return false
		}
	}
	return true
}
