package lp

import (
	"fmt"
	"math"
)

// WarmSolver solves a sequence of bound variations of one BoundedProblem —
// the exact shape of branch-and-bound node relaxations, where the matrix A,
// the right-hand side b and the objective c never change and only variable
// bounds tighten or relax. Unlike SolveBounded, which shifts lower bounds to
// zero at construction (and so must rebuild everything when a lower bound
// moves), WarmSolver keeps native [lo, up] column bounds inside the tableau.
// That makes warm starts possible: after an Optimal solve the factorized
// basis and the phase-2 reduced costs remain valid for any bound change —
// reduced costs depend only on (A, b, c) — so a child solve just moves the
// nonbasic variables to their new bounds, updates the basic values by the
// corresponding deltas, and resumes phase-2 pivoting. Phase 1 is re-entered
// (a cold rebuild, reusing the row storage) only when the parent basis is
// primal-infeasible under the child bounds.
//
// Determinism contract: a solve's result is a pure function of (base problem,
// bounds, start state), and the start state is either "cold", "the final
// tableau of the previous Optimal solve", or "a Snapshot". The parallel
// branch-and-bound engines in package ilp rely on this: every node's start
// state is determined by its tree position alone (dive children warm from
// their parent, queued siblings restore the root snapshot), so node results
// do not depend on worker scheduling.
//
// A WarmSolver is not safe for concurrent use; give each worker its own and
// share Snapshots, which are immutable once taken.
type WarmSolver struct {
	base  *BoundedProblem
	dense bool
	t     warmTableau   // dense engine (WarmConfig.Dense)
	sp    sparseTableau // sparse revised simplex (the default)
	ready bool          // the active tableau holds an Optimal basis for its current bounds
	// Stats counts how solves started; tests assert the warm path is
	// actually exercised.
	Stats WarmStats
}

// WarmConfig selects the LP engine behind a WarmSolver. The zero value is the
// sparse revised simplex (internal/lp/sparse.go); Dense keeps the original
// dense tableau as the differential reference — the same escape-hatch
// discipline as Naive elsewhere in the repo.
type WarmConfig struct {
	Dense bool
	// UpdateLimit caps the eta updates accumulated between refactorizations
	// of the sparse engine (0 = the default max(48, nStruct/2) heuristic).
	// Lowering it trades pivot speed for numerical freshness; tests set 1 to
	// force a refactorization on every pivot. Ignored by the dense engine.
	UpdateLimit int
}

// WarmStats counts solve starts by kind.
type WarmStats struct {
	Warm int // resumed phase 2 from the previous basis
	Dual int // bound change broke primal feasibility; dual pivots repaired it
	Cold int // rebuilt from scratch (phase 1), reusing row storage
}

// warmFeasTol is the primal-feasibility tolerance deciding whether the
// parent basis survives a bound change; it matches the phase-1 feasibility
// threshold so warm and cold starts agree on what "feasible" means.
const warmFeasTol = 1e-7

// NewWarmSolver validates the base problem (bounds are supplied per solve,
// so only the rows and objective are checked here) and returns a solver with
// no basis yet — the first SolveWithBounds is a cold start. The engine is the
// sparse revised simplex; NewWarmSolverCfg selects the dense reference.
func NewWarmSolver(base *BoundedProblem) (*WarmSolver, error) {
	return NewWarmSolverCfg(base, WarmConfig{})
}

// NewWarmSolverCfg is NewWarmSolver with an explicit engine choice.
func NewWarmSolverCfg(base *BoundedProblem, cfg WarmConfig) (*WarmSolver, error) {
	if base == nil {
		return nil, fmt.Errorf("lp: nil problem")
	}
	if base.NumVars <= 0 {
		return nil, fmt.Errorf("lp: no variables")
	}
	if len(base.Objective) != base.NumVars {
		return nil, fmt.Errorf("lp: objective length %d != NumVars %d", len(base.Objective), base.NumVars)
	}
	for i, c := range base.Constraints {
		for j := range c.Coeffs {
			if j < 0 || j >= base.NumVars {
				return nil, fmt.Errorf("lp: constraint %d references variable %d", i, j)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return nil, fmt.Errorf("lp: constraint %d has invalid RHS %v", i, c.RHS)
		}
	}
	if cfg.UpdateLimit < 0 {
		return nil, fmt.Errorf("lp: negative UpdateLimit %d", cfg.UpdateLimit)
	}
	w := &WarmSolver{base: base, dense: cfg.Dense}
	if !cfg.Dense {
		w.sp.a = newCSC(base)
		w.sp.updLimitCfg = cfg.UpdateLimit
	}
	return w, nil
}

// SolveWithBounds solves the base problem under the given variable bounds
// (the base's own Lower/Upper are ignored). lower/upper are only read.
func (w *WarmSolver) SolveWithBounds(lower, upper []float64) (Solution, error) {
	n := w.base.NumVars
	if len(lower) != n || len(upper) != n {
		return Solution{}, fmt.Errorf("lp: bounds length %d/%d != NumVars %d", len(lower), len(upper), n)
	}
	for j := 0; j < n; j++ {
		if math.IsInf(lower[j], 0) || math.IsNaN(lower[j]) || math.IsNaN(upper[j]) {
			return Solution{}, fmt.Errorf("lp: invalid bounds on variable %d", j)
		}
		if lower[j] > upper[j] {
			return Solution{}, fmt.Errorf("lp: empty bound interval on variable %d [%v, %v]", j, lower[j], upper[j])
		}
	}
	if !w.dense {
		return w.solveSparseWithBounds(lower, upper)
	}
	if w.ready {
		w.t.iters = 0
		resumed := w.warmApply(lower, upper)
		if resumed {
			w.Stats.Warm++
		} else if w.t.dualResume() {
			// The bound change pushed basic variables outside their new
			// intervals, but the basis stayed dual feasible and dual pivots
			// restored primal feasibility without rebuilding.
			resumed = true
			w.Stats.Dual++
		}
		if resumed {
			st := w.t.iterate()
			if st == Optimal {
				return w.extractSolution(), nil
			}
			// Unbounded can legitimately appear when bounds were relaxed;
			// IterLimit means the resumed basis cycled. Either way the tableau
			// is no longer a usable warm source.
			w.ready = false
			return Solution{Status: st, Iters: w.t.iters}, nil
		}
	}
	w.ready = false
	w.Stats.Cold++
	return w.coldSolve(lower, upper)
}

// SolveBoundedOverlay is the one-shot cold reference: it solves base under
// the given bounds with a fresh WarmSolver (no basis reuse). The warm-vs-cold
// differential tests compare SolveWithBounds sequences against it.
func SolveBoundedOverlay(base *BoundedProblem, lower, upper []float64) (Solution, error) {
	w, err := NewWarmSolver(base)
	if err != nil {
		return Solution{}, err
	}
	return w.SolveWithBounds(lower, upper)
}

// warmApply moves the tableau from its current bounds to (lower, upper):
// nonbasic columns shift to their new bound values (updating every basic
// value by coef·delta), basic columns just adopt the new limits. It reports
// whether the existing basis is still primal feasible; when it is not the
// caller falls back to a cold start.
func (w *WarmSolver) warmApply(lower, upper []float64) bool {
	t := &w.t
	m := t.m()
	for j := 0; j < t.nStruct; j++ {
		nl, nu := lower[j], upper[j]
		ol, ou := t.lower[j], t.upper[j]
		//socllint:ignore floateq bound values are copied verbatim between nodes; unchanged bounds compare bitwise equal
		if nl == ol && nu == ou {
			continue
		}
		if !t.inBasis[j] {
			oldv, newv := ol, nl
			if t.atUpper[j] {
				oldv = ou
				if math.IsInf(nu, 1) {
					t.atUpper[j] = false // upper bound vanished; park at lower
					newv = nl
				} else {
					newv = nu
				}
			}
			//socllint:ignore floateq structural zero delta: the bound value was copied, not computed; only a literal move needs the RHS update
			if d := newv - oldv; d != 0 {
				for r := 0; r < m; r++ {
					t.val[r] -= t.coef[r][j] * d
				}
			}
		}
		t.lower[j], t.upper[j] = nl, nu
	}
	for r := 0; r < m; r++ {
		bj := t.basis[r]
		if t.val[r] < t.lower[bj]-warmFeasTol {
			return false
		}
		if up := t.upper[bj]; !math.IsInf(up, 1) && t.val[r] > up+warmFeasTol {
			return false
		}
		// A basic artificial pushed off zero means the rows themselves became
		// inconsistent under the new bounds; only phase 1 can decide that.
		if t.isArt[bj] && t.val[r] > warmFeasTol {
			return false
		}
	}
	return true
}

// dualResume runs bounded-variable dual simplex pivots after warmApply moved
// the tableau to new bounds and found basic variables outside them — the
// branch-and-bound hot path, where every child node tightens the bound of a
// basic fractional variable and so always breaks primal feasibility. The
// previous Optimal solve left the basis dual feasible, and bound moves do not
// touch reduced costs, so each violated basic can be driven exactly to its
// bound by an entering column chosen with the dual ratio test. It reports
// whether primal feasibility was restored (the caller then finishes with
// ordinary primal iterate, usually zero pivots); false means no usable pivot
// or too many steps, and the caller cold-starts — so a bail costs nothing but
// the attempt. Pivot selection is deterministic (most-violated row, smallest
// ratio with first-wins ties) and both engines implement the identical rule,
// keeping sparse ≡ dense bitwise.
func (t *warmTableau) dualResume() bool {
	m := t.m()
	obj := t.coef[m]
	maxSteps := 4 * (m + t.nTotal)
	for steps := 0; steps < maxSteps; steps++ {
		// Leaving row: the most-violated basic variable, lowest row on ties.
		r, below := -1, false
		worst := warmFeasTol
		for i := 0; i < m; i++ {
			bj := t.basis[i]
			if d := t.lower[bj] - t.val[i]; d > worst {
				worst, r, below = d, i, true
			}
			if up := t.upper[bj]; !math.IsInf(up, 1) {
				if d := t.val[i] - up; d > worst {
					worst, r, below = d, i, false
				}
			}
		}
		if r == -1 {
			return true
		}
		// Entering column: among nonbasic columns whose movement pushes the
		// violated basic back toward its bound, the smallest dual ratio
		// |reduced cost| / |pivot| keeps the remaining columns dual feasible.
		row := t.coef[r]
		enter, dir, bestRatio := -1, 1.0, math.Inf(1)
		for j := 0; j < t.nTotal; j++ {
			if t.isArt[j] || t.inBasis[j] || !(t.upper[j] > t.lower[j]) {
				continue
			}
			d := 1.0
			if t.atUpper[j] {
				d = -1
			}
			// val[r] changes by −a per unit of entering movement.
			a := d * row[j]
			if below {
				if a >= -eps { // need val[r] to increase
					continue
				}
			} else if a <= eps { // need val[r] to decrease
				continue
			}
			rc := d * obj[j]
			if rc < 0 {
				// Slightly dual-infeasible columns (a bound that vanished
				// re-parked the column) price as ratio zero; the primal
				// cleanup pass restores optimality afterwards.
				rc = 0
			}
			if ratio := rc / math.Abs(a); ratio < bestRatio {
				bestRatio, enter, dir = ratio, j, d
			}
		}
		if enter == -1 {
			return false // no usable pivot; the cold start decides feasibility
		}
		a := dir * row[enter]
		need := worst / math.Abs(a)
		if lim := t.upper[enter] - t.lower[enter]; need >= lim {
			// The entering column exhausts its own interval before the
			// violation closes: a bound flip makes partial progress and the
			// next pass re-prices.
			t.boundFlip(enter, dir)
			t.iters++
			continue
		}
		t.moveAndPivot(enter, dir, need, r, !below)
		t.iters++
	}
	return false
}

// coldSolve rebuilds the tableau from scratch under the given bounds (two
// phases), reusing the row storage from previous solves.
func (w *WarmSolver) coldSolve(lower, upper []float64) (Solution, error) {
	w.t.build(w.base, lower, upper)
	t := &w.t
	if t.numArtificial > 0 {
		t.setPhase(true, nil)
		st := t.iterate()
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: t.iters}, nil
		}
		if t.zval > warmFeasTol {
			return Solution{Status: Infeasible, Iters: t.iters}, nil
		}
		t.driveOutArtificials()
	}
	t.setPhase(false, w.base.Objective)
	switch t.iterate() {
	case Unbounded:
		return Solution{Status: Unbounded, Iters: t.iters}, nil
	case IterLimit:
		return Solution{Status: IterLimit, Iters: t.iters}, nil
	}
	return w.extractSolution(), nil
}

// extractSolution reads the structural solution off an Optimal tableau and
// marks the solver warm-ready. The objective is recomputed from x (not from
// the tableau's incrementally tracked zval) so warm chains cannot drift.
func (w *WarmSolver) extractSolution() Solution {
	t := &w.t
	x := make([]float64, w.base.NumVars)
	for j := range x {
		if t.atUpper[j] && !t.inBasis[j] {
			x[j] = t.upper[j]
		} else {
			x[j] = t.lower[j]
		}
	}
	for r, bj := range t.basis {
		if bj < len(x) {
			x[bj] = t.val[r]
		}
	}
	canonZeros(x)
	obj := 0.0
	for j, c := range w.base.Objective {
		obj += c * x[j]
	}
	w.ready = true
	return Solution{Status: Optimal, X: x, Objective: obj, Iters: t.iters}
}

// canonZeros rewrites -0 entries to +0. The dense and sparse engines compute
// basic values through different arithmetic (incremental pivot updates vs
// FTRAN recomputation), which agrees bitwise except possibly on the sign of
// exact zeros; canonicalizing both extractions keeps "sparse ≡ dense
// bitwise" literal and stops -0 from leaking into reported solutions.
func canonZeros(x []float64) {
	for j, v := range x {
		//socllint:ignore floateq the whole point is the exact zero: v == 0 is true for -0, and the rewrite normalizes its sign bit
		if v == 0 {
			x[j] = 0
		}
	}
}

// WarmSnapshot is an immutable copy of a WarmSolver's tableau state, taken
// after an Optimal solve. Restoring it puts a solver (typically a different
// worker's) into exactly that state, so warm starts from a shared ancestor —
// the root relaxation in the parallel branch-and-bound — are reproducible
// regardless of which worker performs them.
type WarmSnapshot struct {
	dense bool
	t     warmTableau
	sp    sparseTableau
	ready bool
}

// Snapshot deep-copies the current tableau state. Returns nil when the
// solver holds no Optimal basis (callers then simply cold-start instead).
// Sparse snapshots are cheap: the constraint matrix and the eta columns are
// shared immutably, so the copy is the basis/bounds state plus eta headers.
func (w *WarmSolver) Snapshot() *WarmSnapshot {
	return w.SnapshotTo(nil)
}

// SnapshotTo is Snapshot writing into recycled storage: when s is non-nil its
// arrays are reused (the branch-and-bound engines pool per-branch parent
// snapshots through this). A nil s allocates. Returns nil when the solver
// holds no Optimal basis, leaving s untouched.
func (w *WarmSolver) SnapshotTo(s *WarmSnapshot) *WarmSnapshot {
	if !w.ready {
		return nil
	}
	if s == nil {
		s = &WarmSnapshot{}
	}
	s.dense, s.ready = w.dense, true
	if w.dense {
		s.t.copyFrom(&w.t)
	} else {
		s.sp.copyFrom(&w.sp)
	}
	return s
}

// Restore loads a snapshot into the solver, reusing its storage. The solver
// must have been created for the same base problem and engine config; a
// snapshot from the other engine is treated as "no snapshot" (cold start).
func (w *WarmSolver) Restore(s *WarmSnapshot) {
	if s == nil || s.dense != w.dense {
		w.ready = false
		return
	}
	if w.dense {
		w.t.copyFrom(&s.t)
	} else {
		w.sp.copyFrom(&s.sp)
	}
	w.ready = s.ready
}

// warmTableau is a bounded-variable simplex tableau with native [lo, up]
// column bounds (boundedTableau, by contrast, works in lower-shifted space).
// coef holds B⁻¹A (row m = the current phase's reduced costs), val the basic
// variable values; zval incrementally tracks the phase objective and is only
// consulted for the phase-1 feasibility verdict.
type warmTableau struct {
	coef    [][]float64
	flat    []float64 // backing storage for coef, reused across rebuilds
	val     []float64
	zval    float64
	basis   []int
	inBasis []bool
	atUpper []bool
	lower   []float64 // per column; slack/artificial columns are [0, +Inf)
	upper   []float64
	cost    []float64
	isArt   []bool
	artCols []int

	nStruct       int
	nSlack        int
	numArtificial int
	nTotal        int
	iters         int
	maxIters      int
}

func (t *warmTableau) m() int { return len(t.coef) - 1 }

// grow (re)slices every array for an (m+1)×nTotal tableau, zeroing coef and
// resetting the column state, while keeping backing storage across calls.
func (t *warmTableau) grow(m, nTotal, nArt int) {
	need := (m + 1) * nTotal
	if cap(t.flat) < need {
		t.flat = make([]float64, need)
	}
	t.flat = t.flat[:need]
	for i := range t.flat {
		t.flat[i] = 0
	}
	if cap(t.coef) < m+1 {
		t.coef = make([][]float64, m+1)
	}
	t.coef = t.coef[:m+1]
	for i := 0; i <= m; i++ {
		t.coef[i] = t.flat[i*nTotal : (i+1)*nTotal : (i+1)*nTotal]
	}
	growF := func(s []float64, n int) []float64 {
		if cap(s) < n {
			return make([]float64, n)
		}
		return s[:n]
	}
	growI := func(s []int, n int) []int {
		if cap(s) < n {
			return make([]int, n)
		}
		return s[:n]
	}
	growB := func(s []bool, n int) []bool {
		if cap(s) < n {
			return make([]bool, n)
		}
		return s[:n]
	}
	t.val = growF(t.val, m)
	t.basis = growI(t.basis, m)
	t.lower = growF(t.lower, nTotal)
	t.upper = growF(t.upper, nTotal)
	t.cost = growF(t.cost, nTotal)
	t.inBasis = growB(t.inBasis, nTotal)
	t.atUpper = growB(t.atUpper, nTotal)
	t.isArt = growB(t.isArt, nTotal)
	for j := 0; j < nTotal; j++ {
		t.inBasis[j] = false
		t.atUpper[j] = false
		t.isArt[j] = false
	}
	t.artCols = growI(t.artCols, nArt)[:0]
}

// build constructs the cold tableau for the base problem under the given
// structural bounds. All structural variables start nonbasic at their lower
// bound; each row's slack or artificial absorbs the residual
// r_i = b_i − Σ a_ij·lo_j, with the row negated first when r_i < 0 so the
// initial basic values are nonnegative (the native-bounds analogue of
// newBoundedTableau's shifted-space sign normalization).
func (t *warmTableau) build(p *BoundedProblem, lower, upper []float64) {
	m := len(p.Constraints)
	nStruct := p.NumVars
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		resid := c.RHS
		for j, v := range c.Coeffs {
			resid -= v * lower[j]
		}
		rel := c.Rel
		if resid < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	nTotal := nStruct + nSlack + nArt
	t.grow(m, nTotal, nArt)
	t.nStruct, t.nSlack, t.numArtificial, t.nTotal = nStruct, nSlack, nArt, nTotal
	t.maxIters = 20000 + 200*(m+nTotal)
	t.iters = 0

	copy(t.lower[:nStruct], lower)
	copy(t.upper[:nStruct], upper)
	for j := nStruct; j < nTotal; j++ {
		t.lower[j] = 0
		t.upper[j] = math.Inf(1)
	}
	slackCol, artCol := nStruct, nStruct+nSlack
	for i, c := range p.Constraints {
		row := t.coef[i]
		resid := c.RHS
		for j, v := range c.Coeffs {
			resid -= v * lower[j]
		}
		sign := 1.0
		rel := c.Rel
		if resid < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, v := range c.Coeffs {
			row[j] += sign * v
		}
		t.val[i] = sign * resid
		switch rel {
		case LE:
			row[slackCol] = 1
			t.setBasis(i, slackCol)
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.setBasis(i, artCol)
			t.artCols = append(t.artCols, artCol)
			t.isArt[artCol] = true
			artCol++
		case EQ:
			row[artCol] = 1
			t.setBasis(i, artCol)
			t.artCols = append(t.artCols, artCol)
			t.isArt[artCol] = true
			artCol++
		}
	}
}

func (t *warmTableau) setBasis(r, col int) {
	t.basis[r] = col
	t.inBasis[col] = true
}

// nonbasicValue is the value a nonbasic column currently sits at.
func (t *warmTableau) nonbasicValue(j int) float64 {
	if t.atUpper[j] {
		return t.upper[j]
	}
	return t.lower[j]
}

// setPhase installs the phase objective (phase 1: Σ artificials; phase 2:
// the structural costs) as reduced costs and recomputes zval for the current
// point, including nonbasic columns parked at nonzero bounds.
func (t *warmTableau) setPhase(phase1 bool, c []float64) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	if phase1 {
		for _, a := range t.artCols {
			t.cost[a] = 1
		}
	} else {
		copy(t.cost, c)
	}
	obj := t.coef[t.m()]
	copy(obj, t.cost)
	for r, bj := range t.basis {
		factor := obj[bj]
		//socllint:ignore floateq structural zero: entry was assigned zero by elimination, not approximately computed
		if factor == 0 {
			continue
		}
		row := t.coef[r]
		for j := range obj {
			obj[j] -= factor * row[j]
		}
	}
	t.zval = 0
	for r, bj := range t.basis {
		t.zval += t.cost[bj] * t.val[r]
	}
	for j := 0; j < t.nTotal; j++ {
		//socllint:ignore floateq cost entries are exact copies of the phase objective; zero means "not in this phase"
		if t.inBasis[j] || t.cost[j] == 0 {
			continue
		}
		//socllint:ignore floateq nonbasic value at exactly zero contributes no objective term; a tolerance would drop real contributions
		if v := t.nonbasicValue(j); !math.IsInf(v, 1) && v != 0 {
			t.zval += t.cost[j] * v
		}
	}
}

// iterate runs bounded-variable simplex pivots until optimality,
// unboundedness, or the iteration cap — boundedTableau.iterate generalized
// to native [lo, up] intervals (entering moves away from whichever bound the
// column sits at; ratio tests measure distance to each basic variable's own
// lower/upper bound rather than to [0, upper]).
func (t *warmTableau) iterate() Status {
	blandAfter := t.maxIters / 2
	for ; t.iters < t.maxIters; t.iters++ {
		obj := t.coef[t.m()]
		enter, dir := -1, 1.0
		if t.iters < blandAfter {
			best := eps
			for j := 0; j < t.nTotal; j++ {
				if t.isArt[j] || t.inBasis[j] {
					continue
				}
				if !t.atUpper[j] && -obj[j] > best {
					best, enter, dir = -obj[j], j, 1
				} else if t.atUpper[j] && obj[j] > best {
					best, enter, dir = obj[j], j, -1
				}
			}
		} else { // Bland
			for j := 0; j < t.nTotal; j++ {
				if t.isArt[j] || t.inBasis[j] {
					continue
				}
				if !t.atUpper[j] && obj[j] < -eps {
					enter, dir = j, 1
					break
				}
				if t.atUpper[j] && obj[j] > eps {
					enter, dir = j, -1
					break
				}
			}
		}
		if enter == -1 {
			return Optimal
		}

		// Ratio test: the entering variable moves dist ≥ 0 in direction dir;
		// basic r changes by −dir·a_r·dist and must stay within its own
		// [lower, upper]; the entering variable is limited by its interval.
		limit := t.upper[enter] - t.lower[enter]
		leave, leaveToUpper := -1, false
		for r := 0; r < t.m(); r++ {
			a := dir * t.coef[r][enter]
			switch {
			case a > eps: // basic decreases toward its lower bound
				if ratio := (t.val[r] - t.lower[t.basis[r]]) / a; ratio < limit-eps {
					limit, leave, leaveToUpper = ratio, r, false
				} else if ratio <= limit+eps && leave != -1 && !leaveToUpper &&
					t.basis[r] < t.basis[leave] {
					leave = r // Bland-style tie-break for anti-cycling
				}
			case a < -eps: // basic increases toward its upper bound
				ub := t.upper[t.basis[r]]
				if math.IsInf(ub, 1) {
					continue
				}
				if ratio := (ub - t.val[r]) / (-a); ratio < limit-eps {
					limit, leave, leaveToUpper = ratio, r, true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}

		if leave == -1 {
			t.boundFlip(enter, dir)
			continue
		}
		t.moveAndPivot(enter, dir, limit, leave, leaveToUpper)
	}
	return IterLimit
}

// boundFlip moves nonbasic variable j across its whole interval.
func (t *warmTableau) boundFlip(j int, dir float64) {
	dist := t.upper[j] - t.lower[j]
	for r := 0; r < t.m(); r++ {
		t.val[r] -= dir * dist * t.coef[r][j]
	}
	t.zval += t.coef[t.m()][j] * dir * dist
	t.atUpper[j] = dir > 0
}

// moveAndPivot advances the entering variable by dist, retires the leaving
// basic variable at the bound it hit, and pivots the coefficient matrix.
func (t *warmTableau) moveAndPivot(enter int, dir, dist float64, leave int, leaveToUpper bool) {
	for r := 0; r < t.m(); r++ {
		t.val[r] -= dir * dist * t.coef[r][enter]
	}
	t.zval += t.coef[t.m()][enter] * dir * dist

	enterVal := t.lower[enter] + dist
	if dir < 0 {
		enterVal = t.upper[enter] - dist
	}
	leavingCol := t.basis[leave]
	t.inBasis[leavingCol] = false
	t.atUpper[leavingCol] = leaveToUpper
	t.atUpper[enter] = false
	t.setBasis(leave, enter)
	t.val[leave] = enterVal

	pr := t.coef[leave]
	pv := pr[enter]
	for j := range pr {
		pr[j] /= pv
	}
	for r := range t.coef {
		if r == leave {
			continue
		}
		f := t.coef[r][enter]
		//socllint:ignore floateq structural zero skip is an optimization; pivoting handles near-zeros via ratio tests
		if f == 0 {
			continue
		}
		tr := t.coef[r]
		for j := range tr {
			tr[j] -= f * pr[j]
		}
		tr[enter] = 0
	}
}

// driveOutArtificials pivots zero-valued basic artificials out after phase 1.
// Nonbasic-at-upper columns are eligible (degenerate pivot entering from the
// upper bound), and artificial upper bounds are clamped to zero afterwards so
// a still-basic artificial on a redundant row can never leave zero in
// phase 2 — see boundedTableau.driveOutArtificials.
func (t *warmTableau) driveOutArtificials() {
	for r := 0; r < t.m(); r++ {
		if !t.isArt[t.basis[r]] {
			continue
		}
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if math.Abs(t.coef[r][j]) > 1e-7 && !t.inBasis[j] {
				dir := 1.0
				if t.atUpper[j] {
					dir = -1
				}
				t.moveAndPivot(j, dir, 0, r, false)
				break
			}
		}
	}
	for _, a := range t.artCols {
		t.upper[a] = 0
	}
}

// copyFrom deep-copies src's state into t, reusing t's storage.
func (t *warmTableau) copyFrom(src *warmTableau) {
	m := src.m()
	t.grow(m, src.nTotal, src.numArtificial)
	copy(t.flat, src.flat)
	copy(t.val, src.val)
	copy(t.basis, src.basis)
	copy(t.lower, src.lower)
	copy(t.upper, src.upper)
	copy(t.cost, src.cost)
	copy(t.inBasis, src.inBasis)
	copy(t.atUpper, src.atUpper)
	copy(t.isArt, src.isArt)
	t.artCols = append(t.artCols[:0], src.artCols...)
	t.zval = src.zval
	t.nStruct, t.nSlack = src.nStruct, src.nSlack
	t.numArtificial, t.nTotal = src.numArtificial, src.nTotal
	t.iters, t.maxIters = src.iters, src.maxIters
}
