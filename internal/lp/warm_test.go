package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// reference solves p with the from-scratch bounded solver after substituting
// the given bounds — the cold reference every warm solve is pinned against.
func reference(t *testing.T, p *BoundedProblem, lower, upper []float64) Solution {
	t.Helper()
	q := &BoundedProblem{
		NumVars:     p.NumVars,
		Objective:   p.Objective,
		Constraints: p.Constraints,
		Lower:       lower,
		Upper:       upper,
	}
	s, err := SolveBounded(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checkAgainstReference(t *testing.T, p *BoundedProblem, got Solution, lower, upper []float64) {
	t.Helper()
	want := reference(t, p, lower, upper)
	if got.Status != want.Status {
		t.Fatalf("status = %v, reference = %v (lower=%v upper=%v)", got.Status, want.Status, lower, upper)
	}
	if got.Status != Optimal {
		return
	}
	if math.Abs(got.Objective-want.Objective) > 1e-6 {
		t.Fatalf("objective = %v, reference = %v", got.Objective, want.Objective)
	}
	for j := range got.X {
		if got.X[j] < lower[j]-1e-6 || got.X[j] > upper[j]+1e-6 {
			t.Fatalf("x[%d] = %v outside [%v, %v]", j, got.X[j], lower[j], upper[j])
		}
	}
	for _, c := range p.Constraints {
		lhs := 0.0
		for j, v := range c.Coeffs {
			lhs += v * got.X[j]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+1e-6 {
				t.Fatalf("row violated: %v > %v", lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				t.Fatalf("row violated: %v < %v", lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				t.Fatalf("row violated: %v != %v", lhs, c.RHS)
			}
		}
	}
}

// knapsackBase is the binary-knapsack relaxation used across the warm tests:
// branching on its variables exercises exactly the bound changes
// branch-and-bound produces.
func knapsackBase() *BoundedProblem {
	p := NewBoundedProblem(3)
	p.SetObjective(0, -10)
	p.SetObjective(1, -13)
	p.SetObjective(2, -7)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 1)
	}
	p.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, LE, 6)
	return p
}

func cloneBounds(p *BoundedProblem) (lower, upper []float64) {
	return append([]float64(nil), p.Lower...), append([]float64(nil), p.Upper...)
}

// Cold path (first solve) must match SolveBounded on the standard fixtures.
func TestWarmColdMatchesBoundedFixtures(t *testing.T) {
	cases := []struct {
		name  string
		build func() *BoundedProblem
	}{
		{"simple-box", func() *BoundedProblem {
			p := NewBoundedProblem(2)
			p.SetObjective(0, -1)
			p.SetObjective(1, -2)
			p.SetBounds(0, 0, 3)
			p.SetBounds(1, 0, 2)
			p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
			return p
		}},
		{"pure-bound-flip", func() *BoundedProblem {
			p := NewBoundedProblem(1)
			p.SetObjective(0, -1)
			p.SetBounds(0, 0, 5)
			p.AddConstraint(map[int]float64{0: 1}, LE, 100)
			return p
		}},
		{"nonzero-lower", func() *BoundedProblem {
			p := NewBoundedProblem(2)
			p.SetObjective(0, 1)
			p.SetObjective(1, 1)
			p.SetBounds(0, 2, math.Inf(1))
			p.SetBounds(1, 1, 3)
			p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 5)
			return p
		}},
		{"infeasible", func() *BoundedProblem {
			p := NewBoundedProblem(1)
			p.SetObjective(0, 1)
			p.SetBounds(0, 0, 1)
			p.AddConstraint(map[int]float64{0: 1}, GE, 2)
			return p
		}},
		{"unbounded", func() *BoundedProblem {
			p := NewBoundedProblem(1)
			p.SetObjective(0, -1)
			p.AddConstraint(map[int]float64{0: 1}, GE, 0)
			return p
		}},
		{"knapsack", knapsackBase},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			w, err := NewWarmSolver(p)
			if err != nil {
				t.Fatal(err)
			}
			lower, upper := cloneBounds(p)
			got, err := w.SolveWithBounds(lower, upper)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstReference(t, p, got, lower, upper)
			one, err := SolveBoundedOverlay(p, lower, upper)
			if err != nil {
				t.Fatal(err)
			}
			if one.Status != got.Status {
				t.Fatalf("one-shot status %v != warm-solver status %v", one.Status, got.Status)
			}
		})
	}
}

// A branch-and-bound-like chain of bound tightenings: every warm re-solve
// must match a from-scratch solve, and at least one solve must actually take
// the warm path (otherwise this test pins nothing).
func TestWarmChainMatchesColdOnKnapsackBranching(t *testing.T) {
	p := knapsackBase()
	w, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	steps := [][2][]float64{
		{{0, 0, 0}, {1, 1, 1}}, // root
		{{0, 0, 0}, {1, 0, 1}}, // x1 = 0
		{{0, 1, 0}, {1, 1, 1}}, // x1 = 1
		{{0, 1, 0}, {0, 1, 1}}, // x1 = 1, x0 = 0
		{{1, 1, 0}, {1, 1, 1}}, // x1 = 1, x0 = 1 (budget-infeasible branch)
		{{0, 0, 0}, {1, 1, 0}}, // x2 = 0
		{{0, 0, 1}, {1, 1, 1}}, // x2 = 1
	}
	for i, st := range steps {
		got, err := w.SolveWithBounds(st[0], st[1])
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		checkAgainstReference(t, p, got, st[0], st[1])
	}
	if w.Stats.Warm == 0 {
		t.Fatalf("no warm solves in the chain: stats %+v", w.Stats)
	}
}

// Snapshot/Restore must reproduce the snapshotted start state: restoring the
// root snapshot before each child gives the same answers as fresh cold
// solves, independent of what was solved in between.
func TestWarmSnapshotRestoreDeterministic(t *testing.T) {
	p := knapsackBase()
	w, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := cloneBounds(p)
	if _, err := w.SolveWithBounds(lower, upper); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if snap == nil {
		t.Fatal("nil snapshot after optimal solve")
	}
	children := [][2][]float64{
		{{0, 0, 0}, {1, 0, 1}},
		{{0, 1, 0}, {1, 1, 1}},
		{{0, 0, 1}, {1, 1, 1}},
	}
	first := make([]Solution, len(children))
	for i, st := range children {
		w.Restore(snap)
		got, err := w.SolveWithBounds(st[0], st[1])
		if err != nil {
			t.Fatal(err)
		}
		first[i] = got
		checkAgainstReference(t, p, got, st[0], st[1])
	}
	// Second pass in reverse order: snapshot restarts make the results
	// independent of solve history.
	for i := len(children) - 1; i >= 0; i-- {
		st := children[i]
		w.Restore(snap)
		got, err := w.SolveWithBounds(st[0], st[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != first[i].Status || math.Abs(got.Objective-first[i].Objective) > 1e-12 {
			t.Fatalf("child %d: history-dependent result: %v/%v vs %v/%v",
				i, got.Status, got.Objective, first[i].Status, first[i].Objective)
		}
	}
}

// An infeasible child must be reported infeasible from the warm path too,
// and the solver must recover (cold-restart) on the next solve.
func TestWarmInfeasibleChildAndRecovery(t *testing.T) {
	p := knapsackBase()
	w, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := cloneBounds(p)
	if _, err := w.SolveWithBounds(lower, upper); err != nil {
		t.Fatal(err)
	}
	// All three at 1 violates 3+4+2 ≤ 6.
	got, err := w.SolveWithBounds([]float64{1, 1, 1}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", got.Status)
	}
	lower2, upper2 := cloneBounds(p)
	got2, err := w.SolveWithBounds(lower2, upper2)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, p, got2, lower2, upper2)
}

func TestWarmValidatesBounds(t *testing.T) {
	p := knapsackBase()
	w, err := NewWarmSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.SolveWithBounds([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("short bound slices accepted")
	}
	if _, err := w.SolveWithBounds([]float64{2, 0, 0}, []float64{1, 1, 1}); err == nil {
		t.Fatal("empty bound interval accepted")
	}
	if _, err := w.SolveWithBounds([]float64{math.Inf(-1), 0, 0}, []float64{1, 1, 1}); err == nil {
		t.Fatal("infinite lower bound accepted")
	}
}

// Property test: on random bounded LPs, random sequences of bound
// tightenings/relaxations solved warm must agree with from-scratch solves at
// every step.
func TestWarmMatchesColdProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(4)
		p := NewBoundedProblem(n)
		baseLo := make([]float64, n)
		baseUp := make([]float64, n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, math.Round((r.Float64()*10-5)*4)/4)
			baseLo[j] = math.Round(r.Float64()*2*4) / 4
			baseUp[j] = baseLo[j] + math.Round((0.5+r.Float64()*4)*4)/4
			p.SetBounds(j, baseLo[j], baseUp[j])
		}
		rows := 1 + r.Intn(3)
		for i := 0; i < rows; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				coeffs[j] = math.Round((r.Float64()*4-2)*4) / 4
			}
			rel := []Rel{LE, GE, EQ}[r.Intn(3)]
			rhs := math.Round((r.Float64()*20-5)*4) / 4
			p.AddConstraint(coeffs, rel, rhs)
		}
		w, err := NewWarmSolver(p)
		if err != nil {
			return false
		}
		for step := 0; step < 6; step++ {
			lower := append([]float64(nil), baseLo...)
			upper := append([]float64(nil), baseUp...)
			// Tighten a random subset of variables toward a random point in
			// their interval — the move set branch-and-bound generates.
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					continue
				}
				mid := baseLo[j] + math.Round(r.Float64()*(baseUp[j]-baseLo[j])*4)/4
				if r.Intn(2) == 0 {
					lower[j] = mid
				} else {
					upper[j] = mid
				}
			}
			got, err := w.SolveWithBounds(lower, upper)
			if err != nil {
				return false
			}
			ref := &BoundedProblem{NumVars: n, Objective: p.Objective, Constraints: p.Constraints, Lower: lower, Upper: upper}
			want, err := SolveBounded(ref)
			if err != nil {
				return false
			}
			if got.Status != want.Status {
				return false
			}
			if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
