package model

import (
	"repro/internal/msvc"
)

// CloudConfig models the remote cloud data center the paper designates as
// the fallback when no edge instance of a requested microservice exists
// ("all user requests … will fail or have to rely on the cloud servers as a
// fallback option", Section IV-C). The cloud is reachable from every edge
// server over a WAN whose per-GB transfer cost dwarfs edge links, and runs
// microservices on ample compute.
type CloudConfig struct {
	// TransferCost is the WAN seconds-per-GB between any edge server and
	// the cloud (typically 10–100× an edge path cost).
	TransferCost float64
	// Compute is the cloud's per-instance compute capacity, GFLOP/s.
	Compute float64
}

// DefaultCloudConfig returns a WAN 20× slower than a typical edge path
// (≈ 1 s/GB) with generous compute.
func DefaultCloudConfig() CloudConfig {
	return CloudConfig{TransferCost: 1.0, Compute: 50}
}

// CloudCompletionTime returns the completion time of serving the entire
// request from the cloud: ingress and egress cross the WAN, inter-service
// transfers are intra-datacenter (free at this granularity), and every step
// computes on cloud capacity.
func (cc CloudConfig) CloudCompletionTime(cat *msvc.Catalog, req *msvc.Request) float64 {
	d := (req.DataIn + req.DataOut) * cc.TransferCost
	for _, s := range req.Chain {
		d += cat.Service(s).Compute / cc.Compute
	}
	return d
}
