package model

import (
	"math"
	"testing"

	"repro/internal/msvc"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestCloudFallbackServesMissingServices(t *testing.T) {
	in := tinyInstance(t)
	in.Cloud = &CloudConfig{TransferCost: 0.5, Compute: 100}
	p := NewPlacement(2, 4)
	p.Set(0, 0, true) // service b (id 1) nowhere on the edge
	ev := in.Evaluate(p)
	if ev.MissingInstances != 0 {
		t.Fatalf("MissingInstances = %d with cloud fallback", ev.MissingInstances)
	}
	if ev.CloudServed != 1 {
		t.Fatalf("CloudServed = %d, want 1", ev.CloudServed)
	}
	// Request 0 (chain a→b, in 1 GB, out 1 GB, q 2+4 GFLOP):
	// (1+1)·0.5 + 2/100 + 4/100 = 1.06
	want := 1.06
	if math.Abs(ev.Latencies[0]-want) > 1e-9 {
		t.Fatalf("cloud latency = %v, want %v", ev.Latencies[0], want)
	}
	if math.IsInf(ev.Objective, 1) {
		t.Fatal("objective should be finite under cloud fallback")
	}
}

func TestCloudFallbackOffNil(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 0, true)
	ev := in.Evaluate(p)
	if ev.MissingInstances != 1 || ev.CloudServed != 0 {
		t.Fatalf("without cloud: missing=%d cloud=%d", ev.MissingInstances, ev.CloudServed)
	}
}

func TestCloudCompletionTime(t *testing.T) {
	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 1, 10, 1)
	cc := CloudConfig{TransferCost: 2, Compute: 5}
	req := &msvc.Request{Chain: []int{a}, DataIn: 1, DataOut: 3}
	// (1+3)·2 + 10/5 = 10
	if got := cc.CloudCompletionTime(cat, req); math.Abs(got-10) > 1e-12 {
		t.Fatalf("CloudCompletionTime = %v, want 10", got)
	}
}

// Parallel-path parity: evaluation of ≥64 requests must agree exactly with
// a request-by-request serial recomputation for every routing mode.
func TestParallelEvaluationParity(t *testing.T) {
	g := topology.RandomGeometric(10, 0.35, topology.DefaultGenConfig(), 21)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 21)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(150), 21)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
	p := randomPlacement(in, 5)

	for _, mode := range []RoutingMode{RouteModeOptimal, RouteModeGreedy, RouteModeRandom} {
		ev := in.EvaluateRouted(p, mode, 7) // parallel (150 ≥ threshold)
		// Serial recomputation per request.
		for h := range in.Workload.Requests {
			req := &in.Workload.Requests[h]
			var want float64
			var err error
			switch mode {
			case RouteModeGreedy:
				_, want, err = in.RouteGreedy(req, p)
			case RouteModeRandom:
				rng := stats.NewRand(7 + int64(h)*0x9e3779b9)
				_, want, err = in.RouteRandom(req, p, rng)
			default:
				_, want, err = in.RouteOptimal(req, p)
			}
			if err != nil {
				if !math.IsInf(ev.Latencies[h], 1) {
					t.Fatalf("mode %v req %d: expected +Inf", mode, h)
				}
				continue
			}
			if math.Abs(ev.Latencies[h]-want) > 1e-9 {
				t.Fatalf("mode %v req %d: parallel %v != serial %v", mode, h, ev.Latencies[h], want)
			}
		}
	}
}

func TestRoutingModeString(t *testing.T) {
	if RouteModeOptimal.String() != "optimal" || RouteModeGreedy.String() != "greedy" ||
		RouteModeRandom.String() != "random" || RoutingMode(99).String() != "?" {
		t.Fatal("RoutingMode.String wrong")
	}
}

func TestContentionNoTrafficNoCongestion(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	// Everything local to each request's home: no link traffic at all for
	// request 1 (single service at home 3); request 0 still crosses links.
	p.Set(0, 0, true)
	p.Set(1, 0, true)
	p.Set(0, 3, true)
	rep := in.EvaluateWithContention(p, RouteModeOptimal, 0, DefaultContentionConfig())
	if rep.LatencySumContended < rep.LatencySum-1e-9 {
		t.Fatalf("contended latency %v below idle latency %v", rep.LatencySumContended, rep.LatencySum)
	}
	for key, u := range rep.Utilization {
		if u < 0 {
			t.Fatalf("negative utilization on %v", key)
		}
	}
}

func TestContentionSlowsOversubscribedLink(t *testing.T) {
	// Two nodes, one slow link, huge ingress volume, tiny slot → the link
	// oversubscribes and latency inflates.
	g := topology.New(2)
	g.AddNode(0, 0, 10, 10)
	g.AddNode(1, 0, 10, 10)
	if err := g.AddLink(0, 1, 1); err != nil { // 1 GB/s
		t.Fatal(err)
	}
	g.Finalize()
	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 10, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a})
	reqs := make([]msvc.Request, 10)
	for i := range reqs {
		reqs[i] = msvc.Request{ID: i, Home: 0, Chain: []int{a}, DataIn: 10, DataOut: 10, Deadline: math.Inf(1)}
	}
	in := &Instance{Graph: g, Workload: &msvc.Workload{Catalog: cat, Requests: reqs}, Lambda: 0.5, Budget: 1e4}
	p := NewPlacement(1, 2)
	p.Set(a, 1, true) // everyone crosses the link both ways

	cc := ContentionConfig{SlotSeconds: 10} // capacity 10 GB/slot vs 200 GB traffic
	rep := in.EvaluateWithContention(p, RouteModeOptimal, 0, cc)
	if rep.Congested != 1 {
		t.Fatalf("Congested = %d, want 1", rep.Congested)
	}
	u := rep.Utilization[[2]int{0, 1}]
	if math.Abs(u-20) > 1e-9 { // 200 GB / (1 GB/s · 10 s)
		t.Fatalf("utilization = %v, want 20", u)
	}
	if rep.LatencySumContended <= rep.LatencySum {
		t.Fatalf("contention did not slow transfers: %v vs %v", rep.LatencySumContended, rep.LatencySum)
	}
	if rep.ObjectiveContended <= rep.Objective {
		t.Fatal("contended objective should exceed idle objective")
	}
}

func TestContentionDefaultsApplied(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 0, true)
	p.Set(1, 1, true)
	rep := in.EvaluateWithContention(p, RouteModeOptimal, 0, ContentionConfig{})
	if rep == nil || rep.Utilization == nil {
		t.Fatal("nil report")
	}
}

func TestContentionCloudRequestsCarryNoEdgeTraffic(t *testing.T) {
	in := tinyInstance(t)
	in.Cloud = &CloudConfig{TransferCost: 0.5, Compute: 100}
	p := NewPlacement(2, 4)
	p.Set(0, 0, true) // service b only in the cloud
	rep := in.EvaluateWithContention(p, RouteModeOptimal, 0, DefaultContentionConfig())
	// Request 0 is cloud-served: it must not appear in link utilization.
	// Request 1 (single service a at node 0, home 3) does cross links.
	if rep.CloudServed != 1 {
		t.Fatalf("CloudServed = %d", rep.CloudServed)
	}
	if math.IsInf(rep.LatencySumContended, 1) {
		t.Fatal("contended latency infinite despite cloud fallback")
	}
}
