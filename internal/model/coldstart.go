package model

// ColdStartModel adds the serverless cold-start penalty to the analytic
// completion-time model (Eq. 2): a chain step executing on a *cold* instance
// pays Delay extra seconds on top of its compute time q/c. Package cluster
// already charges cold starts at the discrete-event fidelity level; this
// model is its closed-form counterpart, so the long-running daemon
// (internal/serve) can price scale-to-zero decisions without replaying an
// event timeline.
//
// The model is an overlay: Instance.ColdStart == nil — the default
// everywhere — leaves every completion time bitwise identical to the legacy
// expression (pinned by TestColdStartNilBitwise). Which instances are cold is
// mutable state (SetCold/SyncWarm); every effective change bumps Epoch so the
// DeltaEvaluator can detect a stale binding, exactly like the
// PlacementIndex epoch discipline.
type ColdStartModel struct {
	// Delay is the extra completion time (seconds) a chain step pays when it
	// executes on a cold instance. A zero Delay keeps results bitwise
	// identical to ColdStart == nil (0 added as a separate term is exact).
	Delay float64

	cold  [][]bool
	count int
	epoch uint64
}

// NewColdStartModel returns an all-warm model for m services over v nodes.
func NewColdStartModel(m, v int, delay float64) *ColdStartModel {
	c := &ColdStartModel{Delay: delay, cold: make([][]bool, m)}
	for i := range c.cold {
		c.cold[i] = make([]bool, v)
	}
	return c
}

// Epoch is a monotonic counter bumped on every effective cold-set change.
// Evaluators that cache routes under this model stamp the epoch at bind time
// and must fail loudly when it moves (DeltaEvaluator does).
func (c *ColdStartModel) Epoch() uint64 { return c.epoch }

// IsCold reports whether (svc, node) is currently cold.
func (c *ColdStartModel) IsCold(svc, node int) bool { return c.cold[svc][node] }

// ColdCount returns the number of cold coordinates.
func (c *ColdStartModel) ColdCount() int { return c.count }

// SetCold marks (svc, node) cold or warm. Setting the value already held is
// a no-op that does not bump the epoch.
func (c *ColdStartModel) SetCold(svc, node int, cold bool) {
	if c.cold[svc][node] == cold {
		return
	}
	c.cold[svc][node] = cold
	if cold {
		c.count++
	} else {
		c.count--
	}
	c.epoch++
}

// SyncWarm derives the cold set from a placement: every deployed instance is
// warm, every undeployed coordinate cold (it would start cold if deployed
// this epoch). This is the daemon's epoch-boundary rule — instances added
// during an epoch stay cold until the next boundary. Returns the number of
// coordinates that changed; the epoch bumps once if any did.
func (c *ColdStartModel) SyncWarm(p Placement) int {
	changed := 0
	for i := range c.cold {
		for k := range c.cold[i] {
			want := !p.Has(i, k)
			if c.cold[i][k] == want {
				continue
			}
			c.cold[i][k] = want
			if want {
				c.count++
			} else {
				c.count--
			}
			changed++
		}
	}
	if changed > 0 {
		c.epoch++
	}
	return changed
}

// stepTime is the compute term of Eq. 2 for chain service svc on node k —
// q_i / c_k — plus the cold-start delay when a ColdStartModel marks the
// instance cold. With ColdStart == nil the expression reduces to exactly the
// legacy term, so every pre-serverless result stays bitwise unchanged.
func (in *Instance) stepTime(svc, k int) float64 {
	d := in.Workload.Catalog.Service(svc).Compute / in.Graph.Node(k).Compute
	if in.ColdStart != nil && in.ColdStart.IsCold(svc, k) {
		d += in.ColdStart.Delay
	}
	return d
}
