package model

import (
	"strings"
	"testing"
)

// TestColdStartNilBitwise pins the acceptance criterion of the serverless
// extension: a zero cold-start configuration leaves every evaluation byte
// identical to the legacy model. Both neutral configurations are pinned —
// Delay = 0 with a non-empty cold set, and Delay > 0 with an all-warm set —
// against ColdStart == nil, under all three routing modes.
func TestColdStartNilBitwise(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := randomInstance(seed, 8, 12)
		p := randomPlacement(in, seed+1)
		for _, mode := range []RoutingMode{RouteModeOptimal, RouteModeGreedy, RouteModeRandom} {
			want := in.EvaluateRouted(p, mode, seed)

			zero := NewColdStartModel(in.M(), in.V(), 0)
			zero.SyncWarm(NewPlacement(in.M(), in.V())) // everything cold, but Delay = 0
			in.ColdStart = zero
			got := in.EvaluateRouted(p, mode, seed)
			assertEvalIdentical(t, "zero-delay/"+mode.String(), got, want)

			warm := NewColdStartModel(in.M(), in.V(), 2.5)
			warm.SyncWarm(p) // deployed instances warm; cold ones are never routed to...
			in.ColdStart = warm
			got = in.EvaluateRouted(p, mode, seed)
			assertEvalIdentical(t, "all-warm/"+mode.String(), got, want)

			in.ColdStart = nil
		}
	}
}

// TestColdStartAddsDelay forces a single-candidate route (one instance per
// service) and checks the cold term is charged exactly once per cold chain
// step: marking every deployed instance cold must raise each served request's
// completion time by exactly len(chain)·Delay.
func TestColdStartAddsDelay(t *testing.T) {
	in := randomInstance(7, 8, 12)
	p := NewPlacement(in.M(), in.V())
	for i := 0; i < in.M(); i++ {
		p.Set(i, i%in.V(), true) // exactly one instance per service
	}
	base := in.EvaluateRouted(p, RouteModeOptimal, 0)

	const delay = 3.25
	cs := NewColdStartModel(in.M(), in.V(), delay)
	for i := 0; i < in.M(); i++ {
		cs.SetCold(i, i%in.V(), true)
	}
	in.ColdStart = cs
	defer func() { in.ColdStart = nil }()
	cold := in.EvaluateRouted(p, RouteModeOptimal, 0)

	for h := range in.Workload.Requests {
		if base.Routes[h].Nodes == nil || cold.Routes[h].Nodes == nil {
			continue // unserved either way
		}
		wantLat := base.Latencies[h] + float64(len(in.Workload.Requests[h].Chain))*delay
		// The delay accrues inside the step-by-step summation, so the
		// comparison is epsilon-exact, not bitwise.
		if diff := cold.Latencies[h] - wantLat; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("request %d: cold latency %v, want base %v + %d·%v = %v",
				h, cold.Latencies[h], base.Latencies[h], len(in.Workload.Requests[h].Chain), delay, wantLat)
		}
	}
	if cold.LatencySum <= base.LatencySum {
		t.Fatalf("cold latency sum %v not above warm %v", cold.LatencySum, base.LatencySum)
	}
}

// TestColdStartEpoch checks the mutation-tracking contract SetCold/SyncWarm
// promise to evaluator bindings.
func TestColdStartEpoch(t *testing.T) {
	cs := NewColdStartModel(3, 4, 1)
	if cs.Epoch() != 0 || cs.ColdCount() != 0 {
		t.Fatalf("fresh model: epoch %d count %d", cs.Epoch(), cs.ColdCount())
	}
	cs.SetCold(1, 2, true)
	if cs.Epoch() != 1 || cs.ColdCount() != 1 || !cs.IsCold(1, 2) {
		t.Fatalf("after SetCold: epoch %d count %d", cs.Epoch(), cs.ColdCount())
	}
	cs.SetCold(1, 2, true) // no-op must not bump
	if cs.Epoch() != 1 {
		t.Fatalf("no-op SetCold bumped epoch to %d", cs.Epoch())
	}
	p := NewPlacement(3, 4)
	p.Set(0, 0, true)
	if changed := cs.SyncWarm(p); changed != 12-1-1 { // all but (0,0) cold; (1,2) already was
		t.Fatalf("SyncWarm changed %d coordinates", changed)
	}
	if cs.ColdCount() != 11 || cs.IsCold(0, 0) || cs.Epoch() != 2 {
		t.Fatalf("after SyncWarm: count %d epoch %d", cs.ColdCount(), cs.Epoch())
	}
	if cs.SyncWarm(p) != 0 || cs.Epoch() != 2 {
		t.Fatalf("idempotent SyncWarm bumped epoch to %d", cs.Epoch())
	}
}

// TestDeltaEvaluatorColdStart checks (a) the delta engine stays bit-identical
// to the scratch evaluator when a cold-start model is active, and (b) a
// cold-set mutation behind the evaluator's back panics like an index-epoch
// drift, and Rebind re-adopts the new cold set.
func TestDeltaEvaluatorColdStart(t *testing.T) {
	in := randomInstance(11, 8, 12)
	p := randomPlacement(in, 12)
	cs := NewColdStartModel(in.M(), in.V(), 1.75)
	cs.SyncWarm(NewPlacement(in.M(), in.V())) // everything cold: the term is live on every route
	in.ColdStart = cs
	defer func() { in.ColdStart = nil }()

	de := NewDeltaEvaluator(in, p.Clone(), RouteModeOptimal, 0)
	assertEvalIdentical(t, "cold/initial", de.Eval(), in.EvaluateRouted(de.Placement(), RouteModeOptimal, 0))
	dl := de.Apply(0, 0, !p.Has(0, 0))
	assertEvalIdentical(t, "cold/applied", de.Eval(), in.EvaluateRouted(de.Placement(), RouteModeOptimal, 0))
	de.Revert(dl)
	assertEvalIdentical(t, "cold/reverted", de.Eval(), in.EvaluateRouted(de.Placement(), RouteModeOptimal, 0))

	cs.SetCold(0, 0, false) // mutate the cold set behind the binding
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Eval after cold-set mutation did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "cold-start") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		de.Eval()
	}()

	de.Rebind(de.Placement())
	assertEvalIdentical(t, "cold/rebound", de.Eval(), in.EvaluateRouted(de.Placement(), RouteModeOptimal, 0))
}
