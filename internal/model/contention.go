package model

import (
	"math"
)

// ContentionConfig parameterizes the network-contention extension of the
// completion-time model. The paper's introduction motivates
// dependency-aware routing with "path conflicts and network contention";
// the base model (Eq. 2) prices each transfer at the idle link rate. This
// extension re-prices transfers after routing by sharing each link's
// capacity among the traffic that crosses it within a decision slot.
type ContentionConfig struct {
	// SlotSeconds is the decision-slot duration over which link capacity is
	// shared. A link with rate b carries b·SlotSeconds GB per slot at unit
	// utilization.
	SlotSeconds float64
}

// DefaultContentionConfig prices contention over a 5-minute slot.
func DefaultContentionConfig() ContentionConfig { return ContentionConfig{SlotSeconds: 300} }

// ContentionReport extends an Evaluation with link-level congestion data.
type ContentionReport struct {
	*Evaluation
	// Utilization maps each directed-free link key (min,max node ID) to
	// traffic divided by slot capacity. Values above 1 mean the link is
	// oversubscribed and its transfers were slowed proportionally.
	Utilization map[[2]int]float64
	// Congested is the number of links with utilization > 1.
	Congested int
	// LatencySumContended is Σ𝒟 after congestion re-pricing (≥ LatencySum).
	LatencySumContended float64
	// ObjectiveContended is the objective with the re-priced latency.
	ObjectiveContended float64
}

// EvaluateWithContention routes like EvaluateRouted, then computes per-link
// utilization from the chosen paths and re-prices every transfer leg by the
// factor max(1, utilization) of its bottleneck link. A second routing pass
// is intentionally not performed: the report prices the *chosen* routes, as
// a cluster would experience them.
func (in *Instance) EvaluateWithContention(p Placement, mode RoutingMode, seed int64, cc ContentionConfig) *ContentionReport {
	if cc.SlotSeconds <= 0 {
		cc.SlotSeconds = DefaultContentionConfig().SlotSeconds
	}
	ev := in.EvaluateRouted(p, mode, seed)
	rep := &ContentionReport{Evaluation: ev, Utilization: map[[2]int]float64{}}
	g := in.Graph

	// Pass 1: accumulate traffic per physical link.
	addPath := func(a, b int, gb float64) {
		if a == b || gb <= 0 {
			return
		}
		path := g.Path(a, b)
		for i := 1; i < len(path); i++ {
			rep.Utilization[linkKey(path[i-1], path[i])] += gb
		}
	}
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		route := ev.Routes[h]
		if len(route.Nodes) != len(req.Chain) {
			continue // cloud-served or missing: no edge traffic
		}
		addPath(req.Home, route.Nodes[0], req.DataIn)
		for t := 1; t < len(route.Nodes); t++ {
			addPath(route.Nodes[t-1], route.Nodes[t], req.EdgeData[t-1])
		}
		addPath(route.Nodes[len(route.Nodes)-1], req.Home, req.DataOut)
	}

	// Convert traffic to utilization.
	for key, gb := range rep.Utilization {
		rate, ok := g.LinkRate(key[0], key[1])
		if !ok || rate <= 0 {
			continue
		}
		u := gb / (rate * cc.SlotSeconds)
		rep.Utilization[key] = u
		if u > 1 {
			rep.Congested++
		}
	}

	// Pass 2: re-price each request's transfers by its bottleneck factor.
	slow := func(a, b int, gb float64) float64 {
		if a == b || gb <= 0 {
			return 0
		}
		base := g.TransferTime(a, b, gb)
		worst := 1.0
		path := g.Path(a, b)
		for i := 1; i < len(path); i++ {
			if u := rep.Utilization[linkKey(path[i-1], path[i])]; u > worst {
				worst = u
			}
		}
		return base * worst
	}
	rep.LatencySumContended = 0
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		route := ev.Routes[h]
		if len(route.Nodes) != len(req.Chain) {
			rep.LatencySumContended += ev.Latencies[h] // cloud/missing as-is
			continue
		}
		d := slow(req.Home, route.Nodes[0], req.DataIn)
		for t, k := range route.Nodes {
			d += in.stepTime(req.Chain[t], k)
			if t > 0 {
				d += slow(route.Nodes[t-1], k, req.EdgeData[t-1])
			}
		}
		// Egress keeps the min-hop pricing of the base model, scaled by the
		// bottleneck of the min-time path as an approximation.
		d += req.DataOut * g.HopPathCost(route.Nodes[len(route.Nodes)-1], req.Home)
		if math.IsInf(ev.Latencies[h], 1) {
			d = math.Inf(1)
		}
		rep.LatencySumContended += d
	}
	rep.ObjectiveContended = in.Objective(ev.Cost, rep.LatencySumContended)
	return rep
}

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
