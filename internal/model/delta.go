package model

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// This file is the reusable delta-evaluation engine: the generalization of
// the PR-1 combine machinery (PlacementIndex + per-request route cache) to
// every consumer of the exact evaluator. A DeltaEvaluator binds to one
// Instance and one Placement and answers Eval() — the exact Eq. 1–6
// evaluation, bit-identical to Instance.EvaluateRouted — while re-routing
// only the requests whose candidate sets a mutation could have changed:
//
//   - removing an instance (optimal/greedy routing) invalidates exactly the
//     cached routes that executed a chain step on it: shrinking a candidate
//     set around a still-available argmin cannot change that argmin, and the
//     DP/greedy tie-breaks (first minimum in ascending node order) are
//     stable under deletion of non-selected candidates;
//   - adding an instance invalidates every request whose chain contains the
//     service: a grown candidate set can strictly improve routes that never
//     touched the old nodes;
//   - random routing invalidates on any mutation of a chain service, because
//     the per-request stream indexes into the candidate list by position.
//
// The scalar fields of the returned Evaluation are *recomputed* per Eval —
// LatencySum as a fresh index-order pass over the latency vector, Cost via
// DeployCost, the constraint flags via CheckStorage/CheckBudget — so they are
// bitwise equal to a from-scratch evaluation, not approximately equal. Only
// routing, the dominant cost, is cached.
//
// Staleness is epoch-checked: the evaluator owns its PlacementIndex, stamps
// every mutation it performs, and panics if the index's Epoch moved without
// it — a placement write that bypassed Apply/Revert/AdvanceTo would silently
// poison the cache otherwise (the bug class the placementmut analyzer hunts
// statically).

// deltaRoute is one request's cached routing outcome under the bound
// placement. The class flags mirror EvaluateRouted's routeOne: exactly one
// of {routed (nodes/lat), cloud, missing} applies; valid=false means the
// entry must be re-routed before the next Eval reads it.
type deltaRoute struct {
	nodes   []int   // optimal/greedy/random assignment; nil when cloud, missing, or disconnected
	lat     float64 // completion time (may be +Inf for disconnected substrates)
	gen     uint64  // evalGen at last re-route; lets Revert spot probe-era entries
	cloud   bool    // served by the cloud fallback (ErrNoInstance + Cloud)
	missing bool    // ErrNoInstance with no cloud
	valid   bool
}

// routeSave is one saved cache entry inside a Delta undo record.
type routeSave struct {
	h int
	e deltaRoute
}

// affectedAlt pairs a request with its memoized probe latency during a
// ProbeRemoval merge-walk.
type affectedAlt struct {
	h   int
	lat float64
}

// excludeLister adapts the placement index to a counterfactual candidate
// view with one instance hidden, preserving ascending node order so the
// routing tie-breaks match an index with the bit actually cleared.
type excludeLister struct {
	ix        *PlacementIndex
	svc, node int
	buf       []int
}

func (x *excludeLister) NodesOf(s int) []int {
	ns := x.ix.NodesOf(s)
	if s != x.svc {
		return ns
	}
	x.buf = x.buf[:0]
	for _, k := range ns {
		if k != x.node {
			x.buf = append(x.buf, k)
		}
	}
	return x.buf
}

// Delta is the undo record of one Apply: reverting it restores both the
// placement bit and the cache entries the mutation invalidated, so an
// Apply → Eval → Revert probe leaves the evaluator exactly as it was — the
// pattern GC-OG's candidate search runs thousands of times per round.
// Outstanding deltas must be reverted in LIFO order.
type Delta struct {
	svc, node int
	val       bool
	noop      bool   // Apply found the bit already at val; nothing to undo
	gen       uint64 // evalGen at Apply; later-stamped entries were probe-routed
	saved     []routeSave
	reverted  bool
}

// DeltaEvaluator scores a sequence of adjacent placements incrementally.
// Not safe for concurrent use; Eval internally fans re-routing out over
// goroutines when the dirty set is large, mirroring EvaluateRouted.
type DeltaEvaluator struct {
	in   *Instance
	ix   *PlacementIndex
	mode RoutingMode
	seed int64

	epoch     uint64 // expected index epoch; any drift fails loudly
	cold      *ColdStartModel
	coldEpoch uint64       // expected cold-set epoch (cold != nil only)
	evalGen   uint64       // bumped per refresh; stamps recomputed entries
	routes    []deltaRoute // per-request cache
	chainReqs [][]int      // service → requests whose chain contains it
	scratch   *RouteScratch
	dirtyBuf  []int
	spare     []routeSave // recycled Delta backing storage

	// Removal-probe memo (ProbeRemoval): altLat[h][t] is request h's exact
	// completion time if the instance its route uses at chain step t were
	// removed. A row is valid while chainGen[h] — bumped on every placement
	// mutation of a service in h's chain — matches altGen[h]; entries fill
	// lazily. This is what lets GC-OG's candidate sweep skip re-routing for
	// every request whose chain the previous round's accepted move did not
	// touch.
	chainGen []uint64
	altGen   []uint64
	altLat   [][]float64
	altSet   [][]bool
	affBuf   []affectedAlt
	exclude  excludeLister
	kappa    []float64 // per-service deploy cost, mirrors Catalog lookups

	// Telemetry: cache hits vs re-routes across Eval calls.
	Hits, Recomputed int
}

// NewDeltaEvaluator binds an evaluator to in and p under the given routing
// mode (seed matters only for RouteModeRandom, with the same per-request
// stream derivation as EvaluateRouted). The placement is aliased: all
// further mutations must go through Apply/Revert/AdvanceTo or Rebind.
// Lambda and Budget may change on in between Evals — objective and
// constraint checks are recomputed fresh — but the graph and workload must
// not.
func NewDeltaEvaluator(in *Instance, p Placement, mode RoutingMode, seed int64) *DeltaEvaluator {
	d := &DeltaEvaluator{
		in:      in,
		ix:      NewPlacementIndex(p),
		mode:    mode,
		seed:    seed,
		scratch: &RouteScratch{},
	}
	d.epoch = d.ix.Epoch()
	d.cold = in.ColdStart
	if d.cold != nil {
		d.coldEpoch = d.cold.Epoch()
	}
	d.routes = make([]deltaRoute, len(in.Workload.Requests))
	d.chainGen = make([]uint64, len(in.Workload.Requests))
	d.chainReqs = make([][]int, in.M())
	d.kappa = make([]float64, in.M())
	for i := range d.kappa {
		d.kappa[i] = in.Workload.Catalog.Service(i).DeployCost
	}
	for h := range in.Workload.Requests {
		for t, svc := range in.Workload.Requests[h].Chain {
			dup := false
			for _, prev := range in.Workload.Requests[h].Chain[:t] {
				if prev == svc {
					dup = true
					break
				}
			}
			if !dup {
				d.chainReqs[svc] = append(d.chainReqs[svc], h)
			}
		}
	}
	return d
}

// Index exposes the underlying placement index (read-only use; mutating it
// directly desynchronizes the evaluator, which the next Eval reports).
func (d *DeltaEvaluator) Index() *PlacementIndex { return d.ix }

// Placement returns the bound placement (aliased, not a copy).
func (d *DeltaEvaluator) Placement() Placement { return d.ix.Placement() }

// checkEpoch panics when the index mutated behind the evaluator's back.
func (d *DeltaEvaluator) checkEpoch(op string) {
	if e := d.ix.Epoch(); e != d.epoch {
		panic(fmt.Sprintf("model: DeltaEvaluator %s on stale binding: index epoch %d, evaluator expected %d (placement mutated outside Apply/Revert/AdvanceTo)", op, e, d.epoch))
	}
	// Cached latencies embed the cold-start term, so a cold-set change (or a
	// ColdStart swap on the instance) silently stales every entry; fail as
	// loudly as an index drift. Rebind re-captures both.
	if d.in.ColdStart != d.cold {
		panic(fmt.Sprintf("model: DeltaEvaluator %s after Instance.ColdStart was swapped; Rebind to adopt the new model", op))
	}
	if d.cold != nil && d.cold.Epoch() != d.coldEpoch {
		panic(fmt.Sprintf("model: DeltaEvaluator %s on stale cold-start binding: cold epoch %d, evaluator expected %d (cold set mutated since bind; Rebind required)", op, d.cold.Epoch(), d.coldEpoch))
	}
}

// Apply sets x(svc,node)=val and returns the undo record. Applying a value
// the placement already holds is a no-op that still returns a (trivially
// revertible) delta. The mutation invalidates the affected cache entries per
// the rules in the file comment; each valid entry it invalidates is saved
// into the delta, so a Revert restores both placement and cache exactly.
func (d *DeltaEvaluator) Apply(svc, node int, val bool) *Delta {
	d.checkEpoch("Apply")
	dl := &Delta{svc: svc, node: node, val: val, gen: d.evalGen, saved: d.spare[:0]}
	d.spare = nil
	if d.ix.Has(svc, node) == val {
		dl.noop = true
		return dl // nothing saved, nothing invalidated
	}
	d.ix.Set(svc, node, val)
	d.epoch = d.ix.Epoch()
	d.invalidate(svc, node, val, dl)
	return dl
}

// Revert undoes a delta from Apply: the placement bit and all invalidated
// cache entries return to their pre-Apply state; entries that were already
// invalid at Apply time and got re-routed during the probe window (their gen
// outruns the delta's) are re-invalidated, since their content reflects the
// probe placement. Reverting twice panics; overlapping deltas must revert in
// LIFO order.
func (d *DeltaEvaluator) Revert(dl *Delta) {
	d.checkEpoch("Revert")
	if dl.reverted {
		panic("model: DeltaEvaluator.Revert called twice on the same delta")
	}
	dl.reverted = true
	if dl.noop {
		return
	}
	d.ix.Set(dl.svc, dl.node, !dl.val)
	d.epoch = d.ix.Epoch()
	for _, h := range d.chainReqs[dl.svc] {
		d.chainGen[h]++ // reverting is itself a mutation of svc's candidates
		if e := &d.routes[h]; e.gen > dl.gen {
			e.valid = false
		}
	}
	for _, sv := range dl.saved {
		d.routes[sv.h] = sv.e
	}
	d.spare = dl.saved[:0] // recycle the backing array for the next Apply
}

// invalidate applies the mode-specific invalidation rule for a single
// mutation of (svc, node), saving each previously-valid entry it flips into
// dl's undo record (dl == nil when the caller keeps none, e.g. AdvanceTo).
func (d *DeltaEvaluator) invalidate(svc, node int, added bool, dl *Delta) {
	if added || d.mode == RouteModeRandom {
		// Additions can improve any route over svc; random routing indexes
		// candidate lists by position, so any resize reshuffles the draws.
		for _, h := range d.chainReqs[svc] {
			d.chainGen[h]++ // drop probe memos: their candidate view is stale
			if e := &d.routes[h]; e.valid {
				if dl != nil {
					dl.saved = append(dl.saved, routeSave{h, *e})
				}
				e.valid = false
			}
		}
		return
	}
	// Removal under optimal/greedy: only routes that executed a step on the
	// removed instance can change (see the file comment for the tie-break
	// argument).
	for _, h := range d.chainReqs[svc] {
		d.chainGen[h]++ // drop probe memos: their candidate view is stale
		e := &d.routes[h]
		if !e.valid || e.nodes == nil {
			continue
		}
		chain := d.in.Workload.Requests[h].Chain
		for t, k := range e.nodes {
			if k == node && chain[t] == svc {
				if dl != nil {
					dl.saved = append(dl.saved, routeSave{h, *e})
				}
				e.valid = false
				break
			}
		}
	}
}

// AdvanceTo mutates the bound placement into p (diff-and-apply, no undo) and
// returns the number of instance bits changed. It is the sweep entry point:
// successive placements of a figure sweep share most of their instances, so
// the next Eval re-routes only requests whose services actually moved.
func (d *DeltaEvaluator) AdvanceTo(p Placement) int {
	d.checkEpoch("AdvanceTo")
	cur := d.ix.Placement()
	if len(p.X) != len(cur.X) {
		panic(fmt.Sprintf("model: DeltaEvaluator.AdvanceTo placement shape %d services != bound %d", len(p.X), len(cur.X)))
	}
	changed := 0
	for i := range p.X {
		for k := range p.X[i] {
			if cur.X[i][k] == p.X[i][k] {
				continue
			}
			val := p.X[i][k]
			d.ix.Set(i, k, val)
			d.invalidate(i, k, val, nil)
			changed++
		}
	}
	d.epoch = d.ix.Epoch()
	return changed
}

// Rebind points the evaluator at a (possibly different) placement and drops
// every cached route.
func (d *DeltaEvaluator) Rebind(p Placement) {
	d.ix.Rebind(p)
	d.epoch = d.ix.Epoch()
	d.cold = d.in.ColdStart
	if d.cold != nil {
		d.coldEpoch = d.cold.Epoch()
	}
	for h := range d.routes {
		d.routes[h] = deltaRoute{}
		d.chainGen[h]++
	}
}

// deltaParallelThreshold is the dirty-request count above which Eval's
// re-route fan-out goes parallel (same pattern and determinism argument as
// EvaluateRouted / combine's incremental deadline check).
const deltaParallelThreshold = 64

// rerouteOne refreshes request h's cache entry under the live placement.
func (d *DeltaEvaluator) rerouteOne(h int, sc *RouteScratch) {
	req := &d.in.Workload.Requests[h]
	var (
		a   Assignment
		lat float64
		err error
	)
	switch d.mode {
	case RouteModeGreedy:
		a, lat, err = d.in.routeGreedy(req, d.ix)
	case RouteModeRandom:
		// Independent per-request stream: identical to EvaluateRouted's.
		rng := rand.New(rand.NewSource(d.seed + int64(h)*0x9e3779b9))
		a, lat, err = d.in.routeRandom(req, d.ix, rng)
	default:
		a, lat, err = d.in.routeOptimal(req, d.ix, sc)
	}
	e := &d.routes[h]
	*e = deltaRoute{valid: true, gen: d.evalGen}
	switch {
	case err == nil:
		e.nodes, e.lat = a.Nodes, lat
	case IsNoInstance(err) && d.in.Cloud != nil:
		// Sentinel discipline as everywhere: only ErrNoInstance is eligible
		// for the cloud fallback; any other error counts as missing.
		e.cloud = true
		e.lat = d.in.Cloud.CloudCompletionTime(d.in.Workload.Catalog, req)
	default:
		e.missing = true
		e.lat = math.Inf(1)
	}
}

// refresh re-routes every invalidated cache entry under the live placement,
// stamping the new entries with a fresh generation.
func (d *DeltaEvaluator) refresh() {
	d.evalGen++
	dirty := d.dirtyBuf[:0]
	for h := range d.routes {
		if !d.routes[h].valid {
			dirty = append(dirty, h)
		}
	}
	d.dirtyBuf = dirty
	d.Recomputed += len(dirty)
	d.Hits += len(d.routes) - len(dirty)

	if len(dirty) >= deltaParallelThreshold && runtime.GOMAXPROCS(0) > 1 {
		d.ix.Prewarm() // concurrent NodesOf reads must not rebuild
		workers := runtime.GOMAXPROCS(0)
		chunk := (len(dirty) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(dirty) {
				hi = len(dirty)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				sc := &RouteScratch{}
				for _, h := range dirty[lo:hi] {
					d.rerouteOne(h, sc)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for _, h := range dirty {
			d.rerouteOne(h, d.scratch)
		}
	}
}

// EvalObjective is the probe-loop fast path: the exact objective (Eq. 3/8)
// and budget flag of the bound placement, bit-identical to the same fields
// of Eval, without materializing the full Evaluation. Search loops that
// compare thousands of candidates per round (GC-OG) only consume these two
// scalars, so skipping the per-request Routes/Latencies assembly removes the
// dominant allocation from the hot path.
func (d *DeltaEvaluator) EvalObjective() (objective float64, overBudget bool) {
	d.checkEpoch("EvalObjective")
	d.refresh()
	p := d.ix.Placement()
	cost := d.in.DeployCost(p)
	latSum := 0.0
	for h := range d.routes {
		latSum += d.routes[h].lat
	}
	objective = d.in.Objective(cost, latSum)
	overBudget = !(cost <= d.in.Budget+FeasTol)
	d.selfCheckDeltaScalars(objective, overBudget)
	return objective, overBudget
}

// ProbeRemoval answers "what would the exact objective be with x(svc,node)
// cleared?" without mutating the binding — bit-identical to an
// Apply → EvalObjective → Revert round-trip. Under optimal/greedy routing the
// only requests whose routes can change are those currently executing a step
// on the probed instance; their counterfactual latencies are memoized in
// altLat and survive until some service in their chain actually mutates, so
// a GC-OG candidate sweep pays re-routing only for requests the previous
// accepted move touched. Random-mode probes fall back to the mutate-and-
// revert path, whose per-request streams have no removal locality to
// exploit.
func (d *DeltaEvaluator) ProbeRemoval(svc, node int) (objective float64, overBudget bool) {
	d.checkEpoch("ProbeRemoval")
	if !d.ix.Has(svc, node) || d.mode == RouteModeRandom {
		if d.ix.Has(svc, node) {
			dl := d.Apply(svc, node, false)
			objective, overBudget = d.EvalObjective()
			d.Revert(dl)
			return objective, overBudget
		}
		return d.EvalObjective() // removing an absent instance is the identity
	}
	d.refresh()
	if d.altLat == nil {
		reqs := d.in.Workload.Requests
		d.altGen = make([]uint64, len(reqs))
		d.altLat = make([][]float64, len(reqs))
		d.altSet = make([][]bool, len(reqs))
		for h := range reqs {
			d.altLat[h] = make([]float64, len(reqs[h].Chain))
			d.altSet[h] = make([]bool, len(reqs[h].Chain))
			d.altGen[h] = d.chainGen[h] - 1 // force a reset on first touch
		}
	}

	// Collect the affected requests (chainReqs is ascending in h, so the
	// buffer is sorted for the merge below) and their memoized-or-computed
	// counterfactual latencies.
	aff := d.affBuf[:0]
	for _, h := range d.chainReqs[svc] {
		e := &d.routes[h]
		if e.nodes == nil {
			continue // cloud/missing/disconnected: removal cannot affect it
		}
		chain := d.in.Workload.Requests[h].Chain
		t0 := -1
		for t, k := range e.nodes {
			if k == node && chain[t] == svc {
				t0 = t
				break
			}
		}
		if t0 == -1 {
			continue
		}
		if d.altGen[h] != d.chainGen[h] {
			for t := range d.altSet[h] {
				d.altSet[h][t] = false
			}
			d.altGen[h] = d.chainGen[h]
		}
		if !d.altSet[h][t0] {
			d.altLat[h][t0] = d.probeLat(h, svc, node)
			d.altSet[h][t0] = true
		}
		aff = append(aff, affectedAlt{h, d.altLat[h][t0]})
	}
	d.affBuf = aff

	// Merge-walk: identical summation order and values as EvalObjective on
	// the mutated placement, hence a bitwise-identical LatencySum.
	latSum := 0.0
	ai := 0
	for h := range d.routes {
		if ai < len(aff) && aff[ai].h == h {
			latSum += aff[ai].lat
			ai++
		} else {
			latSum += d.routes[h].lat
		}
	}
	cost := d.deployCostExcluding(svc, node)
	objective = d.in.Objective(cost, latSum)
	overBudget = !(cost <= d.in.Budget+FeasTol)
	d.selfCheckProbe(svc, node, objective, overBudget)
	return objective, overBudget
}

// probeLat routes request h against the candidate view with (svc,node)
// hidden and returns its completion time, classified exactly as rerouteOne
// would under a placement with the bit cleared.
func (d *DeltaEvaluator) probeLat(h, svc, node int) float64 {
	req := &d.in.Workload.Requests[h]
	d.exclude = excludeLister{ix: d.ix, svc: svc, node: node, buf: d.exclude.buf}
	var (
		lat float64
		err error
	)
	if d.mode == RouteModeGreedy {
		_, lat, err = d.in.routeGreedy(req, &d.exclude)
	} else {
		lat, err = d.in.routeOptimalLat(req, &d.exclude, d.scratch)
	}
	switch {
	case err == nil:
		return lat
	case IsNoInstance(err) && d.in.Cloud != nil:
		return d.in.Cloud.CloudCompletionTime(d.in.Workload.Catalog, req)
	default:
		return math.Inf(1)
	}
}

// deployCostExcluding mirrors Instance.DeployCost's exact iteration order
// with one instance skipped, so the partial sums — and therefore the result
// — are bitwise what DeployCost would return on the placement with the bit
// cleared.
func (d *DeltaEvaluator) deployCostExcluding(svc, node int) float64 {
	p := d.ix.Placement()
	cost := 0.0
	for i := range p.X {
		kappa := d.kappa[i]
		for k, on := range p.X[i] {
			if on && !(i == svc && k == node) {
				cost += kappa
			}
		}
	}
	return cost
}

// Eval returns the exact evaluation of the bound placement — bit-identical
// to in.EvaluateRouted(Placement(), mode, seed) — re-routing only requests
// invalidated since the previous Eval. The returned Evaluation's Routes
// share node slices with the cache; they stay correct until the next
// mutation through the evaluator (re-routes install fresh slices, never
// mutate published ones).
func (d *DeltaEvaluator) Eval() *Evaluation {
	d.checkEpoch("Eval")
	reqs := d.in.Workload.Requests
	d.refresh()

	p := d.ix.Placement()
	ev := &Evaluation{
		Placement:         p,
		Routes:            make([]Assignment, len(reqs)),
		Latencies:         make([]float64, len(reqs)),
		Cost:              d.in.DeployCost(p),
		StorageViolatedAt: d.in.CheckStorage(p),
	}
	ev.OverBudget = !d.in.CheckBudget(p)
	for h := range reqs {
		e := &d.routes[h]
		ev.Latencies[h] = e.lat
		switch {
		case e.missing:
			ev.MissingInstances++
		case e.cloud:
			ev.CloudServed++
			if e.lat > reqs[h].Deadline+FeasTol {
				ev.DeadlineViolated++
			}
		default:
			ev.Routes[h] = Assignment{Nodes: e.nodes}
			if math.IsInf(e.lat, 1) {
				// Routed without the sentinel yet +Inf: instances exist but
				// every candidate chain is disconnected (same class split as
				// EvaluateRouted's routeOne).
				ev.Unroutable++
			}
			if e.lat > reqs[h].Deadline+FeasTol {
				ev.DeadlineViolated++
			}
		}
	}
	// Fresh index-order sum: bitwise equal to EvaluateRouted's.
	ev.LatencySum = 0
	for _, lat := range ev.Latencies {
		ev.LatencySum += lat
	}
	ev.Objective = d.in.Objective(ev.Cost, ev.LatencySum)
	d.selfCheckDelta(ev)
	return ev
}
