package model

import "fmt"

// selfCheckDelta revalidates a DeltaEvaluator evaluation against a scratch
// EvaluateRouted of the same placement — the runtime proof of the engine's
// central claim that cache hits are exact, not approximate. Armed by the
// `soclinvariants` build tag (invariantsEnabled), free otherwise. Because
// every delta consumer funnels through Eval, arming this single check covers
// GC-OG's per-round candidate probes and the figure sweeps alike.
func (d *DeltaEvaluator) selfCheckDelta(ev *Evaluation) {
	if !invariantsEnabled {
		return
	}
	if err := d.ix.CheckCoherent(); err != nil {
		panic("model: delta eval: " + err.Error())
	}
	fresh := d.in.EvaluateRouted(d.ix.Placement(), d.mode, d.seed)
	if !almostEq(ev.Objective, fresh.Objective, 0) ||
		!almostEq(ev.LatencySum, fresh.LatencySum, 0) ||
		!almostEq(ev.Cost, fresh.Cost, 0) {
		panic(fmt.Sprintf("model: delta eval scalars diverge from scratch evaluation: objective %v vs %v, latency %v vs %v, cost %v vs %v",
			ev.Objective, fresh.Objective, ev.LatencySum, fresh.LatencySum, ev.Cost, fresh.Cost))
	}
	if ev.MissingInstances != fresh.MissingInstances ||
		ev.Unroutable != fresh.Unroutable ||
		ev.CloudServed != fresh.CloudServed ||
		ev.DeadlineViolated != fresh.DeadlineViolated ||
		ev.StorageViolatedAt != fresh.StorageViolatedAt ||
		ev.OverBudget != fresh.OverBudget {
		panic(fmt.Sprintf("model: delta eval counters diverge from scratch evaluation: %+v vs %+v", countersOf(ev), countersOf(fresh)))
	}
	for h := range ev.Routes {
		if !almostEq(ev.Latencies[h], fresh.Latencies[h], 0) {
			panic(fmt.Sprintf("model: delta eval request %d latency %v != scratch %v", h, ev.Latencies[h], fresh.Latencies[h]))
		}
		a, b := ev.Routes[h].Nodes, fresh.Routes[h].Nodes
		if len(a) != len(b) {
			panic(fmt.Sprintf("model: delta eval request %d route %v != scratch %v", h, a, b))
		}
		for t := range a {
			if a[t] != b[t] {
				panic(fmt.Sprintf("model: delta eval request %d route %v != scratch %v", h, a, b))
			}
		}
	}
}

// selfCheckDeltaScalars is the EvalObjective counterpart: the fast path's
// two outputs must match a scratch evaluation exactly.
func (d *DeltaEvaluator) selfCheckDeltaScalars(objective float64, overBudget bool) {
	if !invariantsEnabled {
		return
	}
	fresh := d.in.EvaluateRouted(d.ix.Placement(), d.mode, d.seed)
	if !almostEq(objective, fresh.Objective, 0) || overBudget != fresh.OverBudget {
		panic(fmt.Sprintf("model: delta EvalObjective diverges from scratch evaluation: objective %v vs %v, overBudget %v vs %v",
			objective, fresh.Objective, overBudget, fresh.OverBudget))
	}
}

// selfCheckProbe revalidates a memoized ProbeRemoval against a scratch
// evaluation of the counterfactual placement.
func (d *DeltaEvaluator) selfCheckProbe(svc, node int, objective float64, overBudget bool) {
	if !invariantsEnabled {
		return
	}
	probe := d.ix.Placement().Clone()
	probe.Set(svc, node, false)
	fresh := d.in.EvaluateRouted(probe, d.mode, d.seed)
	if !almostEq(objective, fresh.Objective, 0) || overBudget != fresh.OverBudget {
		panic(fmt.Sprintf("model: ProbeRemoval(%d,%d) diverges from scratch evaluation: objective %v vs %v, overBudget %v vs %v",
			svc, node, objective, fresh.Objective, overBudget, fresh.OverBudget))
	}
}

// countersOf extracts the violation counters for diagnostics.
func countersOf(ev *Evaluation) [6]int {
	over := 0
	if ev.OverBudget {
		over = 1
	}
	return [6]int{ev.MissingInstances, ev.Unroutable, ev.CloudServed, ev.DeadlineViolated, ev.StorageViolatedAt, over}
}
