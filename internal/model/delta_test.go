package model

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// assertEvalIdentical compares a delta evaluation against a from-scratch one
// bit for bit: scalars, counters, per-request latencies and assignments.
func assertEvalIdentical(t *testing.T, label string, got, want *Evaluation) {
	t.Helper()
	//socllint:ignore floateq the engine's contract is bitwise equality with the scratch evaluator, not approximation
	if got.Objective != want.Objective || got.LatencySum != want.LatencySum || got.Cost != want.Cost {
		t.Fatalf("%s: scalars diverge: objective %v/%v latency %v/%v cost %v/%v",
			label, got.Objective, want.Objective, got.LatencySum, want.LatencySum, got.Cost, want.Cost)
	}
	if got.MissingInstances != want.MissingInstances || got.CloudServed != want.CloudServed ||
		got.DeadlineViolated != want.DeadlineViolated || got.StorageViolatedAt != want.StorageViolatedAt ||
		got.OverBudget != want.OverBudget {
		t.Fatalf("%s: counters diverge: %+v vs %+v", label, countersOf(got), countersOf(want))
	}
	for h := range want.Routes {
		gl, wl := got.Latencies[h], want.Latencies[h]
		if gl != wl && !(math.IsInf(gl, 1) && math.IsInf(wl, 1)) {
			t.Fatalf("%s: request %d latency %v != %v", label, h, gl, wl)
		}
		a, b := got.Routes[h].Nodes, want.Routes[h].Nodes
		if len(a) != len(b) {
			t.Fatalf("%s: request %d route %v != %v", label, h, a, b)
		}
		for s := range a {
			if a[s] != b[s] {
				t.Fatalf("%s: request %d route %v != %v", label, h, a, b)
			}
		}
	}
}

// TestDeltaEvaluatorMatchesEvaluateRouted walks seeded random mutation
// sequences — removals, additions, probe-style apply/eval/revert — under all
// three routing modes and asserts every Eval is bit-identical to evaluating
// the live placement from scratch.
func TestDeltaEvaluatorMatchesEvaluateRouted(t *testing.T) {
	modes := []RoutingMode{RouteModeOptimal, RouteModeGreedy, RouteModeRandom}
	for _, mode := range modes {
		for seed := int64(1); seed <= 3; seed++ {
			in := indexTestInstance(t, 9, 40, seed)
			p := densePlacement(in, seed)
			de := NewDeltaEvaluator(in, p.Clone(), mode, seed)
			r := stats.NewRand(stats.SplitSeed(seed, "delta-walk/"+mode.String()))

			check := func(label string) {
				got := de.Eval()
				want := in.EvaluateRouted(de.Placement(), mode, seed)
				assertEvalIdentical(t, mode.String()+"/"+label, got, want)
			}
			check("initial")
			for step := 0; step < 30; step++ {
				svc := r.Intn(in.M())
				k := r.Intn(in.V())
				switch step % 3 {
				case 0: // permanent flip
					de.Apply(svc, k, !de.Placement().Has(svc, k))
					check("flip")
				case 1: // removal probe with revert, as GC-OG runs it
					nodes := de.Placement().NodesOf(svc)
					if len(nodes) == 0 {
						continue
					}
					before := de.Eval()
					dl := de.Apply(svc, nodes[r.Intn(len(nodes))], false)
					check("probe")
					de.Revert(dl)
					check("reverted")
					after := de.Eval()
					assertEvalIdentical(t, mode.String()+"/revert-roundtrip", after, before)
				case 2: // addition
					de.Apply(svc, k, true)
					check("add")
				}
			}
		}
	}
}

// TestDeltaEvaluatorAdvanceTo drives the sweep entry point: jumping between
// unrelated placements must still evaluate exactly, and a jump to an
// adjacent placement must not re-route untouched requests.
func TestDeltaEvaluatorAdvanceTo(t *testing.T) {
	in := indexTestInstance(t, 10, 50, 3)
	a := densePlacement(in, 3)
	b := densePlacement(in, 7)
	de := NewDeltaEvaluator(in, a.Clone(), RouteModeOptimal, 0)
	de.Eval()

	if changed := de.AdvanceTo(b); changed == 0 {
		t.Fatal("distinct placements advanced with zero changes")
	}
	assertEvalIdentical(t, "jump", de.Eval(), in.EvaluateRouted(b, RouteModeOptimal, 0))

	// Adjacent step: flip one instance of one service; only its users may be
	// re-routed.
	c := b.Clone()
	var svc int
	for svc = 0; svc < in.M(); svc++ {
		if c.Count(svc) > 1 {
			break
		}
	}
	c.Set(svc, c.NodesOf(svc)[0], false)
	recomputedBefore := de.Recomputed
	de.AdvanceTo(c)
	assertEvalIdentical(t, "adjacent", de.Eval(), in.EvaluateRouted(c, RouteModeOptimal, 0))
	if delta := de.Recomputed - recomputedBefore; delta > len(in.Workload.Requests)/2 {
		t.Fatalf("adjacent advance re-routed %d of %d requests; expected a minority",
			delta, len(in.Workload.Requests))
	}
}

// TestDeltaEvaluatorStaleBindingPanics proves the epoch contract: a
// placement mutation that bypasses the evaluator must make the next Eval
// fail loudly instead of serving stale routes.
func TestDeltaEvaluatorStaleBindingPanics(t *testing.T) {
	in := indexTestInstance(t, 6, 20, 1)
	de := NewDeltaEvaluator(in, densePlacement(in, 1), RouteModeOptimal, 0)
	de.Eval()
	de.Index().Set(0, 0, !de.Placement().Has(0, 0)) // behind the evaluator's back
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Eval on a stale binding did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "stale binding") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	de.Eval()
}

// TestDeltaEvaluatorCloudAndMissing exercises the fallback classes: removing
// a service's last instance must flip its users to cloud-served (with the
// fallback) or missing (without), exactly as the scratch evaluator counts.
func TestDeltaEvaluatorCloudAndMissing(t *testing.T) {
	for _, withCloud := range []bool{false, true} {
		in := indexTestInstance(t, 8, 30, 2)
		if withCloud {
			cc := DefaultCloudConfig()
			in.Cloud = &cc
		}
		p := densePlacement(in, 2)
		de := NewDeltaEvaluator(in, p.Clone(), RouteModeOptimal, 0)
		de.Eval()
		// Remove every instance of the first used service.
		svc := in.Workload.Requests[0].Chain[0]
		for _, k := range append([]int(nil), de.Placement().NodesOf(svc)...) {
			de.Apply(svc, k, false)
		}
		got := de.Eval()
		want := in.EvaluateRouted(de.Placement(), RouteModeOptimal, 0)
		assertEvalIdentical(t, "last-instance", got, want)
		if withCloud && got.CloudServed == 0 {
			t.Fatal("cloud fallback configured but no request cloud-served")
		}
		if !withCloud && got.MissingInstances == 0 {
			t.Fatal("no cloud fallback but no request counted missing")
		}
	}
}

// TestDeltaEvaluatorRevertTwicePanics documents the delta lifecycle.
func TestDeltaEvaluatorRevertTwicePanics(t *testing.T) {
	in := indexTestInstance(t, 6, 20, 1)
	de := NewDeltaEvaluator(in, densePlacement(in, 1), RouteModeOptimal, 0)
	dl := de.Apply(0, 0, !de.Placement().Has(0, 0))
	de.Revert(dl)
	defer func() {
		if recover() == nil {
			t.Fatal("double Revert did not panic")
		}
	}()
	de.Revert(dl)
}
