package model

// PlacementDiff compares two placements over the same (services × nodes)
// shape and returns the number of instances present only in next (added)
// and only in prev (removed). Mismatched shapes count every out-of-range
// instance as a change, so diffs against a zero-value placement behave
// sensibly.
func PlacementDiff(prev, next Placement) (added, removed int) {
	maxSvc := len(prev.X)
	if len(next.X) > maxSvc {
		maxSvc = len(next.X)
	}
	for i := 0; i < maxSvc; i++ {
		maxNode := 0
		if i < len(prev.X) && len(prev.X[i]) > maxNode {
			maxNode = len(prev.X[i])
		}
		if i < len(next.X) && len(next.X[i]) > maxNode {
			maxNode = len(next.X[i])
		}
		for k := 0; k < maxNode; k++ {
			p := i < len(prev.X) && k < len(prev.X[i]) && prev.X[i][k]
			n := i < len(next.X) && k < len(next.X[i]) && next.X[i][k]
			switch {
			case n && !p:
				added++
			case p && !n:
				removed++
			}
		}
	}
	return added, removed
}
