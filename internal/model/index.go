package model

import "fmt"

// PlacementIndex wraps a Placement with cached per-service candidate node
// lists and reusable routing scratch space. It is the read side of the
// incremental routing engine: Placement.NodesOf allocates and scans the full
// node row on every call, which dominates the combine hot path where the
// same candidate lists are consulted thousands of times between mutations.
// The index rebuilds a service's list lazily after a mutation through Set
// (or a wholesale Rebind), so unchanged services cost a slice read.
//
// Concurrency: NodesOf lazily rebuilds dirty entries, so concurrent readers
// must call Prewarm first (or otherwise guarantee no entry is dirty); after
// that, reads are safe from any number of goroutines as long as no mutation
// runs. Returned slices are owned by the index: they are valid until the
// service's next invalidation and must not be modified.
type PlacementIndex struct {
	p     Placement
	nodes [][]int
	dirty []bool
	// epoch counts mutations observed through the index (Set, Rebind). It
	// lets invariant checkers and long-lived consumers detect staleness in
	// O(1): a cached artifact stamped with Epoch() e is coherent with the
	// index iff Epoch() still equals e — *provided* every placement write
	// went through the index, which the placementmut analyzer enforces.
	epoch uint64
}

// NewPlacementIndex builds an index over p. The index aliases p's backing
// arrays: mutations must go through the index's Set (or be followed by
// Rebind) so the cache stays coherent.
func NewPlacementIndex(p Placement) *PlacementIndex {
	m := len(p.X)
	ix := &PlacementIndex{
		p:     p,
		nodes: make([][]int, m),
		dirty: make([]bool, m),
	}
	for i := range ix.dirty {
		ix.dirty[i] = true
	}
	return ix
}

// Placement returns the underlying placement.
func (ix *PlacementIndex) Placement() Placement { return ix.p }

// Rebind points the index at a (possibly different) placement and
// invalidates every cached list. Used after snapshot restores, where the
// placement is replaced wholesale.
func (ix *PlacementIndex) Rebind(p Placement) {
	ix.p = p
	if len(p.X) != len(ix.nodes) {
		ix.nodes = make([][]int, len(p.X))
		ix.dirty = make([]bool, len(p.X))
	}
	for i := range ix.dirty {
		ix.dirty[i] = true
	}
	ix.epoch++
}

// Set deploys (or removes) service i on node k and invalidates i's list.
func (ix *PlacementIndex) Set(i, k int, val bool) {
	ix.p.X[i][k] = val
	ix.dirty[i] = true
	ix.epoch++
}

// Epoch returns the index's mutation counter: it increases monotonically on
// every Set and Rebind and never otherwise. Equal epochs across two reads
// guarantee no mutation went through the index in between.
func (ix *PlacementIndex) Epoch() uint64 { return ix.epoch }

// Has reports whether service i is deployed on node k.
func (ix *PlacementIndex) Has(i, k int) bool { return ix.p.X[i][k] }

// Count returns the number of instances of service i.
func (ix *PlacementIndex) Count(i int) int { return len(ix.NodesOf(i)) }

// NodesOf returns the nodes hosting service i, ascending. The slice is
// cached: it is reused across calls and only rebuilt after i was mutated.
func (ix *PlacementIndex) NodesOf(i int) []int {
	if ix.dirty[i] {
		out := ix.nodes[i][:0]
		for k, on := range ix.p.X[i] {
			if on {
				out = append(out, k)
			}
		}
		ix.nodes[i] = out
		ix.dirty[i] = false
	}
	return ix.nodes[i]
}

// Prewarm rebuilds every dirty list so subsequent NodesOf calls are
// read-only — required before sharing the index across goroutines.
func (ix *PlacementIndex) Prewarm() {
	for i := range ix.dirty {
		ix.NodesOf(i)
	}
}

// CheckCoherent verifies every clean cached candidate list against a fresh
// scan of its placement row, catching exactly the staleness class behind
// PR 1: a raw write to Placement.X that bypassed Set/Rebind. Dirty entries
// are coherent by definition (the next NodesOf rebuilds them). O(M·N) — for
// the soclinvariants build and tests, not hot paths.
func (ix *PlacementIndex) CheckCoherent() error {
	for i := range ix.nodes {
		if ix.dirty[i] {
			continue
		}
		row := ix.p.X[i]
		j := 0
		for k, on := range row {
			if !on {
				continue
			}
			if j >= len(ix.nodes[i]) || ix.nodes[i][j] != k {
				return fmt.Errorf("model: PlacementIndex stale for service %d: cached %v disagrees with placement at node %d (epoch %d)", i, ix.nodes[i], k, ix.epoch)
			}
			j++
		}
		if j != len(ix.nodes[i]) {
			return fmt.Errorf("model: PlacementIndex stale for service %d: cached %v has %d extra node(s) (epoch %d)", i, ix.nodes[i], len(ix.nodes[i])-j, ix.epoch)
		}
	}
	return nil
}

// RouteScratch holds the dynamic-programming buffers of RouteOptimal so
// repeated routing calls (one per request per combine round) reuse memory
// instead of allocating O(L·|V|) per call. A scratch is single-goroutine:
// parallel routing fan-outs allocate one per worker.
type RouteScratch struct {
	cost, next []float64
	back       [][]int
	layers     [][]int
}

func (sc *RouteScratch) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

func (sc *RouteScratch) backRow(t, n int) []int {
	for len(sc.back) <= t {
		sc.back = append(sc.back, nil)
	}
	if cap(sc.back[t]) < n {
		sc.back[t] = make([]int, n)
	}
	sc.back[t] = sc.back[t][:n]
	return sc.back[t]
}

func (sc *RouteScratch) layerBuf(n int) [][]int {
	if cap(sc.layers) < n {
		sc.layers = make([][]int, n)
	}
	sc.layers = sc.layers[:n]
	return sc.layers
}

// nodeLister abstracts the candidate-node source of the routing routines:
// either a raw Placement (allocating scan, the naive path) or a
// PlacementIndex (cached lists, the incremental path). Both return the
// hosting nodes ascending, so the two paths are bit-identical.
type nodeLister interface {
	NodesOf(i int) []int
}
