package model

import (
	"math"
	"testing"

	"repro/internal/msvc"
	"repro/internal/topology"
)

func indexTestInstance(t *testing.T, nodes, users int, seed int64) *Instance {
	t.Helper()
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}

func densePlacement(in *Instance, seed int64) Placement {
	p := NewPlacement(in.M(), in.V())
	// Deterministic pseudo-random-ish pattern with multiple instances per
	// service.
	for i := 0; i < in.M(); i++ {
		for k := 0; k < in.V(); k++ {
			if (int64(i*31+k*17)+seed)%3 != 0 {
				p.Set(i, k, true)
			}
		}
		if p.Count(i) == 0 {
			p.Set(i, int(seed)%in.V(), true)
		}
	}
	return p
}

func TestPlacementIndexNodesOfTracksMutations(t *testing.T) {
	p := NewPlacement(3, 5)
	p.Set(0, 1, true)
	p.Set(0, 3, true)
	ix := NewPlacementIndex(p)
	got := ix.NodesOf(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("NodesOf(0) = %v, want [1 3]", got)
	}
	ix.Set(0, 2, true)
	ix.Set(0, 3, false)
	got = ix.NodesOf(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("after mutation NodesOf(0) = %v, want [1 2]", got)
	}
	if ix.Count(0) != 2 || !ix.Has(0, 2) || ix.Has(0, 3) {
		t.Fatal("Count/Has out of sync with mutations")
	}
	// Rebind to a fresh placement invalidates everything.
	q := NewPlacement(3, 5)
	q.Set(0, 4, true)
	ix.Rebind(q)
	got = ix.NodesOf(0)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("after Rebind NodesOf(0) = %v, want [4]", got)
	}
}

// Differential: indexed routing with reused scratch must be bit-identical
// to the naive allocating path, across placement mutations.
func TestRouteOptimalIndexedMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := indexTestInstance(t, 10, 30, seed)
		p := densePlacement(in, seed)
		ix := NewPlacementIndex(p.Clone())
		sc := &RouteScratch{}
		check := func() {
			for h := range in.Workload.Requests {
				req := &in.Workload.Requests[h]
				a1, d1, err1 := in.RouteOptimal(req, ix.Placement())
				a2, d2, err2 := in.RouteOptimalIndexed(req, ix, sc)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d req %d: err mismatch %v vs %v", seed, h, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if d1 != d2 {
					t.Fatalf("seed %d req %d: latency %v vs %v", seed, h, d1, d2)
				}
				for i := range a1.Nodes {
					if a1.Nodes[i] != a2.Nodes[i] {
						t.Fatalf("seed %d req %d: route %v vs %v", seed, h, a1.Nodes, a2.Nodes)
					}
				}
				g1, e1, gerr1 := in.RouteGreedy(req, ix.Placement())
				g2, e2, gerr2 := in.RouteGreedyIndexed(req, ix)
				if (gerr1 == nil) != (gerr2 == nil) || (gerr1 == nil && e1 != e2) {
					t.Fatalf("seed %d req %d: greedy mismatch", seed, h)
				}
				_ = g1
				_ = g2
			}
		}
		check()
		// Mutate through the index and re-check: remove one instance of the
		// first multi-instance service, add one elsewhere.
		for i := 0; i < in.M(); i++ {
			nodes := append([]int(nil), ix.NodesOf(i)...)
			if len(nodes) < 2 {
				continue
			}
			ix.Set(i, nodes[0], false)
			if free := firstAbsent(ix, i, in.V()); free != -1 {
				ix.Set(i, free, true)
			}
			break
		}
		check()
	}
}

// Every Set and Rebind — and nothing else — must advance the epoch, and
// CheckCoherent must accept index-routed mutations while catching raw
// placement writes that bypass the index.
func TestPlacementIndexEpochAndCoherence(t *testing.T) {
	p := NewPlacement(3, 5)
	p.Set(0, 1, true)
	p.Set(1, 2, true)
	ix := NewPlacementIndex(p)
	if ix.Epoch() != 0 {
		t.Fatalf("fresh index epoch = %d, want 0", ix.Epoch())
	}
	ix.Prewarm()
	_ = ix.NodesOf(0)
	if ix.Epoch() != 0 {
		t.Fatal("reads must not advance the epoch")
	}
	ix.Set(0, 3, true)
	if ix.Epoch() != 1 {
		t.Fatalf("epoch after one Set = %d, want 1", ix.Epoch())
	}
	ix.Set(0, 3, false)
	ix.Rebind(p)
	if ix.Epoch() != 3 {
		t.Fatalf("epoch after Set+Set+Rebind = %d, want 3", ix.Epoch())
	}

	ix.Prewarm()
	if err := ix.CheckCoherent(); err != nil {
		t.Fatalf("coherent index reported: %v", err)
	}
	// Mutations through the index stay coherent.
	ix.Set(1, 4, true)
	ix.Prewarm()
	if err := ix.CheckCoherent(); err != nil {
		t.Fatalf("after indexed Set: %v", err)
	}
	// A raw write behind the index's back — the PR-1 bug class — must be
	// caught: flip a bit in a clean row without touching the index.
	p.X[1][0] = true
	if err := ix.CheckCoherent(); err == nil {
		t.Fatal("CheckCoherent missed a raw placement write (extra node)")
	}
	p.X[1][0] = false
	p.X[1][4] = false // now the cached list has a stale extra entry
	if err := ix.CheckCoherent(); err == nil {
		t.Fatal("CheckCoherent missed a raw placement write (removed node)")
	}
	p.X[1][4] = true
	if err := ix.CheckCoherent(); err != nil {
		t.Fatalf("restored placement still reported: %v", err)
	}
	// Dirty rows are exempt: the next NodesOf rebuilds them.
	ix.Set(2, 0, true)
	p.X[2][1] = true
	if err := ix.CheckCoherent(); err != nil {
		t.Fatalf("dirty row must not be checked: %v", err)
	}
	_ = ix.NodesOf(2) // rebuild absorbs the raw write
	if err := ix.CheckCoherent(); err != nil {
		t.Fatalf("rebuilt row reported: %v", err)
	}
}

func firstAbsent(ix *PlacementIndex, i, v int) int {
	for k := 0; k < v; k++ {
		if !ix.Has(i, k) {
			return k
		}
	}
	return -1
}

// EvaluateRouted must be unchanged by the index-backed rewrite: spot-check
// the objective is finite and latencies equal per-request RouteOptimal.
func TestEvaluateRoutedUsesIndexConsistently(t *testing.T) {
	in := indexTestInstance(t, 10, 80, 3)
	p := densePlacement(in, 3)
	ev := in.Evaluate(p)
	if math.IsInf(ev.Objective, 1) {
		t.Fatal("unexpected infinite objective on dense placement")
	}
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		_, d, err := in.RouteOptimal(req, p)
		if err != nil {
			continue
		}
		if ev.Latencies[h] != d {
			t.Fatalf("req %d: evaluator latency %v != RouteOptimal %v", h, ev.Latencies[h], d)
		}
	}
}
