// Package model defines the shared optimization instance, decision
// representation, and — critically — the single evaluator used to score
// every algorithm in this repository (SoCL, the exact optimizer, and all
// baselines), implementing the cost model (Eq. 1), the completion-time model
// (Eq. 2), and the weighted objective (Eq. 3/8) of the SoCL paper.
//
// Routing is solved exactly per request by dynamic programming over the
// layered placement graph: given a deployment x, the minimum-latency
// assignment of chain steps to hosting nodes is a shortest path through
// |chain| layers of candidate nodes, which the paper's routing subproblem
// reduces to once provisioning is fixed.
package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/msvc"
	"repro/internal/topology"
)

// Instance is one SoCL problem instance: the substrate network, the request
// workload, and the objective/constraint parameters of Definitions 1–2.
type Instance struct {
	Graph    *topology.Graph
	Workload *msvc.Workload

	Lambda float64 // λ ∈ [0,1]: weight of deployment cost vs completion time
	Budget float64 // 𝒦^max: global deployment budget (constraint 5)

	// Cloud, when non-nil, serves as the fallback for requests whose chain
	// hits a microservice with no edge instance: the whole request is
	// offloaded to the cloud at WAN latency instead of failing (Section
	// IV-C). When nil, such requests count as MissingInstances with +Inf
	// latency.
	Cloud *CloudConfig

	// ColdStart, when non-nil, charges the serverless cold-start penalty on
	// chain steps that execute on instances the model marks cold (see
	// ColdStartModel). Nil — the default — preserves the legacy
	// completion-time model bitwise. The cloud fallback is always warm.
	ColdStart *ColdStartModel
}

// Validate checks instance invariants.
func (in *Instance) Validate() error {
	if in.Graph == nil || in.Workload == nil || in.Workload.Catalog == nil {
		return fmt.Errorf("model: nil graph or workload")
	}
	if in.Lambda < 0 || in.Lambda > 1 {
		return fmt.Errorf("model: λ=%v outside [0,1]", in.Lambda)
	}
	if in.Budget <= 0 {
		return fmt.Errorf("model: non-positive budget %v", in.Budget)
	}
	for i := range in.Workload.Requests {
		if err := in.Workload.Requests[i].Validate(in.Workload.Catalog.Len(), in.Graph.N()); err != nil {
			return err
		}
	}
	return nil
}

// M returns |M| and V returns |V| for the instance.
func (in *Instance) M() int { return in.Workload.Catalog.Len() }

// V returns the number of edge servers.
func (in *Instance) V() int { return in.Graph.N() }

// Placement is the deployment decision x(i,k) ∈ {0,1}: X[i][k] is true when
// an instance of microservice i runs on node k.
type Placement struct {
	X [][]bool
}

// NewPlacement returns an all-zero placement for m services over v nodes.
func NewPlacement(m, v int) Placement {
	x := make([][]bool, m)
	for i := range x {
		x[i] = make([]bool, v)
	}
	return Placement{X: x}
}

// Clone deep-copies the placement.
func (p Placement) Clone() Placement {
	q := NewPlacement(len(p.X), lenRow(p.X))
	for i := range p.X {
		copy(q.X[i], p.X[i])
	}
	return q
}

func lenRow(x [][]bool) int {
	if len(x) == 0 {
		return 0
	}
	return len(x[0])
}

// Set deploys (or removes, val=false) service i on node k.
func (p Placement) Set(i, k int, val bool) { p.X[i][k] = val }

// Has reports whether service i is deployed on node k.
func (p Placement) Has(i, k int) bool { return p.X[i][k] }

// Count returns the number of instances of service i.
func (p Placement) Count(i int) int {
	n := 0
	for _, v := range p.X[i] {
		if v {
			n++
		}
	}
	return n
}

// NodesOf returns the nodes hosting service i, ascending.
func (p Placement) NodesOf(i int) []int {
	var out []int
	for k, v := range p.X[i] {
		if v {
			out = append(out, k)
		}
	}
	return out
}

// Instances returns the total number of deployed instances.
func (p Placement) Instances() int {
	n := 0
	for i := range p.X {
		n += p.Count(i)
	}
	return n
}

// DeployCost returns Σ_k 𝒦_k = Σ_{i,k} κ(m_i)·x(i,k) (Eq. 1 summed).
func (in *Instance) DeployCost(p Placement) float64 {
	cost := 0.0
	for i := range p.X {
		kappa := in.Workload.Catalog.Service(i).DeployCost
		for _, on := range p.X[i] {
			if on {
				cost += kappa
			}
		}
	}
	return cost
}

// StorageUsed returns Σ_i x(i,k)·φ(m_i) for node k.
func (in *Instance) StorageUsed(p Placement, k int) float64 {
	s := 0.0
	for i := range p.X {
		if p.X[i][k] {
			s += in.Workload.Catalog.Service(i).Storage
		}
	}
	return s
}

// CheckStorage verifies constraint (6) on every node; it returns the first
// violating node or -1.
func (in *Instance) CheckStorage(p Placement) int {
	for k := 0; k < in.V(); k++ {
		if in.StorageUsed(p, k) > in.Graph.Node(k).Storage+FeasTol {
			return k
		}
	}
	return -1
}

// CheckBudget verifies constraint (5).
func (in *Instance) CheckBudget(p Placement) bool {
	return in.DeployCost(p) <= in.Budget+FeasTol
}

// Assignment is a per-request routing decision: Nodes[t] is the edge server
// executing the t-th microservice of the request's chain (the y(h,i,k)
// variables restricted to the chain).
type Assignment struct {
	Nodes []int
}

// ErrNoInstance is returned when a chain step has no deployed instance
// anywhere — constraint (9)/(10) is unsatisfiable under the placement.
type ErrNoInstance struct {
	Request int
	Service int
}

func (e ErrNoInstance) Error() string {
	return fmt.Sprintf("model: request %d needs service %d but no instance is deployed", e.Request, e.Service)
}

// IsNoInstance reports whether err is (or wraps) an ErrNoInstance. Routing
// callers must branch on this — not on err != nil — because the sentinel is
// a domain signal (constraints (9)/(10) unsatisfiable under the placement),
// not a failure, and wrapped sentinels never compare equal with ==.
func IsNoInstance(err error) bool {
	var e ErrNoInstance
	return errors.As(err, &e)
}

// CompletionTime computes 𝒟_h (Eq. 2) exactly for a concrete assignment:
// ingress transfer d_in, per-step compute q/c, chain-edge transfers over
// minimum-time paths, and egress d_out over the minimum-hop return path.
func (in *Instance) CompletionTime(req *msvc.Request, a Assignment) (float64, error) {
	if len(a.Nodes) != len(req.Chain) {
		return 0, fmt.Errorf("model: assignment length %d != chain length %d", len(a.Nodes), len(req.Chain))
	}
	g := in.Graph
	d := g.TransferTime(req.Home, a.Nodes[0], req.DataIn) // d_in (0 if same node)
	for t, k := range a.Nodes {
		if k < 0 || k >= g.N() {
			return 0, fmt.Errorf("model: assignment node %d out of range", k)
		}
		d += in.stepTime(req.Chain[t], k) // d_c (+ cold start, if modeled)
		if t > 0 {
			d += g.TransferTime(a.Nodes[t-1], k, req.EdgeData[t-1]) // d_l
		}
	}
	last := a.Nodes[len(a.Nodes)-1]
	d += req.DataOut * g.HopPathCost(last, req.Home) // d_out over π*
	if math.IsInf(d, 1) || math.IsNaN(d) {
		return math.Inf(1), nil
	}
	return d, nil
}

// RouteOptimal finds the minimum-completion-time assignment for req under
// placement p by dynamic programming over chain layers (O(L·|V|²)).
// It returns ErrNoInstance if some chain step has no instance.
//
//socllint:sentinel ErrNoInstance
func (in *Instance) RouteOptimal(req *msvc.Request, p Placement) (Assignment, float64, error) {
	return in.routeOptimal(req, p, nil)
}

// RouteOptimalIndexed is RouteOptimal over a PlacementIndex: candidate
// layers come from the index's cached lists and the DP buffers are reused
// from sc (pass nil to allocate fresh). Results are bit-identical to
// RouteOptimal on the index's placement.
//
//socllint:sentinel ErrNoInstance
func (in *Instance) RouteOptimalIndexed(req *msvc.Request, ix *PlacementIndex, sc *RouteScratch) (Assignment, float64, error) {
	return in.routeOptimal(req, ix, sc)
}

//socllint:sentinel ErrNoInstance
func (in *Instance) routeOptimal(req *msvc.Request, cand nodeLister, sc *RouteScratch) (Assignment, float64, error) {
	g := in.Graph
	L := len(req.Chain)

	// Candidate layers.
	var layers [][]int
	if sc != nil {
		layers = sc.layerBuf(L)
	} else {
		layers = make([][]int, L)
	}
	for t, s := range req.Chain {
		layers[t] = cand.NodesOf(s)
		if len(layers[t]) == 0 {
			return Assignment{}, 0, ErrNoInstance{Request: req.ID, Service: s}
		}
	}

	// DP forward pass.
	var cost []float64
	var back [][]int
	if sc != nil {
		cost = sc.floats(&sc.cost, len(layers[0]))
	} else {
		cost = make([]float64, len(layers[0]))
		back = make([][]int, L)
	}
	for j, k := range layers[0] {
		cost[j] = g.TransferTime(req.Home, k, req.DataIn) +
			in.stepTime(req.Chain[0], k)
	}
	for t := 1; t < L; t++ {
		var next []float64
		var backT []int
		if sc != nil {
			next = sc.floats(&sc.next, len(layers[t]))
			backT = sc.backRow(t, len(layers[t]))
		} else {
			next = make([]float64, len(layers[t]))
			back[t] = make([]int, len(layers[t]))
			backT = back[t]
		}
		for j, k := range layers[t] {
			best, bestArg := math.Inf(1), -1
			for pj, pk := range layers[t-1] {
				c := cost[pj] + g.TransferTime(pk, k, req.EdgeData[t-1])
				if c < best {
					best, bestArg = c, pj
				}
			}
			next[j] = best + in.stepTime(req.Chain[t], k)
			backT[j] = bestArg
		}
		if sc != nil {
			sc.cost, sc.next = sc.next, sc.cost
			cost = next
		} else {
			cost = next
		}
	}

	// Terminal: add d_out and pick the best final node.
	best, bestArg := math.Inf(1), -1
	for j, k := range layers[L-1] {
		c := cost[j] + req.DataOut*g.HopPathCost(k, req.Home)
		if c < best {
			best, bestArg = c, j
		}
	}
	if bestArg == -1 || math.IsInf(best, 1) {
		// All candidate chains are disconnected from the user.
		return Assignment{}, math.Inf(1), nil
	}

	// Backtrack. The Nodes slice is freshly allocated either way: callers
	// cache returned assignments beyond the next routing call.
	nodes := make([]int, L)
	j := bestArg
	for t := L - 1; t >= 0; t-- {
		nodes[t] = layers[t][j]
		if t > 0 {
			if sc != nil {
				j = sc.back[t][j]
			} else {
				j = back[t][j]
			}
		}
	}
	return Assignment{Nodes: nodes}, best, nil
}

// routeOptimalLat is routeOptimal without path reconstruction: the same DP
// forward pass (identical iteration order, so an identical float result) but
// no backpointer bookkeeping and no Nodes allocation. It serves callers that
// only consume the completion time — the delta engine's removal probes score
// thousands of counterfactual placements per search round and discard every
// path.
//
//socllint:sentinel ErrNoInstance
func (in *Instance) routeOptimalLat(req *msvc.Request, cand nodeLister, sc *RouteScratch) (float64, error) {
	g := in.Graph
	L := len(req.Chain)

	layers := sc.layerBuf(L)
	for t, s := range req.Chain {
		layers[t] = cand.NodesOf(s)
		if len(layers[t]) == 0 {
			return 0, ErrNoInstance{Request: req.ID, Service: s}
		}
	}

	cost := sc.floats(&sc.cost, len(layers[0]))
	for j, k := range layers[0] {
		cost[j] = g.TransferTime(req.Home, k, req.DataIn) +
			in.stepTime(req.Chain[0], k)
	}
	for t := 1; t < L; t++ {
		next := sc.floats(&sc.next, len(layers[t]))
		for j, k := range layers[t] {
			best := math.Inf(1)
			for pj, pk := range layers[t-1] {
				if c := cost[pj] + g.TransferTime(pk, k, req.EdgeData[t-1]); c < best {
					best = c
				}
			}
			next[j] = best + in.stepTime(req.Chain[t], k)
		}
		sc.cost, sc.next = sc.next, sc.cost
		cost = next
	}

	best := math.Inf(1)
	for j, k := range layers[L-1] {
		if c := cost[j] + req.DataOut*g.HopPathCost(k, req.Home); c < best {
			best = c
		}
	}
	return best, nil // +Inf when every candidate chain is disconnected
}

// RouteGreedy assigns each chain step to the hosting node with the fastest
// virtual link from the previous location (nearest-instance routing). Used
// as the ablation counterpart of RouteOptimal.
//
//socllint:sentinel ErrNoInstance
func (in *Instance) RouteGreedy(req *msvc.Request, p Placement) (Assignment, float64, error) {
	return in.routeGreedy(req, p)
}

// RouteGreedyIndexed is RouteGreedy over a PlacementIndex's cached
// candidate lists.
//
//socllint:sentinel ErrNoInstance
func (in *Instance) RouteGreedyIndexed(req *msvc.Request, ix *PlacementIndex) (Assignment, float64, error) {
	return in.routeGreedy(req, ix)
}

//socllint:sentinel ErrNoInstance
func (in *Instance) routeGreedy(req *msvc.Request, cand nodeLister) (Assignment, float64, error) {
	g := in.Graph
	nodes := make([]int, len(req.Chain))
	prev := req.Home
	for t, s := range req.Chain {
		cands := cand.NodesOf(s)
		if len(cands) == 0 {
			return Assignment{}, 0, ErrNoInstance{Request: req.ID, Service: s}
		}
		best, bestK := math.Inf(1), cands[0]
		for _, k := range cands {
			if c := g.PathCost(prev, k); c < best {
				best, bestK = c, k
			}
		}
		nodes[t] = bestK
		prev = bestK
	}
	a := Assignment{Nodes: nodes}
	d, err := in.CompletionTime(req, a)
	return a, d, err
}

// RoutingMode selects the routing policy used to score a placement. The
// paper's algorithms each bring their own request routing: SoCL optimizes
// routing (here: exact DP over the chain layers), JDR routes greedily to
// the nearest instance, and RP routes randomly.
type RoutingMode int

// Routing policies.
const (
	RouteModeOptimal RoutingMode = iota
	RouteModeGreedy
	RouteModeRandom
)

func (m RoutingMode) String() string {
	switch m {
	case RouteModeOptimal:
		return "optimal"
	case RouteModeGreedy:
		return "greedy"
	case RouteModeRandom:
		return "random"
	default:
		return "?"
	}
}

// RouteRandom assigns each chain step to a uniformly random hosting node —
// the routing policy of the RP baseline. The rng must be supplied so runs
// stay reproducible.
//
//socllint:sentinel ErrNoInstance
func (in *Instance) RouteRandom(req *msvc.Request, p Placement, r *rand.Rand) (Assignment, float64, error) {
	return in.routeRandom(req, p, r)
}

//socllint:sentinel ErrNoInstance
func (in *Instance) routeRandom(req *msvc.Request, cand nodeLister, r *rand.Rand) (Assignment, float64, error) {
	nodes := make([]int, len(req.Chain))
	for t, s := range req.Chain {
		cands := cand.NodesOf(s)
		if len(cands) == 0 {
			return Assignment{}, 0, ErrNoInstance{Request: req.ID, Service: s}
		}
		nodes[t] = cands[r.Intn(len(cands))]
	}
	a := Assignment{Nodes: nodes}
	d, err := in.CompletionTime(req, a)
	return a, d, err
}

// Evaluation is the scored outcome of a placement: per-request latencies
// (optimal routing), totals, and the weighted objective.
type Evaluation struct {
	Placement  Placement
	Routes     []Assignment
	Latencies  []float64 // 𝒟_h per request
	LatencySum float64   // Σ_h 𝒟_h
	Cost       float64   // Σ_k 𝒦_k
	Objective  float64   // λ·Cost + (1−λ)·LatencySum

	// Violations. MissingInstances and Unroutable split the two ways a
	// request can go unserved: no instance of some chain service exists
	// anywhere (ErrNoInstance, constraint (9)/(10) unsatisfiable — the
	// provisioning failed), versus instances exist but every candidate chain
	// is disconnected from the user on the current substrate (+Inf latency
	// with no sentinel — the network failed). The distinction matters under
	// fault masking: crashes that cut links produce Unroutable requests that
	// a placement-level repair cannot fix, while lost instances produce
	// MissingInstances that re-provisioning can.
	MissingInstances  int // requests hitting ErrNoInstance (no cloud fallback)
	Unroutable        int // requests routed to +Inf: instances exist but are unreachable
	CloudServed       int // requests offloaded to the cloud fallback
	DeadlineViolated  int // requests with 𝒟_h > 𝒟_h^max
	StorageViolatedAt int // first node violating (6), or -1
	OverBudget        bool
}

// Feasible reports whether the evaluation satisfies all hard constraints.
func (e *Evaluation) Feasible() bool {
	return e.MissingInstances == 0 && e.Unroutable == 0 && e.DeadlineViolated == 0 &&
		e.StorageViolatedAt == -1 && !e.OverBudget
}

// Unserved returns the number of requests served neither at the edge nor by
// the cloud fallback: missing-instance plus unroutable requests.
func (e *Evaluation) Unserved() int { return e.MissingInstances + e.Unroutable }

// Evaluate scores placement p with optimal routing for every request.
// Requests whose services lack instances contribute +Inf latency and are
// counted in MissingInstances rather than aborting, so callers can score
// infeasible intermediate states.
func (in *Instance) Evaluate(p Placement) *Evaluation {
	return in.EvaluateRouted(p, RouteModeOptimal, 0)
}

// parallelThreshold is the request count above which EvaluateRouted fans
// routing out over GOMAXPROCS workers. Routing per request is independent,
// so the parallel and serial paths produce identical results (random-mode
// streams derive per-request seeds rather than sharing one generator).
const parallelThreshold = 64

// EvaluateRouted scores placement p under an explicit routing policy. The
// seed matters only for RouteModeRandom. Large workloads are evaluated in
// parallel across GOMAXPROCS goroutines; results are deterministic either
// way.
func (in *Instance) EvaluateRouted(p Placement, mode RoutingMode, seed int64) *Evaluation {
	reqs := in.Workload.Requests
	ev := &Evaluation{
		Placement:         p,
		Routes:            make([]Assignment, len(reqs)),
		Latencies:         make([]float64, len(reqs)),
		Cost:              in.DeployCost(p),
		StorageViolatedAt: in.CheckStorage(p),
	}
	ev.OverBudget = !in.CheckBudget(p)

	// One prewarmed index serves every request: candidate lists are built
	// once per service instead of once per (request, step), and the prewarm
	// makes concurrent reads race-free.
	ix := NewPlacementIndex(p)
	ix.Prewarm()
	epoch0 := ix.Epoch() // routing must never mutate the index (self-check)

	// routeOne returns flags: missing instance, unroutable (instances exist
	// but disconnected), deadline violated, cloud fallback used. sc is the
	// calling worker's DP scratch.
	routeOne := func(h int, sc *RouteScratch) (missing, unroutable, late, cloud bool) {
		req := &reqs[h]
		var (
			a   Assignment
			d   float64
			err error
		)
		switch mode {
		case RouteModeGreedy:
			a, d, err = in.routeGreedy(req, ix)
		case RouteModeRandom:
			// Independent per-request stream keeps parallel == serial.
			rng := rand.New(rand.NewSource(seed + int64(h)*0x9e3779b9))
			a, d, err = in.routeRandom(req, ix, rng)
		default:
			a, d, err = in.routeOptimal(req, ix, sc)
		}
		if err != nil {
			// Routing fails only with the ErrNoInstance sentinel; the check
			// is errors.As-based so a future wrapped sentinel keeps working.
			// Any other error would be a routing bug and counts as missing.
			if IsNoInstance(err) && in.Cloud != nil {
				d = in.Cloud.CloudCompletionTime(in.Workload.Catalog, req)
				ev.Latencies[h] = d
				return false, false, d > req.Deadline+FeasTol, true
			}
			ev.Latencies[h] = math.Inf(1)
			return true, false, false, false
		}
		ev.Routes[h] = a
		ev.Latencies[h] = d
		// A +Inf latency without the sentinel means every candidate chain is
		// disconnected from the user: unroutable, not missing.
		return false, math.IsInf(d, 1), d > req.Deadline+FeasTol, false
	}

	if len(reqs) < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		sc := &RouteScratch{}
		for h := range reqs {
			missing, unroutable, late, cloud := routeOne(h, sc)
			if missing {
				ev.MissingInstances++
			}
			if unroutable {
				ev.Unroutable++
			}
			if late {
				ev.DeadlineViolated++
			}
			if cloud {
				ev.CloudServed++
			}
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		var wg sync.WaitGroup
		var missingCnt, unroutableCnt, lateCnt, cloudCnt int64
		chunk := (len(reqs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(reqs) {
				hi = len(reqs)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				sc := &RouteScratch{}
				var localMissing, localUnroutable, localLate, localCloud int64
				for h := lo; h < hi; h++ {
					missing, unroutable, late, cloud := routeOne(h, sc)
					if missing {
						localMissing++
					}
					if unroutable {
						localUnroutable++
					}
					if late {
						localLate++
					}
					if cloud {
						localCloud++
					}
				}
				atomic.AddInt64(&missingCnt, localMissing)
				atomic.AddInt64(&unroutableCnt, localUnroutable)
				atomic.AddInt64(&lateCnt, localLate)
				atomic.AddInt64(&cloudCnt, localCloud)
			}(lo, hi)
		}
		wg.Wait()
		ev.MissingInstances = int(missingCnt)
		ev.Unroutable = int(unroutableCnt)
		ev.DeadlineViolated = int(lateCnt)
		ev.CloudServed = int(cloudCnt)
	}

	ev.LatencySum = 0
	for _, d := range ev.Latencies {
		ev.LatencySum += d
	}
	ev.Objective = in.Objective(ev.Cost, ev.LatencySum)
	in.selfCheckEvaluation(ev, ix, epoch0, mode, seed)
	return ev
}

// Objective combines a deployment cost and a latency sum per Definition 1:
// λ·Σ𝒦 + (1−λ)·Σ𝒟.
func (in *Instance) Objective(cost, latencySum float64) float64 {
	// Guard 0·Inf = NaN when λ ∈ {0,1} and the other term is infinite.
	c := 0.0
	if in.Lambda > 0 {
		c = in.Lambda * cost
	}
	l := 0.0
	if in.Lambda < 1 {
		l = (1 - in.Lambda) * latencySum
	}
	return c + l
}

// StarCoef returns the star-linearized latency coefficient d̃(h, step, k)
// used by the ILP formulation (Definition 4): the incoming data volume of
// the step is assumed to travel from the user's home server to k, plus
// compute time, plus — for the final step — the egress return time. The
// evaluator remains exact; this approximation only shapes the ILP objective.
func (in *Instance) StarCoef(req *msvc.Request, step, k int) float64 {
	g := in.Graph
	var data float64
	if step == 0 {
		data = req.DataIn
	} else {
		data = req.EdgeData[step-1]
	}
	c := g.TransferTime(req.Home, k, data)
	c += in.stepTime(req.Chain[step], k)
	if step == len(req.Chain)-1 {
		c += req.DataOut * g.HopPathCost(k, req.Home)
	}
	return c
}
