package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/msvc"
	"repro/internal/stats"
	"repro/internal/topology"
)

// tinyInstance builds a 4-node line graph with 2 services and 2 requests,
// small enough to verify by hand.
func tinyInstance(t *testing.T) *Instance {
	t.Helper()
	g := topology.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0, 10, 5) // compute 10 GFLOP/s, storage 5
	}
	for i := 0; i < 3; i++ {
		if err := g.AddLink(i, i+1, 10); err != nil { // 0.1 s/GB per hop
			t.Fatal(err)
		}
	}
	g.Finalize()

	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 2, 1) // 0.2 s compute
	b, _ := cat.Add("b", 200, 4, 1) // 0.4 s compute
	cat.AddFlow([]msvc.ServiceID{a, b})

	w := &msvc.Workload{
		Catalog: cat,
		Requests: []msvc.Request{
			{ID: 0, Home: 0, Chain: []int{a, b}, DataIn: 1, DataOut: 1, EdgeData: []float64{2}, Deadline: math.Inf(1)},
			{ID: 1, Home: 3, Chain: []int{a}, DataIn: 1, DataOut: 1, EdgeData: nil, Deadline: math.Inf(1)},
		},
	}
	return &Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 10000}
}

func TestInstanceValidate(t *testing.T) {
	in := tinyInstance(t)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.Lambda = 1.5
	if bad.Validate() == nil {
		t.Fatal("λ>1 accepted")
	}
	bad = *in
	bad.Budget = 0
	if bad.Validate() == nil {
		t.Fatal("zero budget accepted")
	}
	bad = *in
	bad.Graph = nil
	if bad.Validate() == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestPlacementBasics(t *testing.T) {
	p := NewPlacement(2, 3)
	if p.Instances() != 0 {
		t.Fatal("fresh placement not empty")
	}
	p.Set(0, 1, true)
	p.Set(1, 2, true)
	p.Set(0, 2, true)
	if !p.Has(0, 1) || p.Has(0, 0) {
		t.Fatal("Has wrong")
	}
	if p.Count(0) != 2 || p.Count(1) != 1 || p.Instances() != 3 {
		t.Fatal("counts wrong")
	}
	n := p.NodesOf(0)
	if len(n) != 2 || n[0] != 1 || n[1] != 2 {
		t.Fatalf("NodesOf = %v", n)
	}
	q := p.Clone()
	q.Set(0, 1, false)
	if !p.Has(0, 1) {
		t.Fatal("Clone aliases storage")
	}
}

func TestDeployCostAndStorage(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 0, true) // κ=100
	p.Set(1, 0, true) // κ=200
	p.Set(1, 2, true) // κ=200
	if got := in.DeployCost(p); got != 500 {
		t.Fatalf("DeployCost = %v, want 500", got)
	}
	if got := in.StorageUsed(p, 0); got != 2 {
		t.Fatalf("StorageUsed(0) = %v, want 2", got)
	}
	if in.CheckStorage(p) != -1 {
		t.Fatal("storage should be feasible")
	}
	if !in.CheckBudget(p) {
		t.Fatal("budget should be feasible")
	}
}

func TestCompletionTimeHandComputed(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 1, true) // a on node 1
	p.Set(1, 2, true) // b on node 2
	req := &in.Workload.Requests[0]

	// d_in: home 0 → node 1: 1 GB × 0.1 = 0.1
	// compute a: 2/10 = 0.2
	// edge: node1→node2, 2 GB × 0.1 = 0.2
	// compute b: 4/10 = 0.4
	// d_out: node2→home0, min-hop path = 2 hops × 0.1 = 0.2 × 1 GB = 0.2
	want := 0.1 + 0.2 + 0.2 + 0.4 + 0.2
	d, err := in.CompletionTime(req, Assignment{Nodes: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("CompletionTime = %v, want %v", d, want)
	}
}

func TestCompletionTimeErrors(t *testing.T) {
	in := tinyInstance(t)
	req := &in.Workload.Requests[0]
	if _, err := in.CompletionTime(req, Assignment{Nodes: []int{1}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := in.CompletionTime(req, Assignment{Nodes: []int{1, 99}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestRouteOptimalPicksBest(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	// a available on 0 and 3; b on 1. For request 0 (home 0) best is a@0, b@1.
	p.Set(0, 0, true)
	p.Set(0, 3, true)
	p.Set(1, 1, true)
	req := &in.Workload.Requests[0]
	a, d, err := in.RouteOptimal(req, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[0] != 0 || a.Nodes[1] != 1 {
		t.Fatalf("route = %v, want [0 1]", a.Nodes)
	}
	// Verify returned cost equals recomputed completion time.
	d2, _ := in.CompletionTime(req, a)
	if math.Abs(d-d2) > 1e-9 {
		t.Fatalf("route cost %v != completion time %v", d, d2)
	}
}

func TestRouteOptimalMissingInstance(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 0, true) // b nowhere
	req := &in.Workload.Requests[0]
	_, _, err := in.RouteOptimal(req, p)
	if err == nil {
		t.Fatal("missing instance not reported")
	}
	var noInst ErrNoInstance
	if e, ok := err.(ErrNoInstance); ok {
		noInst = e
	} else {
		t.Fatalf("wrong error type %T", err)
	}
	if noInst.Service != 1 {
		t.Fatalf("ErrNoInstance.Service = %d", noInst.Service)
	}
}

func TestRouteGreedyFeasible(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 2, true)
	p.Set(1, 3, true)
	req := &in.Workload.Requests[0]
	a, d, err := in.RouteGreedy(req, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[0] != 2 || a.Nodes[1] != 3 {
		t.Fatalf("greedy route = %v", a.Nodes)
	}
	opt, dOpt, _ := in.RouteOptimal(req, p)
	_ = opt
	if dOpt > d+1e-9 {
		t.Fatalf("optimal %v worse than greedy %v", dOpt, d)
	}
}

func TestEvaluate(t *testing.T) {
	in := tinyInstance(t)
	p := NewPlacement(2, 4)
	p.Set(0, 0, true)
	p.Set(1, 1, true)
	ev := in.Evaluate(p)
	if !ev.Feasible() {
		t.Fatalf("expected feasible: %+v", ev)
	}
	if ev.Cost != 300 {
		t.Fatalf("Cost = %v", ev.Cost)
	}
	wantObj := 0.5*ev.Cost + 0.5*ev.LatencySum
	if math.Abs(ev.Objective-wantObj) > 1e-9 {
		t.Fatalf("Objective = %v, want %v", ev.Objective, wantObj)
	}
	if len(ev.Latencies) != 2 || ev.LatencySum <= 0 {
		t.Fatalf("latencies = %v", ev.Latencies)
	}
}

func TestEvaluateInfeasibleStates(t *testing.T) {
	in := tinyInstance(t)
	// Missing instance for service b.
	p := NewPlacement(2, 4)
	p.Set(0, 0, true)
	ev := in.Evaluate(p)
	if ev.MissingInstances != 1 {
		t.Fatalf("MissingInstances = %d", ev.MissingInstances)
	}
	if ev.Feasible() {
		t.Fatal("should be infeasible")
	}
	if !math.IsInf(ev.Objective, 1) {
		t.Fatalf("objective should be +Inf, got %v", ev.Objective)
	}

	// Over budget.
	in2 := tinyInstance(t)
	in2.Budget = 250
	p2 := NewPlacement(2, 4)
	p2.Set(0, 0, true)
	p2.Set(1, 1, true)
	ev2 := in2.Evaluate(p2)
	if !ev2.OverBudget || ev2.Feasible() {
		t.Fatal("budget violation not detected")
	}

	// Deadline violation.
	in3 := tinyInstance(t)
	in3.Workload.Requests[0].Deadline = 1e-6
	ev3 := in3.Evaluate(p2)
	if ev3.DeadlineViolated != 1 {
		t.Fatalf("DeadlineViolated = %d", ev3.DeadlineViolated)
	}
}

func TestStorageViolationDetected(t *testing.T) {
	g := topology.New(1)
	g.AddNode(0, 0, 10, 1.5) // storage capacity 1.5
	g.Finalize()
	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 10, 1, 1)
	b, _ := cat.Add("b", 10, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a, b})
	in := &Instance{
		Graph: g,
		Workload: &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
			{ID: 0, Home: 0, Chain: []int{a, b}, EdgeData: []float64{1}, Deadline: math.Inf(1)},
		}},
		Lambda: 0.5, Budget: 1000,
	}
	p := NewPlacement(2, 1)
	p.Set(0, 0, true)
	p.Set(1, 0, true) // 2 units > 1.5
	if in.CheckStorage(p) != 0 {
		t.Fatal("storage violation missed")
	}
	ev := in.Evaluate(p)
	if ev.StorageViolatedAt != 0 || ev.Feasible() {
		t.Fatal("evaluation missed storage violation")
	}
}

func TestStarCoefMatchesExactForSingleService(t *testing.T) {
	in := tinyInstance(t)
	req := &in.Workload.Requests[1] // single-service chain at home 3
	for k := 0; k < 4; k++ {
		coef := in.StarCoef(req, 0, k)
		d, err := in.CompletionTime(req, Assignment{Nodes: []int{k}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(coef-d) > 1e-9 {
			t.Fatalf("single-step star coef %v != exact %v at node %d", coef, d, k)
		}
	}
}

// randomInstance builds a random small instance for property testing.
func randomInstance(seed int64, nodes, users int) *Instance {
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		panic(err)
	}
	return &Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e9}
}

// randomPlacement deploys each service on 1..3 random nodes.
func randomPlacement(in *Instance, seed int64) Placement {
	r := stats.NewRand(seed)
	p := NewPlacement(in.M(), in.V())
	for i := 0; i < in.M(); i++ {
		n := 1 + r.Intn(3)
		for j := 0; j < n; j++ {
			p.Set(i, r.Intn(in.V()), true)
		}
	}
	return p
}

// Property: RouteOptimal is never worse than RouteGreedy, and both equal
// their recomputed completion times.
func TestRouteOptimalDominatesGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 10)
		p := randomPlacement(in, seed+1)
		for h := range in.Workload.Requests {
			req := &in.Workload.Requests[h]
			aOpt, dOpt, err1 := in.RouteOptimal(req, p)
			aGre, dGre, err2 := in.RouteGreedy(req, p)
			if err1 != nil || err2 != nil {
				continue
			}
			if dOpt > dGre+1e-9 {
				return false
			}
			c1, _ := in.CompletionTime(req, aOpt)
			c2, _ := in.CompletionTime(req, aGre)
			if math.Abs(c1-dOpt) > 1e-6 || math.Abs(c2-dGre) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: RouteOptimal matches brute-force enumeration on short chains
// with few candidates.
func TestRouteOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 5, 6)
		p := randomPlacement(in, seed+2)
		for h := range in.Workload.Requests {
			req := &in.Workload.Requests[h]
			if len(req.Chain) > 3 {
				continue
			}
			_, dOpt, err := in.RouteOptimal(req, p)
			if err != nil {
				continue
			}
			best := bruteForceRoute(in, req, p)
			if math.Abs(dOpt-best) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func bruteForceRoute(in *Instance, req *msvc.Request, p Placement) float64 {
	layers := make([][]int, len(req.Chain))
	for t, s := range req.Chain {
		layers[t] = p.NodesOf(s)
	}
	best := math.Inf(1)
	assign := make([]int, len(req.Chain))
	var rec func(t int)
	rec = func(t int) {
		if t == len(req.Chain) {
			d, err := in.CompletionTime(req, Assignment{Nodes: assign})
			if err == nil && d < best {
				best = d
			}
			return
		}
		for _, k := range layers[t] {
			assign[t] = k
			rec(t + 1)
		}
	}
	rec(0)
	return best
}

// Property: adding an instance never increases any request's optimal
// latency (monotonicity of the routing relaxation).
func TestMoreInstancesNeverHurtProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 8)
		p := randomPlacement(in, seed+3)
		ev1 := in.Evaluate(p)
		q := p.Clone()
		r := stats.NewRand(seed + 4)
		q.Set(r.Intn(in.M()), r.Intn(in.V()), true)
		ev2 := in.Evaluate(q)
		for h := range ev1.Latencies {
			if ev2.Latencies[h] > ev1.Latencies[h]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
