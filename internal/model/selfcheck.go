package model

import (
	"fmt"
	"math"
	"math/rand"
)

// selfCheckEvaluation revalidates a finished Evaluation against a serial
// ground-truth re-route of every request — the evaluator is the single
// scoring authority for every algorithm in the repo, so a silent
// inconsistency here corrupts every experiment. Re-routing (rather than
// inferring classes from the per-request data) is required because the
// classes are not recoverable afterwards: a disconnected-substrate request
// and a missing-instance request both end with no assignment and +Inf
// latency, yet only the latter counts in MissingInstances. The check also
// proves the parallel fan-out aggregated its counters correctly (the serial
// recount must match whatever path ran) and that per-request results are
// deterministic. O(U·routing + M·N); armed only by the soclinvariants build
// tag (invariantsEnabled), free otherwise.
//
// epoch0 is the routing index's epoch before the request fan-out: routing is
// read-only, so any epoch movement (or cache incoherence) means a stray
// mutation raced the evaluation.
func (in *Instance) selfCheckEvaluation(ev *Evaluation, ix *PlacementIndex, epoch0 uint64, mode RoutingMode, seed int64) {
	if !invariantsEnabled {
		return
	}
	if e := ix.Epoch(); e != epoch0 {
		panic(fmt.Sprintf("model: placement index mutated during evaluation (epoch %d -> %d)", epoch0, e))
	}
	if err := ix.CheckCoherent(); err != nil {
		panic("model: after evaluation: " + err.Error())
	}

	sc := &RouteScratch{}
	missing, unroutable, late, cloud := 0, 0, 0, 0
	sum := 0.0
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		var (
			a   Assignment
			d   float64
			err error
		)
		switch mode {
		case RouteModeGreedy:
			a, d, err = in.routeGreedy(req, ix)
		case RouteModeRandom:
			// Same per-request stream derivation as routeOne.
			rng := rand.New(rand.NewSource(seed + int64(h)*0x9e3779b9))
			a, d, err = in.routeRandom(req, ix, rng)
		default:
			a, d, err = in.routeOptimal(req, ix, sc)
		}
		if err != nil {
			if IsNoInstance(err) && in.Cloud != nil {
				d = in.Cloud.CloudCompletionTime(in.Workload.Catalog, req)
				cloud++
				if d > req.Deadline+FeasTol {
					late++
				}
			} else {
				d = math.Inf(1)
				missing++
			}
			if ev.Routes[h].Nodes != nil {
				panic(fmt.Sprintf("model: evaluation recount: request %d is unroutable but has assignment %v", h, ev.Routes[h].Nodes))
			}
		} else {
			if math.IsInf(d, 1) {
				unroutable++
			}
			if d > req.Deadline+FeasTol {
				late++
			}
			if len(ev.Routes[h].Nodes) != len(a.Nodes) {
				panic(fmt.Sprintf("model: evaluation recount: request %d assignment %v != recomputed %v", h, ev.Routes[h].Nodes, a.Nodes))
			}
			for t := range a.Nodes {
				if ev.Routes[h].Nodes[t] != a.Nodes[t] {
					panic(fmt.Sprintf("model: evaluation recount: request %d assignment %v != recomputed %v", h, ev.Routes[h].Nodes, a.Nodes))
				}
			}
		}
		if !almostEq(ev.Latencies[h], d, 0) {
			panic(fmt.Sprintf("model: evaluation recount: request %d latency %v != recomputed %v", h, ev.Latencies[h], d))
		}
		sum += d
	}
	if missing != ev.MissingInstances {
		panic(fmt.Sprintf("model: evaluation recount: %d missing-instance requests, counter says %d", missing, ev.MissingInstances))
	}
	if unroutable != ev.Unroutable {
		panic(fmt.Sprintf("model: evaluation recount: %d unroutable requests, counter says %d", unroutable, ev.Unroutable))
	}
	if late != ev.DeadlineViolated {
		panic(fmt.Sprintf("model: evaluation recount: %d deadline violations, counter says %d", late, ev.DeadlineViolated))
	}
	if cloud != ev.CloudServed {
		panic(fmt.Sprintf("model: evaluation recount: %d cloud-served requests, counter says %d", cloud, ev.CloudServed))
	}

	// Scalar fields must equal their defining recomputations. The latency
	// sum is compared exactly: both sides sum the same values in index
	// order, so they are bitwise equal.
	if !almostEq(sum, ev.LatencySum, 0) {
		panic(fmt.Sprintf("model: evaluation LatencySum %v != recomputed %v", ev.LatencySum, sum))
	}
	if !almostEq(ev.Cost, in.DeployCost(ev.Placement), 0) {
		panic(fmt.Sprintf("model: evaluation Cost %v != recomputed deploy cost %v", ev.Cost, in.DeployCost(ev.Placement)))
	}
	if !almostEq(ev.Objective, in.Objective(ev.Cost, ev.LatencySum), 0) {
		panic(fmt.Sprintf("model: evaluation Objective %v != recomputed %v", ev.Objective, in.Objective(ev.Cost, ev.LatencySum)))
	}
	if got := in.CheckStorage(ev.Placement); got != ev.StorageViolatedAt {
		panic(fmt.Sprintf("model: evaluation StorageViolatedAt %d != recomputed %d", ev.StorageViolatedAt, got))
	}
	if over := !in.CheckBudget(ev.Placement); over != ev.OverBudget {
		panic(fmt.Sprintf("model: evaluation OverBudget %v != recomputed %v", ev.OverBudget, over))
	}
}

// almostEq is |a-b| <= eps with equal infinities equal (eps 0 = exact).
func almostEq(a, b, eps float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return math.Abs(a-b) <= eps
}
