//go:build !soclinvariants

package model

// invariantsEnabled is false without the `soclinvariants` build tag; the
// self-checks in selfcheck.go compile to nothing.
const invariantsEnabled = false
