//go:build soclinvariants

package model

// invariantsEnabled arms the evaluator's self-checks (selfcheck.go) in
// builds tagged `soclinvariants`. The constant lives in model rather than
// internal/invariant because invariant imports model — the reverse import
// would be a cycle.
const invariantsEnabled = true
