package model

import (
	"fmt"

	"repro/internal/msvc"
	"repro/internal/topology"
)

// ShardInstance is one shard's view of a parent instance: the induced
// subgraph on the shard's nodes (owned nodes first, then halo nodes), the
// requests homed on those nodes re-indexed to local IDs, and the maps back to
// the parent. The per-shard combine solves the sub-instance; merge and
// boundary reconciliation use the maps to move placement bits between the
// local and parent coordinate systems.
type ShardInstance struct {
	// Sub is the sliced sub-instance. Its graph is finalized (per-shard
	// all-pairs tables over |nodes| nodes), its requests carry local homes
	// and local IDs, and its Budget starts as the parent's — callers
	// overwrite it with the shard's split share.
	Sub *Instance
	// Nodes maps local node ID → parent node ID; the first OwnNodes entries
	// are the shard's owned nodes, the rest its halo.
	Nodes []int
	// Reqs maps local request index → parent request index; the first
	// OwnReqs entries are homed on owned nodes, the rest on halo nodes.
	Reqs []int
	// OwnNodes and OwnReqs delimit the owned prefix of Nodes and Reqs.
	OwnNodes int
	// OwnReqs is the number of requests homed on owned nodes.
	OwnReqs int
}

// NewShardInstance slices in to the given nodes (parent IDs; owned nodes are
// nodes[:ownNodes], halo nodes the rest) and requests (parent indices;
// owned requests are reqs[:ownReqs]). Every listed request must be homed on a
// listed node. The parent graph may be unfinalized — the sub-instance
// finalizes its own extract — and the parent is never mutated.
//
// The parent's ColdStart model is NOT propagated: its cold set is keyed by
// parent node IDs, which would silently mis-price steps under local IDs. The
// cloud fallback, whose completion time is graph-free, carries over.
func NewShardInstance(in *Instance, nodes []int, ownNodes int, reqs []int, ownReqs int) (*ShardInstance, error) {
	if ownNodes < 0 || ownNodes > len(nodes) {
		return nil, fmt.Errorf("model: ownNodes %d outside [0,%d]", ownNodes, len(nodes))
	}
	if ownReqs < 0 || ownReqs > len(reqs) {
		return nil, fmt.Errorf("model: ownReqs %d outside [0,%d]", ownReqs, len(reqs))
	}
	sub := topology.Subgraph(in.Graph, nodes)
	sub.Finalize()
	localNode := make(map[int]int, len(nodes))
	for i, v := range nodes {
		localNode[v] = i
	}
	requests := make([]msvc.Request, len(reqs))
	for i, h := range reqs {
		if h < 0 || h >= len(in.Workload.Requests) {
			return nil, fmt.Errorf("model: request index %d out of range [0,%d)", h, len(in.Workload.Requests))
		}
		req := in.Workload.Requests[h] // shallow copy; Chain/EdgeData shared read-only
		home, ok := localNode[req.Home]
		if !ok {
			return nil, fmt.Errorf("model: request %d homed on node %d outside the shard", h, req.Home)
		}
		req.ID = i
		req.Home = home
		requests[i] = req
	}
	si := &ShardInstance{
		Sub: &Instance{
			Graph:    sub,
			Workload: &msvc.Workload{Catalog: in.Workload.Catalog, Requests: requests},
			Lambda:   in.Lambda,
			Budget:   in.Budget,
			Cloud:    in.Cloud,
		},
		Nodes:    append([]int(nil), nodes...),
		Reqs:     append([]int(nil), reqs...),
		OwnNodes: ownNodes,
		OwnReqs:  ownReqs,
	}
	return si, nil
}

// Restrict projects a parent placement onto the shard's nodes, producing a
// local placement over Sub's node space.
func (s *ShardInstance) Restrict(parent Placement) Placement {
	p := NewPlacement(len(parent.X), len(s.Nodes))
	for i := range parent.X {
		for k, v := range s.Nodes {
			p.Set(i, k, parent.Has(i, v))
		}
	}
	return p
}

// ScatterOwn copies the local placement's bits on owned nodes into the
// parent placement; halo columns are left untouched (they belong to
// neighboring shards).
func (s *ShardInstance) ScatterOwn(local, parent Placement) {
	for i := range local.X {
		for k := 0; k < s.OwnNodes; k++ {
			parent.Set(i, s.Nodes[k], local.Has(i, k))
		}
	}
}
