package model

// Float-comparison tolerances shared by every algorithm in the repository.
// They were historically scattered as bare literals across internal/model,
// internal/baselines, internal/combine and internal/opt; any drift between
// call sites would let two components disagree about feasibility of the same
// placement, so the values live here, next to the evaluator that defines
// Eq. 1–6.
const (
	// FeasTol is the absolute slack applied to the feasibility constraints:
	// budget (Eq. 5), per-node storage (Eq. 6), and deadline satisfaction
	// (Eq. 4). Sums of per-instance costs and per-step latencies accumulate
	// rounding error well below 1e-9 at every scale the experiments reach,
	// while real violations are orders of magnitude larger.
	FeasTol = 1e-9

	// ObjTol is the strict-improvement margin for objective comparisons:
	// a candidate only counts as better when it beats the incumbent by more
	// than ObjTol, so search loops cannot cycle on last-ulp noise between
	// evaluations of equal-quality placements.
	ObjTol = 1e-12
)
