package msvc

import (
	"repro/internal/stats"
)

// DatasetConfig controls the parameter ranges applied to the embedded
// eShopOnContainers dependency dataset. Defaults follow the paper:
// microservice compute demand q ∈ [1,3] GFLOPs; storage φ ∈ [1,2] units;
// deploy cost κ ∈ [300,700] so that one instance of every service costs
// ≈ 6000, matching the paper's 5000–8000 budget sweep.
type DatasetConfig struct {
	CostMin, CostMax       float64
	ComputeMin, ComputeMax float64
	StorageMin, StorageMax float64
}

// DefaultDatasetConfig returns the paper-aligned ranges.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		CostMin: 300, CostMax: 700,
		ComputeMin: 1, ComputeMax: 3,
		StorageMin: 1, StorageMax: 2,
	}
}

// eshopServices lists the microservices of the eShopOnContainers reference
// application (dataset [23] in the paper, "Microservices v1.0"), in the
// order they receive IDs.
var eshopServices = []string{
	"identity-api",        // 0: auth/token issuing — the chain entry for all flows
	"catalog-api",         // 1: product catalog
	"basket-api",          // 2: shopping basket (redis-backed)
	"ordering-api",        // 3: order processing
	"payment-api",         // 4: payment processing
	"marketing-api",       // 5: campaigns
	"locations-api",       // 6: geo locations
	"webhooks-api",        // 7: outbound webhooks
	"ordering-signalrhub", // 8: order status push
	"webshoppingagg",      // 9: web shopping aggregator (BFF)
	"mobileshoppingagg",   // 10: mobile shopping aggregator (BFF)
	"webstatus",           // 11: health dashboard
}

// eshopDeps lists the call edges of the dependency graph (caller → callee).
var eshopDeps = [][2]string{
	{"webshoppingagg", "catalog-api"},
	{"webshoppingagg", "basket-api"},
	{"webshoppingagg", "ordering-api"},
	{"webshoppingagg", "identity-api"},
	{"mobileshoppingagg", "catalog-api"},
	{"mobileshoppingagg", "basket-api"},
	{"mobileshoppingagg", "ordering-api"},
	{"mobileshoppingagg", "identity-api"},
	{"basket-api", "identity-api"},
	{"ordering-api", "identity-api"},
	{"ordering-api", "catalog-api"},
	{"ordering-api", "payment-api"},
	{"marketing-api", "identity-api"},
	{"marketing-api", "locations-api"},
	{"webhooks-api", "identity-api"},
	{"ordering-signalrhub", "identity-api"},
	{"ordering-signalrhub", "ordering-api"},
	{"webstatus", "catalog-api"},
	{"webstatus", "ordering-api"},
}

// eshopFlows are the canonical user journeys through the application, each a
// directed microservice chain M_h. Workload generation samples from these
// (with stochastic truncation) so that requests exhibit the overlapping-
// but-diverse dependency structure the paper observes in real traces.
var eshopFlows = [][]string{
	// Browse: login, aggregate, browse catalog.
	{"identity-api", "webshoppingagg", "catalog-api"},
	// Add to basket.
	{"identity-api", "webshoppingagg", "catalog-api", "basket-api"},
	// Checkout: the long purchase chain.
	{"identity-api", "webshoppingagg", "basket-api", "ordering-api", "payment-api"},
	// Mobile checkout.
	{"identity-api", "mobileshoppingagg", "basket-api", "ordering-api", "payment-api"},
	// Order status push.
	{"identity-api", "ordering-signalrhub", "ordering-api"},
	// Campaign view.
	{"identity-api", "marketing-api", "locations-api"},
	// Third-party webhook registration.
	{"identity-api", "webhooks-api"},
	// Ops dashboard.
	{"webstatus", "catalog-api", "ordering-api"},
	// Mobile browse.
	{"identity-api", "mobileshoppingagg", "catalog-api"},
	// Direct reorder (returning customer).
	{"identity-api", "ordering-api", "payment-api"},
}

// EShopCatalog builds the eShopOnContainers catalog with per-service
// parameters drawn deterministically from seed within cfg's ranges.
func EShopCatalog(cfg DatasetConfig, seed int64) *Catalog {
	r := stats.NewRand(stats.SplitSeed(seed, "msvc/eshop"))
	c := NewCatalog()
	for _, name := range eshopServices {
		// Errors are impossible: names are unique, ranges positive.
		if _, err := c.Add(name,
			stats.UniformIn(r, cfg.CostMin, cfg.CostMax),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax)); err != nil {
			panic(err)
		}
	}
	for _, d := range eshopDeps {
		from, _ := c.Lookup(d[0])
		to, _ := c.Lookup(d[1])
		if err := c.AddDependency(from, to); err != nil {
			panic(err)
		}
	}
	for _, f := range eshopFlows {
		chain := make([]ServiceID, len(f))
		for i, name := range f {
			id, ok := c.Lookup(name)
			if !ok {
				panic("msvc: flow references unknown service " + name)
			}
			chain[i] = id
		}
		if err := c.AddFlow(chain); err != nil {
			panic(err)
		}
	}
	return c
}

// SyntheticCatalog builds a catalog of n generically-named services whose
// dependency graph is a layered DAG, for scale experiments beyond the eShop
// size. Flows are root-to-leaf walks.
func SyntheticCatalog(n int, cfg DatasetConfig, seed int64) *Catalog {
	if n < 2 {
		n = 2
	}
	r := stats.NewRand(stats.SplitSeed(seed, "msvc/synthetic"))
	c := NewCatalog()
	for i := 0; i < n; i++ {
		name := "svc-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := c.Add(name,
			stats.UniformIn(r, cfg.CostMin, cfg.CostMax),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax)); err != nil {
			panic(err)
		}
	}
	// Layered DAG: each service calls 1-2 services with higher IDs.
	for i := 0; i < n-1; i++ {
		k := 1 + r.Intn(2)
		for j := 0; j < k; j++ {
			to := i + 1 + r.Intn(n-i-1)
			_ = c.AddDependency(i, to) // duplicate edges are harmless
		}
	}
	// Flows: walks of length 3..min(6,n) starting at random low-ID services.
	numFlows := 6 + n/2
	for f := 0; f < numFlows; f++ {
		maxLen := 3 + r.Intn(4)
		cur := r.Intn(max(1, n/3))
		chain := []ServiceID{cur}
		for len(chain) < maxLen {
			next := c.deps[cur]
			if len(next) == 0 {
				break
			}
			cur = next[r.Intn(len(next))]
			chain = append(chain, cur)
		}
		if len(chain) >= 2 {
			if err := c.AddFlow(chain); err != nil {
				panic(err)
			}
		}
	}
	if len(c.flows) == 0 {
		// Degenerate fallback: a single two-service flow always exists.
		if err := c.AddFlow([]ServiceID{0, 1}); err != nil {
			panic(err)
		}
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
