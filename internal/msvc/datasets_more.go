package msvc

import (
	"fmt"

	"repro/internal/stats"
)

// This file embeds three more microservice-based systems from the curated
// dataset family the paper draws on ([23]: "A curated dataset of
// microservices-based systems", 20 projects): Weaveworks' Sock Shop, the
// PiggyMetrics personal-finance app, and DeathStarBench's Hotel
// Reservation. Together with eShopOnContainers they let experiments sweep
// across application shapes: shallow fan-out (Sock Shop), hub-and-spoke
// (PiggyMetrics), and deep chains (Hotel Reservation).

// appSpec is a declarative application definition.
type appSpec struct {
	name     string
	services []string
	deps     [][2]string
	flows    [][]string
}

var sockShopSpec = appSpec{
	name: "sock-shop",
	services: []string{
		"front-end", "user", "catalogue", "carts", "orders",
		"payment", "shipping", "queue-master",
	},
	deps: [][2]string{
		{"front-end", "user"},
		{"front-end", "catalogue"},
		{"front-end", "carts"},
		{"front-end", "orders"},
		{"orders", "user"},
		{"orders", "carts"},
		{"orders", "payment"},
		{"orders", "shipping"},
		{"shipping", "queue-master"},
	},
	flows: [][]string{
		{"front-end", "catalogue"},
		{"front-end", "carts", "orders", "user"},
		{"front-end", "orders", "payment"},
		{"front-end", "orders", "shipping", "queue-master"},
		{"front-end", "user"},
		{"front-end", "carts", "orders", "payment"},
	},
}

var piggyMetricsSpec = appSpec{
	name: "piggymetrics",
	services: []string{
		"gateway", "auth-service", "account-service",
		"statistics-service", "notification-service", "config",
	},
	deps: [][2]string{
		{"gateway", "auth-service"},
		{"gateway", "account-service"},
		{"gateway", "statistics-service"},
		{"gateway", "notification-service"},
		{"account-service", "auth-service"},
		{"account-service", "statistics-service"},
		{"notification-service", "account-service"},
		{"account-service", "config"},
	},
	flows: [][]string{
		{"gateway", "auth-service"},
		{"gateway", "account-service", "statistics-service"},
		{"gateway", "account-service", "auth-service"},
		{"gateway", "statistics-service"},
		{"gateway", "notification-service", "account-service"},
		{"gateway", "account-service", "config"},
	},
}

var hotelReservationSpec = appSpec{
	name: "hotel-reservation",
	services: []string{
		"frontend", "search", "geo", "rate", "profile",
		"recommendation", "reservation", "user", "memcached-profile",
	},
	deps: [][2]string{
		{"frontend", "search"},
		{"frontend", "profile"},
		{"frontend", "recommendation"},
		{"frontend", "reservation"},
		{"frontend", "user"},
		{"search", "geo"},
		{"search", "rate"},
		{"geo", "rate"}, // search's geo results feed the rate lookup
		{"profile", "memcached-profile"},
		{"recommendation", "profile"},
		{"reservation", "user"},
		{"rate", "reservation"}, // chosen rate flows into the booking
	},
	flows: [][]string{
		// Search is the deep path: frontend → search → geo → rate →
		// reservation → user.
		{"frontend", "search", "geo", "rate", "reservation", "user"},
		{"frontend", "search", "geo", "rate"},
		{"frontend", "search", "rate"},
		{"frontend", "profile", "memcached-profile"},
		{"frontend", "recommendation", "profile", "memcached-profile"},
		{"frontend", "user", "reservation"},
		{"frontend", "reservation", "user"},
	},
}

// buildFromSpec materializes an appSpec with parameters drawn from cfg.
func buildFromSpec(spec appSpec, cfg DatasetConfig, seed int64) *Catalog {
	r := stats.NewRand(stats.SplitSeed(seed, "msvc/"+spec.name))
	c := NewCatalog()
	for _, name := range spec.services {
		if _, err := c.Add(name,
			stats.UniformIn(r, cfg.CostMin, cfg.CostMax),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax)); err != nil {
			panic(err) // specs are static and validated by tests
		}
	}
	for _, d := range spec.deps {
		from, ok1 := c.Lookup(d[0])
		to, ok2 := c.Lookup(d[1])
		if !ok1 || !ok2 {
			panic(fmt.Sprintf("msvc: %s dependency references unknown service %v", spec.name, d))
		}
		if err := c.AddDependency(from, to); err != nil {
			panic(err)
		}
	}
	for _, f := range spec.flows {
		chain := make([]ServiceID, len(f))
		for i, name := range f {
			id, ok := c.Lookup(name)
			if !ok {
				panic(fmt.Sprintf("msvc: %s flow references unknown service %q", spec.name, name))
			}
			chain[i] = id
		}
		if err := c.AddFlow(chain); err != nil {
			panic(err)
		}
	}
	return c
}

// SockShopCatalog builds the Weaveworks Sock Shop dependency dataset.
func SockShopCatalog(cfg DatasetConfig, seed int64) *Catalog {
	return buildFromSpec(sockShopSpec, cfg, seed)
}

// PiggyMetricsCatalog builds the PiggyMetrics dependency dataset.
func PiggyMetricsCatalog(cfg DatasetConfig, seed int64) *Catalog {
	return buildFromSpec(piggyMetricsSpec, cfg, seed)
}

// HotelReservationCatalog builds the DeathStarBench Hotel Reservation
// dependency dataset (the deep-chain workload).
func HotelReservationCatalog(cfg DatasetConfig, seed int64) *Catalog {
	return buildFromSpec(hotelReservationSpec, cfg, seed)
}

// DatasetNames lists the embedded application datasets accepted by
// CatalogByName.
func DatasetNames() []string {
	return []string{"eshop", "sock-shop", "piggymetrics", "hotel-reservation"}
}

// CatalogByName builds an embedded dataset by its name.
func CatalogByName(name string, cfg DatasetConfig, seed int64) (*Catalog, error) {
	switch name {
	case "eshop":
		return EShopCatalog(cfg, seed), nil
	case "sock-shop":
		return SockShopCatalog(cfg, seed), nil
	case "piggymetrics":
		return PiggyMetricsCatalog(cfg, seed), nil
	case "hotel-reservation":
		return HotelReservationCatalog(cfg, seed), nil
	default:
		return nil, fmt.Errorf("msvc: unknown dataset %q (have %v)", name, DatasetNames())
	}
}
