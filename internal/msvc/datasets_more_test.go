package msvc

import (
	"testing"

	"repro/internal/topology"
)

func TestAllEmbeddedDatasetsBuild(t *testing.T) {
	cfg := DefaultDatasetConfig()
	for _, name := range DatasetNames() {
		cat, err := CatalogByName(name, cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cat.Len() < 6 {
			t.Fatalf("%s: only %d services", name, cat.Len())
		}
		if len(cat.Flows()) < 5 {
			t.Fatalf("%s: only %d flows", name, len(cat.Flows()))
		}
		// For the three datasets authored in this file, every flow's
		// consecutive pair is connected in the call graph (in either
		// direction). eShop's journeys also hop between sibling services
		// (e.g. catalog → basket via their shared aggregator), which the
		// paper's chain model explicitly allows, so it is exempt.
		if name == "eshop" {
			continue
		}
		for fi, flow := range cat.Flows() {
			for i := 1; i < len(flow); i++ {
				found := false
				for _, d := range cat.Dependencies(flow[i-1]) {
					if d == flow[i] {
						found = true
					}
				}
				for _, d := range cat.Dependencies(flow[i]) {
					if d == flow[i-1] {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s flow %d: pair %s–%s not adjacent in dependency graph",
						name, fi,
						cat.Service(flow[i-1]).Name, cat.Service(flow[i]).Name)
				}
			}
		}
	}
}

func TestCatalogByNameUnknown(t *testing.T) {
	if _, err := CatalogByName("zzz", DefaultDatasetConfig(), 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetsDeterministicAndDistinct(t *testing.T) {
	cfg := DefaultDatasetConfig()
	a, _ := CatalogByName("sock-shop", cfg, 5)
	b, _ := CatalogByName("sock-shop", cfg, 5)
	for i := 0; i < a.Len(); i++ {
		if a.Service(i) != b.Service(i) {
			t.Fatal("same seed produced different parameters")
		}
	}
	// Different apps use different seed streams: parameters differ even at
	// the same seed.
	c, _ := CatalogByName("piggymetrics", cfg, 5)
	if a.Service(0).DeployCost == c.Service(0).DeployCost {
		t.Fatal("seed streams collide across datasets")
	}
}

func TestHotelReservationHasDeepChain(t *testing.T) {
	cat := HotelReservationCatalog(DefaultDatasetConfig(), 1)
	maxLen := 0
	for _, f := range cat.Flows() {
		if len(f) > maxLen {
			maxLen = len(f)
		}
	}
	if maxLen < 5 {
		t.Fatalf("deepest chain = %d, want ≥ 5", maxLen)
	}
}

func TestDatasetsGenerateWorkloads(t *testing.T) {
	g := topology.RandomGeometric(8, 0.4, topology.DefaultGenConfig(), 3)
	for _, name := range DatasetNames() {
		cat, _ := CatalogByName(name, DefaultDatasetConfig(), 3)
		w, err := GenerateWorkload(cat, g, DefaultWorkloadConfig(20), 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Requests) != 20 {
			t.Fatalf("%s: %d requests", name, len(w.Requests))
		}
	}
}
