// Package msvc models microservices, service dependency chains, and user
// requests as defined in Section III of the SoCL paper.
//
// A Catalog holds the microservice set M = {m_i} with per-service deploy cost
// κ(m_i), compute demand q(m_i) and storage footprint φ(m_i), plus the
// service dependency graph from which request chains are sampled. The
// embedded dataset (Dataset builder in dataset.go) reproduces the
// eShopOnContainers project used in the paper's evaluation.
package msvc

import (
	"fmt"
)

// ServiceID identifies a microservice within a Catalog. IDs are dense.
type ServiceID = int

// Microservice is one m_i ∈ M.
type Microservice struct {
	ID         ServiceID
	Name       string
	DeployCost float64 // κ(m_i), cost units per deployed instance
	Compute    float64 // q(m_i), GFLOPs to process one request step
	Storage    float64 // φ(m_i), storage units per instance
}

// Catalog is the microservice set M plus the service dependency graph and
// the canonical request flows sampled by workload generation.
type Catalog struct {
	services []Microservice
	byName   map[string]ServiceID
	deps     [][]ServiceID // deps[i]: services that m_i calls
	flows    [][]ServiceID // canonical user request chains (entry → leaf)
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]ServiceID)}
}

// Add inserts a microservice and returns its ID. Duplicate names or
// non-positive parameters return an error.
func (c *Catalog) Add(name string, deployCost, compute, storage float64) (ServiceID, error) {
	if _, dup := c.byName[name]; dup {
		return 0, fmt.Errorf("msvc: duplicate service %q", name)
	}
	if deployCost <= 0 || compute <= 0 || storage <= 0 {
		return 0, fmt.Errorf("msvc: non-positive parameter for %q (κ=%v q=%v φ=%v)", name, deployCost, compute, storage)
	}
	id := len(c.services)
	c.services = append(c.services, Microservice{
		ID: id, Name: name, DeployCost: deployCost, Compute: compute, Storage: storage,
	})
	c.byName[name] = id
	c.deps = append(c.deps, nil)
	return id, nil
}

// AddDependency records that service from calls service to.
func (c *Catalog) AddDependency(from, to ServiceID) error {
	if from < 0 || to < 0 || from >= len(c.services) || to >= len(c.services) {
		return fmt.Errorf("msvc: dependency (%d,%d) out of range", from, to)
	}
	if from == to {
		return fmt.Errorf("msvc: self-dependency on %d", from)
	}
	c.deps[from] = append(c.deps[from], to)
	return nil
}

// AddFlow registers a canonical request chain (sequence of service IDs).
// Chains must be non-empty and reference valid services; consecutive
// duplicates are rejected since a chain edge e_{m→m} is meaningless.
func (c *Catalog) AddFlow(chain []ServiceID) error {
	if len(chain) == 0 {
		return fmt.Errorf("msvc: empty flow")
	}
	for i, s := range chain {
		if s < 0 || s >= len(c.services) {
			return fmt.Errorf("msvc: flow references unknown service %d", s)
		}
		if i > 0 && chain[i-1] == s {
			return fmt.Errorf("msvc: flow has consecutive duplicate service %d", s)
		}
	}
	cp := make([]ServiceID, len(chain))
	copy(cp, chain)
	c.flows = append(c.flows, cp)
	return nil
}

// Len returns |M|.
func (c *Catalog) Len() int { return len(c.services) }

// Service returns the microservice with the given ID.
func (c *Catalog) Service(id ServiceID) Microservice { return c.services[id] }

// Services returns a copy of the service slice.
func (c *Catalog) Services() []Microservice {
	out := make([]Microservice, len(c.services))
	copy(out, c.services)
	return out
}

// Lookup returns the ID of the named service.
func (c *Catalog) Lookup(name string) (ServiceID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Dependencies returns the services that id calls.
func (c *Catalog) Dependencies(id ServiceID) []ServiceID {
	out := make([]ServiceID, len(c.deps[id]))
	copy(out, c.deps[id])
	return out
}

// Flows returns the canonical request chains.
func (c *Catalog) Flows() [][]ServiceID {
	out := make([][]ServiceID, len(c.flows))
	for i, f := range c.flows {
		cp := make([]ServiceID, len(f))
		copy(cp, f)
		out[i] = cp
	}
	return out
}

// TotalDeployCost returns Σ_i κ(m_i): the cost of one instance of every
// service, the natural lower bound for a feasible budget.
func (c *Catalog) TotalDeployCost() float64 {
	s := 0.0
	for _, m := range c.services {
		s += m.DeployCost
	}
	return s
}

// Request is one user request u_h = (M_h, E_h): a directed chain of
// microservices with data volumes on the ingress, chain edges, and egress.
type Request struct {
	ID   int
	Home int // f(u_h): ID of the edge server covering the user

	Chain []ServiceID // M_h in dependency order; E_h = consecutive pairs

	DataIn   float64   // r_in^h, GB uploaded to the first microservice
	DataOut  float64   // r_out^h, GB returned to the user
	EdgeData []float64 // r_{m_i→m_j}^h per chain edge; len = len(Chain)-1

	Deadline float64 // 𝒟_h^max, seconds (constraint 4); +Inf = no deadline
}

// Validate checks the structural invariants of a request.
func (r *Request) Validate(numServices, numNodes int) error {
	if len(r.Chain) == 0 {
		return fmt.Errorf("msvc: request %d has empty chain", r.ID)
	}
	if r.Home < 0 || r.Home >= numNodes {
		return fmt.Errorf("msvc: request %d home %d out of range", r.ID, r.Home)
	}
	if len(r.EdgeData) != len(r.Chain)-1 {
		return fmt.Errorf("msvc: request %d has %d edge data for %d-step chain", r.ID, len(r.EdgeData), len(r.Chain))
	}
	for _, s := range r.Chain {
		if s < 0 || s >= numServices {
			return fmt.Errorf("msvc: request %d references unknown service %d", r.ID, s)
		}
	}
	if r.DataIn < 0 || r.DataOut < 0 {
		return fmt.Errorf("msvc: request %d has negative data size", r.ID)
	}
	for _, d := range r.EdgeData {
		if d < 0 {
			return fmt.Errorf("msvc: request %d has negative edge data", r.ID)
		}
	}
	return nil
}

// Uses reports whether the request's chain contains service s.
func (r *Request) Uses(s ServiceID) bool {
	for _, m := range r.Chain {
		if m == s {
			return true
		}
	}
	return false
}

// Position classifies where service s sits in the chain: "first", "last",
// "mid", or "" if absent. Used by the ordering property ℝ of Definition 9.
func (r *Request) Position(s ServiceID) string {
	for i, m := range r.Chain {
		if m != s {
			continue
		}
		switch {
		case i == 0:
			return "first"
		case i == len(r.Chain)-1:
			return "last"
		default:
			return "mid"
		}
	}
	return ""
}
