package msvc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestCatalogAddAndLookup(t *testing.T) {
	c := NewCatalog()
	id, err := c.Add("a", 100, 2, 1)
	if err != nil || id != 0 {
		t.Fatalf("Add = %d,%v", id, err)
	}
	if _, err := c.Add("a", 100, 2, 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := c.Add("b", 0, 2, 1); err == nil {
		t.Fatal("zero cost accepted")
	}
	if got, ok := c.Lookup("a"); !ok || got != 0 {
		t.Fatalf("Lookup = %d,%v", got, ok)
	}
	if _, ok := c.Lookup("zzz"); ok {
		t.Fatal("unknown lookup succeeded")
	}
}

func TestCatalogDependencies(t *testing.T) {
	c := NewCatalog()
	a, _ := c.Add("a", 1, 1, 1)
	b, _ := c.Add("b", 1, 1, 1)
	if err := c.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDependency(a, a); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if err := c.AddDependency(a, 99); err == nil {
		t.Fatal("out-of-range dependency accepted")
	}
	deps := c.Dependencies(a)
	if len(deps) != 1 || deps[0] != b {
		t.Fatalf("Dependencies = %v", deps)
	}
}

func TestCatalogFlows(t *testing.T) {
	c := NewCatalog()
	a, _ := c.Add("a", 1, 1, 1)
	b, _ := c.Add("b", 1, 1, 1)
	if err := c.AddFlow(nil); err == nil {
		t.Fatal("empty flow accepted")
	}
	if err := c.AddFlow([]ServiceID{a, a}); err == nil {
		t.Fatal("consecutive duplicate accepted")
	}
	if err := c.AddFlow([]ServiceID{a, 42}); err == nil {
		t.Fatal("unknown service accepted")
	}
	if err := c.AddFlow([]ServiceID{a, b}); err != nil {
		t.Fatal(err)
	}
	flows := c.Flows()
	flows[0][0] = 999 // mutation must not leak into the catalog
	if c.Flows()[0][0] != a {
		t.Fatal("Flows returned aliased storage")
	}
}

func TestEShopCatalogShape(t *testing.T) {
	c := EShopCatalog(DefaultDatasetConfig(), 1)
	if c.Len() != 12 {
		t.Fatalf("eShop services = %d, want 12", c.Len())
	}
	if len(c.Flows()) != 10 {
		t.Fatalf("eShop flows = %d, want 10", len(c.Flows()))
	}
	cfg := DefaultDatasetConfig()
	for _, m := range c.Services() {
		if m.DeployCost < cfg.CostMin || m.DeployCost > cfg.CostMax {
			t.Fatalf("cost %v out of range", m.DeployCost)
		}
		if m.Compute < cfg.ComputeMin || m.Compute > cfg.ComputeMax {
			t.Fatalf("compute %v out of range", m.Compute)
		}
		if m.Storage < cfg.StorageMin || m.Storage > cfg.StorageMax {
			t.Fatalf("storage %v out of range", m.Storage)
		}
	}
	// Identity is the entry service of most flows.
	id, ok := c.Lookup("identity-api")
	if !ok {
		t.Fatal("identity-api missing")
	}
	entries := 0
	for _, f := range c.Flows() {
		if f[0] == id {
			entries++
		}
	}
	if entries < 7 {
		t.Fatalf("identity-api starts only %d flows", entries)
	}
}

func TestEShopCatalogDeterministic(t *testing.T) {
	a := EShopCatalog(DefaultDatasetConfig(), 7)
	b := EShopCatalog(DefaultDatasetConfig(), 7)
	for i := 0; i < a.Len(); i++ {
		if a.Service(i) != b.Service(i) {
			t.Fatalf("service %d differs across same-seed builds", i)
		}
	}
	c := EShopCatalog(DefaultDatasetConfig(), 8)
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Service(i) != c.Service(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters")
	}
}

func TestSyntheticCatalog(t *testing.T) {
	c := SyntheticCatalog(20, DefaultDatasetConfig(), 3)
	if c.Len() != 20 {
		t.Fatalf("Len = %d", c.Len())
	}
	if len(c.Flows()) == 0 {
		t.Fatal("no flows generated")
	}
	// Dependencies must point to higher IDs (layered DAG → acyclic).
	for i := 0; i < c.Len(); i++ {
		for _, d := range c.Dependencies(i) {
			if d <= i {
				t.Fatalf("dependency %d → %d is not forward", i, d)
			}
		}
	}
	if SyntheticCatalog(0, DefaultDatasetConfig(), 1).Len() != 2 {
		t.Fatal("n<2 not clamped")
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{ID: 0, Home: 0, Chain: []ServiceID{0, 1}, EdgeData: []float64{1}, DataIn: 1, DataOut: 1}
	if err := good.Validate(2, 1); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []Request{
		{ID: 1, Home: 0, Chain: nil},
		{ID: 2, Home: 5, Chain: []ServiceID{0}, EdgeData: nil},
		{ID: 3, Home: 0, Chain: []ServiceID{0, 1}, EdgeData: nil},
		{ID: 4, Home: 0, Chain: []ServiceID{0, 9}, EdgeData: []float64{1}},
		{ID: 5, Home: 0, Chain: []ServiceID{0}, EdgeData: nil, DataIn: -1},
		{ID: 6, Home: 0, Chain: []ServiceID{0, 1}, EdgeData: []float64{-2}},
	}
	for _, r := range bad {
		if err := r.Validate(2, 1); err == nil {
			t.Fatalf("invalid request %d accepted", r.ID)
		}
	}
}

func TestRequestUsesPosition(t *testing.T) {
	r := Request{Chain: []ServiceID{3, 1, 4}}
	if !r.Uses(1) || r.Uses(9) {
		t.Fatal("Uses wrong")
	}
	if r.Position(3) != "first" || r.Position(1) != "mid" || r.Position(4) != "last" || r.Position(9) != "" {
		t.Fatalf("Position wrong: %s %s %s %s", r.Position(3), r.Position(1), r.Position(4), r.Position(9))
	}
}

func testGraph() *topology.Graph {
	return topology.RandomGeometric(8, 0.4, topology.DefaultGenConfig(), 11)
}

func TestGenerateWorkloadBasic(t *testing.T) {
	cat := EShopCatalog(DefaultDatasetConfig(), 1)
	g := testGraph()
	w, err := GenerateWorkload(cat, g, DefaultWorkloadConfig(30), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Requests) != 30 {
		t.Fatalf("requests = %d", len(w.Requests))
	}
	cfg := DefaultWorkloadConfig(30)
	for _, r := range w.Requests {
		if err := r.Validate(cat.Len(), g.N()); err != nil {
			t.Fatal(err)
		}
		for _, d := range r.EdgeData {
			if d < cfg.EdgeDataMin || d > cfg.EdgeDataMax {
				t.Fatalf("edge data %v out of range", d)
			}
		}
		if r.Deadline <= 0 || math.IsInf(r.Deadline, 1) {
			t.Fatalf("deadline %v not finite positive", r.Deadline)
		}
	}
}

func TestGenerateWorkloadErrors(t *testing.T) {
	g := testGraph()
	if _, err := GenerateWorkload(NewCatalog(), g, DefaultWorkloadConfig(5), 1); err == nil {
		t.Fatal("empty catalog accepted")
	}
	c := NewCatalog()
	c.Add("a", 1, 1, 1)
	if _, err := GenerateWorkload(c, g, DefaultWorkloadConfig(5), 1); err == nil {
		t.Fatal("flowless catalog accepted")
	}
	cat := EShopCatalog(DefaultDatasetConfig(), 1)
	cfg := DefaultWorkloadConfig(-1)
	if _, err := GenerateWorkload(cat, g, cfg, 1); err == nil {
		t.Fatal("negative user count accepted")
	}
}

func TestGenerateWorkloadNoDeadline(t *testing.T) {
	cat := EShopCatalog(DefaultDatasetConfig(), 1)
	cfg := DefaultWorkloadConfig(5)
	cfg.DeadlineSlack = 0
	w, err := GenerateWorkload(cat, testGraph(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Requests {
		if !math.IsInf(r.Deadline, 1) {
			t.Fatalf("deadline should be +Inf, got %v", r.Deadline)
		}
	}
}

func TestWorkloadQueries(t *testing.T) {
	cat := EShopCatalog(DefaultDatasetConfig(), 1)
	g := testGraph()
	w, err := GenerateWorkload(cat, g, DefaultWorkloadConfig(50), 9)
	if err != nil {
		t.Fatal(err)
	}
	// UsersAt partitions the request set.
	total := 0
	for k := 0; k < g.N(); k++ {
		total += len(w.UsersAt(k))
	}
	if total != 50 {
		t.Fatalf("UsersAt total = %d", total)
	}
	// DemandCount consistency with NodesRequesting.
	for _, s := range w.ServicesUsed() {
		nodes := w.NodesRequesting(s)
		for i := 1; i < len(nodes); i++ {
			if nodes[i] <= nodes[i-1] {
				t.Fatal("NodesRequesting not sorted")
			}
		}
		sum := 0
		for k := 0; k < g.N(); k++ {
			c := w.DemandCount(k, s)
			if c > 0 {
				found := false
				for _, n := range nodes {
					if n == k {
						found = true
					}
				}
				if !found {
					t.Fatalf("node %d has demand for %d but missing from NodesRequesting", k, s)
				}
			}
			sum += c
		}
		if sum == 0 {
			t.Fatalf("service %d marked used but has zero demand", s)
		}
	}
}

func TestWorkloadHotspotConcentration(t *testing.T) {
	cat := EShopCatalog(DefaultDatasetConfig(), 1)
	g := testGraph()
	cfg := DefaultWorkloadConfig(400)
	cfg.Hotspot = 0.9
	cfg.HotspotNodes = 2
	w, err := GenerateWorkload(cat, g, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	inHot := 0
	for _, r := range w.Requests {
		if r.Home < 2 {
			inHot++
		}
	}
	if float64(inHot)/400 < 0.7 {
		t.Fatalf("hotspot fraction %v too low for Hotspot=0.9", float64(inHot)/400)
	}
}

// Property: generated workloads are structurally valid and deterministic for
// any seed.
func TestGenerateWorkloadProperty(t *testing.T) {
	cat := EShopCatalog(DefaultDatasetConfig(), 1)
	g := testGraph()
	f := func(seed int64) bool {
		w1, err1 := GenerateWorkload(cat, g, DefaultWorkloadConfig(20), seed)
		w2, err2 := GenerateWorkload(cat, g, DefaultWorkloadConfig(20), seed)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range w1.Requests {
			a, b := w1.Requests[i], w2.Requests[i]
			if a.Home != b.Home || len(a.Chain) != len(b.Chain) || a.DataIn != b.DataIn {
				return false
			}
			if a.Validate(cat.Len(), g.N()) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
