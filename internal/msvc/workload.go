package msvc

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/topology"
)

// WorkloadConfig controls request generation. Data volumes follow the
// paper's ranges ([1,80] GB per chain edge); ingress/egress volumes are
// smaller since they carry user payloads rather than inter-service state.
type WorkloadConfig struct {
	NumUsers int

	EdgeDataMin, EdgeDataMax float64 // r_{m_i→m_j} range, GB
	InDataMin, InDataMax     float64 // r_in range, GB
	OutDataMin, OutDataMax   float64 // r_out range, GB

	// Hotspot concentrates user homes: fraction Hotspot of users lands on
	// the HotspotNodes lowest-ID nodes (the stadium crowd); the rest are
	// uniform. Hotspot = 0 gives a uniform distribution.
	Hotspot      float64
	HotspotNodes int

	// DeadlineSlack sets 𝒟_h^max = DeadlineSlack × (a pessimistic serial
	// latency estimate for the chain). 0 disables deadlines (+Inf).
	DeadlineSlack float64

	// TruncateProb is the per-request probability of truncating a sampled
	// flow by one trailing service (mimicking abandoned journeys and giving
	// trace diversity). Applied at most twice and never below length 1.
	TruncateProb float64
}

// DefaultWorkloadConfig returns paper-aligned generation parameters for n
// users.
func DefaultWorkloadConfig(n int) WorkloadConfig {
	return WorkloadConfig{
		NumUsers:    n,
		EdgeDataMin: 1, EdgeDataMax: 80,
		InDataMin: 1, InDataMax: 10,
		OutDataMin: 1, OutDataMax: 10,
		Hotspot:       0.4,
		HotspotNodes:  3,
		DeadlineSlack: 5,
		TruncateProb:  0.3,
	}
}

// Workload couples a catalog with a generated request population over a
// concrete topology.
type Workload struct {
	Catalog  *Catalog
	Requests []Request
}

// GenerateWorkload draws cfg.NumUsers requests over graph g using chains
// sampled from the catalog's flows. All randomness derives from seed.
func GenerateWorkload(cat *Catalog, g *topology.Graph, cfg WorkloadConfig, seed int64) (*Workload, error) {
	if cat.Len() == 0 {
		return nil, fmt.Errorf("msvc: empty catalog")
	}
	if len(cat.Flows()) == 0 {
		return nil, fmt.Errorf("msvc: catalog has no flows to sample")
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("msvc: empty topology")
	}
	if cfg.NumUsers < 0 {
		return nil, fmt.Errorf("msvc: negative user count %d", cfg.NumUsers)
	}
	r := stats.NewRand(stats.SplitSeed(seed, "msvc/workload"))
	flows := cat.Flows()

	// Pessimistic per-GB transfer estimate for deadline scaling: the worst
	// finite pairwise path cost in the graph. Only computed when deadlines
	// are enabled — the O(|V|²) scan needs a finalized graph, and disabling
	// deadlines is what lets the sharded pipeline generate workloads over
	// huge unfinalized clustered substrates.
	worstPath := 0.0
	minCompute := math.Inf(1)
	if cfg.DeadlineSlack > 0 {
		for a := 0; a < g.N(); a++ {
			for b := 0; b < g.N(); b++ {
				if c := g.PathCost(a, b); !math.IsInf(c, 1) && c > worstPath {
					worstPath = c
				}
			}
		}
		for _, n := range g.Nodes() {
			if n.Compute < minCompute {
				minCompute = n.Compute
			}
		}
	}

	w := &Workload{Catalog: cat, Requests: make([]Request, 0, cfg.NumUsers)}
	hot := cfg.HotspotNodes
	if hot <= 0 || hot > g.N() {
		hot = g.N()
	}
	for h := 0; h < cfg.NumUsers; h++ {
		// Home node: hotspot or uniform.
		var home int
		if r.Float64() < cfg.Hotspot {
			home = r.Intn(hot)
		} else {
			home = r.Intn(g.N())
		}

		// Chain: sample a flow, maybe truncate.
		base := flows[r.Intn(len(flows))]
		chain := make([]ServiceID, len(base))
		copy(chain, base)
		for cut := 0; cut < 2 && len(chain) > 1 && r.Float64() < cfg.TruncateProb; cut++ {
			chain = chain[:len(chain)-1]
		}

		req := Request{
			ID:      h,
			Home:    home,
			Chain:   chain,
			DataIn:  stats.UniformIn(r, cfg.InDataMin, cfg.InDataMax),
			DataOut: stats.UniformIn(r, cfg.OutDataMin, cfg.OutDataMax),
		}
		req.EdgeData = make([]float64, len(chain)-1)
		for i := range req.EdgeData {
			req.EdgeData[i] = stats.UniformIn(r, cfg.EdgeDataMin, cfg.EdgeDataMax)
		}

		if cfg.DeadlineSlack > 0 {
			est := req.DataIn*worstPath + req.DataOut*worstPath
			for i, s := range chain {
				est += cat.Service(s).Compute / minCompute
				if i > 0 {
					est += req.EdgeData[i-1] * worstPath
				}
			}
			req.Deadline = cfg.DeadlineSlack * est
		} else {
			req.Deadline = math.Inf(1)
		}

		if err := req.Validate(cat.Len(), g.N()); err != nil {
			return nil, err
		}
		w.Requests = append(w.Requests, req)
	}
	return w, nil
}

// UsersAt returns the requests homed at node k (the U_k of the system
// model).
func (w *Workload) UsersAt(k int) []Request {
	var out []Request
	for _, r := range w.Requests {
		if r.Home == k {
			out = append(out, r)
		}
	}
	return out
}

// DemandCount returns |𝕌_{v_k}^{m_i}|: the number of requests homed at node
// k whose chain contains service s.
func (w *Workload) DemandCount(k int, s ServiceID) int {
	n := 0
	for _, r := range w.Requests {
		if r.Home == k && r.Uses(s) {
			n++
		}
	}
	return n
}

// NodesRequesting returns the sorted node IDs hosting at least one request
// that uses service s — the V(m_i) node set of Algorithm 1.
func (w *Workload) NodesRequesting(s ServiceID) []int {
	seen := map[int]bool{}
	for _, r := range w.Requests {
		if r.Uses(s) {
			seen[r.Home] = true
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	// insertion sort — node counts are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ServicesUsed returns the set of service IDs appearing in any request.
func (w *Workload) ServicesUsed() []ServiceID {
	seen := make([]bool, w.Catalog.Len())
	for _, r := range w.Requests {
		for _, s := range r.Chain {
			seen[s] = true
		}
	}
	var out []ServiceID
	for s, ok := range seen {
		if ok {
			out = append(out, s)
		}
	}
	return out
}
