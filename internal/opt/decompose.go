package opt

import (
	"math"
	"sort"
	"time"

	"repro/internal/model"
)

// SolveDecomposed is an extension solver exploiting the full separability
// of the star-linearized SoCL ILP: with the storage constraint relaxed, the
// problem decomposes per service into a p-median trade between instance
// count and demand latency, coupled only through the budget. It
//
//  1. computes, per service, the exact optimal node subset for each
//     instance count n (enumeration with a rigorous marginal-gain cutoff:
//     once λ·κ exceeds the remaining latency headroom L(n) − L(∞), larger
//     n cannot pay off), and
//  2. picks one option per service by exact multi-choice knapsack over the
//     budget.
//
// The result is the true ILP optimum whenever the assembled placement also
// satisfies storage (Applicable == true, Status == Optimal); otherwise the
// caller must fall back to the branch-and-bound Solve. On instances where
// it applies it is typically orders of magnitude faster — the ablation
// benchmarks quantify this.
type DecomposedResult struct {
	Result
	// Applicable reports whether the decomposition's optimum is valid: the
	// storage-relaxed optimum happened to satisfy the storage constraint.
	Applicable bool
}

// maxEnumeratedInstances caps the per-service subset enumeration depth;
// C(V, n) growth makes n beyond this impractical, and the marginal-gain
// cutoff almost always fires earlier.
const maxEnumeratedInstances = 6

// SolveDecomposed runs the decomposition. opts.TimeLimit bounds the whole
// computation; WarmStart and MaxNodes are ignored.
func SolveDecomposed(in *model.Instance, opts Options) (DecomposedResult, error) {
	if err := in.Validate(); err != nil {
		return DecomposedResult{}, err
	}
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	start := time.Now()
	s := newSolver(in, opts) // reuse demand/cap precomputation
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	type option struct {
		n      int
		subset []int
		lat    float64
	}
	options := make([][]option, len(s.used))
	for si := range s.used {
		//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
		if !deadline.IsZero() && time.Now().After(deadline) {
			//socllint:ignore detrand elapsed wall time is reported, never branched on
			return DecomposedResult{Result: Result{Status: NoSolution, Elapsed: time.Since(start)}}, nil
		}
		maxN := s.capSvc[si]
		if maxN > maxEnumeratedInstances {
			maxN = maxEnumeratedInstances
		}
		if maxN > s.V {
			maxN = s.V
		}
		linf := s.pmedianInf[si]
		prevLat := math.Inf(1)
		for n := 1; n <= maxN; n++ {
			lat, subset := s.bestSubset(si, n)
			if math.IsInf(lat, 1) {
				break
			}
			options[si] = append(options[si], option{n: n, subset: subset, lat: lat})
			// Rigorous cutoff: every further instance costs λκ but the
			// total remaining latency headroom is lat − L(∞). When the
			// headroom cannot repay even one more instance, larger n is
			// dominated.
			if s.lambda*s.kappa[si] >= (1-s.lambda)*(lat-linf)-model.ObjTol {
				break
			}
			if lat >= prevLat-model.ObjTol && n > 1 {
				break // no latency progress; κ only grows
			}
			prevLat = lat
		}
		if len(options[si]) == 0 {
			//socllint:ignore detrand elapsed wall time is reported, never branched on
			return DecomposedResult{Result: Result{Status: Infeasible, Elapsed: time.Since(start)}}, nil
		}
	}

	// Exact multi-choice knapsack by DFS with optimistic remaining bound.
	// Services ordered by descending cost spread to tighten pruning.
	order := make([]int, len(s.used))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return s.kappa[order[a]] > s.kappa[order[b]]
	})
	// minTail[i]: Σ over order[i:] of the cheapest option value and cost.
	n := len(order)
	minTailVal := make([]float64, n+1)
	minTailCost := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		si := order[i]
		bestVal, bestCost := math.Inf(1), math.Inf(1)
		for _, o := range options[si] {
			v := s.lambda*s.kappa[si]*float64(o.n) + (1-s.lambda)*o.lat
			if v < bestVal {
				bestVal = v
			}
			if c := s.kappa[si] * float64(o.n); c < bestCost {
				bestCost = c
			}
		}
		minTailVal[i] = minTailVal[i+1] + bestVal
		minTailCost[i] = minTailCost[i+1] + bestCost
	}

	bestTotal := math.Inf(1)
	choice := make([]int, n)
	bestChoice := make([]int, n)
	var dfs func(i int, cost, val float64)
	dfs = func(i int, cost, val float64) {
		if val+minTailVal[i] >= bestTotal-model.ObjTol {
			return
		}
		if cost+minTailCost[i] > s.budget+model.FeasTol {
			return
		}
		if i == n {
			bestTotal = val
			copy(bestChoice, choice)
			return
		}
		si := order[i]
		for oi, o := range options[si] {
			c := s.kappa[si] * float64(o.n)
			if cost+c > s.budget+model.FeasTol {
				continue
			}
			choice[i] = oi
			dfs(i+1, cost+c, val+s.lambda*c+(1-s.lambda)*o.lat)
		}
	}
	dfs(0, 0, 0)
	if math.IsInf(bestTotal, 1) {
		//socllint:ignore detrand elapsed wall time is reported, never branched on
		return DecomposedResult{Result: Result{Status: Infeasible, Elapsed: time.Since(start)}}, nil
	}

	p := model.NewPlacement(in.M(), s.V)
	for i, si := range order {
		svc := s.used[si]
		for _, k := range options[si][bestChoice[i]].subset {
			p.Set(svc, k, true)
		}
	}
	res := DecomposedResult{
		Result: Result{
			Status:        Optimal,
			Placement:     p,
			StarObjective: bestTotal,
			Bound:         bestTotal,
			//socllint:ignore detrand elapsed wall time is reported, never branched on
			Elapsed: time.Since(start),
		},
		Applicable: in.CheckStorage(p) == -1,
	}
	if !res.Applicable {
		// The storage-relaxed optimum violates storage: bestTotal is still
		// a valid lower bound on the true optimum, but the placement isn't
		// a certified solution.
		res.Status = Feasible
	}
	return res, nil
}

// bestSubset finds the exact minimum total demand latency for service si
// using exactly n instances, returning the latency and the argmin node
// subset. Mirrors computePMedianBounds but keeps the winning subset.
func (s *solver) bestSubset(si, n int) (float64, []int) {
	D := s.demands[si]
	cur := make([]float64, len(D))
	pick := make([]int, 0, n)
	best := math.Inf(1)
	bestPick := make([]int, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			tot := 0.0
			for _, c := range cur {
				tot += c
			}
			if tot < best {
				best = tot
				copy(bestPick, pick)
			}
			return
		}
		for k := start; k <= s.V-(n-depth); k++ {
			var saved []float64
			var savedIdx []int
			for di, d := range D {
				if d.coef[k] < cur[di] {
					saved = append(saved, cur[di])
					savedIdx = append(savedIdx, di)
					cur[di] = d.coef[k]
				}
			}
			pick = append(pick, k)
			rec(k+1, depth+1)
			pick = pick[:len(pick)-1]
			for i, di := range savedIdx {
				cur[di] = saved[i]
			}
		}
	}
	for di := range cur {
		cur[di] = math.Inf(1)
	}
	rec(0, 0)
	if math.IsInf(best, 1) {
		return best, nil
	}
	out := make([]int, n)
	copy(out, bestPick)
	return best, out
}
