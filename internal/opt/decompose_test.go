package opt

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topology"

	"repro/internal/model"
	"repro/internal/msvc"
)

// storageRichInstance builds instances where storage never binds, so the
// decomposition is always applicable and must match branch-and-bound.
func storageRichInstance(nodes, users, services int, seed int64) *model.Instance {
	gcfg := topology.DefaultGenConfig()
	gcfg.StorageMin, gcfg.StorageMax = 100, 200
	g := topology.RandomGeometric(nodes, 0.5, gcfg, seed)
	cat := msvc.SyntheticCatalog(services, msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e5}
}

func TestDecomposedMatchesBranchAndBound(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := storageRichInstance(6, 8, 4, seed)
		dec, err := SolveDecomposed(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Applicable || dec.Status != Optimal {
			t.Fatalf("seed %d: decomposition not applicable on storage-rich instance: %+v", seed, dec.Status)
		}
		bb, err := Solve(in, Options{TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if bb.Status != Optimal {
			t.Skipf("seed %d: B&B did not prove in time", seed)
		}
		if math.Abs(dec.StarObjective-bb.StarObjective) > 1e-6 {
			t.Fatalf("seed %d: decomposed %v != B&B %v", seed, dec.StarObjective, bb.StarObjective)
		}
	}
}

func TestDecomposedInfeasibleBudget(t *testing.T) {
	in := storageRichInstance(5, 6, 4, 9)
	in.Budget = 1
	dec, err := SolveDecomposed(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", dec.Status)
	}
}

func TestDecomposedStorageConflictFlagged(t *testing.T) {
	// One node with tiny storage and all demand: the storage-relaxed
	// optimum piles everything there and must be flagged inapplicable.
	g := topology.New(2)
	g.AddNode(0, 0, 20, 1.0) // tiny storage, fast
	g.AddNode(1, 0, 5, 50)
	if err := g.AddLink(0, 1, 30); err != nil {
		t.Fatal(err)
	}
	g.Finalize()
	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 2, 0.9)
	b, _ := cat.Add("b", 100, 2, 0.9)
	cat.AddFlow([]msvc.ServiceID{a, b})
	w := &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
		{ID: 0, Home: 0, Chain: []int{a, b}, DataIn: 5, DataOut: 5, EdgeData: []float64{5}, Deadline: math.Inf(1)},
		{ID: 1, Home: 0, Chain: []int{a, b}, DataIn: 5, DataOut: 5, EdgeData: []float64{5}, Deadline: math.Inf(1)},
	}}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e4}
	dec, err := SolveDecomposed(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Applicable {
		// Both services (0.9 each) on node 0 (capacity 1.0) would violate.
		t.Fatalf("storage conflict not flagged; placement %+v", dec.Placement)
	}
	if dec.Status != Feasible {
		t.Fatalf("status = %v, want feasible-with-conflict", dec.Status)
	}
}

func TestDecomposedScalesBeyondBranchAndBound(t *testing.T) {
	// A scale where B&B would cap out: the decomposition must finish fast
	// and produce a feasible evaluable placement.
	in := storageRichInstance(15, 60, 8, 3)
	t0 := time.Now()
	dec, err := SolveDecomposed(in, Options{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != Optimal || !dec.Applicable {
		t.Fatalf("status = %v applicable=%v", dec.Status, dec.Applicable)
	}
	if el := time.Since(t0); el > 10*time.Second {
		t.Fatalf("decomposition too slow: %v", el)
	}
	ev := in.Evaluate(dec.Placement)
	if ev.MissingInstances != 0 {
		t.Fatal("decomposed placement misses instances")
	}
}

// Property: the decomposition's objective is never worse than the greedy
// incumbent of the branch-and-bound solver (both optimize the same star
// objective; the decomposition is exact under relaxed storage).
func TestDecomposedDominatesGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := storageRichInstance(6, 10, 4, seed)
		dec, err := SolveDecomposed(in, Options{})
		if err != nil || dec.Status != Optimal || !dec.Applicable {
			return false
		}
		bb, err := Solve(in, Options{MaxNodes: 1})
		if err != nil {
			return false
		}
		if bb.Status == Optimal || bb.Status == Feasible {
			return dec.StarObjective <= bb.StarObjective+1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
