// Parallel branch-and-bound engine for the specialized OPT solver. Same
// architecture as internal/ilp's engine (DESIGN.md §9, §14): the root of the
// fixing tree seeds a work-stealing pool (internal/bb); each worker runs the
// original recursive search over a private copy of the mutable fixing state
// and, while some other worker is starving, peels off the x=0 sibling of a
// shallow branch point as a stealable decision prefix. Options.StaticFrontier
// restores the previous scheduler (serial breadth-first expansion to a fixed
// frontier, drained through an atomic cursor) as a reference schedule. The
// incumbent is shared through an atomic best-objective plus a mutex-guarded
// store with a lexicographic tie-break over the decision vector (along the
// static branching order, x=1 before x=0 — the order the serial search visits
// leaves in), and the bound prune keeps ties alive (cut only when lb exceeds
// the incumbent by more than model.ObjTol), so every worker count — and every
// schedule — returns the same placement.
package opt

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bb"
	"repro/internal/invariant"
	"repro/internal/model"
)

// frontierTarget is the Options.StaticFrontier expansion size — a fixed
// constant, not a function of the worker count, so the serial prefix of the
// search is identical for every Options.Workers value.
const frontierTarget = 64

// stealDepth caps how deep in the fixing tree a branch point may still be
// shared with the pool. Below it the x=0 sibling is always explored locally:
// deep subtrees are small, so sharing them buys no balance but costs a
// decision-prefix copy per push.
const stealDepth = 24

// resolveWorkers maps the Options.Workers knob to a pool size.
func resolveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// pnode is one expansion node: the decision vector for order[0:len(dec)]
// (1 = fixed on, 0 = fixed off).
type pnode struct {
	dec []int8
}

type optEngine struct {
	opts     Options
	maxNodes int64
	deadline time.Time

	// Shared incumbent: bits carries the best objective for lock-free prune
	// reads; the decision vector, placement and tie-break run under mu.
	mu           sync.Mutex
	bits         atomic.Uint64
	incDec       []int8
	incObj       float64
	incOK        bool
	incPlacement model.Placement

	nodes   atomic.Int64
	aborted atomic.Bool
}

// solveEngine is the parallel counterpart of (*solver).run.
func solveEngine(in *model.Instance, opts Options) Result {
	workers := resolveWorkers(opts.Workers)
	base := newSolver(in, opts)
	e := &optEngine{opts: opts, maxNodes: opts.MaxNodes}
	e.bits.Store(math.Float64bits(math.Inf(1)))
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	start := time.Now()
	if opts.TimeLimit > 0 {
		e.deadline = start.Add(opts.TimeLimit)
	}
	rootBound := base.lowerBound()

	// Seed incumbents exactly as the serial search does — warm start, then
	// the greedy completion heuristic — and move the winner into the store.
	if opts.WarmStart != nil {
		if obj, ok := base.starObjectiveOf(*opts.WarmStart); ok {
			base.incumbent = opts.WarmStart.Clone()
			base.incumbentObj = obj
			base.haveIncumbent = true
		}
	}
	base.tryGreedyIncumbent()
	if base.haveIncumbent {
		e.offer(decOfPlacement(base, base.incumbent), base.incumbentObj, base.incumbent.Clone())
	}

	if opts.StaticFrontier {
		// Reference scheduler: deterministic breadth-first expansion to the
		// frontier, run on the base solver (its mutable state is restored
		// after each node), then an atomic-cursor pool over the roots.
		queue := []pnode{{}}
		for len(queue) > 0 && len(queue) < frontierTarget && !e.aborted.Load() {
			nd := queue[0]
			queue = queue[1:]
			applyPrefix(base, nd.dec)
			queue = append(queue, e.expandNode(base, nd)...)
			unapplyPrefix(base, nd.dec)
		}

		if len(queue) > 0 && !e.aborted.Load() {
			frontier := queue
			var next atomic.Int64
			var wg sync.WaitGroup
			for wi := 0; wi < workers; wi++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ws := cloneSearchState(base)
					for !e.aborted.Load() {
						i := next.Add(1) - 1
						if i >= int64(len(frontier)) {
							return
						}
						nd := frontier[i]
						applyPrefix(ws, nd.dec)
						e.dfs(ws, len(nd.dec))
						unapplyPrefix(ws, nd.dec)
					}
				}()
			}
			wg.Wait()
		}
	} else {
		// Work-stealing scheduler: the whole tree is one seed; balance comes
		// from workers peeling shallow x=0 siblings off their dive while
		// others starve. Each worker keeps its own fixing-state clone, and a
		// stolen node replays its decision prefix onto it — the node's search
		// state depends only on its tree position, never on the schedule.
		states := make([]*solver, workers)
		for i := range states {
			states[i] = cloneSearchState(base)
		}
		// bb.Run returns an error only when the process callback does; this
		// one never fails (limits abort via e.aborted, which is the stop fn).
		_, _ = bb.Run(workers, []pnode{{}}, e.aborted.Load, func(c *bb.Ctx[pnode], nd pnode) error {
			ws := states[c.Worker()]
			applyPrefix(ws, nd.dec)
			e.stealDFS(c, ws, len(nd.dec))
			unapplyPrefix(ws, nd.dec)
			return nil
		})
	}

	res := Result{Bound: rootBound}
	//socllint:ignore detrand elapsed wall time is reported, never branched on
	res.Elapsed = time.Since(start)
	n := e.nodes.Load()
	if e.maxNodes > 0 && n > e.maxNodes {
		n = e.maxNodes // workers may overshoot the counter by the pool size
	}
	res.Nodes = n
	aborted := e.aborted.Load()
	switch {
	case e.incOK && !aborted:
		res.Status = Optimal
		res.Placement = e.incPlacement
		res.StarObjective = e.incObj
		res.Bound = e.incObj
	case e.incOK:
		res.Status = Feasible
		res.Placement = e.incPlacement
		res.StarObjective = e.incObj
	case aborted:
		res.Status = NoSolution
	default:
		res.Status = Infeasible
	}
	return res
}

// countNode claims one node against the global limits. Mirrors the serial
// limitHit semantics: the limit-hitting node is counted but not processed,
// and the wall clock is checked only every 256 nodes.
func (e *optEngine) countNode() bool {
	n := e.nodes.Add(1)
	if e.maxNodes > 0 && n >= e.maxNodes {
		e.aborted.Store(true)
		return false
	}
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	if !e.deadline.IsZero() && n%256 == 0 && time.Now().After(e.deadline) {
		e.aborted.Store(true)
		return false
	}
	return true
}

// pruned is the deterministic bound test (see DESIGN.md §9). A subtree is
// cut when its bound exceeds the incumbent by more than model.ObjTol — and,
// within the tie window, when its decision prefix is already
// lexicographically greater than the incumbent's vector. The second rule is
// what keeps tie enumeration from exploding once an optimal incumbent is
// known, and it is schedule-safe: the lex-smallest optimal leaf L always
// survives, because any subtree containing L has a prefix that agrees with L
// and is therefore never lex-greater than an incumbent L precedes.
func (e *optEngine) pruned(s *solver, pos int, lb float64) bool {
	best := math.Float64frombits(e.bits.Load())
	if lb > best+model.ObjTol {
		return true
	}
	if lb <= best-model.ObjTol {
		return false // may contain a strictly better leaf
	}
	// Tie window: compare this node's decision prefix (the fixed values along
	// the branching order) against the incumbent's vector under the lock.
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.incOK {
		return false
	}
	for i := 0; i < pos && i < len(e.incDec); i++ {
		v := s.order[i]
		d := s.fixed[v.si][v.k]
		if d != e.incDec[i] {
			return d < e.incDec[i] // 0 where the incumbent has 1 → lex-greater
		}
	}
	return false
}

// expandNode processes one expansion node on the base solver (prefix already
// applied) and returns its children in the serial visit order (x=1 first).
func (e *optEngine) expandNode(s *solver, nd pnode) []pnode {
	if !e.countNode() {
		return nil
	}
	pos := len(nd.dec)
	lb := s.lowerBound()
	if math.IsInf(lb, 1) || e.pruned(s, pos, lb) {
		return nil
	}
	if pos == len(s.order) {
		e.offerFixed(s, lb)
		return nil
	}
	// Every order position is a distinct (service, node) pair, so the slot is
	// always free here — the serial search's already-fixed skip cannot fire.
	v := s.order[pos]
	var children []pnode
	if s.instCnt[v.si] < s.capSvc[v.si] &&
		s.storUsed[v.k]+s.phi[v.si] <= s.storCap[v.k]+model.FeasTol &&
		s.costUsed+s.kappa[v.si] <= s.budget+model.FeasTol {
		children = append(children, pnode{dec: appendDec(nd.dec, 1)})
	}
	if s.instCnt[v.si] > 0 || s.allowCnt[v.si] > 1 {
		children = append(children, pnode{dec: appendDec(nd.dec, 0)})
	}
	return children
}

// dfs is the worker-side recursive search — the serial dfs with the shared
// store substituted for the solver-local incumbent fields.
func (e *optEngine) dfs(s *solver, pos int) {
	if !e.countNode() {
		return
	}
	lb := s.lowerBound()
	if math.IsInf(lb, 1) || e.pruned(s, pos, lb) {
		return
	}
	if pos == len(s.order) {
		e.offerFixed(s, lb)
		return
	}
	v := s.order[pos]
	if s.fixed[v.si][v.k] != -1 {
		e.dfs(s, pos+1)
		return
	}
	if s.instCnt[v.si] < s.capSvc[v.si] &&
		s.storUsed[v.k]+s.phi[v.si] <= s.storCap[v.k]+model.FeasTol &&
		s.costUsed+s.kappa[v.si] <= s.budget+model.FeasTol {
		s.fix(v, 1)
		e.dfs(s, pos+1)
		s.unfix(v, 1)
		if e.aborted.Load() {
			return
		}
	}
	if s.instCnt[v.si] > 0 || s.allowCnt[v.si] > 1 {
		s.fix(v, 0)
		e.dfs(s, pos+1)
		s.unfix(v, 0)
	}
}

// stealDFS is dfs with one extra move: at a shallow branch point where both
// children are feasible and some worker is starving, the x=0 sibling is
// shared with the pool as a decision prefix (to be replayed on the thief's
// own state) instead of being explored locally after the x=1 dive. The
// visit order of what runs locally is exactly dfs's (x=1 first).
func (e *optEngine) stealDFS(c *bb.Ctx[pnode], s *solver, pos int) {
	if !e.countNode() {
		return
	}
	lb := s.lowerBound()
	if math.IsInf(lb, 1) || e.pruned(s, pos, lb) {
		return
	}
	if pos == len(s.order) {
		e.offerFixed(s, lb)
		return
	}
	v := s.order[pos]
	if s.fixed[v.si][v.k] != -1 {
		e.stealDFS(c, s, pos+1)
		return
	}
	can1 := s.instCnt[v.si] < s.capSvc[v.si] &&
		s.storUsed[v.k]+s.phi[v.si] <= s.storCap[v.k]+model.FeasTol &&
		s.costUsed+s.kappa[v.si] <= s.budget+model.FeasTol
	can0 := s.instCnt[v.si] > 0 || s.allowCnt[v.si] > 1
	if can1 && can0 && pos < stealDepth && c.ShouldShare() {
		c.Push(pnode{dec: appendDec(decPrefix(s, pos), 0)})
		can0 = false
	}
	if can1 {
		s.fix(v, 1)
		e.stealDFS(c, s, pos+1)
		s.unfix(v, 1)
		if e.aborted.Load() {
			return
		}
	}
	if can0 {
		s.fix(v, 0)
		e.stealDFS(c, s, pos+1)
		s.unfix(v, 0)
	}
}

// decPrefix reads the decision vector for order[0:pos] back out of the
// fixing state (every position below pos is fixed on the dive path).
func decPrefix(s *solver, pos int) []int8 {
	dec := make([]int8, pos)
	for i := 0; i < pos; i++ {
		v := s.order[i]
		dec[i] = s.fixed[v.si][v.k]
	}
	return dec
}

// offerFixed offers the current fully-fixed state as an incumbent.
func (e *optEngine) offerFixed(s *solver, obj float64) {
	dec := make([]int8, len(s.order))
	for i, v := range s.order {
		dec[i] = s.fixed[v.si][v.k]
	}
	p := model.NewPlacement(s.in.M(), s.V)
	for si, svc := range s.used {
		for k := 0; k < s.V; k++ {
			if s.fixed[si][k] == 1 {
				p.Set(svc, k, true)
			}
		}
	}
	if e.offer(dec, obj, p) {
		e.verify(s, p, obj)
	}
}

// offer installs (dec, obj, p) as the incumbent when strictly better than
// the current one (beyond model.ObjTol), or tied within model.ObjTol and
// lexicographically smaller. p must be owned by the caller.
func (e *optEngine) offer(dec []int8, obj float64, p model.Placement) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.incOK {
		if obj > e.incObj+model.ObjTol {
			return false
		}
		if obj >= e.incObj-model.ObjTol && !lexLessDec(dec, e.incDec) {
			return false
		}
	}
	e.incDec = append(e.incDec[:0], dec...)
	e.incObj, e.incOK = obj, true
	e.incPlacement = p
	e.bits.Store(math.Float64bits(obj))
	return true
}

// verify re-checks an accepted incumbent against the instance from scratch
// under -tags soclinvariants: budget (Eq. 5), storage (Eq. 6) and the star
// objective recomputed from the placement alone.
func (e *optEngine) verify(s *solver, p model.Placement, obj float64) {
	if !invariant.Enabled {
		return
	}
	invariant.CheckBudget(s.in, p, "opt engine incumbent")
	invariant.CheckStorage(s.in, p, "opt engine incumbent")
	o, ok := s.starObjectiveOf(p)
	invariant.Assertf(ok, "opt engine incumbent: placement infeasible on scratch recomputation")
	invariant.Assertf(invariant.AlmostEq(o, obj, 1e-6),
		"opt engine incumbent: objective %v != scratch recomputation %v", obj, o)
}

// lexLessDec orders decision vectors with 1 before 0 at each position — the
// order the serial depth-first search visits leaves in, so the engine's
// tie-break picks the same leaf the serial search finds first.
func lexLessDec(a, b []int8) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// decOfPlacement maps a seed placement onto the decision-vector order.
func decOfPlacement(s *solver, p model.Placement) []int8 {
	dec := make([]int8, len(s.order))
	for i, v := range s.order {
		if p.Has(s.used[v.si], v.k) {
			dec[i] = 1
		}
	}
	return dec
}

func appendDec(dec []int8, d int8) []int8 {
	out := make([]int8, len(dec)+1)
	copy(out, dec)
	out[len(dec)] = d
	return out
}

// applyPrefix replays a decision vector onto s's fixing state.
func applyPrefix(s *solver, dec []int8) {
	for i, d := range dec {
		s.fix(s.order[i], d)
	}
}

// unapplyPrefix undoes applyPrefix.
func unapplyPrefix(s *solver, dec []int8) {
	for i := len(dec) - 1; i >= 0; i-- {
		s.unfix(s.order[i], dec[i])
	}
}

// cloneSearchState gives a worker its own mutable fixing state while sharing
// every immutable precomputation (demands, bounds, branching order).
func cloneSearchState(s *solver) *solver {
	c := &solver{}
	*c = *s
	c.fixed = make([][]int8, len(s.used))
	for si := range c.fixed {
		c.fixed[si] = make([]int8, c.V)
		for k := range c.fixed[si] {
			c.fixed[si][k] = -1
		}
	}
	c.instCnt = make([]int, len(s.used))
	c.allowCnt = make([]int, len(s.used))
	for si := range c.allowCnt {
		c.allowCnt[si] = c.V
	}
	c.storUsed = make([]float64, c.V)
	c.costUsed = 0
	c.nodes = 0
	c.incumbent = model.Placement{}
	c.incumbentObj = math.Inf(1)
	c.haveIncumbent = false
	c.aborted = false
	return c
}
