// Package opt implements an exact, specialized branch-and-bound solver for
// the SoCL ILP (Definition 4 with the star-linearized latency coefficients).
// It is the "OPT / Gurobi" stand-in for the paper's Fig. 2 and Fig. 7
// comparisons: exact on small instances, with runtime that grows
// exponentially in the number of users and edge servers.
//
// The solver exploits the facility-location structure of the ILP: once the
// deployment x is fixed, the optimal routing y is separable — each request
// step independently picks the deployed node with the smallest latency
// coefficient. Branch and bound therefore searches only over x, with a lower
// bound that combines
//
//   - the committed deployment cost plus the cheapest completion cost for
//     services that still lack an instance, and
//   - for every request step, the smallest coefficient over nodes not yet
//     excluded for its service.
//
// Both bounds tighten monotonically along a branch, and a greedy completion
// heuristic provides incumbents early. Cross-validation against the generic
// simplex-based MILP solver (package ilp) is part of the test suite.
package opt

import (
	"math"
	"sort"
	"time"

	"repro/internal/model"
)

// Options bounds the search.
type Options struct {
	TimeLimit time.Duration // 0 = unlimited
	MaxNodes  int64         // 0 = unlimited
	// WarmStart, when non-nil, seeds the incumbent (a feasible placement,
	// e.g. a SoCL solution) to sharpen pruning from the first node.
	WarmStart *model.Placement
	// Workers sizes the parallel branch-and-bound worker pool: 0 means
	// GOMAXPROCS, 1 runs the deterministic engine on one goroutine. Any
	// worker count returns the same status, objective and — via the
	// lexicographic incumbent tie-break — the same placement (DESIGN.md §9);
	// node/time-limited runs excepted, exactly as serially.
	Workers int
	// Naive forces the original serial recursive search, kept verbatim as
	// the reference implementation the parallel engine is differentially
	// tested against (mirrors ilp.Options.Naive).
	Naive bool
	// StaticFrontier reverts the engine to the fixed-frontier scheduler (a
	// serial breadth-first expansion to 64 subtree roots drained through an
	// atomic cursor) instead of the work-stealing pool. Kept as a reference
	// schedule the stealing engine is differentially tested against; results
	// are identical either way (mirrors ilp.Options.StaticFrontier).
	StaticFrontier bool
}

// Status of an exact solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // proven optimal
	Feasible                 // stopped at a limit with an incumbent
	Infeasible               // no feasible deployment exists
	NoSolution               // stopped at a limit before any incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NoSolution:
		return "no-solution"
	default:
		return "?"
	}
}

// Result of an exact solve. StarObjective is the ILP (linearized) objective
// the search optimizes; callers compare algorithms with the exact evaluator
// (model.Evaluate) on the returned placement.
type Result struct {
	Status        Status
	Placement     model.Placement
	StarObjective float64
	Bound         float64 // proven lower bound on the ILP optimum
	Nodes         int64   // search-tree nodes expanded
	Elapsed       time.Duration
}

// demand is one (request, chain-step) needing a service.
type demand struct {
	svc  int
	coef []float64 // star coefficient per node
}

type solver struct {
	in   *model.Instance
	opts Options

	V       int
	used    []int       // service IDs with at least one demand
	svcIdx  map[int]int // service ID → index into used
	demands [][]demand  // per used-service demands
	order   []varRef    // static branching order over (svcIdx, node)
	kappa   []float64   // deploy cost per used service
	phi     []float64   // storage per used service
	capSvc  []int       // max instances per service from the budget bound
	// pmedian[si][n] is an exact lower bound on the service's total demand
	// latency with at most n instances placed anywhere (n = 1..pmedianN),
	// computed once at the root; pmedianInf[si] is the n=∞ (all-nodes)
	// bound. Monotone: pmedian[si][1] ≥ pmedian[si][2] ≥ … ≥ pmedianInf.
	pmedian    [][]float64
	pmedianInf []float64
	lambda     float64
	budget     float64
	storCap    []float64

	// Search state.
	fixed     [][]int8 // per (svcIdx, node): -1 free, 0 fixed-off, 1 fixed-on
	instCnt   []int    // committed instances per used service
	allowCnt  []int    // nodes still allowed per used service
	storUsed  []float64
	costUsed  float64
	startTime time.Time
	deadline  time.Time
	nodes     int64

	incumbent     model.Placement
	incumbentObj  float64
	haveIncumbent bool
	rootBound     float64
	aborted       bool
}

// Solve finds the exact optimum of the star-linearized SoCL ILP for in:
// the parallel engine by default (engine.go), the original serial recursive
// search when opts.Naive is set.
func Solve(in *model.Instance, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Naive {
		s := newSolver(in, opts)
		return s.run(), nil
	}
	return solveEngine(in, opts), nil
}

func newSolver(in *model.Instance, opts Options) *solver {
	V := in.V()
	s := &solver{
		in: in, opts: opts, V: V,
		svcIdx: make(map[int]int),
		lambda: in.Lambda, budget: in.Budget,
		storCap:      make([]float64, V),
		incumbentObj: math.Inf(1),
	}
	for k := 0; k < V; k++ {
		s.storCap[k] = in.Graph.Node(k).Storage
	}
	for _, svc := range in.Workload.ServicesUsed() {
		s.svcIdx[svc] = len(s.used)
		s.used = append(s.used, svc)
	}
	s.demands = make([][]demand, len(s.used))
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		for t, svc := range req.Chain {
			d := demand{svc: svc, coef: make([]float64, V)}
			for k := 0; k < V; k++ {
				d.coef[k] = in.StarCoef(req, t, k)
			}
			si := s.svcIdx[svc]
			s.demands[si] = append(s.demands[si], d)
		}
	}
	s.kappa = make([]float64, len(s.used))
	s.phi = make([]float64, len(s.used))
	for si, svc := range s.used {
		m := in.Workload.Catalog.Service(svc)
		s.kappa[si] = m.DeployCost
		s.phi[si] = m.Storage
	}
	// Per-service instance cap from the budget constraint alone: with every
	// other used service needing ≥ 1 instance, n_i ≤ (𝒦^max − Σ_{j≠i} κ_j)/κ_i.
	// This is a valid ILP implication and prunes deep all-ones branches.
	totalKappa := 0.0
	for _, k := range s.kappa {
		totalKappa += k
	}
	s.capSvc = make([]int, len(s.used))
	for si := range s.used {
		c := int(math.Floor((s.budget - (totalKappa - s.kappa[si])) / s.kappa[si]))
		if c < 1 {
			c = 1
		}
		if c > V {
			c = V
		}
		s.capSvc[si] = c
	}

	// Static branching order: per service, nodes sorted by total demand
	// latency ascending (most attractive first); services interleaved by
	// demand volume so high-impact decisions come first.
	type scored struct {
		ref   varRef
		score float64
	}
	var all []scored
	for si := range s.used {
		for k := 0; k < V; k++ {
			tot := 0.0
			for _, d := range s.demands[si] {
				if !math.IsInf(d.coef[k], 1) {
					tot += d.coef[k]
				} else {
					tot += 1e12
				}
			}
			all = append(all, scored{ref: varRef{si, k}, score: tot / float64(len(s.demands[si])+1)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	s.order = make([]varRef, len(all))
	for i, a := range all {
		s.order[i] = a.ref
	}

	s.fixed = make([][]int8, len(s.used))
	for si := range s.fixed {
		s.fixed[si] = make([]int8, V)
		for k := range s.fixed[si] {
			s.fixed[si][k] = -1
		}
	}
	s.instCnt = make([]int, len(s.used))
	s.allowCnt = make([]int, len(s.used))
	for si := range s.allowCnt {
		s.allowCnt[si] = V
	}
	s.storUsed = make([]float64, V)
	s.computePMedianBounds()
	return s
}

// pmedianN caps the exact root p-median enumeration depth; C(V, 3) subsets
// stay cheap up to V ≈ 30 while capturing most of the latency/cost trade.
const pmedianN = 3

// computePMedianBounds fills pmedian and pmedianInf: per-service exact
// minimum total latency using at most n instances over the full node set.
// These are root bounds — excluding nodes along a branch only increases the
// true latency, so they stay valid everywhere in the tree.
func (s *solver) computePMedianBounds() {
	s.pmedian = make([][]float64, len(s.used))
	s.pmedianInf = make([]float64, len(s.used))
	for si := range s.used {
		D := s.demands[si]
		// n = ∞: every demand takes its global best node.
		inf := 0.0
		for _, d := range D {
			best := math.Inf(1)
			for k := 0; k < s.V; k++ {
				if d.coef[k] < best {
					best = d.coef[k]
				}
			}
			inf += best
		}
		s.pmedianInf[si] = inf

		maxN := pmedianN
		if maxN > s.V {
			maxN = s.V
		}
		s.pmedian[si] = make([]float64, maxN+1) // [0] unused
		// Exact best subset of each size by enumeration with running mins.
		// best[n] over all subsets of size n.
		cur := make([]float64, len(D)) // running per-demand min for the subset
		var rec func(start, depth, maxDepth int)
		best := math.Inf(1)
		var enumerate func(maxDepth int) float64
		rec = func(start, depth, maxDepth int) {
			if depth == maxDepth {
				tot := 0.0
				for _, c := range cur {
					tot += c
				}
				if tot < best {
					best = tot
				}
				return
			}
			for k := start; k <= s.V-(maxDepth-depth); k++ {
				saved := make([]float64, 0, 4)
				savedIdx := make([]int, 0, 4)
				for di, d := range D {
					if d.coef[k] < cur[di] {
						saved = append(saved, cur[di])
						savedIdx = append(savedIdx, di)
						cur[di] = d.coef[k]
					}
				}
				rec(k+1, depth+1, maxDepth)
				for i, di := range savedIdx {
					cur[di] = saved[i]
				}
			}
		}
		enumerate = func(maxDepth int) float64 {
			best = math.Inf(1)
			for di := range cur {
				cur[di] = math.Inf(1)
			}
			rec(0, 0, maxDepth)
			return best
		}
		for n := 1; n <= maxN; n++ {
			s.pmedian[si][n] = enumerate(n)
		}
	}
}

// svcLatencyBound returns a valid lower bound on service si's latency given
// exactly-or-more-than n instances may be used: the root p-median bound for
// n within the enumerated range, else the all-nodes bound.
func (s *solver) svcLatencyBound(si, n int) float64 {
	if n >= 1 && n < len(s.pmedian[si]) {
		return s.pmedian[si][n]
	}
	return s.pmedianInf[si]
}

type varRef struct{ si, k int }

func (s *solver) run() Result {
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	s.startTime = time.Now()
	if s.opts.TimeLimit > 0 {
		s.deadline = s.startTime.Add(s.opts.TimeLimit)
	}
	s.rootBound = s.lowerBound()

	if s.opts.WarmStart != nil {
		if obj, ok := s.starObjectiveOf(*s.opts.WarmStart); ok {
			s.incumbent = s.opts.WarmStart.Clone()
			s.incumbentObj = obj
			s.haveIncumbent = true
		}
	}
	// Greedy completion from the root as a primal heuristic.
	s.tryGreedyIncumbent()

	s.dfs(0)

	res := Result{
		Nodes: s.nodes,
		//socllint:ignore detrand elapsed wall time is reported, never branched on
		Elapsed: time.Since(s.startTime),
		Bound:   s.rootBound,
	}
	switch {
	case s.haveIncumbent && !s.aborted:
		res.Status = Optimal
		res.Placement = s.incumbent
		res.StarObjective = s.incumbentObj
		res.Bound = s.incumbentObj
	case s.haveIncumbent:
		res.Status = Feasible
		res.Placement = s.incumbent
		res.StarObjective = s.incumbentObj
	case s.aborted:
		res.Status = NoSolution
	default:
		res.Status = Infeasible
	}
	return res
}

func (s *solver) limitHit() bool {
	if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
		return true
	}
	// Check the wall clock only every 256 nodes to keep the hot loop cheap.
	//socllint:ignore detrand wall-clock time limit is an explicit Options knob, not hidden nondeterminism
	if !s.deadline.IsZero() && s.nodes%256 == 0 && time.Now().After(s.deadline) {
		return true
	}
	return false
}

// dfs explores the branching order from position pos.
func (s *solver) dfs(pos int) {
	s.nodes++
	if s.limitHit() {
		s.aborted = true
		return
	}
	lb := s.lowerBound()
	if math.IsInf(lb, 1) || (s.haveIncumbent && lb >= s.incumbentObj-model.FeasTol) {
		return
	}
	if pos == len(s.order) {
		// All variables fixed: the bound is now the exact star objective.
		s.recordIncumbent(lb)
		return
	}
	v := s.order[pos]
	if s.fixed[v.si][v.k] != -1 {
		s.dfs(pos + 1)
		return
	}

	// Branch x=1 first (acquiring instances early finds incumbents fast),
	// when storage, budget and the per-service instance cap permit.
	if s.instCnt[v.si] < s.capSvc[v.si] &&
		s.storUsed[v.k]+s.phi[v.si] <= s.storCap[v.k]+model.FeasTol &&
		s.costUsed+s.kappa[v.si] <= s.budget+model.FeasTol {
		s.fix(v, 1)
		s.dfs(pos + 1)
		s.unfix(v, 1)
		if s.aborted {
			return
		}
	}

	// Branch x=0.
	if s.instCnt[v.si] > 0 || s.allowCnt[v.si] > 1 {
		s.fix(v, 0)
		s.dfs(pos + 1)
		s.unfix(v, 0)
	}
}

func (s *solver) fix(v varRef, val int8) {
	s.fixed[v.si][v.k] = val
	if val == 1 {
		s.instCnt[v.si]++
		s.storUsed[v.k] += s.phi[v.si]
		s.costUsed += s.kappa[v.si]
	} else {
		s.allowCnt[v.si]--
	}
}

func (s *solver) unfix(v varRef, val int8) {
	s.fixed[v.si][v.k] = -1
	if val == 1 {
		s.instCnt[v.si]--
		s.storUsed[v.k] -= s.phi[v.si]
		s.costUsed -= s.kappa[v.si]
	} else {
		s.allowCnt[v.si]++
	}
}

// lowerBound computes an admissible bound for the current partial fixing.
// Per service it takes the best trade over the instance count n — paying
// λ·κ·n while bounding latency by the larger of the root p-median bound
// L(n) and the branch-aware min-over-allowed-nodes sum — and adds the
// services' independent optima (a valid relaxation of the budget/storage
// coupling). Returns +Inf when the partial fixing is already infeasible.
func (s *solver) lowerBound() float64 {
	// Budget feasibility of the cheapest completion.
	cost := s.costUsed
	for si := range s.used {
		if s.instCnt[si] == 0 {
			if s.allowCnt[si] == 0 {
				return math.Inf(1) // service can never get an instance
			}
			cost += s.kappa[si]
		}
	}
	if cost > s.budget+model.FeasTol {
		return math.Inf(1)
	}

	bound := 0.0
	for si := range s.used {
		// Branch-aware latency floor: each demand's best allowed node.
		fx := s.fixed[si]
		allowedLat := 0.0
		for _, d := range s.demands[si] {
			best := math.Inf(1)
			for k := 0; k < s.V; k++ {
				if fx[k] != 0 && d.coef[k] < best {
					best = d.coef[k]
				}
			}
			if math.IsInf(best, 1) {
				return math.Inf(1)
			}
			allowedLat += best
		}
		// Trade over the instance count: at least the committed count, at
		// least 1, at most the budget cap (or the allowed-node count).
		nMin := s.instCnt[si]
		if nMin < 1 {
			nMin = 1
		}
		nMax := s.capSvc[si]
		if nMax > s.allowCnt[si] {
			nMax = s.allowCnt[si]
		}
		if nMax < nMin {
			nMax = nMin
		}
		best := math.Inf(1)
		for n := nMin; n <= nMax; n++ {
			lat := s.svcLatencyBound(si, n)
			if allowedLat > lat {
				lat = allowedLat
			}
			v := s.lambda*s.kappa[si]*float64(n) + (1-s.lambda)*lat
			if v < best {
				best = v
			}
			// κ·n grows while lat is already at its floor: once lat ==
			// allowedLat further n only cost more.
			//socllint:ignore floateq lat was literally assigned allowedLat above; assignment-equality is exact
			if lat == allowedLat {
				break
			}
		}
		bound += best
	}
	return bound
}

// recordIncumbent stores a fully-fixed state as the new incumbent if better.
func (s *solver) recordIncumbent(obj float64) {
	if s.haveIncumbent && obj >= s.incumbentObj-model.ObjTol {
		return
	}
	p := model.NewPlacement(s.in.M(), s.V)
	for si, svc := range s.used {
		for k := 0; k < s.V; k++ {
			if s.fixed[si][k] == 1 {
				p.Set(svc, k, true)
			}
		}
	}
	s.incumbent = p
	s.incumbentObj = obj
	s.haveIncumbent = true
}

// starObjectiveOf scores an arbitrary placement under the star objective,
// reporting false when infeasible (missing instance, storage, or budget).
func (s *solver) starObjectiveOf(p model.Placement) (float64, bool) {
	cost := s.in.DeployCost(p)
	if cost > s.budget+model.FeasTol || s.in.CheckStorage(p) != -1 {
		return 0, false
	}
	lat := 0.0
	for si, svc := range s.used {
		nodes := p.NodesOf(svc)
		if len(nodes) == 0 {
			return 0, false
		}
		for _, d := range s.demands[si] {
			best := math.Inf(1)
			for _, k := range nodes {
				if d.coef[k] < best {
					best = d.coef[k]
				}
			}
			if math.IsInf(best, 1) {
				return 0, false
			}
			lat += best
		}
	}
	return s.lambda*cost + (1-s.lambda)*lat, true
}

// tryGreedyIncumbent builds a feasible placement greedily: every used
// service goes on the single node minimizing its total demand latency
// subject to storage, then repeatedly adds the instance with the best
// objective improvement while budget remains.
func (s *solver) tryGreedyIncumbent() {
	p := model.NewPlacement(s.in.M(), s.V)
	stor := make([]float64, s.V)
	cost := 0.0
	for si, svc := range s.used {
		bestK, bestTot := -1, math.Inf(1)
		for k := 0; k < s.V; k++ {
			if stor[k]+s.phi[si] > s.storCap[k]+model.FeasTol {
				continue
			}
			tot := 0.0
			for _, d := range s.demands[si] {
				tot += d.coef[k]
			}
			if tot < bestTot {
				bestTot, bestK = tot, k
			}
		}
		if bestK == -1 || cost+s.kappa[si] > s.budget+model.FeasTol {
			return // no feasible greedy start
		}
		p.Set(svc, bestK, true)
		stor[bestK] += s.phi[si]
		cost += s.kappa[si]
	}
	obj, ok := s.starObjectiveOf(p)
	if !ok {
		return
	}
	// Improvement loop: add the single instance with the largest objective
	// decrease until none helps.
	for {
		bestObj, bestSi, bestK := obj, -1, -1
		for si, svc := range s.used {
			if cost+s.kappa[si] > s.budget+model.FeasTol {
				continue
			}
			for k := 0; k < s.V; k++ {
				if p.Has(svc, k) || stor[k]+s.phi[si] > s.storCap[k]+model.FeasTol {
					continue
				}
				p.Set(svc, k, true)
				if o, ok := s.starObjectiveOf(p); ok && o < bestObj-model.ObjTol {
					bestObj, bestSi, bestK = o, si, k
				}
				p.Set(svc, k, false)
			}
		}
		if bestSi == -1 {
			break
		}
		p.Set(s.used[bestSi], bestK, true)
		stor[bestK] += s.phi[bestSi]
		cost += s.kappa[bestSi]
		obj = bestObj
	}
	if !s.haveIncumbent || obj < s.incumbentObj {
		s.incumbent = p.Clone()
		s.incumbentObj = obj
		s.haveIncumbent = true
	}
}
