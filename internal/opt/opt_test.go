package opt

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ilp"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func testInstance(nodes, users, services int, seed int64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.5, topology.DefaultGenConfig(), seed)
	cat := msvc.SyntheticCatalog(services, msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e5}
}

func TestSolveTinyOptimalAndFeasible(t *testing.T) {
	in := testInstance(4, 5, 3, 1)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	ev := in.Evaluate(res.Placement)
	if ev.MissingInstances != 0 || ev.StorageViolatedAt != -1 || ev.OverBudget {
		t.Fatalf("OPT placement infeasible: %+v", ev)
	}
	if res.StarObjective <= 0 || math.IsInf(res.StarObjective, 0) {
		t.Fatalf("bad objective %v", res.StarObjective)
	}
	if res.Nodes <= 0 {
		t.Fatal("no nodes expanded")
	}
}

func TestSolveInfeasibleBudget(t *testing.T) {
	in := testInstance(4, 5, 3, 2)
	in.Budget = 1 // cannot deploy anything
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestTimeLimitAborts(t *testing.T) {
	in := testInstance(10, 25, 8, 3)
	res, err := Solve(in, Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal && res.Elapsed > 500*time.Millisecond {
		t.Fatalf("time limit ignored: %v", res.Elapsed)
	}
	// With a warm-started or greedy incumbent we should at least be Feasible.
	if res.Status != Feasible && res.Status != Optimal && res.Status != NoSolution {
		t.Fatalf("unexpected status %v", res.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	in := testInstance(8, 20, 6, 4)
	res, err := Solve(in, Options{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 11 {
		t.Fatalf("node limit ignored: %d", res.Nodes)
	}
}

func TestWarmStartNeverWorseThanGreedy(t *testing.T) {
	in := testInstance(5, 8, 4, 5)
	base, err := Solve(in, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Status.isUsable() {
		t.Skipf("no incumbent at node limit: %v", base.Status)
	}
	ws, err := Solve(in, Options{MaxNodes: 1, WarmStart: &base.Placement})
	if err != nil {
		t.Fatal(err)
	}
	if ws.StarObjective > base.StarObjective+1e-9 {
		t.Fatalf("warm start degraded incumbent: %v > %v", ws.StarObjective, base.StarObjective)
	}
}

func (s Status) isUsable() bool { return s == Optimal || s == Feasible }

func TestValidatesInstance(t *testing.T) {
	in := testInstance(4, 4, 3, 6)
	in.Lambda = 2
	if _, err := Solve(in, Options{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

// Cross-validation: the specialized solver and the generic simplex-based
// MILP solver must agree on the ILP optimum for tiny instances.
func TestMatchesGenericILP(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := testInstance(3, 3, 3, seed)
		resOpt, err := Solve(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := ilp.BuildSoCL(in)
		resILP, err := ilp.Solve(m, ilp.Options{TimeLimit: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if resOpt.Status != Optimal || resILP.Status != ilp.Optimal {
			t.Fatalf("seed %d: statuses %v / %v", seed, resOpt.Status, resILP.Status)
		}
		if math.Abs(resOpt.StarObjective-resILP.Objective) > 1e-4 {
			t.Fatalf("seed %d: opt %v != ilp %v", seed, resOpt.StarObjective, resILP.Objective)
		}
	}
}

// Property: the exact optimum is never worse than any greedy single-node-
// per-service placement sampled at random.
func TestOptimumDominatesRandomFeasible(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(4, 4, 3, seed)
		res, err := Solve(in, Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		// All single-node placements per used service (node 0..V-1 shared).
		for k := 0; k < in.V(); k++ {
			p := model.NewPlacement(in.M(), in.V())
			for _, s := range in.Workload.ServicesUsed() {
				p.Set(s, k, true)
			}
			if in.CheckStorage(p) != -1 || !in.CheckBudget(p) {
				continue
			}
			if obj, ok := starObj(in, p); ok && obj < res.StarObjective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// starObj mirrors the solver's internal star objective for test validation.
func starObj(in *model.Instance, p model.Placement) (float64, bool) {
	obj := in.Lambda * in.DeployCost(p)
	for h := range in.Workload.Requests {
		req := &in.Workload.Requests[h]
		for t := range req.Chain {
			best := math.Inf(1)
			for _, k := range p.NodesOf(req.Chain[t]) {
				if c := in.StarCoef(req, t, k); c < best {
					best = c
				}
			}
			if math.IsInf(best, 1) {
				return 0, false
			}
			obj += (1 - in.Lambda) * best
		}
	}
	return obj, true
}

// Property: reported StarObjective matches an independent recomputation on
// the returned placement.
func TestReportedObjectiveConsistent(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(4, 5, 3, seed)
		res, err := Solve(in, Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		obj, ok := starObj(in, res.Placement)
		return ok && math.Abs(obj-res.StarObjective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
